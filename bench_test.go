// Package ml4db's top-level benchmarks regenerate every table and figure of
// the reproduction: one testing.B target per experiment in DESIGN.md. Each
// benchmark runs the full experiment per iteration (expect seconds per op —
// the default b.N of 1 is the intended usage), reports the experiment's
// headline metrics via b.ReportMetric, logs the regenerated rows, and fails
// if the paper's claimed direction does not hold.
//
// Regenerate everything:
//
//	go test -bench=. -benchmem
//
// Regenerate one artifact:
//
//	go test -bench=BenchmarkE9Bao
package ml4db

import (
	"testing"

	"ml4db/internal/experiments"
)

// benchSeed keeps the bench artifacts reproducible run to run.
const benchSeed = 42

func runExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var rep *experiments.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = r.Run(benchSeed)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	b.StopTimer()
	b.Log("\n" + rep.String())
	for k, v := range rep.Metrics {
		b.ReportMetric(v, k)
	}
	if !rep.Holds {
		b.Fatalf("%s: claimed direction did not hold", id)
	}
}

// BenchmarkF1PublicationTrend regenerates Figure 1.
func BenchmarkF1PublicationTrend(b *testing.B) { runExperiment(b, "F1") }

// BenchmarkT1RepresentationTable regenerates Table 1.
func BenchmarkT1RepresentationTable(b *testing.B) { runExperiment(b, "T1") }

// BenchmarkE1RepresentationStudy reproduces the comparative study of [57].
func BenchmarkE1RepresentationStudy(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkE2LearnedIndexLookup reproduces learned-index vs B-tree lookups.
func BenchmarkE2LearnedIndexLookup(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkE3IndexUpdates reproduces robustness under inserts.
func BenchmarkE3IndexUpdates(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkE4SpatialIndex reproduces learned spatial index comparisons.
func BenchmarkE4SpatialIndex(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkE5RLRTree reproduces the ML-enhanced insertion experiment.
func BenchmarkE5RLRTree(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkE6Platon reproduces the ML-enhanced bulk-loading experiment.
func BenchmarkE6Platon(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkE7AIRTree reproduces the ML-enhanced search experiment.
func BenchmarkE7AIRTree(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkE8NeoRobustness reproduces the NEO unseen-template experiment.
func BenchmarkE8NeoRobustness(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkE9Bao reproduces the BAO steering experiment.
func BenchmarkE9Bao(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkE10AutoSteer reproduces the hint-set discovery experiment.
func BenchmarkE10AutoSteer(b *testing.B) { runExperiment(b, "E10") }

// BenchmarkE11Leon reproduces the LEON mixed-ranking experiment.
func BenchmarkE11Leon(b *testing.B) { runExperiment(b, "E11") }

// BenchmarkE12ParamTree reproduces the cost-model calibration experiment.
func BenchmarkE12ParamTree(b *testing.B) { runExperiment(b, "E12") }

// BenchmarkE13ModelEfficiency reproduces the NNGP/MLP efficiency experiment.
func BenchmarkE13ModelEfficiency(b *testing.B) { runExperiment(b, "E13") }

// BenchmarkE14Drift reproduces the drift degradation/adaptation experiment.
func BenchmarkE14Drift(b *testing.B) { runExperiment(b, "E14") }

// BenchmarkE15Pretrain reproduces the few-shot transfer experiment.
func BenchmarkE15Pretrain(b *testing.B) { runExperiment(b, "E15") }

// BenchmarkE16DataGen reproduces the workload-aware generation experiment.
func BenchmarkE16DataGen(b *testing.B) { runExperiment(b, "E16") }

// BenchmarkE17Balsa reproduces the sim-to-real safety experiment.
func BenchmarkE17Balsa(b *testing.B) { runExperiment(b, "E17") }

// BenchmarkE18NeoBootstrap reproduces the expert-bootstrap experiment.
func BenchmarkE18NeoBootstrap(b *testing.B) { runExperiment(b, "E18") }

// BenchmarkE19Rtos reproduces the RTOS curriculum experiment.
func BenchmarkE19Rtos(b *testing.B) { runExperiment(b, "E19") }

// BenchmarkE20UnsupPretrain reproduces the pretraining-speed experiment.
func BenchmarkE20UnsupPretrain(b *testing.B) { runExperiment(b, "E20") }

// BenchmarkE21IndexAdvisor reproduces the learned index-advisor experiment.
func BenchmarkE21IndexAdvisor(b *testing.B) { runExperiment(b, "E21") }

// BenchmarkE22Lemo reproduces the plan-cache experiment.
func BenchmarkE22Lemo(b *testing.B) { runExperiment(b, "E22") }

// BenchmarkE23EnhancedEstimation reproduces the learned-estimator-in-the-
// optimizer experiment.
func BenchmarkE23EnhancedEstimation(b *testing.B) { runExperiment(b, "E23") }

// BenchmarkE24ViewAdvisor reproduces the view-selection experiment.
func BenchmarkE24ViewAdvisor(b *testing.B) { runExperiment(b, "E24") }

// BenchmarkAblationBaoArms ablates BAO's hint-collection size.
func BenchmarkAblationBaoArms(b *testing.B) { runExperiment(b, "AblationBaoArms") }

// BenchmarkAblationPlatonBudget ablates PLATON's MCTS budget.
func BenchmarkAblationPlatonBudget(b *testing.B) { runExperiment(b, "AblationPlatonBudget") }

// BenchmarkAblationWidth ablates tree-model hidden width.
func BenchmarkAblationWidth(b *testing.B) { runExperiment(b, "AblationWidth") }

// BenchmarkAblationRMIFanout ablates RMI second-stage fanout.
func BenchmarkAblationRMIFanout(b *testing.B) { runExperiment(b, "AblationRMIFanout") }

// BenchmarkAblationPGMEps ablates the PGM error bound.
func BenchmarkAblationPGMEps(b *testing.B) { runExperiment(b, "AblationPGMEps") }
