package main

// Storage benchmark mode (-storage): exercises the internal/storage
// disk-backed engine and writes BENCH_storage.json.
//
//   - larger-than-memory scan: a heap table many times bigger than the
//     buffer pool must scan to exactly the right row count and column sums,
//     evicting along the way and leaving zero pinned frames;
//   - LRU vs learned eviction: a scan-flood workload (a small hot set
//     re-read every round while a stream of cold pages floods the pool)
//     where LRU keeps evicting the hot set but a scorer trained on the
//     access trace learns to keep it. The trained candidate must be
//     promoted by the canary gate (it beats the LRU-equivalent Recency
//     incumbent on shadow error), a deliberately bad candidate must be
//     rejected, and the promoted policy's hit rate must beat LRU's on the
//     same trace;
//   - replay determinism: the same trace through fresh pools produces
//     bit-identical eviction logs, for the LRU and the learned policy both.
//
// Any violated contract makes the benchmark exit nonzero; check.sh runs the
// -quick variant as a smoke test.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"ml4db/internal/storage"
)

type storageReport struct {
	Seed  uint64 `json:"seed"`
	Quick bool   `json:"quick"`

	ScanPages     int   `json:"scan_pages"`
	ScanRows      int   `json:"scan_rows"`
	PoolFrames    int   `json:"pool_frames"`
	ScanEvictions int64 `json:"scan_evictions"`
	ScanCorrect   bool  `json:"scan_correct"`

	TraceLen       int     `json:"trace_len"`
	TraceSamples   int     `json:"trace_samples"`
	GatePromotions int     `json:"gate_promotions"`
	GateRejections int     `json:"gate_rejections"`
	GateVersion    int     `json:"gate_version"`
	LRUHitRate     float64 `json:"lru_hit_rate"`
	LearnedHitRate float64 `json:"learned_hit_rate"`
	HotHitLRU      float64 `json:"hot_hit_rate_lru"`
	HotHitLearned  float64 `json:"hot_hit_rate_learned"`
	LearnedWins    bool    `json:"learned_beats_lru"`

	ReplayEvictions int  `json:"replay_evictions"`
	ReplayIdentical bool `json:"replay_identical"`
}

// constScorer predicts the same reuse distance for every page — a
// candidate no gate should ever let near a pool.
type constScorer float64

func (c constScorer) Predict(x []float64) float64 { return float64(c) }

// floodTrace builds the scan-flood access pattern: per round, two groups of
// [each hot page once, then a flood of fresh cold pages read twice
// back-to-back]. The flood puts more distinct pages between consecutive hot
// touches than the pool holds, so LRU evicts the entire hot set every group
// and rereads it cold. Forward reuse distance is learnable from access
// history — hot pages accumulate counts and periodic gaps, cold pages stay
// at one burst — so a trained scorer keeps the hot set where LRU cannot.
func floodTrace(hotN, coldPerRound, rounds int) (trace []int, npages int) {
	next := hotN
	for r := 0; r < rounds; r++ {
		for g := 0; g < 2; g++ {
			for h := 0; h < hotN; h++ {
				trace = append(trace, h)
			}
			for c := 0; c < coldPerRound/2; c++ {
				trace = append(trace, next, next)
				next++
			}
		}
	}
	return trace, next
}

// driveTrace replays page accesses through the pool, reporting overall and
// hot-set hit rates.
func driveTrace(p *storage.Pool, hf *storage.HeapFile, trace []int, hotN int) (hit, hotHit float64, err error) {
	var hits, hotHits, hotAccesses int
	for _, pg := range trace {
		h, err := p.Fetch(hf, pg)
		if err != nil {
			return 0, 0, err
		}
		miss := h.Missed()
		h.Unpin()
		if !miss {
			hits++
		}
		if pg < hotN {
			hotAccesses++
			if !miss {
				hotHits++
			}
		}
	}
	if len(trace) > 0 {
		hit = float64(hits) / float64(len(trace))
	}
	if hotAccesses > 0 {
		hotHit = float64(hotHits) / float64(hotAccesses)
	}
	return hit, hotHit, nil
}

func runStorageBench(seed uint64, outPath string, quick bool) error {
	dir, err := os.MkdirTemp("", "ml4db-storage-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	rep := storageReport{Seed: seed, Quick: quick}

	// Larger-than-memory scan: fill a table far past pool capacity, reopen
	// it behind a small pool, and verify the scan byte-for-byte.
	const frames = 16
	pages := 160
	rounds := 40
	window := 200
	if quick {
		pages, rounds, window = 48, 15, 100
	}
	nrows := pages * storage.SlotsPerPage(2)
	tablePath := filepath.Join(dir, "big.tbl")
	build, err := storage.CreateTableFile(tablePath, 2, storage.NewPool(storage.PoolOptions{Capacity: frames}))
	if err != nil {
		return err
	}
	for i := 0; i < nrows; i++ {
		if _, err := build.AppendRow([]int64{int64(i), int64(3*i + 1)}); err != nil {
			return err
		}
	}
	if err := build.Close(); err != nil {
		return err
	}
	scanPool := storage.NewPool(storage.PoolOptions{Capacity: frames})
	tf, err := storage.OpenTableFile(tablePath, 2, scanPool)
	if err != nil {
		return err
	}
	var rows int
	var sumA, sumB int64
	if err := tf.Scan(func(rowID int64, row []int64) error {
		rows++
		sumA += row[0]
		sumB += row[1]
		return nil
	}); err != nil {
		return err
	}
	n := int64(nrows)
	wantA := n * (n - 1) / 2
	wantB := 3*wantA + n
	st := scanPool.Stats()
	rep.ScanPages = tf.NumPages()
	rep.ScanRows = rows
	rep.PoolFrames = frames
	rep.ScanEvictions = st.Evictions
	rep.ScanCorrect = rows == nrows && sumA == wantA && sumB == wantB &&
		st.Resident <= frames && st.Pinned == 0 && st.Evictions > 0
	if !rep.ScanCorrect {
		return fmt.Errorf("larger-than-memory scan broken: rows=%d/%d sums=(%d,%d)/(%d,%d) stats=%+v",
			rows, nrows, sumA, sumB, wantA, wantB, st)
	}
	if tf.NumPages() <= frames {
		return fmt.Errorf("table fits in the pool (%d pages, %d frames); the scan proves nothing", tf.NumPages(), frames)
	}
	if err := tf.Close(); err != nil {
		return err
	}

	// Eviction workload: train a scorer on the flood trace, gate it against
	// the Recency incumbent, and race the promoted policy against LRU.
	const hotN, coldPerRound, evictFrames = 4, 12, 8
	trace, npages := floodTrace(hotN, coldPerRound, rounds)
	rep.TraceLen = len(trace)
	keys := make([]storage.PageKey, len(trace))
	for i, pg := range trace {
		keys[i] = storage.PageKey{File: 1, Page: uint32(pg)}
	}
	samples := storage.TraceSamples(keys, 0)
	rep.TraceSamples = len(samples)
	scorer, err := storage.TrainScorer(samples, seed, 30, nil)
	if err != nil {
		return err
	}
	gate := storage.NewGate(storage.GateOptions{Window: window})
	gate.SetCandidate(scorer, 1)
	promotions, _ := gate.ObserveSamples(samples)
	rep.GatePromotions = promotions
	if promotions < 1 || gate.Version() != 1 {
		return fmt.Errorf("trained scorer not promoted (promotions=%d version=%d): it should beat Recency on the flood trace",
			promotions, gate.Version())
	}
	// A constant scorer must shadow and lose: same samples, no promotion.
	gate.SetCandidate(constScorer(1e6), 2)
	_, rejections := gate.ObserveSamples(samples)
	rep.GateRejections = rejections
	rep.GateVersion = gate.Version()
	if rejections < 1 || gate.Version() != 1 {
		return fmt.Errorf("bad candidate not rejected (rejections=%d version=%d)", rejections, gate.Version())
	}

	tracePath := filepath.Join(dir, "trace.heap")
	hf, err := storage.CreateHeapFile(tracePath, 1)
	if err != nil {
		return err
	}
	for p := 0; p < npages; p++ {
		if _, err := hf.AllocPage(); err != nil {
			return err
		}
	}
	defer hf.Close()

	run := func(policy storage.Policy, record bool) (*storage.Pool, float64, float64, error) {
		pool := storage.NewPool(storage.PoolOptions{Capacity: evictFrames, Policy: policy, RecordEvictions: record})
		hit, hotHit, err := driveTrace(pool, hf, trace, hotN)
		return pool, hit, hotHit, err
	}
	_, rep.LRUHitRate, rep.HotHitLRU, err = run(storage.NewLRU(), false)
	if err != nil {
		return err
	}
	_, rep.LearnedHitRate, rep.HotHitLearned, err = run(storage.NewLearnedPolicy(gate), false)
	if err != nil {
		return err
	}
	rep.LearnedWins = rep.LearnedHitRate > rep.LRUHitRate
	if !rep.LearnedWins {
		return fmt.Errorf("promoted policy does not beat LRU: learned %.3f vs lru %.3f",
			rep.LearnedHitRate, rep.LRUHitRate)
	}

	// Replay determinism: identical traces through fresh pools must evict
	// the identical sequence, whichever policy is driving.
	for _, policy := range []func() storage.Policy{
		func() storage.Policy { return storage.NewLRU() },
		func() storage.Policy { return storage.NewLearnedPolicy(gate) },
	} {
		a, _, _, err := run(policy(), true)
		if err != nil {
			return err
		}
		b, _, _, err := run(policy(), true)
		if err != nil {
			return err
		}
		la, lb := a.EvictionLog(), b.EvictionLog()
		if len(la) == 0 || len(la) != len(lb) {
			return fmt.Errorf("replay eviction logs differ in length: %d vs %d", len(la), len(lb))
		}
		for i := range la {
			if la[i] != lb[i] {
				return fmt.Errorf("replay diverges at eviction %d: %v vs %v", i, la[i], lb[i])
			}
		}
		rep.ReplayEvictions = len(la)
	}
	rep.ReplayIdentical = true

	fmt.Printf("%-24s pages %d  frames %d  rows %d  evictions %d  correct %v\n",
		"scan_oversized", rep.ScanPages, rep.PoolFrames, rep.ScanRows, rep.ScanEvictions, rep.ScanCorrect)
	fmt.Printf("%-24s promotions %d  rejections %d  serving v%d\n",
		"eviction_gate", rep.GatePromotions, rep.GateRejections, rep.GateVersion)
	fmt.Printf("%-24s lru %.3f  learned %.3f  hot-set %.3f vs %.3f\n",
		"hit_rates", rep.LRUHitRate, rep.LearnedHitRate, rep.HotHitLRU, rep.HotHitLearned)
	fmt.Printf("%-24s evictions %d  identical %v\n",
		"replay", rep.ReplayEvictions, rep.ReplayIdentical)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
