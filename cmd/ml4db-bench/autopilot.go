package main

// Autopilot benchmark mode (-autopilot): drives the internal/autopilot
// self-driving loop end to end on live telemetry and writes
// BENCH_autopilot.json.
//
//   - beneficial adoption: a scan-heavy skewed workload runs through a real
//     engine with the querystore attached; the autopilot must mine it,
//     adopt the secondary index, measurably reduce observed per-call work,
//     and confirm the adoption through its shadow trial (StageKept). The
//     same scenario plants an unselective statement whose index candidate
//     must be rejected at the what-if gate (StageRejected);
//   - canary revert: a join workload over tables with stale join-key
//     statistics makes a materialized view look like a big estimated win
//     (the estimator puts the join orders of magnitude under its true
//     size); the autopilot adopts it, the shadow trial observes the
//     regression over the next querystore windows, and the view must be
//     auto-dropped (StageDropped) with queries returning identical results
//     throughout;
//   - replayable decisions: both scenarios re-run from scratch under fresh
//     mlmath.ManualClocks must export byte-identical TuningEvent JSONL;
//   - queryable ledger: `SELECT * FROM sys_tuning` through the normal
//     planner/executor must return exactly the ledger.
//
// Any violated contract makes the benchmark exit nonzero; check.sh runs the
// -quick variant as a smoke test.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"

	"ml4db/internal/autopilot"
	"ml4db/internal/engine"
	"ml4db/internal/mlmath"
	"ml4db/internal/querystore"
	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
)

type autopilotReport struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Seed       uint64 `json:"seed"`
	Quick      bool   `json:"quick"`

	IndexAdopted    bool    `json:"index_adopted"`
	IndexKept       bool    `json:"index_kept"`
	IndexTarget     string  `json:"index_target"`
	PreWorkPerCall  float64 `json:"pre_work_per_call"`
	PostWorkPerCall float64 `json:"post_work_per_call"`
	WorkReduction   float64 `json:"work_reduction"`
	Rejected        int     `json:"rejected_candidates"`

	HarmfulAdopted  bool    `json:"harmful_adopted"`
	HarmfulDropped  bool    `json:"harmful_dropped"`
	HarmfulTarget   string  `json:"harmful_target"`
	HarmfulBaseline float64 `json:"harmful_baseline_wpc"`
	HarmfulObserved float64 `json:"harmful_observed_wpc"`
	ResultsStable   bool    `json:"results_stable"`

	Events          int  `json:"events"`
	ReplayIdentical bool `json:"replay_identical"`
	SysTuningRows   int  `json:"sys_tuning_rows"`
	SysTuningOK     bool `json:"sys_tuning_ok"`
}

// autopilotRig wires one tuning stack on a manual clock.
type autopilotRig struct {
	cat  *catalog.Catalog
	eng  *engine.Engine
	ap   *autopilot.Autopilot
	mc   *mlmath.ManualClock
	sess *engine.Session
}

func newAutopilotRig(cat *catalog.Catalog, buildCostWeight float64) (*autopilotRig, error) {
	mc := &mlmath.ManualClock{T: time.Unix(0, 0)}
	store := querystore.New(querystore.Options{Clock: mc, Catalog: cat, Window: time.Second})
	eng := engine.New(cat, engine.Options{Store: store})
	ap, err := autopilot.New(autopilot.Options{
		Clock: mc, Store: store, Host: eng,
		Interval: time.Second, MinWinFrac: 0.02, BuildCostWeight: buildCostWeight, VerifyWindows: 2,
	})
	if err != nil {
		return nil, err
	}
	if err := autopilot.RegisterTuningView(cat, ap); err != nil {
		return nil, err
	}
	return &autopilotRig{cat: cat, eng: eng, ap: ap, mc: mc, sess: eng.Session()}, nil
}

// runN runs q n times, stepping the clock before each call; returns total
// work and the last row count.
func (r *autopilotRig) runN(q *plan.Query, n int, step time.Duration) (int64, int, error) {
	var work int64
	rows := 0
	for i := 0; i < n; i++ {
		r.mc.Advance(step)
		res, err := r.sess.Run(q)
		if err != nil {
			return 0, 0, err
		}
		work += res.Work
		rows = len(res.Rows)
	}
	return work, rows, nil
}

// indexScenario is the beneficial-adoption path: a selective statement the
// index must serve, plus an unselective one whose candidate must be gated
// out. It mutates rep and returns the exported event ledger.
func indexScenario(seed uint64, rows, calls int, rep *autopilotReport) ([]byte, error) {
	tbl, err := datagen.GenTable(mlmath.NewRNG(seed), "events", rows, []datagen.ColSpec{
		{Name: "id", Kind: datagen.Sequential},
		{Name: "attr", Kind: datagen.Uniform, Domain: 1000},
		{Name: "wide", Kind: datagen.Uniform, Domain: 1000},
	})
	if err != nil {
		return nil, err
	}
	cat := catalog.NewCatalog()
	cat.MustAdd(tbl)
	cat.AnalyzeAll(32, 512)
	// Half a work unit per row-touch of build cost: the hot statement's win
	// clears it easily, the unselective one's cannot.
	r, err := newAutopilotRig(cat, 0.5)
	if err != nil {
		return nil, err
	}

	hot := plan.NewQuery(0)
	hot.AddFilter(0, expr.Pred{Col: 1, Op: expr.BETWEEN, Lo: 500, Hi: 509})
	cold := plan.NewQuery(0)
	cold.AddFilter(0, expr.Pred{Col: 2, Op: expr.BETWEEN, Lo: 0, Hi: 999}) // keeps every row: its index can't pay for itself

	preWork, preRows, err := r.runN(hot, calls, 50*time.Millisecond)
	if err != nil {
		return nil, err
	}
	if _, _, err := r.runN(cold, 3, 50*time.Millisecond); err != nil {
		return nil, err
	}
	evs, err := r.ap.Tick()
	if err != nil {
		return nil, err
	}
	for _, e := range evs {
		fmt.Printf("  event: %s %s %s net_win=%.0f\n", e.Stage, e.Kind, e.Target, e.NetWin)
		switch e.Stage {
		case autopilot.StageAdopted:
			if e.Kind == autopilot.KindIndex {
				rep.IndexAdopted = true
				rep.IndexTarget = e.Target
			}
		case autopilot.StageRejected:
			rep.Rejected++
		}
	}
	postWork, postRows, err := r.runN(hot, calls, 300*time.Millisecond)
	if err != nil {
		return nil, err
	}
	if postRows != preRows {
		return nil, fmt.Errorf("index scenario: rows changed %d -> %d after adoption", preRows, postRows)
	}
	evs, err = r.ap.Tick()
	if err != nil {
		return nil, err
	}
	for _, e := range evs {
		if e.Stage == autopilot.StageKept {
			rep.IndexKept = true
		}
	}
	rep.PreWorkPerCall = float64(preWork) / float64(calls)
	rep.PostWorkPerCall = float64(postWork) / float64(calls)
	if rep.PostWorkPerCall > 0 {
		rep.WorkReduction = rep.PreWorkPerCall / rep.PostWorkPerCall
	}

	var buf bytes.Buffer
	if err := r.ap.WriteEventsJSONL(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// viewScenario is the canary-revert path: stale join-key statistics bait the
// loop into a materialized view whose true size is ~160× the estimate; the
// shadow trial must catch and revert it. Also reads the ledger back through
// SQL. Mutates rep and returns the exported event ledger.
func viewScenario(seed uint64, lRows, rRows, calls int, rep *autopilotReport) ([]byte, error) {
	rng := mlmath.NewRNG(seed)
	cat := catalog.NewCatalog()
	for _, spec := range []struct {
		name string
		rows int
	}{{"l", lRows}, {"r", rRows}} {
		tbl, err := datagen.GenTable(rng, spec.name, spec.rows, []datagen.ColSpec{
			{Name: "id", Kind: datagen.Sequential},
			{Name: "k", Kind: datagen.Uniform, Domain: 100000},
			{Name: "attr", Kind: datagen.Uniform, Domain: 1000},
		})
		if err != nil {
			return nil, err
		}
		cat.MustAdd(tbl)
	}
	cat.AnalyzeAll(32, 512)
	// Stats freeze now; the keys then collapse to 5 distinct values, so the
	// estimator's view-size guess is off by the actual-matches factor.
	for id := 0; id < 2; id++ {
		data := cat.Table(id).Data[1]
		for i := range data {
			data[i] = int64(i % 5)
		}
	}
	r, err := newAutopilotRig(cat, -1)
	if err != nil {
		return nil, err
	}

	q := plan.NewQuery(0, 1)
	q.AddFilter(0, expr.Pred{Col: 2, Op: expr.BETWEEN, Lo: 500, Hi: 509})
	q.AddJoin(expr.JoinCond{LeftTable: 0, LeftCol: 1, RightTable: 1, RightCol: 1})

	_, preRows, err := r.runN(q, calls, 50*time.Millisecond)
	if err != nil {
		return nil, err
	}
	evs, err := r.ap.Tick()
	if err != nil {
		return nil, err
	}
	for _, e := range evs {
		if e.Stage == autopilot.StageAdopted && e.Kind == autopilot.KindView {
			rep.HarmfulAdopted = true
			rep.HarmfulTarget = e.Target
		}
	}
	_, duringRows, err := r.runN(q, calls, 300*time.Millisecond)
	if err != nil {
		return nil, err
	}
	evs, err = r.ap.Tick()
	if err != nil {
		return nil, err
	}
	for _, e := range evs {
		if e.Stage == autopilot.StageDropped {
			rep.HarmfulDropped = true
			rep.HarmfulBaseline = e.BaselineWPC
			rep.HarmfulObserved = e.ObservedWPC
		}
	}
	_, postRows, err := r.runN(q, 3, 50*time.Millisecond)
	if err != nil {
		return nil, err
	}
	rep.ResultsStable = preRows == duringRows && preRows == postRows

	rr, err := r.sess.Query("SELECT seq, stage, kind FROM sys_tuning ORDER BY seq")
	if err != nil {
		return nil, err
	}
	ledger := r.ap.Events()
	rep.SysTuningRows = len(rr.Rows)
	rep.SysTuningOK = len(rr.Rows) == len(ledger)
	for i, row := range rr.Rows {
		if !rep.SysTuningOK {
			break
		}
		if row[0] != ledger[i].Seq || row[1] != int64(ledger[i].Stage) || row[2] != int64(ledger[i].Kind) {
			rep.SysTuningOK = false
		}
	}

	var buf bytes.Buffer
	if err := r.ap.WriteEventsJSONL(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func runAutopilotBench(seed uint64, outPath string, quick bool) error {
	rep := autopilotReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       seed,
		Quick:      quick,
	}
	rows, calls := 20000, 24
	lRows, rRows := 1000, 2000
	if quick {
		rows, calls = 4000, 12
		lRows, rRows = 400, 800
	}

	fmt.Printf("autopilot bench: beneficial-index scenario (%d rows, %d calls/phase)\n", rows, calls)
	idxA, err := indexScenario(seed, rows, calls, &rep)
	if err != nil {
		return err
	}
	fmt.Printf("  adopted=%v kept=%v target=%s work/call %.0f -> %.0f (%.1fx)\n",
		rep.IndexAdopted, rep.IndexKept, rep.IndexTarget,
		rep.PreWorkPerCall, rep.PostWorkPerCall, rep.WorkReduction)

	fmt.Printf("autopilot bench: canary-revert scenario (%d x %d rows, stale join stats)\n", lRows, rRows)
	viewA, err := viewScenario(seed, lRows, rRows, calls, &rep)
	if err != nil {
		return err
	}
	fmt.Printf("  adopted=%v dropped=%v target=%s observed/baseline wpc %.0f/%.0f\n",
		rep.HarmfulAdopted, rep.HarmfulDropped, rep.HarmfulTarget,
		rep.HarmfulObserved, rep.HarmfulBaseline)

	fmt.Println("autopilot bench: replaying both scenarios from scratch")
	var rep2 autopilotReport
	idxB, err := indexScenario(seed, rows, calls, &rep2)
	if err != nil {
		return err
	}
	viewB, err := viewScenario(seed, lRows, rRows, calls, &rep2)
	if err != nil {
		return err
	}
	rep.ReplayIdentical = bytes.Equal(idxA, idxB) && bytes.Equal(viewA, viewB)
	rep.Events = bytes.Count(idxA, []byte("\n")) + bytes.Count(viewA, []byte("\n"))
	fmt.Printf("  %d events, byte-identical=%v; sys_tuning rows=%d ok=%v\n",
		rep.Events, rep.ReplayIdentical, rep.SysTuningRows, rep.SysTuningOK)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)

	var violations []string
	if !rep.IndexAdopted {
		violations = append(violations, "beneficial index was not adopted")
	}
	if !rep.IndexKept {
		violations = append(violations, "beneficial index did not survive its shadow trial")
	}
	if rep.WorkReduction <= 1 {
		violations = append(violations, fmt.Sprintf("adoption did not reduce observed work (%.2fx)", rep.WorkReduction))
	}
	if rep.Rejected == 0 {
		violations = append(violations, "the unselective candidate was not rejected at the gate")
	}
	if !rep.HarmfulAdopted {
		violations = append(violations, "the stale-stats view was not adopted (scenario bait failed)")
	}
	if !rep.HarmfulDropped {
		violations = append(violations, "the harmful view was not dropped by shadow verification")
	}
	if !rep.ResultsStable {
		violations = append(violations, "query results changed across adopt/revert")
	}
	if !rep.ReplayIdentical {
		violations = append(violations, "two replays diverged (determinism contract broken)")
	}
	if !rep.SysTuningOK {
		violations = append(violations, "sys_tuning disagrees with the event ledger")
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "autopilot bench: VIOLATION: %s\n", v)
		}
		return errors.New("autopilot contracts violated")
	}
	fmt.Println("autopilot bench: all contracts hold")
	return nil
}
