package main

// Engine benchmark mode (-engine): exercises the internal/engine concurrent
// query-session front end and writes BENCH_engine.json.
//
//   - plan cache: a repeated workload (Q distinct star-join queries × R
//     passes) through one engine vs the same workload re-planned from scratch
//     every time. The cache hit-rate must be exactly Q·(R−1)/(Q·R) — every
//     replay hits, every first sighting misses — and the cached workload must
//     run at least 1.5× faster than the plan-every-time baseline (the win is
//     skipped join-order DP, so it holds even on one core);
//   - admission control: a one-slot engine with a query deterministically
//     parked in planning must reject every concurrent arrival with the typed
//     overload error — exactly as many rejections as arrivals, and the slot
//     must be reusable after the in-flight query drains;
//   - graceful degradation: with a learned estimator that returns NaN for
//     every estimate, every query must still succeed through the classical
//     re-plan (Bao's safety contract: the learned path may be useless, never
//     harmful), with the fallback counter accounting for each run.
//
// Any violated contract makes the benchmark exit nonzero; check.sh runs the
// -quick variant as a smoke test.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"

	"ml4db/internal/engine"
	"ml4db/internal/mlmath"
	"ml4db/internal/obs"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/exec"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
)

type engineReport struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Seed       uint64 `json:"seed"`
	Quick      bool   `json:"quick"`

	Tables  int `json:"tables"`
	Queries int `json:"queries"`
	Repeats int `json:"repeats"`

	BaselineSec float64 `json:"baseline_sec"`
	CachedSec   float64 `json:"cached_sec"`
	Speedup     float64 `json:"speedup"`

	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	HitRate      float64 `json:"hit_rate"`
	HitRateExact bool    `json:"hit_rate_exact"`

	OverloadOffered  int  `json:"overload_offered"`
	OverloadRejected int  `json:"overload_rejected"`
	OverloadExact    bool `json:"overload_exact"`

	FallbackRuns      int  `json:"fallback_runs"`
	FallbackNeverFail bool `json:"fallback_never_fails"`
}

// starWorkload builds the benchmark schema and Q distinct star-join queries:
// same shape (fact ⋈ every dimension), different range literals, so each is
// its own plan-cache entry on first sighting and a pure hit afterwards.
func starWorkload(seed uint64, queries int) (*datagen.StarSchema, []*plan.Query, error) {
	sch, err := datagen.NewStarSchema(mlmath.NewRNG(seed), 4000, 200, 5)
	if err != nil {
		return nil, nil, err
	}
	qs := make([]*plan.Query, queries)
	for i := range qs {
		q := plan.NewQuery(append([]int{sch.FactID}, sch.DimIDs...)...)
		// Selective filter: execution stays cheap, so the repeated workload is
		// planning-dominated — the regime a plan cache exists for.
		q.AddFilter(0, expr.Pred{Col: sch.AttrCols[0], Op: expr.GE, Lo: int64(860 + 7*i)})
		for d, col := range sch.FKCol {
			q.AddJoin(expr.JoinCond{LeftTable: 0, LeftCol: col, RightTable: d + 1, RightCol: 0})
		}
		qs[i] = q
	}
	return sch, qs, nil
}

// nanLearnedEstimator is a pathologically broken learned estimator: every
// estimate is NaN, so the engine's guard must trip on the first call.
type nanLearnedEstimator struct{}

func (nanLearnedEstimator) ScanRows(q *plan.Query, pos int) float64 { return math.NaN() }
func (nanLearnedEstimator) JoinSelectivity(q *plan.Query, c expr.JoinCond) float64 {
	return math.NaN()
}

// parkingEstimator blocks the first estimator call until released, holding
// its session's admission slot open while the benchmark offers concurrent
// arrivals. Benchmark-only; the engine itself spawns nothing.
type parkingEstimator struct {
	inner   optimizer.CardEstimator
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (p *parkingEstimator) park() {
	p.once.Do(func() {
		close(p.entered)
		<-p.release
	})
}

func (p *parkingEstimator) ScanRows(q *plan.Query, pos int) float64 {
	p.park()
	return p.inner.ScanRows(q, pos)
}

func (p *parkingEstimator) JoinSelectivity(q *plan.Query, c expr.JoinCond) float64 {
	p.park()
	return p.inner.JoinSelectivity(q, c)
}

func runEngineBench(seed uint64, outPath string, quick bool) error {
	reps := 3
	queries, repeats := 12, 25
	if quick {
		reps = 1
		queries, repeats = 6, 10
	}
	sch, qs, err := starWorkload(seed, queries)
	if err != nil {
		return err
	}
	rep := engineReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Seed: seed, Quick: quick,
		Tables: 1 + len(sch.DimIDs), Queries: queries, Repeats: repeats,
	}

	// Baseline: every run plans from scratch, then executes.
	opt := optimizer.New(sch.Cat)
	exc := exec.New(sch.Cat)
	var baselineRows int
	rep.BaselineSec = bestOf(reps, func() {
		baselineRows = 0
		for r := 0; r < repeats; r++ {
			for _, q := range qs {
				p, err := opt.Plan(q, optimizer.NoHint())
				if err != nil {
					panic(err)
				}
				res, err := exc.Execute(p, exec.Options{})
				if err != nil {
					panic(err)
				}
				baselineRows += len(res.Rows)
			}
		}
	})

	// Cached: the same workload through one engine; after the first pass every
	// plan comes from the cache. A fresh engine per timed run keeps the cold
	// misses inside the measurement.
	runCached := func(reg *obs.Registry) int {
		eng := engine.New(sch.Cat, engine.Options{Metrics: reg})
		sess := eng.Session()
		rows := 0
		for r := 0; r < repeats; r++ {
			for _, q := range qs {
				res, err := sess.Run(q)
				if err != nil {
					panic(err)
				}
				rows += len(res.Rows)
			}
		}
		return rows
	}
	reg := obs.NewRegistry()
	if got := runCached(reg); got != baselineRows {
		return fmt.Errorf("cached workload returned %d rows, baseline %d", got, baselineRows)
	}
	rep.CacheHits = reg.Counter("engine.plancache.hits").Value()
	rep.CacheMisses = reg.Counter("engine.plancache.misses").Value()
	if total := rep.CacheHits + rep.CacheMisses; total > 0 {
		rep.HitRate = float64(rep.CacheHits) / float64(total)
	}
	rep.HitRateExact = rep.CacheMisses == int64(queries) &&
		rep.CacheHits == int64(queries*(repeats-1))
	if !rep.HitRateExact {
		return fmt.Errorf("cache hit-rate is not exact: hits=%d misses=%d, want %d/%d",
			rep.CacheHits, rep.CacheMisses, queries*(repeats-1), queries)
	}
	rep.CachedSec = bestOf(reps, func() { runCached(nil) })
	rep.Speedup = rep.BaselineSec / rep.CachedSec
	if rep.Speedup < 1.5 {
		return fmt.Errorf("plan cache speedup %.2fx < 1.5x on the repeated workload", rep.Speedup)
	}

	// Admission overflow exactness: park the only slot inside planning, offer
	// N arrivals, and require N typed rejections — then a clean drain.
	const offered = 32
	rep.OverloadOffered = offered
	admReg := obs.NewRegistry()
	one := engine.New(sch.Cat, engine.Options{MaxConcurrent: 1, Metrics: admReg})
	parked := &parkingEstimator{
		inner:   &optimizer.HistEstimator{Cat: sch.Cat},
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	if err := one.SetEstimator(parked, 1); err != nil {
		return err
	}
	inflight := make(chan error, 1)
	go func() {
		_, err := one.Run(qs[0])
		inflight <- err
	}()
	<-parked.entered
	for i := 0; i < offered; i++ {
		_, err := one.Run(qs[i%len(qs)])
		if errors.Is(err, engine.ErrOverloaded) {
			rep.OverloadRejected++
		} else if err != nil {
			return fmt.Errorf("overloaded engine returned a non-overload error: %v", err)
		}
	}
	close(parked.release)
	if err := <-inflight; err != nil {
		return fmt.Errorf("in-flight query failed after drain: %v", err)
	}
	if _, err := one.Run(qs[0]); err != nil {
		return fmt.Errorf("run after drain: %v", err)
	}
	rep.OverloadExact = rep.OverloadRejected == offered &&
		admReg.Counter("engine.rejected").Value() == offered &&
		admReg.Counter("engine.admitted").Value() == 2
	if !rep.OverloadExact {
		return fmt.Errorf("admission overflow is not exact: rejected %d of %d (counters: rejected=%d admitted=%d)",
			rep.OverloadRejected, offered,
			admReg.Counter("engine.rejected").Value(), admReg.Counter("engine.admitted").Value())
	}

	// Fallback never fails: a NaN-spewing learned estimator must not cost a
	// single query — every run re-plans classically and matches the baseline.
	fbReg := obs.NewRegistry()
	fb := engine.New(sch.Cat, engine.Options{Metrics: fbReg})
	if err := fb.SetEstimator(nanLearnedEstimator{}, 1); err != nil {
		return err
	}
	rep.FallbackNeverFail = true
	for _, q := range qs {
		res, err := fb.Run(q)
		if err != nil || !res.Fallback {
			rep.FallbackNeverFail = false
			return fmt.Errorf("broken-estimator run: err=%v fallback=%v, want clean classical fallback", err, res != nil && res.Fallback)
		}
		rep.FallbackRuns++
	}
	if got := fbReg.Counter("engine.fallbacks").Value(); got != int64(queries) {
		rep.FallbackNeverFail = false
		return fmt.Errorf("fallback counter = %d, want %d", got, queries)
	}

	fmt.Printf("%-24s baseline %8.4fs  cached %8.4fs  speedup %.2fx\n",
		fmt.Sprintf("engine_q%d_r%d", queries, repeats), rep.BaselineSec, rep.CachedSec, rep.Speedup)
	fmt.Printf("%-24s hits %d  misses %d  hit-rate %.3f  exact %v\n",
		"plan_cache", rep.CacheHits, rep.CacheMisses, rep.HitRate, rep.HitRateExact)
	fmt.Printf("%-24s offered %d  rejected %d  exact %v\n",
		"admission_overflow", rep.OverloadOffered, rep.OverloadRejected, rep.OverloadExact)
	fmt.Printf("%-24s runs %d  never-fails %v\n",
		"estimator_fallback", rep.FallbackRuns, rep.FallbackNeverFail)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (gomaxprocs=%d)\n", outPath, rep.GOMAXPROCS)
	return nil
}
