package main

// Kernel benchmark mode (-kernels): times the cache-blocked parallel math
// kernels against their serial counterparts and writes the results to a JSON
// file (BENCH_kernels.json by default). Two families are measured:
//
//   - mlmath.MatMul on square matrices, serial (nil pool) vs a
//     GOMAXPROCS-sized pool;
//   - end-to-end nn.MLP training on a synthetic regression set, serial vs
//     data-parallel mini-batches.
//
// Every parallel run is also checked for the repository's determinism
// contract: MatMul must be bit-identical to the serial kernel for every
// worker count, and parallel training must be bit-identical across repeated
// runs with the same seed and worker count. A violation fails the benchmark
// rather than just noting it, because a fast-but-irreproducible kernel is
// useless here. Speedups on a single-CPU machine will hover around 1x (the
// pool degenerates to near-serial execution plus channel overhead); the
// gomaxprocs and numcpu fields record the machine so readers can judge the
// numbers. See docs/PERFORMANCE.md for how to interpret the output.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"ml4db/internal/mlmath"
	"ml4db/internal/nn"
)

type kernelResult struct {
	Name         string  `json:"name"`
	SerialSec    float64 `json:"serial_sec"`
	ParallelSec  float64 `json:"parallel_sec"`
	Speedup      float64 `json:"speedup"`
	Workers      int     `json:"workers"`
	BitIdentical bool    `json:"bit_identical"`
	// Identity names the determinism property verified for this row:
	// "serial" = parallel output equals the serial output bit for bit,
	// "rerun" = repeated runs with the same seed and worker count agree.
	Identity string `json:"identity"`
}

type kernelReport struct {
	GOMAXPROCS  int            `json:"gomaxprocs"`
	NumCPU      int            `json:"numcpu"`
	MatMulBlock int            `json:"matmul_block"`
	Seed        uint64         `json:"seed"`
	Quick       bool           `json:"quick"`
	Results     []kernelResult `json:"results"`
}

// bestOf returns the fastest of reps timed runs of f — the usual antidote to
// scheduler noise on shared machines.
func bestOf(reps int, f func()) float64 {
	best := math.Inf(1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		if d := time.Since(start).Seconds(); d < best {
			best = d
		}
	}
	return best
}

func fillMat(m *mlmath.Mat, rng *mlmath.RNG) {
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
}

func matsEqualBits(a, b *mlmath.Mat) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

func benchMatMul(seed uint64, size, reps, workers int) kernelResult {
	rng := mlmath.NewRNG(seed)
	a := mlmath.NewMat(size, size)
	b := mlmath.NewMat(size, size)
	fillMat(a, rng)
	fillMat(b, rng)

	serialOut := mlmath.MatMul(a, b, nil)
	serial := bestOf(reps, func() { mlmath.MatMul(a, b, nil) })

	pool := mlmath.NewPool(workers)
	defer pool.Close()
	identical := matsEqualBits(serialOut, mlmath.MatMul(a, b, pool))
	// Sweep a few other worker counts: identity must hold for all of them,
	// not just the benchmarked one.
	for _, w := range []int{2, 3, 5} {
		p := mlmath.NewPool(w)
		identical = identical && matsEqualBits(serialOut, mlmath.MatMul(a, b, p))
		p.Close()
	}
	parallel := bestOf(reps, func() { mlmath.MatMul(a, b, pool) })

	return kernelResult{
		Name:         fmt.Sprintf("matmul_%dx%d", size, size),
		SerialSec:    serial,
		ParallelSec:  parallel,
		Speedup:      serial / parallel,
		Workers:      workers,
		BitIdentical: identical,
		Identity:     "serial",
	}
}

// mlpDataset builds a synthetic nonlinear regression problem.
func mlpDataset(seed uint64, n, dim int) (xs, ys [][]float64) {
	rng := mlmath.NewRNG(seed)
	xs = make([][]float64, n)
	ys = make([][]float64, n)
	for i := range xs {
		x := make([]float64, dim)
		t := 0.0
		for j := range x {
			x[j] = rng.Float64()*2 - 1
			t += math.Sin(float64(j+1) * x[j])
		}
		xs[i] = x
		ys[i] = []float64{t / float64(dim)}
	}
	return xs, ys
}

func trainMLP(seed uint64, xs, ys [][]float64, epochs int, pool *mlmath.Pool) *nn.MLP {
	rng := mlmath.NewRNG(seed)
	m := nn.NewMLP([]int{len(xs[0]), 64, 64, 1}, nn.LeakyReLU{}, nn.Identity{}, rng)
	m.Fit(xs, ys, nn.FitOptions{
		Epochs:    epochs,
		BatchSize: 64,
		Optimizer: nn.NewAdam(1e-3),
		RNG:       mlmath.NewRNG(seed + 1),
		Pool:      pool,
	})
	return m
}

func mlpParamsEqualBits(a, b *nn.MLP) bool {
	ap, bp := a.Params(), b.Params()
	for i := range ap {
		for j := range ap[i].Val {
			if math.Float64bits(ap[i].Val[j]) != math.Float64bits(bp[i].Val[j]) {
				return false
			}
		}
	}
	return true
}

func benchMLPTrain(seed uint64, n, epochs, reps, workers int) kernelResult {
	xs, ys := mlpDataset(seed, n, 32)

	serial := bestOf(reps, func() { trainMLP(seed, xs, ys, epochs, nil) })

	pool := mlmath.NewPool(workers)
	defer pool.Close()
	// Rerun identity: the same seed and worker count must rebuild the exact
	// same model. (Cross-worker-count identity is deliberately not promised
	// for training — gradient reduction order depends on the shard count.)
	m1 := trainMLP(seed, xs, ys, epochs, pool)
	m2 := trainMLP(seed, xs, ys, epochs, pool)
	identical := mlpParamsEqualBits(m1, m2)
	parallel := bestOf(reps, func() { trainMLP(seed, xs, ys, epochs, pool) })

	return kernelResult{
		Name:         fmt.Sprintf("mlp_train_n%d_e%d", n, epochs),
		SerialSec:    serial,
		ParallelSec:  parallel,
		Speedup:      serial / parallel,
		Workers:      workers,
		BitIdentical: identical,
		Identity:     "rerun",
	}
}

func runKernelBench(seed uint64, outPath string, quick bool) error {
	workers := runtime.GOMAXPROCS(0)
	reps := 3
	sizes := []int{128, 256, 512}
	trainN, epochs := 2000, 3
	if quick {
		reps = 1
		sizes = []int{128, 256}
		trainN, epochs = 400, 1
	}

	rep := kernelReport{
		GOMAXPROCS:  workers,
		NumCPU:      runtime.NumCPU(),
		MatMulBlock: mlmath.MatMulBlock,
		Seed:        seed,
		Quick:       quick,
	}
	for _, size := range sizes {
		r := benchMatMul(seed, size, reps, workers)
		fmt.Printf("%-24s serial %8.4fs  parallel %8.4fs  speedup %.2fx  bit-identical %v\n",
			r.Name, r.SerialSec, r.ParallelSec, r.Speedup, r.BitIdentical)
		rep.Results = append(rep.Results, r)
	}
	r := benchMLPTrain(seed, trainN, epochs, reps, workers)
	fmt.Printf("%-24s serial %8.4fs  parallel %8.4fs  speedup %.2fx  rerun-identical %v\n",
		r.Name, r.SerialSec, r.ParallelSec, r.Speedup, r.BitIdentical)
	rep.Results = append(rep.Results, r)

	for _, r := range rep.Results {
		if !r.BitIdentical {
			return fmt.Errorf("kernel %s violated its determinism contract (%s identity)", r.Name, r.Identity)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (gomaxprocs=%d)\n", outPath, workers)
	return nil
}
