package main

// Querystore benchmark mode (-querystore): exercises the internal/querystore
// workload observatory end to end and writes BENCH_querystore.json.
//
//   - recording overhead: the same workload through one engine with the
//     store attached vs one with no store. The "nil is off, and free"
//     contract has its own allocation test; here the attached store's
//     per-query overhead is measured and reported (and must stay under an
//     order of magnitude of the bare run — recording is counter updates and
//     one plan walk, not a second execution);
//   - exact statement accounting: a scripted workload (distinct shapes with
//     known call counts, cache hits, and one budget abort) is read back via
//     `SELECT * FROM sys_statements ORDER BY total_work DESC` through the
//     normal planner/executor, and every count must equal what the driver
//     executed;
//   - deterministic export: the same workload replayed twice under fresh
//     mlmath.ManualClocks must produce byte-identical JSONL exports, and the
//     export must pass the querystore schema validator.
//
// Any violated contract makes the benchmark exit nonzero; check.sh runs the
// -quick variant as a smoke test.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"

	"ml4db/internal/engine"
	"ml4db/internal/mlmath"
	"ml4db/internal/querystore"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/exec"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
)

type querystoreReport struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Seed       uint64 `json:"seed"`
	Quick      bool   `json:"quick"`

	Queries int `json:"queries"`
	Repeats int `json:"repeats"`

	BareSec     float64 `json:"bare_sec"`
	RecordedSec float64 `json:"recorded_sec"`
	Overhead    float64 `json:"overhead"`

	Statements      int  `json:"statements"`
	AccountingExact bool `json:"accounting_exact"`

	ExportLines     int  `json:"export_lines"`
	ExportBytes     int  `json:"export_bytes"`
	ReplayIdentical bool `json:"replay_identical"`
	ExportValid     bool `json:"export_valid"`
}

// querystoreWorkload builds Q distinct star-join queries over a fresh
// schema, same as the engine bench but smaller: the subject here is the
// recording path, not the planner.
func querystoreWorkload(seed uint64, queries int) (*datagen.StarSchema, []*plan.Query, error) {
	sch, err := datagen.NewStarSchema(mlmath.NewRNG(seed), 2000, 100, 4)
	if err != nil {
		return nil, nil, err
	}
	qs := make([]*plan.Query, queries)
	for i := range qs {
		q := plan.NewQuery(append([]int{sch.FactID}, sch.DimIDs...)...)
		q.AddFilter(0, expr.Pred{Col: sch.AttrCols[0], Op: expr.GE, Lo: int64(860 + 7*i)})
		for d, col := range sch.FKCol {
			q.AddJoin(expr.JoinCond{LeftTable: 0, LeftCol: col, RightTable: d + 1, RightCol: 0})
		}
		qs[i] = q
	}
	return sch, qs, nil
}

func runQuerystoreBench(seed uint64, outPath, exportPath string, quick bool) error {
	reps := 3
	queries, repeats := 10, 20
	if quick {
		reps = 1
		queries, repeats = 5, 8
	}

	rep := querystoreReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Seed: seed, Quick: quick,
		Queries: queries, Repeats: repeats,
	}

	// --- Recording overhead: store-off vs store-on, same workload. ---
	runAll := func(eng *engine.Engine, qs []*plan.Query) {
		sess := eng.Session()
		for r := 0; r < repeats; r++ {
			for _, q := range qs {
				if _, err := sess.Run(q); err != nil {
					panic(err)
				}
			}
		}
	}
	{
		sch, qs, err := querystoreWorkload(seed, queries)
		if err != nil {
			return err
		}
		eng := engine.New(sch.Cat, engine.Options{})
		rep.BareSec = bestOf(reps, func() { runAll(eng, qs) })
	}
	{
		sch, qs, err := querystoreWorkload(seed, queries)
		if err != nil {
			return err
		}
		store := querystore.New(querystore.Options{Catalog: sch.Cat})
		eng := engine.New(sch.Cat, engine.Options{Store: store})
		rep.RecordedSec = bestOf(reps, func() { runAll(eng, qs) })
	}
	if rep.BareSec > 0 {
		rep.Overhead = rep.RecordedSec/rep.BareSec - 1
	}

	// --- Exact statement accounting through sys_statements. ---
	exact, nStatements, err := querystoreAccounting(seed)
	if err != nil {
		return err
	}
	rep.AccountingExact = exact
	rep.Statements = nStatements

	// --- Deterministic export: two replays, byte-identical, valid. ---
	replay := func() ([]byte, error) {
		sch, qs, err := querystoreWorkload(seed, queries)
		if err != nil {
			return nil, err
		}
		mc := &mlmath.ManualClock{T: time.Unix(0, 0)}
		store := querystore.New(querystore.Options{
			Clock: mc, Catalog: sch.Cat, Window: time.Second,
		})
		eng := engine.New(sch.Cat, engine.Options{Store: store})
		sess := eng.Session()
		for r := 0; r < 3; r++ {
			for _, q := range qs {
				if _, err := sess.Run(q); err != nil {
					return nil, err
				}
				mc.Advance(250 * time.Millisecond)
			}
		}
		store.Flush()
		var buf bytes.Buffer
		if err := store.WriteJSONL(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	exportA, err := replay()
	if err != nil {
		return err
	}
	exportB, err := replay()
	if err != nil {
		return err
	}
	rep.ReplayIdentical = bytes.Equal(exportA, exportB)
	rep.ExportBytes = len(exportA)
	n, verr := querystore.ValidateJSONL(bytes.NewReader(exportA))
	rep.ExportValid = verr == nil
	rep.ExportLines = n
	if exportPath != "" {
		if err := os.WriteFile(exportPath, exportA, 0o644); err != nil {
			return err
		}
		fmt.Printf("querystore export: %s (%d lines)\n", exportPath, n)
	}

	// --- Report. ---
	fmt.Printf("querystore bench: seed=%d quick=%v\n", seed, quick)
	fmt.Printf("  overhead      bare=%.4fs recorded=%.4fs overhead=%.1f%%\n",
		rep.BareSec, rep.RecordedSec, rep.Overhead*100)
	fmt.Printf("  accounting    statements=%d exact=%v\n", rep.Statements, rep.AccountingExact)
	fmt.Printf("  export        lines=%d bytes=%d replay_identical=%v valid=%v\n",
		rep.ExportLines, rep.ExportBytes, rep.ReplayIdentical, rep.ExportValid)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)

	if !rep.AccountingExact {
		return errors.New("querystore contract violated: sys_statements does not match the executed workload")
	}
	if !rep.ReplayIdentical {
		return errors.New("querystore contract violated: two replays exported different bytes")
	}
	if verr != nil {
		return fmt.Errorf("querystore contract violated: export fails validation: %v", verr)
	}
	return nil
}

// querystoreAccounting runs a scripted workload with known per-shape counts
// and checks every sys_statements row against what the driver executed.
func querystoreAccounting(seed uint64) (bool, int, error) {
	sch, qs, err := querystoreWorkload(seed, 3)
	if err != nil {
		return false, 0, err
	}
	store := querystore.New(querystore.Options{
		Clock:   &mlmath.ManualClock{T: time.Unix(0, 0)},
		Catalog: sch.Cat,
	})
	eng := engine.New(sch.Cat, engine.Options{Store: store})
	sess := eng.Session()

	// Script: q0 ×3, q1 ×2, q2 ×1, plus one budget-aborted run of q0's
	// shape. Expected per-shape calls: 4, 2, 1; total cache hits counted
	// from the results.
	var totalWork, cacheHits int64
	script := []int{0, 0, 0, 1, 1, 2}
	for _, i := range script {
		res, err := sess.Run(qs[i])
		if err != nil {
			return false, 0, err
		}
		totalWork += res.Work
		if res.CacheHit {
			cacheHits++
		}
	}
	tiny := eng.Session()
	tiny.Budget = &exec.Budget{MaxWork: 10}
	out, err := tiny.Run(qs[0])
	if !errors.Is(err, exec.ErrWorkBudgetExceeded) {
		return false, 0, fmt.Errorf("tiny budget run: %v, want budget abort", err)
	}
	if out.Result != nil {
		totalWork += out.Work
	}
	if out.CacheHit {
		cacheHits++
	}

	rr, err := sess.Query("SELECT * FROM sys_statements ORDER BY total_work DESC")
	if err != nil {
		return false, 0, err
	}
	col := map[string]int{}
	for i, c := range rr.Columns {
		col[c] = i
	}
	var sumCalls, sumWork, sumHits, sumAborts int64
	for _, row := range rr.Rows {
		sumCalls += row[col["calls"]]
		sumWork += row[col["total_work"]]
		sumHits += row[col["cache_hits"]]
		sumAborts += row[col["budget_aborts"]]
	}
	exact := len(rr.Rows) == 3 &&
		sumCalls == int64(len(script)+1) &&
		sumWork == totalWork &&
		sumHits == cacheHits &&
		sumAborts == 1
	if !exact {
		fmt.Fprintf(os.Stderr,
			"querystore accounting mismatch: rows=%d calls=%d/%d work=%d/%d hits=%d/%d aborts=%d/1\n",
			len(rr.Rows), sumCalls, len(script)+1, sumWork, totalWork, sumHits, cacheHits, sumAborts)
	}
	return exact, len(rr.Rows), nil
}
