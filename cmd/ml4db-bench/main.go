// Command ml4db-bench runs the reproduction harness: every experiment from
// DESIGN.md (paper artifacts F1/T1, claims E1–E20, and the ablations),
// printing the regenerated rows and whether each paper claim held.
//
// Usage:
//
//	ml4db-bench [-seed N] [-run ID[,ID...]] [-list]
//	ml4db-bench -kernels [-quick] [-kernels-out FILE]
//	ml4db-bench -trace spans.jsonl -metrics metrics.jsonl [-trace-queries N]
//	ml4db-bench -obsbench [-obs-out FILE]
//	ml4db-bench -serve [-quick] [-serve-out FILE] [-metrics metrics.jsonl]
//	ml4db-bench -engine [-quick] [-engine-out FILE]
//	ml4db-bench -querystore [-quick] [-querystore-out FILE] [-querystore-export FILE]
//	ml4db-bench -autopilot [-quick] [-autopilot-out FILE]
//
// The -kernels mode skips the experiments and instead benchmarks the
// parallel math kernels (cache-blocked MatMul, data-parallel MLP training)
// against their serial counterparts, verifying the determinism contracts and
// writing machine-readable results to BENCH_kernels.json (see
// docs/PERFORMANCE.md).
//
// The -trace/-metrics mode runs a small instrumented workload and writes the
// observability JSONL artifacts (validate with cmd/ml4db-tracecheck); the
// -obsbench mode measures the instrumentation's execution overhead and
// writes BENCH_obs.json (see docs/OBSERVABILITY.md).
//
// The -serve mode benchmarks the internal/modelsvc serving subsystem —
// registry round trips, batched vs serial inference, canary-gate rollouts,
// admission control — writing BENCH_serve.json and, with -metrics, the
// subsystem's metrics JSONL (see docs/SERVING.md).
//
// The -engine mode benchmarks the internal/engine query-session front end —
// plan-cache speedup on a repeated workload, exact cache hit accounting,
// admission overflow, and learned-estimator fallback — writing
// BENCH_engine.json and exiting nonzero if any engine contract is violated
// (see docs/ENGINE.md).
//
// The -querystore mode benchmarks the internal/querystore workload
// observatory — recording overhead vs a store-less engine, exact statement
// accounting read back through the sys_statements system view, and
// byte-identical two-replay JSONL exports — writing BENCH_querystore.json
// and exiting nonzero if any observatory contract is violated (see
// docs/QUERYSTORE.md).
//
// The -autopilot mode drives the internal/autopilot self-driving loop end to
// end — a beneficial secondary index mined from live telemetry, adopted, and
// confirmed by its shadow trial; a stale-stats-baited harmful materialized
// view adopted and then auto-dropped; byte-identical two-replay event
// ledgers; and the sys_tuning view read through SQL — writing
// BENCH_autopilot.json and exiting nonzero if any tuning contract is
// violated (see docs/AUTOPILOT.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ml4db/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 42, "random seed for all experiments")
	run := flag.String("run", "", "comma-separated experiment IDs to run (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	kernels := flag.Bool("kernels", false, "benchmark parallel math kernels instead of running experiments")
	kernelsOut := flag.String("kernels-out", "BENCH_kernels.json", "output file for -kernels results")
	quick := flag.Bool("quick", false, "with -kernels: smaller sizes and single timed runs")
	tracePath := flag.String("trace", "", "run an instrumented workload and write span JSONL to this file")
	metricsPath := flag.String("metrics", "", "run an instrumented workload and write metrics JSONL to this file")
	traceQueries := flag.Int("trace-queries", 5, "number of queries in the -trace/-metrics workload")
	obsbench := flag.Bool("obsbench", false, "benchmark observability overhead (traced vs untraced execution)")
	obsOut := flag.String("obs-out", "BENCH_obs.json", "output file for -obsbench results")
	serve := flag.Bool("serve", false, "benchmark the modelsvc serving subsystem (registry, batching, rollout)")
	serveOut := flag.String("serve-out", "BENCH_serve.json", "output file for -serve results")
	engineBench := flag.Bool("engine", false, "benchmark the query-session engine (plan cache, admission, fallback)")
	engineOut := flag.String("engine-out", "BENCH_engine.json", "output file for -engine results")
	querystoreBench := flag.Bool("querystore", false, "benchmark the workload observatory (recording overhead, sys views, replay)")
	querystoreOut := flag.String("querystore-out", "BENCH_querystore.json", "output file for -querystore results")
	querystoreExport := flag.String("querystore-export", "", "with -querystore: also write the workload's querystore JSONL export here")
	storageBench := flag.Bool("storage", false, "benchmark the disk-backed storage engine (oversized scans, learned eviction, replay)")
	storageOut := flag.String("storage-out", "BENCH_storage.json", "output file for -storage results")
	autopilotBench := flag.Bool("autopilot", false, "benchmark the self-driving tuning loop (index adoption, canary revert, replay)")
	autopilotOut := flag.String("autopilot-out", "BENCH_autopilot.json", "output file for -autopilot results")
	execBench := flag.Bool("exec", false, "benchmark partitioned parallel execution (speedup, bit-identity, abort identity, cache coherence)")
	execOut := flag.String("exec-out", "BENCH_exec.json", "output file for -exec results")
	flag.Parse()

	if *execBench {
		if err := runExecBench(*seed, *execOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "ml4db-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *autopilotBench {
		if err := runAutopilotBench(*seed, *autopilotOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "ml4db-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *querystoreBench {
		if err := runQuerystoreBench(*seed, *querystoreOut, *querystoreExport, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "ml4db-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *storageBench {
		if err := runStorageBench(*seed, *storageOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "ml4db-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *engineBench {
		if err := runEngineBench(*seed, *engineOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "ml4db-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *serve {
		if err := runServeBench(*seed, *serveOut, *metricsPath, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "ml4db-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *kernels {
		if err := runKernelBench(*seed, *kernelsOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "ml4db-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *obsbench {
		if err := runObsBench(*seed, *obsOut); err != nil {
			fmt.Fprintf(os.Stderr, "ml4db-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *tracePath != "" || *metricsPath != "" {
		if err := runTraced(*seed, *traceQueries, *tracePath, *metricsPath); err != nil {
			fmt.Fprintf(os.Stderr, "ml4db-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Println(r.ID)
		}
		return
	}

	var runners []experiments.Runner
	if *run == "" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			r, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "ml4db-bench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	failures := 0
	for _, r := range runners {
		start := time.Now()
		rep, err := r.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ml4db-bench: %s failed: %v\n", r.ID, err)
			failures++
			continue
		}
		fmt.Print(rep.String())
		fmt.Printf("  (%.1fs)\n\n", time.Since(start).Seconds())
		if !rep.Holds {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "ml4db-bench: %d experiment(s) did not reproduce the claimed direction\n", failures)
		os.Exit(1)
	}
	fmt.Println("all experiments reproduce the paper's claimed directions")
}
