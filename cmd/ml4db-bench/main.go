// Command ml4db-bench runs the reproduction harness: every experiment from
// DESIGN.md (paper artifacts F1/T1, claims E1–E20, and the ablations),
// printing the regenerated rows and whether each paper claim held.
//
// Usage:
//
//	ml4db-bench [-seed N] [-run ID[,ID...]] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ml4db/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 42, "random seed for all experiments")
	run := flag.String("run", "", "comma-separated experiment IDs to run (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Println(r.ID)
		}
		return
	}

	var runners []experiments.Runner
	if *run == "" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			r, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "ml4db-bench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	failures := 0
	for _, r := range runners {
		start := time.Now()
		rep, err := r.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ml4db-bench: %s failed: %v\n", r.ID, err)
			failures++
			continue
		}
		fmt.Print(rep.String())
		fmt.Printf("  (%.1fs)\n\n", time.Since(start).Seconds())
		if !rep.Holds {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "ml4db-bench: %d experiment(s) did not reproduce the claimed direction\n", failures)
		os.Exit(1)
	}
	fmt.Println("all experiments reproduce the paper's claimed directions")
}
