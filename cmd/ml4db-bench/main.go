// Command ml4db-bench runs the reproduction harness: every experiment from
// DESIGN.md (paper artifacts F1/T1, claims E1–E20, and the ablations),
// printing the regenerated rows and whether each paper claim held.
//
// Usage:
//
//	ml4db-bench [-seed N] [-run ID[,ID...]] [-list]
//	ml4db-bench -kernels [-quick] [-kernels-out FILE]
//
// The -kernels mode skips the experiments and instead benchmarks the
// parallel math kernels (cache-blocked MatMul, data-parallel MLP training)
// against their serial counterparts, verifying the determinism contracts and
// writing machine-readable results to BENCH_kernels.json (see
// docs/PERFORMANCE.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ml4db/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 42, "random seed for all experiments")
	run := flag.String("run", "", "comma-separated experiment IDs to run (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	kernels := flag.Bool("kernels", false, "benchmark parallel math kernels instead of running experiments")
	kernelsOut := flag.String("kernels-out", "BENCH_kernels.json", "output file for -kernels results")
	quick := flag.Bool("quick", false, "with -kernels: smaller sizes and single timed runs")
	flag.Parse()

	if *kernels {
		if err := runKernelBench(*seed, *kernelsOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "ml4db-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Println(r.ID)
		}
		return
	}

	var runners []experiments.Runner
	if *run == "" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			r, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "ml4db-bench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	failures := 0
	for _, r := range runners {
		start := time.Now()
		rep, err := r.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ml4db-bench: %s failed: %v\n", r.ID, err)
			failures++
			continue
		}
		fmt.Print(rep.String())
		fmt.Printf("  (%.1fs)\n\n", time.Since(start).Seconds())
		if !rep.Holds {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "ml4db-bench: %d experiment(s) did not reproduce the claimed direction\n", failures)
		os.Exit(1)
	}
	fmt.Println("all experiments reproduce the paper's claimed directions")
}
