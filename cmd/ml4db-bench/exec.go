package main

// Executor benchmark mode (-exec): exercises the partitioned parallel
// operators in internal/sqlkit/exec and writes BENCH_exec.json.
//
//   - per-operator speedup: for SeqScan, HashJoin, and HashAgg plans the
//     optimizer is asked to partition (Parallelism = worker count) and the
//     partitioned execution over an mlmath.Pool is timed against the same
//     plan with every Partitions annotation stripped. With GOMAXPROCS ≥ 4
//     the slowest operator must still clear 2×; on a single-core container
//     the speedup is ≈1× and is recorded as such (single_core: true) rather
//     than enforced;
//   - bit-identity: every parallel run must return byte-identical rows, an
//     identical work total, and identical per-category counters to the
//     serial run — and must stay identical when the same partitioned plan
//     runs over pools with different worker counts (the exchange contract:
//     Partitions decides the shard layout, workers only decide who runs
//     which shard);
//   - abort identity: with a work budget that trips mid-operator, serial
//     and parallel runs must fail with the same typed BudgetExceededError
//     (same kind, limit, and used count), the same work total, and the
//     same counters;
//   - plan-cache coherence: an engine plan cached at one parallelism degree
//     must never be served at another — switching the knob re-plans, and
//     switching back re-hits the original entry.
//
// Any violated contract makes the benchmark exit nonzero; check.sh runs the
// -quick variant as a smoke test.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"reflect"
	"runtime"

	"ml4db/internal/engine"
	"ml4db/internal/mlmath"
	"ml4db/internal/obs"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/exec"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
)

type execOpReport struct {
	Name        string  `json:"name"`
	Rows        int     `json:"rows"`
	Partitions  int     `json:"partitions"`
	SerialSec   float64 `json:"serial_sec"`
	ParallelSec float64 `json:"parallel_sec"`
	Speedup     float64 `json:"speedup"`
}

type execReport struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Seed       uint64 `json:"seed"`
	Quick      bool   `json:"quick"`

	Workers    int  `json:"workers"`
	FactRows   int  `json:"fact_rows"`
	SingleCore bool `json:"single_core"`

	Operators []execOpReport `json:"operators"`

	BitIdentical   bool `json:"bit_identical"`
	AbortIdentical bool `json:"abort_identical"`
	CacheCoherent  bool `json:"cache_coherent"`
}

// stripExecPartitions clears every Partitions annotation, yielding the
// serial reference plan for an identity comparison.
func stripExecPartitions(p *plan.Node) *plan.Node {
	c := p.Clone()
	c.Walk(func(n *plan.Node) { n.Partitions = 0 })
	return c
}

func maxExecPartitions(p *plan.Node) int {
	parts := 1
	p.Walk(func(n *plan.Node) {
		if n.Partitions > parts {
			parts = n.Partitions
		}
	})
	return parts
}

// sameExecResult reports whether two executions are bit-identical: rows,
// work total, and the per-category counter breakdown.
func sameExecResult(a, b *exec.Result) bool {
	return a.Work == b.Work && a.Counters == b.Counters && reflect.DeepEqual(a.Rows, b.Rows)
}

func runExecBench(seed uint64, outPath string, quick bool) error {
	reps := 3
	factRows, dimRows := 120000, 400
	if quick {
		reps = 1
		factRows = 24000
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	if workers > 8 {
		workers = 8
	}
	rep := execReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Seed: seed, Quick: quick,
		Workers: workers, FactRows: factRows,
		SingleCore:   runtime.GOMAXPROCS(0) < 4,
		BitIdentical: true,
	}

	sch, err := datagen.NewStarSchema(mlmath.NewRNG(seed), factRows, dimRows, 2)
	if err != nil {
		return err
	}
	pool := mlmath.NewPool(workers)
	defer pool.Close()
	// A second, smaller pool proves worker-count independence: the same
	// partitioned plan must produce the same bytes regardless of who runs
	// which shard.
	altPool := mlmath.NewPool(3)
	defer altPool.Close()

	scanQ := plan.NewQuery(sch.FactID)
	scanQ.AddFilter(0, expr.Pred{Col: sch.AttrCols[0], Op: expr.LE, Lo: 700})
	joinQ := plan.NewQuery(sch.FactID, sch.DimIDs[0], sch.DimIDs[1])
	joinQ.AddJoin(expr.JoinCond{LeftTable: 0, LeftCol: sch.FKCol[0], RightTable: 1, RightCol: 0})
	joinQ.AddJoin(expr.JoinCond{LeftTable: 0, LeftCol: sch.FKCol[1], RightTable: 2, RightCol: 0})
	aggQ := plan.NewQuery(sch.FactID)
	aggQ.SetAgg(0, sch.FKCol[0], plan.AggCol{Table: 0, Col: sch.AttrCols[0]})

	exc := exec.New(sch.Cat)
	cases := []struct {
		name string
		q    *plan.Query
	}{
		{"seqscan", scanQ},
		{"hashjoin", joinQ},
		{"hashagg", aggQ},
	}
	rep.AbortIdentical = true
	for _, c := range cases {
		opt := optimizer.New(sch.Cat)
		opt.Parallelism = workers
		par, err := opt.Plan(c.q, optimizer.NoHint())
		if err != nil {
			return err
		}
		parts := maxExecPartitions(par)
		if parts < 2 {
			return fmt.Errorf("%s: optimizer never partitioned (%d fact rows, parallelism %d); speedup would be vacuous", c.name, factRows, workers)
		}
		serial := stripExecPartitions(par)

		serRes, err := exc.Execute(serial.Clone(), exec.Options{})
		if err != nil {
			return err
		}
		parRes, err := exc.Execute(par.Clone(), exec.Options{Pool: pool})
		if err != nil {
			return err
		}
		altRes, err := exc.Execute(par.Clone(), exec.Options{Pool: altPool})
		if err != nil {
			return err
		}
		if !sameExecResult(serRes, parRes) || !sameExecResult(serRes, altRes) {
			rep.BitIdentical = false
			return fmt.Errorf("%s: parallel result differs from serial (serial work=%d rows=%d, pool[%d] work=%d rows=%d, pool[3] work=%d rows=%d)",
				c.name, serRes.Work, len(serRes.Rows), workers, parRes.Work, len(parRes.Rows), altRes.Work, len(altRes.Rows))
		}

		opRep := execOpReport{Name: c.name, Rows: len(serRes.Rows), Partitions: parts}
		opRep.SerialSec = bestOf(reps, func() {
			if _, err := exc.Execute(serial.Clone(), exec.Options{}); err != nil {
				panic(err)
			}
		})
		opRep.ParallelSec = bestOf(reps, func() {
			if _, err := exc.Execute(par.Clone(), exec.Options{Pool: pool}); err != nil {
				panic(err)
			}
		})
		opRep.Speedup = opRep.SerialSec / opRep.ParallelSec
		rep.Operators = append(rep.Operators, opRep)
		fmt.Printf("%-24s serial %8.4fs  parallel %8.4fs  speedup %.2fx  (parts=%d rows=%d)\n",
			c.name, opRep.SerialSec, opRep.ParallelSec, opRep.Speedup, parts, opRep.Rows)

		// Abort identity: a budget that trips mid-operator must stop serial
		// and parallel runs at the same typed error (same kind, limit, and
		// used count), the same work total, and the same counters. Execute
		// discards partial rows on error, so the row comparison is the
		// empty-vs-empty degenerate case; the counter identity is the real
		// assertion that the replay stopped at the same charge.
		budget := exec.Options{MaxWork: serRes.Work * 3 / 4}
		serAb, serErr := exc.Execute(serial.Clone(), budget)
		budget.Pool = pool
		parAb, parErr := exc.Execute(par.Clone(), budget)
		var serBE, parBE *exec.BudgetExceededError
		identical := errors.As(serErr, &serBE) && errors.As(parErr, &parBE) &&
			*serBE == *parBE && sameExecResult(serAb, parAb)
		if !identical {
			rep.AbortIdentical = false
			return fmt.Errorf("%s: budget abort diverged: serial err=%v work=%d rows=%d, parallel err=%v work=%d rows=%d",
				c.name, serErr, serAb.Work, len(serAb.Rows), parErr, parAb.Work, len(parAb.Rows))
		}
		fmt.Printf("%-24s limit %d  used %d  identical %v\n",
			c.name+"_abort", budget.MaxWork, serAb.Work, identical)
	}
	if !rep.SingleCore {
		for _, op := range rep.Operators {
			if op.Speedup < 2.0 {
				return fmt.Errorf("%s: speedup %.2fx < 2x with GOMAXPROCS=%d", op.Name, op.Speedup, rep.GOMAXPROCS)
			}
		}
	}

	// Plan-cache coherence across the parallelism knob: cached at p=workers,
	// re-planned serial at p=1, re-hit when switched back.
	reg := obs.NewRegistry()
	eng := engine.New(sch.Cat, engine.Options{Metrics: reg, Pool: pool})
	first, err := eng.Run(joinQ)
	if err != nil {
		return err
	}
	eng.SetParallelism(1)
	serialRun, err := eng.Run(joinQ)
	if err != nil {
		return err
	}
	eng.SetParallelism(workers)
	back, err := eng.Run(joinQ)
	if err != nil {
		return err
	}
	stillSerial := true
	serialRun.Plan.Walk(func(n *plan.Node) {
		if n.Partitions > 1 {
			stillSerial = false
		}
	})
	rep.CacheCoherent = !serialRun.CacheHit && stillSerial && back.CacheHit &&
		back.Plan.String() == first.Plan.String() &&
		reflect.DeepEqual(first.Rows, serialRun.Rows)
	if !rep.CacheCoherent {
		return fmt.Errorf("plan-cache coherence violated across parallelism change: p1Hit=%v p1Serial=%v backHit=%v",
			serialRun.CacheHit, stillSerial, back.CacheHit)
	}
	fmt.Printf("%-24s p=%d cached, p=1 re-planned serial, p=%d re-hit\n",
		"cache_coherence", workers, workers)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (gomaxprocs=%d, single_core=%v)\n", outPath, rep.GOMAXPROCS, rep.SingleCore)
	return nil
}
