package main

// Observability modes of ml4db-bench:
//
//   - -trace/-metrics run a small instrumented workload (spans around each
//     query's optimize and execute phases plus one span per plan operator,
//     and the learned components' counters and histograms) and write the
//     schema-stable JSONL files that cmd/ml4db-tracecheck validates;
//   - -obsbench measures the runtime overhead the instrumentation adds to
//     query execution — untraced vs EXPLAIN ANALYZE vs full tracing — and
//     verifies the "nil is off, and free" contract by counting allocations
//     on the nil-receiver call surface. Results go to BENCH_obs.json.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"ml4db/internal/experiments"
	"ml4db/internal/mlmath"
	"ml4db/internal/obs"
	"ml4db/internal/qo"
	"ml4db/internal/sqlkit/exec"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
)

// runTraced executes the instrumented workload and writes span and metric
// JSONL files, validating both before returning.
func runTraced(seed uint64, numQueries int, tracePath, metricsPath string) error {
	clock := mlmath.SystemClock{}
	tr := obs.NewTracer(clock)
	reg := obs.NewRegistry()
	if err := experiments.TraceWorkload(seed, numQueries, tr, reg, clock); err != nil {
		return err
	}
	if tracePath != "" {
		n, err := writeValidated(tracePath, tr.WriteJSONL, obs.ValidateTraceJSONL, "span")
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d spans)\n", tracePath, n)
	}
	if metricsPath != "" {
		n, err := writeValidated(metricsPath, reg.WriteJSONL, obs.ValidateMetricsJSONL, "metric")
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d metrics)\n", metricsPath, n)
	}
	return nil
}

// writeValidated writes a JSONL artifact and immediately re-reads it through
// its validator, so a schema break fails the producing command, not just the
// downstream checker. It returns the validated line count.
func writeValidated(path string, write func(io.Writer) error, validate func(io.Reader) (int, error), kind string) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	if err := write(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	rf, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer rf.Close()
	n, err := validate(rf)
	if err != nil {
		return 0, fmt.Errorf("%s: emitted invalid %s JSONL: %v", path, kind, err)
	}
	return n, nil
}

type obsBenchResult struct {
	Name        string  `json:"name"`
	BaselineSec float64 `json:"baseline_sec"`
	ObservedSec float64 `json:"observed_sec"`
	OverheadPct float64 `json:"overhead_pct"`
	Queries     int     `json:"queries"`
}

type obsBenchReport struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Seed       uint64 `json:"seed"`
	// NilPathAllocs must be zero: the allocation count of the full
	// nil-receiver instrumentation surface per operation.
	NilPathAllocs float64          `json:"nil_path_allocs"`
	Results       []obsBenchResult `json:"results"`
}

// runObsBench times a fixed query workload untraced vs instrumented and
// writes BENCH_obs.json.
func runObsBench(seed uint64, outPath string) error {
	env, plans, err := obsBenchWorkload(seed)
	if err != nil {
		return err
	}
	const reps = 5
	runAll := func() error {
		for _, p := range plans {
			if _, err := env.Exec.Execute(p, exec.Options{}); err != nil {
				return err
			}
		}
		return nil
	}
	runAnalyze := func() error {
		for _, p := range plans {
			if _, err := env.Exec.Execute(p, exec.Options{Analyze: true}); err != nil {
				return err
			}
		}
		return nil
	}

	// Baseline: observability fully off.
	env.Instrument(nil, nil, nil)
	if err := runAll(); err != nil { // warm up
		return err
	}
	base := bestOf(reps, func() { _ = runAll() })

	// EXPLAIN ANALYZE only (per-operator stats, no tracer).
	analyze := bestOf(reps, func() { _ = runAnalyze() })

	// Full tracing: fresh tracer and registry per rep so span accumulation
	// does not grow across reps.
	traced := bestOf(reps, func() {
		clock := mlmath.SystemClock{}
		env.Instrument(obs.NewTracer(clock), obs.NewRegistry(), clock)
		_ = runAnalyze()
	})
	env.Instrument(nil, nil, nil)

	nilAllocs := testing.AllocsPerRun(200, func() {
		var tr *obs.Tracer
		var reg *obs.Registry
		sp := tr.StartSpan("x", nil)
		sp.SetInt("k", 1)
		sp.End()
		reg.Counter("c").Inc()
		reg.Histogram("h", nil).Observe(1)
	})

	rep := obsBenchReport{
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Seed:          seed,
		NilPathAllocs: nilAllocs,
		Results: []obsBenchResult{
			{Name: "explain_analyze", BaselineSec: base, ObservedSec: analyze,
				OverheadPct: 100 * (analyze - base) / base, Queries: len(plans)},
			{Name: "trace_metrics_analyze", BaselineSec: base, ObservedSec: traced,
				OverheadPct: 100 * (traced - base) / base, Queries: len(plans)},
		},
	}
	if nilAllocs != 0 {
		return fmt.Errorf("nil observability path allocated %.1f times per op, want 0", nilAllocs)
	}
	for _, r := range rep.Results {
		fmt.Printf("%-24s baseline %8.5fs  observed %8.5fs  overhead %+.1f%%\n",
			r.Name, r.BaselineSec, r.ObservedSec, r.OverheadPct)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (gomaxprocs=%d, nil-path allocs %.0f)\n", outPath, rep.GOMAXPROCS, nilAllocs)
	return nil
}

// obsBenchWorkload plans a fixed set of star queries to execute repeatedly.
func obsBenchWorkload(seed uint64) (*qo.Env, []*plan.Node, error) {
	env, gen, err := experiments.NewQoTestbed(seed, 4000)
	if err != nil {
		return nil, nil, err
	}
	var plans []*plan.Node
	for i := 0; i < 20; i++ {
		q := gen.QueryWithDims(2)
		p, err := env.Opt.Plan(q, optimizer.NoHint())
		if err != nil {
			return nil, nil, err
		}
		plans = append(plans, p)
	}
	return env, plans, nil
}
