package main

// Serving benchmark mode (-serve): exercises the internal/modelsvc model
// lifecycle subsystem end to end and writes BENCH_serve.json.
//
//   - registry: publish + load round-trip latency for a versioned checkpoint,
//     with the restored model verified bit-identical to the published one;
//   - serving: batched inference through the Server (queue coalescing over a
//     worker pool) vs a serial per-request loop, with the bit-identity
//     contract checked for several worker counts;
//   - rollout: the canary gate driven under a ManualClock — a better
//     candidate must be promoted and a worse one rejected (the benchmark
//     fails otherwise), and the shadow-mode Observe overhead is measured
//     against stable-mode Observe;
//   - admission control: a bounded queue under overload must reject the
//     excess deterministically.
//
// With -metrics FILE the subsystem's obs instruments are written as metrics
// JSONL and validated (cmd/ml4db-tracecheck revalidates them in CI).

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"ml4db/internal/mlmath"
	"ml4db/internal/modelsvc"
	"ml4db/internal/nn"
	"ml4db/internal/obs"
)

// mlpPredictor adapts an nn.MLP to the serving interface.
type mlpPredictor struct{ net *nn.MLP }

func (p mlpPredictor) Predict(x []float64) float64 { return p.net.Forward(x)[0] }

type serveReport struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Seed       uint64 `json:"seed"`
	Quick      bool   `json:"quick"`

	Requests int `json:"requests"`
	MaxBatch int `json:"max_batch"`
	Workers  int `json:"workers"`

	SerialSec    float64 `json:"serial_sec"`
	BatchedSec   float64 `json:"batched_sec"`
	Speedup      float64 `json:"speedup"`
	BitIdentical bool    `json:"bit_identical"`

	RegistryPublishSec float64 `json:"registry_publish_sec"`
	RegistryLoadSec    float64 `json:"registry_load_sec"`

	StableObserveSec    float64 `json:"stable_observe_sec"`
	ShadowObserveSec    float64 `json:"shadow_observe_sec"`
	ShadowOverheadRatio float64 `json:"shadow_overhead_ratio"`

	Promotions       int  `json:"promotions"`
	Rejections       int  `json:"rejections"`
	GateBlockedWorse bool `json:"gate_blocked_worse"`

	QueueRejected int64 `json:"queue_rejected"`
}

// serveModel builds the benchmark MLP (random init — inference cost does not
// depend on training) and a deterministic request stream.
func serveModel(seed uint64, dim int, n int) (mlpPredictor, [][]float64) {
	rng := mlmath.NewRNG(seed)
	net := nn.NewMLP([]int{dim, 64, 64, 1}, nn.LeakyReLU{}, nn.Identity{}, rng)
	xs := make([][]float64, n)
	for i := range xs {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		xs[i] = x
	}
	return mlpPredictor{net: net}, xs
}

func runServeBench(seed uint64, outPath, metricsPath string, quick bool) error {
	workers := runtime.GOMAXPROCS(0)
	reps := 3
	requests, dim, maxBatch := 20000, 16, 64
	if quick {
		reps = 1
		requests = 2000
	}
	model, xs := serveModel(seed, dim, requests)
	reg := obs.NewRegistry()
	rep := serveReport{
		GOMAXPROCS: workers, NumCPU: runtime.NumCPU(),
		Seed: seed, Quick: quick,
		Requests: requests, MaxBatch: maxBatch, Workers: workers,
	}

	// Registry round trip.
	regDir, err := os.MkdirTemp("", "ml4db-serve-registry-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(regDir)
	modelReg, err := modelsvc.OpenRegistry(regDir)
	if err != nil {
		return err
	}
	start := time.Now()
	man, err := modelsvc.PublishModule(modelReg, "bench-mlp", model.net, map[string]string{"trigger": "bench"})
	if err != nil {
		return err
	}
	rep.RegistryPublishSec = time.Since(start).Seconds()
	restored := nn.NewMLP([]int{dim, 64, 64, 1}, nn.LeakyReLU{}, nn.Identity{}, mlmath.NewRNG(seed+1))
	start = time.Now()
	if _, err := modelsvc.LoadModule(modelReg, "bench-mlp", man.Version, restored); err != nil {
		return err
	}
	rep.RegistryLoadSec = time.Since(start).Seconds()
	if a, b := model.net.Forward(xs[0])[0], restored.Forward(xs[0])[0]; math.Float64bits(a) != math.Float64bits(b) {
		return fmt.Errorf("registry round trip is not bit-identical: %v vs %v", a, b)
	}

	// Serial baseline.
	want := make([]float64, len(xs))
	rep.SerialSec = bestOf(reps, func() {
		for i, x := range xs {
			want[i] = model.Predict(x)
		}
	})

	// Batched serving through the queue, plus the bit-identity sweep.
	runBatched := func(w int) ([]float64, error) {
		pool := mlmath.NewPool(w)
		defer pool.Close()
		srv := modelsvc.NewServer(modelsvc.Single{Deployment: modelsvc.Deployment{Version: man.Version, Model: model}},
			modelsvc.ServerOptions{MaxQueue: len(xs), MaxBatch: maxBatch, Pool: pool, Metrics: reg})
		tickets := make([]*modelsvc.Ticket, len(xs))
		for i, x := range xs {
			t, err := srv.Submit(x)
			if err != nil {
				return nil, err
			}
			tickets[i] = t
		}
		srv.Flush()
		out := make([]float64, len(xs))
		for i, t := range tickets {
			out[i], _ = t.Wait()
		}
		return out, nil
	}
	rep.BitIdentical = true
	for _, w := range []int{1, 2, 3, workers} {
		out, err := runBatched(w)
		if err != nil {
			return err
		}
		for i := range out {
			if math.Float64bits(out[i]) != math.Float64bits(want[i]) {
				rep.BitIdentical = false
			}
		}
	}
	if !rep.BitIdentical {
		return fmt.Errorf("batched serving is not bit-identical to the serial loop")
	}
	rep.BatchedSec = bestOf(reps, func() { _, _ = runBatched(workers) })
	rep.Speedup = rep.SerialSec / rep.BatchedSec

	// Canary gate under a ManualClock: a worse candidate must be blocked, a
	// better one promoted. truth = model prediction + tiny offset makes the
	// incumbent near-perfect; candidates are biased copies.
	clock := &mlmath.ManualClock{T: time.Unix(1700000000, 0)}
	window := 64
	if quick {
		window = 16
	}
	rollout := modelsvc.NewRollout(modelsvc.Deployment{Version: man.Version, Model: model},
		modelsvc.RolloutOptions{Window: window, Clock: clock, Metrics: reg,
			ErrFn: func(pred, truth float64) float64 { return math.Abs(pred - truth) }})
	truth := func(x []float64) float64 { return model.Predict(x) + 0.25 }
	// Stable-mode Observe cost.
	rep.StableObserveSec = bestOf(reps, func() {
		for _, x := range xs[:window] {
			rollout.Observe(x, truth(x))
		}
	})
	// Worse candidate: twice the incumbent's distance from truth. Shadowing
	// runs exactly one window, so it is timed with a single rep.
	rollout.SetCandidate(modelsvc.Deployment{Version: man.Version + 1,
		Model: predictorFunc(func(x []float64) float64 { return model.Predict(x) - 0.5 })})
	rep.ShadowObserveSec = bestOf(1, func() {
		for _, x := range xs[:window] {
			rollout.Observe(x, truth(x))
		}
	})
	if rep.StableObserveSec > 0 {
		rep.ShadowOverheadRatio = rep.ShadowObserveSec / rep.StableObserveSec
	}
	promotions, rejections, _ := rollout.Stats()
	rep.GateBlockedWorse = promotions == 0 && rejections == 1 && rollout.Current().Version == man.Version
	if !rep.GateBlockedWorse {
		return fmt.Errorf("canary gate failed to block a worse candidate (promotions=%d rejections=%d)", promotions, rejections)
	}
	// Better candidate: exact truth function.
	rollout.SetCandidate(modelsvc.Deployment{Version: man.Version + 2, Model: predictorFunc(truth)})
	for _, x := range xs[:window] {
		rollout.Observe(x, truth(x))
	}
	promotions, rejections, _ = rollout.Stats()
	if promotions != 1 || rollout.Current().Version != man.Version+2 {
		return fmt.Errorf("canary gate failed to promote a better candidate (promotions=%d)", promotions)
	}
	rep.Promotions, rep.Rejections = promotions, rejections

	// Admission control under overload.
	small := modelsvc.NewServer(modelsvc.Single{Deployment: modelsvc.Deployment{Version: 1, Model: model}},
		modelsvc.ServerOptions{MaxQueue: 8, MaxBatch: maxBatch, Metrics: reg})
	for _, x := range xs[:64] {
		if _, err := small.Submit(x); err != nil {
			rep.QueueRejected++
		}
	}
	small.Flush()
	if rep.QueueRejected != 64-8 {
		return fmt.Errorf("admission control rejected %d of 64 requests, want %d", rep.QueueRejected, 64-8)
	}

	fmt.Printf("%-24s serial %8.4fs  batched %8.4fs  speedup %.2fx  bit-identical %v\n",
		fmt.Sprintf("serve_n%d_b%d", requests, maxBatch), rep.SerialSec, rep.BatchedSec, rep.Speedup, rep.BitIdentical)
	fmt.Printf("%-24s publish %8.5fs  load %8.5fs\n", "registry_roundtrip", rep.RegistryPublishSec, rep.RegistryLoadSec)
	fmt.Printf("%-24s stable %8.5fs  shadow %8.5fs  ratio %.2fx\n", "rollout_observe",
		rep.StableObserveSec, rep.ShadowObserveSec, rep.ShadowOverheadRatio)
	fmt.Printf("%-24s promotions %d  rejections %d  worse-blocked %v  queue-rejected %d\n",
		"canary_gate", rep.Promotions, rep.Rejections, rep.GateBlockedWorse, rep.QueueRejected)

	if metricsPath != "" {
		n, err := writeValidated(metricsPath, reg.WriteJSONL, obs.ValidateMetricsJSONL, "metric")
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d metrics)\n", metricsPath, n)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (gomaxprocs=%d)\n", outPath, workers)
	return nil
}

// predictorFunc lets a plain function serve as a deployment model.
type predictorFunc func(x []float64) float64

func (f predictorFunc) Predict(x []float64) float64 { return f(x) }
