// Command ml4db-survey prints the paper's two evaluation artifacts
// regenerated from the embedded corpus: Figure 1 (the publication trend in
// ML for index & query optimizer, replacement vs ML-enhanced) and Table 1
// (the query-plan representation method summary with implementation
// pointers into this repository).
package main

import (
	"fmt"

	"ml4db/internal/survey"
)

func main() {
	fmt.Print(survey.RenderFigure1())
	fmt.Println()
	fmt.Print(survey.RenderTable1())
}
