// Command ml4db-survey prints the paper's two evaluation artifacts
// regenerated from the embedded corpus: Figure 1 (the publication trend in
// ML for index & query optimizer, replacement vs ML-enhanced) and Table 1
// (the query-plan representation method summary with implementation
// pointers into this repository).
//
// With -trace/-metrics, the rendering is instrumented: each artifact gets a
// span, corpus statistics land in a metrics registry, and both are written
// as the stable JSONL schemas of internal/obs (validate with
// cmd/ml4db-tracecheck).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ml4db/internal/mlmath"
	"ml4db/internal/obs"
	"ml4db/internal/survey"
)

func main() {
	tracePath := flag.String("trace", "", "write span JSONL of the rendering to this file")
	metricsPath := flag.String("metrics", "", "write corpus metrics JSONL to this file")
	flag.Parse()

	var tr *obs.Tracer
	var reg *obs.Registry
	if *tracePath != "" {
		tr = obs.NewTracer(mlmath.SystemClock{})
	}
	if *metricsPath != "" {
		reg = obs.NewRegistry()
	}

	root := tr.StartSpan("survey", nil)
	sp := tr.StartSpan("survey.figure1", root)
	fmt.Print(survey.RenderFigure1())
	sp.End()
	fmt.Println()
	sp = tr.StartSpan("survey.table1", root)
	fmt.Print(survey.RenderTable1())
	sp.End()
	root.End()

	if reg != nil {
		reg.Counter("survey.corpus_papers").Add(int64(len(survey.Corpus())))
		reg.Counter("survey.figure1_points").Add(int64(len(survey.Figure1())))
		reg.Counter("survey.table1_rows").Add(int64(len(survey.Table1())))
	}
	if *tracePath != "" {
		if err := writeJSONL(*tracePath, tr.WriteJSONL); err != nil {
			fmt.Fprintf(os.Stderr, "ml4db-survey: %v\n", err)
			os.Exit(1)
		}
	}
	if *metricsPath != "" {
		if err := writeJSONL(*metricsPath, reg.WriteJSONL); err != nil {
			fmt.Fprintf(os.Stderr, "ml4db-survey: %v\n", err)
			os.Exit(1)
		}
	}
}

func writeJSONL(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}
