// Command ml4db-tracecheck validates observability JSONL artifacts against
// the stable schemas of internal/obs: every span line must carry id, parent,
// name, start, and duration with well-ordered IDs, and every metric line must
// be a counter, gauge, or histogram with its full field set. Querystore
// exports (internal/querystore) are validated the same way: a schema-1
// header whose section counts must match the statement, heat, window,
// drift, and model records that follow. The check.sh
// smoke gate runs it over freshly emitted files so schema drift fails CI
// rather than silently breaking downstream consumers.
//
// Usage:
//
//	ml4db-tracecheck -trace spans.jsonl
//	ml4db-tracecheck -metrics metrics.jsonl
//	ml4db-tracecheck -trace spans.jsonl -metrics metrics.jsonl
//	ml4db-tracecheck -querystore querystore.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ml4db/internal/obs"
	"ml4db/internal/querystore"
)

func main() {
	tracePath := flag.String("trace", "", "span JSONL file to validate")
	metricsPath := flag.String("metrics", "", "metrics JSONL file to validate")
	queryStorePath := flag.String("querystore", "", "querystore export JSONL file to validate")
	flag.Parse()

	if *tracePath == "" && *metricsPath == "" && *queryStorePath == "" {
		fmt.Fprintln(os.Stderr, "ml4db-tracecheck: need -trace, -metrics, and/or -querystore")
		os.Exit(2)
	}
	if *tracePath != "" {
		n, err := validateFile(*tracePath, obs.ValidateTraceJSONL)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ml4db-tracecheck: %s: %v\n", *tracePath, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d valid spans\n", *tracePath, n)
	}
	if *metricsPath != "" {
		n, err := validateFile(*metricsPath, obs.ValidateMetricsJSONL)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ml4db-tracecheck: %s: %v\n", *metricsPath, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d valid metrics\n", *metricsPath, n)
	}
	if *queryStorePath != "" {
		n, err := validateFile(*queryStorePath, querystore.ValidateJSONL)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ml4db-tracecheck: %s: %v\n", *queryStorePath, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d valid querystore lines\n", *queryStorePath, n)
	}
}

func validateFile(path string, validate func(io.Reader) (int, error)) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return validate(f)
}
