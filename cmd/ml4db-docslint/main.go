// Command ml4db-docslint enforces the repository documentation contract
// (see internal/docslint): internal packages carry doc.go, docs/*.md pages
// are reachable from the README or docs index, and relative markdown links
// resolve. Run by scripts/check.sh; exits nonzero on any finding.
package main

import (
	"flag"
	"fmt"
	"os"

	"ml4db/internal/docslint"
)

func main() {
	root := flag.String("root", ".", "repository root to lint")
	flag.Parse()

	findings, err := docslint.Check(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ml4db-docslint: %v\n", err)
		os.Exit(2)
	}
	if len(findings) == 0 {
		fmt.Println("ml4db-docslint: clean")
		return
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	fmt.Fprintf(os.Stderr, "ml4db-docslint: %d finding(s)\n", len(findings))
	os.Exit(1)
}
