// Command ml4db-vet runs the project's static-analysis suite
// (internal/analysis) over the module: determinism, unchecked errors, float
// equality, naked panics, unguarded numerics, and mutex copies. It prints
// file:line:col diagnostics and exits non-zero when any finding survives
// //ml4db:allow suppression — making it suitable as a CI gate:
//
//	go run ./cmd/ml4db-vet ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ml4db/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ml4db-vet [-list] [-only a,b] [patterns...]\n")
		fmt.Fprintf(os.Stderr, "patterns default to ./... relative to the module root\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *only != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*only, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	modRoot, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "%s: [typecheck] %v\n", pkg.Path, terr)
			findings++
		}
		for _, d := range analysis.RunPackage(pkg, analyzers) {
			d.Pos.Filename = relPath(modRoot, d.Pos.Filename)
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "ml4db-vet: %d finding(s) in %d package(s)\n", findings, len(pkgs))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ml4db-vet: clean (%d packages, %d analyzers)\n", len(pkgs), len(analyzers))
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("ml4db-vet: no go.mod found above working directory")
		}
		dir = parent
	}
}

func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
