// Command ml4db-vet runs the project's static-analysis suite
// (internal/analysis) over the module. Two tiers run together: the
// package-tier analyzers (determinism, unchecked errors, float equality,
// naked panics, unguarded numerics, mutex copies, lock discipline, span/file
// leaks, error-comparison hygiene) and the module-tier call-graph analyzers
// (spawnreach, clockflow), which check transitive contracts across package
// boundaries. It prints file:line:col diagnostics and exits non-zero when
// any finding survives //ml4db:allow suppression — making it suitable as a
// CI gate:
//
//	go run ./cmd/ml4db-vet -strict-suppress ./...
//
// -strict-suppress additionally fails on //ml4db:allow comments that no
// longer suppress anything (among the analyzers that ran). -json emits the
// full finding list, suppressed entries included, as a JSON array on stdout
// (schema: internal/analysis.JSONFinding).
package main

import (
	"errors"
	"flag"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"ml4db/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings (suppressed included) as JSON on stdout")
	strict := flag.Bool("strict-suppress", false, "fail on //ml4db:allow comments that suppress nothing")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ml4db-vet [-list] [-only a,b] [-json] [-strict-suppress] [patterns...]\n")
		fmt.Fprintf(os.Stderr, "patterns default to ./... relative to the module root\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		for _, a := range analysis.AllModule() {
			fmt.Printf("%-14s %s (module tier)\n", a.Name, a.Doc)
		}
		return
	}

	pkgAnalyzers := analysis.All()
	modAnalyzers := analysis.AllModule()
	if *only != "" {
		var err error
		pkgAnalyzers, modAnalyzers, err = analysis.SelectAnalyzers(strings.Split(*only, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	modRoot, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var findings []analysis.Finding
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			pos := token.Position{Filename: pkg.Path, Line: 1}
			var te types.Error
			if errors.As(terr, &te) && te.Fset != nil {
				pos = te.Fset.Position(te.Pos)
			}
			findings = append(findings, analysis.Finding{Diagnostic: analysis.Diagnostic{
				Pos:      pos,
				Analyzer: "typecheck",
				Message:  fmt.Sprintf("%s: %v", pkg.Path, terr),
			}})
		}
	}
	// The call graph is built over everything the loader saw — targets plus
	// their module-internal dependencies — so transitive edges resolve even
	// when vetting a subset.
	findings = append(findings, analysis.Analyze(pkgs, loader.AllLoaded(), pkgAnalyzers, modAnalyzers, *strict)...)
	for i := range findings {
		findings[i].Pos.Filename = relPath(modRoot, findings[i].Pos.Filename)
	}

	if *jsonOut {
		if err := analysis.WriteFindingsJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	failing := 0
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		failing++
		if !*jsonOut {
			if f.Analyzer == "typecheck" {
				fmt.Printf("[typecheck] %s\n", f.Message)
			} else {
				fmt.Println(f.Diagnostic)
			}
		}
	}
	nAnalyzers := len(pkgAnalyzers) + len(modAnalyzers)
	if failing > 0 {
		fmt.Fprintf(os.Stderr, "ml4db-vet: %d finding(s) in %d package(s)\n", failing, len(pkgs))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ml4db-vet: clean (%d packages, %d analyzers)\n", len(pkgs), nAnalyzers)
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("ml4db-vet: no go.mod found above working directory")
		}
		dir = parent
	}
}

func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
