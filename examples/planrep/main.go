// Plan-representation tour: the §3.1 foundation as running code. Encodes one
// query plan with every feature configuration and tree model from Table 1,
// then runs a miniature version of the comparative study.
//
//	go run ./examples/planrep
package main

import (
	"fmt"
	"log"

	"ml4db/internal/mlmath"
	"ml4db/internal/planrep"
	"ml4db/internal/planrep/study"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/tree"
	"ml4db/internal/workload"
)

func main() {
	rng := mlmath.NewRNG(5)
	sch, err := datagen.NewStarSchema(rng, 3000, 120, 3)
	if err != nil {
		log.Fatal(err)
	}
	opt := optimizer.New(sch.Cat)
	gen := workload.NewStarGen(sch, rng)

	q := gen.QueryWithDims(2)
	p, err := opt.Plan(q, optimizer.NoHint())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query plan:")
	fmt.Print(p)

	// Feature encoding: the same plan under each configuration.
	for _, cfg := range study.FeatureConfigs() {
		pe := planrep.NewPlanEncoder(sch.Cat, cfg)
		enc := pe.Encode(p)
		fmt.Printf("features=%-9s → %d nodes × %d dims\n", cfg.Name(), enc.NumNodes(), pe.FeatDim())
	}
	fmt.Println()

	// Tree models: every Table 1 architecture encodes the same tree.
	pe := planrep.NewPlanEncoder(sch.Cat, planrep.FullFeatures())
	enc := pe.Encode(p)
	for _, name := range study.ModelNames {
		e, err := study.NewEncoder(name, pe.FeatDim(), 16, mlmath.NewRNG(9))
		if err != nil {
			log.Fatal(err)
		}
		rep := tree.Encode(e, enc)
		fmt.Printf("model=%-12s → representation of %d dims\n", name, len(rep))
	}
	fmt.Println()

	// A miniature comparative study on the cardinality task.
	ds, err := study.BuildCardDataset(sch, rng, 60)
	if err != nil {
		log.Fatal(err)
	}
	results, err := study.Run(sch, ds, study.Config{Hidden: 12, Epochs: 30, TrainFrac: 0.75, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %-12s %-8s %-8s\n", "features", "model", "MAE", "rankAcc")
	for _, r := range results {
		fmt.Printf("%-10s %-12s %-8.3f %-8.3f\n", r.Feature, r.Model, r.MAE, r.RankAcc)
	}
	sa := study.AnalyzeSpread(results)
	fmt.Printf("\nfeature-choice spread %.3f vs model-choice spread %.3f\n",
		sa.MeanFeatureSpread, sa.MeanModelSpread)
}
