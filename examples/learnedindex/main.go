// Learned-index walkthrough: the replacement paradigm on one-dimensional
// indexes. Builds a B-tree, RMI, PGM, RadixSpline, and ALEX over the same
// keys, compares size and lookups, then demonstrates the update problem —
// the robustness limitation that motivated the ML-enhanced turn (§3.2).
//
//	go run ./examples/learnedindex
package main

import (
	"fmt"
	"time"

	"ml4db/internal/learnedindex"
	"ml4db/internal/mlmath"
)

func main() {
	rng := mlmath.NewRNG(11)
	const n = 500000
	kvs := learnedindex.GenKeys(rng, learnedindex.DistLognormal, n)
	fmt.Printf("dataset: %d lognormal keys\n\n", n)

	indexes := []learnedindex.Index{
		learnedindex.BulkLoadBTree(kvs),
		learnedindex.BuildRMI(kvs, 512),
		learnedindex.BuildPGM(kvs, 32),
		learnedindex.BuildRadixSpline(kvs, 32, 16),
		learnedindex.BuildAlex(kvs),
	}
	probes := make([]int64, 100000)
	for i := range probes {
		probes[i] = kvs[rng.Intn(n)].Key
	}
	fmt.Printf("%-12s %-12s %-12s\n", "index", "ns/lookup", "size (KiB)")
	for _, ix := range indexes {
		start := time.Now()
		for _, k := range probes {
			if _, ok := ix.Get(k); !ok {
				panic("missing key")
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(len(probes))
		fmt.Printf("%-12s %-12.0f %-12d\n", ix.Name(), ns, ix.SizeBytes()/1024)
	}

	// The update problem: insert into ALEX (model-based gapped arrays) and
	// the B-tree; a static RMI cannot absorb the new keys at all.
	fmt.Println("\ninserting 100k new keys into the updatable structures...")
	alex := learnedindex.BuildAlex(kvs)
	bt := learnedindex.BulkLoadBTree(kvs)
	maxKey := kvs[len(kvs)-1].Key
	start := time.Now()
	for i := 0; i < 100000; i++ {
		alex.Insert(maxKey+int64(i)+1, int64(i))
	}
	fmt.Printf("alex:  %v for 100k inserts (now %d leaves)\n", time.Since(start), alex.NumLeaves())
	start = time.Now()
	for i := 0; i < 100000; i++ {
		bt.Insert(maxKey+int64(i)+1, int64(i))
	}
	fmt.Printf("btree: %v for 100k inserts (height %d)\n", time.Since(start), bt.Height())
}
