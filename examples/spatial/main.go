// Spatial-index tour: the paradigms on R-trees. Builds the classical
// baselines (insertion R-tree, STR), the replacement-paradigm learned
// indexes (ZM, LISA, RSMI), and the ML-enhanced systems (RLR-tree, PLATON,
// AI+R) over the same clustered point set and workload.
//
//	go run ./examples/spatial
package main

import (
	"fmt"

	"ml4db/internal/mlindex"
	"ml4db/internal/mlmath"
	"ml4db/internal/spatial"
)

func main() {
	rng := mlmath.NewRNG(33)
	pts := spatial.GenPoints(rng, spatial.PointsClustered, 20000)
	items := spatial.PointItems(pts)
	queries := spatial.GenQueryRects(rng, pts, 100, 0.05)
	fmt.Printf("dataset: %d clustered points, %d range queries\n\n", len(pts), len(queries))

	evalRange := func(name string, f func(spatial.Rect) ([]int, int)) {
		work, results := 0, 0
		for _, q := range queries {
			ids, w := f(q)
			work += w
			results += len(ids)
		}
		fmt.Printf("%-14s work/query %-8.1f results %d\n", name, float64(work)/float64(len(queries)), results)
	}

	// Classical baselines.
	ins := spatial.NewRTree(16)
	for _, it := range items {
		ins.Insert(it.Rect, it.ID)
	}
	str := spatial.STRBulkLoad(items, 16)
	evalRange("rtree-insert", ins.Range)
	evalRange("rtree-str", str.Range)

	// Replacement-paradigm learned spatial indexes.
	evalRange("zm", spatial.BuildZM(pts, 32).Range)
	evalRange("lisa", spatial.BuildLISA(pts, 64).Range)
	evalRange("rsmi", spatial.BuildRSMI(pts, 32).Range)

	// ML-enhanced systems keep the R-tree and learn its decisions.
	rlr := mlindex.NewRLRTree(16, rng)
	rlr.Train(items, queries, 3)
	evalRange("rlr-tree", rlr.Range)

	platon := mlindex.NewPlaton(16, 96, rng).Pack(items, queries)
	evalRange("platon", platon.Range)

	air := mlindex.NewAIRTree(items, 16, 48, rng)
	air.TrainRouter(queries[:50], 60, rng)
	evalRange("ai+r", air.Range)

	// KNN: exact on the R-tree and LISA, approximate on the curves.
	p := spatial.Point{X: 0.4, Y: 0.6}
	exact := spatial.BruteForceKNN(pts, p, 10)
	for _, ix := range []spatial.SpatialIndex{str, spatial.BuildZM(pts, 32), spatial.BuildLISA(pts, 64)} {
		got, _ := ix.KNN(p, 10)
		hits := 0
		want := map[int]bool{}
		for _, id := range exact {
			want[id] = true
		}
		for _, id := range got {
			if want[id] {
				hits++
			}
		}
		fmt.Printf("knn recall %-8s %d/10\n", ix.Name(), hits)
	}
}
