// Query-optimizer tour: the replacement vs ML-enhanced paradigms side by
// side. Trains a NEO-style end-to-end learned optimizer and compares it with
// BAO steering and the ParamTree-calibrated expert on the same workload —
// the §3.2 narrative as running code.
//
//	go run ./examples/queryopt
package main

import (
	"fmt"
	"log"

	"ml4db/internal/mlmath"
	"ml4db/internal/qo"
	"ml4db/internal/qo/bao"
	"ml4db/internal/qo/neo"
	"ml4db/internal/qo/paramtree"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/exec"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/workload"
)

func main() {
	rng := mlmath.NewRNG(21)
	sch, err := datagen.NewStarSchema(rng, 5000, 150, 3)
	if err != nil {
		log.Fatal(err)
	}
	env := qo.NewEnv(sch.Cat)
	gen := workload.NewStarGen(sch, rng)

	var train []*plan.Query
	for i := 0; i < 12; i++ {
		train = append(train, gen.QueryWithDims(2))
	}

	// Replacement: NEO learns to build complete plans itself.
	n := neo.New(env, neo.Config{Hidden: 12}, rng)
	if err := n.Bootstrap(train, 25); err != nil {
		log.Fatal(err)
	}
	if err := n.Episode(train, 12); err != nil {
		log.Fatal(err)
	}

	// ML-enhanced: BAO steers the expert; warm it up online.
	steered := bao.New(env, optimizer.StandardHintSets(), rng)
	for i := 0; i < 50; i++ {
		if _, _, err := steered.RunQuery(gen.QueryWithDims(2)); err != nil {
			log.Fatal(err)
		}
	}

	// ML-enhanced: ParamTree calibrates the expert's cost constants.
	var obs []paramtree.Observation
	for _, q := range train {
		for _, h := range optimizer.StandardHintSets() {
			p, err := env.Opt.Plan(q, h)
			if err != nil {
				log.Fatal(err)
			}
			res, err := env.Exec.Execute(p, exec.Options{})
			if err != nil {
				log.Fatal(err)
			}
			obs = append(obs, paramtree.Observation{Counters: res.Counters, Latency: float64(res.Work)})
		}
	}
	tuned, err := paramtree.Fit(obs, 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	tunedOpt := optimizer.New(sch.Cat)
	tunedOpt.Cost = tuned

	// Evaluate all four on fresh queries.
	var wExpert, wNeo, wBao, wTuned int64
	const m = 15
	for i := 0; i < m; i++ {
		q := gen.QueryWithDims(2)
		pe, err := env.Opt.Plan(q, optimizer.NoHint())
		if err != nil {
			log.Fatal(err)
		}
		we, _, _ := env.Run(pe, 0)
		wExpert += we
		pn, err := n.Plan(q)
		if err != nil {
			log.Fatal(err)
		}
		wn, _, _ := env.Run(pn, 0)
		wNeo += wn
		pb, _, err := steered.SelectPlan(q)
		if err != nil {
			log.Fatal(err)
		}
		wb, _, _ := env.Run(pb, 0)
		wBao += wb
		pt, err := tunedOpt.Plan(q, optimizer.NoHint())
		if err != nil {
			log.Fatal(err)
		}
		wt, _, _ := env.Run(pt, 0)
		wTuned += wt
	}
	fmt.Printf("%-28s %-12s\n", "optimizer", "total work")
	fmt.Printf("%-28s %-12d\n", "expert (untuned params)", wExpert)
	fmt.Printf("%-28s %-12d\n", "NEO (replacement)", wNeo)
	fmt.Printf("%-28s %-12d\n", "BAO (steered expert)", wBao)
	fmt.Printf("%-28s %-12d\n", "expert + ParamTree", wTuned)
}
