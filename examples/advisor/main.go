// Database-advisor tour: the advisor applications from the paper's intro —
// learned index recommendation (AIMeetsAI style) and learned view selection
// (AVGDL style) — plus the Lemo plan cache, all over one workload.
//
//	go run ./examples/advisor
package main

import (
	"fmt"
	"log"

	"ml4db/internal/advisor"
	"ml4db/internal/mlmath"
	"ml4db/internal/qo"
	"ml4db/internal/qo/lemo"
	"ml4db/internal/qo/paramtree"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/views"
	"ml4db/internal/workload"
)

func main() {
	rng := mlmath.NewRNG(17)
	sch, err := datagen.NewStarSchema(rng, 8000, 200, 3)
	if err != nil {
		log.Fatal(err)
	}
	env := qo.NewEnv(sch.Cat)
	gen := workload.NewStarGen(sch, rng)
	var wl []*plan.Query
	for i := 0; i < 25; i++ {
		if i%3 == 0 {
			wl = append(wl, gen.SelectionQuery(2, false))
		} else {
			wl = append(wl, gen.QueryWithDims(1+i%2))
		}
	}

	// Index advisor: what-if vs execution-corrected ranking on hardware
	// where random index fetches cost 4x what the cost model assumes.
	ia := advisor.New(env, paramtree.MemoryRichHardware())
	cands := advisor.EnumerateCandidates(env.Cat, wl)
	fmt.Printf("index advisor: %d candidates\n", len(cands))
	base, err := ia.EvaluateConfig(nil, wl)
	if err != nil {
		log.Fatal(err)
	}
	model, err := ia.Train(cands, wl)
	if err != nil {
		log.Fatal(err)
	}
	wiRank, err := ia.RankWhatIf(cands, wl)
	if err != nil {
		log.Fatal(err)
	}
	leRank, err := ia.RankLearned(model, cands, wl)
	if err != nil {
		log.Fatal(err)
	}
	wiLat, _ := ia.EvaluateConfig(wiRank[:2], wl)
	leLat, _ := ia.EvaluateConfig(leRank[:2], wl)
	fmt.Printf("  no indexes:      %.0f latency\n", base)
	fmt.Printf("  what-if top-2:   %.0f  %v\n", wiLat, wiRank[:2])
	fmt.Printf("  learned top-2:   %.0f  %v\n\n", leLat, leRank[:2])

	// View advisor: materialize the join pairs with the best measured
	// benefit per byte.
	va := views.New(env)
	vcands := views.EnumerateCandidates(wl)
	if len(vcands) > 3 {
		vcands = vcands[:3]
	}
	vBase, err := va.WorkloadWork(wl, nil)
	if err != nil {
		log.Fatal(err)
	}
	chosen, err := va.Select(vcands, wl, 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	vWith, err := va.WorkloadWork(wl, chosen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view advisor: %d candidates, %d selected\n", len(vcands), len(chosen))
	fmt.Printf("  workload work: %d → %d\n\n", vBase, vWith)

	// Plan cache: amortize optimization across a repeated-template stream
	// (two fixed templates with fresh constants each time).
	l := lemo.New(env, 4000, rng)
	var total float64
	for i := 0; i < 60; i++ {
		tmpl := i % 2
		q := plan.NewQuery(sch.FactID, sch.DimIDs[tmpl])
		q.AddJoin(expr.JoinCond{LeftTable: 0, LeftCol: sch.FKCol[tmpl], RightTable: 1, RightCol: 0})
		center := int64(150 + rng.Intn(700))
		q.AddFilter(0, expr.Pred{Col: sch.AttrCols[tmpl], Op: expr.BETWEEN, Lo: center - 60, Hi: center + 60})
		c, _, err := l.Run(q)
		if err != nil {
			log.Fatal(err)
		}
		total += c
	}
	fmt.Printf("plan cache: %d reuses, %d re-optimizations, %d cold misses over 60 queries (total cost %.0f)\n",
		l.Reuses, l.Reopts, l.Misses, total)
}
