// Quickstart: build a database, run queries through the expert optimizer,
// then let BAO steer it — the sixty-second tour of the ML4DB library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ml4db/internal/mlmath"
	"ml4db/internal/qo"
	"ml4db/internal/qo/bao"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/workload"
)

func main() {
	rng := mlmath.NewRNG(7)

	// 1. Generate a star-schema database: one fact table with correlated
	//    attributes (the classic estimator trap) and three dimensions.
	sch, err := datagen.NewStarSchema(rng, 6000, 150, 3)
	if err != nil {
		log.Fatal(err)
	}
	env := qo.NewEnv(sch.Cat)
	gen := workload.NewStarGen(sch, rng)

	// 2. Plan and execute one query with the classical System-R optimizer.
	q := gen.QueryWithDims(2)
	p, err := env.Opt.Plan(q, optimizer.NoHint())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("expert plan:")
	fmt.Print(p)
	work, _, err := env.Run(p, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: %d work units\n\n", work)

	// 3. Steer the optimizer with BAO: a Thompson-sampling bandit picks a
	//    hint set per query and learns from each execution.
	steered := bao.New(env, optimizer.StandardHintSets(), rng)
	var baoW, expW []float64
	for i := 0; i < 120; i++ {
		// Half the workload triggers the independence-assumption trap.
		var query = gen.QueryWithDims(2)
		if i%2 == 0 {
			query = gen.CorrelatedJoinQuery(2)
		}
		w, _, err := steered.RunQuery(query)
		if err != nil {
			log.Fatal(err)
		}
		if i < 60 { // warmup: learn, don't measure
			continue
		}
		we, err := steered.ExpertWork(query)
		if err != nil {
			log.Fatal(err)
		}
		baoW = append(baoW, float64(w))
		expW = append(expW, float64(we))
	}
	sb, se := mlmath.Summarize(baoW), mlmath.Summarize(expW)
	fmt.Printf("post-warmup — expert mean %.0f p95 %.0f | BAO mean %.0f p95 %.0f\n",
		se.Mean, se.P95, sb.Mean, sb.P95)
}
