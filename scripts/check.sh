#!/usr/bin/env bash
# check.sh — the full correctness gate, run locally and by CI.
#
# Order matters: cheap structural checks first, then the project's own
# static-analysis suite (cmd/ml4db-vet), then race-enabled tests.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

# The documentation contract: every internal package has a doc.go, every
# docs/*.md page is reachable from the README or the docs index, and no
# relative markdown link is dead. Docs drift fails like a broken test.
echo "==> ml4db-docslint"
go run ./cmd/ml4db-docslint

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

# The project's own analyzer suite, in strict-suppression mode so stale
# //ml4db:allow comments fail the gate. The wall-clock budget keeps the
# module-wide call-graph tier honest: the whole run (including go run's
# build step) must stay interactive, or vet stops being something people
# run before every commit.
echo "==> ml4db-vet -strict-suppress ./..."
vet_budget=15
vet_start=$(date +%s)
go run ./cmd/ml4db-vet -strict-suppress ./...
vet_elapsed=$(( $(date +%s) - vet_start ))
echo "    ml4db-vet took ${vet_elapsed}s (budget ${vet_budget}s)"
if [ "$vet_elapsed" -gt "$vet_budget" ]; then
    echo "ml4db-vet exceeded its ${vet_budget}s wall-clock budget (took ${vet_elapsed}s)" >&2
    exit 1
fi

echo "==> go test -race ./..."
go test -race ./...

# Compile-and-run the kernel benchmarks once (-benchtime=1x): not a timing
# measurement, just a guard that the serial-vs-parallel benchmark paths and
# their determinism checks keep working. Full numbers: ml4db-bench -kernels.
echo "==> kernel benchmarks (smoke, 1 iteration)"
go test -run '^$' -bench 'MatMul|MLPFit' -benchtime=1x ./internal/mlmath/ ./internal/nn/

# Observability smoke: run one traced workload, then re-validate the emitted
# JSONL with the standalone checker, so any drift in the span/metric schemas
# fails the gate rather than silently breaking downstream consumers.
echo "==> observability smoke (traced query + JSONL schema validation)"
obsdir=$(mktemp -d)
trap 'rm -rf "$obsdir"' EXIT
go run ./cmd/ml4db-bench -trace "$obsdir/spans.jsonl" -metrics "$obsdir/metrics.jsonl" -trace-queries 2
go run ./cmd/ml4db-tracecheck -trace "$obsdir/spans.jsonl" -metrics "$obsdir/metrics.jsonl"

# Serving smoke: exercise the modelsvc lifecycle end to end (registry round
# trip, batched-vs-serial bit identity, canary gate blocking a worse
# candidate, admission control) and re-validate its metrics JSONL. The bench
# exits nonzero if any serving contract is violated.
echo "==> serving smoke (modelsvc registry + batching + canary gate)"
go run ./cmd/ml4db-bench -serve -quick -serve-out "$obsdir/BENCH_serve.json" -metrics "$obsdir/serve_metrics.jsonl"
go run ./cmd/ml4db-tracecheck -metrics "$obsdir/serve_metrics.jsonl"

# Engine smoke: run the query-session front end contracts end to end — exact
# plan-cache hit accounting, >=1.5x repeated-workload speedup, admission
# overflow exactness, and fallback-never-fails under a broken learned
# estimator. The bench exits nonzero if any engine contract is violated.
echo "==> engine smoke (plan cache + admission + fallback contracts)"
go run ./cmd/ml4db-bench -engine -quick -engine-out "$obsdir/BENCH_engine.json"

# Storage smoke: larger-than-memory scan correctness through a small pool,
# learned-eviction canary gating (trained scorer promoted and beating LRU,
# constant scorer rejected), and bit-identical eviction replay. The bench
# exits nonzero if any storage contract is violated.
echo "==> storage smoke (heap pages + buffer pool + learned eviction)"
go run ./cmd/ml4db-bench -storage -quick -storage-out "$obsdir/BENCH_storage.json"

# Querystore smoke: run a traced workload through the engine with the
# workload observatory attached, read the accounting back through a real
# `SELECT * FROM sys_statements` (the bench exits nonzero on any mismatch
# or on a non-byte-identical replay export), then re-validate the emitted
# querystore JSONL with the standalone checker.
echo "==> querystore smoke (statement accounting + sys views + replay export)"
go run ./cmd/ml4db-bench -querystore -quick -querystore-out "$obsdir/BENCH_querystore.json" -querystore-export "$obsdir/querystore.jsonl"
go run ./cmd/ml4db-tracecheck -querystore "$obsdir/querystore.jsonl"

# Autopilot smoke: close the self-driving loop on live telemetry — a mined
# beneficial index adopted and kept through its shadow trial, an unselective
# candidate rejected at the what-if gate, a stale-stats-baited harmful view
# adopted then auto-dropped, byte-identical two-replay event ledgers, and
# sys_tuning read back through SQL. The bench exits nonzero on any violation.
echo "==> autopilot smoke (index adoption + canary revert + replay)"
go run ./cmd/ml4db-bench -autopilot -quick -autopilot-out "$obsdir/BENCH_autopilot.json"

# Executor smoke: partitioned parallel operators end to end — serial-vs-
# parallel bit identity (rows, work, counters) including across pools with
# different worker counts, budget-abort identity down to the typed error,
# and plan-cache coherence across the parallelism knob. The bench exits
# nonzero if any exchange contract is violated. (The -race sweep above
# already covers the concurrent shard and buffer-pool paths.)
echo "==> executor smoke (partitioned operators + determinism contracts)"
go run ./cmd/ml4db-bench -exec -quick -exec-out "$obsdir/BENCH_exec.json"

echo "All checks passed."
