module ml4db

go 1.22
