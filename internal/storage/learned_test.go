package storage

import (
	"math"
	"reflect"
	"testing"
)

func TestRecencyUnderLearnedPolicyIsLRU(t *testing.T) {
	// The Recency scorer's predicted reuse distance is exactly the recency
	// feature, so argmax-prediction eviction must reproduce LRU's choices on
	// any trace.
	pattern := accessPattern(12, 300)
	lru := runTrace(t, func() Policy { return NewLRU() }, "lru.heap", pattern, 12)
	rec := runTrace(t, func() Policy { return NewLearnedPolicy(Recency{}) }, "rec.heap", pattern, 12)
	if len(lru) == 0 || !reflect.DeepEqual(lru, rec) {
		t.Fatalf("learned(Recency) diverges from LRU:\n%v\n%v", lru, rec)
	}
}

func TestLearnedPolicyNaNFallsBackToRecency(t *testing.T) {
	nan := predictorFunc(func([]float64) float64 { return math.NaN() })
	lp := NewLearnedPolicy(nan)
	keys := []PageKey{{0, 0}, {0, 1}, {0, 2}}
	lp.OnAccess(keys[0], 1)
	lp.OnAccess(keys[1], 2)
	lp.OnAccess(keys[2], 3)
	// NaN scores degrade to the recency feature → LRU victim (page 0).
	if v := lp.Victim(keys, 4); v != keys[0] {
		t.Fatalf("victim = %v, want %v", v, keys[0])
	}
}

func TestLearnedPolicyEvictsMaxPredictedDistance(t *testing.T) {
	// Score = the count feature: the most-touched page is "furthest" away.
	byCount := predictorFunc(func(x []float64) float64 { return x[1] })
	lp := NewLearnedPolicy(byCount)
	keys := []PageKey{{0, 0}, {0, 1}}
	lp.OnAccess(keys[0], 1)
	lp.OnAccess(keys[1], 2)
	lp.OnAccess(keys[1], 3)
	if v := lp.Victim(keys, 4); v != keys[1] {
		t.Fatalf("victim = %v, want the high-count page", v)
	}
}

// predictorFunc adapts a function to modelsvc.Predictor.
type predictorFunc func(x []float64) float64

func (f predictorFunc) Predict(x []float64) float64 { return f(x) }

func TestTraceSamplesLabels(t *testing.T) {
	a, b := PageKey{0, 0}, PageKey{0, 1}
	// Accesses: a b a b — the second a (index 2) has history (from index 0)
	// and no future occurrence → capped at horizon; the second b likewise.
	// Index-1 b has history none (first sight), index-0 a none.
	trace := []PageKey{a, b, a, b}
	samples := TraceSamples(trace, 8)
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(samples))
	}
	// First sample: page a at tick 3, recency = 3-1 = 2, count 1, gap 0.
	wantX := EvictionFeatures(2, 1, 0)
	if !reflect.DeepEqual(samples[0].X, wantX) {
		t.Fatalf("sample 0 X = %v, want %v", samples[0].X, wantX)
	}
	// No future occurrence of a → label caps at the horizon.
	if samples[0].Y != math.Log1p(8) {
		t.Fatalf("sample 0 Y = %v, want log1p(8)", samples[0].Y)
	}
}

func TestTraceSamplesForwardDistance(t *testing.T) {
	a := PageKey{0, 0}
	trace := []PageKey{a, a, a}
	samples := TraceSamples(trace, 100)
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(samples))
	}
	// Middle access: next occurrence is 1 step away.
	if samples[0].Y != math.Log1p(1) {
		t.Fatalf("sample 0 Y = %v, want log1p(1)", samples[0].Y)
	}
}

func TestTrainScorerDeterministic(t *testing.T) {
	pattern := accessPattern(8, 200)
	trace := make([]PageKey, len(pattern))
	for i, p := range pattern {
		trace[i] = PageKey{0, uint32(p)}
	}
	samples := TraceSamples(trace, 64)
	s1, err := TrainScorer(samples, 11, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := TrainScorer(samples, 11, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	probes := [][]float64{
		EvictionFeatures(1, 3, 2),
		EvictionFeatures(50, 1, 0),
		EvictionFeatures(7, 20, 4),
	}
	for _, x := range probes {
		a, b := s1.Predict(x), s2.Predict(x)
		if a != b {
			t.Fatalf("same seed diverges: %v != %v on %v", a, b, x)
		}
		if math.IsNaN(a) || math.IsInf(a, 0) {
			t.Fatalf("non-finite prediction %v on %v", a, x)
		}
	}
	if _, err := TrainScorer(nil, 1, 1, nil); err == nil {
		t.Fatal("training on no samples succeeded")
	}
}

func TestGatePromotesBetterScorerRejectsWorse(t *testing.T) {
	// Labels equal the count feature, where Recency (which reads the
	// recency feature) is systematically wrong: a candidate reading the
	// count feature has zero error and must be promoted.
	var samples []Sample
	for i := 0; i < 300; i++ {
		x := EvictionFeatures(uint64(i%17+1), uint64(i%5+1), uint64(i%3))
		samples = append(samples, Sample{X: x, Y: x[1]})
	}
	gate := NewGate(GateOptions{Window: 100})
	if gate.Version() != 0 {
		t.Fatalf("initial version = %d", gate.Version())
	}
	gate.SetCandidate(predictorFunc(func(x []float64) float64 { return x[1] }), 7)
	promos, rejects := gate.ObserveSamples(samples)
	if promos != 1 || rejects != 0 {
		t.Fatalf("good candidate: promos=%d rejects=%d", promos, rejects)
	}
	if gate.Version() != 7 {
		t.Fatalf("serving version = %d after promotion", gate.Version())
	}
	// The promoted scorer now serves predictions.
	x := EvictionFeatures(9, 4, 1)
	if got := gate.Predict(x); got != x[1] {
		t.Fatalf("Predict = %v, want the count feature %v", got, x[1])
	}

	// A wildly-off candidate must be rejected and leave the incumbent.
	gate.SetCandidate(predictorFunc(func([]float64) float64 { return 1e6 }), 8)
	promos, rejects = gate.ObserveSamples(samples)
	if promos != 0 || rejects == 0 {
		t.Fatalf("bad candidate: promos=%d rejects=%d", promos, rejects)
	}
	if gate.Version() != 7 {
		t.Fatalf("rejection changed serving version to %d", gate.Version())
	}

	// Demotion reverts to the previous incumbent (the Recency heuristic).
	if !gate.Demote() {
		t.Fatal("demote failed")
	}
	if gate.Version() != 0 {
		t.Fatalf("post-demotion version = %d, want 0", gate.Version())
	}
	if got := gate.Predict(x); got != x[0] {
		t.Fatalf("post-demotion Predict = %v, want the recency feature %v", got, x[0])
	}
	_, _, demotions := gate.Stats()
	if demotions != 1 {
		t.Fatalf("demotions = %d", demotions)
	}
}

func TestGateTrainedScorerBeatsRecencyOnBurstyWorkload(t *testing.T) {
	// Bursty accesses (each page touched twice back-to-back, then not for a
	// round) make recency systematically wrong: right after the second
	// touch the page looks hot (recency 1) but won't return for a full
	// round, and at the start of a burst it looks cold but returns in one
	// tick. The true forward distance equals the last inter-access gap — a
	// feature a trained scorer can read and the Recency heuristic cannot.
	var trace []PageKey
	for rep := 0; rep < 80; rep++ {
		for p := 0; p < 6; p++ {
			trace = append(trace, PageKey{0, uint32(p)}, PageKey{0, uint32(p)})
		}
	}
	samples := TraceSamples(trace, 32)
	sc, err := TrainScorer(samples, 3, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	gate := NewGate(GateOptions{Window: 200})
	gate.SetCandidate(sc, 1)
	promos, rejects := gate.ObserveSamples(samples)
	if promos == 0 {
		t.Fatalf("trained scorer never promoted (rejects=%d)", rejects)
	}
	if gate.Version() != 1 {
		t.Fatalf("serving version = %d", gate.Version())
	}
}

func TestGuardDemotesOnRegression(t *testing.T) {
	gate := NewGate(GateOptions{})
	guard := NewGuard(gate, 4, 10, 0.05)
	key := PageKey{0, 1}
	// The shadow LRU hits on every repeat access; report the live pool as
	// always missing → a full window regresses → demotion.
	demoted := false
	for i := 0; i < 10; i++ {
		if guard.Observe(key, false) {
			demoted = true
		}
	}
	if !demoted || guard.Demotions() != 1 {
		t.Fatalf("demoted=%v demotions=%d", demoted, guard.Demotions())
	}
	_, _, demotions := gate.Stats()
	if demotions != 1 {
		t.Fatalf("gate demotions = %d", demotions)
	}
}

func TestGuardStaysQuietWhenLiveMatchesShadow(t *testing.T) {
	gate := NewGate(GateOptions{})
	guard := NewGuard(gate, 4, 10, 0.05)
	key := PageKey{0, 1}
	first := true
	for i := 0; i < 30; i++ {
		// Report exactly what the shadow would see: first access misses,
		// repeats hit.
		hit := !first
		first = false
		if guard.Observe(key, hit) {
			t.Fatalf("guard demoted on a matched window (i=%d)", i)
		}
	}
	if guard.Demotions() != 0 {
		t.Fatalf("demotions = %d", guard.Demotions())
	}
}
