package storage

import (
	"math"

	"ml4db/internal/mlmath"
	"ml4db/internal/modelsvc"
	"ml4db/internal/obs"
)

// GateOptions configures the eviction-scorer canary gate.
type GateOptions struct {
	// Window is the number of shadow observations per canary decision;
	// values below one default to 256.
	Window int
	// MaxErrRatio scales the promotion bar (see modelsvc.RolloutOptions);
	// <= 0 defaults to 1 (the candidate must strictly beat the incumbent).
	MaxErrRatio float64
	// Clock feeds the rollout's latency accounting; nil means the system
	// clock (inject a ManualClock for replay-deterministic gating).
	Clock mlmath.Clock
	// Metrics, when non-nil, receives the modelsvc.rollout.* instruments.
	Metrics *obs.Registry
}

// Gate deploys eviction scorers through a modelsvc canary rollout. The
// incumbent starts as the Recency heuristic — under which a LearnedPolicy
// behaves exactly like LRU — so a candidate model serves evictions only
// after beating the LRU-equivalent baseline over a full shadow window, and
// Demote always has the heuristic to fall back to. Gate itself implements
// modelsvc.Predictor: hand it to NewLearnedPolicy and promotions reach the
// pool atomically.
type Gate struct {
	roll *modelsvc.Rollout
}

// NewGate returns a gate serving the Recency incumbent.
func NewGate(opts GateOptions) *Gate {
	if opts.Window < 1 {
		opts.Window = 256
	}
	roll := modelsvc.NewRollout(
		modelsvc.Deployment{Version: 0, Model: Recency{}},
		modelsvc.RolloutOptions{
			Window:      opts.Window,
			MaxErrRatio: opts.MaxErrRatio,
			// Predictions are log1p reuse distances (often < 1), where
			// QError's clamp-at-1 would flatten every comparison; absolute
			// error keeps the gate discriminating.
			ErrFn:    func(pred, truth float64) float64 { return math.Abs(pred - truth) },
			Clock:    opts.Clock,
			Fallback: Recency{},
			Metrics:  opts.Metrics,
		},
	)
	return &Gate{roll: roll}
}

// Predict implements modelsvc.Predictor by serving the current incumbent.
func (g *Gate) Predict(x []float64) float64 {
	v, _ := g.roll.Predict(x)
	return v
}

// Version returns the registry version of the scorer currently serving
// evictions (0 for the Recency heuristic).
func (g *Gate) Version() int { return g.roll.Current().Version }

// State returns the rollout phase.
func (g *Gate) State() modelsvc.State { return g.roll.State() }

// Stats returns lifetime promotion/rejection/demotion counts.
func (g *Gate) Stats() (promotions, rejections, demotions int) { return g.roll.Stats() }

// SetCandidate deploys scorer (registry version v) as the shadow
// candidate.
func (g *Gate) SetCandidate(scorer modelsvc.Predictor, version int) {
	g.roll.SetCandidate(modelsvc.Deployment{Version: version, Model: scorer})
}

// ObserveSamples shadow-scores the candidate against the incumbent over a
// replay window of labeled samples, letting the canary gate decide when
// windows fill. It returns the promotions and rejections decided during
// this replay.
func (g *Gate) ObserveSamples(samples []Sample) (promotions, rejections int) {
	for _, s := range samples {
		switch g.roll.Observe(s.X, s.Y) {
		case modelsvc.OutcomePromoted:
			promotions++
		case modelsvc.OutcomeRejected:
			rejections++
		case modelsvc.OutcomeNone:
		}
	}
	return promotions, rejections
}

// Demote reverts to the previous incumbent or the Recency fallback,
// dropping any shadowing candidate. It always succeeds (the fallback is
// always configured).
func (g *Gate) Demote() bool { return g.roll.Demote() }

// shadowLRU simulates an LRU cache of fixed capacity over page keys only —
// no I/O, no frames — to score what LRU's hit rate would have been on the
// exact access sequence the live pool served.
type shadowLRU struct {
	cap  int
	tick uint64
	last map[PageKey]uint64
}

func newShadowLRU(capacity int) *shadowLRU {
	if capacity < 1 {
		capacity = 1
	}
	return &shadowLRU{cap: capacity, last: make(map[PageKey]uint64, capacity)}
}

// access records one access, returning whether it would have hit.
func (s *shadowLRU) access(key PageKey) bool {
	s.tick++
	if _, ok := s.last[key]; ok {
		s.last[key] = s.tick
		return true
	}
	if len(s.last) >= s.cap {
		var victim PageKey
		var victimTick uint64
		first := true
		for k, t := range s.last {
			if first || t < victimTick || (t == victimTick && k.Less(victim)) {
				victim, victimTick, first = k, t, false
			}
		}
		delete(s.last, victim)
	}
	s.last[key] = s.tick
	return false
}

// Guard watches the live pool's hit rate against a shadowed LRU simulation
// of the same capacity over the same access sequence, and demotes the
// gate's scorer the moment a full window regresses — the safety half of the
// learned-eviction deployment: promotion needs a won canary window,
// demotion needs one lost replay window. Wire it as the pool's Observer.
type Guard struct {
	gate   *Gate
	shadow *shadowLRU
	window int
	margin float64

	n, liveHits, shadowHits int
	demotions               int
}

// NewGuard returns a guard demoting the gate when the live hit rate over a
// window of accesses drops more than margin below the shadowed LRU's
// (margin is an absolute rate difference; window < 1 defaults to 512).
func NewGuard(gate *Gate, capacity, window int, margin float64) *Guard {
	if window < 1 {
		window = 512
	}
	return &Guard{gate: gate, shadow: newShadowLRU(capacity), window: window, margin: margin}
}

// Observe feeds one pool access (the Pool.Observer signature), returning
// true when this access completed a window that regressed and triggered a
// demotion.
func (g *Guard) Observe(key PageKey, hit bool) bool {
	if g.shadow.access(key) {
		g.shadowHits++
	}
	if hit {
		g.liveHits++
	}
	g.n++
	if g.n < g.window {
		return false
	}
	liveRate := float64(g.liveHits) / float64(g.n)
	shadowRate := float64(g.shadowHits) / float64(g.n)
	g.n, g.liveHits, g.shadowHits = 0, 0, 0
	if liveRate < shadowRate-g.margin {
		g.gate.Demote()
		g.demotions++
		return true
	}
	return false
}

// Demotions returns how many windows have regressed.
func (g *Guard) Demotions() int { return g.demotions }
