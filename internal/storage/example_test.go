package storage_test

import (
	"fmt"
	"os"
	"path/filepath"

	"ml4db/internal/storage"
)

// Example walks the disk-table lifecycle: create a heap file, append rows,
// scan them through a buffer pool smaller than the table, then reopen the
// file and verify the rows survived.
func Example() {
	dir, err := os.MkdirTemp("", "storage-example")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "orders.tbl")

	// Create a two-column table cached by a tiny 2-frame pool.
	pool := storage.NewPool(storage.PoolOptions{Capacity: 2})
	tbl, err := storage.CreateTableFile(path, 2, pool)
	if err != nil {
		fmt.Println(err)
		return
	}
	for i := int64(0); i < 1000; i++ {
		if _, err := tbl.AppendRow([]int64{i, i * 10}); err != nil {
			fmt.Println(err)
			return
		}
	}

	// Scan through the pool: pages are pinned one at a time, so a 2-frame
	// pool handles a table of any size.
	var sum int64
	if err := tbl.Scan(func(_ int64, row []int64) error {
		sum += row[1]
		return nil
	}); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("rows=%d pages=%d sum=%d\n", tbl.NumRows(), tbl.NumPages(), sum)

	// Close writes every dirty page back; reopen verifies each page's
	// checksum and rebuilds the free-space map from the slot bitmaps.
	if err := tbl.Close(); err != nil {
		fmt.Println(err)
		return
	}
	tbl, err = storage.OpenTableFile(path, 2, storage.NewPool(storage.PoolOptions{Capacity: 2}))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer tbl.Close()
	row, ok, _, err := tbl.ReadRow(42)
	fmt.Printf("reopened rows=%d row42=%v ok=%v err=%v\n", tbl.NumRows(), row, ok, err)
	// Output:
	// rows=1000 pages=4 sum=4995000
	// reopened rows=1000 row42=[42 420] ok=true err=<nil>
}

// countScorer predicts the count feature — exactly right for the example's
// crafted labels, so it beats the Recency incumbent.
type countScorer struct{}

func (countScorer) Predict(x []float64) float64 { return x[1] }

// ExampleGate shows shadow-gating a learned eviction scorer against the
// LRU-equivalent Recency incumbent: a candidate only serves evictions after
// winning a full canary window, and Demote always falls back safely.
func ExampleGate() {
	// Labeled eviction samples where the true forward reuse distance is the
	// count feature — a signal the Recency heuristic cannot see.
	var samples []storage.Sample
	for i := 0; i < 200; i++ {
		x := storage.EvictionFeatures(uint64(i%13+1), uint64(i%7+1), uint64(i%3))
		samples = append(samples, storage.Sample{X: x, Y: x[1]})
	}

	gate := storage.NewGate(storage.GateOptions{Window: 100})
	fmt.Printf("serving v%d (%v)\n", gate.Version(), gate.State())

	// The candidate shadow-scores on live traffic; it is promoted only
	// after beating the incumbent over a full window.
	gate.SetCandidate(countScorer{}, 1)
	promos, rejects := gate.ObserveSamples(samples)
	fmt.Printf("promotions=%d rejections=%d serving v%d\n", promos, rejects, gate.Version())

	// A learned policy driven by the gate hot-swaps scorers on promotion;
	// demotion reverts to the Recency fallback (LRU-equivalent).
	_ = storage.NewLearnedPolicy(gate)
	gate.Demote()
	fmt.Printf("after demote: serving v%d\n", gate.Version())
	// Output:
	// serving v0 (stable)
	// promotions=1 rejections=0 serving v1
	// after demote: serving v0
}
