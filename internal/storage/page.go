package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// PageSize is the fixed on-disk page size in bytes.
const PageSize = 4096

// pageHeaderSize is the fixed header: checksum (4) | pageNo (4) | ncols (2)
// | nslots (2). The checksum is CRC-32 (IEEE) over everything after the
// checksum field itself.
const pageHeaderSize = 12

// ErrChecksum matches any page-checksum failure under errors.Is.
var ErrChecksum = errors.New("storage: page checksum mismatch")

// ChecksumError reports a torn or corrupted page: the stored checksum does
// not cover the page bytes read back.
type ChecksumError struct {
	Path   string
	PageNo int
}

// Error implements error.
func (e *ChecksumError) Error() string {
	return fmt.Sprintf("storage: checksum mismatch on page %d of %s (torn or corrupted page)", e.PageNo, e.Path)
}

// Is reports checksum failures as ErrChecksum so errors.Is matches.
func (e *ChecksumError) Is(target error) bool { return target == ErrChecksum }

// SlotsPerPage returns how many ncols-wide tuples fit in one page after the
// header and the slot-occupancy bitmap (one bit per slot).
func SlotsPerPage(ncols int) int {
	usable := PageSize - pageHeaderSize
	s := usable * 8 / (1 + 64*ncols)
	for s > 0 && (s+7)/8+s*8*ncols > usable {
		s--
	}
	return s
}

// Page is one slotted heap page: a PageSize buffer whose header, bitmap,
// and tuple area are read and written in place. Tuples are fixed-width rows
// of ncols little-endian int64s; the slot directory is a bitmap marking
// which slots hold live tuples.
type Page struct {
	buf    []byte
	ncols  int
	nslots int
}

// NewPage returns an initialized empty page for pageNo with ncols-wide
// tuples.
func NewPage(pageNo, ncols int) *Page {
	p := &Page{buf: make([]byte, PageSize), ncols: ncols, nslots: SlotsPerPage(ncols)}
	binary.LittleEndian.PutUint32(p.buf[4:8], uint32(pageNo))
	binary.LittleEndian.PutUint16(p.buf[8:10], uint16(ncols))
	binary.LittleEndian.PutUint16(p.buf[10:12], uint16(p.nslots))
	return p
}

// PageFromBytes parses a page from buf (which must be PageSize long and is
// retained, not copied), verifying the checksum and the header's internal
// consistency. path and pageNo label the error on failure.
func PageFromBytes(buf []byte, path string, pageNo int) (*Page, error) {
	if len(buf) != PageSize {
		return nil, fmt.Errorf("storage: page buffer is %d bytes, want %d", len(buf), PageSize)
	}
	stored := binary.LittleEndian.Uint32(buf[0:4])
	if stored != crc32.ChecksumIEEE(buf[4:]) {
		return nil, &ChecksumError{Path: path, PageNo: pageNo}
	}
	ncols := int(binary.LittleEndian.Uint16(buf[8:10]))
	nslots := int(binary.LittleEndian.Uint16(buf[10:12]))
	if ncols < 1 || nslots != SlotsPerPage(ncols) {
		return nil, &ChecksumError{Path: path, PageNo: pageNo}
	}
	if got := int(binary.LittleEndian.Uint32(buf[4:8])); got != pageNo {
		return nil, fmt.Errorf("storage: page %d of %s carries page number %d", pageNo, path, got)
	}
	return &Page{buf: buf, ncols: ncols, nslots: nslots}, nil
}

// UpdateChecksum recomputes the header checksum over the page contents.
// Call it before writing the page to disk.
func (p *Page) UpdateChecksum() {
	binary.LittleEndian.PutUint32(p.buf[0:4], crc32.ChecksumIEEE(p.buf[4:]))
}

// Bytes returns the page's backing buffer (PageSize long).
func (p *Page) Bytes() []byte { return p.buf }

// PageNo returns the page number stored in the header.
func (p *Page) PageNo() int { return int(binary.LittleEndian.Uint32(p.buf[4:8])) }

// NCols returns the tuple width in columns.
func (p *Page) NCols() int { return p.ncols }

// NumSlots returns the slot-directory capacity.
func (p *Page) NumSlots() int { return p.nslots }

// Used reports whether slot holds a live tuple.
func (p *Page) Used(slot int) bool {
	if slot < 0 || slot >= p.nslots {
		return false
	}
	return p.buf[pageHeaderSize+slot/8]&(1<<uint(slot%8)) != 0
}

func (p *Page) setUsed(slot int, used bool) {
	if used {
		p.buf[pageHeaderSize+slot/8] |= 1 << uint(slot%8)
	} else {
		p.buf[pageHeaderSize+slot/8] &^= 1 << uint(slot%8)
	}
}

// FreeSlots counts the unoccupied slots.
func (p *Page) FreeSlots() int {
	free := 0
	for s := 0; s < p.nslots; s++ {
		if !p.Used(s) {
			free++
		}
	}
	return free
}

// LiveTuples counts the occupied slots.
func (p *Page) LiveTuples() int { return p.nslots - p.FreeSlots() }

func (p *Page) tupleOff(slot int) int {
	bitmap := (p.nslots + 7) / 8
	return pageHeaderSize + bitmap + slot*8*p.ncols
}

// Insert places row into the lowest free slot, returning the slot, or
// ok=false when the page is full or the row width is wrong.
func (p *Page) Insert(row []int64) (slot int, ok bool) {
	if len(row) != p.ncols {
		return 0, false
	}
	for s := 0; s < p.nslots; s++ {
		if p.Used(s) {
			continue
		}
		off := p.tupleOff(s)
		for c, v := range row {
			binary.LittleEndian.PutUint64(p.buf[off+8*c:], uint64(v))
		}
		p.setUsed(s, true)
		return s, true
	}
	return 0, false
}

// ReadTuple copies the tuple in slot into dst (which must be ncols long),
// returning false for an empty or out-of-range slot.
func (p *Page) ReadTuple(slot int, dst []int64) bool {
	if !p.Used(slot) || len(dst) != p.ncols {
		return false
	}
	off := p.tupleOff(slot)
	for c := range dst {
		dst[c] = int64(binary.LittleEndian.Uint64(p.buf[off+8*c:]))
	}
	return true
}

// Delete clears slot, returning false if it was already empty.
func (p *Page) Delete(slot int) bool {
	if !p.Used(slot) {
		return false
	}
	p.setUsed(slot, false)
	return true
}
