package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// HeapFile is a sequence of slotted pages in one OS file, plus an in-memory
// free-space map (free slot count per page). The map is maintained
// incrementally by TableFile mutations and rebuilt from the page bitmaps on
// Open — which also verifies every page checksum, so corruption surfaces at
// reopen, not mid-scan.
//
// HeapFile does not cache pages; all cached access goes through a Pool.
// Methods are safe for concurrent use (the free-space map is mutex-guarded
// and page I/O uses offset reads/writes), but tuple-level coordination is
// the buffer pool's and its callers' job.
type HeapFile struct {
	mu           sync.Mutex
	f            *os.File
	path         string
	ncols        int
	slotsPerPage int
	npages       int
	free         []int // free slots per page
}

// CreateHeapFile creates (or truncates) the heap file at path for
// ncols-wide tuples.
func CreateHeapFile(path string, ncols int) (*HeapFile, error) {
	if ncols < 1 {
		return nil, fmt.Errorf("storage: heap file needs at least one column, got %d", ncols)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &HeapFile{f: f, path: path, ncols: ncols, slotsPerPage: SlotsPerPage(ncols)}, nil
}

// OpenHeapFile opens an existing heap file, verifying that every page
// checksums correctly and carries ncols-wide tuples, and rebuilds the
// free-space map from the slot bitmaps.
func OpenHeapFile(path string, ncols int) (*HeapFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	hf := &HeapFile{f: f, path: path, ncols: ncols, slotsPerPage: SlotsPerPage(ncols)}
	if err := hf.rebuildFreeMap(); err != nil {
		_ = f.Close() // surface the rebuild error, not the close
		return nil, err
	}
	return hf, nil
}

// rebuildFreeMap scans every page, verifying checksums and column width,
// and recomputes the per-page free slot counts.
func (hf *HeapFile) rebuildFreeMap() error {
	st, err := hf.f.Stat()
	if err != nil {
		return err
	}
	if st.Size()%PageSize != 0 {
		return fmt.Errorf("storage: %s is %d bytes, not a whole number of %d-byte pages", hf.path, st.Size(), PageSize)
	}
	npages := int(st.Size() / PageSize)
	free := make([]int, npages)
	buf := make([]byte, PageSize)
	for pno := 0; pno < npages; pno++ {
		if _, err := hf.f.ReadAt(buf, int64(pno)*PageSize); err != nil {
			return fmt.Errorf("storage: reading page %d of %s: %w", pno, hf.path, err)
		}
		p, err := PageFromBytes(buf, hf.path, pno)
		if err != nil {
			return err
		}
		if p.NCols() != hf.ncols {
			return fmt.Errorf("storage: %s page %d holds %d-column tuples, want %d", hf.path, pno, p.NCols(), hf.ncols)
		}
		free[pno] = p.FreeSlots()
		buf = make([]byte, PageSize) // PageFromBytes retains buf
	}
	hf.mu.Lock()
	hf.npages = npages
	hf.free = free
	hf.mu.Unlock()
	return nil
}

// Path returns the file path.
func (hf *HeapFile) Path() string { return hf.path }

// NCols returns the tuple width.
func (hf *HeapFile) NCols() int { return hf.ncols }

// SlotsPerPage returns the per-page slot capacity.
func (hf *HeapFile) SlotsPerPage() int { return hf.slotsPerPage }

// NumPages returns the current page count.
func (hf *HeapFile) NumPages() int {
	hf.mu.Lock()
	defer hf.mu.Unlock()
	return hf.npages
}

// LiveTuples sums the occupied slots across all pages, per the free-space
// map.
func (hf *HeapFile) LiveTuples() int {
	hf.mu.Lock()
	defer hf.mu.Unlock()
	n := 0
	for _, fr := range hf.free {
		n += hf.slotsPerPage - fr
	}
	return n
}

// FreeSlots returns the free-space map's count for pageNo.
func (hf *HeapFile) FreeSlots(pageNo int) int {
	hf.mu.Lock()
	defer hf.mu.Unlock()
	if pageNo < 0 || pageNo >= len(hf.free) {
		return 0
	}
	return hf.free[pageNo]
}

// FirstFree returns the lowest page number with at least one free slot
// (deterministic first-fit), or ok=false when every page is full.
func (hf *HeapFile) FirstFree() (pageNo int, ok bool) {
	hf.mu.Lock()
	defer hf.mu.Unlock()
	for pno, fr := range hf.free {
		if fr > 0 {
			return pno, true
		}
	}
	return 0, false
}

// noteInsert decrements pageNo's free count after a successful insert.
func (hf *HeapFile) noteInsert(pageNo int) {
	hf.mu.Lock()
	defer hf.mu.Unlock()
	if pageNo >= 0 && pageNo < len(hf.free) && hf.free[pageNo] > 0 {
		hf.free[pageNo]--
	}
}

// noteDelete increments pageNo's free count after a successful delete.
func (hf *HeapFile) noteDelete(pageNo int) {
	hf.mu.Lock()
	defer hf.mu.Unlock()
	if pageNo >= 0 && pageNo < len(hf.free) && hf.free[pageNo] < hf.slotsPerPage {
		hf.free[pageNo]++
	}
}

// AllocPage appends an initialized empty page to the file and returns its
// page number.
func (hf *HeapFile) AllocPage() (int, error) {
	hf.mu.Lock()
	pageNo := hf.npages
	hf.mu.Unlock()
	p := NewPage(pageNo, hf.ncols)
	p.UpdateChecksum()
	if _, err := hf.f.WriteAt(p.Bytes(), int64(pageNo)*PageSize); err != nil {
		return 0, fmt.Errorf("storage: allocating page %d of %s: %w", pageNo, hf.path, err)
	}
	hf.mu.Lock()
	hf.npages = pageNo + 1
	hf.free = append(hf.free, hf.slotsPerPage)
	hf.mu.Unlock()
	return pageNo, nil
}

// ReadPage reads and verifies pageNo from disk into a fresh Page.
func (hf *HeapFile) ReadPage(pageNo int) (*Page, error) {
	if pageNo < 0 || pageNo >= hf.NumPages() {
		return nil, fmt.Errorf("storage: page %d out of range of %s (%d pages)", pageNo, hf.path, hf.NumPages())
	}
	buf := make([]byte, PageSize)
	if _, err := hf.f.ReadAt(buf, int64(pageNo)*PageSize); err != nil && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("storage: reading page %d of %s: %w", pageNo, hf.path, err)
	}
	return PageFromBytes(buf, hf.path, pageNo)
}

// WritePage checksums and writes p back to its slot in the file.
func (hf *HeapFile) WritePage(p *Page) error {
	p.UpdateChecksum()
	if _, err := hf.f.WriteAt(p.Bytes(), int64(p.PageNo())*PageSize); err != nil {
		return fmt.Errorf("storage: writing page %d of %s: %w", p.PageNo(), hf.path, err)
	}
	return nil
}

// Sync flushes the OS file.
func (hf *HeapFile) Sync() error { return hf.f.Sync() }

// Close closes the OS file. Dirty pooled pages must be flushed first (see
// Pool.ReleaseFile / TableFile.Close).
func (hf *HeapFile) Close() error { return hf.f.Close() }
