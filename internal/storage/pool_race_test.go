package storage

import (
	"path/filepath"
	"sync"
	"testing"
)

// raceFile builds a heap file with pages full of recognizable tuples.
func raceFile(t *testing.T, pages int) *HeapFile {
	t.Helper()
	hf, err := CreateHeapFile(filepath.Join(t.TempDir(), "race.heap"), 2)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < pages; p++ {
		pageNo, err := hf.AllocPage()
		if err != nil {
			t.Fatal(err)
		}
		page, err := hf.ReadPage(pageNo)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 4; s++ {
			page.Insert([]int64{int64(pageNo), int64(s)})
		}
		if err := hf.WritePage(page); err != nil {
			t.Fatal(err)
		}
	}
	return hf
}

// TestPoolConcurrentFetchScan is the satellite race audit: concurrent
// Fetch, FetchScan, Unpin, Stats, MissRate, and PinnedCount must be free of
// data races (run under -race) and must never tear the stats — hits+misses
// equals the number of successful fetches, and no pins leak.
func TestPoolConcurrentFetchScan(t *testing.T) {
	const pages, goroutines, iters = 12, 8, 200
	hf := raceFile(t, pages)
	pool := NewPool(PoolOptions{Capacity: 6})
	// Register the file deterministically before the concurrent phase so
	// FetchScan's registered-file path is exercised.
	h, err := pool.Fetch(hf, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.Unpin()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				pageNo := (g*31 + i) % pages
				var h *PageHandle
				var err error
				if g%2 == 0 {
					h, err = pool.FetchScan(hf, pageNo)
				} else {
					h, err = pool.Fetch(hf, pageNo)
				}
				if err != nil {
					// Fetch may hit AllPinned transiently under contention;
					// that is a clean error, not a race.
					continue
				}
				if p := h.Page(); p.NumSlots() == 0 {
					t.Errorf("page %d has no slots", pageNo)
				}
				if i%7 == 0 {
					_ = pool.Stats()
					_ = pool.MissRate()
				}
				h.Unpin()
				h.Unpin() // idempotent, including on bypass handles
			}
		}(g)
	}
	wg.Wait()

	st := pool.Stats()
	if st.Pinned != 0 {
		t.Errorf("pinned = %d after all handles released, want 0", st.Pinned)
	}
	if pool.PinnedCount() != 0 {
		t.Errorf("PinnedCount = %d, want 0", pool.PinnedCount())
	}
	if st.Hits+st.Misses == 0 {
		t.Error("no accesses recorded")
	}
	if mr := pool.MissRate(); mr < 0 || mr > 1 {
		t.Errorf("MissRate = %v, outside [0, 1]", mr)
	}
	if st.Resident > pool.Capacity() {
		t.Errorf("resident %d exceeds capacity %d", st.Resident, pool.Capacity())
	}
}

// TestFetchScanLeavesReplacementStateAlone pins the bypass contract: a burst
// of FetchScan traffic must not change the pool's resident set, tick-driven
// policy state, or eviction order — the property that keeps concurrent scans
// replay-deterministic.
func TestFetchScanLeavesReplacementStateAlone(t *testing.T) {
	const pages = 10
	hf := raceFile(t, pages)

	// Drive two pools through the same Fetch workload; interleave heavy
	// FetchScan traffic into one of them. Their eviction logs must match.
	workload := []int{0, 1, 2, 3, 0, 1, 4, 5, 2, 6, 0, 7, 8, 1, 9, 3}
	run := func(scanNoise bool) []PageKey {
		pool := NewPool(PoolOptions{Capacity: 4, RecordEvictions: true})
		for i, pageNo := range workload {
			if scanNoise {
				for s := 0; s < 3; s++ {
					h, err := pool.FetchScan(hf, (i*5+s)%pages)
					if err != nil {
						t.Fatal(err)
					}
					h.Unpin()
				}
			}
			h, err := pool.Fetch(hf, pageNo)
			if err != nil {
				t.Fatal(err)
			}
			h.Unpin()
		}
		return pool.EvictionLog()
	}
	clean, noisy := run(false), run(true)
	if len(clean) == 0 {
		t.Fatal("workload produced no evictions; test is vacuous")
	}
	if len(clean) != len(noisy) {
		t.Fatalf("eviction counts differ: %d vs %d", len(clean), len(noisy))
	}
	for i := range clean {
		if clean[i] != noisy[i] {
			t.Fatalf("eviction %d differs: %v vs %v", i, clean[i], noisy[i])
		}
	}
}

// TestFetchScanUnregisteredFile pins the no-registration contract: scanning a
// file the pool has never seen counts misses without registering it or
// inserting pages.
func TestFetchScanUnregisteredFile(t *testing.T) {
	hf := raceFile(t, 3)
	pool := NewPool(PoolOptions{Capacity: 4})
	for pageNo := 0; pageNo < 3; pageNo++ {
		h, err := pool.FetchScan(hf, pageNo)
		if err != nil {
			t.Fatal(err)
		}
		if !h.Missed() {
			t.Errorf("page %d: expected a miss on an unregistered file", pageNo)
		}
		h.Unpin()
	}
	st := pool.Stats()
	if st.Resident != 0 {
		t.Errorf("resident = %d, want 0 (bypass pages are never inserted)", st.Resident)
	}
	if st.Misses != 3 {
		t.Errorf("misses = %d, want 3", st.Misses)
	}
}

// TestBypassHandleSetDirtyPanics pins the read-only contract of scan handles.
func TestBypassHandleSetDirtyPanics(t *testing.T) {
	hf := raceFile(t, 1)
	pool := NewPool(PoolOptions{Capacity: 2})
	h, err := pool.FetchScan(hf, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unpin()
	defer func() {
		if recover() == nil {
			t.Error("SetDirty on a bypass handle did not panic")
		}
	}()
	h.SetDirty()
}
