package storage

import (
	"path/filepath"
	"testing"
)

func TestHeapFileAllocWriteRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.heap")
	hf, err := CreateHeapFile(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hf.Close() }()
	if hf.NumPages() != 0 || hf.LiveTuples() != 0 {
		t.Fatalf("fresh file not empty")
	}
	pno, err := hf.AllocPage()
	if err != nil || pno != 0 {
		t.Fatalf("alloc: page=%d err=%v", pno, err)
	}
	p, err := hf.ReadPage(0)
	if err != nil {
		t.Fatalf("read fresh page: %v", err)
	}
	if _, ok := p.Insert([]int64{1, 2}); !ok {
		t.Fatal("insert failed")
	}
	if err := hf.WritePage(p); err != nil {
		t.Fatal(err)
	}
	hf.noteInsert(0)
	if hf.LiveTuples() != 1 || hf.FreeSlots(0) != hf.SlotsPerPage()-1 {
		t.Fatalf("free map: live=%d free=%d", hf.LiveTuples(), hf.FreeSlots(0))
	}
	back, err := hf.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]int64, 2)
	if !back.ReadTuple(0, row) || row[0] != 1 || row[1] != 2 {
		t.Fatalf("round trip = %v", row)
	}
	if _, err := hf.ReadPage(5); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
}

func TestHeapFileFirstFreeIsFirstFit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.heap")
	hf, err := CreateHeapFile(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hf.Close() }()
	if _, ok := hf.FirstFree(); ok {
		t.Fatal("empty file reported free space")
	}
	for i := 0; i < 3; i++ {
		if _, err := hf.AllocPage(); err != nil {
			t.Fatal(err)
		}
	}
	// Fill page 0 and page 1; page 2 keeps one hole.
	for pno := 0; pno < 2; pno++ {
		for s := 0; s < hf.SlotsPerPage(); s++ {
			hf.noteInsert(pno)
		}
	}
	if pno, ok := hf.FirstFree(); !ok || pno != 2 {
		t.Fatalf("FirstFree = %d,%v want 2,true", pno, ok)
	}
	// Freeing a slot on page 0 makes it the first fit again.
	hf.noteDelete(0)
	if pno, ok := hf.FirstFree(); !ok || pno != 0 {
		t.Fatalf("FirstFree after delete = %d,%v want 0,true", pno, ok)
	}
}
