package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildTable creates a table at path, appends rows {i, i*i} for i < nrows,
// flushes, and closes it cleanly.
func buildTable(t *testing.T, path string, nrows int) {
	t.Helper()
	pool := NewPool(PoolOptions{Capacity: 4})
	tf, err := CreateTableFile(path, 2, pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nrows; i++ {
		if _, err := tf.AppendRow([]int64{int64(i), int64(i * i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTornPageRejectedOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.tbl")
	nrows := 2*SlotsPerPage(2) + 3 // three pages
	buildTable(t, path, nrows)

	// Tear page 1: flip one byte in its tuple area, leaving the stored
	// checksum stale — as a crash mid-write would.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xAB}, PageSize+PageSize/2); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	_, err = OpenHeapFile(path, 2)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("reopen of torn file: got %v, want ErrChecksum", err)
	}
	var ce *ChecksumError
	if !errors.As(err, &ce) || ce.PageNo != 1 {
		t.Fatalf("torn page not identified: %v", err)
	}
}

func TestTruncatedFileRejectedOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.tbl")
	buildTable(t, path, 10)
	if err := os.Truncate(path, PageSize/2); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenHeapFile(path, 2); err == nil {
		t.Fatal("reopen of truncated file succeeded")
	}
}

func TestFreeMapRebuiltFromPages(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.tbl")
	spp := SlotsPerPage(2)
	nrows := 2*spp + 5 // pages 0 and 1 full, page 2 partial
	buildTable(t, path, nrows)

	// Reopen and delete a few rows from page 0, then close.
	pool := NewPool(PoolOptions{Capacity: 4})
	tf, err := OpenTableFile(path, 2, pool)
	if err != nil {
		t.Fatal(err)
	}
	if tf.NumRows() != nrows {
		t.Fatalf("reopened NumRows = %d, want %d", tf.NumRows(), nrows)
	}
	for slot := 0; slot < 3; slot++ {
		if ok, err := tf.DeleteRow(int64(slot)); err != nil || !ok {
			t.Fatalf("delete slot %d: ok=%v err=%v", slot, ok, err)
		}
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}

	// A second reopen must rebuild the free map purely from the page
	// bitmaps: 3 holes on page 0, page 1 full, page 2 partial.
	tf, err = OpenTableFile(path, 2, NewPool(PoolOptions{Capacity: 4}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tf.Close() }()
	hf := tf.File()
	if got := hf.FreeSlots(0); got != 3 {
		t.Fatalf("page 0 free = %d, want 3", got)
	}
	if got := hf.FreeSlots(1); got != 0 {
		t.Fatalf("page 1 free = %d, want 0", got)
	}
	if got := hf.FreeSlots(2); got != spp-5 {
		t.Fatalf("page 2 free = %d, want %d", got, spp-5)
	}
	if tf.NumRows() != nrows-3 {
		t.Fatalf("NumRows = %d, want %d", tf.NumRows(), nrows-3)
	}
	// First-fit steers the next insert into page 0's first hole.
	rowID, err := tf.AppendRow([]int64{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if rowID != 0 {
		t.Fatalf("append went to rowid %d, want the first freed slot", rowID)
	}
}

func TestAbortedScanLeavesNoPinnedPages(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.tbl")
	spp := SlotsPerPage(2)
	buildTable(t, path, 4*spp) // four full pages

	pool := NewPool(PoolOptions{Capacity: 2})
	tf, err := OpenTableFile(path, 2, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tf.Close() }()

	// Abort mid-scan — the shape of a budget-exceeded abort — after
	// touching enough rows to be inside the third page.
	abort := errors.New("budget exceeded")
	seen := 0
	err = tf.Scan(func(int64, []int64) error {
		seen++
		if seen > 2*spp+1 {
			return abort
		}
		return nil
	})
	if !errors.Is(err, abort) {
		t.Fatalf("scan error = %v", err)
	}
	if n := pool.PinnedCount(); n != 0 {
		t.Fatalf("aborted scan left %d pinned pages", n)
	}
	// The pool remains fully usable: a complete scan still works.
	count := 0
	if err := tf.Scan(func(int64, []int64) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 4*spp {
		t.Fatalf("post-abort scan saw %d rows, want %d", count, 4*spp)
	}
}

func TestLargerThanMemoryScanIsCorrect(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.tbl")
	spp := SlotsPerPage(2)
	npages := 10
	nrows := npages * spp
	buildTable(t, path, nrows)

	// Pool capacity far below the table's page count.
	pool := NewPool(PoolOptions{Capacity: 3})
	tf, err := OpenTableFile(path, 2, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tf.Close() }()
	var sum int64
	count := 0
	if err := tf.Scan(func(rowID int64, row []int64) error {
		if row[1] != row[0]*row[0] {
			return fmt.Errorf("row %d corrupted: %v", rowID, row)
		}
		sum += row[0]
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != nrows {
		t.Fatalf("scanned %d rows, want %d", count, nrows)
	}
	want := int64(nrows) * int64(nrows-1) / 2
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	st := pool.Stats()
	if st.Resident > 3 {
		t.Fatalf("pool over capacity: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatal("larger-than-memory scan evicted nothing")
	}
}
