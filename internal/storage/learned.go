package storage

import (
	"fmt"
	"math"

	"ml4db/internal/mlmath"
	"ml4db/internal/modelsvc"
	"ml4db/internal/nn"
)

// FeatureDim is the width of the eviction feature vector.
const FeatureDim = 3

// EvictionFeatures encodes one page's access history at decision time:
// log1p of (ticks since last access, lifetime access count, last
// inter-access gap). The same encoding feeds training and serving, so a
// scorer's inputs replay bit-identically.
func EvictionFeatures(recency, count, gap uint64) []float64 {
	return []float64{
		math.Log1p(float64(recency)),
		math.Log1p(float64(count)),
		math.Log1p(float64(gap)),
	}
}

// Recency is the LRU-equivalent heuristic scorer: the predicted forward
// reuse distance is exactly the time since last access, so evicting the
// maximum prediction evicts the least recently used page. It is the gate's
// incumbent and demotion fallback — the learned policy can never do worse
// than LRU for longer than one canary window.
type Recency struct{}

// Predict implements modelsvc.Predictor.
func (Recency) Predict(x []float64) float64 { return x[0] }

// pageStat is the per-resident-page access history a LearnedPolicy keeps.
type pageStat struct {
	last  uint64 // tick of the most recent access
	prev  uint64 // tick of the access before that (0 if none)
	count uint64 // lifetime accesses while resident
}

func (s *pageStat) features(tick uint64) []float64 {
	gap := uint64(0)
	if s.prev > 0 {
		gap = s.last - s.prev
	}
	return EvictionFeatures(tick-s.last, s.count, gap)
}

// LearnedPolicy evicts the candidate whose predicted forward reuse
// distance is largest (the Belady direction), scoring each candidate's
// access-history features with a modelsvc.Predictor — typically a *Gate, so
// the model behind the score is hot-swapped by canary promotions and
// demotions without touching the pool. Non-finite scores fall back to the
// recency feature, so a broken model degrades toward LRU instead of
// corrupting eviction.
type LearnedPolicy struct {
	scorer modelsvc.Predictor
	st     map[PageKey]*pageStat
}

// NewLearnedPolicy returns a learned eviction policy over scorer.
func NewLearnedPolicy(scorer modelsvc.Predictor) *LearnedPolicy {
	return &LearnedPolicy{scorer: scorer, st: make(map[PageKey]*pageStat)}
}

// Name implements Policy.
func (l *LearnedPolicy) Name() string { return "learned" }

// OnAccess implements Policy.
func (l *LearnedPolicy) OnAccess(key PageKey, tick uint64) {
	s := l.st[key]
	if s == nil {
		s = &pageStat{}
		l.st[key] = s
	}
	s.prev = s.last
	s.last = tick
	s.count++
}

// OnRemove implements Policy.
func (l *LearnedPolicy) OnRemove(key PageKey) { delete(l.st, key) }

// Victim implements Policy: the first strict maximum of the predicted
// reuse distances over the sorted candidates, so ties break toward the
// lowest key.
func (l *LearnedPolicy) Victim(cands []PageKey, tick uint64) PageKey {
	best := cands[0]
	bestScore := l.score(best, tick)
	for _, k := range cands[1:] {
		if s := l.score(k, tick); s > bestScore {
			best, bestScore = k, s
		}
	}
	return best
}

func (l *LearnedPolicy) score(key PageKey, tick uint64) float64 {
	s := l.st[key]
	if s == nil {
		// Never accessed while resident — should not happen, but an unknown
		// page is the safest eviction.
		return math.MaxFloat64
	}
	x := s.features(tick)
	v := l.scorer.Predict(x)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return x[0] // recency fallback: degrade toward LRU, never corrupt
	}
	return v
}

// Sample is one supervised eviction-training example: the page's feature
// vector at an access, labeled with log1p of the actual forward reuse
// distance (capped at the horizon).
type Sample struct {
	X []float64
	Y float64
}

// TraceSamples replays an access trace and emits one Sample per access
// whose page has prior history, labeling it with the distance to the
// page's next access (capped at horizon; horizon <= 0 means the trace
// length). This is the training set for a learned eviction scorer and the
// replay window the Gate shadows candidates over.
func TraceSamples(trace []PageKey, horizon int) []Sample {
	if horizon <= 0 {
		horizon = len(trace)
	}
	// next[i] is the distance from access i to the next access of the same
	// page, capped at horizon.
	next := make([]uint64, len(trace))
	lastSeen := make(map[PageKey]int, 64)
	for i := len(trace) - 1; i >= 0; i-- {
		if j, ok := lastSeen[trace[i]]; ok && j-i <= horizon {
			next[i] = uint64(j - i)
		} else {
			next[i] = uint64(horizon)
		}
		lastSeen[trace[i]] = i
	}
	st := make(map[PageKey]*pageStat, 64)
	var out []Sample
	for i, key := range trace {
		tick := uint64(i + 1)
		if s := st[key]; s != nil {
			out = append(out, Sample{X: s.features(tick), Y: math.Log1p(float64(next[i]))})
		}
		s := st[key]
		if s == nil {
			s = &pageStat{}
			st[key] = s
		}
		s.prev = s.last
		s.last = tick
		s.count++
	}
	return out
}

// MLPScorer is a trained eviction scorer: an MLP regressing log1p forward
// reuse distance from EvictionFeatures. It implements modelsvc.Predictor
// for serving through a Gate and nn.Module for publication through a
// modelsvc.Registry (PublishScorer/LoadScorer), so every candidate's
// lineage is versioned and checksummed.
type MLPScorer struct {
	M *nn.MLP
}

// Predict implements modelsvc.Predictor.
func (s *MLPScorer) Predict(x []float64) float64 { return s.M.Predict1(x) }

// Params implements nn.Module.
func (s *MLPScorer) Params() []*nn.Param { return s.M.Params() }

// NewMLPScorer returns an untrained scorer with the standard architecture
// (FeatureDim → 16 → 1), initialized from seed.
func NewMLPScorer(seed uint64) *MLPScorer {
	rng := mlmath.NewRNG(seed)
	return &MLPScorer{M: nn.NewMLP([]int{FeatureDim, 16, 1}, nn.LeakyReLU{}, nn.Identity{}, rng)}
}

// TrainScorer fits an MLPScorer on the samples. Same samples + same seed →
// bit-identical model (the nn.Fit contract); pool may be nil for strictly
// serial training.
func TrainScorer(samples []Sample, seed uint64, epochs int, pool *mlmath.Pool) (*MLPScorer, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("storage: no training samples")
	}
	if epochs < 1 {
		epochs = 30
	}
	xs := make([][]float64, len(samples))
	ys := make([][]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.X
		ys[i] = []float64{s.Y}
	}
	sc := NewMLPScorer(seed)
	sc.M.Fit(xs, ys, nn.FitOptions{
		Epochs:    epochs,
		BatchSize: 32,
		Optimizer: nn.NewAdam(0.005),
		RNG:       mlmath.NewRNG(seed + 1),
		Pool:      pool,
	})
	return sc, nil
}

// PublishScorer records a trained scorer in the registry under name,
// returning the manifest (version, arch hash, sha256) that tracks the
// candidate's lineage.
func PublishScorer(reg *modelsvc.Registry, name string, s *MLPScorer, meta map[string]string) (modelsvc.Manifest, error) {
	return modelsvc.PublishModule(reg, name, s, meta)
}

// LoadScorer loads version of name from the registry into a
// freshly-architected scorer (arch-hash checked before weights mutate).
func LoadScorer(reg *modelsvc.Registry, name string, version int) (*MLPScorer, modelsvc.Manifest, error) {
	s := NewMLPScorer(0)
	man, err := modelsvc.LoadModule(reg, name, version, s)
	if err != nil {
		return nil, modelsvc.Manifest{}, err
	}
	return s, man, nil
}
