package storage

import (
	"errors"
	"testing"
)

func TestSlotsPerPageInvariants(t *testing.T) {
	usable := PageSize - pageHeaderSize
	for ncols := 1; ncols <= 16; ncols++ {
		n := SlotsPerPage(ncols)
		if n < 1 {
			t.Fatalf("ncols=%d: no slots fit", ncols)
		}
		if (n+7)/8+n*8*ncols > usable {
			t.Fatalf("ncols=%d: %d slots overflow the page", ncols, n)
		}
		if (n+8)/8+(n+1)*8*ncols <= usable {
			t.Fatalf("ncols=%d: %d slots is not maximal", ncols, n)
		}
	}
}

func TestPageInsertReadDelete(t *testing.T) {
	p := NewPage(3, 2)
	if p.PageNo() != 3 || p.NCols() != 2 {
		t.Fatalf("header: pageNo=%d ncols=%d", p.PageNo(), p.NCols())
	}
	if p.LiveTuples() != 0 || p.FreeSlots() != p.NumSlots() {
		t.Fatalf("fresh page not empty")
	}
	s0, ok := p.Insert([]int64{10, -20})
	if !ok || s0 != 0 {
		t.Fatalf("first insert: slot=%d ok=%v", s0, ok)
	}
	s1, ok := p.Insert([]int64{30, 40})
	if !ok || s1 != 1 {
		t.Fatalf("second insert: slot=%d ok=%v", s1, ok)
	}
	row := make([]int64, 2)
	if !p.ReadTuple(0, row) || row[0] != 10 || row[1] != -20 {
		t.Fatalf("slot 0 = %v", row)
	}
	if p.ReadTuple(5, row) {
		t.Fatalf("read of empty slot succeeded")
	}
	if !p.Delete(0) || p.Delete(0) {
		t.Fatalf("delete not idempotent-false")
	}
	// First-fit reuses the freed slot.
	s, ok := p.Insert([]int64{7, 8})
	if !ok || s != 0 {
		t.Fatalf("reinsert went to slot %d", s)
	}
	if _, ok := p.Insert([]int64{1}); ok {
		t.Fatalf("wrong-width insert succeeded")
	}
}

func TestPageFillsToCapacity(t *testing.T) {
	p := NewPage(0, 1)
	for i := 0; i < p.NumSlots(); i++ {
		if _, ok := p.Insert([]int64{int64(i)}); !ok {
			t.Fatalf("insert %d failed", i)
		}
	}
	if _, ok := p.Insert([]int64{99}); ok {
		t.Fatalf("insert into full page succeeded")
	}
	row := make([]int64, 1)
	for i := 0; i < p.NumSlots(); i++ {
		if !p.ReadTuple(i, row) || row[0] != int64(i) {
			t.Fatalf("slot %d = %v", i, row)
		}
	}
}

func TestPageFromBytesRejectsCorruption(t *testing.T) {
	p := NewPage(0, 1)
	if _, ok := p.Insert([]int64{42}); !ok {
		t.Fatal("insert failed")
	}
	p.UpdateChecksum()

	good := make([]byte, PageSize)
	copy(good, p.Bytes())
	if _, err := PageFromBytes(good, "t", 0); err != nil {
		t.Fatalf("clean page rejected: %v", err)
	}

	torn := make([]byte, PageSize)
	copy(torn, p.Bytes())
	torn[PageSize/2] ^= 0xFF
	_, err := PageFromBytes(torn, "t", 0)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("torn page: got %v, want ErrChecksum", err)
	}
	var ce *ChecksumError
	if !errors.As(err, &ce) || ce.PageNo != 0 || ce.Path != "t" {
		t.Fatalf("checksum error detail: %v", err)
	}

	// A checksum-valid page read at the wrong offset is also rejected.
	if _, err := PageFromBytes(good, "t", 7); err == nil {
		t.Fatalf("page-number mismatch accepted")
	}
}
