package storage

// LRU is the deterministic baseline eviction policy: evict the resident
// page with the oldest last-access tick, breaking ties toward the earliest
// (lowest-key) candidate.
type LRU struct {
	last map[PageKey]uint64
}

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU { return &LRU{last: make(map[PageKey]uint64)} }

// Name implements Policy.
func (l *LRU) Name() string { return "lru" }

// OnAccess implements Policy.
func (l *LRU) OnAccess(key PageKey, tick uint64) { l.last[key] = tick }

// OnRemove implements Policy.
func (l *LRU) OnRemove(key PageKey) { delete(l.last, key) }

// Victim implements Policy: the least recently used candidate. cands is
// sorted, so keeping the first strict minimum breaks ties toward the lowest
// key.
func (l *LRU) Victim(cands []PageKey, _ uint64) PageKey {
	best := cands[0]
	bestTick := l.last[best]
	for _, k := range cands[1:] {
		if t := l.last[k]; t < bestTick {
			best, bestTick = k, t
		}
	}
	return best
}
