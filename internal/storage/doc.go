// Package storage is the disk layer of the relational engine: slotted heap
// pages, heap files with a free-space map, and a paged buffer pool with a
// pluggable — and learnable — eviction policy.
//
// # Layout
//
// A Page is a fixed PageSize (4 KiB) byte array holding fixed-width int64
// tuples behind a checksummed header and a slot-occupancy bitmap (see
// page.go for the exact byte layout). A HeapFile is a sequence of pages in
// one OS file; it maintains an in-memory free-space map (free slots per
// page) that is rebuilt from the page bitmaps on every open — and open
// verifies every page checksum, so a torn or corrupted page is rejected at
// reopen rather than silently scanned. A TableFile wraps a HeapFile with
// row-level operations (append, read by row id, full scans) for the
// catalog's disk-backed tables.
//
// # Buffer pool and pin discipline
//
// All page access goes through a Pool: Fetch pins a page into a frame and
// returns a PageHandle; the caller must Unpin the handle on every non-error
// path (the spanend analyzer enforces this the same way it enforces
// Span.End). A pinned page is never evicted — eviction with every frame
// pinned fails with ErrAllPinned rather than corrupting a reader. Dirty
// pages (SetDirty) are written back on eviction and on Flush.
//
// # Determinism
//
// The pool is a determinism-core package: it keeps a logical access tick
// instead of wall-clock time, eviction candidates are offered to the policy
// in sorted key order, and ties break toward the lowest key. Same trace +
// same policy (and, for the learned policy, same training seed) therefore
// reproduce a bit-identical eviction sequence — the replay contract the
// -storage benchmark verifies, mirroring the mlmath.Clock/Pool contracts.
//
// # Learned eviction
//
// Policy is the eviction interface; LRU is the deterministic baseline. A
// LearnedPolicy instead scores each candidate's predicted forward reuse
// distance with a modelsvc.Predictor and evicts the page predicted to be
// needed furthest in the future (the Belady direction). The predictor is
// deployed through Gate — a modelsvc.Rollout whose incumbent is the Recency
// heuristic (predicted reuse = time since last access, which makes the
// learned policy behave exactly like LRU) — so a trained model serves
// evictions only after beating the LRU-equivalent incumbent over a shadow
// window, and Guard demotes it back the moment its live hit rate regresses
// against a shadowed LRU simulation. See docs/STORAGE.md.
package storage
