package storage

import (
	"fmt"
)

// TableFile wraps a HeapFile with row-level operations for a disk-backed
// table: append, delete, read-by-rowid, and pooled scans. A row id encodes
// (page, slot) as pageNo*SlotsPerPage + slot, so lookups need no separate
// rowid directory. All page access goes through the pool the table was
// opened with.
type TableFile struct {
	hf   *HeapFile
	pool *Pool
}

// CreateTableFile creates (or truncates) a disk table at path with
// ncols-wide rows, cached through pool.
func CreateTableFile(path string, ncols int, pool *Pool) (*TableFile, error) {
	hf, err := CreateHeapFile(path, ncols)
	if err != nil {
		return nil, err
	}
	return &TableFile{hf: hf, pool: pool}, nil
}

// OpenTableFile reopens a disk table, verifying every page checksum and
// rebuilding the free-space map (see OpenHeapFile).
func OpenTableFile(path string, ncols int, pool *Pool) (*TableFile, error) {
	hf, err := OpenHeapFile(path, ncols)
	if err != nil {
		return nil, err
	}
	return &TableFile{hf: hf, pool: pool}, nil
}

// File returns the underlying heap file.
func (tf *TableFile) File() *HeapFile { return tf.hf }

// Pool returns the buffer pool the table reads through.
func (tf *TableFile) Pool() *Pool { return tf.pool }

// NCols returns the row width.
func (tf *TableFile) NCols() int { return tf.hf.NCols() }

// NumPages returns the page count.
func (tf *TableFile) NumPages() int { return tf.hf.NumPages() }

// NumRows returns the live row count (from the free-space map).
func (tf *TableFile) NumRows() int { return tf.hf.LiveTuples() }

// FetchPage pins pageNo through the pool. The caller must Unpin the handle
// on every non-error path.
func (tf *TableFile) FetchPage(pageNo int) (*PageHandle, error) {
	return tf.pool.Fetch(tf.hf, pageNo)
}

// FetchPageForScan fetches pageNo through the pool's read-only scan path
// (Pool.FetchScan): resident pages are pinned without perturbing replacement
// state, non-resident pages are read privately without insertion. Safe for
// concurrent scan shards; the caller must Unpin the handle on every
// non-error path.
func (tf *TableFile) FetchPageForScan(pageNo int) (*PageHandle, error) {
	return tf.pool.FetchScan(tf.hf, pageNo)
}

// AppendRow inserts row into the first page with free space (allocating a
// new page when the file is full) and returns its row id.
func (tf *TableFile) AppendRow(row []int64) (rowID int64, err error) {
	if len(row) != tf.hf.NCols() {
		return 0, fmt.Errorf("storage: row width %d != %d columns of %s", len(row), tf.hf.NCols(), tf.hf.Path())
	}
	pageNo, ok := tf.hf.FirstFree()
	if !ok {
		pageNo, err = tf.hf.AllocPage()
		if err != nil {
			return 0, err
		}
	}
	h, err := tf.FetchPage(pageNo)
	if err != nil {
		return 0, err
	}
	defer h.Unpin()
	slot, ok := h.Page().Insert(row)
	if !ok {
		return 0, fmt.Errorf("storage: free-space map said page %d of %s had space but insert failed", pageNo, tf.hf.Path())
	}
	h.SetDirty()
	tf.hf.noteInsert(pageNo)
	return int64(pageNo)*int64(tf.hf.SlotsPerPage()) + int64(slot), nil
}

// DeleteRow clears the slot addressed by rowID, returning false when it
// was already empty.
func (tf *TableFile) DeleteRow(rowID int64) (bool, error) {
	pageNo, slot, err := tf.split(rowID)
	if err != nil {
		return false, err
	}
	h, err := tf.FetchPage(pageNo)
	if err != nil {
		return false, err
	}
	defer h.Unpin()
	if !h.Page().Delete(slot) {
		return false, nil
	}
	h.SetDirty()
	tf.hf.noteDelete(pageNo)
	return true, nil
}

// ReadRow reads the row addressed by rowID through the pool, also
// reporting whether the fetch missed (read a page from disk). ok is false
// for an empty slot.
func (tf *TableFile) ReadRow(rowID int64) (row []int64, ok, missed bool, err error) {
	pageNo, slot, err := tf.split(rowID)
	if err != nil {
		return nil, false, false, err
	}
	h, err := tf.FetchPage(pageNo)
	if err != nil {
		return nil, false, false, err
	}
	defer h.Unpin()
	row = make([]int64, tf.hf.NCols())
	if !h.Page().ReadTuple(slot, row) {
		return nil, false, h.Missed(), nil
	}
	return row, true, h.Missed(), nil
}

func (tf *TableFile) split(rowID int64) (pageNo, slot int, err error) {
	spp := int64(tf.hf.SlotsPerPage())
	pageNo, slot = int(rowID/spp), int(rowID%spp)
	if rowID < 0 || pageNo >= tf.hf.NumPages() {
		return 0, 0, fmt.Errorf("storage: row id %d out of range of %s", rowID, tf.hf.Path())
	}
	return pageNo, slot, nil
}

// Scan iterates every live row in rowid order through the pool, pinning
// one page at a time. fn receives the row id and a reused row buffer it
// must not retain; a non-nil error from fn aborts the scan (with the
// current page unpinned).
func (tf *TableFile) Scan(fn func(rowID int64, row []int64) error) error {
	row := make([]int64, tf.hf.NCols())
	spp := int64(tf.hf.SlotsPerPage())
	for pageNo := 0; pageNo < tf.hf.NumPages(); pageNo++ {
		if err := tf.scanPage(pageNo, spp, row, fn); err != nil {
			return err
		}
	}
	return nil
}

func (tf *TableFile) scanPage(pageNo int, spp int64, row []int64, fn func(rowID int64, row []int64) error) error {
	h, err := tf.FetchPage(pageNo)
	if err != nil {
		return err
	}
	defer h.Unpin()
	p := h.Page()
	for slot := 0; slot < p.NumSlots(); slot++ {
		if !p.ReadTuple(slot, row) {
			continue
		}
		if err := fn(int64(pageNo)*spp+int64(slot), row); err != nil {
			return err
		}
	}
	return nil
}

// ColumnValues reads one column of every live row, in rowid order — the
// accessor ANALYZE and index builds use for disk tables.
func (tf *TableFile) ColumnValues(col int) ([]int64, error) {
	if col < 0 || col >= tf.hf.NCols() {
		return nil, fmt.Errorf("storage: column %d out of range of %s", col, tf.hf.Path())
	}
	out := make([]int64, 0, tf.NumRows())
	err := tf.Scan(func(_ int64, row []int64) error {
		out = append(out, row[col])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Flush writes back this table's dirty pooled pages.
func (tf *TableFile) Flush() error { return tf.pool.FlushFile(tf.hf) }

// Close flushes and drops this table's pages from the pool, then closes
// the file. It fails if any of the table's pages is still pinned.
func (tf *TableFile) Close() error {
	if err := tf.pool.ReleaseFile(tf.hf); err != nil {
		return err
	}
	return tf.hf.Close()
}
