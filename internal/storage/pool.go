package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ml4db/internal/obs"
)

// ErrAllPinned matches any eviction failure caused by every frame being
// pinned.
var ErrAllPinned = errors.New("storage: all buffer-pool frames are pinned")

// AllPinnedError reports that a page could not be brought in because every
// frame is pinned — eviction of a pinned page is refused, never forced.
type AllPinnedError struct {
	Capacity int
}

// Error implements error.
func (e *AllPinnedError) Error() string {
	return fmt.Sprintf("storage: cannot evict, all %d buffer-pool frames are pinned", e.Capacity)
}

// Is reports all-pinned failures as ErrAllPinned so errors.Is matches.
func (e *AllPinnedError) Is(target error) bool { return target == ErrAllPinned }

// PageKey identifies one page of one registered heap file inside a Pool.
type PageKey struct {
	File uint32
	Page uint32
}

// Less orders keys (file, then page) — the deterministic tie-break order
// used everywhere candidates are enumerated.
func (k PageKey) Less(o PageKey) bool {
	if k.File != o.File {
		return k.File < o.File
	}
	return k.Page < o.Page
}

// Policy decides which unpinned resident page to evict. The pool owns the
// policy and drives it single-threaded under its lock: OnAccess on every
// fetch (hit or load), OnRemove when a page leaves the pool, Victim when a
// frame must be freed. Candidates arrive sorted by PageKey; implementations
// must return one of them and should break score ties toward the earliest
// candidate so eviction sequences replay bit-identically.
type Policy interface {
	Name() string
	OnAccess(key PageKey, tick uint64)
	OnRemove(key PageKey)
	Victim(cands []PageKey, tick uint64) PageKey
}

// PoolOptions configures a Pool.
type PoolOptions struct {
	// Capacity is the frame count; values below one default to 64.
	Capacity int
	// Policy selects eviction victims; nil defaults to NewLRU().
	Policy Policy
	// Metrics, when non-nil, receives storage.pool.* instruments.
	Metrics *obs.Registry
	// RecordEvictions keeps the eviction sequence for replay-determinism
	// checks (EvictionLog). Off by default: the log grows with evictions.
	RecordEvictions bool
	// Observer, when non-nil, sees every fetch (key, hit) in access order —
	// the hook Guard uses to shadow-score the live hit rate against LRU.
	Observer func(key PageKey, hit bool)
}

// frame is one resident page.
type frame struct {
	key      PageKey
	hf       *HeapFile
	page     *Page
	pins     int
	dirty    bool
	lastTick uint64
}

// Pool is the buffer pool: a fixed number of frames caching heap-file pages
// with pin/unpin discipline, dirty tracking and write-back, and pluggable
// eviction. All state transitions happen under one mutex, in caller order,
// with a logical tick as the only clock — which is what makes eviction
// sequences replayable.
type Pool struct {
	mu     sync.Mutex
	opts   PoolOptions
	frames map[PageKey]*frame
	files  map[*HeapFile]uint32
	nextID uint32
	tick   uint64

	hits, misses, evictions, writebacks int64
	evictLog                            []PageKey

	cHits, cMisses, cEvictions, cWritebacks *obs.Counter
	hReuse                                  *obs.Histogram
}

// reuseBuckets cover on-hit reuse distances (ticks) from 1 to ~16M.
var reuseBuckets = obs.ExpBuckets(1, 4, 13)

// NewPool returns a buffer pool with the given options.
func NewPool(opts PoolOptions) *Pool {
	if opts.Capacity < 1 {
		opts.Capacity = 64
	}
	if opts.Policy == nil {
		opts.Policy = NewLRU()
	}
	p := &Pool{
		opts:   opts,
		frames: make(map[PageKey]*frame, opts.Capacity),
		files:  make(map[*HeapFile]uint32),
	}
	if m := opts.Metrics; m != nil {
		p.cHits = m.Counter("storage.pool.hits")
		p.cMisses = m.Counter("storage.pool.misses")
		p.cEvictions = m.Counter("storage.pool.evictions")
		p.cWritebacks = m.Counter("storage.pool.writebacks")
		p.hReuse = m.Histogram("storage.pool.reuse_dist", reuseBuckets)
	}
	return p
}

// Capacity returns the frame count.
func (p *Pool) Capacity() int { return p.opts.Capacity }

// PolicyName returns the active eviction policy's name.
func (p *Pool) PolicyName() string { return p.opts.Policy.Name() }

// fileID registers hf on first use. Registration order follows first-fetch
// order, so key assignment is deterministic for a deterministic workload.
func (p *Pool) fileID(hf *HeapFile) uint32 {
	if id, ok := p.files[hf]; ok {
		return id
	}
	id := p.nextID
	p.nextID++
	p.files[hf] = id
	return id
}

// PageHandle is a pinned page. The holder may read the page, mutate it and
// mark it dirty; it must call Unpin on every non-error path when done (the
// spanend analyzer checks this). Unpin is idempotent per handle.
//
// Handles from FetchScan may instead wrap a private page read around the
// pool (pool and fr nil, page set); such handles are read-only.
type PageHandle struct {
	pool     *Pool
	fr       *frame
	page     *Page // bypass handles only: private copy, not resident
	missed   bool
	released bool
}

// Page returns the pinned page. Valid until Unpin.
func (h *PageHandle) Page() *Page {
	if h.fr == nil {
		return h.page
	}
	return h.fr.page
}

// Missed reports whether this fetch had to read the page from disk (a pool
// miss) — the signal the executor charges as PageMiss work.
func (h *PageHandle) Missed() bool { return h.missed }

// SetDirty marks the page as modified so eviction and Flush write it back.
// FetchScan bypass handles are read-only: dirtying a private copy would
// silently lose the write, so that is a programming error.
func (h *PageHandle) SetDirty() {
	if h.pool == nil {
		//ml4db:allow nakedpanic "read-only bypass handles have no frame to dirty; losing the write silently would corrupt the table"
		panic("storage: SetDirty on a read-only scan handle")
	}
	h.pool.mu.Lock()
	h.fr.dirty = true
	h.pool.mu.Unlock()
}

// Unpin releases the pin. Calling it more than once is a no-op. Bypass
// handles hold no pool state; for them Unpin only marks the handle released.
func (h *PageHandle) Unpin() {
	if h.pool == nil {
		h.released = true
		return
	}
	h.pool.mu.Lock()
	if !h.released {
		h.released = true
		if h.fr.pins > 0 {
			h.fr.pins--
		}
	}
	h.pool.mu.Unlock()
}

// Fetch pins pageNo of hf into the pool, reading it from disk on a miss
// (evicting an unpinned victim first when the pool is full) and returns the
// handle. With every frame pinned it fails with *AllPinnedError; a page
// that fails its checksum on load surfaces as *ChecksumError.
func (p *Pool) Fetch(hf *HeapFile, pageNo int) (*PageHandle, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tick++
	key := PageKey{File: p.fileID(hf), Page: uint32(pageNo)}
	if fr, ok := p.frames[key]; ok {
		p.hits++
		p.cHits.Inc()
		p.hReuse.Observe(float64(p.tick - fr.lastTick))
		fr.lastTick = p.tick
		fr.pins++
		p.notifyLocked(key, true)
		return &PageHandle{pool: p, fr: fr, missed: false}, nil
	}
	if len(p.frames) >= p.opts.Capacity {
		if err := p.evictLocked(); err != nil {
			return nil, err
		}
	}
	page, err := hf.ReadPage(pageNo)
	if err != nil {
		return nil, err
	}
	p.misses++
	p.cMisses.Inc()
	fr := &frame{key: key, hf: hf, page: page, pins: 1, lastTick: p.tick}
	p.frames[key] = fr
	p.notifyLocked(key, false)
	return &PageHandle{pool: p, fr: fr, missed: true}, nil
}

// FetchScan is the read-only bulk-scan path: it returns pageNo of hf without
// perturbing any replacement state, so concurrent scan shards can fetch pages
// in any interleaving and leave the pool's future eviction decisions — and
// therefore replay determinism — untouched. A resident page is pinned and
// counted as a hit, but the logical tick, the eviction policy, the reuse
// histogram, and the observer are all left alone; a non-resident page is read
// from disk outside the lock into a private page that is never inserted (no
// eviction, no registration of unknown files) and counted as a miss. Safe for
// concurrent use with Fetch and with other FetchScan calls.
func (p *Pool) FetchScan(hf *HeapFile, pageNo int) (*PageHandle, error) {
	p.mu.Lock()
	if id, ok := p.files[hf]; ok {
		key := PageKey{File: id, Page: uint32(pageNo)}
		if fr, ok := p.frames[key]; ok {
			p.hits++
			p.cHits.Inc()
			fr.pins++
			p.mu.Unlock()
			return &PageHandle{pool: p, fr: fr, missed: false}, nil
		}
	}
	p.mu.Unlock()
	page, err := hf.ReadPage(pageNo)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.misses++
	p.cMisses.Inc()
	p.mu.Unlock()
	return &PageHandle{page: page, missed: true}, nil
}

// notifyLocked drives the policy and observer for one access, in access
// order under the pool lock.
func (p *Pool) notifyLocked(key PageKey, hit bool) {
	p.opts.Policy.OnAccess(key, p.tick)
	if p.opts.Observer != nil {
		p.opts.Observer(key, hit)
	}
}

// evictLocked frees one frame: unpinned candidates are offered to the
// policy in sorted key order, the victim is written back if dirty, and the
// eviction is logged when RecordEvictions is set.
func (p *Pool) evictLocked() error {
	cands := make([]PageKey, 0, len(p.frames))
	for key, fr := range p.frames {
		if fr.pins == 0 {
			cands = append(cands, key)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Less(cands[j]) })
	if len(cands) == 0 {
		return &AllPinnedError{Capacity: p.opts.Capacity}
	}
	victim := p.opts.Policy.Victim(cands, p.tick)
	fr, ok := p.frames[victim]
	if !ok || fr.pins != 0 {
		// A policy returning a non-candidate must not corrupt the pool:
		// fall back to the first (lowest-key) candidate deterministically.
		victim = cands[0]
		fr = p.frames[victim]
	}
	if fr.dirty {
		if err := fr.hf.WritePage(fr.page); err != nil {
			return err
		}
		p.writebacks++
		p.cWritebacks.Inc()
	}
	delete(p.frames, victim)
	p.opts.Policy.OnRemove(victim)
	p.evictions++
	p.cEvictions.Inc()
	if p.opts.RecordEvictions {
		p.evictLog = append(p.evictLog, victim)
	}
	return nil
}

// PoolStats is a snapshot of the pool's counters and occupancy.
type PoolStats struct {
	Hits, Misses, Evictions, Writebacks int64
	Resident, Pinned                    int
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PoolStats{
		Hits: p.hits, Misses: p.misses,
		Evictions: p.evictions, Writebacks: p.writebacks,
		Resident: len(p.frames),
	}
	for _, fr := range p.frames {
		if fr.pins > 0 {
			st.Pinned++
		}
	}
	return st
}

// PinnedCount returns how many frames currently hold at least one pin —
// zero after any well-behaved scan, aborted or not.
func (p *Pool) PinnedCount() int { return p.Stats().Pinned }

// MissRate returns misses/(hits+misses), or 1 before any access — the cold
// assumption the optimizer's I/O term starts from.
func (p *Pool) MissRate() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.hits + p.misses
	if total == 0 {
		return 1
	}
	return float64(p.misses) / float64(total)
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (p *Pool) HitRate() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.hits + p.misses
	if total == 0 {
		return 0
	}
	return float64(p.hits) / float64(total)
}

// EvictionLog returns a copy of the recorded eviction sequence (empty
// unless RecordEvictions was set).
func (p *Pool) EvictionLog() []PageKey {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PageKey, len(p.evictLog))
	copy(out, p.evictLog)
	return out
}

// FlushAll writes back every dirty resident page (in key order) without
// evicting anything.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked(nil)
}

// FlushFile writes back hf's dirty resident pages (in key order).
func (p *Pool) FlushFile(hf *HeapFile) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked(hf)
}

func (p *Pool) flushLocked(only *HeapFile) error {
	keys := make([]PageKey, 0, len(p.frames))
	for key, fr := range p.frames {
		if fr.dirty && (only == nil || fr.hf == only) {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	for _, key := range keys {
		fr := p.frames[key]
		if err := fr.hf.WritePage(fr.page); err != nil {
			return err
		}
		fr.dirty = false
		p.writebacks++
		p.cWritebacks.Inc()
	}
	return nil
}

// ReleaseFile flushes hf's dirty pages and drops all its frames from the
// pool (so the file can be closed or reopened). It fails with
// *AllPinnedError semantics if any of hf's pages is still pinned.
func (p *Pool) ReleaseFile(hf *HeapFile) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	keys := make([]PageKey, 0, len(p.frames))
	for key, fr := range p.frames {
		if fr.hf == hf {
			if fr.pins > 0 {
				return fmt.Errorf("storage: releasing %s with page %d still pinned: %w", hf.Path(), key.Page, ErrAllPinned)
			}
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	for _, key := range keys {
		fr := p.frames[key]
		if fr.dirty {
			if err := fr.hf.WritePage(fr.page); err != nil {
				return err
			}
			p.writebacks++
			p.cWritebacks.Inc()
		}
		delete(p.frames, key)
		//ml4db:allow lockcheck "the policy is pool-owned single-threaded state driven strictly in access order under p.mu; snapshotting and calling outside would let a concurrent Fetch interleave OnAccess between the delete and the OnRemove"
		p.opts.Policy.OnRemove(key)
	}
	return nil
}
