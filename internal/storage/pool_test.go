package storage

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"ml4db/internal/obs"
)

// newPooledFile creates a heap file with npages pre-allocated pages, each
// seeded with one tuple {pageNo} so reads have something to verify.
func newPooledFile(t *testing.T, name string, npages int) *HeapFile {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	hf, err := CreateHeapFile(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hf.Close() })
	for i := 0; i < npages; i++ {
		if _, err := hf.AllocPage(); err != nil {
			t.Fatal(err)
		}
		p, err := hf.ReadPage(i)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := p.Insert([]int64{int64(i)}); !ok {
			t.Fatal("seed insert failed")
		}
		if err := hf.WritePage(p); err != nil {
			t.Fatal(err)
		}
		hf.noteInsert(i)
	}
	return hf
}

func fetchAndRelease(t *testing.T, p *Pool, hf *HeapFile, pageNo int) bool {
	t.Helper()
	h, err := p.Fetch(hf, pageNo)
	if err != nil {
		t.Fatalf("fetch page %d: %v", pageNo, err)
	}
	defer h.Unpin()
	row := make([]int64, 1)
	if !h.Page().ReadTuple(0, row) || row[0] != int64(pageNo) {
		t.Fatalf("page %d content = %v", pageNo, row)
	}
	return h.Missed()
}

func TestPoolHitsAndMisses(t *testing.T) {
	hf := newPooledFile(t, "t.heap", 3)
	reg := obs.NewRegistry()
	pool := NewPool(PoolOptions{Capacity: 4, Metrics: reg})
	if !fetchAndRelease(t, pool, hf, 0) {
		t.Fatal("cold fetch did not miss")
	}
	if fetchAndRelease(t, pool, hf, 0) {
		t.Fatal("warm fetch missed")
	}
	fetchAndRelease(t, pool, hf, 1)
	st := pool.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Resident != 2 || st.Pinned != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if got := pool.MissRate(); got != 2.0/3.0 {
		t.Fatalf("MissRate = %v", got)
	}
	if got := pool.HitRate(); got != 1.0/3.0 {
		t.Fatalf("HitRate = %v", got)
	}
	if reg.Counter("storage.pool.hits").Value() != 1 || reg.Counter("storage.pool.misses").Value() != 2 {
		t.Fatalf("metrics: hits=%d misses=%d",
			reg.Counter("storage.pool.hits").Value(), reg.Counter("storage.pool.misses").Value())
	}
	if reg.Histogram("storage.pool.reuse_dist", reuseBuckets).Count() != 1 {
		t.Fatalf("reuse histogram count = %d", reg.Histogram("storage.pool.reuse_dist", reuseBuckets).Count())
	}
}

func TestPoolMissRateColdIsOne(t *testing.T) {
	pool := NewPool(PoolOptions{Capacity: 2})
	if pool.MissRate() != 1 {
		t.Fatalf("cold MissRate = %v, want 1", pool.MissRate())
	}
}

func TestPoolEvictsLRU(t *testing.T) {
	hf := newPooledFile(t, "t.heap", 3)
	pool := NewPool(PoolOptions{Capacity: 2, RecordEvictions: true})
	fetchAndRelease(t, pool, hf, 0)
	fetchAndRelease(t, pool, hf, 1)
	fetchAndRelease(t, pool, hf, 0) // page 1 is now least recently used
	fetchAndRelease(t, pool, hf, 2) // must evict page 1
	want := []PageKey{{File: 0, Page: 1}}
	if got := pool.EvictionLog(); !reflect.DeepEqual(got, want) {
		t.Fatalf("eviction log = %v, want %v", got, want)
	}
	if fetchAndRelease(t, pool, hf, 0) {
		t.Fatal("page 0 was evicted")
	}
}

func TestPoolRefusesToEvictPinned(t *testing.T) {
	hf := newPooledFile(t, "t.heap", 3)
	pool := NewPool(PoolOptions{Capacity: 2, RecordEvictions: true})
	h0, err := pool.Fetch(hf, 0)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := pool.Fetch(hf, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Both frames pinned: bringing in a third page must fail, not force out
	// a pinned page.
	_, err = pool.Fetch(hf, 2)
	if !errors.Is(err, ErrAllPinned) {
		t.Fatalf("all-pinned fetch: got %v, want ErrAllPinned", err)
	}
	var ap *AllPinnedError
	if !errors.As(err, &ap) || ap.Capacity != 2 {
		t.Fatalf("all-pinned detail: %v", err)
	}
	// Unpin page 0 (the older access): it becomes the only candidate.
	h0.Unpin()
	h2, err := pool.Fetch(hf, 2)
	if err != nil {
		t.Fatalf("fetch after unpin: %v", err)
	}
	h2.Unpin()
	h1.Unpin()
	want := []PageKey{{File: 0, Page: 0}}
	if got := pool.EvictionLog(); !reflect.DeepEqual(got, want) {
		t.Fatalf("eviction log = %v, want %v", got, want)
	}
	if n := pool.PinnedCount(); n != 0 {
		t.Fatalf("PinnedCount = %d after releasing everything", n)
	}
}

func TestPoolUnpinIdempotent(t *testing.T) {
	hf := newPooledFile(t, "t.heap", 1)
	pool := NewPool(PoolOptions{Capacity: 2})
	h, err := pool.Fetch(hf, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.Unpin()
	h.Unpin()
	if n := pool.PinnedCount(); n != 0 {
		t.Fatalf("PinnedCount = %d", n)
	}
	// Double-unpin must not release someone else's pin.
	h2, err := pool.Fetch(hf, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.Unpin()
	if n := pool.PinnedCount(); n != 1 {
		t.Fatalf("stale Unpin stole a pin: PinnedCount = %d", n)
	}
	h2.Unpin()
}

func TestPoolWritebackOnEviction(t *testing.T) {
	hf := newPooledFile(t, "t.heap", 2)
	pool := NewPool(PoolOptions{Capacity: 1})
	h, err := pool.Fetch(hf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Page().Insert([]int64{77}); !ok {
		t.Fatal("insert failed")
	}
	h.SetDirty()
	h.Unpin()
	fetchAndRelease(t, pool, hf, 1) // evicts dirty page 0 → must write back
	st := pool.Stats()
	if st.Evictions != 1 || st.Writebacks != 1 {
		t.Fatalf("stats = %+v", st)
	}
	p, err := hf.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]int64, 1)
	if !p.ReadTuple(1, row) || row[0] != 77 {
		t.Fatalf("written-back tuple = %v", row)
	}
}

func TestPoolFlushFileWritesDirtyPages(t *testing.T) {
	hf := newPooledFile(t, "t.heap", 2)
	pool := NewPool(PoolOptions{Capacity: 4})
	h, err := pool.Fetch(hf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Page().Insert([]int64{55}); !ok {
		t.Fatal("insert failed")
	}
	h.SetDirty()
	h.Unpin()
	if err := pool.FlushFile(hf); err != nil {
		t.Fatal(err)
	}
	p, err := hf.ReadPage(1)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]int64, 1)
	if !p.ReadTuple(1, row) || row[0] != 55 {
		t.Fatalf("flushed tuple = %v", row)
	}
	// Flushing again writes nothing: the dirty bit cleared.
	before := pool.Stats().Writebacks
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if after := pool.Stats().Writebacks; after != before {
		t.Fatalf("clean flush wrote %d pages", after-before)
	}
}

func TestPoolReleaseFileRefusesPinned(t *testing.T) {
	hf := newPooledFile(t, "t.heap", 2)
	pool := NewPool(PoolOptions{Capacity: 4})
	h, err := pool.Fetch(hf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.ReleaseFile(hf); !errors.Is(err, ErrAllPinned) {
		t.Fatalf("release with pin: got %v, want ErrAllPinned", err)
	}
	h.Unpin()
	if err := pool.ReleaseFile(hf); err != nil {
		t.Fatalf("release after unpin: %v", err)
	}
	if st := pool.Stats(); st.Resident != 0 {
		t.Fatalf("frames left after release: %+v", st)
	}
}

// accessPattern is a deterministic mixed workload touching npages pages.
func accessPattern(npages, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = (i*7 + i*i*3) % npages
	}
	return out
}

func runTrace(t *testing.T, policy func() Policy, name string, pattern []int, npages int) []PageKey {
	t.Helper()
	hf := newPooledFile(t, name, npages)
	pool := NewPool(PoolOptions{Capacity: 4, Policy: policy(), RecordEvictions: true})
	for _, pno := range pattern {
		fetchAndRelease(t, pool, hf, pno)
	}
	return pool.EvictionLog()
}

func TestPoolReplayDeterminism(t *testing.T) {
	pattern := accessPattern(12, 400)
	for _, tc := range []struct {
		name   string
		policy func() Policy
	}{
		{"lru", func() Policy { return NewLRU() }},
		{"learned-recency", func() Policy { return NewLearnedPolicy(Recency{}) }},
	} {
		a := runTrace(t, tc.policy, tc.name+"-a.heap", pattern, 12)
		b := runTrace(t, tc.policy, tc.name+"-b.heap", pattern, 12)
		if len(a) == 0 {
			t.Fatalf("%s: workload produced no evictions", tc.name)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: eviction logs diverge:\n%v\n%v", tc.name, a, b)
		}
	}
}

func TestPoolObserverSeesAccessOrder(t *testing.T) {
	hf := newPooledFile(t, "t.heap", 2)
	type access struct {
		key PageKey
		hit bool
	}
	var seen []access
	pool := NewPool(PoolOptions{Capacity: 4, Observer: func(k PageKey, hit bool) {
		seen = append(seen, access{k, hit})
	}})
	fetchAndRelease(t, pool, hf, 0)
	fetchAndRelease(t, pool, hf, 1)
	fetchAndRelease(t, pool, hf, 0)
	want := []access{
		{PageKey{0, 0}, false},
		{PageKey{0, 1}, false},
		{PageKey{0, 0}, true},
	}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("observer saw %v, want %v", seen, want)
	}
}
