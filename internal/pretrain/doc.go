// Package pretrain implements the pretrained / unified model foundation of
// §3.1: a plan-representation model trained across *multiple databases* on
// *multiple tasks* that transfers to a new database with few-shot
// fine-tuning. It combines the three ideas the paper surveys:
//
//   - database-agnostic features (Hilprecht & Binnig's zero-shot
//     disentanglement): the encoder sees operator, predicate, and statistics
//     features but no table identity;
//   - multi-task heads (MTMLF): one shared encoder feeds separate cost and
//     cardinality heads, splitting task-specific from task-agnostic
//     knowledge;
//   - cross-domain pretraining corpus (Paul et al.): plans from several
//     schemas with different sizes and skews.
//
// The E15/E20 experiments compare few-shot fine-tuning of the pretrained
// model against training from scratch on the new database.
package pretrain
