package pretrain

import (
	"fmt"
	"math"

	"ml4db/internal/mlmath"
	"ml4db/internal/nn"
	"ml4db/internal/planrep"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/exec"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/tree"
	"ml4db/internal/workload"
)

// Sample is one labeled plan from some database.
type Sample struct {
	Tree    *tree.EncTree
	LogWork float64 // cost-task label
	LogRows float64 // cardinality-task label
}

// BuildSamples generates a labeled plan corpus over one schema: queries
// planned under every hint set, executed for work and output cardinality.
func BuildSamples(sch *datagen.StarSchema, rng *mlmath.RNG, numQueries int) ([]Sample, error) {
	gen := workload.NewStarGen(sch, rng)
	opt := optimizer.New(sch.Cat)
	ex := exec.New(sch.Cat)
	pe := planrep.NewPlanEncoder(sch.Cat, planrep.TransferFeatures())
	var out []Sample
	for i := 0; i < numQueries; i++ {
		q := gen.Query()
		seen := map[string]bool{}
		for _, h := range optimizer.StandardHintSets() {
			p, err := opt.Plan(q, h)
			if err != nil {
				return nil, fmt.Errorf("pretrain: planning: %w", err)
			}
			if key := p.String(); seen[key] {
				continue
			} else {
				seen[key] = true
			}
			res, err := ex.Execute(p, exec.Options{})
			if err != nil {
				return nil, fmt.Errorf("pretrain: executing: %w", err)
			}
			out = append(out, Sample{
				Tree:    pe.Encode(p),
				LogWork: logp1(float64(res.Work)),
				LogRows: logp1(float64(len(res.Rows))),
			})
		}
	}
	return out, nil
}

func logp1(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return mlmath.Clamp(math.Log(x+1), 0, 64)
}

// Model is the shared-encoder multi-task model.
type Model struct {
	Enc      tree.Encoder
	CostHead *nn.MLP
	CardHead *nn.MLP
	rng      *mlmath.RNG
}

// NewModel builds an untrained multi-task model; featDim must match the
// transfer-feature encoder width.
func NewModel(featDim, hidden int, rng *mlmath.RNG) *Model {
	enc := tree.NewTreeCNNEncoder(featDim, hidden, rng)
	return &Model{
		Enc:      enc,
		CostHead: nn.NewMLP([]int{enc.OutDim(), 32, 1}, nn.LeakyReLU{}, nn.Identity{}, rng),
		CardHead: nn.NewMLP([]int{enc.OutDim(), 32, 1}, nn.LeakyReLU{}, nn.Identity{}, rng),
		rng:      rng,
	}
}

// Params implements nn.Module over all components.
func (m *Model) Params() []*nn.Param {
	ps := append([]*nn.Param{}, m.Enc.Params()...)
	ps = append(ps, m.CostHead.Params()...)
	return append(ps, m.CardHead.Params()...)
}

// headParams lets fine-tuning freeze the encoder.
type headParams struct{ m *Model }

func (h headParams) Params() []*nn.Param {
	return append(append([]*nn.Param{}, h.m.CostHead.Params()...), h.m.CardHead.Params()...)
}

// trainStep runs one multi-task forward/backward on a sample and returns the
// summed loss.
func (m *Model) trainStep(s Sample) float64 {
	g := nn.NewGraph()
	rep := m.Enc.EncodeG(g, s.Tree)
	costTape, costPred := m.CostHead.ForwardTape(rep.Val)
	cardTape, cardPred := m.CardHead.ForwardTape(rep.Val)
	gradC := make([]float64, 1)
	gradK := make([]float64, 1)
	loss := nn.MSELoss(costPred, []float64{s.LogWork}, gradC)
	loss += nn.MSELoss(cardPred, []float64{s.LogRows}, gradK)
	dRep := costTape.Backward(gradC)
	mlmath.AddTo(dRep, cardTape.Backward(gradK))
	g.Backward(rep, dRep)
	return loss
}

// Train fits the model on the corpus. headOnly freezes the encoder (the
// few-shot fine-tuning regime).
func (m *Model) Train(samples []Sample, epochs int, lr float64, headOnly bool) float64 {
	var target nn.Module = m
	if headOnly {
		target = headParams{m}
	}
	opt := nn.NewAdam(lr)
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	last := 0.0
	for e := 0; e < epochs; e++ {
		m.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		total := 0.0
		inBatch := 0
		for _, i := range idx {
			total += m.trainStep(samples[i])
			inBatch++
			if inBatch == 16 {
				// Gradients accumulate on all params; stepping only the
				// target leaves frozen params untouched, but their grads
				// must still be cleared.
				opt.Step(target)
				if headOnly {
					clearGrads(m.Enc)
				}
				inBatch = 0
			}
		}
		if inBatch > 0 {
			opt.Step(target)
			if headOnly {
				clearGrads(m.Enc)
			}
		}
		last = total / float64(len(samples))
	}
	return last
}

func clearGrads(mod nn.Module) {
	for _, p := range mod.Params() {
		p.ZeroGrad()
	}
}

// PredictCost returns the cost-head prediction.
func (m *Model) PredictCost(t *tree.EncTree) float64 {
	g := nn.NewGraph()
	rep := m.Enc.EncodeG(g, t)
	return m.CostHead.Forward(rep.Val)[0]
}

// PredictRows returns the cardinality-head prediction.
func (m *Model) PredictRows(t *tree.EncTree) float64 {
	g := nn.NewGraph()
	rep := m.Enc.EncodeG(g, t)
	return m.CardHead.Forward(rep.Val)[0]
}

// EvalMAE computes per-task mean absolute errors over samples.
func (m *Model) EvalMAE(samples []Sample) (costMAE, cardMAE float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	for _, s := range samples {
		costMAE += abs(m.PredictCost(s.Tree) - s.LogWork)
		cardMAE += abs(m.PredictRows(s.Tree) - s.LogRows)
	}
	n := float64(len(samples))
	return costMAE / n, cardMAE / n
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
