package pretrain

import (
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/planrep"
	"ml4db/internal/sqlkit/datagen"
)

// corpus builds samples from several differently-shaped schemas.
func corpus(t *testing.T, seed uint64, perSchema int) ([]Sample, int) {
	t.Helper()
	rng := mlmath.NewRNG(seed)
	shapes := []struct{ fact, dim, dims int }{
		{2000, 100, 2},
		{4000, 200, 3},
		{1500, 80, 2},
	}
	var all []Sample
	featDim := 0
	for _, sh := range shapes {
		sch, err := datagen.NewStarSchema(rng, sh.fact, sh.dim, sh.dims)
		if err != nil {
			t.Fatal(err)
		}
		pe := planrep.NewPlanEncoder(sch.Cat, planrep.TransferFeatures())
		featDim = pe.FeatDim()
		ss, err := BuildSamples(sch, rng, perSchema)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, ss...)
	}
	return all, featDim
}

func newSchemaSamples(t *testing.T, seed uint64, n int) []Sample {
	t.Helper()
	rng := mlmath.NewRNG(seed)
	sch, err := datagen.NewStarSchema(rng, 6000, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := BuildSamples(sch, rng, n)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

func TestBuildSamplesLabels(t *testing.T) {
	ss := newSchemaSamples(t, 1, 5)
	if len(ss) < 5 {
		t.Fatalf("samples = %d", len(ss))
	}
	for _, s := range ss {
		if s.LogWork <= 0 {
			t.Error("non-positive work label")
		}
		if s.Tree == nil || s.Tree.NumNodes() < 1 {
			t.Error("bad sample tree")
		}
	}
}

func TestTransferFeaturesUniformAcrossSchemas(t *testing.T) {
	rng := mlmath.NewRNG(2)
	a, err := datagen.NewStarSchema(rng, 1000, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := datagen.NewStarSchema(rng, 2000, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	pa := planrep.NewPlanEncoder(a.Cat, planrep.TransferFeatures())
	pb := planrep.NewPlanEncoder(b.Cat, planrep.TransferFeatures())
	if pa.FeatDim() != pb.FeatDim() {
		t.Errorf("transfer feature dims differ: %d vs %d", pa.FeatDim(), pb.FeatDim())
	}
}

func TestMultiTaskTrainingReducesBothMAEs(t *testing.T) {
	samples, featDim := corpus(t, 3, 6)
	m := NewModel(featDim, 12, mlmath.NewRNG(4))
	c0, k0 := m.EvalMAE(samples)
	m.Train(samples, 15, 3e-3, false)
	c1, k1 := m.EvalMAE(samples)
	if c1 >= c0 {
		t.Errorf("cost MAE did not improve: %v → %v", c0, c1)
	}
	if k1 >= k0 {
		t.Errorf("card MAE did not improve: %v → %v", k0, k1)
	}
}

// TestFewShotTransferBeatsScratch is E15's core claim: pretrain on 3 schemas
// then fine-tune on k samples of a new schema beats training from scratch on
// the same k samples.
func TestFewShotTransferBeatsScratch(t *testing.T) {
	samples, featDim := corpus(t, 5, 8)
	pre := NewModel(featDim, 12, mlmath.NewRNG(6))
	pre.Train(samples, 20, 3e-3, false)

	target := newSchemaSamples(t, 7, 12)
	k := 16
	few, test := target[:k], target[k:]

	pre.Train(few, 20, 2e-3, true) // head-only fine-tune
	scratch := NewModel(featDim, 12, mlmath.NewRNG(6))
	scratch.Train(few, 20, 2e-3, false)

	preCost, _ := pre.EvalMAE(test)
	scrCost, _ := scratch.EvalMAE(test)
	if preCost >= scrCost {
		t.Errorf("few-shot pretrained MAE %v not below scratch %v", preCost, scrCost)
	}
}

func TestHeadOnlyTrainingFreezesEncoder(t *testing.T) {
	samples, featDim := corpus(t, 8, 3)
	m := NewModel(featDim, 8, mlmath.NewRNG(9))
	before := snapshot(m)
	m.Train(samples[:10], 2, 1e-2, true)
	for i, p := range m.Enc.Params() {
		for j := range p.Val {
			if p.Val[j] != before[i][j] {
				t.Fatal("encoder parameter moved during head-only training")
			}
		}
	}
	// Heads must have moved.
	h0 := m.CostHead.Params()[0].Val[0]
	m.Train(samples[:10], 2, 1e-2, true)
	if m.CostHead.Params()[0].Val[0] == h0 {
		t.Error("head parameters did not move during head-only training")
	}
}

func snapshot(m *Model) [][]float64 {
	var out [][]float64
	for _, p := range m.Enc.Params() {
		out = append(out, append([]float64{}, p.Val...))
	}
	return out
}
