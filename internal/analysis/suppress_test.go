package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseForSuppression(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "sup.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestSuppressionCoversOwnAndNextLine(t *testing.T) {
	fset, files := parseForSuppression(t, `package p

//ml4db:allow nakedpanic "reviewed"
func a() {}
func b() {} //ml4db:allow floateq "tie break"
`)
	set := collectSuppressions(fset, files)
	if len(set.malformed) != 0 {
		t.Fatalf("unexpected malformed: %v", set.malformed)
	}
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "sup.go", Line: 4}, Analyzer: "nakedpanic"}, // next line
		{Pos: token.Position{Filename: "sup.go", Line: 5}, Analyzer: "floateq"},    // same line
		{Pos: token.Position{Filename: "sup.go", Line: 4}, Analyzer: "floateq"},    // wrong analyzer
		{Pos: token.Position{Filename: "sup.go", Line: 9}, Analyzer: "nakedpanic"}, // out of range
	}
	kept := set.filter(diags)
	if len(kept) != 2 {
		t.Fatalf("kept %d diagnostics, want 2: %v", len(kept), kept)
	}
	if kept[0].Analyzer != "floateq" || kept[0].Pos.Line != 4 {
		t.Errorf("wrong-analyzer diagnostic should survive, got %v", kept[0])
	}
	if kept[1].Pos.Line != 9 {
		t.Errorf("distant diagnostic should survive, got %v", kept[1])
	}
}

func TestSuppressionRequiresReason(t *testing.T) {
	fset, files := parseForSuppression(t, `package p

//ml4db:allow nakedpanic
func a() {}
`)
	set := collectSuppressions(fset, files)
	if len(set.entries) != 0 {
		t.Fatalf("reasonless allow must not suppress, got %v", set.entries)
	}
	if len(set.malformed) != 1 || !strings.Contains(set.malformed[0].Message, "malformed") {
		t.Fatalf("want one malformed diagnostic, got %v", set.malformed)
	}
}

func TestSuppressionRejectsUnknownAnalyzer(t *testing.T) {
	fset, files := parseForSuppression(t, `package p

//ml4db:allow nosuch "reason"
func a() {}
`)
	set := collectSuppressions(fset, files)
	if len(set.entries) != 0 {
		t.Fatalf("unknown analyzer must not suppress, got %v", set.entries)
	}
	if len(set.malformed) != 1 || !strings.Contains(set.malformed[0].Message, "unknown analyzer") {
		t.Fatalf("want one unknown-analyzer diagnostic, got %v", set.malformed)
	}
}

func TestByNameRejectsUnknown(t *testing.T) {
	if _, err := ByName([]string{"determinism", "bogus"}); err == nil {
		t.Fatal("want error for unknown analyzer name")
	}
	got, err := ByName([]string{"floateq"})
	if err != nil || len(got) != 1 || got[0] != FloatEqAnalyzer {
		t.Fatalf("ByName(floateq) = %v, %v", got, err)
	}
}

func TestIsCorePackageScoping(t *testing.T) {
	cases := []struct {
		path string
		core bool
	}{
		{"ml4db/internal/nn", true},
		{"ml4db/internal/planrep/study", true},
		{"ml4db/internal/obs", true},
		{"ml4db/internal/modelsvc", true},
		{"ml4db/internal/querystore", true},
		{"ml4db/internal/autopilot", true},
		{"ml4db/internal/sqlkit/exec", true},
		{"ml4db/internal/qo/bao", false},
		{"ml4db/examples/learnedindex", false}, // core name outside internal/
		{"ml4db/cmd/ml4db-vet", false},
	}
	for _, c := range cases {
		if got := IsCorePackage(c.path); got != c.core {
			t.Errorf("IsCorePackage(%q) = %v, want %v", c.path, got, c.core)
		}
	}
}
