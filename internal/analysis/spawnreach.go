package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// spawnreach upgrades the determinism analyzer's local rule — "core packages
// do not contain go statements outside mlmath.Pool" — to a transitive one:
// core packages must not *reach* an unsanctioned goroutine launch through any
// chain of calls, however many helper packages deep.
//
// Division of labor with the determinism analyzer: a go statement written
// directly in a core package is determinism's finding, at the statement
// itself, and a suppression there is a reviewed decision that covers it.
// spawnreach therefore reports only boundary edges — a call from a core
// function into a *non-core* function that transitively spawns. That keeps
// one root cause at one position instead of cascading a finding onto every
// transitive caller.
var SpawnReachAnalyzer = &ModuleAnalyzer{
	Name: "spawnreach",
	Doc:  "core packages must not transitively reach a go statement outside mlmath.Pool",
	Run:  runSpawnReach,
}

func runSpawnReach(p *ModulePass) {
	res := p.Graph.taint(
		func(n *FuncNode) (token.Pos, bool) {
			if len(n.GoStmts) > 0 {
				return n.GoStmts[0], true
			}
			return token.NoPos, false
		},
		func(n *FuncNode) bool { return mlmathFuncMentions(n, "Pool") },
	)
	for _, pkg := range p.Targets {
		if !IsCorePackage(pkg.Path) {
			continue
		}
		for _, node := range p.NodesIn(pkg) {
			seen := map[token.Pos]bool{}
			for _, c := range node.Calls {
				callee := c.Callee
				if IsCorePackage(callee.Pkg.Path) {
					continue // in-core spawns are the determinism analyzer's finding
				}
				if !res.isTainted(callee) || seen[c.Pos] {
					continue
				}
				seen[c.Pos] = true
				p.Reportf(c.Pos, "core function %s reaches a goroutine launch outside mlmath.Pool: %s; route fan-out through mlmath.Pool or break the dependency",
					node.Name(), renderTaintPath(p.Fset, res, callee, func(*FuncNode) string { return "go statement" }))
			}
		}
	}
}

// mlmathFuncMentions reports whether n is declared in an mlmath package with
// a receiver or result type whose name contains marker — the structural
// signature of the sanctioned concurrency (Pool) and clock (Clock,
// SystemClock, ManualClock, ...) surfaces. Mirrors determinism's isPoolFunc
// but is substring-based so SystemClock-style concrete types qualify.
func mlmathFuncMentions(n *FuncNode, marker string) bool {
	segs := strings.Split(n.Pkg.Path, "/")
	if segs[len(segs)-1] != "mlmath" {
		return false
	}
	mentions := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok && strings.Contains(id.Name, marker) {
				found = true
			}
			return !found
		})
		return found
	}
	if n.Decl.Recv != nil {
		for _, f := range n.Decl.Recv.List {
			if mentions(f.Type) {
				return true
			}
		}
	}
	if n.Decl.Type.Results != nil {
		for _, f := range n.Decl.Type.Results.List {
			if mentions(f.Type) {
				return true
			}
		}
	}
	return false
}

// renderTaintPath formats the call chain from start to its offending fact,
// e.g. "qo.train -> util.fanOut (go statement at util.go:12)". factLabel
// names the fact in the final node.
func renderTaintPath(fset *token.FileSet, res taintResult, start *FuncNode, factLabel func(*FuncNode) string) string {
	steps := res.pathFrom(start)
	parts := make([]string, 0, len(steps))
	for i, st := range steps {
		pos := fset.Position(st.Pos)
		if i == len(steps)-1 {
			parts = append(parts, fmt.Sprintf("%s (%s at %s:%d)",
				st.Node.Name(), factLabel(st.Node), filepath.Base(pos.Filename), pos.Line))
		} else {
			parts = append(parts, st.Node.Name())
		}
	}
	return strings.Join(parts, " -> ")
}
