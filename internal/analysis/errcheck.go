package analysis

import (
	"go/ast"
	"go/types"
)

// UncheckedErrAnalyzer flags call statements that silently drop an error
// result. A dropped error from SaveParams or LoadParams means a training run
// continues on a half-written checkpoint; a dropped Flush means a result
// table is silently truncated. The check fires on expression statements and
// `go` statements whose call returns an error; explicitly assigning the
// error to `_` is visible in review and is deliberately not flagged, and
// `defer f.Close()` is accepted as the conventional idiom.
//
// A small exemption list covers functions whose errors are universally
// ignored by convention: the fmt print family and the never-failing writers
// (*bytes.Buffer, *strings.Builder).
var UncheckedErrAnalyzer = &Analyzer{
	Name: "uncheckederr",
	Doc:  "flag statements that drop an error result on the floor",
	Run:  runUncheckedErr,
}

func runUncheckedErr(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedError(pass, call)
				}
			case *ast.GoStmt:
				checkDroppedError(pass, n.Call)
			}
			return true
		})
	}
}

func checkDroppedError(pass *Pass, call *ast.CallExpr) {
	if !returnsError(pass, call) || isErrExempt(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "result of %s includes an error that is dropped; handle it or assign it explicitly", callName(call))
}

// returnsError reports whether any result of the call has type error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorIface)
}

// fmtPrintFamily are fmt functions whose error results are conventionally
// ignored when writing to stdout/stderr.
var fmtPrintFamily = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func isErrExempt(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if obj.Pkg().Path() == "fmt" && fmtPrintFamily[obj.Name()] {
		return true
	}
	// Methods on the never-failing in-memory writers.
	if recv := receiverTypeName(obj); recv == "bytes.Buffer" || recv == "strings.Builder" {
		return true
	}
	return false
}

// receiverTypeName returns "pkg.Type" for a method's receiver, or "".
func receiverTypeName(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// callName renders a short name for the called function.
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "call"
	}
}
