package analysis

import (
	"path/filepath"
	"testing"
)

// The loader is exercised against the real module: internal/mlmath both
// imports only the standard library and is imported by nearly everything,
// so it proves stdlib resolution; internal/cardest proves recursive
// module-internal imports.
func TestLoaderTypeChecksRealPackages(t *testing.T) {
	loader := fixtureLoader(t)
	pkgs, err := loader.Load([]string{"./internal/mlmath", "./internal/cardest"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) != 0 {
			t.Errorf("%s: type errors: %v", pkg.Path, pkg.TypeErrors)
		}
		if pkg.Types == nil || pkg.Types.Scope().Len() == 0 {
			t.Errorf("%s: empty type information", pkg.Path)
		}
	}
	if obj := pkgs[1].Types.Scope().Lookup("RNG"); obj == nil {
		t.Error("mlmath.RNG not found in loaded package scope")
	}
}

func TestLoaderPatternWalkSkipsTestdata(t *testing.T) {
	loader := fixtureLoader(t)
	pkgs, err := loader.Load([]string{"./internal/analysis/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		if filepath.Base(pkg.Dir) != "analysis" {
			t.Errorf("walk escaped into %s; testdata must be skipped", pkg.Dir)
		}
	}
}

func TestLoaderMemoizesPackages(t *testing.T) {
	loader := fixtureLoader(t)
	a, err := loader.Load([]string{"./internal/mlmath"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := loader.Load([]string{"./internal/mlmath"})
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Error("repeated loads must return the memoized *Package")
	}
}
