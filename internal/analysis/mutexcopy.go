package analysis

import (
	"go/ast"
	"go/types"
)

// MutexCopyAnalyzer flags copies of values whose type transitively contains
// a sync primitive (Mutex, RWMutex, WaitGroup, Once, Cond, Pool, Map) or a
// sync/atomic value type. A copied lock guards nothing: two goroutines each
// lock their own copy and race on the shared state underneath — exactly the
// bug class the upcoming parallel-training work must not introduce. Flagged
// copy shapes: by-value receivers, by-value parameters and results, plain
// assignments from an existing value (including pointer dereference), and
// by-value range variables. Constructing a fresh value from a composite
// literal or a call result is not a copy and is accepted.
var MutexCopyAnalyzer = &Analyzer{
	Name: "mutexcopy",
	Doc:  "flag by-value copies of types containing sync primitives",
	Run:  runMutexCopy,
}

func runMutexCopy(pass *Pass) {
	seen := map[types.Type]bool{}
	lockName := func(t types.Type) string { return lockPath(t, seen) }
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncSigLocks(pass, n, lockName)
			case *ast.AssignStmt:
				checkAssignLocks(pass, n, lockName)
			case *ast.RangeStmt:
				checkRangeLocks(pass, n, lockName)
			}
			return true
		})
	}
}

func checkFuncSigLocks(pass *Pass, fn *ast.FuncDecl, lockName func(types.Type) string) {
	report := func(field *ast.Field, what string) {
		t := pass.TypeOf(field.Type)
		if t == nil {
			return
		}
		if name := lockName(t); name != "" {
			pass.Reportf(field.Pos(), "%s passes %s by value; it contains %s — use a pointer", fn.Name.Name, what, name)
		}
	}
	if fn.Recv != nil {
		for _, field := range fn.Recv.List {
			report(field, "its receiver")
		}
	}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			report(field, "a parameter")
		}
	}
	if fn.Type.Results != nil {
		for _, field := range fn.Type.Results.List {
			report(field, "a result")
		}
	}
}

func checkAssignLocks(pass *Pass, asg *ast.AssignStmt, lockName func(types.Type) string) {
	for i, rhs := range asg.Rhs {
		if i >= len(asg.Lhs) {
			break
		}
		if id, ok := asg.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			continue // discarding into blank copies nothing observable
		}
		switch rhs.(type) {
		case *ast.CompositeLit, *ast.CallExpr:
			continue // fresh value, not a copy
		}
		t := pass.TypeOf(rhs)
		if t == nil {
			continue
		}
		if name := lockName(t); name != "" {
			pass.Reportf(asg.Pos(), "assignment copies a value containing %s; copy a pointer instead", name)
		}
	}
}

func checkRangeLocks(pass *Pass, rng *ast.RangeStmt, lockName func(types.Type) string) {
	if rng.Value == nil {
		return
	}
	if id, ok := rng.Value.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	t := pass.TypeOf(rng.Value)
	if t == nil {
		return
	}
	if name := lockName(t); name != "" {
		pass.Reportf(rng.Value.Pos(), "range value copies an element containing %s; range over indexes or pointers instead", name)
	}
}

// syncLockTypes are the sync types that must never be copied after first use.
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

// lockPath returns a human-readable name of the sync primitive t transitively
// contains by value, or "" if none. seen breaks recursive type cycles.
func lockPath(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	defer delete(seen, t)
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				if syncLockTypes[obj.Name()] {
					return "sync." + obj.Name()
				}
			case "sync/atomic":
				return "sync/atomic." + obj.Name()
			}
		}
		return lockPath(t.Underlying(), seen)
	case *types.Alias:
		return lockPath(types.Unalias(t), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if name := lockPath(t.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockPath(t.Elem(), seen)
	}
	return ""
}
