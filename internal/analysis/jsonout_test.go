package analysis

import (
	"bytes"
	"go/token"
	"strings"
	"testing"
)

func TestFindingsJSONRoundTrip(t *testing.T) {
	findings := []Finding{
		{Diagnostic: Diagnostic{
			Pos:      token.Position{Filename: "a.go", Line: 3, Column: 2},
			Analyzer: "lockcheck",
			Message:  "mu is locked here but not released on every return path",
		}},
		{Diagnostic: Diagnostic{
			Pos:      token.Position{Filename: "b.go", Line: 9, Column: 1},
			Analyzer: "spanend",
			Message:  "sp may not reach End()",
		}, Suppressed: true, Reason: "reviewed"},
	}
	var buf bytes.Buffer
	if err := WriteFindingsJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	if err := ValidateFindingsJSON(buf.Bytes()); err != nil {
		t.Fatalf("round-trip output fails validation: %v", err)
	}
	if !strings.Contains(buf.String(), `"reason": "reviewed"`) {
		t.Errorf("suppression reason missing from output:\n%s", buf.String())
	}
}

func TestFindingsJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFindingsJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty findings should encode as []: %q", buf.String())
	}
	if err := ValidateFindingsJSON(buf.Bytes()); err != nil {
		t.Errorf("empty array fails validation: %v", err)
	}
}

func TestValidateFindingsJSONRejects(t *testing.T) {
	cases := map[string]string{
		"not an array":     `{"file":"a.go"}`,
		"unknown analyzer": `[{"file":"a.go","line":1,"col":1,"analyzer":"nosuch","message":"m","suppressed":false}]`,
		"empty file":       `[{"file":"","line":1,"col":1,"analyzer":"lockcheck","message":"m","suppressed":false}]`,
		"zero line":        `[{"file":"a.go","line":0,"col":1,"analyzer":"lockcheck","message":"m","suppressed":false}]`,
		"negative column":  `[{"file":"a.go","line":1,"col":-1,"analyzer":"lockcheck","message":"m","suppressed":false}]`,
		"empty message":    `[{"file":"a.go","line":1,"col":1,"analyzer":"lockcheck","message":"","suppressed":false}]`,
		"unknown field":    `[{"file":"a.go","line":1,"col":1,"analyzer":"lockcheck","message":"m","suppressed":false,"extra":1}]`,
		"orphaned reason":  `[{"file":"a.go","line":1,"col":1,"analyzer":"lockcheck","message":"m","suppressed":false,"reason":"r"}]`,
	}
	for name, doc := range cases {
		if err := ValidateFindingsJSON([]byte(doc)); err == nil {
			t.Errorf("%s: validation should have failed", name)
		}
	}
	// The synthetic analyzer names the CLI emits are valid.
	ok := `[{"file":"a.go","line":1,"col":0,"analyzer":"typecheck","message":"m","suppressed":false},
	       {"file":"a.go","line":2,"col":1,"analyzer":"suppression","message":"m","suppressed":false}]`
	if err := ValidateFindingsJSON([]byte(ok)); err != nil {
		t.Errorf("synthetic analyzers rejected: %v", err)
	}
}
