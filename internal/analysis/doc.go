// Package analysis is a from-scratch static-analysis framework for this
// module, built only on the standard library (go/ast, go/parser, go/types —
// no golang.org/x/tools dependency, consistent with the zero-dep go.mod).
//
// It exists because the repository's correctness story — deterministic
// training under a fixed seed, numerically safe gradient code, and loud
// failure on serialization errors — is a set of conventions that nothing
// enforced. The analyzers in this package turn those conventions into
// machine-checked invariants, run by cmd/ml4db-vet over the whole module.
//
// A finding can be suppressed, with an explicit reason, by an
//
//	//ml4db:allow <analyzer> "reason"
//
// comment on the flagged line or the line directly above it (see
// suppress.go). Suppressions without a reason are themselves diagnostics.
package analysis
