package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Suppression syntax:
//
//	//ml4db:allow <analyzer> "reason"
//
// The comment suppresses diagnostics of the named analyzer on the line it
// occupies, or — when it stands alone — on the line directly below it. The
// reason string is mandatory: a suppression is a reviewed decision, and the
// reason is where the review lives. A malformed allow comment (missing
// analyzer or reason) is itself reported as a diagnostic so it cannot
// silently fail to suppress.

var allowRe = regexp.MustCompile(`^//ml4db:allow\s+([a-z]+)\s+"([^"]+)"\s*$`)

type suppression struct {
	analyzer string
	reason   string
	file     string
	// pos is where the comment itself sits (reported by the
	// unused-suppression check).
	pos token.Position
	// lines the comment covers (its own line, and the next line when the
	// comment stands alone on its line).
	lines map[int]bool
	// used is set once the entry suppresses at least one diagnostic.
	used bool
}

type suppressionSet struct {
	entries   []suppression
	malformed []Diagnostic
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressionSet {
	var set suppressionSet
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimRight(c.Text, " \t")
				if !strings.HasPrefix(text, "//ml4db:allow") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := allowRe.FindStringSubmatch(text)
				if m == nil {
					set.malformed = append(set.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "suppression",
						Message:  `malformed //ml4db:allow comment: want //ml4db:allow <analyzer> "reason"`,
					})
					continue
				}
				if !knownAnalyzerNames()[m[1]] {
					set.malformed = append(set.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "suppression",
						Message:  "//ml4db:allow names unknown analyzer " + m[1],
					})
					continue
				}
				lines := map[int]bool{pos.Line: true, pos.Line + 1: true}
				set.entries = append(set.entries, suppression{
					analyzer: m[1],
					reason:   m[2],
					file:     pos.Filename,
					pos:      pos,
					lines:    lines,
				})
			}
		}
	}
	return set
}

// match finds the entry suppressing d, returning its index.
func (s suppressionSet) match(d Diagnostic) (int, bool) {
	for i, e := range s.entries {
		if e.analyzer == d.Analyzer && e.file == d.Pos.Filename && e.lines[d.Pos.Line] {
			return i, true
		}
	}
	return 0, false
}

func (s suppressionSet) filter(diags []Diagnostic) []Diagnostic {
	if len(s.entries) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if i, ok := s.match(d); ok {
			s.entries[i].used = true
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
