package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness: each analyzer has golden packages under
// testdata/src/. A fixture file marks every line where the analyzer must
// fire with a `// want "substring"` comment; the harness loads the package
// through the real Loader (so fixtures are parsed and type-checked exactly
// like production code), runs the analyzer plus suppression filtering, and
// requires an exact match between diagnostics and want comments. A clean
// fixture simply contains no want comments: any diagnostic fails the test.

var wantRe = regexp.MustCompile(`//\s*want\s+"([^"]+)"`)

// sharedLoader memoizes the loader across fixtures so the standard library
// is type-checked once per test binary, not once per fixture.
var sharedLoader *Loader

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	if sharedLoader == nil {
		l, err := NewLoader(filepath.Join("..", ".."))
		if err != nil {
			t.Fatal(err)
		}
		sharedLoader = l
	}
	return sharedLoader
}

func runFixture(t *testing.T, a *Analyzer, rel string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", rel))
	if err != nil {
		t.Fatal(err)
	}
	loader := fixtureLoader(t)
	// Fixture packages live outside the loader's walk but are loaded
	// explicitly under a path that mirrors their directory, so path-scoped
	// analyzers (the core-package checks) see the intended package identity.
	importPath := "ml4db/internal/analysis/testdata/src/" + rel
	pkg, err := loader.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("fixture %s has type errors: %v", rel, terr)
	}

	wants := collectWants(pkg)
	got := map[string]string{}
	for _, d := range RunPackage(pkg, []*Analyzer{a}) {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		got[key] = d.Message
	}

	for key, substr := range wants {
		msg, ok := got[key]
		if !ok {
			t.Errorf("%s: expected diagnostic matching %q, got none", key, substr)
			continue
		}
		if !strings.Contains(msg, substr) {
			t.Errorf("%s: diagnostic %q does not contain %q", key, msg, substr)
		}
		delete(got, key)
	}
	for key, msg := range got {
		t.Errorf("%s: unexpected diagnostic %q", key, msg)
	}
}

func collectWants(pkg *Package) map[string]string {
	wants := map[string]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				wants[fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)] = m[1]
			}
		}
	}
	return wants
}
