package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// This file is the second analysis tier. Package-tier analyzers (analysis.go)
// see one type-checked package at a time; module-tier analyzers see the whole
// module at once through the static call graph (callgraph.go), which is what
// transitive contracts — "core code never reaches an unsanctioned goroutine
// launch or ambient clock, no matter how many helper hops away" — require.
//
// Both tiers report into one diagnostic stream, share the //ml4db:allow
// suppression syntax, and are orchestrated by Analyze, which also implements
// unused-suppression detection for cmd/ml4db-vet's -strict-suppress mode.

// ModuleAnalyzer is one named whole-module check.
type ModuleAnalyzer struct {
	Name string
	Doc  string
	Run  func(*ModulePass)
}

// ModulePass carries the module call graph through one module analyzer.
// Analyzers must restrict their reports to the Targets set: the graph spans
// every loaded package (so edges through helpers resolve), but only the
// packages the user asked about are being vetted.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Graph    *CallGraph
	Fset     *token.FileSet
	// Targets are the packages being reported on.
	Targets []*Package

	targetPaths map[string]bool
	sink        *[]Diagnostic
}

// IsTarget reports whether pkg is in the set being vetted.
func (p *ModulePass) IsTarget(pkg *Package) bool {
	return pkg != nil && p.targetPaths[pkg.Path]
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// NodesIn returns the call-graph nodes declared in pkg, sorted by position
// so module analyzers iterate deterministically.
func (p *ModulePass) NodesIn(pkg *Package) []*FuncNode {
	var out []*FuncNode
	for _, n := range p.Graph.Nodes {
		if n.Pkg == pkg {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// AllModule returns the module-tier analyzer suite in deterministic order.
func AllModule() []*ModuleAnalyzer {
	return []*ModuleAnalyzer{
		SpawnReachAnalyzer,
		ClockFlowAnalyzer,
	}
}

// knownAnalyzerNames indexes every analyzer name across both tiers, for
// suppression validation and CLI name resolution.
func knownAnalyzerNames() map[string]bool {
	names := map[string]bool{}
	for _, a := range All() {
		names[a.Name] = true
	}
	for _, a := range AllModule() {
		names[a.Name] = true
	}
	return names
}

// SelectAnalyzers resolves names across both tiers. Unknown names return an
// error listing every valid one.
func SelectAnalyzers(names []string) ([]*Analyzer, []*ModuleAnalyzer, error) {
	pkgIndex := map[string]*Analyzer{}
	var valid []string
	for _, a := range All() {
		pkgIndex[a.Name] = a
		valid = append(valid, a.Name)
	}
	modIndex := map[string]*ModuleAnalyzer{}
	for _, a := range AllModule() {
		modIndex[a.Name] = a
		valid = append(valid, a.Name)
	}
	var pkgAs []*Analyzer
	var modAs []*ModuleAnalyzer
	for _, n := range names {
		switch {
		case pkgIndex[n] != nil:
			pkgAs = append(pkgAs, pkgIndex[n])
		case modIndex[n] != nil:
			modAs = append(modAs, modIndex[n])
		default:
			return nil, nil, fmt.Errorf("analysis: unknown analyzer %q (valid: %s)", n, strings.Join(valid, ", "))
		}
	}
	return pkgAs, modAs, nil
}

// Finding is one diagnostic with its suppression outcome. Suppressed findings
// are kept (for -json output and the unused-suppression audit) but do not
// fail the vet run.
type Finding struct {
	Diagnostic
	Suppressed bool
	// Reason is the suppression's quoted justification when Suppressed.
	Reason string `json:",omitempty"`
}

// Analyze runs both analyzer tiers over the target packages and resolves
// suppressions. all is the universe the call graph is built over (normally
// Loader.AllLoaded(), so edges through non-target helper packages resolve);
// when nil, targets is used. With strictSuppress, //ml4db:allow comments that
// suppressed nothing — among analyzers that actually ran — become findings
// themselves.
func Analyze(targets, all []*Package, pkgAnalyzers []*Analyzer, modAnalyzers []*ModuleAnalyzer, strictSuppress bool) []Finding {
	if len(targets) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, pkg := range targets {
		for _, a := range pkgAnalyzers {
			a.Run(&Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				PkgPath:  pkg.Path,
				sink:     &diags,
			})
		}
	}
	if len(modAnalyzers) > 0 {
		if all == nil {
			all = targets
		}
		graph := BuildCallGraph(all)
		targetPaths := map[string]bool{}
		for _, pkg := range targets {
			targetPaths[pkg.Path] = true
		}
		for _, a := range modAnalyzers {
			a.Run(&ModulePass{
				Analyzer:    a,
				Graph:       graph,
				Fset:        targets[0].Fset,
				Targets:     targets,
				targetPaths: targetPaths,
				sink:        &diags,
			})
		}
	}

	var sup suppressionSet
	for _, pkg := range targets {
		s := collectSuppressions(pkg.Fset, pkg.Files)
		sup.entries = append(sup.entries, s.entries...)
		sup.malformed = append(sup.malformed, s.malformed...)
	}

	findings := make([]Finding, 0, len(diags)+len(sup.malformed))
	for _, d := range diags {
		f := Finding{Diagnostic: d}
		if i, ok := sup.match(d); ok {
			sup.entries[i].used = true
			f.Suppressed = true
			f.Reason = sup.entries[i].reason
		}
		findings = append(findings, f)
	}
	for _, d := range sup.malformed {
		findings = append(findings, Finding{Diagnostic: d})
	}
	if strictSuppress {
		ran := map[string]bool{}
		for _, a := range pkgAnalyzers {
			ran[a.Name] = true
		}
		for _, a := range modAnalyzers {
			ran[a.Name] = true
		}
		for _, e := range sup.entries {
			if e.used || !ran[e.analyzer] {
				continue
			}
			findings = append(findings, Finding{Diagnostic: Diagnostic{
				Pos:      e.pos,
				Analyzer: "suppression",
				Message:  fmt.Sprintf("unused //ml4db:allow %s: it suppresses no finding; delete it or re-justify", e.analyzer),
			}})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		return lessDiagnostic(findings[i].Diagnostic, findings[j].Diagnostic)
	})
	return findings
}

func lessDiagnostic(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}
