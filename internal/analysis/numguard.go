package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NumGuardAnalyzer inspects gradient-path functions in the core model
// packages — functions whose name suggests they sit on the training loop
// (Backward, Grad, Fit, Train, Step, Loss, Update) — for numerically unsafe
// operations with no guard in sight:
//
//   - floating-point division by a non-constant denominator,
//   - math.Log / math.Exp of a non-constant argument.
//
// log(0) and x/0 mint NaN/±Inf that propagate silently through a whole
// training run; exp overflows to +Inf for arguments above ~709. A function
// counts as guarded when it visibly defends against these anywhere in its
// body: a math.IsNaN/math.IsInf check, a clamp (mlmath.Clamp, math.Max/Min,
// or the min/max builtins), or an if-condition comparing a value against a
// numeric constant (the `if n == 0 { return }` family). A denominator or
// log argument that adds a small positive epsilon constant is guarded at
// the expression level.
var NumGuardAnalyzer = &Analyzer{
	Name: "numguard",
	Doc:  "flag unguarded division/log/exp in gradient-path functions of core packages",
	Run:  runNumGuard,
}

var gradientNameParts = []string{"backward", "grad", "fit", "train", "step", "loss", "update"}

func isGradientPathFunc(name string) bool {
	lower := strings.ToLower(name)
	for _, part := range gradientNameParts {
		if strings.Contains(lower, part) {
			return true
		}
	}
	return false
}

func runNumGuard(pass *Pass) {
	if !IsCorePackage(pass.PkgPath) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isGradientPathFunc(fn.Name.Name) {
				continue
			}
			if hasNumericGuard(pass, fn.Body) {
				continue
			}
			reportUnguardedOps(pass, fn)
		}
	}
}

// hasNumericGuard reports whether the function body contains any visible
// defense against NaN/Inf production.
func hasNumericGuard(pass *Pass, body *ast.BlockStmt) bool {
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if pass.IsPkgFunc(n, "math", "IsNaN") || pass.IsPkgFunc(n, "math", "IsInf") ||
				pass.IsPkgFunc(n, "math", "Max") || pass.IsPkgFunc(n, "math", "Min") {
				guarded = true
				return false
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && strings.Contains(strings.ToLower(sel.Sel.Name), "clamp") {
				guarded = true
				return false
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if obj := pass.ObjectOf(id); obj != nil {
					if _, isBuiltin := obj.(*types.Builtin); isBuiltin && (id.Name == "min" || id.Name == "max") {
						guarded = true
						return false
					}
				}
				if strings.Contains(strings.ToLower(id.Name), "clamp") {
					guarded = true
					return false
				}
			}
		case *ast.IfStmt:
			if condComparesConstant(pass, n.Cond) {
				guarded = true
				return false
			}
		}
		return true
	})
	return guarded
}

// condComparesConstant reports whether the condition contains a comparison
// of something against a numeric constant — the shape of `if n == 0`,
// `if s <= 0`, `if len(x) < 2` guards.
func condComparesConstant(pass *Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			if isNumericConst(pass, bin.X) || isNumericConst(pass, bin.Y) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isNumericConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

func reportUnguardedOps(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.QUO && isFloat(pass.TypeOf(n.X)) &&
				!isNumericConst(pass, n.Y) && !hasEpsilonTerm(pass, n.Y) {
				pass.Reportf(n.Pos(), "unguarded floating-point division in gradient path %s; guard the denominator or check math.IsNaN on the result", fn.Name.Name)
			}
		case *ast.CallExpr:
			for _, name := range []string{"Log", "Exp"} {
				if pass.IsPkgFunc(n, "math", name) && len(n.Args) == 1 &&
					!isNumericConst(pass, n.Args[0]) && !hasEpsilonTerm(pass, n.Args[0]) {
					pass.Reportf(n.Pos(), "unguarded math.%s in gradient path %s; clamp the argument or check the result for NaN/Inf", name, fn.Name.Name)
				}
			}
		}
		return true
	})
}

// hasEpsilonTerm reports whether the expression adds a positive constant —
// the `x + 1e-8` smoothing idiom that rules out a zero denominator or
// log argument.
func hasEpsilonTerm(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || bin.Op != token.ADD {
			return true
		}
		if isNumericConst(pass, bin.X) || isNumericConst(pass, bin.Y) {
			found = true
			return false
		}
		return true
	})
	return found
}
