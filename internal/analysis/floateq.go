package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEqAnalyzer flags == and != between floating-point operands. After a
// gradient step or a kernel evaluation, two mathematically equal floats are
// rarely bit-equal, so such comparisons are usually latent bugs. Two guard
// idioms are recognized and accepted:
//
//   - comparison against an exact-zero constant (`x == 0`): the standard
//     guard before a division, where exact zero is precisely the dangerous
//     value;
//   - self-comparison (`x != x`): the portable NaN test.
//
// Everything else should compare through an epsilon (math.Abs(a-b) < eps).
var FloatEqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= on floating-point operands outside guard idioms",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(bin.X)) && !isFloat(pass.TypeOf(bin.Y)) {
				return true
			}
			if isZeroConst(pass, bin.X) || isZeroConst(pass, bin.Y) {
				return true
			}
			if isSelfComparison(bin) {
				return true
			}
			pass.Reportf(bin.Pos(), "floating-point %s comparison; compare through an epsilon (math.Abs(a-b) < eps) or math.IsNaN", bin.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a compile-time constant equal to zero.
func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 0
}

// isSelfComparison detects the x != x NaN idiom: both operands are the same
// identifier or selector chain.
func isSelfComparison(bin *ast.BinaryExpr) bool {
	return exprKey(bin.X) != "" && exprKey(bin.X) == exprKey(bin.Y)
}

// exprKey renders identifier/selector expressions to a comparable string;
// anything with possible side effects renders to "".
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	default:
		return ""
	}
}
