package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses a function body from source for CFG construction (the
// builder is purely syntactic, so no type checking is needed).
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	file, err := parser.ParseFile(token.NewFileSet(), "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

// reachable walks the CFG from the entry block.
func reachable(g *cfg) map[*cfgBlock]bool {
	seen := map[*cfgBlock]bool{g.entry: true}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

func countExits(g *cfg, onlyReachable bool) (exits, panics int) {
	r := reachable(g)
	for _, b := range g.blocks {
		if onlyReachable && !r[b] {
			continue
		}
		if b.exits {
			exits++
		}
		if b.panics {
			panics++
		}
	}
	return
}

func TestCFGIfElse(t *testing.T) {
	g, ok := buildCFG(parseBody(t, `
		if cond {
			return
		}
		work()
	`))
	if !ok {
		t.Fatal("builder failed")
	}
	// Two reachable exits: the early return and falling off the end.
	if exits, _ := countExits(g, true); exits != 2 {
		t.Errorf("got %d exits, want 2", exits)
	}
}

func TestCFGReturnBothBranches(t *testing.T) {
	g, ok := buildCFG(parseBody(t, `
		if cond {
			return
		} else {
			return
		}
	`))
	if !ok {
		t.Fatal("builder failed")
	}
	// Two reachable exits (the returns); the fall-off-the-end block after the
	// if is marked as an exit too but is unreachable, so path-sensitive
	// analyzers — which only walk reachable states — never visit it.
	exits, _ := countExits(g, true)
	if exits != 2 {
		t.Errorf("got %d reachable exits, want 2", exits)
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	g, ok := buildCFG(parseBody(t, `
		if bad {
			panic("invariant")
		}
		work()
	`))
	if !ok {
		t.Fatal("builder failed")
	}
	exits, panics := countExits(g, true)
	if panics != 1 {
		t.Errorf("got %d panic blocks, want 1", panics)
	}
	if exits != 1 {
		t.Errorf("got %d exits, want 1 (fall off the end)", exits)
	}
}

func TestCFGGotoBailsOut(t *testing.T) {
	if _, ok := buildCFG(parseBody(t, `
	top:
		work()
		goto top
	`)); ok {
		t.Error("goto should make the builder give up")
	}
}

func TestCFGLoopsAndBranches(t *testing.T) {
	g, ok := buildCFG(parseBody(t, `
		for i := 0; i < n; i++ {
			if skip(i) {
				continue
			}
			if stop(i) {
				break
			}
			work()
		}
		for _, x := range xs {
			use(x)
		}
	outer:
		for {
			for {
				break outer
			}
		}
	`))
	if !ok {
		t.Fatal("builder failed")
	}
	if exits, _ := countExits(g, true); exits != 1 {
		t.Errorf("got %d exits, want 1", exits)
	}
}

func TestCFGSwitchNoDefaultFallsThrough(t *testing.T) {
	g, ok := buildCFG(parseBody(t, `
		switch x {
		case 1:
			return
		case 2:
			return
		}
		work()
	`))
	if !ok {
		t.Fatal("builder failed")
	}
	// Both returns plus the no-case fall-through path off the end.
	if exits, _ := countExits(g, true); exits != 3 {
		t.Errorf("got %d exits, want 3", exits)
	}
}

func TestCFGDeadCodeStaysDetached(t *testing.T) {
	g, ok := buildCFG(parseBody(t, `
		return
		work()
	`))
	if !ok {
		t.Fatal("builder failed")
	}
	r := reachable(g)
	var detachedNodes int
	for _, b := range g.blocks {
		if !r[b] {
			detachedNodes += len(b.nodes)
		}
	}
	if detachedNodes == 0 {
		t.Error("dead statement should live on a detached block")
	}
}
