package analysis

import "testing"

// Every analyzer has at least one fixture proving it fires and one proving
// it stays silent on correct code mirroring real repo idioms.

func TestDeterminismFires(t *testing.T) {
	runFixture(t, DeterminismAnalyzer, "determinism/cardest")
}

func TestDeterminismFiresInObs(t *testing.T) {
	runFixture(t, DeterminismAnalyzer, "determinism/obs")
}

func TestDeterminismFiresInModelsvc(t *testing.T) {
	runFixture(t, DeterminismAnalyzer, "determinism/modelsvc")
}

func TestDeterminismFiresInEngine(t *testing.T) {
	runFixture(t, DeterminismAnalyzer, "determinism/engine")
}

func TestDeterminismFiresInQuerystore(t *testing.T) {
	runFixture(t, DeterminismAnalyzer, "determinism/querystore")
}

func TestDeterminismFiresInAutopilot(t *testing.T) {
	runFixture(t, DeterminismAnalyzer, "determinism/autopilot")
}

func TestDeterminismFiresInExec(t *testing.T) {
	runFixture(t, DeterminismAnalyzer, "determinism/exec")
}

func TestDeterminismSilentOnCleanCoreCode(t *testing.T) {
	runFixture(t, DeterminismAnalyzer, "determinism/clean/mlmath")
}

func TestDeterminismSilentOutsideCorePackages(t *testing.T) {
	runFixture(t, DeterminismAnalyzer, "determinism/noncore")
}

func TestUncheckedErrFires(t *testing.T) {
	runFixture(t, UncheckedErrAnalyzer, "uncheckederr/bad")
}

func TestUncheckedErrSilentOnHandledErrors(t *testing.T) {
	runFixture(t, UncheckedErrAnalyzer, "uncheckederr/clean")
}

func TestFloatEqFires(t *testing.T) {
	runFixture(t, FloatEqAnalyzer, "floateq/bad")
}

func TestFloatEqSilentOnGuardIdioms(t *testing.T) {
	runFixture(t, FloatEqAnalyzer, "floateq/clean")
}

func TestNakedPanicFires(t *testing.T) {
	runFixture(t, NakedPanicAnalyzer, "nakedpanic/lib")
}

func TestNakedPanicSilentOnErrorsAndSuppressions(t *testing.T) {
	runFixture(t, NakedPanicAnalyzer, "nakedpanic/clean")
}

func TestNakedPanicSilentInCommands(t *testing.T) {
	runFixture(t, NakedPanicAnalyzer, "nakedpanic/cmd/app")
}

func TestMalformedSuppressionIsItselfADiagnostic(t *testing.T) {
	runFixture(t, NakedPanicAnalyzer, "nakedpanic/malformed")
}

func TestNumGuardFires(t *testing.T) {
	runFixture(t, NumGuardAnalyzer, "numguard/bad/nn")
}

func TestNumGuardSilentOnGuardedCode(t *testing.T) {
	runFixture(t, NumGuardAnalyzer, "numguard/clean/nn")
}

func TestMutexCopyFires(t *testing.T) {
	runFixture(t, MutexCopyAnalyzer, "mutexcopy/bad")
}

func TestMutexCopySilentOnPointerDiscipline(t *testing.T) {
	runFixture(t, MutexCopyAnalyzer, "mutexcopy/clean")
}
