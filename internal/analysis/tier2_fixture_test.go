package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// runModuleFixture is the module-tier analogue of runFixture: it loads every
// listed fixture package, runs the analyzer over the whole set (so cross-
// package call edges resolve), and matches unsuppressed findings against the
// want comments collected from all of them.
func runModuleFixture(t *testing.T, a *ModuleAnalyzer, rels []string) {
	t.Helper()
	loader := fixtureLoader(t)
	var targets []*Package
	for _, rel := range rels {
		dir, err := filepath.Abs(filepath.Join("testdata", "src", rel))
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := loader.LoadDir(dir, "ml4db/internal/analysis/testdata/src/"+rel)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", rel, err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Fatalf("fixture %s has type errors: %v", rel, terr)
		}
		targets = append(targets, pkg)
	}

	wants := map[string]string{}
	for _, pkg := range targets {
		for key, substr := range collectWants(pkg) {
			wants[key] = substr
		}
	}
	got := map[string]string{}
	for _, f := range Analyze(targets, loader.AllLoaded(), nil, []*ModuleAnalyzer{a}, false) {
		if f.Suppressed {
			continue
		}
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		got[key] = f.Message
	}

	for key, substr := range wants {
		msg, ok := got[key]
		if !ok {
			t.Errorf("%s: expected diagnostic matching %q, got none", key, substr)
			continue
		}
		if !strings.Contains(msg, substr) {
			t.Errorf("%s: diagnostic %q does not contain %q", key, msg, substr)
		}
		delete(got, key)
	}
	for key, msg := range got {
		t.Errorf("%s: unexpected diagnostic %q", key, msg)
	}
}

func TestSpawnReachFixture(t *testing.T) {
	runModuleFixture(t, SpawnReachAnalyzer, []string{
		"spawnreach/engine", "spawnreach/helper", "spawnreach/mlmath",
	})
}

func TestClockFlowFixture(t *testing.T) {
	runModuleFixture(t, ClockFlowAnalyzer, []string{
		"clockflow/engine", "clockflow/helper", "clockflow/mlmath",
	})
}

func TestLockCheckFixture(t *testing.T) { runFixture(t, LockCheckAnalyzer, "lockcheck") }
func TestSpanEndFixture(t *testing.T)   { runFixture(t, SpanEndAnalyzer, "spanend") }
func TestErrCmpFixture(t *testing.T)    { runFixture(t, ErrCmpAnalyzer, "errcmp") }

// TestStrictSuppressUnused pins the -strict-suppress contract: an allow
// comment that suppresses nothing is a finding in strict mode and silent
// otherwise — and only for analyzers that actually ran.
func TestStrictSuppressUnused(t *testing.T) {
	loader := fixtureLoader(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "strictsup"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "ml4db/internal/analysis/testdata/src/strictsup")
	if err != nil {
		t.Fatal(err)
	}

	findings := Analyze([]*Package{pkg}, nil, All(), nil, true)
	var unused []Finding
	for _, f := range findings {
		if f.Analyzer == "suppression" {
			unused = append(unused, f)
		}
	}
	if len(unused) != 1 {
		t.Fatalf("strict mode: got %d suppression findings, want 1: %+v", len(unused), findings)
	}
	if !strings.Contains(unused[0].Message, "unused //ml4db:allow floateq") {
		t.Errorf("unexpected message %q", unused[0].Message)
	}

	for _, f := range Analyze([]*Package{pkg}, nil, All(), nil, false) {
		if f.Analyzer == "suppression" {
			t.Errorf("non-strict mode reported suppression finding %q", f.Message)
		}
	}

	// The floateq allow is only auditable when floateq runs: selecting a
	// different analyzer must not flag it.
	for _, f := range Analyze([]*Package{pkg}, nil, []*Analyzer{MutexCopyAnalyzer}, nil, true) {
		if f.Analyzer == "suppression" {
			t.Errorf("strict mode flagged an allow for an analyzer that did not run: %q", f.Message)
		}
	}
}

// TestSelfAnalysisClean runs the full analyzer suite — both tiers, strict
// suppression — over internal/analysis itself: the analysis code must satisfy
// its own contracts without a single suppression.
func TestSelfAnalysisClean(t *testing.T) {
	loader := fixtureLoader(t)
	pkgs, err := loader.Load([]string{"./internal/analysis"})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Fatalf("%s: type error: %v", pkg.Path, terr)
		}
	}
	for _, f := range Analyze(pkgs, loader.AllLoaded(), All(), AllModule(), true) {
		if f.Suppressed {
			continue
		}
		t.Errorf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
	}
}
