package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockcheck enforces three rules on sync.Mutex/sync.RWMutex (and
// sync.Locker) critical sections, path-sensitively over the per-function CFG:
//
//  1. a lock acquired in a function is released on every return path
//     (explicitly or by a defer registered on that path);
//  2. no channel send or receive happens while a lock is held — the engine's
//     admission semaphore is a channel, and blocking on it under the plan
//     cache's mutex is a ready-made deadlock;
//  3. no caller-supplied code runs while a lock is held: function-typed
//     parameters, function-valued fields (callbacks like rollout's ErrFn),
//     and interface methods, whose implementations the lock's owner does not
//     control. Two structural exemptions: error.Error (pure accessors by
//     convention) and mlmath.Clock methods (the injected clock is read under
//     locks by design — obs and the model registry timestamp while holding
//     their own mutex, and clock implementations do not call back).
//
// Locks are tracked by the rendered receiver expression ("c.mu"; read locks
// as "c.mu/R"), so lock/unlock pairs must name the mutex the same way —
// which, in this module, they do. Functions using goto are skipped (no CFG).
// sync.Mutex.TryLock is not modeled. Function literals are analyzed as their
// own functions; a lock held across a synchronously invoked local closure
// that performs channel operations is out of scope and documented in
// docs/ANALYSIS.md.
var LockCheckAnalyzer = &Analyzer{
	Name: "lockcheck",
	Doc:  "held mutexes must be released on every path and not held across channel ops or caller-supplied code",
	Run:  runLockCheck,
}

func runLockCheck(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockFunc(pass, fd.Body, fd.Type)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkLockFunc(pass, fl.Body, fl.Type)
				}
				return true
			})
		}
	}
}

type lockOpKind int

const (
	lockAcquire lockOpKind = iota
	lockRelease
)

// lockState is the dataflow fact: which mutexes are held (keyed by rendered
// receiver, value = acquisition position) and which have a pending deferred
// release.
type lockState struct {
	held     map[string]token.Pos
	deferred map[string]bool
}

func newLockState() *lockState {
	return &lockState{held: map[string]token.Pos{}, deferred: map[string]bool{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

// key canonicalizes the state for the (block, state) visited set.
func (s *lockState) key() string {
	ks := make([]string, 0, len(s.held)+len(s.deferred))
	for k := range s.held {
		ks = append(ks, "h:"+k)
	}
	for k := range s.deferred {
		ks = append(ks, "d:"+k)
	}
	sort.Strings(ks)
	return strings.Join(ks, ",")
}

type lockChecker struct {
	pass *Pass
	// fnType is the enclosing function's type, for caller-supplied parameter
	// detection.
	fnType *ast.FuncType
	// reported dedupes diagnostics across the multiple states a block can be
	// visited under.
	reported map[token.Pos]bool
}

func checkLockFunc(pass *Pass, body *ast.BlockStmt, fnType *ast.FuncType) {
	g, ok := buildCFG(body)
	if !ok {
		return
	}
	lc := &lockChecker{pass: pass, fnType: fnType, reported: map[token.Pos]bool{}}
	type work struct {
		block *cfgBlock
		state *lockState
	}
	visited := map[*cfgBlock]map[string]bool{}
	stack := []work{{g.entry, newLockState()}}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		seen := visited[w.block]
		if seen == nil {
			seen = map[string]bool{}
			visited[w.block] = seen
		}
		k := w.state.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		st := w.state
		for _, n := range w.block.nodes {
			lc.applyNode(n, st)
		}
		if w.block.exits {
			lc.reportLeaks(st)
		}
		for _, succ := range w.block.succs {
			stack = append(stack, work{succ, st.clone()})
		}
	}
}

func (lc *lockChecker) report(pos token.Pos, format string, args ...any) {
	if lc.reported[pos] {
		return
	}
	lc.reported[pos] = true
	lc.pass.Reportf(pos, format, args...)
}

func (lc *lockChecker) reportLeaks(st *lockState) {
	keys := make([]string, 0, len(st.held))
	for k := range st.held {
		if !st.deferred[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		lc.report(st.held[k], "%s is locked here but not released on every return path", displayLockKey(k))
	}
}

// applyNode runs the transfer function for one CFG node.
func (lc *lockChecker) applyNode(n ast.Node, st *lockState) {
	if d, ok := n.(*ast.DeferStmt); ok {
		lc.applyDefer(d, st)
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own function
		case *ast.SendStmt:
			lc.channelOp(x.Arrow, st)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				lc.channelOp(x.OpPos, st)
			}
		case *ast.CallExpr:
			lc.applyCall(x, st)
		}
		return true
	})
}

func (lc *lockChecker) applyDefer(d *ast.DeferStmt, st *lockState) {
	if key, op, ok := lc.lockOp(d.Call); ok {
		if op == lockRelease {
			st.deferred[key] = true
		}
		return
	}
	// defer func() { ...; mu.Unlock() }() registers the releases inside.
	if fl, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(x ast.Node) bool {
			if c, ok := x.(*ast.CallExpr); ok {
				if key, op, ok := lc.lockOp(c); ok && op == lockRelease {
					st.deferred[key] = true
				}
			}
			return true
		})
	}
}

func (lc *lockChecker) applyCall(call *ast.CallExpr, st *lockState) {
	if key, op, ok := lc.lockOp(call); ok {
		switch op {
		case lockAcquire:
			st.held[key] = call.Pos()
		case lockRelease:
			delete(st.held, key)
		}
		return
	}
	if len(st.held) == 0 {
		return
	}
	if desc, ok := lc.callerSuppliedCall(call); ok {
		lc.report(call.Pos(), "%s is held across a call to %s; snapshot state under the lock and call outside it", lc.someHeld(st), desc)
	}
}

func (lc *lockChecker) channelOp(pos token.Pos, st *lockState) {
	if len(st.held) == 0 {
		return
	}
	lc.report(pos, "%s is held across a channel operation; release it before blocking on the channel", lc.someHeld(st))
}

// someHeld names one held lock deterministically for the message.
func (lc *lockChecker) someHeld(st *lockState) string {
	keys := make([]string, 0, len(st.held))
	for k := range st.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return displayLockKey(keys[0])
}

func displayLockKey(k string) string {
	if base, ok := strings.CutSuffix(k, "/R"); ok {
		return base + " (read-locked)"
	}
	return k
}

// lockOp classifies call as a lock acquire/release on a renderable mutex
// expression. Matches the methods of sync.Mutex, sync.RWMutex, and the
// sync.Locker interface.
func (lc *lockChecker) lockOp(call *ast.CallExpr) (string, lockOpKind, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	fn, ok := lc.pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", 0, false
	}
	rt := recv.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return "", 0, false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex", "Locker":
	default:
		return "", 0, false
	}
	base, ok := renderLockExpr(sel.X)
	if !ok {
		return "", 0, false
	}
	switch fn.Name() {
	case "Lock":
		return base, lockAcquire, true
	case "Unlock":
		return base, lockRelease, true
	case "RLock":
		return base + "/R", lockAcquire, true
	case "RUnlock":
		return base + "/R", lockRelease, true
	}
	return "", 0, false // TryLock/TryRLock/RLocker: not modeled
}

// renderLockExpr turns a mutex receiver into a stable key ("c.mu"). Anything
// beyond ident/selector chains (map index, call result) is not renderable
// and the op is ignored.
func renderLockExpr(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := renderLockExpr(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}

// callerSuppliedCall reports whether call invokes code the lock holder does
// not control: a function-typed parameter, a function-valued field, or an
// interface method (error and mlmath.Clock exempted).
func (lc *lockChecker) callerSuppliedCall(call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		v, ok := lc.pass.ObjectOf(fun).(*types.Var)
		if !ok || !isFuncType(v.Type()) {
			return "", false
		}
		if lc.isParamVar(v) {
			return fmt.Sprintf("the function parameter %s", fun.Name), true
		}
		// Local function-typed variables count as the holder's own code.
		return "", false
	case *ast.SelectorExpr:
		switch obj := lc.pass.ObjectOf(fun.Sel).(type) {
		case *types.Var:
			if obj.IsField() && isFuncType(obj.Type()) {
				return fmt.Sprintf("the function-valued field %s", fun.Sel.Name), true
			}
		case *types.Func:
			sig := obj.Type().(*types.Signature)
			if sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) && !exemptInterfaceMethod(sig.Recv().Type(), obj) {
				return fmt.Sprintf("the interface method %s", fun.Sel.Name), true
			}
		}
	}
	return "", false
}

func isFuncType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// isParamVar reports whether v is declared in the enclosing function's
// parameter list.
func (lc *lockChecker) isParamVar(v *types.Var) bool {
	if lc.fnType == nil || lc.fnType.Params == nil {
		return false
	}
	return v.Pos() >= lc.fnType.Params.Pos() && v.Pos() <= lc.fnType.Params.End()
}

// exemptInterfaceMethod sanctions interface calls that are safe under a lock
// by contract: error.Error (accessors), and mlmath.Clock (the injected clock
// is read while holding a lock by design and never calls back).
func exemptInterfaceMethod(recv types.Type, fn *types.Func) bool {
	if fn.Pkg() == nil {
		return true // universe error.Error
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name() == "error"
	}
	return obj.Name() == "Clock" && strings.HasSuffix(obj.Pkg().Path(), "mlmath")
}
