package analysis

import (
	"go/token"
	"strings"
)

// clockflow is the transitive companion to the determinism analyzer's local
// ambient-time rule: core packages must not *reach* time.Now, time.Since, or
// the math/rand global source through any call chain. The sanctioned path is
// an injected mlmath.Clock (or an explicitly seeded source), which is why
// mlmath functions on Clock-shaped types — SystemClock.Now and friends — are
// exempt: they are the one reviewed place the ambient clock enters, and
// callers that hold a Clock made a dependency-injection decision that replay
// tests can override.
//
// Like spawnreach, only boundary edges are reported (core calling into a
// tainted non-core function); a time.Now written directly in a core package
// is the determinism analyzer's finding at the call itself.
var ClockFlowAnalyzer = &ModuleAnalyzer{
	Name: "clockflow",
	Doc:  "core packages must not transitively reach time.Now/time.Since or math/rand globals",
	Run:  runClockFlow,
}

// ambientClockCall matches the denylisted externals: the wall clock and the
// process-global (unseedable in place) random source.
func ambientClockCall(e ExternalCall) bool {
	switch e.PkgPath {
	case "time":
		return e.Name == "Now" || e.Name == "Since"
	case "math/rand", "math/rand/v2":
		// Package-level calls hit the global source; methods on an explicitly
		// constructed *rand.Rand come through as "Rand.X" and are fine (the
		// caller owns the seed), as are the New* constructors that build such
		// sources without reading the global one.
		return !strings.Contains(e.Name, ".") && !strings.HasPrefix(e.Name, "New")
	}
	return false
}

func runClockFlow(p *ModulePass) {
	facts := map[*FuncNode]string{}
	res := p.Graph.taint(
		func(n *FuncNode) (token.Pos, bool) {
			for _, e := range n.Externals {
				if ambientClockCall(e) {
					facts[n] = e.PkgPath + "." + e.Name
					return e.Pos, true
				}
			}
			return token.NoPos, false
		},
		func(n *FuncNode) bool { return mlmathFuncMentions(n, "Clock") },
	)
	for _, pkg := range p.Targets {
		if !IsCorePackage(pkg.Path) {
			continue
		}
		for _, node := range p.NodesIn(pkg) {
			seen := map[token.Pos]bool{}
			for _, c := range node.Calls {
				callee := c.Callee
				if IsCorePackage(callee.Pkg.Path) {
					continue // in-core ambient reads are the determinism analyzer's finding
				}
				if !res.isTainted(callee) || seen[c.Pos] {
					continue
				}
				seen[c.Pos] = true
				p.Reportf(c.Pos, "core function %s reaches the ambient clock or global RNG: %s; inject mlmath.Clock or a seeded source instead",
					node.Name(), renderTaintPath(p.Fset, res, callee, func(n *FuncNode) string {
						if f, ok := facts[n]; ok {
							return f
						}
						return "ambient call"
					}))
			}
		}
	}
}
