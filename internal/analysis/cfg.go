package analysis

import (
	"go/ast"
)

// This file builds the lightweight per-function control-flow graph behind
// the path-sensitive checks (lockcheck, spanend). It is deliberately small:
// blocks hold ast.Node slices (statements, plus the condition/tag
// expressions of branching statements, so channel operations buried in an
// `if v, ok := <-ch; ok` are still visited), and edges cover Go's
// structured control flow — if/else, for, range, switch, type switch,
// select, break/continue (labeled included), return, and panic. A function
// containing goto makes the builder give up (ok=false) and the analyzers
// skip it: the module's style has no gotos, and silence beats a wrong path
// analysis.
//
// Defer is represented as an ordinary node inside its block; the analyzers
// interpret a DeferStmt as "registered from here on" which is exactly its
// runtime semantics along any path that executes it.

// cfgBlock is one straight-line run of nodes with successor edges.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
	// exits marks a block ending in a return (or falling off the function
	// end); panic-terminated blocks set panics instead so leak checks can
	// ignore them (a naked panic is an invariant violation, not a resource
	// path).
	exits  bool
	panics bool
}

// cfg is the graph for one function body.
type cfg struct {
	entry  *cfgBlock
	blocks []*cfgBlock
}

type cfgBuilder struct {
	g *cfg
	// breakTargets / continueTargets stack per enclosing loop/switch/select,
	// keyed by label ("" = innermost).
	loops  []*loopCtx
	failed bool
}

type loopCtx struct {
	label      string
	breakTo    *cfgBlock
	continueTo *cfgBlock // nil for switch/select contexts
}

// buildCFG returns the CFG for body, or ok=false when the body uses goto.
func buildCFG(body *ast.BlockStmt) (*cfg, bool) {
	b := &cfgBuilder{g: &cfg{}}
	entry := b.newBlock()
	b.g.entry = entry
	last := b.stmts(body.List, entry, "")
	if last != nil {
		last.exits = true // fall off the end of the function
	}
	if b.failed {
		return nil, false
	}
	return b.g, true
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func link(from, to *cfgBlock) {
	if from != nil {
		from.succs = append(from.succs, to)
	}
}

// stmts threads a statement list through cur, returning the live block that
// falls out of the list (nil when every path terminated). label carries a
// pending statement label for the next loop/switch.
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *cfgBlock, label string) *cfgBlock {
	for _, s := range list {
		if cur == nil {
			// Dead code after return/break; keep building so node facts in
			// unreachable code are still visited by flow-insensitive passes,
			// but on a detached block.
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur, label)
		label = ""
	}
	return cur
}

// stmt adds one statement to cur, returning the live fallthrough block.
func (b *cfgBuilder) stmt(s ast.Stmt, cur *cfgBlock, label string) *cfgBlock {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		return b.stmt(s.Stmt, cur, s.Label.Name)

	case *ast.BlockStmt:
		return b.stmts(s.List, cur, "")

	case *ast.IfStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Cond)
		thenB := b.newBlock()
		link(cur, thenB)
		after := b.newBlock()
		thenEnd := b.stmts(s.Body.List, thenB, "")
		link(thenEnd, after)
		if s.Else != nil {
			elseB := b.newBlock()
			link(cur, elseB)
			elseEnd := b.stmt(s.Else, elseB, "")
			link(elseEnd, after)
		} else {
			link(cur, after)
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		head := b.newBlock()
		link(cur, head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
		}
		after := b.newBlock()
		body := b.newBlock()
		link(head, body)
		// A for without a condition only leaves via break.
		if s.Cond != nil {
			link(head, after)
		}
		post := b.newBlock()
		if s.Post != nil {
			post.nodes = append(post.nodes, s.Post)
		}
		link(post, head)
		b.loops = append(b.loops, &loopCtx{label: label, breakTo: after, continueTo: post})
		bodyEnd := b.stmts(s.Body.List, body, "")
		b.loops = b.loops[:len(b.loops)-1]
		link(bodyEnd, post)
		return after

	case *ast.RangeStmt:
		// Only the ranged expression goes on the node list; the body is built
		// structurally below (appending s itself would double-visit it).
		if s.X != nil {
			cur.nodes = append(cur.nodes, s.X)
		}
		head := b.newBlock()
		link(cur, head)
		after := b.newBlock()
		body := b.newBlock()
		link(head, body)
		link(head, after)
		b.loops = append(b.loops, &loopCtx{label: label, breakTo: after, continueTo: head})
		bodyEnd := b.stmts(s.Body.List, body, "")
		b.loops = b.loops[:len(b.loops)-1]
		link(bodyEnd, head)
		return after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return b.switchLike(s, cur, label)

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		cur.exits = true
		return nil

	case *ast.BranchStmt:
		switch s.Tok.String() {
		case "goto":
			b.failed = true
			return nil
		case "fallthrough":
			// Handled structurally: switchLike links each case body to the
			// next when it ends in fallthrough.
			return cur
		}
		isContinue := s.Tok.String() == "continue"
		target := b.findLoop(s.Label, isContinue)
		if target == nil {
			b.failed = true // break/continue without a context (malformed)
			return nil
		}
		if isContinue {
			link(cur, target.continueTo)
		} else {
			link(cur, target.breakTo)
		}
		return nil

	case *ast.ExprStmt:
		// A terminating panic(...) ends the path.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				cur.nodes = append(cur.nodes, s)
				cur.panics = true
				return nil
			}
		}
		cur.nodes = append(cur.nodes, s)
		return cur

	default:
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// switchLike builds switch, type switch, and select: init/tag on the head
// block, one branch block per case clause (plus an implicit empty default
// when none is present), all joining after. Fallthrough chains case bodies.
func (b *cfgBuilder) switchLike(s ast.Stmt, cur *cfgBlock, label string) *cfgBlock {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		if s.Tag != nil {
			cur.nodes = append(cur.nodes, s.Tag)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Assign)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	after := b.newBlock()
	b.loops = append(b.loops, &loopCtx{label: label, breakTo: after})
	hasDefault := false
	type caseBlocks struct {
		start *cfgBlock
		end   *cfgBlock
		fall  bool
	}
	var cases []caseBlocks
	for _, cl := range body.List {
		blk := b.newBlock()
		link(cur, blk)
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				blk.nodes = append(blk.nodes, e)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				blk.nodes = append(blk.nodes, cl.Comm)
			}
			stmts = cl.Body
		}
		fall := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fall = true
			}
		}
		end := b.stmts(stmts, blk, "")
		cases = append(cases, caseBlocks{start: blk, end: end, fall: fall})
	}
	for i, c := range cases {
		if c.fall && i+1 < len(cases) {
			link(c.end, cases[i+1].start)
		} else {
			link(c.end, after)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	if !hasDefault {
		// No default: the switch can fall through without taking any case
		// (select without default blocks, but a lock held there is held
		// across a blocking select — the edge keeps the state alive).
		link(cur, after)
	}
	return after
}

// findLoop resolves a break/continue (optionally labeled) to its context:
// break targets the innermost loop/switch/select, continue only loops.
func (b *cfgBuilder) findLoop(label *ast.Ident, wantContinue bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		if wantContinue && b.loops[i].continueTo == nil {
			continue // switch/select contexts are transparent to continue
		}
		if label == nil || b.loops[i].label == label.Name {
			return b.loops[i]
		}
	}
	return nil
}
