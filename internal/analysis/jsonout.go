package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// JSONFinding is the machine-readable form of one finding, emitted by
// cmd/ml4db-vet -json as a JSON array. The shape is a contract for CI
// annotators and future tooling; ValidateFindingsJSON is its schema check,
// run by tests and available to consumers.
type JSONFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	// Reason carries the //ml4db:allow justification for suppressed findings.
	Reason string `json:"reason,omitempty"`
}

// ToJSONFinding converts an analysis Finding.
func ToJSONFinding(f Finding) JSONFinding {
	return JSONFinding{
		File:       f.Pos.Filename,
		Line:       f.Pos.Line,
		Col:        f.Pos.Column,
		Analyzer:   f.Analyzer,
		Message:    f.Message,
		Suppressed: f.Suppressed,
		Reason:     f.Reason,
	}
}

// WriteFindingsJSON encodes findings as an indented JSON array ([] when
// empty, never null).
func WriteFindingsJSON(w io.Writer, findings []Finding) error {
	out := make([]JSONFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, ToJSONFinding(f))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ValidateFindingsJSON checks that data is a well-formed -json document:
// a JSON array whose every element carries the required fields with sane
// values. It rejects unknown fields so schema drift fails loudly.
func ValidateFindingsJSON(data []byte) error {
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("analysis: findings JSON is not an array: %w", err)
	}
	known := knownAnalyzerNames()
	known["suppression"] = true // malformed/unused-suppression findings
	known["typecheck"] = true   // loader type errors surfaced by the CLI
	for i, msg := range raw {
		var f JSONFinding
		dec := json.NewDecoder(bytes.NewReader(msg))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&f); err != nil {
			return fmt.Errorf("analysis: finding %d: %w", i, err)
		}
		if f.File == "" {
			return fmt.Errorf("analysis: finding %d: empty file", i)
		}
		if f.Line <= 0 {
			return fmt.Errorf("analysis: finding %d: line %d out of range", i, f.Line)
		}
		if f.Col < 0 {
			return fmt.Errorf("analysis: finding %d: negative column", i)
		}
		if f.Analyzer == "" || !known[f.Analyzer] {
			return fmt.Errorf("analysis: finding %d: unknown analyzer %q", i, f.Analyzer)
		}
		if f.Message == "" {
			return fmt.Errorf("analysis: finding %d: empty message", i)
		}
		if f.Reason != "" && !f.Suppressed {
			return fmt.Errorf("analysis: finding %d: reason set on unsuppressed finding", i)
		}
	}
	return nil
}
