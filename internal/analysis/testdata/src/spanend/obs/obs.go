// Package obs mirrors the real tracer's shape — a Span created by a
// non-Span receiver, chaining setters, End as the release — so the spanend
// fixture type-checks like production code.
package obs

// Tracer starts spans.
type Tracer struct{}

// Span is one traced operation.
type Span struct {
	vals map[string]int64
}

// StartSpan begins a span under parent (which may be nil).
func (t *Tracer) StartSpan(name string, parent *Span) *Span {
	_ = name
	_ = parent
	return &Span{vals: map[string]int64{}}
}

// SetInt annotates the span and returns it for chaining.
func (s *Span) SetInt(key string, v int64) *Span {
	s.vals[key] = v
	return s
}

// End finishes the span.
func (s *Span) End() {}
