// Package spanend exercises the spanend analyzer: spans must reach End, os
// files must reach Close, and page handles must reach Unpin on every return
// path.
package spanend

import (
	"errors"
	"os"

	"ml4db/internal/analysis/testdata/src/spanend/obs"
	"ml4db/internal/analysis/testdata/src/spanend/storage"
)

var errOops = errors.New("oops")

func work() {}

func leakOnError(tr *obs.Tracer, fail bool) error {
	sp := tr.StartSpan("work", nil) // want "may not reach End"
	if fail {
		return errOops
	}
	sp.End()
	return nil
}

func endsEverywhere(tr *obs.Tracer, fail bool) error {
	sp := tr.StartSpan("work", nil)
	if fail {
		sp.End()
		return errOops
	}
	sp.SetInt("n", 1).End() // chained release resolves to sp
	return nil
}

func deferredEnd(tr *obs.Tracer) {
	sp := tr.StartSpan("work", nil)
	defer sp.End()
	work()
}

func deferredEndInLiteral(tr *obs.Tracer) {
	sp := tr.StartSpan("work", nil)
	defer func() { sp.SetInt("done", 1).End() }()
	work()
}

func discarded(tr *obs.Tracer) {
	tr.StartSpan("work", nil) // want "discarded"
	work()
}

func assignedToBlank(tr *obs.Tracer) {
	_ = tr.StartSpan("work", nil) // want "assigned to _"
	work()
}

func reassignedWhileLive(tr *obs.Tracer) {
	sp := tr.StartSpan("first", nil) // want "overwritten"
	sp = tr.StartSpan("second", nil)
	sp.End()
}

func reassignedAfterEnd(tr *obs.Tracer) {
	sp := tr.StartSpan("first", nil)
	sp.End()
	sp = tr.StartSpan("second", nil)
	sp.End()
}

func suppressedLeak(tr *obs.Tracer, fail bool) error {
	//ml4db:allow spanend "fixture: leak is intentional to exercise suppression"
	sp := tr.StartSpan("work", nil)
	if fail {
		return errOops
	}
	sp.End()
	return nil
}

// Ownership transfers stop tracking: the caller must End it.
func returnsSpan(tr *obs.Tracer) *obs.Span {
	return tr.StartSpan("work", nil).SetInt("handed", 1)
}

func storesSpan(tr *obs.Tracer, sink []*obs.Span) []*obs.Span {
	sp := tr.StartSpan("work", nil)
	return append(sink, sp)
}

func fileLeak(path string, cond bool) error {
	f, err := os.Open(path) // want "may not reach Close"
	if err != nil {
		return err // propagating the open error: handle is nil, exempt
	}
	if cond {
		return errOops
	}
	return f.Close()
}

func fileClosed(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	work()
	return nil
}

func fileClosedOnEachPath(path string, cond bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if cond {
		_ = f.Close()
		return errOops
	}
	return f.Close()
}

func pinLeakOnError(p *storage.Pool, fail bool) error {
	h, err := p.Fetch(0) // want "may not reach Unpin"
	if err != nil {
		return err // propagating the fetch error: handle is nil, exempt
	}
	if fail {
		return errOops
	}
	h.Unpin()
	return nil
}

func pinDeferred(p *storage.Pool, fail bool) error {
	h, err := p.Fetch(0)
	if err != nil {
		return err
	}
	defer h.Unpin()
	if fail {
		return errOops
	}
	return nil
}

func pinDiscarded(p *storage.Pool) {
	p.Fetch(0) // want "discarded"
	work()
}

func pinChainedRelease(p *storage.Pool) error {
	h, err := p.Fetch(0)
	if err != nil {
		return err
	}
	h.Touch().Unpin() // chained release resolves to h
	return nil
}

// Touch chains on an existing handle; it must not count as a new pin.
func pinChainIsNotCreation(h *storage.PageHandle) {
	h.Touch()
	work()
}
