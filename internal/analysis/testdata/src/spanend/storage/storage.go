// Package storage mirrors the real buffer pool's shape — a PageHandle
// created by a non-handle receiver, Unpin as the release — so the spanend
// fixture type-checks like production code.
package storage

// Pool hands out pinned page handles.
type Pool struct{}

// PageHandle is one pinned page frame.
type PageHandle struct {
	missed bool
}

// Fetch pins pageNo and returns a handle the caller must Unpin.
func (p *Pool) Fetch(pageNo int) (*PageHandle, error) {
	_ = pageNo
	return &PageHandle{}, nil
}

// Missed reports whether the fetch was a pool miss.
func (h *PageHandle) Missed() bool { return h.missed }

// Touch annotates the handle and returns it for chaining.
func (h *PageHandle) Touch() *PageHandle { return h }

// Unpin releases the pin.
func (h *PageHandle) Unpin() {}
