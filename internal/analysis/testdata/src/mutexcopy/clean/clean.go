// Package clean is the mutexcopy no-false-positive fixture: pointers
// everywhere a lock travels, and value semantics for lock-free types.
package clean

import "sync"

// Counter holds a mutex and therefore always travels by pointer.
type Counter struct {
	mu sync.Mutex
	n  int
}

// NewCounter constructs fresh values; a composite literal is not a copy.
func NewCounter() *Counter {
	c := Counter{}
	return &c
}

func ByPointer(c *Counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *Counter) Incr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func RangePointers(cs []*Counter) int {
	total := 0
	for _, c := range cs {
		total += ByPointer(c)
	}
	return total
}

// Plain is lock-free: value semantics are fine.
type Plain struct{ X, Y float64 }

func Scale(p Plain, f float64) Plain {
	return Plain{X: p.X * f, Y: p.Y * f}
}
