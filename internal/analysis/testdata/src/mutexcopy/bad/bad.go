// Package bad is the mutexcopy firing fixture: every flagged copy shape of
// a lock-bearing type.
package bad

import "sync"

// Counter holds a mutex by value; copying it copies the lock.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Nested buries the lock one struct deeper; the check is transitive.
type Nested struct {
	inner Counter
}

func ByValueParam(c Counter) int { // want "a parameter by value"
	return c.n
}

func (c Counter) ValueReceiver() int { // want "its receiver by value"
	return c.n
}

func ByValueResult(p *Nested) Nested { // want "a result"
	return *p
}

func Deref(p *Counter) {
	c := *p // want "assignment copies"
	_ = c
}

func RangeCopy(cs []Counter) int {
	total := 0
	for _, c := range cs { // want "range value copies"
		total += c.n
	}
	return total
}
