// Package bad is the uncheckederr firing fixture: statements that drop an
// error result on the floor.
package bad

import (
	"errors"
	"os"
)

func save() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func run() {
	save()    // want "dropped"
	go save() // want "dropped"
	pair()    // want "dropped"
	f, _ := os.CreateTemp("", "x")
	f.Close() // want "dropped"
}
