// Package clean is the uncheckederr no-false-positive fixture: every
// accepted way of dealing with an error result.
package clean

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func save() error { return nil }

func run() error {
	// Handled.
	if err := save(); err != nil {
		return err
	}
	// Explicit discard is visible in review and accepted.
	_ = save()
	// The fmt print family is conventionally unchecked.
	fmt.Println("status")
	fmt.Printf("%d\n", 1)
	// Writes to the never-failing in-memory writers.
	var buf bytes.Buffer
	buf.WriteString("x")
	var sb strings.Builder
	sb.WriteString("y")
	fmt.Fprintf(&buf, "z")
	// The deferred-Close idiom is accepted.
	f, err := os.CreateTemp("", "x")
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}
