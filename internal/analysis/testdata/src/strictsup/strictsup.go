// Package strictsup holds a stale suppression: the comparison below is
// between ints, so floateq never fires and the allow is unused. Strict mode
// must report it; default mode must stay silent.
package strictsup

func Equalish(a, b int) bool {
	//ml4db:allow floateq "stale: this used to compare float64s"
	return a == b
}
