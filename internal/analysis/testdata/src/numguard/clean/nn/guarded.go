// Package nn is the numguard no-false-positive fixture: every sanctioned
// way of defending a gradient-path computation.
package nn

import "math"

// StepChecked divides only after ruling out a zero denominator.
func StepChecked(grads []float64, scale float64) {
	if scale == 0 {
		return
	}
	for i := range grads {
		grads[i] = grads[i] / scale
	}
}

// LossSmoothed uses the epsilon idiom on the log argument.
func LossSmoothed(p float64) float64 {
	return -math.Log(p + 1e-9)
}

// BackwardValidated checks its output for NaN before publishing it.
func BackwardValidated(grads []float64, scale float64) bool {
	for i := range grads {
		grads[i] = grads[i] / scale
	}
	for _, g := range grads {
		if math.IsNaN(g) || math.IsInf(g, 0) {
			return false
		}
	}
	return true
}

// SoftmaxStepClamped bounds the logit before exponentiating.
func SoftmaxStepClamped(logit float64) float64 {
	return math.Exp(math.Min(logit, 50))
}

// MeanForward is not a gradient-path name; unguarded division is someone
// else's problem (and usually a histogram, not a training loop).
func MeanForward(xs []float64, n float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / n
}
