// Package nn is the numguard firing fixture: gradient-path functions (the
// import path ends in a core package name) with no numeric defense in sight.
package nn

import "math"

// Backward divides by an unchecked scale and exponentiates unbounded logits.
func Backward(grads []float64, scale float64) float64 {
	total := 0.0
	for i := range grads {
		grads[i] = grads[i] / scale // want "unguarded floating-point division"
		total += grads[i]
	}
	return total
}

// LogLoss takes a log of an unchecked probability.
func LogLoss(p float64) float64 {
	return -math.Log(p) // want "unguarded math.Log"
}

// SoftmaxStep exponentiates an unclamped logit.
func SoftmaxStep(logit float64) float64 {
	return math.Exp(logit) // want "unguarded math.Exp"
}

// Helper is not on a gradient path: same operations, no findings.
func Helper(a, b float64) float64 {
	return math.Log(a) / b
}
