// Package helper is non-core utility code. It may spawn goroutines itself —
// but core packages must not reach the spawn through it.
package helper

// FanOut runs fns concurrently: the go statement spawnreach reports
// transitively.
func FanOut(fns []func()) {
	done := make(chan struct{})
	for _, f := range fns {
		f := f
		go func() {
			f()
			done <- struct{}{}
		}()
	}
	for range fns {
		<-done
	}
}

// Indirect adds a hop between a caller and the spawn.
func Indirect(fns []func()) { FanOut(fns) }

// Sum spawns nothing.
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
