// Package mlmath mirrors the sanctioned worker-pool shape: functions with a
// Pool receiver or result may spawn, everything else may not.
package mlmath

// Pool is the sanctioned fan-out primitive.
type Pool struct {
	jobs chan func()
}

// NewPool starts n workers; the go statement here is sanctioned because the
// function returns a *Pool.
func NewPool(n int) *Pool {
	p := &Pool{jobs: make(chan func(), n)}
	for i := 0; i < n; i++ {
		go p.work()
	}
	return p
}

func (p *Pool) work() {
	for f := range p.jobs {
		f()
	}
}

// Run executes f on the caller's goroutine (fixture simplification).
func (p *Pool) Run(f func()) { f() }
