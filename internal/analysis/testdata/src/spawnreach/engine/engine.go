// Package engine is a core-named fixture package: spawnreach must flag its
// calls into goroutine-spawning non-core helpers at the boundary edge.
package engine

import (
	"ml4db/internal/analysis/testdata/src/spawnreach/helper"
	"ml4db/internal/analysis/testdata/src/spawnreach/mlmath"
)

func Train(fns []func()) {
	helper.FanOut(fns) // want "goroutine launch outside mlmath.Pool"
}

func TrainIndirect(fns []func()) {
	helper.Indirect(fns) // want "goroutine launch outside mlmath.Pool"
}

func SumOnly(xs []int) int {
	return helper.Sum(xs)
}

// The sanctioned path: fan-out through the pool.
func PoolFanOut(fns []func()) {
	p := mlmath.NewPool(2)
	for _, f := range fns {
		p.Run(f)
	}
}

func Suppressed(fns []func()) {
	//ml4db:allow spawnreach "fixture: one-off spawn reviewed for suppression coverage"
	helper.FanOut(fns)
}
