// Package errcmp exercises the errcmp analyzer: comparing error values with
// == / type assertions / type switches breaks under fmt.Errorf("%w") chains
// and must go through errors.Is / errors.As.
package errcmp

import "errors"

var ErrSentinel = errors.New("sentinel")

type TypedError struct{ Code int }

func (e *TypedError) Error() string { return "typed" }

type BridgedError struct{}

func (e *BridgedError) Error() string { return "bridged" }

// Is is the sanctioned sentinel bridge: errors.Is dispatches here, and
// identity comparison is exactly its job.
func (e *BridgedError) Is(target error) bool {
	return target == ErrSentinel
}

func work() error { return ErrSentinel }

func compare() bool {
	err := work()
	if err == ErrSentinel { // want "errors.Is"
		return true
	}
	if err != ErrSentinel { // want "errors.Is"
		return false
	}
	return err != nil // nil comparisons are always fine
}

func switchOnErr(err error) int {
	switch err { // want "switch on an error value"
	case nil:
		return 0
	case ErrSentinel:
		return 1
	}
	return 2
}

func assertTyped(err error) int {
	if te, ok := err.(*TypedError); ok { // want "errors.As"
		return te.Code
	}
	return -1
}

func typeSwitchTyped(err error) int {
	switch te := err.(type) { // want "errors.As"
	case *TypedError:
		return te.Code
	case nil:
		return 0
	}
	return -1
}

func suppressedCompare(err error) bool {
	//ml4db:allow errcmp "this sentinel is never wrapped in this package; identity is intentional"
	return err == ErrSentinel
}

func clean(err error) bool {
	var te *TypedError
	if errors.As(err, &te) {
		return te.Code == 0 // int comparison, not an error comparison
	}
	return errors.Is(err, ErrSentinel)
}

// Asserting to a non-error interface is not a wrapping hazard.
func assertNonError(err error) bool {
	_, ok := err.(interface{ Timeout() bool })
	return ok
}
