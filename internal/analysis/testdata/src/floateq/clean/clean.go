// Package clean is the floateq no-false-positive fixture: the two guard
// idioms plus non-float comparisons.
package clean

import "math"

// Self-comparison is the portable NaN test.
func isNaN(x float64) bool { return x != x }

// Comparing against exact zero is the division guard.
func safeDiv(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Epsilon comparison is the sanctioned equality.
func approxEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// Integer equality is not the analyzer's business.
func intEq(a, b int) bool { return a == b }
