// Package bad is the floateq firing fixture.
package bad

func eq(a, b float64) bool {
	return a == b // want "floating-point"
}

func neq(a, b float32) bool {
	return a != b // want "floating-point"
}

// Comparing against a non-zero constant is still an exact-bits comparison.
func converged(loss float64) bool {
	return loss == 1.5 // want "floating-point"
}

type point struct{ x, y float64 }

func samePoint(p, q point) bool {
	return p.x == q.x // want "floating-point"
}
