// Package helper is non-core code that reads the ambient clock and global
// RNG. Core packages must not reach these reads through it.
package helper

import (
	"math/rand"
	"time"
)

// Stamp reads the ambient clock.
func Stamp() int64 { return time.Now().UnixNano() }

// Jitter draws from the global RNG.
func Jitter() float64 { return rand.Float64() }

// Elapsed reads the clock via time.Since.
func Elapsed(t0 time.Time) time.Duration { return time.Since(t0) }

// Add is pure.
func Add(a, b int) int { return a + b }

// Scaled uses a caller-seeded source: *rand.Rand methods are fine.
func Scaled(r *rand.Rand, max float64) float64 { return r.Float64() * max }
