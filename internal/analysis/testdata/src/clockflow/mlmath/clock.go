// Package mlmath mirrors the sanctioned clock-injection shape: functions
// whose receiver or result type mentions Clock may read the ambient clock.
package mlmath

import "time"

// Clock abstracts time for deterministic replay.
type Clock interface {
	Now() time.Time
}

// SystemClock is the production Clock backed by the real time package; its
// methods are the sanctioned bridge to time.Now.
type SystemClock struct{}

func (SystemClock) Now() time.Time { return time.Now() }

// ClockOrSystem returns c, defaulting to the system clock.
func ClockOrSystem(c Clock) Clock {
	if c == nil {
		return SystemClock{}
	}
	return c
}
