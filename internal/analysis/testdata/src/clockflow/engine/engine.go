// Package engine is a core-named fixture package: clockflow must flag its
// calls into clock- or RNG-reading non-core helpers at the boundary edge.
package engine

import (
	"math/rand"
	"time"

	"ml4db/internal/analysis/testdata/src/clockflow/helper"
	"ml4db/internal/analysis/testdata/src/clockflow/mlmath"
)

func Timestamp() int64 {
	return helper.Stamp() // want "ambient clock or global RNG"
}

func Noise() float64 {
	return helper.Jitter() // want "ambient clock or global RNG"
}

func Took(t0 time.Time) time.Duration {
	return helper.Elapsed(t0) // want "ambient clock or global RNG"
}

func AddOnly(a, b int) int {
	return helper.Add(a, b)
}

// Injected reads time only through the sanctioned mlmath.Clock path.
func Injected(c mlmath.Clock) int64 {
	return mlmath.ClockOrSystem(c).Now().UnixNano()
}

// Seeded randomness through an explicit source is deterministic under replay.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return helper.Scaled(r, 2.0)
}

func Suppressed() int64 {
	//ml4db:allow clockflow "fixture: wall-clock read reviewed for suppression coverage"
	return helper.Stamp()
}
