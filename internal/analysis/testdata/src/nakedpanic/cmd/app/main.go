// Command app proves nakedpanic is scoped to library code: a cmd/ package
// may crash loudly.
package main

func main() {
	panic("commands may panic")
}
