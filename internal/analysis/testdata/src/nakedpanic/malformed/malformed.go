// Package malformed proves a broken suppression cannot silently succeed: an
// //ml4db:allow comment without a quoted reason is itself a diagnostic, and
// the panic it failed to suppress still fires.
package malformed

// Do carries a suppression attempt with no reason string.
func Do() {
	//ml4db:allow nakedpanic -- no reason given // want "malformed"
	panic("malformed: unsuppressed") // want "panic in library code"
}
