// Package clean is the nakedpanic no-false-positive fixture: errors are
// returned, and the one deliberate panic carries a reviewed suppression.
package clean

import "errors"

// Do returns an error like library code should.
func Do(n int) error {
	if n < 0 {
		return errors.New("clean: negative n")
	}
	return nil
}

// Must is the construction-time variant; its panic is a reviewed decision.
func Must(n int) {
	if n < 0 {
		//ml4db:allow nakedpanic "caller bug: negative n is a programming error"
		panic("clean: negative n")
	}
}
