// Package lib is the nakedpanic firing fixture: library code that panics.
package lib

// Do panics on bad input instead of returning an error.
func Do(n int) {
	if n < 0 {
		panic("lib: negative n") // want "panic in library code"
	}
}
