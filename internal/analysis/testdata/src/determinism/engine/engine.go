// Package engine is a determinism fixture: the query-session front end is a
// core package, so ad-hoc goroutines, wall-clock reads, and map-order cache
// sweeps must fire here. The real engine admits on a channel semaphore
// (callers bring the concurrency), budgets queries in work units instead of
// wall time, and walks its cache through an LRU list, never a map range.
package engine

import (
	"sort"
	"time"
)

// Admit mirrors an admission controller that wrongly spawns a watchdog
// goroutine and enforces its "budget" with the wall clock.
func Admit(pending []string, deadline time.Duration) []string {
	start := time.Now() // want "time.Now"

	done := make(chan struct{})
	go func() { close(done) }() // want "goroutine"
	<-done

	if time.Since(start) > deadline { // want "time.Since"
		return nil
	}
	return pending
}

// SweepCache mirrors a cache eviction pass that collects victim keys by
// ranging over the cache map: the eviction order would differ run to run.
func SweepCache(entries map[string]int) []string {
	var victims []string
	for key := range entries {
		victims = append(victims, key) // want "nondeterministic"
	}

	// Sorted afterwards: well-defined order, no finding.
	var keys []string
	for key := range entries {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return append(victims, keys...)
}
