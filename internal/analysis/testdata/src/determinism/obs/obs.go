// Package obs is a determinism fixture for the observability layer: its
// import path ends in the core segment "obs", so ambient clock reads must
// fire, while the sanctioned injected-Clock idiom the real internal/obs uses
// must stay silent.
package obs

import (
	"sort"
	"time"
)

// Clock mirrors mlmath.Clock, the injected time source.
type Clock interface{ Now() time.Time }

// Span mirrors a trace span carrying its start instant.
type Span struct {
	Name  string
	Start time.Time
	Dur   time.Duration
}

// StartAmbient reads the wall clock directly — forbidden: a replayed trace
// would get fresh timestamps and stop being bit-reproducible.
func StartAmbient(name string) *Span {
	return &Span{Name: name, Start: time.Now()} // want "time.Now"
}

// EndAmbient measures elapsed time ambiently — also forbidden.
func (s *Span) EndAmbient() {
	s.Dur = time.Since(s.Start) // want "time.Since"
}

// Start is the sanctioned form: every instant flows from the injected Clock,
// so a manual clock replays to byte-identical spans.
func Start(c Clock, name string) *Span {
	return &Span{Name: name, Start: c.Now()}
}

// End derives the duration from the same injected Clock.
func (s *Span) End(c Clock) {
	s.Dur = c.Now().Sub(s.Start)
}

// MetricNames is the sanctioned registry-export idiom: collect map keys,
// then sort, so JSONL output order is well-defined.
func MetricNames(m map[string]int64) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
