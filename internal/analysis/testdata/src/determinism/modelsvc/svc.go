// Package modelsvc is a determinism fixture: the serving subsystem is a
// core package, so spawning goroutines and reading ambient time must fire
// here. A batched server coalesces on whichever caller flushes — it never
// spawns — and all rollout timing flows through an injected clock.
package modelsvc

import (
	"sort"
	"time"
)

// Flush mirrors a batch executor that wrongly spawns its own workers and
// times batches off the wall clock instead of an injected one.
func Flush(pending []string, latencies map[string]float64) []string {
	start := time.Now() // want "time.Now"

	done := make(chan struct{})
	go func() { close(done) }() // want "goroutine"
	<-done

	// Canary-window iteration over a map without sorting: the promotion
	// decision would depend on map iteration order.
	var window []string
	for name := range latencies {
		window = append(window, name) // want "nondeterministic"
	}
	_ = time.Since(start) // want "time.Since"

	// Sorted afterwards: well-defined order, no finding.
	var versions []string
	for name := range latencies {
		versions = append(versions, name)
	}
	sort.Strings(versions)
	return append(append(pending, window...), versions...)
}
