// Package cardest is a determinism fixture: its import path ends in a core
// model package name, so every ambient-nondeterminism idiom here must fire.
package cardest

import (
	"math/rand" // want "import of math/rand"
	"sort"
	"time"
)

// Train mirrors a model training entry point that leaks ambient state.
func Train(data map[string]float64) []string {
	var keys []string
	for k := range data {
		keys = append(keys, k) // want "nondeterministic"
	}
	start := time.Now()   // want "time.Now"
	_ = time.Since(start) // want "time.Since"
	_ = rand.Float64()

	// Ad-hoc fan-out: scheduling order races, so the reduction order is
	// nondeterministic. Only mlmath.Pool may spawn.
	done := make(chan struct{})
	go func() { close(done) }() // want "goroutine"
	<-done

	// Sorted afterwards in the same function: well-defined order, no finding.
	var sortedKeys []string
	for k := range data {
		sortedKeys = append(sortedKeys, k)
	}
	sort.Strings(sortedKeys)
	return append(keys, sortedKeys...)
}
