// Package autopilot is a determinism fixture: the self-driving tuning loop
// is a core package because every adopt/drop decision must replay
// byte-identically from the same telemetry. Wall-clock reads, background
// loops, and map-order candidate walks must fire here. The real autopilot
// takes an injected mlmath.Clock, advances only through explicit Tick calls
// on the caller's goroutine, and mines ordered statement snapshots.
package autopilot

import (
	"sort"
	"time"
)

// Tick mirrors a loop tick that wrongly stamps tuning events with the wall
// clock and kicks verification onto a background goroutine.
func Tick(events []int64) time.Time {
	at := time.Now() // want "time.Now"

	go func() { _ = events }() // want "goroutine"

	return at
}

// Propose mirrors a candidate pass that ranges over the benefit map: the
// adoption pick — and the whole event ledger after it — would differ run to
// run.
func Propose(wins map[string]float64) []string {
	var ranked []string
	for target := range wins {
		ranked = append(ranked, target) // want "nondeterministic"
	}

	// Sorted afterwards: well-defined order, no finding.
	var targets []string
	for target := range wins {
		targets = append(targets, target)
	}
	sort.Strings(targets)
	return append(ranked, targets...)
}
