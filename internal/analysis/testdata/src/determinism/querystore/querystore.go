// Package querystore is a determinism fixture: the workload observatory is a
// core package because its exports must replay byte-identically. Wall-clock
// reads, ad-hoc goroutines, and map-order snapshots must fire here. The real
// store takes an injected mlmath.Clock, records synchronously under one
// mutex, and walks its statement map through a sorted key slice.
package querystore

import (
	"sort"
	"time"
)

// Seal mirrors a window seal that wrongly stamps the boundary with the wall
// clock and flushes on a background goroutine.
func Seal(windows []int64) time.Time {
	end := time.Now() // want "time.Now"

	go func() { _ = windows }() // want "goroutine"

	return end
}

// Snapshot mirrors a statement export that ranges over the shape map: the
// JSONL line order would differ run to run.
func Snapshot(stmts map[string]int64) []string {
	var lines []string
	for shape := range stmts {
		lines = append(lines, shape) // want "nondeterministic"
	}

	// Sorted afterwards: well-defined order, no finding.
	var keys []string
	for shape := range stmts {
		keys = append(keys, shape)
	}
	sort.Strings(keys)
	return append(lines, keys...)
}
