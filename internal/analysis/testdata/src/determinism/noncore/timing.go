// Package noncore proves the determinism analyzer is scoped: this package's
// path names no core model package, so wall-clock reads are fine here.
package noncore

import "time"

// Elapsed times a function; allowed outside the core model packages.
func Elapsed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
