// Package mlmath is the determinism no-false-positive fixture: a core
// package using only the sanctioned idioms — injected RNG state, sorted map
// iteration, and commutative accumulation.
package mlmath

import "sort"

// RNG mirrors the injected deterministic generator.
type RNG struct{ s uint64 }

// Float64 advances the injected state; no ambient randomness.
func (r *RNG) Float64() float64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return float64(r.s>>11) / (1 << 53)
}

// SortedKeys is the sanctioned map-iteration idiom: collect, then sort.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sum accumulates commutatively: map order cannot change the result.
func Sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// Local slices that never escape an iteration are order-independent too.
func PerKey(m map[string][]float64) int {
	n := 0
	for _, vs := range m {
		var squares []float64
		for _, v := range vs {
			squares = append(squares, v*v)
		}
		n += len(squares)
	}
	return n
}

// Pool mirrors mlmath.Pool: the one sanctioned goroutine launch site.
type Pool struct{ jobs chan func() }

// NewPool spawns workers from a constructor returning *Pool — sanctioned.
func NewPool(workers int) *Pool {
	p := &Pool{jobs: make(chan func())}
	for i := 0; i < workers; i++ {
		go p.work()
	}
	return p
}

// work drains jobs on a Pool receiver — also sanctioned.
func (p *Pool) work() {
	for job := range p.jobs {
		job()
	}
}
