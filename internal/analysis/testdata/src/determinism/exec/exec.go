// Package exec is a determinism fixture: the query executor is a core
// package because parallel runs must be bit-identical to serial ones.
// Wall-clock reads, ad-hoc goroutine fan-out, and map-order result merging
// must fire here. The real executor takes an injected mlmath.Clock, shards
// through mlmath.Pool.ForEachShard, and emits aggregate groups through a
// sorted key slice.
package exec

import (
	"sort"
	"time"
)

// RunShards mirrors an exchange operator that wrongly spawns its own
// goroutines per shard and stamps the merge with the wall clock.
func RunShards(shards [][]int64) time.Time {
	for _, sh := range shards {
		go func(sh []int64) { _ = sh }(sh) // want "goroutine"
	}
	return time.Now() // want "time.Now"
}

// MergeGroups mirrors an aggregate merge that ranges over the group map:
// row order would depend on map iteration order.
func MergeGroups(groups map[int64]int64) [][]int64 {
	var rows [][]int64
	for k, v := range groups {
		rows = append(rows, []int64{k, v}) // want "nondeterministic"
	}

	// Sorted-key emission: well-defined order, no finding.
	var keys []int64
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	sorted := make([][]int64, 0, len(keys))
	for _, k := range keys {
		sorted = append(sorted, []int64{k, groups[k]})
	}
	return append(rows, sorted...)
}
