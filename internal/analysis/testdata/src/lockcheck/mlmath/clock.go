// Package mlmath mirrors the real module's injected-clock contract, so the
// lockcheck fixture can exercise the Clock interface exemption.
package mlmath

import "time"

// Clock is the injected time source; implementations never call back into
// the code holding a lock.
type Clock interface {
	Now() time.Time
}
