// Package lockcheck exercises the lockcheck analyzer: held mutexes must be
// released on every return path and must not be held across channel
// operations or caller-supplied code.
package lockcheck

import (
	"sync"

	"ml4db/internal/analysis/testdata/src/lockcheck/mlmath"
)

type store struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	n       int
	onEvict func(int)
	clock   mlmath.Clock
}

func (s *store) leaky(flag bool) int {
	s.mu.Lock() // want "not released on every return path"
	if flag {
		s.mu.Unlock()
		return 1
	}
	return 0
}

func (s *store) balanced(flag bool) int {
	s.mu.Lock()
	if flag {
		s.mu.Unlock()
		return 1
	}
	s.mu.Unlock()
	return 0
}

func (s *store) deferred() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func (s *store) deferredInLiteral() int {
	s.mu.Lock()
	defer func() { s.mu.Unlock() }()
	return s.n
}

func (s *store) readLeak(flag bool) int {
	s.rw.RLock() // want "not released on every return path"
	if flag {
		return 1
	}
	s.rw.RUnlock()
	return 0
}

func (s *store) readBalanced() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.n
}

func (s *store) sendUnderLock(ch chan int) {
	s.mu.Lock()
	ch <- s.n // want "held across a channel operation"
	s.mu.Unlock()
}

func (s *store) recvOutsideLock(ch chan int) {
	v := <-ch
	s.mu.Lock()
	s.n = v
	s.mu.Unlock()
}

func (s *store) paramUnderLock(f func()) {
	s.mu.Lock()
	f() // want "function parameter f"
	s.mu.Unlock()
}

func (s *store) fieldUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onEvict(s.n) // want "function-valued field"
}

type flusher interface {
	Flush() error
}

func (s *store) ifaceUnderLock(fl flusher) {
	s.mu.Lock()
	_ = fl.Flush() // want "interface method"
	s.mu.Unlock()
}

// The injected clock is exempt: reading it under a lock is the contract.
func (s *store) clockUnderLock() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clock.Now().UnixNano()
}

func (s *store) suppressedCallback(f func()) {
	s.mu.Lock()
	//ml4db:allow lockcheck "f is documented non-blocking and must run inside the critical section for atomicity"
	f()
	s.mu.Unlock()
}

func (s *store) callbackAfterUnlock(f func()) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	f()
}

func (s *store) loopDiscipline(items []int) {
	for _, it := range items {
		s.mu.Lock()
		if it < 0 {
			s.mu.Unlock()
			continue
		}
		s.n += it
		s.mu.Unlock()
	}
}
