package analysis

import (
	"go/token"
	"path/filepath"
	"testing"
)

// loadFixturePkgs loads the listed fixture packages through the shared loader.
func loadFixturePkgs(t *testing.T, rels ...string) []*Package {
	t.Helper()
	loader := fixtureLoader(t)
	var pkgs []*Package
	for _, rel := range rels {
		dir, err := filepath.Abs(filepath.Join("testdata", "src", rel))
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := loader.LoadDir(dir, "ml4db/internal/analysis/testdata/src/"+rel)
		if err != nil {
			t.Fatalf("loading %s: %v", rel, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// findNode looks a function up by its diagnostic name (pkg.Func or
// pkg.Recv.Method).
func findNode(t *testing.T, g *CallGraph, name string) *FuncNode {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("no call-graph node named %s", name)
	return nil
}

func TestCallGraphDirectEdges(t *testing.T) {
	pkgs := loadFixturePkgs(t, "spawnreach/engine", "spawnreach/helper", "spawnreach/mlmath")
	g := BuildCallGraph(pkgs)

	train := findNode(t, g, "engine.Train")
	fanOut := findNode(t, g, "helper.FanOut")
	if len(train.Calls) != 1 || train.Calls[0].Callee != fanOut {
		t.Fatalf("engine.Train should have exactly one edge, to helper.FanOut; got %+v", train.Calls)
	}
	if train.Calls[0].ViaInterface {
		t.Error("direct call marked ViaInterface")
	}

	if len(fanOut.GoStmts) != 1 {
		t.Errorf("helper.FanOut: got %d go statements, want 1", len(fanOut.GoStmts))
	}
	if sum := findNode(t, g, "helper.Sum"); len(sum.GoStmts) != 0 || len(sum.Calls) != 0 {
		t.Errorf("helper.Sum should be a leaf with no spawns: %+v", sum)
	}

	// The spawn inside NewPool's loop is attributed to NewPool itself.
	if newPool := findNode(t, g, "mlmath.NewPool"); len(newPool.GoStmts) != 1 {
		t.Errorf("mlmath.NewPool: got %d go statements, want 1", len(newPool.GoStmts))
	}
}

func TestCallGraphInterfaceResolution(t *testing.T) {
	pkgs := loadFixturePkgs(t, "clockflow/engine", "clockflow/helper", "clockflow/mlmath")
	g := BuildCallGraph(pkgs)

	// engine.Injected calls Clock.Now through the interface; the graph must
	// resolve it to the one module implementation, SystemClock.Now.
	injected := findNode(t, g, "engine.Injected")
	sysNow := findNode(t, g, "mlmath.SystemClock.Now")
	var viaIface bool
	for _, c := range injected.Calls {
		if c.Callee == sysNow {
			if !c.ViaInterface {
				t.Error("interface-dispatched edge not marked ViaInterface")
			}
			viaIface = true
		}
	}
	if !viaIface {
		t.Errorf("engine.Injected has no edge to mlmath.SystemClock.Now: %+v", injected.Calls)
	}
}

func TestCallGraphExternals(t *testing.T) {
	pkgs := loadFixturePkgs(t, "clockflow/engine", "clockflow/helper", "clockflow/mlmath")
	g := BuildCallGraph(pkgs)

	stamp := findNode(t, g, "helper.Stamp")
	var sawNow bool
	for _, e := range stamp.Externals {
		if e.PkgPath == "time" && e.Name == "Now" {
			sawNow = true
		}
	}
	if !sawNow {
		t.Errorf("helper.Stamp externals missing time.Now: %+v", stamp.Externals)
	}

	// Methods on a caller-owned *rand.Rand render as Rand.Float64 — the shape
	// clockflow's denylist relies on to exempt seeded sources.
	scaled := findNode(t, g, "helper.Scaled")
	var sawMethod bool
	for _, e := range scaled.Externals {
		if e.PkgPath == "math/rand" && e.Name == "Rand.Float64" {
			sawMethod = true
		}
		if ambientClockCall(e) {
			t.Errorf("seeded-source call %s.%s classified as ambient", e.PkgPath, e.Name)
		}
	}
	if !sawMethod {
		t.Errorf("helper.Scaled externals missing Rand.Float64: %+v", scaled.Externals)
	}
}

func TestTaintPropagation(t *testing.T) {
	pkgs := loadFixturePkgs(t, "spawnreach/engine", "spawnreach/helper", "spawnreach/mlmath")
	g := BuildCallGraph(pkgs)

	res := g.taint(
		func(n *FuncNode) (token.Pos, bool) {
			if len(n.GoStmts) > 0 {
				return n.GoStmts[0], true
			}
			return token.NoPos, false
		},
		func(n *FuncNode) bool { return mlmathFuncMentions(n, "Pool") },
	)

	fanOut := findNode(t, g, "helper.FanOut")
	if !res.isTainted(fanOut) {
		t.Error("helper.FanOut should carry its own go-statement fact")
	}
	for _, name := range []string{"engine.Train", "engine.TrainIndirect", "helper.Indirect"} {
		if !res.isTainted(findNode(t, g, name)) {
			t.Errorf("%s should be transitively tainted", name)
		}
	}
	for _, name := range []string{"helper.Sum", "engine.SumOnly", "mlmath.NewPool", "engine.PoolFanOut"} {
		if res.isTainted(findNode(t, g, name)) {
			t.Errorf("%s should not be tainted", name)
		}
	}

	// Two hops: TrainIndirect -> Indirect -> FanOut(go stmt).
	steps := res.pathFrom(findNode(t, g, "engine.TrainIndirect"))
	if len(steps) != 3 || steps[2].Node != fanOut {
		t.Errorf("unexpected path from TrainIndirect: %+v", steps)
	}
}
