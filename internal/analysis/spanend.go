package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// spanend verifies, path-sensitively over the per-function CFG, that local
// resources reach their release on every return path:
//
//   - an *obs.Span obtained from any non-Span-receiver call (Tracer.StartSpan
//     and helpers that return a started span) must reach .End();
//   - an *os.File from os.Open/Create/CreateTemp/OpenFile must reach
//     .Close();
//   - a *storage.PageHandle obtained from any non-PageHandle-receiver call
//     (Pool.Fetch, TableFile.FetchPage and helpers) must reach .Unpin(), or
//     the frame stays pinned and the pool eventually refuses to evict.
//
// Chained setters (sp.SetInt(...).End()) resolve through the method chain to
// the root variable. A release registered with defer — directly or inside a
// defer'd function literal — covers every later path. Conservative escape
// analysis keeps the checker honest rather than noisy: once the resource is
// returned, passed as an argument, stored in a field/slice/channel, or
// captured by a non-defer function literal, ownership is someone else's and
// tracking stops. A return path that propagates the creation's own non-nil
// error is exempt for two-result creations (on error the handle is nil by
// the os contract). Functions using goto are skipped (no CFG).
var SpanEndAnalyzer = &Analyzer{
	Name: "spanend",
	Doc:  "obs spans must reach End, os files Close, and storage page handles Unpin on every return path",
	Run:  runSpanEnd,
}

func runSpanEnd(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpanFunc(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkSpanFunc(pass, fl.Body)
				}
				return true
			})
		}
	}
}

// resource describes one tracked creation site.
type resource struct {
	obj     types.Object
	release string // "End" or "Close"
	what    string // human label for diagnostics
	// errObj is the error result bound alongside the resource (two-result
	// creations), for the error-path exemption.
	errObj types.Object
}

type spanChecker struct {
	pass *Pass
	// creations maps the creating AssignStmt to its resource.
	creations map[*ast.AssignStmt]*resource
	// tracked indexes resources by variable object (escaped ones removed).
	tracked  map[types.Object]*resource
	reported map[token.Pos]bool
}

func checkSpanFunc(pass *Pass, body *ast.BlockStmt) {
	sc := &spanChecker{
		pass:      pass,
		creations: map[*ast.AssignStmt]*resource{},
		tracked:   map[types.Object]*resource{},
		reported:  map[token.Pos]bool{},
	}
	sc.collect(body)
	if len(sc.tracked) == 0 {
		return
	}
	sc.pruneEscapes(body)
	if len(sc.tracked) == 0 {
		return
	}
	g, ok := buildCFG(body)
	if !ok {
		return
	}
	sc.flow(g)
}

// collect finds creation sites in body (nested function literals excluded —
// they are checked as their own functions) and reports discarded creations.
func (sc *spanChecker) collect(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if release, what, ok := sc.creationCall(call); ok && release != "Close" {
					sc.pass.Reportf(call.Pos(), "%s is discarded; it can never reach %s()", what, release)
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			release, what, ok := sc.creationCall(call)
			if !ok {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			if id.Name == "_" {
				sc.pass.Reportf(call.Pos(), "%s is assigned to _; it can never reach %s()", what, release)
				return true
			}
			obj := sc.pass.ObjectOf(id)
			if obj == nil {
				return true
			}
			r := &resource{obj: obj, release: release, what: what}
			if len(n.Lhs) == 2 {
				if eid, ok := n.Lhs[1].(*ast.Ident); ok && eid.Name != "_" {
					r.errObj = sc.pass.ObjectOf(eid)
				}
			}
			sc.creations[n] = r
			sc.tracked[obj] = r
		}
		return true
	})
}

// creationCall classifies call as a resource creation.
func (sc *spanChecker) creationCall(call *ast.CallExpr) (release, what string, ok bool) {
	for _, name := range [...]string{"Open", "Create", "CreateTemp", "OpenFile"} {
		if sc.pass.IsPkgFunc(call, "os", name) {
			return "Close", "the file opened by os." + name, true
		}
	}
	t := sc.pass.TypeOf(call)
	if tup, isTup := t.(*types.Tuple); isTup && tup.Len() > 0 {
		t = tup.At(0).Type()
	}
	if isObsSpanPtr(t) {
		// Methods on *obs.Span itself (SetInt, SetStr, ...) chain on an
		// existing span; only non-Span receivers (Tracer.StartSpan, helpers)
		// create one.
		if sc.receiverIs(call, isObsSpanPtr) {
			return "", "", false
		}
		return "End", "the span started here", true
	}
	if isStorageHandlePtr(t) {
		if sc.receiverIs(call, isStorageHandlePtr) {
			return "", "", false
		}
		return "Unpin", "the page handle pinned here", true
	}
	return "", "", false
}

// receiverIs reports whether call is a method call whose receiver type
// satisfies match — i.e. the call chains on an existing resource rather than
// creating a new one.
func (sc *spanChecker) receiverIs(call *ast.CallExpr, match func(types.Type) bool) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := sc.pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && match(recv.Type())
}

func isObsSpanPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	segs := strings.Split(path, "/")
	return named.Obj().Name() == "Span" && segs[len(segs)-1] == "obs"
}

// isStorageHandlePtr reports whether t is *storage.PageHandle (matched by
// name and final package segment, so the fixture mirror qualifies too).
func isStorageHandlePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	segs := strings.Split(path, "/")
	return named.Obj().Name() == "PageHandle" && segs[len(segs)-1] == "storage"
}

// pruneEscapes drops resources whose variable is used in any way other than
// method calls / field access on it, nil comparisons, its own (re)creation,
// or a release inside a defer'd literal. Uses inside non-defer function
// literals always escape (the literal may run on another goroutine or later).
func (sc *spanChecker) pruneEscapes(body *ast.BlockStmt) {
	type span struct{ lo, hi token.Pos }
	var litRanges []span
	benign := map[*ast.Ident]bool{}
	// Literals invoked directly by defer are release carriers, not escapes.
	deferLits := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if fl, it := ast.Unparen(d.Call.Fun).(*ast.FuncLit); it {
				deferLits[fl] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !deferLits[n] {
				litRanges = append(litRanges, span{n.Pos(), n.End()})
			}
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				benign[id] = true
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				if isNilIdent(n.X) {
					if id, ok := ast.Unparen(n.Y).(*ast.Ident); ok {
						benign[id] = true
					}
				}
				if isNilIdent(n.Y) {
					if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
						benign[id] = true
					}
				}
			}
		case *ast.AssignStmt:
			if sc.creations[n] != nil {
				if id, ok := n.Lhs[0].(*ast.Ident); ok {
					benign[id] = true
				}
			}
		}
		return true
	})
	inLit := func(pos token.Pos) bool {
		for _, r := range litRanges {
			if pos >= r.lo && pos < r.hi {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := sc.pass.ObjectOf(id)
		if obj == nil {
			return true
		}
		if r, isTracked := sc.tracked[obj]; isTracked && r.obj == obj {
			if !benign[id] || inLit(id.Pos()) {
				delete(sc.tracked, obj)
			}
		}
		return true
	})
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// spanState is the dataflow fact: creation position per live resource, plus
// the set with a deferred release.
type spanState struct {
	held     map[types.Object]token.Pos
	deferred map[types.Object]bool
}

func newSpanState() *spanState {
	return &spanState{held: map[types.Object]token.Pos{}, deferred: map[types.Object]bool{}}
}

func (s *spanState) clone() *spanState {
	c := newSpanState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

func (s *spanState) key() string {
	var parts []string
	for obj, pos := range s.held {
		parts = append(parts, fmt.Sprintf("h:%d@%d", obj.Pos(), pos))
	}
	for obj := range s.deferred {
		parts = append(parts, fmt.Sprintf("d:%d", obj.Pos()))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (sc *spanChecker) flow(g *cfg) {
	type work struct {
		block *cfgBlock
		state *spanState
	}
	visited := map[*cfgBlock]map[string]bool{}
	stack := []work{{g.entry, newSpanState()}}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		seen := visited[w.block]
		if seen == nil {
			seen = map[string]bool{}
			visited[w.block] = seen
		}
		k := w.state.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		st := w.state
		var lastReturn *ast.ReturnStmt
		for _, n := range w.block.nodes {
			sc.applyNode(n, st)
			if r, ok := n.(*ast.ReturnStmt); ok {
				lastReturn = r
			}
		}
		if w.block.exits {
			sc.reportLeaks(st, lastReturn)
		}
		for _, succ := range w.block.succs {
			stack = append(stack, work{succ, st.clone()})
		}
	}
}

func (sc *spanChecker) applyNode(n ast.Node, st *spanState) {
	if d, ok := n.(*ast.DeferStmt); ok {
		sc.applyDefer(d, st)
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if r := sc.creations[x]; r != nil && sc.tracked[r.obj] != nil {
				if prev, held := st.held[r.obj]; held && !st.deferred[r.obj] {
					sc.report(prev, "%s is overwritten at line %d before reaching %s()",
						r.what, sc.pass.Fset.Position(x.Pos()).Line, r.release)
				}
				st.held[r.obj] = x.Rhs[0].Pos()
			}
		case *ast.CallExpr:
			if obj, ok := sc.releaseTarget(x); ok {
				delete(st.held, obj)
			}
		}
		return true
	})
}

func (sc *spanChecker) applyDefer(d *ast.DeferStmt, st *spanState) {
	if obj, ok := sc.releaseTarget(d.Call); ok {
		st.deferred[obj] = true
		return
	}
	if fl, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(x ast.Node) bool {
			if c, ok := x.(*ast.CallExpr); ok {
				if obj, ok := sc.releaseTarget(c); ok {
					st.deferred[obj] = true
				}
			}
			return true
		})
	}
}

// releaseTarget resolves calls like sp.End(), f.Close(), or
// sp.SetInt(...).End() to the tracked root variable.
func (sc *spanChecker) releaseTarget(call *ast.CallExpr) (types.Object, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	root := chainRootIdent(sel.X)
	if root == nil {
		return nil, false
	}
	obj := sc.pass.ObjectOf(root)
	r := sc.tracked[obj]
	if r == nil || sel.Sel.Name != r.release {
		return nil, false
	}
	return obj, true
}

// chainRootIdent walks a method chain (sp.SetInt(a).SetStr(b)) back to its
// root identifier.
func chainRootIdent(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return chainRootIdent(e.X)
	case *ast.CallExpr:
		return chainRootIdent(e.Fun)
	}
	return nil
}

func (sc *spanChecker) reportLeaks(st *spanState, ret *ast.ReturnStmt) {
	type leak struct {
		pos token.Pos
		r   *resource
	}
	var leaks []leak
	for obj, pos := range st.held {
		if st.deferred[obj] {
			continue
		}
		r := sc.tracked[obj]
		if r == nil {
			continue
		}
		if ret != nil && r.errObj != nil && returnMentions(sc.pass, ret, r.errObj) {
			continue // propagating the creation's own error: handle is nil
		}
		leaks = append(leaks, leak{pos, r})
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
	for _, l := range leaks {
		sc.report(l.pos, "%s may not reach %s() on every return path; add a defer or release it before returning", l.r.what, l.r.release)
	}
}

func returnMentions(pass *Pass, ret *ast.ReturnStmt, obj types.Object) bool {
	found := false
	for _, e := range ret.Results {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
				found = true
			}
			return !found
		})
	}
	return found
}

func (sc *spanChecker) report(pos token.Pos, format string, args ...any) {
	if sc.reported[pos] {
		return
	}
	sc.reported[pos] = true
	sc.pass.Reportf(pos, format, args...)
}
