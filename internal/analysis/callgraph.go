package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the module-wide static call graph that powers the
// second analysis tier (spawnreach, clockflow). The graph is resolved over
// go/types:
//
//   - direct calls to package-level functions and methods on concrete types
//     become ordinary edges;
//   - calls through an interface method are resolved against the method sets
//     of every named type declared in the loaded module packages: one edge
//     per implementation (ViaInterface=true). This is the standard
//     class-hierarchy approximation — sound for interfaces whose
//     implementations all live in this module, which holds for the contracts
//     the tier enforces (mlmath.Clock, modelsvc.Predictor/Backend,
//     optimizer.CardEstimator, ...);
//   - calls into packages outside the module (the standard library, since
//     go.mod has no dependencies) are recorded as ExternalCall leaves, so
//     analyzers can match them against denylists (time.Now, math/rand)
//     without traversing GOROOT source.
//
// Soundness caveats, by design (documented in docs/ANALYSIS.md): calls
// through function-typed values (fields, parameters, closures passed around)
// create no edges, and reflection is invisible. Code inside a function
// literal is attributed to the enclosing declared function, which is exactly
// right for the transitive-reachability questions this graph answers: the
// spawn inside `go func(){...}()` belongs to whoever wrote the go statement.

// FuncNode is one declared function or method with a body in a loaded
// module package.
type FuncNode struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl
	// Calls are resolved edges to other module functions.
	Calls []CallSite
	// Externals are calls that leave the module (standard library).
	Externals []ExternalCall
	// GoStmts are the positions of go statements in the body (function
	// literals included).
	GoStmts []token.Pos
}

// Name renders pkgShortName.FuncName or pkgShortName.(Recv).Method for
// diagnostics.
func (n *FuncNode) Name() string {
	name := n.Fn.Name()
	if sig, ok := n.Fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if n.Fn.Pkg() != nil {
		name = n.Fn.Pkg().Name() + "." + name
	}
	return name
}

// CallSite is one resolved call edge.
type CallSite struct {
	Pos    token.Pos
	Callee *FuncNode
	// ViaInterface marks edges added by interface method-set resolution:
	// the call dispatches dynamically and Callee is one possible target.
	ViaInterface bool
}

// ExternalCall is a call leaving the module.
type ExternalCall struct {
	// PkgPath is the callee's package ("time", "math/rand").
	PkgPath string
	// Name is the function name, or "Recv.Method" for methods.
	Name string
	Pos  token.Pos
}

// CallGraph is the module-wide static call graph.
type CallGraph struct {
	// Nodes indexes every declared function body by its types.Func object
	// (generic functions by their origin object).
	Nodes map[*types.Func]*FuncNode

	modPkgs map[*types.Package]*Package
	// namedTypes are all named non-interface types declared in the module,
	// for interface method-set resolution.
	namedTypes []*types.Named
	// implCache memoizes interface resolution per interface method object.
	implCache map[*types.Func][]*FuncNode
}

// BuildCallGraph constructs the graph over the given packages (normally
// every package the Loader has loaded, so edges through helper packages
// resolve even when only a subset is being reported on).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Nodes:     map[*types.Func]*FuncNode{},
		modPkgs:   map[*types.Package]*Package{},
		implCache: map[*types.Func][]*FuncNode{},
	}
	for _, pkg := range pkgs {
		if pkg.Types != nil {
			g.modPkgs[pkg.Types] = pkg
		}
	}
	// Pass 1: one node per declared function body, and the named-type index.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					obj, ok := pkg.Info.Defs[d.Name].(*types.Func)
					if !ok || d.Body == nil {
						continue
					}
					g.Nodes[obj] = &FuncNode{Fn: obj, Pkg: pkg, Decl: d}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
						if !ok {
							continue
						}
						named, ok := tn.Type().(*types.Named)
						if !ok || types.IsInterface(named) {
							continue
						}
						g.namedTypes = append(g.namedTypes, named)
					}
				}
			}
		}
	}
	// Pass 2: edges.
	for _, node := range g.Nodes {
		g.addEdges(node)
	}
	return g
}

// isModulePkg reports whether p is one of the loaded module packages.
func (g *CallGraph) isModulePkg(p *types.Package) bool {
	_, ok := g.modPkgs[p]
	return ok
}

// addEdges walks one function body, recording go statements and resolving
// every call expression.
func (g *CallGraph) addEdges(node *FuncNode) {
	info := node.Pkg.Info
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			node.GoStmts = append(node.GoStmts, n.Pos())
		case *ast.CallExpr:
			g.resolveCall(node, info, n)
		}
		return true
	})
}

// resolveCall classifies one call expression into module edges or an
// external leaf. Calls through function-typed values resolve to no object
// and are (soundly for this module's contracts, see package docs) dropped.
func (g *CallGraph) resolveCall(node *FuncNode, info *types.Info, call *ast.CallExpr) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return // builtin, conversion, or function-typed value
	}
	fn = fn.Origin() // collapse generic instantiations onto the declaration
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		// Interface method: resolve against module method sets.
		for _, impl := range g.implementations(fn) {
			node.Calls = append(node.Calls, CallSite{Pos: call.Pos(), Callee: impl, ViaInterface: true})
		}
		return
	}
	if fn.Pkg() == nil {
		return // universe scope (error.Error on the universe error type)
	}
	if g.isModulePkg(fn.Pkg()) {
		if callee, ok := g.Nodes[fn]; ok {
			node.Calls = append(node.Calls, CallSite{Pos: call.Pos(), Callee: callee})
		}
		return
	}
	name := fn.Name()
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	node.Externals = append(node.Externals, ExternalCall{PkgPath: fn.Pkg().Path(), Name: name, Pos: call.Pos()})
}

// implementations returns the module methods that a call to the given
// interface method can dispatch to: for every named module type whose
// method set (value or pointer) satisfies the method's interface, the
// concrete method of the same name.
func (g *CallGraph) implementations(ifaceMethod *types.Func) []*FuncNode {
	if impls, ok := g.implCache[ifaceMethod]; ok {
		return impls
	}
	var impls []*FuncNode
	recv := ifaceMethod.Type().(*types.Signature).Recv().Type()
	iface, ok := recv.Underlying().(*types.Interface)
	if ok {
		for _, named := range g.namedTypes {
			var impl types.Type
			switch {
			case types.Implements(named, iface):
				impl = named
			case types.Implements(types.NewPointer(named), iface):
				impl = types.NewPointer(named)
			default:
				continue
			}
			m, _, _ := types.LookupFieldOrMethod(impl, true, ifaceMethod.Pkg(), ifaceMethod.Name())
			if mf, ok := m.(*types.Func); ok {
				if n, ok := g.Nodes[mf.Origin()]; ok {
					impls = append(impls, n)
				}
			}
		}
	}
	g.implCache[ifaceMethod] = impls
	return impls
}

// PathStep is one hop of a call path rendered in a diagnostic.
type PathStep struct {
	Node *FuncNode
	// Pos is the call site inside Node leading to the next step (or the
	// offending statement for the final step).
	Pos token.Pos
}

// taint computes, for every node that can reach a "bad" node, the next hop
// toward one. bad reports whether a node's own body contains the offending
// fact (with its position); skip excludes sanctioned nodes from both the bad
// set and their own facts (their outgoing edges still propagate).
type taintResult struct {
	// next maps a tainted node to the call edge to follow toward the fact.
	next map[*FuncNode]CallSite
	// fact holds the offending position for nodes whose own body is bad.
	fact map[*FuncNode]token.Pos
}

// taint runs a reverse reachability pass: seed the nodes whose own bodies
// contain the fact, then walk callers until fixpoint.
func (g *CallGraph) taint(bad func(*FuncNode) (token.Pos, bool), sanctioned func(*FuncNode) bool) taintResult {
	res := taintResult{next: map[*FuncNode]CallSite{}, fact: map[*FuncNode]token.Pos{}}
	// Reverse edges.
	callers := map[*FuncNode][]struct {
		caller *FuncNode
		site   CallSite
	}{}
	var worklist []*FuncNode
	for _, n := range g.Nodes {
		for _, c := range n.Calls {
			callers[c.Callee] = append(callers[c.Callee], struct {
				caller *FuncNode
				site   CallSite
			}{n, c})
		}
		if sanctioned != nil && sanctioned(n) {
			continue
		}
		if pos, ok := bad(n); ok {
			res.fact[n] = pos
			worklist = append(worklist, n)
		}
	}
	tainted := map[*FuncNode]bool{}
	for _, n := range worklist {
		tainted[n] = true
	}
	for len(worklist) > 0 {
		n := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		for _, in := range callers[n] {
			if tainted[in.caller] {
				continue
			}
			tainted[in.caller] = true
			res.next[in.caller] = in.site
			worklist = append(worklist, in.caller)
		}
	}
	return res
}

// isTainted reports whether n can reach a bad fact (its own body included).
func (r taintResult) isTainted(n *FuncNode) bool {
	if _, ok := r.fact[n]; ok {
		return true
	}
	_, ok := r.next[n]
	return ok
}

// pathFrom renders the call chain from n to the offending fact, capped so a
// pathological graph cannot produce an unreadable diagnostic.
func (r taintResult) pathFrom(n *FuncNode) []PathStep {
	const maxSteps = 8
	var steps []PathStep
	for i := 0; i < maxSteps; i++ {
		if pos, ok := r.fact[n]; ok {
			steps = append(steps, PathStep{Node: n, Pos: pos})
			return steps
		}
		site, ok := r.next[n]
		if !ok {
			return steps
		}
		steps = append(steps, PathStep{Node: n, Pos: site.Pos})
		n = site.Callee
	}
	return steps
}
