package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic the way cmd/ml4db-vet prints it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named check. Run inspects the package held by the Pass and
// reports findings through Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the import path the package was loaded under.
	PkgPath string

	sink *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "time".Now).
func (p *Pass) IsPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// corePkgSegments names the packages that hold model state or numerical
// substrate: code where nondeterminism or numerical sloppiness silently
// invalidates experiments.
var corePkgSegments = map[string]bool{
	"nn":           true,
	"mlmath":       true,
	"tree":         true,
	"learnedindex": true,
	"cardest":      true,
	"planrep":      true,
	"obs":          true,
	"modelsvc":     true,
	"engine":       true,
	"exec":         true,
	"storage":      true,
	"querystore":   true,
	"autopilot":    true,
}

// IsCorePackage reports whether pkgPath denotes one of the core model
// packages: an internal/ package with a path segment in the core set
// (subpackages like planrep/study are included; examples/ and cmd/ that
// merely reuse a core name are not).
func IsCorePackage(pkgPath string) bool {
	segs := strings.Split(pkgPath, "/")
	internal := false
	core := false
	for _, seg := range segs {
		if seg == "internal" {
			internal = true
		}
		if corePkgSegments[seg] {
			core = true
		}
	}
	return internal && core
}

// IsLibraryPackage reports whether pkgPath is library code: not a command
// under cmd/ and not an example under examples/.
func IsLibraryPackage(pkgPath string) bool {
	for _, seg := range strings.Split(pkgPath, "/") {
		if seg == "cmd" || seg == "examples" {
			return false
		}
	}
	return true
}

// All returns the full analyzer suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		UncheckedErrAnalyzer,
		FloatEqAnalyzer,
		NakedPanicAnalyzer,
		NumGuardAnalyzer,
		MutexCopyAnalyzer,
		LockCheckAnalyzer,
		SpanEndAnalyzer,
		ErrCmpAnalyzer,
	}
}

// ByName resolves analyzer names (comma-tolerant callers split first).
// Unknown names return an error listing valid ones.
func ByName(names []string) ([]*Analyzer, error) {
	index := map[string]*Analyzer{}
	valid := make([]string, 0, len(All()))
	for _, a := range All() {
		index[a.Name] = a
		valid = append(valid, a.Name)
	}
	out := make([]*Analyzer, 0, len(names))
	for _, n := range names {
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q (valid: %s)", n, strings.Join(valid, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// RunPackage runs package-tier analyzers over one loaded package, applies
// //ml4db:allow suppressions, and returns the surviving diagnostics sorted
// by position. Module-tier analyzers and suppression auditing go through
// Analyze (module.go).
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	findings := Analyze([]*Package{pkg}, nil, analyzers, nil, false)
	diags := make([]Diagnostic, 0, len(findings))
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		diags = append(diags, f.Diagnostic)
	}
	return diags
}
