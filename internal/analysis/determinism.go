package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// DeterminismAnalyzer enforces the repository's reproducibility contract in
// the core model packages (nn, mlmath, tree, learnedindex, cardest,
// planrep, obs): the same seed must always yield the same model — and, for
// obs, the same clock injection must always yield the same trace. Four ambient
// sources of nondeterminism are forbidden there:
//
//   - math/rand (and math/rand/v2): use an injected *mlmath.RNG instead, so
//     every random draw flows from the experiment seed;
//   - time.Now / time.Since: use an injected mlmath.Clock, so wall-clock
//     reads are replayable;
//   - slices built by appending inside a range over a map: Go randomizes map
//     iteration order, so the slice's order differs run to run. Sorting the
//     slice afterwards (any sort.* or slices.Sort* call in the same
//     function) makes the order well-defined and silences the check;
//   - go statements: ad-hoc goroutines race on scheduling order. The one
//     sanctioned concurrency primitive is mlmath.Pool, whose contiguous
//     pure-function sharding and fixed-order reduction keep parallel kernels
//     reproducible; only Pool's own machinery (functions in the mlmath
//     package whose receiver or result type involves Pool) may spawn.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid math/rand, time.Now, goroutine launches, and map-order-dependent slice building in core model packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	if !IsCorePackage(pass.PkgPath) {
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in core model package; draw randomness from an injected *mlmath.RNG so runs are reproducible", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkFuncDeterminism(pass, fn)
			}
			return true
		})
	}
}

func checkFuncDeterminism(pass *Pass, fn *ast.FuncDecl) {
	sortedSlices := map[types.Object]bool{}
	// First pass: find slices handed to a sorting function anywhere in fn.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			expr := arg
			if un, ok := expr.(*ast.UnaryExpr); ok {
				expr = un.X
			}
			if id, ok := expr.(*ast.Ident); ok {
				if obj := pass.ObjectOf(id); obj != nil {
					sortedSlices[obj] = true
				}
			}
		}
		return true
	})
	poolFunc := isPoolFunc(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pass.IsPkgFunc(n, "time", "Now") || pass.IsPkgFunc(n, "time", "Since") {
				sel := n.Fun.(*ast.SelectorExpr)
				pass.Reportf(n.Pos(), "time.%s in core model package; inject a mlmath.Clock so timing reads are replayable", sel.Sel.Name)
			}
		case *ast.GoStmt:
			if !poolFunc {
				pass.Reportf(n.Pos(), "goroutine launched in core model package; route data-parallel work through mlmath.Pool so sharding and reduction order stay deterministic")
			}
		case *ast.RangeStmt:
			checkMapRangeAppend(pass, n, sortedSlices)
		}
		return true
	})
}

// isPoolFunc reports whether fn is part of mlmath.Pool's own machinery — a
// function in the mlmath package whose receiver or a result type mentions
// Pool (the Pool methods themselves and constructors like NewPool). These are
// the only sanctioned goroutine launch sites in the core packages.
func isPoolFunc(pass *Pass, fn *ast.FuncDecl) bool {
	segs := strings.Split(pass.PkgPath, "/")
	if segs[len(segs)-1] != "mlmath" {
		return false
	}
	mentionsPool := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == "Pool" {
				found = true
			}
			return !found
		})
		return found
	}
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			if mentionsPool(f.Type) {
				return true
			}
		}
	}
	if fn.Type.Results != nil {
		for _, f := range fn.Type.Results.List {
			if mentionsPool(f.Type) {
				return true
			}
		}
	}
	return false
}

func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return len(obj.Name()) >= 4 && obj.Name()[:4] == "Sort"
	}
	return false
}

// checkMapRangeAppend flags `for k := range m { s = append(s, ...) }` where
// s is declared outside the loop and never sorted in the enclosing function.
func checkMapRangeAppend(pass *Pass, rng *ast.RangeStmt, sortedSlices map[types.Object]bool) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return true
		}
		lhs, ok := asg.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok || fun.Name != "append" {
			return true
		}
		if obj := pass.ObjectOf(fun); obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
				return true // shadowed append
			}
		}
		obj := pass.ObjectOf(lhs)
		if obj == nil || sortedSlices[obj] {
			return true
		}
		// Declared inside the loop body → the slice never escapes one
		// iteration in map order.
		if obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End() {
			return true
		}
		pass.Reportf(asg.Pos(), "slice %s is built by appending inside a range over a map: element order is nondeterministic; sort it afterwards or iterate sorted keys", lhs.Name)
		return true
	})
}
