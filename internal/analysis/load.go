package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// Path is the import path the package was loaded under.
	Path string
	// Dir is the absolute directory holding the sources.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds any type-check errors. Analysis still runs on the
	// partial information, but cmd/ml4db-vet treats these as findings.
	TypeErrors []error
}

// Loader parses and type-checks packages of one module without any external
// tooling: module-internal imports are resolved by path translation against
// the module root and type-checked recursively; standard-library imports are
// type-checked from GOROOT source via go/importer's source importer.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std  types.ImporterFrom
	pkgs map[string]*loadEntry
}

type loadEntry struct {
	pkg *Package
	err error
	// inProgress marks packages currently being checked, for import-cycle
	// detection.
	inProgress bool
}

// NewLoader builds a loader rooted at the directory containing go.mod.
func NewLoader(modRoot string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: abs,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    map[string]*loadEntry{},
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load resolves patterns ("./...", "./internal/nn", ".") relative to the
// module root into packages, parsed and type-checked in dependency order.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walk(l.ModRoot, dirs); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.ModRoot, strings.TrimSuffix(pat, "/..."))
			if err := l.walk(root, dirs); err != nil {
				return nil, err
			}
		default:
			dirs[filepath.Join(l.ModRoot, pat)] = true
		}
	}
	var sorted []string
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	var out []*Package
	for _, dir := range sorted {
		hasGo, err := dirHasGoFiles(dir)
		if err != nil {
			return nil, err
		}
		if !hasGo {
			continue
		}
		pkg, err := l.LoadDir(dir, l.importPathFor(dir))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// walk collects candidate package directories under root, skipping
// testdata, vendored code, VCS metadata, and hidden/underscore directories —
// the same set the go tool ignores.
func (l *Loader) walk(root string, dirs map[string]bool) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs[path] = true
		return nil
	})
}

func dirHasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

func (l *Loader) dirForImport(path string) string {
	if path == l.ModPath {
		return l.ModRoot
	}
	rel := strings.TrimPrefix(path, l.ModPath+"/")
	return filepath.Join(l.ModRoot, filepath.FromSlash(rel))
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. Results are memoized by import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if e, ok := l.pkgs[importPath]; ok {
		if e.inProgress {
			return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
		}
		return e.pkg, e.err
	}
	entry := &loadEntry{inProgress: true}
	l.pkgs[importPath] = entry
	pkg, err := l.check(dir, importPath)
	entry.pkg, entry.err, entry.inProgress = pkg, err, false
	return pkg, err
}

func (l *Loader) check(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	pkg := &Package{
		Path: importPath,
		Dir:  dir,
		Fset: l.Fset,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
		Files: files,
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// Check never returns a useful error beyond what the Error callback
	// collected; keep the partial package so analysis can still run.
	tpkg, _ := conf.Check(importPath, l.Fset, files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// AllLoaded returns every module package the loader has finished loading —
// requested targets and their transitive module-internal dependencies —
// sorted by import path. This is the universe BuildCallGraph should see, so
// call edges through helper packages resolve even when only a subset is
// being vetted.
func (l *Loader) AllLoaded() []*Package {
	var out []*Package
	for _, e := range l.pkgs {
		if e.pkg != nil && !e.inProgress {
			out = append(out, e.pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal packages are
// loaded recursively from source; everything else (the standard library,
// since the module has no third-party dependencies) is delegated to the
// GOROOT source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.LoadDir(l.dirForImport(path), path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: type-checking %s failed", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
