package analysis

import (
	"go/ast"
	"go/types"
)

// NakedPanicAnalyzer flags panic calls in library packages (everything
// outside cmd/ and examples/). A panic that escapes a library API takes the
// whole process down — unacceptable once this code serves traffic. Each site
// must either return an error, or carry an //ml4db:allow nakedpanic comment
// whose reason states the invariant that makes the panic unreachable except
// through a caller bug (the stdlib convention for shape-mismatch guards).
var NakedPanicAnalyzer = &Analyzer{
	Name: "nakedpanic",
	Doc:  "flag panic in library (non-cmd, non-example) code",
	Run:  runNakedPanic,
}

func runNakedPanic(pass *Pass) {
	if !IsLibraryPackage(pass.PkgPath) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if obj := pass.ObjectOf(id); obj != nil {
				if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
					return true // a local function shadowing the builtin
				}
			}
			pass.Reportf(call.Pos(), "panic in library code; return an error, or document the unreachable invariant with //ml4db:allow nakedpanic")
			return true
		})
	}
}
