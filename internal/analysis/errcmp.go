package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// errcmp flags error comparisons that break under wrapping. The module's
// typed errors (*engine.OverloadedError, *exec.BudgetExceededError,
// *modelsvc.IntegrityError, ...) travel through fmt.Errorf("...: %w", err)
// chains, so:
//
//   - err == ErrSentinel / err != ErrSentinel  →  errors.Is(err, ErrSentinel)
//   - switch err { case ErrSentinel: }         →  errors.Is
//   - err.(*TypedError), two-result included   →  errors.As
//   - switch err.(type) { case *TypedError: }  →  errors.As
//
// The one sanctioned `==` on errors is inside a method named Is with
// signature (error) bool: that is the errors.Is bridge itself (the standard
// library calls it through errors.Is), and identity comparison is exactly
// what it must do. Comparisons against nil are always fine.
var ErrCmpAnalyzer = &Analyzer{
	Name: "errcmp",
	Doc:  "error values must be matched with errors.Is/errors.As, not == or type assertions",
	Run:  runErrCmp,
}

func runErrCmp(pass *Pass) {
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	isError := func(e ast.Expr) bool {
		t := pass.TypeOf(e)
		if t == nil {
			return false
		}
		if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			return false
		}
		return types.Implements(t, errorIface)
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if isFunc && isErrIsBridge(pass, fd) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					if isNil(n.X) || isNil(n.Y) {
						return true
					}
					if isError(n.X) || isError(n.Y) {
						pass.Reportf(n.OpPos, "error compared with %s; use errors.Is so wrapped errors still match", n.Op)
					}
				case *ast.SwitchStmt:
					if n.Tag != nil && isError(n.Tag) {
						pass.Reportf(n.Switch, "switch on an error value; use errors.Is so wrapped errors still match")
					}
				case *ast.TypeAssertExpr:
					if n.Type == nil {
						return true // x.(type): handled as TypeSwitchStmt
					}
					if isError(n.X) && typeImplementsError(pass, n.Type, errorIface) {
						pass.Reportf(n.Lparen, "type assertion on an error value; use errors.As so wrapped errors still match")
					}
				case *ast.TypeSwitchStmt:
					subject := typeSwitchSubject(n)
					if subject == nil || !isError(subject) {
						return true
					}
					for _, cl := range n.Body.List {
						cc, ok := cl.(*ast.CaseClause)
						if !ok {
							continue
						}
						for _, t := range cc.List {
							if typeImplementsError(pass, t, errorIface) {
								pass.Reportf(n.Switch, "type switch on an error value; use errors.As so wrapped errors still match")
								return true
							}
						}
					}
				}
				return true
			})
		}
	}
}

// isErrIsBridge reports whether fd is a sanctioned sentinel bridge: a method
// named Is taking one error and returning bool, which errors.Is dispatches
// to and which must compare identities itself.
func isErrIsBridge(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Name.Name != "Is" || fd.Recv == nil {
		return false
	}
	obj, ok := pass.ObjectOf(fd.Name).(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	errorIface := types.Universe.Lookup("error").Type()
	if !types.Identical(sig.Params().At(0).Type(), errorIface) {
		return false
	}
	b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// typeImplementsError reports whether the case/assert type expression names
// a type implementing error (the error interface itself excluded: asserting
// back to plain error is a no-op, not a wrapping hazard).
func typeImplementsError(pass *Pass, e ast.Expr, errorIface *types.Interface) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
		return false
	}
	return types.Implements(t, errorIface)
}

// typeSwitchSubject extracts x from `switch x.(type)` or `switch v := x.(type)`.
func typeSwitchSubject(n *ast.TypeSwitchStmt) ast.Expr {
	switch s := n.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := s.X.(*ast.TypeAssertExpr); ok {
			return ta.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if ta, ok := s.Rhs[0].(*ast.TypeAssertExpr); ok {
				return ta.X
			}
		}
	}
	return nil
}
