package study

import (
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/sqlkit/datagen"
)

func buildSmall(t *testing.T) (*datagen.StarSchema, *Dataset) {
	t.Helper()
	rng := mlmath.NewRNG(3)
	sch, err := datagen.NewStarSchema(rng, 1500, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := BuildCostDataset(sch, rng, 12)
	if err != nil {
		t.Fatal(err)
	}
	return sch, ds
}

func TestBuildCostDataset(t *testing.T) {
	_, ds := buildSmall(t)
	if ds.NumQueries != 12 {
		t.Errorf("NumQueries = %d", ds.NumQueries)
	}
	if len(ds.Samples) < ds.NumQueries {
		t.Fatalf("samples = %d", len(ds.Samples))
	}
	for _, s := range ds.Samples {
		if s.LogWork <= 0 {
			t.Errorf("non-positive log work %v", s.LogWork)
		}
		if s.Plan == nil || s.Query == nil {
			t.Fatal("nil plan/query in sample")
		}
	}
	// Plans of the same query should be deduplicated by structure.
	seen := map[string]bool{}
	for _, s := range ds.Samples {
		if s.QueryIdx == 0 {
			key := s.Plan.String()
			if seen[key] {
				t.Error("duplicate plan retained in dataset")
			}
			seen[key] = true
		}
	}
}

func TestSplitByQueryDisjoint(t *testing.T) {
	_, ds := buildSmall(t)
	train, test := splitByQuery(ds, 0.75, mlmath.NewRNG(1))
	trainQ := map[int]bool{}
	for _, i := range train {
		trainQ[ds.Samples[i].QueryIdx] = true
	}
	for _, i := range test {
		if trainQ[ds.Samples[i].QueryIdx] {
			t.Fatal("query leaks across split")
		}
	}
	if len(train)+len(test) != len(ds.Samples) {
		t.Error("split loses samples")
	}
}

func TestNewEncoderNames(t *testing.T) {
	rng := mlmath.NewRNG(2)
	for _, n := range ModelNames {
		e, err := NewEncoder(n, 8, 8, rng)
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		if e.Name() != n {
			t.Errorf("encoder name %q != requested %q", e.Name(), n)
		}
	}
	if _, err := NewEncoder("nope", 8, 8, rng); err == nil {
		t.Error("expected error for unknown model")
	}
}

// TestRunSmallStudy runs a reduced version of E1 and checks outputs are sane
// and the headline finding direction holds (features matter at least as a
// real effect; the full-size check lives in the bench harness).
func TestRunSmallStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("training study in -short mode")
	}
	sch, ds := buildSmall(t)
	cfg := Config{Hidden: 8, Epochs: 8, TrainFrac: 0.75, Seed: 7}
	results, err := Run(sch, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantCombos := len(ModelNames) * len(FeatureConfigs())
	if len(results) != wantCombos {
		t.Fatalf("results = %d, want %d", len(results), wantCombos)
	}
	for _, r := range results {
		if r.MAE < 0 || r.RankAcc < 0 || r.RankAcc > 1 {
			t.Errorf("%s/%s: bad metrics %+v", r.Feature, r.Model, r)
		}
		if r.Model != "flat" && r.Params == 0 {
			t.Errorf("%s/%s: zero params", r.Feature, r.Model)
		}
	}
	sa := AnalyzeSpread(results)
	if sa.MeanFeatureSpread <= 0 || sa.MeanModelSpread <= 0 {
		t.Errorf("degenerate spread analysis %+v", sa)
	}
}

func TestAnalyzeSpread(t *testing.T) {
	results := []Result{
		{Feature: "a", Model: "m1", MAE: 1},
		{Feature: "a", Model: "m2", MAE: 1.1},
		{Feature: "b", Model: "m1", MAE: 3},
		{Feature: "b", Model: "m2", MAE: 3.1},
	}
	sa := AnalyzeSpread(results)
	// Feature spread (per model): |3−1| = 2. Model spread (per feature): 0.1.
	if sa.MeanFeatureSpread < 1.9 || sa.MeanFeatureSpread > 2.1 {
		t.Errorf("feature spread = %v", sa.MeanFeatureSpread)
	}
	if sa.MeanModelSpread < 0.05 || sa.MeanModelSpread > 0.15 {
		t.Errorf("model spread = %v", sa.MeanModelSpread)
	}
}
