// Package study reproduces the comparative evaluation of query-plan
// representation techniques ([57] in the paper, discussed in §3.1): it
// isolates the feature-encoding and tree-model components, interchanges them
// across a cost-estimation task, and measures both absolute accuracy (MAE on
// log-cost) and relative accuracy (pairwise plan-ranking).
//
// The finding to reproduce: the choice of feature encoding matters more than
// the choice of tree model.
package study
