package study

import (
	"fmt"
	"math"

	"ml4db/internal/mlmath"
	"ml4db/internal/nn"
	"ml4db/internal/planrep"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/exec"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/tree"
	"ml4db/internal/workload"
)

// Sample is one labeled plan.
type Sample struct {
	Query *plan.Query
	Plan  *plan.Node
	// LogWork is log(1 + executor work units), the regression target.
	LogWork float64
	// QueryIdx groups plans of the same query for ranking evaluation.
	QueryIdx int
}

// Dataset is a labeled plan corpus.
type Dataset struct {
	Samples []Sample
	// NumQueries is the number of distinct queries.
	NumQueries int
}

// BuildCardDataset generates numQueries star-join queries, plans each with
// the expert optimizer, executes it, and labels the plan with its log output
// cardinality — the cardinality-estimation task of the comparative study
// (the task of E2E-Cost and QueryFormer's evaluations). One plan per query;
// ranking is evaluated globally across queries.
func BuildCardDataset(sch *datagen.StarSchema, rng *mlmath.RNG, numQueries int) (*Dataset, error) {
	gen := workload.NewStarGen(sch, rng)
	opt := optimizer.New(sch.Cat)
	ex := exec.New(sch.Cat)
	ds := &Dataset{NumQueries: numQueries}
	for qi := 0; qi < numQueries; qi++ {
		q := gen.Query()
		p, err := opt.Plan(q, optimizer.NoHint())
		if err != nil {
			return nil, fmt.Errorf("study: planning query %d: %w", qi, err)
		}
		res, err := ex.Execute(p, exec.Options{})
		if err != nil {
			return nil, fmt.Errorf("study: executing query %d: %w", qi, err)
		}
		ds.Samples = append(ds.Samples, Sample{
			Query:    q,
			Plan:     p,
			LogWork:  logp1(float64(len(res.Rows))),
			QueryIdx: qi,
		})
	}
	return ds, nil
}

// BuildCostDataset generates numQueries star-join queries, plans each under
// several hint sets (yielding structurally diverse plans), executes
// them, and labels each plan with its log work.
func BuildCostDataset(sch *datagen.StarSchema, rng *mlmath.RNG, numQueries int) (*Dataset, error) {
	gen := workload.NewStarGen(sch, rng)
	opt := optimizer.New(sch.Cat)
	ex := exec.New(sch.Cat)
	// Reasonable plan variants only (no forced nested-loop disasters): as in
	// the surveyed cost-estimation corpora, labels vary mostly with data and
	// predicate selectivity rather than with adversarial operator choices.
	hints := []optimizer.HintSet{
		optimizer.NoHint(),
		{Name: "hash-only", JoinOps: []plan.OpType{plan.OpHashJoin}},
		{Name: "merge-only", JoinOps: []plan.OpType{plan.OpMergeJoin}},
		{Name: "left-deep", LeftDeepOnly: true},
	}
	ds := &Dataset{NumQueries: numQueries}
	for qi := 0; qi < numQueries; qi++ {
		q := gen.Query()
		seen := make(map[string]bool)
		for _, h := range hints {
			p, err := opt.Plan(q, h)
			if err != nil {
				return nil, fmt.Errorf("study: planning query %d: %w", qi, err)
			}
			key := p.String()
			if seen[key] {
				continue // identical plan under a different hint
			}
			seen[key] = true
			res, err := ex.Execute(p, exec.Options{})
			if err != nil {
				return nil, fmt.Errorf("study: executing query %d: %w", qi, err)
			}
			ds.Samples = append(ds.Samples, Sample{
				Query:    q,
				Plan:     p,
				LogWork:  logp1(float64(res.Work)),
				QueryIdx: qi,
			})
		}
	}
	return ds, nil
}

// logp1 maps work to log(1+work); the natural log keeps regression targets
// in a small range.
func logp1(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return mlmath.Clamp(math.Log(x+1), 0, 64)
}

// Config controls the study.
type Config struct {
	Hidden    int // tree model hidden width
	Epochs    int
	TrainFrac float64
	Seed      uint64
	// Clock supplies the timing reads behind TrainSec; nil means the system
	// clock. Inject a *mlmath.ManualClock for reproducible study output.
	Clock mlmath.Clock
	// Pool parallelizes plan encoding and test-set evaluation, both of
	// which are read-only per sample and therefore bit-identical for any
	// worker count. Nil runs serially. Training itself stays serial: the
	// recursive tree encoders backpropagate through per-sample graphs.
	Pool *mlmath.Pool
}

// DefaultConfig returns the settings used by experiment E1.
func DefaultConfig() Config {
	return Config{Hidden: 16, Epochs: 30, TrainFrac: 0.75, Seed: 7}
}

// Result is the evaluation of one (feature set, tree model) combination.
type Result struct {
	Feature  string
	Model    string
	MAE      float64 // mean absolute error on log-work (absolute accuracy)
	RankAcc  float64 // pairwise ranking accuracy within queries (relative)
	TrainSec float64
	Params   int
}

// ModelNames lists the tree models under study, in Table 1 order.
var ModelNames = []string{"flat", "lstm", "treecnn", "treelstm", "treernn", "transformer"}

// FeatureConfigs lists the feature-encoding variants under study, from
// information-poor to information-rich.
func FeatureConfigs() []planrep.FeatureConfig {
	return []planrep.FeatureConfig{
		planrep.MinimalFeatures(), planrep.SemanticOnly(), planrep.StatsOnly(), planrep.FullFeatures(),
	}
}

// NewEncoder constructs the named tree model for the given feature width.
func NewEncoder(name string, featDim, hidden int, rng *mlmath.RNG) (tree.Encoder, error) {
	switch name {
	case "flat":
		return tree.NewFlatEncoder(featDim, 16), nil
	case "lstm":
		return tree.NewLSTMEncoder(featDim, hidden, rng), nil
	case "treernn":
		return tree.NewTreeRNNEncoder(featDim, hidden, rng), nil
	case "treelstm":
		return tree.NewTreeLSTMEncoder(featDim, hidden, rng), nil
	case "treecnn":
		return tree.NewTreeCNNEncoder(featDim, hidden, rng), nil
	case "transformer":
		return tree.NewTransformerEncoder(featDim, hidden, rng), nil
	default:
		return nil, fmt.Errorf("study: unknown model %q", name)
	}
}

// Run trains and evaluates every (feature, model) combination on the dataset
// and returns one Result per combination.
func Run(sch *datagen.StarSchema, ds *Dataset, cfg Config) ([]Result, error) {
	var results []Result
	for _, fc := range FeatureConfigs() {
		pe := planrep.NewPlanEncoder(sch.Cat, fc)
		trees := make([]*tree.EncTree, len(ds.Samples))
		cfg.Pool.ParallelFor(len(ds.Samples), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				trees[i] = pe.Encode(ds.Samples[i].Plan)
			}
		})
		trainIdx, testIdx := splitByQuery(ds, cfg.TrainFrac, mlmath.NewRNG(cfg.Seed))
		for _, mn := range ModelNames {
			rng := mlmath.NewRNG(cfg.Seed + 1000)
			enc, err := NewEncoder(mn, pe.FeatDim(), cfg.Hidden, rng)
			if err != nil {
				return nil, err
			}
			reg := tree.NewRegressor(enc, []int{32}, rng)
			var trainTrees []*tree.EncTree
			var trainYs []float64
			for _, i := range trainIdx {
				trainTrees = append(trainTrees, trees[i])
				trainYs = append(trainYs, ds.Samples[i].LogWork)
			}
			clock := mlmath.ClockOrSystem(cfg.Clock)
			start := clock.Now()
			reg.Fit(trainTrees, trainYs, tree.FitOptions{
				Epochs: cfg.Epochs, BatchSize: 16,
				Optimizer: nn.NewAdam(3e-3), RNG: mlmath.NewRNG(cfg.Seed + 2),
			})
			elapsed := clock.Now().Sub(start).Seconds()
			mae, rank := evaluate(reg, trees, ds, testIdx, cfg.Pool)
			results = append(results, Result{
				Feature: fc.Name(), Model: mn,
				MAE: mae, RankAcc: rank,
				TrainSec: elapsed, Params: nn.ParamCount(reg),
			})
		}
	}
	return results, nil
}

// splitByQuery assigns whole queries to train or test so no plan of a test
// query is seen in training.
func splitByQuery(ds *Dataset, trainFrac float64, rng *mlmath.RNG) (train, test []int) {
	perm := rng.Perm(ds.NumQueries)
	cut := int(float64(ds.NumQueries) * trainFrac)
	isTrain := make(map[int]bool, cut)
	for _, q := range perm[:cut] {
		isTrain[q] = true
	}
	for i, s := range ds.Samples {
		if isTrain[s.QueryIdx] {
			train = append(train, i)
		} else {
			test = append(test, i)
		}
	}
	return train, test
}

func evaluate(reg *tree.Regressor, trees []*tree.EncTree, ds *Dataset, testIdx []int, pool *mlmath.Pool) (mae, rankAcc float64) {
	testTrees := make([]*tree.EncTree, len(testIdx))
	for k, i := range testIdx {
		testTrees[k] = trees[i]
	}
	scores := reg.PredictBatch(testTrees, pool)
	preds := make(map[int]float64, len(testIdx))
	var absErr float64
	for k, i := range testIdx {
		p := scores[k]
		preds[i] = p
		d := p - ds.Samples[i].LogWork
		if d < 0 {
			d = -d
		}
		absErr += d
	}
	if len(testIdx) > 0 {
		mae = absErr / float64(len(testIdx))
	}
	// Global pairwise ranking over the test set (the "relative performance"
	// metric: does the representation order workloads correctly?).
	correct, total := 0, 0
	for a := 0; a < len(testIdx); a++ {
		for b := a + 1; b < len(testIdx); b++ {
			i, j := testIdx[a], testIdx[b]
			ti, tj := ds.Samples[i].LogWork, ds.Samples[j].LogWork
			//ml4db:allow floateq "exact tie on recorded labels: skipping tied pairs is the ranking-metric definition"
			if ti == tj {
				continue
			}
			total++
			if (preds[i] < preds[j]) == (ti < tj) {
				correct++
			}
		}
	}
	if total > 0 {
		rankAcc = float64(correct) / float64(total)
	}
	return mae, rankAcc
}

// SpreadAnalysis summarizes the study finding: the spread (max−min) of MAE
// across feature sets holding the model fixed, versus across models holding
// the feature set fixed. The paper's claim holds when the feature spread
// exceeds the model spread.
type SpreadAnalysis struct {
	MeanFeatureSpread float64 // averaged over models
	MeanModelSpread   float64 // averaged over feature sets
}

// AnalyzeSpread computes the SpreadAnalysis of study results.
func AnalyzeSpread(results []Result) SpreadAnalysis {
	byModel := make(map[string][]float64)
	byFeature := make(map[string][]float64)
	for _, r := range results {
		byModel[r.Model] = append(byModel[r.Model], r.MAE)
		byFeature[r.Feature] = append(byFeature[r.Feature], r.MAE)
	}
	spread := func(v []float64) float64 {
		if len(v) == 0 {
			return 0
		}
		lo, hi := v[0], v[0]
		for _, x := range v {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return hi - lo
	}
	var fs, ms float64
	for _, v := range byModel {
		fs += spread(v)
	}
	fs /= float64(len(byModel))
	for _, v := range byFeature {
		ms += spread(v)
	}
	ms /= float64(len(byFeature))
	return SpreadAnalysis{MeanFeatureSpread: fs, MeanModelSpread: ms}
}
