package planrep

import (
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/workload"
)

func testSchema(t *testing.T) (*datagen.StarSchema, *workload.StarGen) {
	t.Helper()
	rng := mlmath.NewRNG(1)
	sch, err := datagen.NewStarSchema(rng, 2000, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	return sch, workload.NewStarGen(sch, rng)
}

func TestFeatDimByConfig(t *testing.T) {
	sch, _ := testSchema(t)
	full := NewPlanEncoder(sch.Cat, FullFeatures())
	sem := NewPlanEncoder(sch.Cat, SemanticOnly())
	st := NewPlanEncoder(sch.Cat, StatsOnly())
	if full.FeatDim() != sem.FeatDim()+st.FeatDim() {
		t.Errorf("full dim %d != semantic %d + stats %d", full.FeatDim(), sem.FeatDim(), st.FeatDim())
	}
	if st.FeatDim() != 2 {
		t.Errorf("stats dim = %d, want 2", st.FeatDim())
	}
}

func TestConfigNames(t *testing.T) {
	if FullFeatures().Name() != "full" || SemanticOnly().Name() != "semantic" ||
		StatsOnly().Name() != "stats" || (FeatureConfig{}).Name() != "none" {
		t.Error("config names wrong")
	}
}

func TestEncodePlanShapeMirrorsTree(t *testing.T) {
	sch, gen := testSchema(t)
	opt := optimizer.New(sch.Cat)
	pe := NewPlanEncoder(sch.Cat, FullFeatures())
	q := gen.QueryWithDims(3)
	p, err := opt.Plan(q, optimizer.NoHint())
	if err != nil {
		t.Fatal(err)
	}
	enc := pe.Encode(p)
	if enc.NumNodes() != p.NumNodes() {
		t.Errorf("encoded nodes %d != plan nodes %d", enc.NumNodes(), p.NumNodes())
	}
	if enc.Depth() != p.Depth() {
		t.Errorf("encoded depth %d != plan depth %d", enc.Depth(), p.Depth())
	}
	for _, n := range enc.Flatten() {
		if len(n.Feat) != pe.FeatDim() {
			t.Fatalf("feature width %d != %d", len(n.Feat), pe.FeatDim())
		}
	}
}

func TestSemanticFeaturesDistinguishOperators(t *testing.T) {
	sch, gen := testSchema(t)
	opt := optimizer.New(sch.Cat)
	pe := NewPlanEncoder(sch.Cat, SemanticOnly())
	q := gen.QueryWithDims(2)
	ph, err := opt.Plan(q, optimizer.HintSet{Name: "h", JoinOps: nil})
	if err != nil {
		t.Fatal(err)
	}
	enc := pe.Encode(ph)
	// Root is a join: its operator one-hot must differ from a leaf's.
	root := enc.Feat
	leaf := enc.Flatten()[len(enc.Flatten())-1].Feat
	same := true
	for i := 0; i < 4; i++ {
		if root[i] != leaf[i] {
			same = false
		}
	}
	if same {
		t.Error("operator one-hot identical for join and scan")
	}
}

func TestStatsFeaturesReflectAnnotations(t *testing.T) {
	sch, gen := testSchema(t)
	opt := optimizer.New(sch.Cat)
	pe := NewPlanEncoder(sch.Cat, StatsOnly())
	q := gen.QueryWithDims(2)
	p, err := opt.Plan(q, optimizer.NoHint())
	if err != nil {
		t.Fatal(err)
	}
	enc := pe.Encode(p)
	for _, n := range enc.Flatten() {
		for _, v := range n.Feat {
			if v < 0 {
				t.Errorf("stats feature negative: %v", v)
			}
		}
	}
	// Zeroing the annotations must change the stats features.
	p2 := p.Clone()
	p2.Walk(func(n *plan.Node) { n.EstRows, n.EstCost = 0, 0 })
	f1, f2 := enc.Feat, pe.Encode(p2).Feat
	same := true
	for i := range f1 {
		if f1[i] != f2[i] {
			same = false
		}
	}
	if same {
		t.Error("stats features ignore plan annotations")
	}
}

func TestPredicateSummaryChangesWithFilters(t *testing.T) {
	sch, gen := testSchema(t)
	opt := optimizer.New(sch.Cat)
	pe := NewPlanEncoder(sch.Cat, SemanticOnly())
	qa := gen.SelectionQuery(1, false)
	qb := gen.SelectionQuery(3, false)
	pa, err := opt.Plan(qa, optimizer.NoHint())
	if err != nil {
		t.Fatal(err)
	}
	pb, err := opt.Plan(qb, optimizer.NoHint())
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := pe.Encode(pa).Feat, pe.Encode(pb).Feat
	d := pe.FeatDim()
	// Predicate-count slot is the 3rd from the end.
	if fa[d-3] >= fb[d-3] {
		t.Errorf("predicate count feature: 1-pred %v vs 3-pred %v", fa[d-3], fb[d-3])
	}
}

func TestQueryFeatureVectorStableWidth(t *testing.T) {
	sch, gen := testSchema(t)
	pe := NewPlanEncoder(sch.Cat, FullFeatures())
	for dims := 1; dims <= 3; dims++ {
		q := gen.QueryWithDims(dims)
		v := pe.QueryFeatureVector(q, 6)
		if len(v) != pe.FeatDim()*6 {
			t.Errorf("dims=%d: vector len %d, want %d", dims, len(v), pe.FeatDim()*6)
		}
	}
}

func TestEncodeQueryScans(t *testing.T) {
	sch, gen := testSchema(t)
	pe := NewPlanEncoder(sch.Cat, FullFeatures())
	q := gen.QueryWithDims(3) // 4 tables → 4 leaves → 7 nodes in a chain
	enc := pe.EncodeQueryScans(q)
	if enc.NumNodes() != 7 {
		t.Errorf("scan chain nodes = %d, want 7", enc.NumNodes())
	}
}

func TestPred01(t *testing.T) {
	if Pred01(-1) != 0 || Pred01(2) != 1 || Pred01(0.5) != 0.5 {
		t.Error("Pred01 wrong")
	}
}
