// Package planrep implements the query-plan representation foundation of
// §3.1: feature encoding of physical plan nodes into vectors, which the tree
// models of internal/tree aggregate into a plan representation.
//
// Following the paper's taxonomy, node features split into two groups:
//
//   - semantic features: operator type, table identity, predicate workload —
//     what the node does;
//   - database statistics: optimizer cardinality and cost estimates derived
//     from metadata — what the database knows about the node.
//
// The comparative study of [57] (reproduced in planrep/study) interchanges
// feature groups and tree models independently; FeatureConfig is that axis.
//
// # Determinism and parallelism
//
// Feature encoding is a pure function of the plan and the catalog, so the
// study harness (planrep/study) encodes plan trees in parallel through an
// mlmath.Pool and evaluates test plans through tree.Regressor.PredictBatch —
// both bit-identical to their serial loops for every worker count. Model
// training inside the study stays serial (see the package tree
// documentation), so study results depend only on the seed, never on the
// machine's core count.
package planrep
