package planrep

import (
	"math"

	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/tree"
)

// FeatureConfig selects which feature groups are encoded.
type FeatureConfig struct {
	// Semantic enables operator/table/predicate features.
	Semantic bool
	// Stats enables optimizer-estimate features (EstRows, EstCost).
	Stats bool
	// MaxTables bounds the table one-hot width (tables beyond it share the
	// overflow slot).
	MaxTables int
	// NoTableIdentity drops the table one-hot from the semantic group,
	// keeping only database-agnostic features — the disentanglement that
	// makes pretrained models transfer across databases (§3.1, zero-shot
	// learning).
	NoTableIdentity bool
	// NoPredicates drops the predicate-summary features from the semantic
	// group: the node is described only by operator and table identity, as
	// in early coarse featurizations. The comparative study uses this as
	// its information-poor feature configuration.
	NoPredicates bool
}

// FullFeatures enables both groups.
func FullFeatures() FeatureConfig { return FeatureConfig{Semantic: true, Stats: true, MaxTables: 16} }

// SemanticOnly enables only semantic features.
func SemanticOnly() FeatureConfig { return FeatureConfig{Semantic: true, MaxTables: 16} }

// StatsOnly enables only database-statistics features.
func StatsOnly() FeatureConfig { return FeatureConfig{Stats: true, MaxTables: 16} }

// MinimalFeatures encodes only operator and table identity — no predicates,
// no statistics.
func MinimalFeatures() FeatureConfig {
	return FeatureConfig{Semantic: true, MaxTables: 16, NoPredicates: true}
}

// TransferFeatures enables both groups but drops database-specific table
// identity — the representation used for cross-database pretraining.
func TransferFeatures() FeatureConfig {
	return FeatureConfig{Semantic: true, Stats: true, MaxTables: 16, NoTableIdentity: true}
}

// Name returns a short label for experiment reports.
func (c FeatureConfig) Name() string {
	switch {
	case c.Semantic && c.Stats && c.NoTableIdentity:
		return "transfer"
	case c.Semantic && c.Stats:
		return "full"
	case c.Semantic && c.NoPredicates:
		return "minimal"
	case c.Semantic:
		return "semantic"
	case c.Stats:
		return "stats"
	default:
		return "none"
	}
}

const numOps = 5 // SeqScan, HashJoin, NLJoin, MergeJoin, IndexScan

// PlanEncoder converts physical plan nodes into feature-annotated EncTrees.
type PlanEncoder struct {
	Cat *catalog.Catalog
	Cfg FeatureConfig
	// logRowNorm normalizes log-cardinalities; set from the largest table.
	logRowNorm float64
}

// NewPlanEncoder builds an encoder over the catalog.
func NewPlanEncoder(cat *catalog.Catalog, cfg FeatureConfig) *PlanEncoder {
	if cfg.MaxTables <= 0 {
		cfg.MaxTables = 16
	}
	maxRows := 1
	for _, t := range cat.Tables {
		if t.NumRows() > maxRows {
			maxRows = t.NumRows()
		}
	}
	return &PlanEncoder{Cat: cat, Cfg: cfg, logRowNorm: math.Log(float64(maxRows) + 1)}
}

// FeatDim returns the per-node feature width.
func (pe *PlanEncoder) FeatDim() int {
	d := 0
	if pe.Cfg.Semantic {
		d += numOps // operator one-hot
		if !pe.Cfg.NoPredicates {
			d += 3 // predicate summary
		}
		if !pe.Cfg.NoTableIdentity {
			d += pe.Cfg.MaxTables + 1 // table one-hot + overflow slot
		}
	}
	if pe.Cfg.Stats {
		d += 2
	}
	if d == 0 {
		d = 1 // degenerate config still needs nonzero width
	}
	return d
}

// Encode converts the plan subtree into an EncTree with one feature vector
// per node. Stats features require the plan to have been annotated by the
// optimizer.
func (pe *PlanEncoder) Encode(n *plan.Node) *tree.EncTree {
	t := &tree.EncTree{Feat: pe.nodeFeatures(n)}
	if len(n.Children) > 0 {
		t.Left = pe.Encode(n.Children[0])
	}
	if len(n.Children) > 1 {
		t.Right = pe.Encode(n.Children[1])
	}
	return t
}

func (pe *PlanEncoder) nodeFeatures(n *plan.Node) []float64 {
	f := make([]float64, 0, pe.FeatDim())
	if pe.Cfg.Semantic {
		// Operator one-hot.
		op := make([]float64, numOps)
		if int(n.Op) < numOps {
			op[int(n.Op)] = 1
		}
		f = append(f, op...)
		if !pe.Cfg.NoTableIdentity {
			// Table one-hot with overflow slot (joins leave it zero).
			tbl := make([]float64, pe.Cfg.MaxTables+1)
			if n.IsLeaf() {
				if n.TableID < pe.Cfg.MaxTables {
					tbl[n.TableID] = 1
				} else {
					tbl[pe.Cfg.MaxTables] = 1
				}
			}
			f = append(f, tbl...)
		}
		if !pe.Cfg.NoPredicates {
			// Predicate summary: count, mean normalized center, mean
			// normalized width over the node's filters.
			f = append(f, pe.predSummary(n)...)
		}
	}
	if pe.Cfg.Stats {
		f = append(f,
			math.Log(n.EstRows+1)/pe.logRowNorm,
			math.Log(n.EstCost+1)/(pe.logRowNorm+math.Log(10)),
		)
	}
	if len(f) == 0 {
		f = append(f, 1)
	}
	return f
}

func (pe *PlanEncoder) predSummary(n *plan.Node) []float64 {
	if !n.IsLeaf() || len(n.Filters) == 0 {
		return []float64{0, 0, 0}
	}
	t := pe.Cat.Table(n.TableID)
	var centers, widths float64
	for _, p := range n.Filters {
		lo, hi := domainOf(t, p.Col)
		span := float64(hi-lo) + 1
		plo, phi, ok := p.Range(lo, hi)
		if !ok {
			plo, phi = lo, hi
		}
		if plo < lo {
			plo = lo
		}
		if phi > hi {
			phi = hi
		}
		centers += (float64(plo+phi)/2 - float64(lo)) / span
		widths += (float64(phi-plo) + 1) / span
	}
	k := float64(len(n.Filters))
	return []float64{k / 4, centers / k, widths / k}
}

func domainOf(t *catalog.Table, col int) (int64, int64) {
	if st := t.Columns[col].Stats; st != nil && st.Count > 0 {
		return st.Min, st.Max
	}
	return 0, 1
}

// EncodeQueryScans encodes only the scan leaves of a query as a left-deep
// chain (used by models that represent queries rather than plans, e.g. the
// bandit context of BAO variants).
func (pe *PlanEncoder) EncodeQueryScans(q *plan.Query) *tree.EncTree {
	var root *tree.EncTree
	for pos := range q.Tables {
		scan := plan.NewScan(pos, q.Tables[pos], q.Filters[pos])
		leaf := &tree.EncTree{Feat: pe.nodeFeatures(scan)}
		if root == nil {
			root = leaf
		} else {
			root = &tree.EncTree{Feat: make([]float64, pe.FeatDim()), Left: root, Right: leaf}
		}
	}
	if root == nil {
		root = &tree.EncTree{Feat: make([]float64, pe.FeatDim())}
	}
	return root
}

// QueryFeatureVector flattens a query's scans into a single fixed-size
// context vector of width FeatDim()*maxTables — the contextual-bandit
// feature map used by BAO (§3.2).
func (pe *PlanEncoder) QueryFeatureVector(q *plan.Query, maxTables int) []float64 {
	out := make([]float64, pe.FeatDim()*maxTables)
	for pos := range q.Tables {
		if pos >= maxTables {
			break
		}
		scan := plan.NewScan(pos, q.Tables[pos], q.Filters[pos])
		copy(out[pos*pe.FeatDim():(pos+1)*pe.FeatDim()], pe.nodeFeatures(scan))
	}
	return out
}

// JoinCount is a convenience feature used by several models.
func JoinCount(q *plan.Query) int { return len(q.Joins) }

// Pred01 clamps a feature to [0, 1].
func Pred01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
