package mlindex

import (
	"ml4db/internal/mlmath"
	"ml4db/internal/rl"
	"ml4db/internal/spatial"
)

// RLRTree is an RLR-tree (Gu et al.): an ordinary R-tree whose chooseSubtree
// and splitNode decisions are made by reinforcement-learned action-value
// functions over decision features. The tree structure, query algorithms,
// and exactness guarantees are untouched — only the insertion heuristics are
// learned.
type RLRTree struct {
	Tree *spatial.RTree
	// ChooseAgent scores candidate subtrees; SplitAgent scores candidate
	// split plans.
	ChooseAgent *rl.ActionValue
	SplitAgent  *rl.ActionValue

	rng *mlmath.RNG
	// refQueries are sampled reference queries used for reward signals
	// during training.
	refQueries []spatial.Rect
	training   bool
	// pendingChoices/pendingSplits buffer the current insert's decision
	// features so the post-insert reward can update all of them.
	pendingChoices [][]float64
	pendingSplits  [][]float64
}

const (
	chooseFeatDim = 5
	splitFeatDim  = 4
)

// NewRLRTree returns an RLR-tree with the given node capacity. The agents
// are initialized to imitate the classical heuristics (minimum enlargement
// for chooseSubtree, minimum overlap+area for splitNode), so the untrained
// policy matches Guttman and learning adjusts the weighting — the safe
// bootstrap the ML-enhanced paradigm affords.
func NewRLRTree(maxEntries int, rng *mlmath.RNG) *RLRTree {
	r := &RLRTree{
		Tree:        spatial.NewRTree(maxEntries),
		ChooseAgent: rl.NewActionValue(chooseFeatDim, rng),
		SplitAgent:  rl.NewActionValue(splitFeatDim, rng),
		rng:         rng,
	}
	// Guttman prior: features are negated costs, so positive weights prefer
	// low cost; enlargement dominates, then overlap, then area.
	copy(r.ChooseAgent.W, []float64{100, 50, 1, 0.1, 1})
	copy(r.SplitAgent.W, []float64{50, 100, 10, 1})
	r.ChooseAgent.Eps = 0.05
	r.SplitAgent.Eps = 0.05
	r.ChooseAgent.Alpha = 0.01
	r.SplitAgent.Alpha = 0.01
	r.Tree.Choose = r.chooseSubtree
	r.Tree.Split = r.splitNode
	return r
}

// chooseFeatures builds the per-candidate feature vector: area enlargement,
// resulting overlap increase with siblings, current area, occupancy, and
// perimeter increase — the signals classical heuristics weigh by fiat and
// the agent weighs by learning.
func chooseFeatures(n *spatial.RNode, r spatial.Rect) [][]float64 {
	feats := make([][]float64, len(n.Entries))
	for i, e := range n.Entries {
		grown := e.Rect.Union(r)
		overlapInc := 0.0
		for j, o := range n.Entries {
			if j == i {
				continue
			}
			overlapInc += grown.OverlapArea(o.Rect) - e.Rect.OverlapArea(o.Rect)
		}
		occ := 0.0
		if e.Child != nil {
			occ = float64(len(e.Child.Entries))
		}
		feats[i] = []float64{
			-e.Rect.Enlargement(r),
			-overlapInc,
			-e.Rect.Area(),
			-occ / 64,
			-(grown.Perimeter() - e.Rect.Perimeter()),
		}
	}
	return feats
}

func (t *RLRTree) chooseSubtree(n *spatial.RNode, r spatial.Rect) int {
	feats := chooseFeatures(n, r)
	if t.training {
		a := t.ChooseAgent.Choose(feats)
		t.pendingChoices = append(t.pendingChoices, feats[a])
		return a
	}
	return t.ChooseAgent.Best(feats)
}

// splitPlans enumerates candidate splits: sort by x or y center, cut at 40%,
// 50%, or 60%.
func splitPlans(entries []spatial.REntry) ([][2][]spatial.REntry, [][]float64) {
	var plans [][2][]spatial.REntry
	var feats [][]float64
	for _, byX := range []bool{true, false} {
		sorted := append([]spatial.REntry(nil), entries...)
		sortEntriesByCenter(sorted, byX)
		for _, frac := range []float64{0.4, 0.5, 0.6} {
			cut := int(frac * float64(len(sorted)))
			if cut < 1 {
				cut = 1
			}
			if cut >= len(sorted) {
				cut = len(sorted) - 1
			}
			l := append([]spatial.REntry(nil), sorted[:cut]...)
			r := append([]spatial.REntry(nil), sorted[cut:]...)
			lm, rm := entriesMBR(l), entriesMBR(r)
			plans = append(plans, [2][]spatial.REntry{l, r})
			feats = append(feats, []float64{
				-(lm.Area() + rm.Area()),
				-lm.OverlapArea(rm),
				-(lm.Perimeter() + rm.Perimeter()),
				-absf(float64(len(l)-len(r))) / float64(len(entries)),
			})
		}
	}
	return plans, feats
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func sortEntriesByCenter(es []spatial.REntry, byX bool) {
	key := func(e spatial.REntry) float64 {
		c := e.Rect.Center()
		if byX {
			return c.X
		}
		return c.Y
	}
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && key(es[j]) < key(es[j-1]); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func entriesMBR(es []spatial.REntry) spatial.Rect {
	m := es[0].Rect
	for _, e := range es[1:] {
		m = m.Union(e.Rect)
	}
	return m
}

func (t *RLRTree) splitNode(entries []spatial.REntry) ([]spatial.REntry, []spatial.REntry) {
	plans, feats := splitPlans(entries)
	var a int
	if t.training {
		a = t.SplitAgent.Choose(feats)
		t.pendingSplits = append(t.pendingSplits, feats[a])
	} else {
		a = t.SplitAgent.Best(feats)
	}
	return plans[a][0], plans[a][1]
}

// Insert adds an item using the learned policies.
func (t *RLRTree) Insert(r spatial.Rect, id int) { t.Tree.Insert(r, id) }

// Range and KNN delegate to the host R-tree.
func (t *RLRTree) Range(q spatial.Rect) ([]int, int) { return t.Tree.Range(q) }

// KNN delegates to the host R-tree.
func (t *RLRTree) KNN(p spatial.Point, k int) ([]int, int) { return t.Tree.KNN(p, k) }

// Name implements part of the SpatialIndex surface.
func (t *RLRTree) Name() string { return "rlrtree" }

// SizeBytes reports the host structure plus the two weight vectors.
func (t *RLRTree) SizeBytes() int { return t.Tree.SizeBytes() + (chooseFeatDim+splitFeatDim)*8 }

// Train builds the tree over training items while learning the insertion
// policies: after each insert, the negative node-access count of a sampled
// reference query near the inserted item is the reward for every decision
// that insert made. This couples the policy to the actual query cost it
// causes — the RLR-tree objective.
func (t *RLRTree) Train(items []spatial.Item, refQueries []spatial.Rect, epochs int) {
	t.refQueries = refQueries
	for e := 0; e < epochs; e++ {
		t.Tree = spatial.NewRTree(t.Tree.MaxEntries)
		t.Tree.Choose = t.chooseSubtree
		t.Tree.Split = t.splitNode
		t.training = true
		// baseline is an exponential moving average of query work; rewards
		// are advantages against it so only better/worse-than-usual
		// decisions move the weights.
		baseline := 0.0
		seen := 0
		for _, it := range items {
			t.pendingChoices = t.pendingChoices[:0]
			t.pendingSplits = t.pendingSplits[:0]
			t.Insert(it.Rect, it.ID)
			// Reward signal: work of a reference query intersecting the
			// inserted item's region (the insert's structural damage shows
			// up exactly there).
			q := t.relevantQuery(it.Rect)
			_, work := t.Tree.Range(q)
			w := float64(work)
			if seen == 0 {
				baseline = w
			}
			seen++
			advantage := (baseline - w) / (baseline + 1)
			baseline = 0.95*baseline + 0.05*w
			for _, f := range t.pendingChoices {
				t.ChooseAgent.Update(f, t.ChooseAgent.Score(f)+advantage, 0)
			}
			for _, f := range t.pendingSplits {
				t.SplitAgent.Update(f, t.SplitAgent.Score(f)+advantage, 0)
			}
		}
		t.training = false
		// Decay exploration between epochs.
		t.ChooseAgent.Eps *= 0.5
		t.SplitAgent.Eps *= 0.5
	}
	// Greedy rebuild with the learned weights (no exploration noise), then
	// validate against the classical prior and fall back if the learned
	// policy lost — the safety property ML-enhanced methods retain.
	learned := t.rebuild(items)
	learnedWork := workloadWork(learned, refQueries)
	priorChoose, priorSplit := mlmath.Clone(t.ChooseAgent.W), mlmath.Clone(t.SplitAgent.W)
	copy(t.ChooseAgent.W, []float64{100, 50, 1, 0.1, 1})
	copy(t.SplitAgent.W, []float64{50, 100, 10, 1})
	prior := t.rebuild(items)
	if workloadWork(prior, refQueries) < learnedWork {
		t.Tree = prior
		return
	}
	copy(t.ChooseAgent.W, priorChoose)
	copy(t.SplitAgent.W, priorSplit)
	t.Tree = learned
}

// rebuild constructs a fresh tree with the current (greedy) policies.
func (t *RLRTree) rebuild(items []spatial.Item) *spatial.RTree {
	tree := spatial.NewRTree(t.Tree.MaxEntries)
	tree.Choose = t.chooseSubtree
	tree.Split = t.splitNode
	old := t.Tree
	t.Tree = tree
	for _, it := range items {
		tree.Insert(it.Rect, it.ID)
	}
	t.Tree = old
	return tree
}

func workloadWork(tree *spatial.RTree, queries []spatial.Rect) int {
	w := 0
	for _, q := range queries {
		_, wi := tree.Range(q)
		w += wi
	}
	return w
}

// relevantQuery picks a reference query overlapping r when one exists.
func (t *RLRTree) relevantQuery(r spatial.Rect) spatial.Rect {
	for tries := 0; tries < 8; tries++ {
		q := t.refQueries[t.rng.Intn(len(t.refQueries))]
		if q.Intersects(r) {
			return q
		}
	}
	// Fall back to a window around the item.
	c := r.Center()
	return spatial.Rect{MinX: c.X - 0.05, MinY: c.Y - 0.05, MaxX: c.X + 0.05, MaxY: c.Y + 0.05}
}
