package mlindex

import (
	"ml4db/internal/mlmath"
	"ml4db/internal/nn"
	"ml4db/internal/spatial"
)

// AIRTree is an "AI + R"-tree (Abdullah-Al-Mamun et al.): an ordinary R-tree
// augmented with a learned access path. The AI-tree component turns range
// search into leaf classification — a trained mapping from query regions to
// the leaf nodes that can contain results — and a learned router sends each
// query down whichever path (AI or R) is predicted cheaper. High-overlap
// queries benefit from skipping extraneous internal-node traversal; low-
// overlap queries stay on the classical R-tree.
type AIRTree struct {
	Tree *spatial.RTree
	// leaves are the host tree's leaf nodes; the AI path addresses them
	// directly.
	leaves []*spatial.RNode
	// grid[c] lists the leaves whose MBR intersects cell c — the
	// classification table of the AI-tree (a degenerate but exact
	// multi-label classifier over query cells).
	grid     [][]int32
	gridSide int
	// Router predicts P(AI path cheaper) from query features.
	Router *nn.MLP
}

// NewAIRTree wraps a bulk-loaded R-tree over the items.
func NewAIRTree(items []spatial.Item, leafCap, gridSide int, rng *mlmath.RNG) *AIRTree {
	t := &AIRTree{
		Tree:     spatial.STRBulkLoad(items, leafCap),
		gridSide: gridSide,
		Router:   nn.NewMLP([]int{4, 12, 1}, nn.Tanh{}, nn.Sigmoid{}, rng),
	}
	t.collectLeaves()
	t.buildGrid()
	return t
}

func (t *AIRTree) collectLeaves() {
	var walk func(n *spatial.RNode)
	walk = func(n *spatial.RNode) {
		if n.Leaf {
			t.leaves = append(t.leaves, n)
			return
		}
		for _, e := range n.Entries {
			walk(e.Child)
		}
	}
	walk(t.Tree.Root())
}

func leafMBR(n *spatial.RNode) spatial.Rect {
	m := n.Entries[0].Rect
	for _, e := range n.Entries[1:] {
		m = m.Union(e.Rect)
	}
	return m
}

// buildGrid labels each cell with the leaves whose *items* touch it. This is
// the trained multi-label classifier of the AI-tree: a leaf whose MBR
// overlaps a query but whose items lie elsewhere is never returned — the
// "extraneous leaf accesses" the AI-tree skips.
func (t *AIRTree) buildGrid() {
	g := t.gridSide
	t.grid = make([][]int32, g*g)
	for li, leaf := range t.leaves {
		for _, e := range leaf.Entries {
			x0, y0 := t.cellOf(e.Rect.MinX), t.cellOf(e.Rect.MinY)
			x1, y1 := t.cellOf(e.Rect.MaxX), t.cellOf(e.Rect.MaxY)
			for x := x0; x <= x1; x++ {
				for y := y0; y <= y1; y++ {
					c := y*g + x
					if k := len(t.grid[c]); k > 0 && t.grid[c][k-1] == int32(li) {
						continue
					}
					t.grid[c] = append(t.grid[c], int32(li))
				}
			}
		}
	}
}

func (t *AIRTree) cellOf(v float64) int {
	c := int(v * float64(t.gridSide))
	if c < 0 {
		c = 0
	}
	if c >= t.gridSide {
		c = t.gridSide - 1
	}
	return c
}

// aiRange executes the learned access path: classify the query into
// candidate leaves via the grid, then scan exactly those leaves. work counts
// leaf accesses plus one unit for the classifier inference (the grid lookup
// is an in-memory model evaluation, not storage I/O).
func (t *AIRTree) aiRange(q spatial.Rect) (ids []int, work int) {
	x0, y0 := t.cellOf(q.MinX), t.cellOf(q.MinY)
	x1, y1 := t.cellOf(q.MaxX), t.cellOf(q.MaxY)
	work++ // classifier inference
	seen := make(map[int32]bool)
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			for _, li := range t.grid[y*t.gridSide+x] {
				seen[li] = true
			}
		}
	}
	for li := range seen {
		leaf := t.leaves[li]
		work++
		for _, e := range leaf.Entries {
			if e.Rect.Intersects(q) {
				ids = append(ids, e.ID)
			}
		}
	}
	return ids, work
}

// queryFeatures builds the router's input: width, height, area, and the
// grid-estimated candidate-leaf count (an overlap proxy).
func (t *AIRTree) queryFeatures(q spatial.Rect) []float64 {
	w := q.MaxX - q.MinX
	h := q.MaxY - q.MinY
	cells := float64((t.cellOf(q.MaxX)-t.cellOf(q.MinX))+1) * float64((t.cellOf(q.MaxY)-t.cellOf(q.MinY))+1)
	return []float64{w, h, w * h, cells / float64(t.gridSide*t.gridSide)}
}

// TrainRouter labels training queries by executing both paths and fits the
// router classifier.
func (t *AIRTree) TrainRouter(queries []spatial.Rect, epochs int, rng *mlmath.RNG) {
	var xs, ys [][]float64
	for _, q := range queries {
		_, wAI := t.aiRange(q)
		_, wR := t.Tree.Range(q)
		label := 0.0
		if wAI < wR {
			label = 1
		}
		xs = append(xs, t.queryFeatures(q))
		ys = append(ys, []float64{label})
	}
	t.Router.Fit(xs, ys, nn.FitOptions{Epochs: epochs, BatchSize: 16, Optimizer: nn.NewAdam(0.01), RNG: rng})
}

// Range routes the query to the predicted-cheaper path.
func (t *AIRTree) Range(q spatial.Rect) (ids []int, work int) {
	if t.Router.Predict1(t.queryFeatures(q)) > 0.5 {
		return t.aiRange(q)
	}
	return t.Tree.Range(q)
}

// RangeForced executes a specific path ("ai" or "rtree") for evaluation.
func (t *AIRTree) RangeForced(q spatial.Rect, ai bool) ([]int, int) {
	if ai {
		return t.aiRange(q)
	}
	return t.Tree.Range(q)
}

// KNN delegates to the host tree (the AI path serves range queries).
func (t *AIRTree) KNN(p spatial.Point, k int) ([]int, int) { return t.Tree.KNN(p, k) }

// Name identifies the index.
func (t *AIRTree) Name() string { return "airtree" }

// SizeBytes reports host structure + grid + router.
func (t *AIRTree) SizeBytes() int {
	s := t.Tree.SizeBytes() + nn.ParamCount(t.Router)*8
	for _, cell := range t.grid {
		s += 4 * len(cell)
	}
	return s
}
