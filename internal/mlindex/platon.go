package mlindex

import (
	"sort"

	"ml4db/internal/mlmath"
	"ml4db/internal/rl"
	"ml4db/internal/spatial"
)

// Platon is a PLATON-style top-down R-tree packing with a learned partition
// policy (Yang & Cong): the bulk-loader recursively partitions the item set,
// and at each partition step Monte Carlo Tree Search picks the cut that
// minimizes the expected query cost of the *final* tree under a given query
// workload. STR (workload-oblivious tiling) is the baseline it beats on
// skewed workloads.
type Platon struct {
	// LeafCap is the R-tree node capacity.
	LeafCap int
	// Budget is the MCTS simulation budget per partition decision. PLATON's
	// contribution includes making this affordable; the ablation bench
	// varies it.
	Budget int

	rng *mlmath.RNG
}

// NewPlaton returns a packer with the given leaf capacity and MCTS budget.
func NewPlaton(leafCap, budget int, rng *mlmath.RNG) *Platon {
	if leafCap < 4 {
		leafCap = 4
	}
	if budget < 8 {
		budget = 8
	}
	return &Platon{LeafCap: leafCap, Budget: budget, rng: rng}
}

// platonCuts is the binary-cut action set per partition step: axis ×
// quantile. One extra action (index len(platonCuts)) finishes the partition
// with STR tiling, so the learned policy can never do worse than the
// classical packer it enhances.
var platonCuts = []struct {
	byX  bool
	frac float64
}{
	{true, 0.25}, {true, 0.5}, {true, 0.75},
	{false, 0.25}, {false, 0.5}, {false, 0.75},
}

var platonSTRAction = len(platonCuts)

// partitionState is the MCTS state: a queue of pending partitions; the next
// action cuts the first pending partition that exceeds the leaf capacity.
type partitionState struct {
	pending  [][]spatial.Item // partitions still above capacity
	done     []spatial.Rect   // MBRs of finished (leaf-sized) partitions
	leafCap  int
	workload []spatial.Rect
}

// NumActions implements rl.State.
func (s *partitionState) NumActions() int {
	if len(s.pending) == 0 {
		return 0
	}
	return len(platonCuts) + 1 // cuts plus STR-finish
}

// Apply implements rl.State.
func (s *partitionState) Apply(a int) rl.State {
	next := &partitionState{
		pending:  append([][]spatial.Item{}, s.pending[1:]...),
		done:     append([]spatial.Rect{}, s.done...),
		leafCap:  s.leafCap,
		workload: s.workload,
	}
	if a == platonSTRAction {
		for _, g := range spatial.STRGroups(s.pending[0], s.leafCap) {
			next.done = append(next.done, itemsMBR(g))
		}
		return next
	}
	left, right := cutItems(s.pending[0], platonCuts[a].byX, platonCuts[a].frac)
	next.push(left)
	next.push(right)
	return next
}

func (s *partitionState) push(items []spatial.Item) {
	if len(items) == 0 {
		return
	}
	if len(items) <= s.leafCap {
		s.done = append(s.done, itemsMBR(items))
		return
	}
	s.pending = append(s.pending, items)
}

// Rollout implements rl.State: finish all pending partitions with the
// longest-axis median-cut heuristic (a strong default policy, so MCTS
// evaluates each candidate cut against competent completions) and return
// the negative workload cost of the resulting leaves.
func (s *partitionState) Rollout(_ *mlmath.RNG) float64 {
	done := append([]spatial.Rect{}, s.done...)
	for _, items := range s.pending {
		for _, g := range spatial.STRGroups(items, s.leafCap) {
			done = append(done, itemsMBR(g))
		}
	}
	return -leafWorkloadCost(done, s.workload)
}

// leafWorkloadCost counts leaf accesses: Σ over queries of the number of
// leaf MBRs intersected.
func leafWorkloadCost(leaves []spatial.Rect, workload []spatial.Rect) float64 {
	cost := 0
	for _, q := range workload {
		for _, l := range leaves {
			if l.Intersects(q) {
				cost++
			}
		}
	}
	return float64(cost)
}

func cutItems(items []spatial.Item, byX bool, frac float64) (left, right []spatial.Item) {
	sorted := append([]spatial.Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		ci, cj := sorted[i].Rect.Center(), sorted[j].Rect.Center()
		if byX {
			return ci.X < cj.X
		}
		return ci.Y < cj.Y
	})
	cut := int(frac * float64(len(sorted)))
	if cut < 1 {
		cut = 1
	}
	if cut >= len(sorted) {
		cut = len(sorted) - 1
	}
	return sorted[:cut], sorted[cut:]
}

func itemsMBR(items []spatial.Item) spatial.Rect {
	m := items[0].Rect
	for _, it := range items[1:] {
		m = m.Union(it.Rect)
	}
	return m
}

// Pack builds an R-tree over the items, choosing each top-down partition cut
// by MCTS against the workload.
func (p *Platon) Pack(items []spatial.Item, workload []spatial.Rect) *spatial.RTree {
	if len(items) == 0 {
		return spatial.NewRTree(p.LeafCap)
	}
	// Decide cuts sequentially, re-running MCTS from each reached state.
	// PLATON's complexity optimizations restrict the expensive search to
	// where it matters; here MCTS handles partitions above mctsFloor and
	// the strong heuristic finishes the small ones — keeping total packing
	// time near-linear.
	mctsFloor := 4 * p.LeafCap
	var leaves [][]spatial.Item
	type part struct{ items []spatial.Item }
	queue := []part{{items}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if len(cur.items) <= p.LeafCap {
			leaves = append(leaves, cur.items)
			continue
		}
		if len(cur.items) >= mctsFloor {
			state := &partitionState{
				pending:  [][]spatial.Item{cur.items},
				leafCap:  p.LeafCap,
				workload: workload,
			}
			m := rl.NewMCTS(p.Budget, p.rng)
			a := m.Search(state)
			if a == platonSTRAction {
				leaves = append(leaves, spatial.STRGroups(cur.items, p.LeafCap)...)
				continue
			}
			left, right := cutItems(cur.items, platonCuts[a].byX, platonCuts[a].frac)
			queue = append(queue, part{left}, part{right})
			continue
		}
		leaves = append(leaves, spatial.STRGroups(cur.items, p.LeafCap)...)
	}
	return packLeaves(leaves, p.LeafCap)
}

// packLeaves assembles an R-tree from pre-partitioned leaves, packing upper
// levels with STR grouping over leaf MBR centers.
func packLeaves(leafItems [][]spatial.Item, cap int) *spatial.RTree {
	t := spatial.NewRTree(cap)
	var level []*spatial.RNode
	total := 0
	for _, items := range leafItems {
		n := &spatial.RNode{Leaf: true}
		for _, it := range items {
			n.Entries = append(n.Entries, spatial.REntry{Rect: it.Rect, ID: it.ID})
		}
		total += len(items)
		level = append(level, n)
	}
	nNodes := len(level)
	for len(level) > 1 {
		// Tile the level with STR so upper nodes stay square.
		items := make([]spatial.Item, len(level))
		for i, c := range level {
			items[i] = spatial.Item{Rect: nodeMBR(c), ID: i}
		}
		var up []*spatial.RNode
		for _, g := range spatial.STRGroups(items, cap) {
			n := &spatial.RNode{}
			for _, it := range g {
				child := level[it.ID]
				n.Entries = append(n.Entries, spatial.REntry{Rect: nodeMBR(child), Child: child})
			}
			up = append(up, n)
		}
		nNodes += len(up)
		level = up
	}
	t.SetRoot(level[0], total, nNodes)
	return t
}

func nodeMBR(n *spatial.RNode) spatial.Rect {
	m := n.Entries[0].Rect
	for _, e := range n.Entries[1:] {
		m = m.Union(e.Rect)
	}
	return m
}
