package mlindex

import (
	"sort"
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/spatial"
)

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func clusteredData(seed uint64, n int) ([]spatial.Point, []spatial.Item, []spatial.Rect) {
	rng := mlmath.NewRNG(seed)
	pts := spatial.GenPoints(rng, spatial.PointsClustered, n)
	items := spatial.PointItems(pts)
	queries := spatial.GenQueryRects(rng, pts, 60, 0.06)
	return pts, items, queries
}

func totalWork(ix interface {
	Range(spatial.Rect) ([]int, int)
}, queries []spatial.Rect) int {
	w := 0
	for _, q := range queries {
		_, wi := ix.Range(q)
		w += wi
	}
	return w
}

func TestRLRTreeCorrectness(t *testing.T) {
	pts, items, queries := clusteredData(1, 3000)
	_ = pts
	rng := mlmath.NewRNG(2)
	rlr := NewRLRTree(16, rng)
	rlr.Train(items, queries, 2)
	if !rlr.Tree.CheckInvariants() {
		t.Fatal("RLR-tree violates R-tree invariants")
	}
	for _, q := range queries[:20] {
		got, _ := rlr.Range(q)
		want := spatial.BruteForceRange(items, q)
		if !sameIDs(got, want) {
			t.Fatalf("range mismatch: got %d want %d", len(got), len(want))
		}
	}
}

func TestRLRTreeCompetitiveWithGuttman(t *testing.T) {
	_, items, queries := clusteredData(3, 4000)
	rng := mlmath.NewRNG(4)
	rlr := NewRLRTree(16, rng)
	rlr.Train(items, queries, 3)

	base := spatial.NewRTree(16)
	for _, it := range items {
		base.Insert(it.Rect, it.ID)
	}
	wRLR := totalWork(rlr, queries)
	wBase := totalWork(base, queries)
	// The learned policy must not be materially worse than Guttman on the
	// training workload; the benchmark records the actual ratio.
	if float64(wRLR) > 1.15*float64(wBase) {
		t.Errorf("RLR-tree work %d vs Guttman %d (ratio %.2f)", wRLR, wBase, float64(wRLR)/float64(wBase))
	}
}

func TestPlatonCorrectnessAndWorkloadAwareness(t *testing.T) {
	rng := mlmath.NewRNG(5)
	pts := spatial.GenPoints(rng, spatial.PointsSkewed, 3000)
	items := spatial.PointItems(pts)
	// Workload concentrated in a hot sub-region.
	var workload []spatial.Rect
	for i := 0; i < 40; i++ {
		cx, cy := rng.Float64()*0.2, rng.Float64()*0.2
		workload = append(workload, spatial.Rect{MinX: cx, MinY: cy, MaxX: cx + 0.05, MaxY: cy + 0.05})
	}
	p := NewPlaton(16, 64, rng)
	tree := p.Pack(items, workload)
	if !tree.CheckInvariants() {
		t.Fatal("PLATON tree violates invariants")
	}
	if tree.Len() != len(items) {
		t.Fatalf("packed %d items, want %d", tree.Len(), len(items))
	}
	for _, q := range workload[:10] {
		got, _ := tree.Range(q)
		want := spatial.BruteForceRange(items, q)
		if !sameIDs(got, want) {
			t.Fatalf("PLATON range mismatch: got %d want %d", len(got), len(want))
		}
	}
	// Workload-aware packing should beat STR on its training workload.
	str := spatial.STRBulkLoad(items, 16)
	wP := totalWork(tree, workload)
	wS := totalWork(str, workload)
	if float64(wP) > 1.1*float64(wS) {
		t.Errorf("PLATON work %d vs STR %d on trained workload", wP, wS)
	}
}

func TestRWTreeCorrectnessAndAwareness(t *testing.T) {
	rng := mlmath.NewRNG(6)
	pts := spatial.GenPoints(rng, spatial.PointsClustered, 3000)
	items := spatial.PointItems(pts)
	workload := spatial.GenQueryRects(rng, pts, 80, 0.05)
	rw := NewRWTree(16, workload)
	for _, it := range items {
		rw.Insert(it.Rect, it.ID)
	}
	if !rw.Tree.CheckInvariants() {
		t.Fatal("RW-tree violates invariants")
	}
	for _, q := range workload[:15] {
		got, _ := rw.Range(q)
		want := spatial.BruteForceRange(items, q)
		if !sameIDs(got, want) {
			t.Fatalf("RW-tree range mismatch")
		}
	}
	base := spatial.NewRTree(16)
	for _, it := range items {
		base.Insert(it.Rect, it.ID)
	}
	wRW := totalWork(rw, workload)
	wBase := totalWork(base, workload)
	if float64(wRW) > 1.15*float64(wBase) {
		t.Errorf("RW-tree work %d vs base %d", wRW, wBase)
	}
}

func TestAIRTreeRoutingAndCorrectness(t *testing.T) {
	rng := mlmath.NewRNG(7)
	items := spatial.GenRects(rng, 4000, 0.04) // overlapping rectangles
	air := NewAIRTree(items, 16, 48, rng)
	// Training queries: mix of large (high-overlap) and small.
	var trainQ []spatial.Rect
	for i := 0; i < 60; i++ {
		cx, cy := rng.Float64(), rng.Float64()
		side := 0.01
		if i%2 == 0 {
			side = 0.3
		}
		trainQ = append(trainQ, spatial.Rect{MinX: cx, MinY: cy, MaxX: cx + side, MaxY: cy + side})
	}
	air.TrainRouter(trainQ, 60, rng)
	// Correctness on both paths.
	for _, q := range trainQ[:10] {
		want := spatial.BruteForceRange(items, q)
		gotAI, _ := air.RangeForced(q, true)
		gotR, _ := air.RangeForced(q, false)
		gotRouted, _ := air.Range(q)
		if !sameIDs(gotAI, want) || !sameIDs(gotR, want) || !sameIDs(gotRouted, want) {
			t.Fatalf("AI+R path results disagree with brute force")
		}
	}
	// The routed path should be no worse than always-R-tree overall.
	var wRouted, wR int
	for _, q := range trainQ {
		_, w1 := air.Range(q)
		_, w2 := air.RangeForced(q, false)
		wRouted += w1
		wR += w2
	}
	if float64(wRouted) > 1.05*float64(wR) {
		t.Errorf("routing work %d worse than pure R-tree %d", wRouted, wR)
	}
}

func TestAIRTreeHighOverlapBenefit(t *testing.T) {
	rng := mlmath.NewRNG(8)
	items := spatial.GenRects(rng, 5000, 0.05)
	air := NewAIRTree(items, 16, 48, rng)
	// Large queries: the AI path should beat the R-tree path on average.
	var wAI, wR int
	for i := 0; i < 30; i++ {
		cx, cy := rng.Float64()*0.6, rng.Float64()*0.6
		q := spatial.Rect{MinX: cx, MinY: cy, MaxX: cx + 0.25, MaxY: cy + 0.25}
		_, w1 := air.RangeForced(q, true)
		_, w2 := air.RangeForced(q, false)
		wAI += w1
		wR += w2
	}
	if wAI >= wR {
		t.Errorf("AI path work %d should beat R-tree %d on high-overlap queries", wAI, wR)
	}
}

func TestPiecewiseCurveLearningReducesSpan(t *testing.T) {
	rng := mlmath.NewRNG(9)
	pts := spatial.GenPoints(rng, spatial.PointsUniform, 3000)
	// Workload: thin horizontal slabs (hostile to plain Z-order).
	var workload []spatial.Rect
	for i := 0; i < 40; i++ {
		y := rng.Float64() * 0.9
		workload = append(workload, spatial.Rect{MinX: 0.05, MinY: y, MaxX: 0.95, MaxY: y + 0.04})
	}
	zOnly := BuildPiecewiseCurve(pts, workload, 8, 0, rng) // no learning
	learned := BuildPiecewiseCurve(pts, workload, 8, 4000, mlmath.NewRNG(10))
	if learned.SpanCostFor(workload) >= zOnly.SpanCostFor(workload) {
		t.Errorf("learned span %d not below Z-order %d",
			learned.SpanCostFor(workload), zOnly.SpanCostFor(workload))
	}
	// Correctness preserved.
	items := spatial.PointItems(pts)
	for _, q := range workload[:10] {
		got, _ := learned.Range(q)
		want := spatial.BruteForceRange(items, q)
		if !sameIDs(got, want) {
			t.Fatal("learned curve range mismatch")
		}
	}
}

func TestPiecewiseCurveWorkTracksSpan(t *testing.T) {
	rng := mlmath.NewRNG(11)
	pts := spatial.GenPoints(rng, spatial.PointsUniform, 2000)
	workload := []spatial.Rect{{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.15}}
	zOnly := BuildPiecewiseCurve(pts, workload, 8, 0, rng)
	learned := BuildPiecewiseCurve(pts, workload, 8, 3000, mlmath.NewRNG(12))
	_, wz := zOnly.Range(workload[0])
	_, wl := learned.Range(workload[0])
	if wl > wz {
		t.Errorf("learned scan work %d exceeds Z-order %d", wl, wz)
	}
}
