// Package mlindex implements the ML-enhanced index systems of §3.2 — the
// paradigm that keeps the traditional index structure and uses machine
// learning to improve specific operations:
//
//   - RLRTree: reinforcement-learned chooseSubtree and splitNode (insertion)
//   - RWTree: workload-aware construction with a learned cost model
//   - Platon: top-down R-tree packing with an MCTS partition policy
//     (bulk-loading)
//   - AIRTree: a learned router + leaf-classification access path (search)
//   - PiecewiseCurve: a workload-learned piecewise space-filling curve
//
// Every system degrades gracefully to its classical host structure — the
// robustness property the paper credits the ML-enhanced paradigm with.
package mlindex
