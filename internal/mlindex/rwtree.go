package mlindex

import (
	"sort"

	"ml4db/internal/spatial"
)

// RWTree is an RW-tree-style workload-aware R-tree (Dong et al.): the
// chooseSubtree and splitNode functions are optimized for a *historical
// query workload* using a cost model learned from that workload. Here the
// learned component is a query-boundary density model (an empirical
// histogram of where workload query edges fall): splits prefer cut lines
// that few historical queries straddle, and chooseSubtree penalizes
// enlargement into densely queried regions.
type RWTree struct {
	Tree *spatial.RTree
	// xDensity/yDensity estimate, for a coordinate, how many historical
	// queries straddle a cut at that coordinate.
	xEdges, yEdges []float64 // sorted query-interval endpoints
	xLo, xHi       []float64 // per-query x intervals (sorted by lo)
	yLo, yHi       []float64
	queryWeight    float64
}

// NewRWTree builds a workload-aware tree from the historical workload.
func NewRWTree(maxEntries int, workload []spatial.Rect) *RWTree {
	w := &RWTree{Tree: spatial.NewRTree(maxEntries), queryWeight: 4}
	for _, q := range workload {
		w.xLo = append(w.xLo, q.MinX)
		w.xHi = append(w.xHi, q.MaxX)
		w.yLo = append(w.yLo, q.MinY)
		w.yHi = append(w.yHi, q.MaxY)
	}
	sort.Float64s(w.xLo)
	sort.Float64s(w.xHi)
	sort.Float64s(w.yLo)
	sort.Float64s(w.yHi)
	w.Tree.Choose = w.chooseSubtree
	w.Tree.Split = w.splitNode
	return w
}

// straddleCount returns how many workload queries straddle coordinate v on
// the given axis: lo < v < hi ⇔ (#lo < v) − (#hi ≤ v).
func (w *RWTree) straddleCount(v float64, xAxis bool) float64 {
	lo, hi := w.xLo, w.xHi
	if !xAxis {
		lo, hi = w.yLo, w.yHi
	}
	nLo := sort.SearchFloat64s(lo, v)
	nHi := sort.Search(len(hi), func(i int) bool { return hi[i] > v })
	return float64(nLo - nHi)
}

// queryOverlap estimates how many workload queries intersect a rect,
// using the interval counts per axis as an upper-bound product proxy.
func (w *RWTree) queryOverlap(r spatial.Rect) float64 {
	if len(w.xLo) == 0 {
		return 0
	}
	// Queries whose x interval intersects [r.MinX, r.MaxX]:
	// total − (hi < MinX) − (lo > MaxX).
	nx := float64(len(w.xLo)) -
		float64(sort.SearchFloat64s(w.xHi, r.MinX)) -
		float64(len(w.xLo)-sort.Search(len(w.xLo), func(i int) bool { return w.xLo[i] > r.MaxX }))
	ny := float64(len(w.yLo)) -
		float64(sort.SearchFloat64s(w.yHi, r.MinY)) -
		float64(len(w.yLo)-sort.Search(len(w.yLo), func(i int) bool { return w.yLo[i] > r.MaxY }))
	return nx * ny / float64(len(w.xLo))
}

// chooseSubtree: minimum enlargement, weighted by how queried the enlarged
// region is — enlarging into hot regions is costlier.
func (w *RWTree) chooseSubtree(n *spatial.RNode, r spatial.Rect) int {
	best := 0
	bestCost := -1.0
	for i, e := range n.Entries {
		grown := e.Rect.Union(r)
		enl := grown.Area() - e.Rect.Area()
		hot := w.queryOverlap(grown)
		cost := enl*(1+w.queryWeight*hot) + 0.01*e.Rect.Area()
		if bestCost < 0 || cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best
}

// splitNode picks the axis/cut whose boundary the fewest historical queries
// straddle (each straddling query pays an extra node access), breaking ties
// by overlap area.
func (w *RWTree) splitNode(entries []spatial.REntry) ([]spatial.REntry, []spatial.REntry) {
	plans, _ := splitPlans(entries)
	best := 0
	bestCost := -1.0
	for i, plan := range plans {
		lm, rm := entriesMBR(plan[0]), entriesMBR(plan[1])
		// Cut coordinate: the boundary between the two MBRs.
		var straddle float64
		if lm.MaxX <= rm.MinX { // x cut
			straddle = w.straddleCount((lm.MaxX+rm.MinX)/2, true)
		} else if lm.MaxY <= rm.MinY { // y cut
			straddle = w.straddleCount((lm.MaxY+rm.MinY)/2, false)
		} else {
			// Overlapping halves: approximate with overlap-weighted queries.
			straddle = w.queryOverlap(lm.Union(rm))
		}
		cost := straddle*w.queryWeight + lm.OverlapArea(rm)*100 + lm.Area() + rm.Area()
		if bestCost < 0 || cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return plans[best][0], plans[best][1]
}

// Insert adds an item.
func (w *RWTree) Insert(r spatial.Rect, id int) { w.Tree.Insert(r, id) }

// Range delegates to the host tree.
func (w *RWTree) Range(q spatial.Rect) ([]int, int) { return w.Tree.Range(q) }

// KNN delegates to the host tree.
func (w *RWTree) KNN(p spatial.Point, k int) ([]int, int) { return w.Tree.KNN(p, k) }

// Name identifies the index.
func (w *RWTree) Name() string { return "rwtree" }

// SizeBytes reports the host structure plus the workload model.
func (w *RWTree) SizeBytes() int { return w.Tree.SizeBytes() + 8*4*len(w.xLo) }
