package mlindex

import (
	"sort"

	"ml4db/internal/mlmath"
	"ml4db/internal/spatial"
)

// PiecewiseCurve is a learned piecewise space-filling curve (Li et al.,
// "Towards Designing and Learning Piecewise Space-Filling Curves"): instead
// of a fixed Z-curve, the cell visiting order is *learned from the query
// workload* so that the cells a typical query touches sit close together on
// the curve. The storage model is scan-between-extremes: a range query reads
// the contiguous curve span covering its cells, so the optimization target
// is the expected span length.
type PiecewiseCurve struct {
	gridSide int
	// rankOf[cell] is the learned curve position of the cell.
	rankOf []int
	// cellAt[rank] is the inverse permutation.
	cellAt []int
	// Points sorted by (cell rank, intra-cell Z).
	pts    []spatial.Point
	ids    []int
	ranks  []int // curve rank per stored point
	starts []int // starts[r] = first point index of rank r
}

// BuildPiecewiseCurve learns a cell ordering for the workload (via greedy
// improvement over the Z-order initialization) and lays out the points.
func BuildPiecewiseCurve(pts []spatial.Point, workload []spatial.Rect, gridSide, iters int, rng *mlmath.RNG) *PiecewiseCurve {
	c := &PiecewiseCurve{gridSide: gridSide}
	n := gridSide * gridSide
	// Initialize with Z-order over the grid.
	type cz struct {
		cell int
		z    int64
	}
	czs := make([]cz, n)
	for cell := 0; cell < n; cell++ {
		x, y := cell%gridSide, cell/gridSide
		czs[cell] = cz{cell, mortonSmall(uint32(x), uint32(y))}
	}
	sort.Slice(czs, func(i, j int) bool { return czs[i].z < czs[j].z })
	c.rankOf = make([]int, n)
	c.cellAt = make([]int, n)
	for r, e := range czs {
		c.rankOf[e.cell] = r
		c.cellAt[r] = e.cell
	}
	// Learn: greedy swaps of curve-adjacent cells that reduce workload span.
	cellLists := c.workloadCells(workload)
	cost := c.spanCost(cellLists)
	for it := 0; it < iters; it++ {
		r := rng.Intn(n - 1)
		c.swapRanks(r, r+1)
		if nc := c.spanCost(cellLists); nc <= cost {
			cost = nc
		} else {
			c.swapRanks(r, r+1) // revert
		}
	}
	c.layout(pts)
	return c
}

// mortonSmall interleaves small grid coordinates.
func mortonSmall(x, y uint32) int64 {
	var z int64
	for b := 0; b < 16; b++ {
		z |= int64(x>>b&1) << (2 * b)
		z |= int64(y>>b&1) << (2*b + 1)
	}
	return z
}

func (c *PiecewiseCurve) swapRanks(r1, r2 int) {
	c1, c2 := c.cellAt[r1], c.cellAt[r2]
	c.cellAt[r1], c.cellAt[r2] = c2, c1
	c.rankOf[c1], c.rankOf[c2] = r2, r1
}

// workloadCells precomputes, per query, the covered cell list.
func (c *PiecewiseCurve) workloadCells(workload []spatial.Rect) [][]int {
	out := make([][]int, len(workload))
	for i, q := range workload {
		out[i] = c.coveredCells(q)
	}
	return out
}

func (c *PiecewiseCurve) cellOf(v float64) int {
	g := c.gridSide
	i := int(v * float64(g))
	if i < 0 {
		i = 0
	}
	if i >= g {
		i = g - 1
	}
	return i
}

func (c *PiecewiseCurve) coveredCells(q spatial.Rect) []int {
	x0, x1 := c.cellOf(q.MinX), c.cellOf(q.MaxX)
	y0, y1 := c.cellOf(q.MinY), c.cellOf(q.MaxY)
	var cells []int
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			cells = append(cells, y*c.gridSide+x)
		}
	}
	return cells
}

// spanCost is the learning objective: Σ over queries of (max rank − min
// rank + 1) of covered cells — the contiguous span a scan must read.
func (c *PiecewiseCurve) spanCost(cellLists [][]int) int {
	total := 0
	for _, cells := range cellLists {
		lo, hi := c.gridSide*c.gridSide, -1
		for _, cell := range cells {
			r := c.rankOf[cell]
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		if hi >= lo {
			total += hi - lo + 1
		}
	}
	return total
}

// layout sorts points by curve position.
func (c *PiecewiseCurve) layout(pts []spatial.Point) {
	type pr struct {
		rank int
		z    int64
		id   int
	}
	prs := make([]pr, len(pts))
	for i, p := range pts {
		cell := c.cellOf(p.Y)*c.gridSide + c.cellOf(p.X)
		prs[i] = pr{c.rankOf[cell], mortonSmall(uint32(p.X*1e4), uint32(p.Y*1e4)), i}
	}
	sort.Slice(prs, func(i, j int) bool {
		if prs[i].rank != prs[j].rank {
			return prs[i].rank < prs[j].rank
		}
		return prs[i].z < prs[j].z
	})
	c.pts = make([]spatial.Point, len(pts))
	c.ids = make([]int, len(pts))
	c.ranks = make([]int, len(pts))
	for i, e := range prs {
		c.pts[i] = pts[e.id]
		c.ids[i] = e.id
		c.ranks[i] = e.rank
	}
	nRanks := c.gridSide * c.gridSide
	c.starts = make([]int, nRanks+1)
	pos := 0
	for r := 0; r < nRanks; r++ {
		c.starts[r] = pos
		for pos < len(prs) && prs[pos].rank == r {
			pos++
		}
	}
	c.starts[nRanks] = len(pts)
}

// Name identifies the index.
func (c *PiecewiseCurve) Name() string { return "piecewise-curve" }

// SizeBytes reports the permutation tables.
func (c *PiecewiseCurve) SizeBytes() int { return 8*2*len(c.rankOf) + 8*len(c.starts) }

// Range scans the curve span covering the query's cells and filters — the
// access pattern whose length the curve was learned to minimize. work
// counts points scanned.
func (c *PiecewiseCurve) Range(q spatial.Rect) (ids []int, work int) {
	cells := c.coveredCells(q)
	lo, hi := len(c.starts), -1
	for _, cell := range cells {
		r := c.rankOf[cell]
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi < 0 {
		return nil, 0
	}
	for i := c.starts[lo]; i < c.starts[hi+1]; i++ {
		work++
		if q.Contains(c.pts[i]) {
			ids = append(ids, c.ids[i])
		}
	}
	return ids, work
}

// SpanCostFor reports the curve's span cost on a workload — the metric the
// learned permutation improves over plain Z-order.
func (c *PiecewiseCurve) SpanCostFor(workload []spatial.Rect) int {
	return c.spanCost(c.workloadCells(workload))
}

// KNN scans an expanding curve window around the query point's cell rank and
// is approximate, like other curve-based indexes.
func (c *PiecewiseCurve) KNN(p spatial.Point, k int) (ids []int, work int) {
	if len(c.pts) == 0 || k <= 0 {
		return nil, 0
	}
	cell := c.cellOf(p.Y)*c.gridSide + c.cellOf(p.X)
	center := c.starts[c.rankOf[cell]]
	window := 8 * k
	lo, hi := center-window, center+window
	if lo < 0 {
		lo = 0
	}
	if hi > len(c.pts) {
		hi = len(c.pts)
	}
	type cand struct {
		d  float64
		id int
	}
	cands := make([]cand, 0, hi-lo)
	for i := lo; i < hi; i++ {
		work++
		cands = append(cands, cand{spatial.DistSq(p, c.pts[i]), c.ids[i]})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	if len(cands) > k {
		cands = cands[:k]
	}
	for _, cd := range cands {
		ids = append(ids, cd.id)
	}
	return ids, work
}
