package engine_test

import (
	"errors"
	"fmt"
	"testing"

	"ml4db/internal/engine"
)

// The admission-error contract: *OverloadedError matches the ErrOverloaded
// sentinel through errors.Is — including through fmt.Errorf("%w") wrapping —
// and errors.As recovers the typed error with its limit. Callers must never
// need == on the sentinel.
func TestOverloadedErrorWrapping(t *testing.T) {
	base := &engine.OverloadedError{Limit: 8}
	if !errors.Is(base, engine.ErrOverloaded) {
		t.Fatal("bare *OverloadedError does not match ErrOverloaded")
	}

	wrapped := fmt.Errorf("session 42: %w", fmt.Errorf("admit: %w", base))
	if !errors.Is(wrapped, engine.ErrOverloaded) {
		t.Error("double-wrapped *OverloadedError does not match ErrOverloaded")
	}
	var oe *engine.OverloadedError
	if !errors.As(wrapped, &oe) {
		t.Fatal("errors.As failed to recover *OverloadedError through wrapping")
	}
	if oe.Limit != 8 {
		t.Errorf("recovered Limit = %d, want 8", oe.Limit)
	}

	if errors.Is(errors.New("engine: overloaded"), engine.ErrOverloaded) {
		t.Error("an unrelated error with the same text must not match the sentinel")
	}
}
