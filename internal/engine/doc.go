// Package engine is the concurrent query-session front end of the relational
// engine: the layer a driver program talks to instead of wiring optimizer,
// executor, and estimator together by hand.
//
// It composes four mechanisms the ML4DB survey treats as prerequisites for
// deploying learned components inside a database (§4):
//
//   - Bounded admission: at most MaxConcurrent sessions run at once; excess
//     arrivals are rejected immediately with ErrOverloaded rather than queued
//     without bound (load shedding, mirroring modelsvc's inference queue).
//   - A shared plan cache keyed by the normalized query shape plus the
//     catalog-statistics version, the learned-estimator version, and the hint
//     set. A hit replays the identical plan; any stats refresh or estimator
//     promotion makes every stale key unreachable.
//   - Deterministic work budgets: per-query limits counted in executor work
//     units and materialized rows (exec.Budget), never wall time, so an
//     aborted query aborts at the same point on every replay.
//   - Graceful degradation: when a learned cardinality estimator misbehaves
//     during planning — a non-finite estimate or an exhausted call budget —
//     the engine re-plans through the classical histogram path and counts the
//     fallback (Bao's safety contract: the learned component may lose, but it
//     must never take the system down with it).
//
// engine is a determinism-core package: it spawns no goroutines (concurrency
// is whatever its callers bring) and reads no ambient time or randomness, so
// a single-threaded replay of a recorded workload is byte-identical.
package engine
