package engine_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ml4db/internal/engine"
	"ml4db/internal/mlmath"
	"ml4db/internal/querystore"
	"ml4db/internal/sqlkit/exec"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
)

// TestQuerystoreEndToEnd is the acceptance path: a workload runs through the
// engine with a store attached, and SELECTing from sys_statements through
// the normal planner/executor returns counts that exactly match what was
// executed.
func TestQuerystoreEndToEnd(t *testing.T) {
	sch := chainCatalog(t, 7)
	store := querystore.New(querystore.Options{
		Clock:   &mlmath.ManualClock{T: time.Unix(0, 0)},
		Catalog: sch.Cat,
	})
	eng := engine.New(sch.Cat, engine.Options{Store: store})
	sess := eng.Session()

	q1 := chainQuery(sch)
	q2 := chainQuery(sch)
	q2.Filters[0] = []expr.Pred{{Col: 2, Op: expr.GE, Lo: 900}}

	var totalWork, cacheHits, fallbacks int64
	run := func(q *plan.Query) {
		res, err := sess.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		totalWork += res.Work
		if res.CacheHit {
			cacheHits++
		}
		if res.Fallback {
			fallbacks++
		}
	}
	run(q1)
	run(q1)
	run(q1)
	run(q2)

	// One budget abort on q1's shape: recorded against the same statement.
	tiny := eng.Session()
	tiny.Budget = &exec.Budget{MaxWork: 10}
	out, err := tiny.Run(q1)
	if !errors.Is(err, exec.ErrWorkBudgetExceeded) {
		t.Fatalf("tiny budget err = %v, want budget abort", err)
	}
	if out.Result != nil {
		totalWork += out.Work
	}
	if out.CacheHit { // the aborted run still hit the plan cache
		cacheHits++
	}

	rr, err := sess.Query("SELECT * FROM sys_statements ORDER BY total_work DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Columns) != 14 || rr.Columns[0] != "stmt_id" {
		t.Fatalf("columns = %v", rr.Columns)
	}
	if len(rr.Rows) != 2 {
		t.Fatalf("sys_statements rows = %d, want 2 distinct shapes", len(rr.Rows))
	}
	col := func(name string) int {
		for i, c := range rr.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("no column %q", name)
		return -1
	}
	calls, work, hits, fb, aborts := col("calls"), col("total_work"), col("cache_hits"), col("fallbacks"), col("budget_aborts")
	// Ordered by total_work DESC: q1's statement (4 calls) first.
	if rr.Rows[0][calls] != 4 || rr.Rows[1][calls] != 1 {
		t.Errorf("calls = %d,%d want 4,1", rr.Rows[0][calls], rr.Rows[1][calls])
	}
	var sumWork, sumHits, sumFB, sumAborts int64
	for _, r := range rr.Rows {
		sumWork += r[work]
		sumHits += r[hits]
		sumFB += r[fb]
		sumAborts += r[aborts]
	}
	if sumWork != totalWork {
		t.Errorf("sys total_work = %d, executed work = %d", sumWork, totalWork)
	}
	if sumHits != cacheHits || cacheHits != 3 {
		t.Errorf("sys cache_hits = %d, driver saw %d (want 3)", sumHits, cacheHits)
	}
	if sumFB != fallbacks {
		t.Errorf("sys fallbacks = %d, driver saw %d", sumFB, fallbacks)
	}
	if sumAborts != 1 {
		t.Errorf("sys budget_aborts = %d, want 1", sumAborts)
	}

	// The SELECT itself was recorded after its own snapshot: a third shape
	// exists now.
	if got := len(store.Statements()); got != 3 {
		t.Errorf("statements after SELECT = %d, want 3", got)
	}

	// Heat map saw the filter column and the two join key columns.
	heat := store.Heat()
	if len(heat) == 0 {
		t.Fatal("no heat recorded")
	}
	var filterSeen, joinSeen bool
	for _, h := range heat {
		if h.FilterCount > 0 {
			filterSeen = true
		}
		if h.JoinCount > 0 {
			joinSeen = true
		}
	}
	if !filterSeen || !joinSeen {
		t.Errorf("heat missing filter or join columns: %+v", heat)
	}
}

// TestQuerystoreModelViewAndInstallEvents checks sys_models through SQL
// after estimator installs.
func TestQuerystoreModelViewAndInstallEvents(t *testing.T) {
	sch := chainCatalog(t, 8)
	store := querystore.New(querystore.Options{Clock: &mlmath.ManualClock{T: time.Unix(0, 0)}})
	eng := engine.New(sch.Cat, engine.Options{Store: store})
	if err := eng.SetEstimator(nanEstimator{}, 5); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetEstimator(nil, 0); err != nil {
		t.Fatal(err)
	}
	rr, err := eng.Session().Query("SELECT version FROM sys_models ORDER BY seq")
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Rows) != 2 || rr.Rows[0][0] != 5 || rr.Rows[1][0] != 0 {
		t.Errorf("sys_models versions = %v, want [5] [0]", rr.Rows)
	}
}

// TestQuerystoreReplayByteIdentical pins the determinism contract at the
// engine level: two replays of the same workload under a fresh ManualClock
// produce byte-identical querystore exports.
func TestQuerystoreReplayByteIdentical(t *testing.T) {
	replay := func() []byte {
		sch := chainCatalog(t, 9)
		mc := &mlmath.ManualClock{T: time.Unix(100, 0)}
		store := querystore.New(querystore.Options{
			Clock: mc, Catalog: sch.Cat, Window: time.Second,
		})
		eng := engine.New(sch.Cat, engine.Options{Store: store})
		sess := eng.Session()
		for i := 0; i < 6; i++ {
			if _, err := sess.Run(chainQuery(sch)); err != nil {
				t.Fatal(err)
			}
			mc.Advance(300 * time.Millisecond)
		}
		store.Flush()
		var buf bytes.Buffer
		if err := store.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := replay(), replay()
	if !bytes.Equal(a, b) {
		t.Errorf("replays diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestRegisterViewsCollision: a non-virtual table on a sys_ name is a
// construction error.
func TestRegisterViewsCollision(t *testing.T) {
	sch := chainCatalog(t, 10)
	tbl := sch.Cat.Tables[0]
	tbl2 := *tbl
	tbl2.Name = "sys_statements"
	sch.Cat.MustAdd(&tbl2)
	defer func() {
		if recover() == nil {
			t.Error("engine.New did not panic on a squatted sys_ name")
		}
	}()
	engine.New(sch.Cat, engine.Options{Store: querystore.New(querystore.Options{})})
}
