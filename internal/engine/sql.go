package engine

import (
	"fmt"
	"sort"

	"ml4db/internal/sqlkit/sqlparse"
)

// RowsResult is the outcome of a SQL query: the projected, ordered, limited
// output rows with their column names, plus the underlying engine result
// (plan, counters, cache/fallback flags) for callers that want it.
type RowsResult struct {
	Columns []string
	Rows    [][]int64
	Exec    *Result
}

// Query parses and runs one SELECT statement (see sqlparse for the
// grammar). The SPJ core goes through the normal planning/execution path —
// plan cache, budgets, estimator fallback, workload recording included —
// and the presentation clauses (projection, ORDER BY, LIMIT) are applied to
// the executed rows. ORDER BY sorts are stable over the executor's
// deterministic output order, so results replay byte-identically.
func (s *Session) Query(sql string) (*RowsResult, error) {
	st, err := sqlparse.Parse(s.eng.cat, sql)
	if err != nil {
		return nil, err
	}
	res, err := s.Run(st.Query)
	if err != nil {
		return nil, err
	}

	// The optimizer reorders join leaves, so the executor's output columns
	// are laid out in plan-leaf order, not FROM order — and a view rewrite
	// may have folded several FROM tables into one wider view table. Recover
	// each executed position's base offset from the plan, then route each
	// FROM-relative column through the rewrite's position map.
	exq := res.Query
	leaves := res.Plan.Tables()
	base := make(map[int]int, len(leaves))
	off := 0
	for _, pos := range leaves {
		base[pos] = off
		off += s.eng.cat.Table(exq.Tables[pos]).NumCols()
	}
	colOffset := func(c sqlparse.ColRef) (int, error) {
		pos, shift := c.TablePos, 0
		if res.PosMap != nil {
			pm := res.PosMap[c.TablePos]
			pos, shift = pm.Pos, pm.ColShift
		}
		b, ok := base[pos]
		if !ok {
			return 0, fmt.Errorf("engine: query table position %d missing from executed plan", c.TablePos)
		}
		return b + shift + c.Col, nil
	}

	rows := res.Rows
	if len(st.OrderBy) > 0 {
		keys := make([]int, len(st.OrderBy))
		for i, k := range st.OrderBy {
			if keys[i], err = colOffset(k.Col); err != nil {
				return nil, err
			}
		}
		sorted := make([][]int64, len(rows))
		copy(sorted, rows)
		sort.SliceStable(sorted, func(i, j int) bool {
			for n, off := range keys {
				a, b := sorted[i][off], sorted[j][off]
				if a == b {
					continue
				}
				if st.OrderBy[n].Desc {
					return a > b
				}
				return a < b
			}
			return false
		})
		rows = sorted
	}
	if st.Limit >= 0 && len(rows) > st.Limit {
		rows = rows[:st.Limit]
	}

	// SELECT * projects every column in FROM order; an explicit list
	// projects in list order.
	cols := st.Cols
	if cols == nil {
		for pos := range st.Query.Tables {
			t := s.eng.cat.Table(st.Query.Tables[pos])
			for c := 0; c < t.NumCols(); c++ {
				cols = append(cols, sqlparse.ColRef{TablePos: pos, Col: c})
			}
		}
	}
	offsets := make([]int, len(cols))
	names := make([]string, len(cols))
	for i, c := range cols {
		if offsets[i], err = colOffset(c); err != nil {
			return nil, err
		}
		names[i] = s.eng.cat.Table(st.Query.Tables[c.TablePos]).Columns[c.Col].Name
	}
	out := make([][]int64, len(rows))
	for i, r := range rows {
		row := make([]int64, len(offsets))
		for j, o := range offsets {
			row[j] = r[o]
		}
		out[i] = row
	}
	return &RowsResult{Columns: names, Rows: out, Exec: res}, nil
}
