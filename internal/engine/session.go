package engine

import (
	"ml4db/internal/sqlkit/exec"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
)

// Session is one logical client of the engine. Fields are read at each Run,
// so a session can be reconfigured between queries; a session must not be
// used from multiple goroutines at once (create one per goroutine — they are
// cheap, and the engine underneath is shared and concurrent-safe).
type Session struct {
	eng *Engine

	// Hint constrains the optimizer's search space for this session's
	// queries (BAO-style steering). Defaults to the unconstrained hint set.
	Hint optimizer.HintSet
	// Budget overrides the engine's default per-query budget; nil inherits
	// it.
	Budget *exec.Budget
	// Analyze collects EXPLAIN ANALYZE stats into each Result.
	Analyze bool
}

// Run plans (through the shared cache) and executes q under the session's
// hint set and budget. It returns ErrOverloaded immediately when the engine
// is at its concurrency limit, and a *exec.BudgetExceededError (alongside
// the partial Result) when the query exceeds its budget.
func (s *Session) Run(q *plan.Query) (*Result, error) {
	budget := s.Budget
	if budget == nil {
		budget = s.eng.opts.DefaultBudget
	}
	return s.eng.run(q, s.Hint, budget, s.Analyze)
}
