package engine

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"

	"ml4db/internal/obs"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
)

// cacheKey renders the canonical identity of a planning problem: the
// normalized query shape plus the statistics, estimator, and physical-design
// versions the plan would be built against, and the parallelism degree the
// optimizer would cost the Partitions knob with. The version prefix makes
// every entry planned against stale statistics, a superseded estimator, or a
// changed physical design (an index built or dropped, a view installed)
// unreachable without scanning the cache; the parallelism component keeps a
// plan partitioned for one degree from being served at another (and lets
// entries for a prior degree become reachable again when the knob switches
// back — no invalidation needed, since executions are bit-identical across
// degrees and only the costing differs).
func cacheKey(shape string, statsVersion, estimatorVersion, designVersion, parallelism int) string {
	return fmt.Sprintf("s%d/e%d/d%d/p%d/%s", statsVersion, estimatorVersion, designVersion, parallelism, shape)
}

// applyRewriters folds q through each rewriter once, in order, composing the
// per-position maps. The returned query is q itself — and the map nil,
// meaning identity — when nothing applied.
func applyRewriters(q *plan.Query, rs []plan.QueryRewriter) (*plan.Query, []plan.PosMap) {
	cur := q
	var m []plan.PosMap
	for _, r := range rs {
		nq, step, ok := r.RewriteMapped(cur)
		if !ok {
			continue
		}
		if m == nil {
			m = step
		} else {
			for i := range m {
				s := step[m[i].Pos]
				m[i] = plan.PosMap{Pos: s.Pos, ColShift: s.ColShift + m[i].ColShift}
			}
		}
		cur = nq
	}
	return cur, m
}

// queryShape renders the version-independent normalized statement identity:
// the query's tables, filters (literals included), and join conditions in a
// normalized order, plus the hint-set name.
//
// Normalization makes the shape insensitive to the incidental order in which
// filters and joins were added — two spellings of the same query share one
// shape, one plan-cache entry, and one querystore statement record.
func queryShape(q *plan.Query, hintName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "h%s", hintName)
	for pos, tid := range q.Tables {
		fmt.Fprintf(&b, "|T%d", tid)
		preds := append([]expr.Pred(nil), q.Filters[pos]...)
		sort.Slice(preds, func(i, j int) bool { return predLess(preds[i], preds[j]) })
		for _, p := range preds {
			fmt.Fprintf(&b, ":%s", p)
		}
	}
	joins := make([]expr.JoinCond, len(q.Joins))
	for i, j := range q.Joins {
		// Orient each condition smaller side first; equality is symmetric.
		if j.RightTable < j.LeftTable || (j.RightTable == j.LeftTable && j.RightCol < j.LeftCol) {
			j = expr.JoinCond{LeftTable: j.RightTable, LeftCol: j.RightCol, RightTable: j.LeftTable, RightCol: j.LeftCol}
		}
		joins[i] = j
	}
	sort.Slice(joins, func(i, j int) bool { return joinLess(joins[i], joins[j]) })
	for _, j := range joins {
		fmt.Fprintf(&b, "|%s", j)
	}
	if q.Agg != nil {
		fmt.Fprintf(&b, "|G%d.c%d", q.Agg.GroupTable, q.Agg.GroupCol)
		for _, sc := range q.Agg.Sums {
			fmt.Fprintf(&b, "|S%d.c%d", sc.Table, sc.Col)
		}
	}
	return b.String()
}

func predLess(a, b expr.Pred) bool {
	if a.Col != b.Col {
		return a.Col < b.Col
	}
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	if a.Lo != b.Lo {
		return a.Lo < b.Lo
	}
	return a.Hi < b.Hi
}

func joinLess(a, b expr.JoinCond) bool {
	if a.LeftTable != b.LeftTable {
		return a.LeftTable < b.LeftTable
	}
	if a.LeftCol != b.LeftCol {
		return a.LeftCol < b.LeftCol
	}
	if a.RightTable != b.RightTable {
		return a.RightTable < b.RightTable
	}
	return a.RightCol < b.RightCol
}

// cacheEntry is one cached plan under its full key.
type cacheEntry struct {
	key  string
	plan *plan.Node
}

// planCache is a mutex-guarded LRU of optimized plans shared by all sessions
// of an engine. Plans are stored and served as deep clones: the executor
// mutates ActualRows annotations in place, so handing the stored tree to two
// concurrent sessions would race.
type planCache struct {
	capacity int
	metrics  *obs.Registry // nil-safe; counters under engine.plancache.*

	mu    sync.Mutex
	ll    *list.List               // front = most recently used
	byKey map[string]*list.Element // element value: *cacheEntry
}

func newPlanCache(capacity int, metrics *obs.Registry) *planCache {
	if capacity < 1 {
		capacity = 256
	}
	return &planCache{
		capacity: capacity,
		metrics:  metrics,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element, capacity),
	}
}

// Get returns a deep clone of the cached plan for key, promoting the entry
// to most recently used.
func (c *planCache) Get(key string) (*plan.Node, bool) {
	c.mu.Lock()
	el, ok := c.byKey[key]
	if !ok {
		c.mu.Unlock()
		c.metrics.Counter("engine.plancache.misses").Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	p := el.Value.(*cacheEntry).plan.Clone()
	c.mu.Unlock()
	c.metrics.Counter("engine.plancache.hits").Inc()
	return p, true
}

// Put stores a deep clone of the plan under key, evicting the least recently
// used entry past capacity. Re-putting an existing key refreshes its
// recency but keeps the first plan (both were built from identical inputs).
func (c *planCache) Put(key string, p *plan.Node) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, plan: p.Clone()})
	evicted := 0
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		evicted++
	}
	c.mu.Unlock()
	if evicted > 0 {
		c.metrics.Counter("engine.plancache.evictions").Add(int64(evicted))
	}
}

// Invalidate drops every entry, returning how many were dropped. Version
// bumps already make stale keys unreachable; dropping them too frees the
// memory immediately instead of waiting for LRU pressure.
func (c *planCache) Invalidate() int {
	c.mu.Lock()
	n := c.ll.Len()
	c.ll.Init()
	c.byKey = make(map[string]*list.Element, c.capacity)
	c.mu.Unlock()
	if n > 0 {
		c.metrics.Counter("engine.plancache.invalidations").Add(int64(n))
	}
	return n
}

// Len returns the number of cached plans.
func (c *planCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
