package engine

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"ml4db/internal/mlmath"
	"ml4db/internal/modelsvc"
	"ml4db/internal/obs"
	"ml4db/internal/querystore"
	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/exec"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
)

// ErrOverloaded is the admission-control sentinel: the engine is already
// running its maximum number of concurrent sessions and rejected the query
// instead of queueing it. Rejections surface as *OverloadedError, which
// matches this sentinel under errors.Is.
var ErrOverloaded = errors.New("engine: overloaded")

// OverloadedError reports an admission rejection with the concurrency limit
// that was saturated at the time.
type OverloadedError struct {
	Limit int
}

// Error implements error.
func (e *OverloadedError) Error() string {
	return fmt.Sprintf("engine: overloaded (%d sessions already active)", e.Limit)
}

// Is reports admission rejections as ErrOverloaded for errors.Is callers.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// Options configures an Engine.
type Options struct {
	// MaxConcurrent bounds the number of sessions executing at once; further
	// arrivals are rejected with ErrOverloaded. Values below one default
	// to 8.
	MaxConcurrent int
	// CacheSize bounds the shared plan cache in entries. Values below one
	// default to 256.
	CacheSize int
	// DefaultBudget, when non-nil, applies to every query whose session does
	// not set its own budget.
	DefaultBudget *exec.Budget
	// EstimatorCallBudget caps how many times one planning pass may invoke
	// the learned estimator before the engine gives up on it and re-plans
	// classically — the deterministic analogue of an inference timeout.
	// Zero means unlimited.
	EstimatorCallBudget int64
	// Metrics, when non-nil, receives the engine.* instruments.
	Metrics *obs.Registry
	// Trace, when non-nil, wraps each query in an engine.query span.
	Trace *obs.Tracer
	// Store, when non-nil, receives one querystore.Observation per executed
	// query (keyed by the plan cache's normalized statement shape) and a
	// model event per estimator install, and New registers the sys_* system
	// views over it in the catalog. A nil store is off and free.
	Store *querystore.Store
	// Pool, when non-nil, runs partitioned operators' shards in parallel and
	// sets the initial parallelism degree to its worker count (see
	// SetParallelism). Executions are bit-identical with or without a pool;
	// only latency changes.
	Pool *mlmath.Pool
}

// Result is the outcome of one engine query.
type Result struct {
	*exec.Result
	// Plan is the executed physical plan (the session's private copy).
	Plan *plan.Node
	// CacheHit reports whether the plan came from the shared plan cache.
	CacheHit bool
	// Fallback reports that the learned estimator failed during planning and
	// the plan was rebuilt through the classical path.
	Fallback bool
	// EstimatorVersion is the learned-estimator version the plan was built
	// under (0 when planning was classical).
	EstimatorVersion int
	// Query is the query the plan was actually built from — the input after
	// view rewriting, or the input itself when no rewriter applied.
	Query *plan.Query
	// PosMap maps each input table position to its (position, column offset)
	// in Query. Nil means identity: no rewriter applied.
	PosMap []plan.PosMap
}

// Engine is the concurrent query front end: admission control, a shared plan
// cache, per-query budgets, and learned-estimator fallback over one catalog.
//
// The engine spawns no goroutines; each session runs on its caller. All
// methods are safe for concurrent use.
type Engine struct {
	cat  *catalog.Catalog
	exc  *exec.Executor
	opts Options

	// slots is the admission semaphore: one token per running session.
	slots chan struct{}
	cache *planCache

	mu            sync.Mutex
	statsVersion  int
	estVersion    int
	designVersion int
	parallelism   int
	rewriters     []plan.QueryRewriter
	learned       optimizer.CardEstimator
	classical     *optimizer.Optimizer
}

// New builds an engine over the catalog. The catalog should already be
// analyzed (AnalyzeAll); RefreshStats re-analyzes later. With a workload
// store configured, New registers the querystore sys_* system views in the
// catalog; a non-virtual table squatting on a sys_ name is a construction
// bug and panics.
func New(cat *catalog.Catalog, opts Options) *Engine {
	if opts.MaxConcurrent < 1 {
		opts.MaxConcurrent = 8
	}
	if opts.Store != nil {
		if err := querystore.RegisterViews(cat, opts.Store); err != nil {
			//ml4db:allow nakedpanic "construction-time misconfiguration, same contract as catalog.MustAdd"
			panic(err)
		}
	}
	e := &Engine{
		cat:       cat,
		exc:       exec.New(cat),
		opts:      opts,
		slots:     make(chan struct{}, opts.MaxConcurrent),
		cache:     newPlanCache(opts.CacheSize, opts.Metrics),
		classical: optimizer.New(cat),
	}
	e.exc.Trace = opts.Trace
	e.exc.Metrics = opts.Metrics
	e.parallelism = opts.Pool.Workers() // nil pool reports 1: serial
	return e
}

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// StatsVersion returns the current catalog-statistics version. It starts at
// zero and increments on every RefreshStats.
func (e *Engine) StatsVersion() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.statsVersion
}

// EstimatorVersion returns the installed learned-estimator version (zero
// when none is installed).
func (e *Engine) EstimatorVersion() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.estVersion
}

// CachedPlans returns the number of plans currently cached.
func (e *Engine) CachedPlans() int { return e.cache.Len() }

// Parallelism returns the current parallelism degree the optimizer costs the
// Partitions knob with (1 = serial planning).
func (e *Engine) Parallelism() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.parallelism
}

// SetParallelism changes the parallelism degree for subsequent planning.
// Values below one clamp to one. No cache invalidation is needed: the cache
// key carries the degree, so plans for the old degree simply become
// unreachable — and become reachable again if the degree switches back,
// which is sound because execution results are bit-identical across degrees.
func (e *Engine) SetParallelism(p int) {
	if p < 1 {
		p = 1
	}
	e.mu.Lock()
	e.parallelism = p
	e.mu.Unlock()
}

// Quiesce runs fn with the engine drained: every admission slot is held, so
// no session is planning or executing while fn mutates shared state — the
// catalog, indexes, or rewriters. It blocks until in-flight sessions finish;
// admissions arriving meanwhile are rejected with ErrOverloaded. fn must not
// run queries through this engine (they would be rejected) and must pair any
// physical mutation with NotifyDesignChange or RefreshStats so cached plans
// over the old design become unreachable.
func (e *Engine) Quiesce(fn func()) {
	for i := 0; i < cap(e.slots); i++ {
		e.slots <- struct{}{}
	}
	defer func() {
		for i := 0; i < cap(e.slots); i++ {
			<-e.slots
		}
	}()
	fn()
}

// RefreshStats re-analyzes every table (a database-wide ANALYZE), bumps the
// statistics version, and invalidates the plan cache: no plan built against
// the old statistics can be served afterwards.
//
// The refresh quiesces the engine first (see Quiesce), so statistics never
// change under a session that is planning or executing.
func (e *Engine) RefreshStats(buckets, sampleSize int) {
	e.Quiesce(func() {
		e.cat.AnalyzeAll(buckets, sampleSize)
		e.mu.Lock()
		e.statsVersion++
		e.mu.Unlock()
		e.cache.Invalidate()
		e.opts.Metrics.Counter("engine.stats_refreshes").Inc()
	})
}

// DesignVersion returns the physical-design version. It starts at zero and
// increments on every NotifyDesignChange (and SetRewriters).
func (e *Engine) DesignVersion() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.designVersion
}

// NotifyDesignChange records a physical-design mutation — an index built or
// dropped, a view table filled or emptied: it bumps the design version,
// making every cached plan key unreachable, and drops the cache. Callers
// mutating the catalog of a live engine must do so under Quiesce and call
// this before releasing it.
func (e *Engine) NotifyDesignChange() {
	e.mu.Lock()
	e.designVersion++
	e.mu.Unlock()
	e.cache.Invalidate()
	e.opts.Metrics.Counter("engine.design_changes").Inc()
}

// SetRewriters installs the query rewriters applied, in order, before
// planning — materialized views substituting for join pairs. Installing
// counts as a design change (the same statement now plans to a different
// tree), so the plan cache is invalidated through NotifyDesignChange.
func (e *Engine) SetRewriters(rs []plan.QueryRewriter) {
	e.mu.Lock()
	e.rewriters = append([]plan.QueryRewriter(nil), rs...)
	e.mu.Unlock()
	e.NotifyDesignChange()
}

// SetEstimator installs (or, with a nil estimator, removes) the learned
// cardinality estimator under the given deployment version and invalidates
// the plan cache. Version zero always means "classical only"; installing an
// estimator requires a nonzero version so cache keys distinguish it.
func (e *Engine) SetEstimator(est optimizer.CardEstimator, version int) error {
	if est != nil && version == 0 {
		return fmt.Errorf("engine: learned estimator requires a nonzero version")
	}
	if est == nil {
		version = 0
	}
	e.mu.Lock()
	e.learned = est
	e.estVersion = version
	e.mu.Unlock()
	e.cache.Invalidate()
	e.opts.Metrics.Counter("engine.estimator_installs").Inc()
	e.opts.Store.RecordModelInstall(version)
	return nil
}

// SyncRollout aligns the engine with a modelsvc canary rollout: when the
// rollout's current deployment version differs from the installed estimator
// version, the estimator built by mk for that deployment is installed (which
// invalidates the plan cache). Call it after observing rollout outcomes; a
// promotion or demotion then reaches the planner exactly once. Returns
// whether an install happened.
func (e *Engine) SyncRollout(r *modelsvc.Rollout, mk func(modelsvc.Deployment) optimizer.CardEstimator) (bool, error) {
	d := r.Current()
	if d.Version == e.EstimatorVersion() {
		return false, nil
	}
	if err := e.SetEstimator(mk(d), d.Version); err != nil {
		return false, err
	}
	return true, nil
}

// Session returns a new session with the default hint set and the engine's
// default budget. Sessions are lightweight; create one per logical client.
func (e *Engine) Session() *Session {
	return &Session{eng: e, Hint: optimizer.NoHint()}
}

// Run executes q with the default hint set, budget, and no EXPLAIN — the
// one-shot convenience over Session.
func (e *Engine) Run(q *plan.Query) (*Result, error) {
	return e.run(q, optimizer.NoHint(), e.opts.DefaultBudget, false)
}

// run is the shared query path: admit, plan (through the cache), execute.
func (e *Engine) run(q *plan.Query, hint optimizer.HintSet, budget *exec.Budget, analyze bool) (*Result, error) {
	m := e.opts.Metrics
	select {
	case e.slots <- struct{}{}:
	default:
		m.Counter("engine.rejected").Inc()
		return nil, &OverloadedError{Limit: cap(e.slots)}
	}
	defer func() {
		m.Gauge("engine.active").Set(float64(len(e.slots) - 1))
		<-e.slots
	}()
	m.Counter("engine.admitted").Inc()
	m.Gauge("engine.active").Set(float64(len(e.slots)))

	sp := e.opts.Trace.StartSpan("engine.query", nil)
	defer sp.End()

	e.mu.Lock()
	statsV, estV, designV, learned := e.statsVersion, e.estVersion, e.designVersion, e.learned
	par := e.parallelism
	rewriters := e.rewriters
	e.mu.Unlock()

	// The statement shape is computed from the caller's query, so one
	// statement keeps one identity (and one querystore record) across design
	// changes; the plan is built from the rewritten query. Rewriters only
	// change together with a design-version bump, so a cached plan under
	// this key always matches this rewrite.
	shape := queryShape(q, hint.Name)
	// View-substitution rewriters do not remap aggregation specs, so
	// aggregating queries plan against their original tables.
	if q.Agg != nil {
		rewriters = nil
	}
	exq, posMap := applyRewriters(q, rewriters)
	key := cacheKey(shape, statsV, estV, designV, par)
	p, hit := e.cache.Get(key)
	fallback := false
	if !hit {
		var err error
		p, fallback, err = e.plan(exq, hint, learned, par)
		if err != nil {
			m.Counter("engine.plan_errors").Inc()
			return nil, err
		}
		if fallback {
			m.Counter("engine.fallbacks").Inc()
		}
		e.cache.Put(key, p)
	}
	sp.SetStr("hint", hint.Name).SetInt("cache_hit", boolInt(hit))

	res, err := e.exc.Execute(p, exec.Options{Budget: budget, Analyze: analyze, Span: sp, Pool: e.opts.Pool})
	out := &Result{Result: res, Plan: p, CacheHit: hit, Fallback: fallback, EstimatorVersion: estV, Query: exq, PosMap: posMap}
	budgetAbort := err != nil && errors.Is(err, exec.ErrWorkBudgetExceeded)
	if budgetAbort {
		m.Counter("engine.budget_aborts").Inc()
	}
	if st := e.opts.Store; st != nil && (err == nil || budgetAbort) {
		o := querystore.Observation{
			Shape:            shape,
			CacheHit:         hit,
			Fallback:         fallback,
			BudgetAbort:      budgetAbort,
			EstimatorVersion: estV,
			Plan:             p,
		}
		if res != nil {
			o.Work = res.Work
			o.Rows = int64(len(res.Rows))
			o.PageMisses = res.Counters.PageMiss
		}
		st.Record(o)
	}
	if err != nil {
		return out, err
	}
	return out, nil
}

// plan builds a plan for q under hint. With a learned estimator installed it
// plans through a guarded wrapper first; if the wrapper trips — a non-finite
// estimate or an exhausted call budget — the result is discarded and the
// query is re-planned through the classical path (fallback=true). Planning
// never lets a learned component's failure escape as a query failure unless
// the classical path fails too.
func (e *Engine) plan(q *plan.Query, hint optimizer.HintSet, learned optimizer.CardEstimator, parallelism int) (p *plan.Node, fallback bool, err error) {
	// Each planning pass builds its own Optimizer so the parallelism degree
	// is per-call state: the shared e.classical is never mutated, and a
	// degree of 1 plans byte-identically to a pre-parallel optimizer.
	classical := &optimizer.Optimizer{Cat: e.cat, Est: e.classical.Est, Cost: e.classical.Cost, IO: e.classical.IO, Parallelism: parallelism}
	if learned == nil {
		p, err = classical.Plan(q, hint)
		return p, false, err
	}
	g := &guardedEstimator{inner: learned, safe: e.classical.Est, limit: e.opts.EstimatorCallBudget}
	opt := &optimizer.Optimizer{Cat: e.cat, Est: g, Cost: e.classical.Cost, IO: e.classical.IO, Parallelism: parallelism}
	p, err = opt.Plan(q, hint)
	if err == nil && !g.failed {
		return p, false, nil
	}
	// Learned path failed (planning error or tripped guard): classical
	// re-plan, Bao-style.
	p, err = classical.Plan(q, hint)
	return p, true, err
}

// guardedEstimator wraps a learned cardinality estimator with a
// deterministic call budget and output validation. Once tripped it answers
// through the safe classical estimator so the planning pass still completes
// structurally; the engine then discards that plan and re-plans classically.
// One instance serves exactly one planning pass on one goroutine.
type guardedEstimator struct {
	inner  optimizer.CardEstimator
	safe   optimizer.CardEstimator
	limit  int64 // max inner calls; 0 = unlimited
	calls  int64
	failed bool
}

// tripped charges one call against the budget and reports whether the guard
// has failed (now or earlier).
func (g *guardedEstimator) tripped() bool {
	if g.failed {
		return true
	}
	g.calls++
	if g.limit > 0 && g.calls > g.limit {
		g.failed = true
	}
	return g.failed
}

// ScanRows implements optimizer.CardEstimator.
func (g *guardedEstimator) ScanRows(q *plan.Query, pos int) float64 {
	if g.tripped() {
		return g.safe.ScanRows(q, pos)
	}
	v := g.inner.ScanRows(q, pos)
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		g.failed = true
		return g.safe.ScanRows(q, pos)
	}
	return v
}

// JoinSelectivity implements optimizer.CardEstimator.
func (g *guardedEstimator) JoinSelectivity(q *plan.Query, cond expr.JoinCond) float64 {
	if g.tripped() {
		return g.safe.JoinSelectivity(q, cond)
	}
	v := g.inner.JoinSelectivity(q, cond)
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		g.failed = true
		return g.safe.JoinSelectivity(q, cond)
	}
	return v
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
