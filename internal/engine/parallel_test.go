package engine_test

import (
	"reflect"
	"testing"

	"ml4db/internal/engine"
	"ml4db/internal/mlmath"
	"ml4db/internal/obs"
	"ml4db/internal/sqlkit/plan"
)

// TestCacheCoherenceAcrossParallelism is the plan-cache coherence property
// for the parallelism knob: a plan cached at one degree is never served at
// another (the degree is part of the cache key), switching back re-hits the
// old entry without invalidation, and results are bit-identical across
// degrees — partitioning only trades latency.
func TestCacheCoherenceAcrossParallelism(t *testing.T) {
	sch := chainCatalog(t, 21)
	pool := mlmath.NewPool(4)
	defer pool.Close()
	eng := engine.New(sch.Cat, engine.Options{Metrics: obs.NewRegistry(), Pool: pool})
	q := chainQuery(sch)

	if got := eng.Parallelism(); got != 4 {
		t.Fatalf("initial Parallelism = %d, want the pool's 4 workers", got)
	}

	parRes, err := eng.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := eng.Run(q); err != nil || !res.CacheHit {
		t.Fatalf("warm replay at p=4: err=%v hit=%v, want cached", err, res.CacheHit)
	}
	sawPartitioned := false
	parRes.Plan.Walk(func(n *plan.Node) {
		if n.Partitions > 1 {
			sawPartitioned = true
		}
	})
	if !sawPartitioned {
		t.Error("no operator partitioned at p=4; knob coherence test is vacuous")
	}

	// Drop to serial: the p=4 entry must become unreachable, the new plan
	// must be fully serial, and the rows must not change.
	eng.SetParallelism(1)
	serRes, err := eng.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if serRes.CacheHit {
		t.Error("plan cached at p=4 served at p=1")
	}
	serRes.Plan.Walk(func(n *plan.Node) {
		if n.Partitions > 1 {
			t.Errorf("p=1 plan still carries Partitions=%d on %v", n.Partitions, n.Op)
		}
	})
	if !reflect.DeepEqual(parRes.Rows, serRes.Rows) {
		t.Error("rows differ between p=4 and p=1 executions")
	}
	if parRes.Work != serRes.Work || parRes.Counters != serRes.Counters {
		t.Errorf("work/counters differ across degrees: p=4 work=%d, p=1 work=%d", parRes.Work, serRes.Work)
	}

	// Switching back re-hits the original p=4 entry: no invalidation
	// happened, the key just became reachable again.
	eng.SetParallelism(4)
	back, err := eng.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if !back.CacheHit {
		t.Error("returning to p=4 did not re-hit the cached entry")
	}
	if back.Plan.String() != parRes.Plan.String() {
		t.Errorf("re-hit plan differs from the original p=4 plan:\n%svs\n%s", back.Plan, parRes.Plan)
	}

	// Degrees clamp at one and are reflected by the getter.
	eng.SetParallelism(0)
	if got := eng.Parallelism(); got != 1 {
		t.Errorf("SetParallelism(0) left Parallelism = %d, want clamp to 1", got)
	}
}

// TestEngineWithoutPoolPlansSerially pins the default: no pool means degree
// one, so plans are byte-identical to the pre-parallel engine and the
// classical-coherence comparisons against fresh optimizers stay valid.
func TestEngineWithoutPoolPlansSerially(t *testing.T) {
	sch := chainCatalog(t, 22)
	eng := engine.New(sch.Cat, engine.Options{})
	if got := eng.Parallelism(); got != 1 {
		t.Fatalf("Parallelism = %d without a pool, want 1", got)
	}
	res, err := eng.Run(chainQuery(sch))
	if err != nil {
		t.Fatal(err)
	}
	res.Plan.Walk(func(n *plan.Node) {
		if n.Partitions > 1 {
			t.Errorf("pool-less engine produced Partitions=%d on %v", n.Partitions, n.Op)
		}
	})
}
