package engine_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"ml4db/internal/engine"
	"ml4db/internal/obs"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
)

// gateEstimator blocks the first planning pass on a channel, letting a test
// hold an admission slot open deterministically. Test-only; the engine under
// test still spawns nothing.
type gateEstimator struct {
	inner   optimizer.CardEstimator
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateEstimator) gate() {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
}

func (g *gateEstimator) ScanRows(q *plan.Query, pos int) float64 {
	g.gate()
	return g.inner.ScanRows(q, pos)
}

func (g *gateEstimator) JoinSelectivity(q *plan.Query, c expr.JoinCond) float64 {
	g.gate()
	return g.inner.JoinSelectivity(q, c)
}

// TestAdmissionRejectsAtCapacity deterministically saturates a one-slot
// engine and checks the typed rejection, then verifies the slot is reusable
// after the in-flight query finishes.
func TestAdmissionRejectsAtCapacity(t *testing.T) {
	sch := chainCatalog(t, 20)
	reg := obs.NewRegistry()
	eng := engine.New(sch.Cat, engine.Options{MaxConcurrent: 1, Metrics: reg})
	gate := &gateEstimator{
		inner:   &optimizer.HistEstimator{Cat: sch.Cat},
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	if err := eng.SetEstimator(gate, 1); err != nil {
		t.Fatal(err)
	}
	q := chainQuery(sch)

	type outcome struct {
		res *engine.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := eng.Run(q)
		done <- outcome{res, err}
	}()
	<-gate.entered // the goroutine now holds the only slot, parked in planning

	_, err := eng.Run(q)
	if !errors.Is(err, engine.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var oe *engine.OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *OverloadedError", err)
	}
	if oe.Limit != 1 {
		t.Errorf("OverloadedError.Limit = %d, want 1", oe.Limit)
	}

	close(gate.release)
	first := <-done
	if first.err != nil {
		t.Fatalf("in-flight query failed: %v", first.err)
	}
	// The slot is free again; the rejected query now runs (cache hit, even).
	res, err := eng.Run(q)
	if err != nil {
		t.Fatalf("run after drain: %v", err)
	}
	if !res.CacheHit {
		t.Error("replay after drain missed the cache")
	}
	if got := reg.Counter("engine.rejected").Value(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	if got := reg.Counter("engine.admitted").Value(); got != 2 {
		t.Errorf("admitted = %d, want 2", got)
	}
}

// TestConcurrentSessionsUnderRace hammers a small engine from many
// goroutines. Every call must end in exactly one of: a correct result or a
// typed overload rejection; the admission counters account for every
// attempt. Run under -race this also checks the cache/admission locking.
func TestConcurrentSessionsUnderRace(t *testing.T) {
	sch := chainCatalog(t, 21)
	reg := obs.NewRegistry()
	eng := engine.New(sch.Cat, engine.Options{MaxConcurrent: 2, Metrics: reg})
	q := chainQuery(sch)

	// Establish the expected result once, uncontended.
	baseline, err := eng.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	wantRows, wantWork := len(baseline.Rows), baseline.Work

	const workers = 8
	const perWorker = 200
	var ok, overloaded atomic.Int64
	fail := make(chan string, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := eng.Session()
			for i := 0; i < perWorker; i++ {
				res, err := sess.Run(q)
				switch {
				case err == nil:
					ok.Add(1)
					if len(res.Rows) != wantRows || res.Work != wantWork {
						fail <- "result diverged under concurrency"
						return
					}
				case errors.Is(err, engine.ErrOverloaded):
					overloaded.Add(1)
				default:
					fail <- "unexpected error: " + err.Error()
					return
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
	total := ok.Load() + overloaded.Load()
	if total != workers*perWorker {
		t.Errorf("ok %d + overloaded %d = %d, want %d", ok.Load(), overloaded.Load(), total, workers*perWorker)
	}
	// Counters see the same arithmetic (+1 for the baseline run).
	admitted := reg.Counter("engine.admitted").Value()
	rejected := reg.Counter("engine.rejected").Value()
	if admitted != ok.Load()+1 {
		t.Errorf("admitted counter = %d, want %d", admitted, ok.Load()+1)
	}
	if rejected != overloaded.Load() {
		t.Errorf("rejected counter = %d, want %d", rejected, overloaded.Load())
	}
	if ok.Load() == 0 {
		t.Error("no query ever succeeded")
	}
}
