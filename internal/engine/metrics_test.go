package engine_test

import (
	"strings"
	"testing"

	"ml4db/internal/engine"
	"ml4db/internal/obs"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
)

// TestPlanCacheCounterExport pins the exact counter values the plan cache
// exports through a registry for a scripted workload: hits, misses,
// evictions, and invalidations must all match what the script implies.
func TestPlanCacheCounterExport(t *testing.T) {
	sch := chainCatalog(t, 11)
	reg := obs.NewRegistry()
	eng := engine.New(sch.Cat, engine.Options{Metrics: reg, CacheSize: 2})
	sess := eng.Session()

	qa := chainQuery(sch)
	qb := chainQuery(sch)
	qb.Filters[0] = []expr.Pred{{Col: 2, Op: expr.GE, Lo: 700}}
	qc := chainQuery(sch)
	qc.Filters[0] = []expr.Pred{{Col: 2, Op: expr.GE, Lo: 800}}

	// Script against a 2-entry LRU cache:
	//   a miss, a hit, b miss, a hit (a now MRU), c miss evicting b,
	//   b miss evicting a.
	// Totals: 2 hits, 4 misses, 2 evictions.
	for _, q := range []*plan.Query{qa, qa, qb, qa, qc, qb} {
		if _, err := sess.Run(q); err != nil {
			t.Fatal(err)
		}
	}
	counter := func(name string) int64 {
		return reg.Counter("engine.plancache." + name).Value()
	}
	if got := counter("hits"); got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}
	if got := counter("misses"); got != 4 {
		t.Errorf("misses = %d, want 4", got)
	}
	if got := counter("evictions"); got != 2 {
		t.Errorf("evictions = %d, want 2", got)
	}
	if got := counter("invalidations"); got != 0 {
		t.Errorf("invalidations = %d before any refresh, want 0", got)
	}

	// A stats refresh invalidates every cached entry (the cache holds 2).
	if eng.CachedPlans() != 2 {
		t.Fatalf("cached plans = %d, want 2", eng.CachedPlans())
	}
	eng.RefreshStats(8, 64)
	if got := counter("invalidations"); got != 2 {
		t.Errorf("invalidations = %d after refresh, want 2", got)
	}
	if eng.CachedPlans() != 0 {
		t.Errorf("cache not emptied by refresh: %d entries", eng.CachedPlans())
	}

	// The cache keeps counting after invalidation: one more miss, one hit.
	for _, q := range []*plan.Query{qa, qa} {
		if _, err := sess.Run(q); err != nil {
			t.Fatal(err)
		}
	}
	if got := counter("misses"); got != 5 {
		t.Errorf("misses = %d after refresh round, want 5", got)
	}
	if got := counter("hits"); got != 3 {
		t.Errorf("hits = %d after refresh round, want 3", got)
	}

	// The registry summary exposes all four counters by name.
	sum := reg.Summary()
	for _, name := range []string{
		"engine.plancache.hits", "engine.plancache.misses",
		"engine.plancache.evictions", "engine.plancache.invalidations",
	} {
		if !strings.Contains(sum, name) {
			t.Errorf("registry summary missing %s:\n%s", name, sum)
		}
	}
}
