package engine

import (
	"fmt"
	"testing"

	"ml4db/internal/obs"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
)

func twoTableQuery(mutate func(q *plan.Query)) *plan.Query {
	q := plan.NewQuery(3, 5)
	q.AddFilter(0, expr.Pred{Col: 1, Op: expr.GE, Lo: 10})
	q.AddFilter(0, expr.Pred{Col: 2, Op: expr.EQ, Lo: 7})
	q.AddJoin(expr.JoinCond{LeftTable: 0, LeftCol: 0, RightTable: 1, RightCol: 0})
	if mutate != nil {
		mutate(q)
	}
	return q
}

func TestCacheKeyNormalization(t *testing.T) {
	base := cacheKey(queryShape(twoTableQuery(nil), "default"), 1, 2, 0, 1)

	// Filter order is incidental: reversed filters share the key.
	reordered := plan.NewQuery(3, 5)
	reordered.AddFilter(0, expr.Pred{Col: 2, Op: expr.EQ, Lo: 7})
	reordered.AddFilter(0, expr.Pred{Col: 1, Op: expr.GE, Lo: 10})
	reordered.AddJoin(expr.JoinCond{LeftTable: 0, LeftCol: 0, RightTable: 1, RightCol: 0})
	if got := cacheKey(queryShape(reordered, "default"), 1, 2, 0, 1); got != base {
		t.Errorf("filter order changed the key:\n%s\nvs\n%s", got, base)
	}

	// Join orientation is incidental: the flipped condition shares the key.
	flipped := twoTableQuery(func(q *plan.Query) {
		q.Joins = []expr.JoinCond{{LeftTable: 1, LeftCol: 0, RightTable: 0, RightCol: 0}}
	})
	if got := cacheKey(queryShape(flipped, "default"), 1, 2, 0, 1); got != base {
		t.Errorf("join orientation changed the key:\n%s\nvs\n%s", got, base)
	}

	// Everything that changes the planning problem changes the key.
	distinct := map[string]string{
		"literal":    cacheKey(queryShape(twoTableQuery(func(q *plan.Query) { q.Filters[0][0].Lo = 11 }), "default"), 1, 2, 0, 1),
		"operator":   cacheKey(queryShape(twoTableQuery(func(q *plan.Query) { q.Filters[0][0].Op = expr.LE }), "default"), 1, 2, 0, 1),
		"table":      cacheKey(queryShape(twoTableQuery(func(q *plan.Query) { q.Tables[1] = 6 }), "default"), 1, 2, 0, 1),
		"join col":   cacheKey(queryShape(twoTableQuery(func(q *plan.Query) { q.Joins[0].RightCol = 1 }), "default"), 1, 2, 0, 1),
		"hint":       cacheKey(queryShape(twoTableQuery(nil), "hash-only"), 1, 2, 0, 1),
		"stats ver":  cacheKey(queryShape(twoTableQuery(nil), "default"), 2, 2, 0, 1),
		"est ver":    cacheKey(queryShape(twoTableQuery(nil), "default"), 1, 3, 0, 1),
		"design ver": cacheKey(queryShape(twoTableQuery(nil), "default"), 1, 2, 1, 1),
		"par degree": cacheKey(queryShape(twoTableQuery(nil), "default"), 1, 2, 0, 4),
	}
	seen := map[string]string{base: "base"}
	for what, key := range distinct {
		if prev, dup := seen[key]; dup {
			t.Errorf("%s collides with %s: %s", what, prev, key)
		}
		seen[key] = what
	}
}

func TestCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := newPlanCache(2, reg)
	mk := func(i int) *plan.Node { return plan.NewScan(i, i, nil) }
	c.Put("a", mk(1))
	c.Put("b", mk(2))
	// Touch "a" so "b" is the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", mk(3))
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry b survived past capacity")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used entry a was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("newest entry c was evicted")
	}
	if got := reg.Counter("engine.plancache.evictions").Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCacheServesClones(t *testing.T) {
	c := newPlanCache(4, nil)
	orig := plan.NewJoin(plan.OpHashJoin, plan.NewScan(0, 0, nil), plan.NewScan(1, 1, nil), 0, 0)
	c.Put("k", orig)

	// Mutating the inserted tree after Put must not reach the cache.
	orig.ActualRows = 999
	got1, _ := c.Get("k")
	if got1.ActualRows != 0 {
		t.Error("Put aliased the caller's tree instead of storing a clone")
	}
	// Mutating a served tree must not reach later readers (the executor
	// writes ActualRows into whatever tree it runs).
	got1.Children[0].ActualRows = 123
	got2, _ := c.Get("k")
	if got2.Children[0].ActualRows != 0 {
		t.Error("Get aliased the stored tree instead of serving a clone")
	}
	if got1 == got2 {
		t.Error("two Gets returned the same tree")
	}
}

func TestCacheInvalidate(t *testing.T) {
	reg := obs.NewRegistry()
	c := newPlanCache(8, reg)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), plan.NewScan(i, i, nil))
	}
	if n := c.Invalidate(); n != 5 {
		t.Errorf("Invalidate dropped %d, want 5", n)
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after invalidate, want 0", c.Len())
	}
	if _, ok := c.Get("k0"); ok {
		t.Error("entry survived invalidation")
	}
	if got := reg.Counter("engine.plancache.invalidations").Value(); got != 5 {
		t.Errorf("invalidations = %d, want 5", got)
	}
	// Cache keeps working after invalidation.
	c.Put("fresh", plan.NewScan(0, 0, nil))
	if _, ok := c.Get("fresh"); !ok {
		t.Error("cache unusable after invalidation")
	}
}
