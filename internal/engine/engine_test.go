package engine_test

import (
	"errors"
	"math"
	"testing"

	"ml4db/internal/engine"
	"ml4db/internal/mlmath"
	"ml4db/internal/obs"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/exec"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
)

// chainCatalog builds the standard three-table chain testbed.
func chainCatalog(t testing.TB, seed uint64) *datagen.ChainSchema {
	t.Helper()
	sch, err := datagen.NewChainSchema(mlmath.NewRNG(seed), []int{400, 200, 100})
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// chainQuery joins the whole chain with a range filter on t0.attr.
func chainQuery(sch *datagen.ChainSchema) *plan.Query {
	q := plan.NewQuery(sch.TableIDs...)
	q.AddFilter(0, expr.Pred{Col: 2, Op: expr.GE, Lo: 450})
	q.AddJoin(expr.JoinCond{LeftTable: 0, LeftCol: 1, RightTable: 1, RightCol: 0})
	q.AddJoin(expr.JoinCond{LeftTable: 1, LeftCol: 1, RightTable: 2, RightCol: 0})
	return q
}

func TestRunMatchesDirectExecution(t *testing.T) {
	sch := chainCatalog(t, 1)
	eng := engine.New(sch.Cat, engine.Options{})
	q := chainQuery(sch)

	res, err := eng.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	p, err := optimizer.New(sch.Cat).Plan(q, optimizer.NoHint())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := exec.New(sch.Cat).Execute(p, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(direct.Rows) {
		t.Fatalf("engine rows = %d, direct execution = %d", len(res.Rows), len(direct.Rows))
	}
	if res.Work != direct.Work {
		t.Errorf("engine work = %d, direct = %d (same plan must cost the same)", res.Work, direct.Work)
	}
	if res.CacheHit {
		t.Error("first run reported a cache hit")
	}
}

func TestPlanCacheHitIsBitIdentical(t *testing.T) {
	sch := chainCatalog(t, 2)
	reg := obs.NewRegistry()
	eng := engine.New(sch.Cat, engine.Options{Metrics: reg})
	q := chainQuery(sch)

	first, err := eng.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit || !second.CacheHit {
		t.Fatalf("CacheHit = (%v, %v), want (false, true)", first.CacheHit, second.CacheHit)
	}
	// A hit replays the identical plan, so result and work are
	// bit-identical, not merely equivalent.
	if len(first.Rows) != len(second.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(first.Rows), len(second.Rows))
	}
	for i := range first.Rows {
		for c := range first.Rows[i] {
			if first.Rows[i][c] != second.Rows[i][c] {
				t.Fatalf("row %d col %d differs between cached and uncached run", i, c)
			}
		}
	}
	if first.Work != second.Work {
		t.Errorf("work differs: %d vs %d", first.Work, second.Work)
	}
	if first.Plan.String() != second.Plan.String() {
		t.Error("cached plan differs from the originally built plan")
	}
	if hits := reg.Counter("engine.plancache.hits").Value(); hits != 1 {
		t.Errorf("plancache.hits = %d, want 1", hits)
	}
	if misses := reg.Counter("engine.plancache.misses").Value(); misses != 1 {
		t.Errorf("plancache.misses = %d, want 1", misses)
	}
}

func TestBudgetAbortIsDeterministicAndCounted(t *testing.T) {
	sch := chainCatalog(t, 3)
	reg := obs.NewRegistry()
	eng := engine.New(sch.Cat, engine.Options{Metrics: reg})
	sess := eng.Session()
	sess.Budget = &exec.Budget{MaxWork: 50}
	q := chainQuery(sch)

	var works []int64
	for i := 0; i < 2; i++ {
		res, err := sess.Run(q)
		if !errors.Is(err, exec.ErrWorkBudgetExceeded) {
			t.Fatalf("run %d: err = %v, want budget abort", i, err)
		}
		var be *exec.BudgetExceededError
		if !errors.As(err, &be) {
			t.Fatalf("run %d: err = %v, want *exec.BudgetExceededError", i, err)
		}
		works = append(works, res.Work)
	}
	// First run plans and aborts; second hits the plan cache and must abort
	// at exactly the same work count — the deterministic-cancellation
	// contract.
	if works[0] != works[1] {
		t.Errorf("abort points differ: %v", works)
	}
	if got := reg.Counter("engine.budget_aborts").Value(); got != 2 {
		t.Errorf("budget_aborts = %d, want 2", got)
	}
}

// nanEstimator is a broken learned estimator: every estimate is NaN.
type nanEstimator struct{}

func (nanEstimator) ScanRows(q *plan.Query, pos int) float64                { return math.NaN() }
func (nanEstimator) JoinSelectivity(q *plan.Query, c expr.JoinCond) float64 { return math.NaN() }

// countingEstimator delegates to a valid inner estimator, counting calls.
type countingEstimator struct {
	inner optimizer.CardEstimator
	calls int
}

func (c *countingEstimator) ScanRows(q *plan.Query, pos int) float64 {
	c.calls++
	return c.inner.ScanRows(q, pos)
}
func (c *countingEstimator) JoinSelectivity(q *plan.Query, j expr.JoinCond) float64 {
	c.calls++
	return c.inner.JoinSelectivity(q, j)
}

func TestFallbackOnBrokenEstimator(t *testing.T) {
	sch := chainCatalog(t, 4)
	reg := obs.NewRegistry()
	eng := engine.New(sch.Cat, engine.Options{Metrics: reg})
	if err := eng.SetEstimator(nanEstimator{}, 7); err != nil {
		t.Fatal(err)
	}
	q := chainQuery(sch)

	res, err := eng.Run(q)
	if err != nil {
		t.Fatalf("query must survive a broken estimator, got %v", err)
	}
	if !res.Fallback {
		t.Error("Fallback = false, want true (estimator returned NaN)")
	}
	// The fallback plan is exactly the classical plan.
	classical, err := optimizer.New(sch.Cat).Plan(q, optimizer.NoHint())
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.String() != classical.String() {
		t.Errorf("fallback plan differs from the classical plan:\n%s\nvs\n%s", res.Plan, classical)
	}
	if got := reg.Counter("engine.fallbacks").Value(); got != 1 {
		t.Errorf("fallbacks = %d, want 1", got)
	}
	// The cached entry is the (safe) fallback plan; the replay succeeds too.
	res2, err := eng.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.CacheHit {
		t.Error("second run after fallback missed the cache")
	}
}

func TestEstimatorCallBudgetTripsFallback(t *testing.T) {
	sch := chainCatalog(t, 5)
	reg := obs.NewRegistry()
	eng := engine.New(sch.Cat, engine.Options{Metrics: reg, EstimatorCallBudget: 1})
	est := &countingEstimator{inner: &optimizer.HistEstimator{Cat: sch.Cat}}
	if err := eng.SetEstimator(est, 3); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(chainQuery(sch))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fallback {
		t.Error("Fallback = false, want true (call budget of 1 cannot plan a 3-way join)")
	}
	// The guard stops consulting the estimator once tripped: at most the
	// budgeted call reached the learned model.
	if est.calls > 1 {
		t.Errorf("learned estimator consulted %d times past a budget of 1", est.calls)
	}
}

func TestHealthyEstimatorDoesNotFallBack(t *testing.T) {
	sch := chainCatalog(t, 6)
	eng := engine.New(sch.Cat, engine.Options{})
	if err := eng.SetEstimator(&optimizer.HistEstimator{Cat: sch.Cat}, 1); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(chainQuery(sch))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback {
		t.Error("healthy estimator triggered a fallback")
	}
	if res.EstimatorVersion != 1 {
		t.Errorf("EstimatorVersion = %d, want 1", res.EstimatorVersion)
	}
}

func TestSetEstimatorRequiresVersion(t *testing.T) {
	sch := chainCatalog(t, 7)
	eng := engine.New(sch.Cat, engine.Options{})
	if err := eng.SetEstimator(nanEstimator{}, 0); err == nil {
		t.Error("SetEstimator accepted version 0 for a non-nil estimator")
	}
	if err := eng.SetEstimator(nil, 0); err != nil {
		t.Errorf("removing the estimator: %v", err)
	}
}

func TestSessionHintConstrainsPlan(t *testing.T) {
	sch := chainCatalog(t, 8)
	eng := engine.New(sch.Cat, engine.Options{})
	sess := eng.Session()
	sess.Hint = optimizer.HintSet{Name: "hash-only", JoinOps: []plan.OpType{plan.OpHashJoin}}
	res, err := sess.Run(chainQuery(sch))
	if err != nil {
		t.Fatal(err)
	}
	res.Plan.Walk(func(n *plan.Node) {
		if !n.IsLeaf() && n.Op != plan.OpHashJoin {
			t.Errorf("hash-only session produced a %v", n.Op)
		}
	})
	// Different hints are different cache keys: the default-hint plan for
	// the same query is a miss, not a wrong hit.
	res2, err := eng.Run(chainQuery(sch))
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHit {
		t.Error("default-hint run hit the hash-only cache entry")
	}
}

func TestSessionAnalyzeTelescopes(t *testing.T) {
	sch := chainCatalog(t, 9)
	eng := engine.New(sch.Cat, engine.Options{})
	sess := eng.Session()
	sess.Analyze = true
	res, err := sess.Run(chainQuery(sch))
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain == nil {
		t.Fatal("Analyze session returned no EXPLAIN")
	}
	if got, want := res.Explain.TotalWork(), res.Counters.Total(); got != want {
		t.Errorf("EXPLAIN TotalWork = %d, want %d", got, want)
	}
}
