package engine_test

import (
	"testing"

	"ml4db/internal/engine"
	"ml4db/internal/qo"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/views"
)

// TestViewRewriteCoherenceAndStaleness covers the engine side of view
// adoption: installing a rewriter invalidates cached plans and reroutes the
// query through the view without changing results; a stale view keeps
// serving its materialization-time snapshot even after base tables grow and
// statistics refresh; removing the rewriter invalidates again and restores
// fresh base-table results.
func TestViewRewriteCoherenceAndStaleness(t *testing.T) {
	sch := chainCatalog(t, 21)
	eng := engine.New(sch.Cat, engine.Options{})
	sess := eng.Session()
	q := chainQuery(sch)

	warm, err := sess.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := sess.Run(q); err != nil || !res.CacheHit {
		t.Fatalf("warm replay: err=%v hit=%v, want cached", err, res.CacheHit)
	}

	v, err := views.Materialize(qo.NewEnv(sch.Cat),
		views.Candidate{LeftID: sch.TableIDs[0], RightID: sch.TableIDs[1], LeftCol: 1, RightCol: 0}, "v01")
	if err != nil {
		t.Fatal(err)
	}
	eng.SetRewriters([]plan.QueryRewriter{v})

	through, err := sess.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if through.CacheHit {
		t.Error("cached plan served after a rewriter install")
	}
	if len(through.Rows) != len(warm.Rows) {
		t.Fatalf("rows through view = %d, base = %d", len(through.Rows), len(warm.Rows))
	}
	if through.Query == nil || through.Query.NumTables() != 2 {
		t.Fatalf("executed query not rewritten: %+v", through.Query)
	}
	if through.PosMap == nil {
		t.Fatal("rewritten result carries no position map")
	}
	if res, err := sess.Run(q); err != nil || !res.CacheHit {
		t.Fatalf("replay through view: err=%v hit=%v, want cached", err, res.CacheHit)
	}

	// Base growth the view does not reflect: 50 fresh t0 rows that pass the
	// filter and join all the way through.
	t0 := sch.Cat.Table(sch.TableIDs[0])
	for i := 0; i < 50; i++ {
		if err := t0.AppendRow([]int64{int64(400 + i), int64(i % 200), 999}); err != nil {
			t.Fatal(err)
		}
	}
	eng.RefreshStats(32, 512)
	stale, err := sess.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(stale.Rows) != len(warm.Rows) {
		t.Fatalf("stale view rows = %d, want the materialization-time %d (views do not auto-refresh)",
			len(stale.Rows), len(warm.Rows))
	}

	// Dropping the rewriter is the invalidation contract: the next run
	// re-plans over base tables and sees the new rows.
	eng.SetRewriters(nil)
	fresh, err := sess.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.CacheHit {
		t.Error("cached plan served after a rewriter removal")
	}
	if fresh.PosMap != nil || fresh.Query.NumTables() != 3 {
		t.Errorf("post-removal query still rewritten: tables=%d posmap=%v", fresh.Query.NumTables(), fresh.PosMap)
	}
	if len(fresh.Rows) != len(warm.Rows)+50 {
		t.Fatalf("fresh rows = %d, want %d (base growth visible again)", len(fresh.Rows), len(warm.Rows)+50)
	}
}
