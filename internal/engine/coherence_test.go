package engine_test

import (
	"testing"
	"time"

	"ml4db/internal/engine"
	"ml4db/internal/mlmath"
	"ml4db/internal/modelsvc"
	"ml4db/internal/obs"
	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
)

// constEstimator is a healthy learned estimator with estimates far from the
// histogram path: tiny scans, selectivity one. It deliberately steers the
// optimizer toward different plans than the classical estimator would pick.
type constEstimator struct{}

func (constEstimator) ScanRows(q *plan.Query, pos int) float64                { return 2 }
func (constEstimator) JoinSelectivity(q *plan.Query, c expr.JoinCond) float64 { return 1 }

// TestCacheCoherenceAcrossHints is the plan-cache coherence property, checked
// for every standard hint set: a cached plan is never served after a stats
// refresh or an estimator promotion — the next run re-plans against current
// state and must produce exactly the plan a fresh optimizer would build.
func TestCacheCoherenceAcrossHints(t *testing.T) {
	plansChangedOnRefresh := 0
	plansChangedOnPromotion := 0
	for _, hint := range optimizer.StandardHintSets() {
		hint := hint
		t.Run(hint.Name, func(t *testing.T) {
			sch := chainCatalog(t, 11)
			eng := engine.New(sch.Cat, engine.Options{Metrics: obs.NewRegistry()})
			sess := eng.Session()
			sess.Hint = hint
			q := chainQuery(sch)

			warm, err := sess.Run(q)
			if err != nil {
				t.Fatal(err)
			}
			if res, err := sess.Run(q); err != nil || !res.CacheHit {
				t.Fatalf("warm replay: err=%v hit=%v, want cached", err, res.CacheHit)
			}

			// Shift the data distribution hard: t2 grows 50x, so join
			// cardinalities (and with them many hinted plans) change.
			t2 := sch.Cat.Table(sch.TableIDs[2])
			for i := 0; i < 5000; i++ {
				if err := t2.AppendRow([]int64{int64(100 + i), 0, int64(i % 37)}); err != nil {
					t.Fatal(err)
				}
			}
			eng.RefreshStats(32, 512)

			afterRefresh, err := sess.Run(q)
			if err != nil {
				t.Fatal(err)
			}
			if afterRefresh.CacheHit {
				t.Error("cached plan served after a stats refresh")
			}
			fresh, err := optimizer.New(sch.Cat).Plan(q, hint)
			if err != nil {
				t.Fatal(err)
			}
			if afterRefresh.Plan.String() != fresh.String() {
				t.Errorf("post-refresh plan is not the fresh classical plan:\n%svs\n%s", afterRefresh.Plan, fresh)
			}
			if afterRefresh.Plan.String() != warm.Plan.String() {
				plansChangedOnRefresh++
			}

			// Estimator promotion: the next run must re-plan under the new
			// estimator, matching a fresh optimizer using it directly.
			if err := eng.SetEstimator(constEstimator{}, 2); err != nil {
				t.Fatal(err)
			}
			afterPromo, err := sess.Run(q)
			if err != nil {
				t.Fatal(err)
			}
			if afterPromo.CacheHit {
				t.Error("cached plan served after an estimator promotion")
			}
			if afterPromo.Fallback {
				t.Error("healthy promoted estimator triggered fallback")
			}
			learnedOpt := &optimizer.Optimizer{Cat: sch.Cat, Est: constEstimator{}, Cost: optimizer.DefaultCostParams()}
			freshLearned, err := learnedOpt.Plan(q, hint)
			if err != nil {
				t.Fatal(err)
			}
			if afterPromo.Plan.String() != freshLearned.String() {
				t.Errorf("post-promotion plan is not the fresh learned plan:\n%svs\n%s", afterPromo.Plan, freshLearned)
			}
			if afterPromo.Plan.String() != afterRefresh.Plan.String() {
				plansChangedOnPromotion++
			}

			// And the cache works again afterwards.
			if res, err := sess.Run(q); err != nil || !res.CacheHit {
				t.Fatalf("replay after promotion: err=%v hit=%v, want cached", err, res.CacheHit)
			}

			// Physical design change — what the autopilot does when it
			// adopts an index: the cached plan must not survive, and the
			// re-plan must match a fresh optimizer seeing the new index.
			t0 := sch.Cat.Table(sch.TableIDs[0])
			t0.AddIndex(catalog.BuildSecondaryIndex(t0, 2))
			eng.NotifyDesignChange()
			afterIndex, err := sess.Run(q)
			if err != nil {
				t.Fatal(err)
			}
			if afterIndex.CacheHit {
				t.Error("cached plan served after an index build")
			}
			freshIndexed, err := learnedOpt.Plan(q, hint)
			if err != nil {
				t.Fatal(err)
			}
			if afterIndex.Plan.String() != freshIndexed.String() {
				t.Errorf("post-index plan is not the fresh plan over the new design:\n%svs\n%s", afterIndex.Plan, freshIndexed)
			}

			// Dropping the index — the autopilot's shadow-trial revert —
			// must invalidate again and restore the pre-index plan.
			t0.DropIndex(2)
			eng.NotifyDesignChange()
			afterDrop, err := sess.Run(q)
			if err != nil {
				t.Fatal(err)
			}
			if afterDrop.CacheHit {
				t.Error("cached plan served after an index drop")
			}
			if afterDrop.Plan.String() != afterPromo.Plan.String() {
				t.Errorf("post-drop plan differs from the pre-index plan:\n%svs\n%s", afterDrop.Plan, afterPromo.Plan)
			}
			if res, err := sess.Run(q); err != nil || !res.CacheHit {
				t.Fatalf("replay after design changes: err=%v hit=%v, want cached", err, res.CacheHit)
			}
		})
	}
	// The property must not hold vacuously: the invalidation events actually
	// changed the chosen plan for at least one hint set.
	if plansChangedOnRefresh == 0 {
		t.Error("stats refresh changed no plan under any hint set; property test is vacuous")
	}
	if plansChangedOnPromotion == 0 {
		t.Error("estimator promotion changed no plan under any hint set; property test is vacuous")
	}
}

// TestSyncRolloutPromotion drives a modelsvc canary promotion and checks the
// engine picks it up exactly once, invalidating the plan cache.
func TestSyncRolloutPromotion(t *testing.T) {
	sch := chainCatalog(t, 12)
	reg := obs.NewRegistry()
	eng := engine.New(sch.Cat, engine.Options{Metrics: reg})
	q := chainQuery(sch)

	clock := &mlmath.ManualClock{T: time.Unix(1700000000, 0)}
	rollout := modelsvc.NewRollout(
		modelsvc.Deployment{Version: 1, Model: versionModel{1}},
		modelsvc.RolloutOptions{Window: 2, Clock: clock, ErrFn: func(pred, truth float64) float64 {
			if pred == truth {
				return 0
			}
			return 1
		}})
	mk := func(d modelsvc.Deployment) optimizer.CardEstimator {
		if d.Version >= 2 {
			return constEstimator{}
		}
		return &optimizer.HistEstimator{Cat: sch.Cat}
	}

	if installed, err := eng.SyncRollout(rollout, mk); err != nil || !installed {
		t.Fatalf("initial sync: installed=%v err=%v, want install of v1", installed, err)
	}
	if v := eng.EstimatorVersion(); v != 1 {
		t.Fatalf("EstimatorVersion = %d, want 1", v)
	}
	if _, err := eng.Run(q); err != nil {
		t.Fatal(err)
	}
	// No promotion yet: syncing again is a no-op and the cache survives.
	if installed, err := eng.SyncRollout(rollout, mk); err != nil || installed {
		t.Fatalf("idle sync: installed=%v err=%v, want no-op", installed, err)
	}
	if res, err := eng.Run(q); err != nil || !res.CacheHit {
		t.Fatalf("pre-promotion replay: err=%v, hit=%v", err, res.CacheHit)
	}

	// Promote version 2 through the canary gate: candidate matches the truth
	// on every window sample, incumbent never does.
	rollout.SetCandidate(modelsvc.Deployment{Version: 2, Model: versionModel{2}})
	for i := 0; i < 2; i++ {
		if out := rollout.Observe([]float64{0}, 2); i == 1 && out != modelsvc.OutcomePromoted {
			t.Fatalf("observe %d: outcome %v, want promotion", i, out)
		}
	}
	if installed, err := eng.SyncRollout(rollout, mk); err != nil || !installed {
		t.Fatalf("post-promotion sync: installed=%v err=%v, want install", installed, err)
	}
	if v := eng.EstimatorVersion(); v != 2 {
		t.Fatalf("EstimatorVersion = %d, want 2", v)
	}
	res, err := eng.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("cached plan served across a rollout promotion")
	}
	if res.EstimatorVersion != 2 {
		t.Errorf("result EstimatorVersion = %d, want 2", res.EstimatorVersion)
	}
}

// versionModel predicts its own version (see modelsvc race tests).
type versionModel struct{ v int }

func (m versionModel) Predict(x []float64) float64 { return float64(m.v) }
