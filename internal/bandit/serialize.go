package bandit

import (
	"encoding/gob"
	"fmt"
	"io"

	"ml4db/internal/mlmath"
)

// tlState is the gob wire form of a ThompsonLinear: the sufficient statistics
// of every arm's posterior, nothing more. mlmath.Mat encodes directly (its
// shape and data are exported), so the stream is self-describing.
type tlState struct {
	Arms, Dim    int
	Noise, Prior float64
	A            []*mlmath.Mat
	B            [][]float64
	N            []int
}

// SaveState serializes the bandit's full posterior so a registry checkpoint
// restores Thompson sampling exactly where it left off.
func (t *ThompsonLinear) SaveState(w io.Writer) error {
	st := tlState{Arms: t.Arms, Dim: t.Dim, Noise: t.Noise, Prior: t.Prior,
		A: t.a, B: t.b, N: t.n}
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("bandit: save: %w", err)
	}
	return nil
}

// LoadState replaces the receiver's posterior with a previously saved one,
// validating internal consistency before touching the receiver.
func (t *ThompsonLinear) LoadState(r io.Reader) error {
	var st tlState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("bandit: load: %w", err)
	}
	if st.Arms < 1 || st.Dim < 1 ||
		len(st.A) != st.Arms || len(st.B) != st.Arms || len(st.N) != st.Arms {
		return fmt.Errorf("bandit: load: inconsistent state (arms=%d dim=%d |A|=%d |B|=%d |N|=%d)",
			st.Arms, st.Dim, len(st.A), len(st.B), len(st.N))
	}
	for arm := 0; arm < st.Arms; arm++ {
		a, b := st.A[arm], st.B[arm]
		if a == nil || a.Rows != st.Dim || a.Cols != st.Dim || len(a.Data) != st.Dim*st.Dim || len(b) != st.Dim {
			return fmt.Errorf("bandit: load: arm %d has malformed statistics", arm)
		}
	}
	t.Arms, t.Dim = st.Arms, st.Dim
	t.Noise, t.Prior = st.Noise, st.Prior
	t.a, t.b, t.n = st.A, st.B, st.N
	return nil
}

// ArchHash identifies the bandit's architecture for registry manifests: two
// checkpoints interchange only if arms and context dimension agree.
func (t *ThompsonLinear) ArchHash() string {
	return fmt.Sprintf("tlinear/arms=%d,dim=%d", t.Arms, t.Dim)
}
