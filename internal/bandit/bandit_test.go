package bandit

import (
	"math"
	"testing"

	"ml4db/internal/mlmath"
)

func TestThompsonConvergesToBestArm(t *testing.T) {
	rng := mlmath.NewRNG(1)
	// Context-independent: arm 2 has the highest mean reward.
	means := []float64{0.2, 0.5, 0.9, 0.4}
	b := NewThompsonLinear(4, 1, 0.3, 1)
	ctx := []float64{1}
	picks := make([]int, 4)
	for i := 0; i < 600; i++ {
		arm, err := b.Select(ctx, rng)
		if err != nil {
			t.Fatal(err)
		}
		picks[arm]++
		b.Update(arm, ctx, means[arm]+0.1*rng.NormFloat64())
	}
	best := mlmath.ArgMax([]float64{float64(picks[0]), float64(picks[1]), float64(picks[2]), float64(picks[3])})
	if best != 2 {
		t.Errorf("most pulled arm = %d (picks %v), want 2", best, picks)
	}
	if picks[2] < 300 {
		t.Errorf("best arm pulled only %d/600 times", picks[2])
	}
}

func TestThompsonContextual(t *testing.T) {
	rng := mlmath.NewRNG(2)
	// Arm 0 is best when ctx[0]=1; arm 1 when ctx[1]=1.
	b := NewThompsonLinear(2, 2, 0.2, 1)
	reward := func(arm int, ctx []float64) float64 {
		if (arm == 0 && ctx[0] == 1) || (arm == 1 && ctx[1] == 1) {
			return 1
		}
		return 0
	}
	for i := 0; i < 800; i++ {
		ctx := []float64{0, 1}
		if i%2 == 0 {
			ctx = []float64{1, 0}
		}
		arm, err := b.Select(ctx, rng)
		if err != nil {
			t.Fatal(err)
		}
		b.Update(arm, ctx, reward(arm, ctx)+0.05*rng.NormFloat64())
	}
	// After training, the posterior mean must route contexts correctly.
	m00, _ := b.Mean(0, []float64{1, 0})
	m10, _ := b.Mean(1, []float64{1, 0})
	m01, _ := b.Mean(0, []float64{0, 1})
	m11, _ := b.Mean(1, []float64{0, 1})
	if m00 <= m10 {
		t.Errorf("ctx A: arm0 mean %v should beat arm1 %v", m00, m10)
	}
	if m11 <= m01 {
		t.Errorf("ctx B: arm1 mean %v should beat arm0 %v", m11, m01)
	}
}

func TestThompsonExploresAllArmsEarly(t *testing.T) {
	rng := mlmath.NewRNG(3)
	b := NewThompsonLinear(5, 1, 1, 1)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		arm, err := b.Select([]float64{1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		seen[arm] = true
		b.Update(arm, []float64{1}, 0.5)
	}
	if len(seen) != 5 {
		t.Errorf("explored %d/5 arms", len(seen))
	}
}

func TestSelectRejectsBadContext(t *testing.T) {
	b := NewThompsonLinear(2, 3, 1, 1)
	if _, err := b.Select([]float64{1}, mlmath.NewRNG(4)); err == nil {
		t.Error("expected dimension error")
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	rng := mlmath.NewRNG(5)
	n := 6
	// Build SPD matrix A = MᵀM + I.
	m := mlmath.NewMat(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	a := m.T().Mul(m)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+1)
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	bvec := a.MulVec(want)
	got, err := mlmath.SolveSPD(a, bvec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Errorf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := mlmath.NewMat(2, 2)
	copy(a.Data, []float64{1, 2, 2, 1}) // eigenvalues 3, −1
	if _, err := mlmath.Cholesky(a); err == nil {
		t.Error("expected non-SPD error")
	}
}
