package bandit

import (
	"fmt"
	"math"

	"ml4db/internal/mlmath"
)

// ThompsonLinear is a contextual Thompson-sampling bandit: each arm a keeps
// a Bayesian linear model of reward, with Gaussian posterior
// N(μ_a, σ²·A_a⁻¹) where A_a = λI + Σxxᵀ and μ_a = A_a⁻¹·Σrx.
type ThompsonLinear struct {
	Arms, Dim int
	// Noise is the assumed reward noise σ; Prior is the ridge λ.
	Noise, Prior float64

	a []*mlmath.Mat // per-arm precision matrices
	b [][]float64   // per-arm Σ r·x
	n []int         // per-arm observation counts
}

// NewThompsonLinear constructs the bandit for arms arms over dim-dimensional
// contexts.
func NewThompsonLinear(arms, dim int, noise, prior float64) *ThompsonLinear {
	if noise <= 0 {
		noise = 1
	}
	if prior <= 0 {
		prior = 1
	}
	t := &ThompsonLinear{Arms: arms, Dim: dim, Noise: noise, Prior: prior}
	for i := 0; i < arms; i++ {
		a := mlmath.NewMat(dim, dim)
		for d := 0; d < dim; d++ {
			a.Set(d, d, prior)
		}
		t.a = append(t.a, a)
		t.b = append(t.b, make([]float64, dim))
		t.n = append(t.n, 0)
	}
	return t
}

// Select draws a posterior weight sample per arm and returns the arm whose
// sampled model predicts the highest reward for ctx.
func (t *ThompsonLinear) Select(ctx []float64, rng *mlmath.RNG) (int, error) {
	if len(ctx) != t.Dim {
		return 0, fmt.Errorf("bandit: context dim %d, want %d", len(ctx), t.Dim)
	}
	best, bestVal := 0, math.Inf(-1)
	for arm := 0; arm < t.Arms; arm++ {
		w, err := t.SampleWeights(arm, rng)
		if err != nil {
			return 0, err
		}
		if v := mlmath.Dot(w, ctx); v > bestVal {
			best, bestVal = arm, v
		}
	}
	return best, nil
}

// SampleWeights draws w̃ ~ N(μ_a, σ²A_a⁻¹) via Cholesky.
func (t *ThompsonLinear) SampleWeights(arm int, rng *mlmath.RNG) ([]float64, error) {
	l, err := mlmath.Cholesky(t.a[arm])
	if err != nil {
		return nil, fmt.Errorf("bandit: arm %d precision not SPD: %w", arm, err)
	}
	mu := mlmath.SolveUpperT(l, mlmath.SolveLower(l, t.b[arm]))
	// A = LLᵀ ⇒ A⁻¹ = L⁻ᵀL⁻¹; sample = μ + σ·L⁻ᵀz has covariance σ²A⁻¹.
	z := make([]float64, t.Dim)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	dev := mlmath.SolveUpperT(l, z)
	for i := range mu {
		mu[i] += t.Noise * dev[i]
	}
	return mu, nil
}

// Mean returns the posterior mean prediction of an arm for ctx.
func (t *ThompsonLinear) Mean(arm int, ctx []float64) (float64, error) {
	mu, err := mlmath.SolveSPD(t.a[arm], t.b[arm])
	if err != nil {
		return 0, err
	}
	return mlmath.Dot(mu, ctx), nil
}

// Update incorporates an observed reward for arm under ctx.
func (t *ThompsonLinear) Update(arm int, ctx []float64, reward float64) {
	a := t.a[arm]
	for i := 0; i < t.Dim; i++ {
		if ctx[i] == 0 {
			continue
		}
		mlmath.AXPY(a.Row(i), ctx[i], ctx)
		t.b[arm][i] += reward * ctx[i]
	}
	t.n[arm]++
}

// Pulls returns the observation count of an arm.
func (t *ThompsonLinear) Pulls(arm int) int { return t.n[arm] }
