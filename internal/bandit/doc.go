// Package bandit implements the contextual multi-armed bandit machinery of
// BAO (§3.2): Thompson sampling over Bayesian linear-regression reward
// models, one per arm (hint set). The agent balances exploring unproven hint
// sets against exploiting known-good ones, which is what gives BAO its
// bounded regret and fast adaptation.
package bandit
