package bandit

import (
	"bytes"
	"strings"
	"testing"

	"ml4db/internal/mlmath"
)

func trainedBandit(t *testing.T) *ThompsonLinear {
	t.Helper()
	b := NewThompsonLinear(3, 4, 0.5, 1)
	rng := mlmath.NewRNG(7)
	for i := 0; i < 60; i++ {
		ctx := []float64{1, rng.Float64(), rng.Float64(), rng.Float64()}
		b.Update(i%3, ctx, rng.Float64()*2-1)
	}
	return b
}

func TestThompsonLinearStateRoundTrip(t *testing.T) {
	src := trainedBandit(t)
	var buf bytes.Buffer
	if err := src.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewThompsonLinear(3, 4, 0.5, 1)
	if err := dst.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	ctx := []float64{1, 0.2, 0.8, 0.5}
	for arm := 0; arm < 3; arm++ {
		a, err := src.Mean(arm, ctx)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dst.Mean(arm, ctx)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("arm %d posterior mean differs after round trip: %v vs %v", arm, a, b)
		}
		if src.Pulls(arm) != dst.Pulls(arm) {
			t.Fatalf("arm %d pull count differs", arm)
		}
	}
	// Thompson draws from identical RNG states must agree too.
	w1, err := src.SampleWeights(1, mlmath.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := dst.SampleWeights(1, mlmath.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("sampled weights differ at %d: %v vs %v", i, w1[i], w2[i])
		}
	}
}

func TestThompsonLinearLoadRejectsGarbage(t *testing.T) {
	dst := NewThompsonLinear(2, 3, 1, 1)
	before, err := dst.Mean(0, []float64{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadState(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("LoadState accepted garbage")
	}
	after, err := dst.Mean(0, []float64{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatal("rejected load mutated the bandit")
	}
}

func TestThompsonLinearArchHash(t *testing.T) {
	a := NewThompsonLinear(3, 4, 1, 1)
	b := NewThompsonLinear(3, 5, 1, 1)
	if a.ArchHash() == b.ArchHash() {
		t.Fatal("different dims share an arch hash")
	}
	if !strings.Contains(a.ArchHash(), "arms=3") {
		t.Fatalf("arch hash %q does not describe the architecture", a.ArchHash())
	}
}
