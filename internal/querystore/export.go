package querystore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The JSONL schema. Field sets are stable: cmd/ml4db-tracecheck and the
// scripts/check.sh smoke gate fail if a required field disappears. Under a
// ManualClock two replays of the same workload export byte-identical files.

type headerJSON struct {
	Type       string `json:"type"` // "querystore"
	Schema     int    `json:"schema"`
	Statements int    `json:"statements"`
	Heat       int    `json:"heat"`
	Windows    int    `json:"windows"`
	Drift      int    `json:"drift"`
	Models     int    `json:"models"`
	Dropped    int64  `json:"dropped"`
}

type statementJSON struct {
	Type         string  `json:"type"` // "statement"
	ID           int64   `json:"id"`
	Shape        string  `json:"shape"`
	Calls        int64   `json:"calls"`
	CacheHits    int64   `json:"cache_hits"`
	Fallbacks    int64   `json:"fallbacks"`
	BudgetAborts int64   `json:"budget_aborts"`
	TotalWork    int64   `json:"total_work"`
	MaxWork      int64   `json:"max_work"`
	TotalRows    int64   `json:"total_rows"`
	PageMisses   int64   `json:"page_misses"`
	QErrCount    int64   `json:"qerr_count"`
	QErrMean     float64 `json:"qerr_mean"`
	QErrMax      float64 `json:"qerr_max"`
	LastWindow   int64   `json:"last_seen_window"`
	RowsPerCall  float64 `json:"rows_per_call"`
}

type heatJSON struct {
	Type        string  `json:"type"` // "heat"
	Table       int     `json:"table"`
	Col         int     `json:"col"`
	FilterCount int64   `json:"filters"`
	JoinCount   int64   `json:"joins"`
	SelCount    int64   `json:"sel_count"`
	SelMean     float64 `json:"sel_mean"`
}

type windowQErrJSON struct {
	Version int     `json:"version"`
	Count   int64   `json:"count"`
	Mean    float64 `json:"mean"`
	Max     float64 `json:"max"`
}

type windowJSON struct {
	Type         string           `json:"type"` // "window"
	ID           int64            `json:"id"`
	StartMs      int64            `json:"start_ms"`
	EndMs        int64            `json:"end_ms"`
	Queries      int64            `json:"queries"`
	CacheHits    int64            `json:"cache_hits"`
	Fallbacks    int64            `json:"fallbacks"`
	BudgetAborts int64            `json:"budget_aborts"`
	TotalWork    int64            `json:"total_work"`
	TotalRows    int64            `json:"total_rows"`
	PageMisses   int64            `json:"page_misses"`
	PoolHits     int64            `json:"pool_hits"`
	PoolMisses   int64            `json:"pool_misses"`
	QErr         []windowQErrJSON `json:"qerr"`
}

type evidenceJSON struct {
	Window int64   `json:"window"`
	Value  float64 `json:"value"`
}

type driftJSON struct {
	Type       string         `json:"type"` // "drift"
	Seq        int64          `json:"seq"`
	Kind       string         `json:"kind"`
	AtMs       int64          `json:"at_ms"`
	EstVersion int            `json:"est_version"`
	Before     float64        `json:"before"`
	After      float64        `json:"after"`
	Evidence   []evidenceJSON `json:"evidence"`
}

type modelJSON struct {
	Type      string `json:"type"` // "model"
	Seq       int64  `json:"seq"`
	AtMs      int64  `json:"at_ms"`
	Action    string `json:"action"`
	Version   int    `json:"version"`
	Incumbent int    `json:"incumbent"`
}

// WriteJSONL exports the store's sealed state: a header line, then
// statements (ID order), heat (table/column order), windows (seal order),
// drift events, and model events (emission order). The open window is not
// included — call Flush first to seal it.
func (s *Store) WriteJSONL(w io.Writer) error {
	if s == nil {
		return nil
	}
	stmts := s.Statements()
	heat := s.Heat()
	wins := s.Windows()
	drift := s.DriftEvents()
	models := s.ModelEvents()

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(headerJSON{
		Type: "querystore", Schema: 1,
		Statements: len(stmts), Heat: len(heat), Windows: len(wins),
		Drift: len(drift), Models: len(models), Dropped: s.DroppedStatements(),
	}); err != nil {
		return err
	}
	for _, st := range stmts {
		line := statementJSON{
			Type: "statement", ID: st.ID, Shape: st.Shape,
			Calls: st.Calls, CacheHits: st.CacheHits, Fallbacks: st.Fallbacks,
			BudgetAborts: st.BudgetAborts, TotalWork: st.TotalWork,
			MaxWork: st.MaxWork, TotalRows: st.TotalRows, PageMisses: st.PageMisses,
			QErrCount: st.QErrCount, QErrMean: st.QErrMean(), QErrMax: st.QErrMax,
			LastWindow: st.LastWindow, RowsPerCall: st.RowsPerCall(),
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	for _, h := range heat {
		line := heatJSON{
			Type: "heat", Table: h.TableID, Col: h.Col,
			FilterCount: h.FilterCount, JoinCount: h.JoinCount,
			SelCount: h.SelCount, SelMean: h.SelMean(),
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	for _, win := range wins {
		line := windowJSON{
			Type: "window", ID: win.Index,
			StartMs: win.Start.UnixMilli(), EndMs: win.End.UnixMilli(),
			Queries: win.Queries, CacheHits: win.CacheHits,
			Fallbacks: win.Fallbacks, BudgetAborts: win.BudgetAborts,
			TotalWork: win.TotalWork, TotalRows: win.TotalRows,
			PageMisses: win.PageMisses, PoolHits: win.PoolHits,
			PoolMisses: win.PoolMisses, QErr: []windowQErrJSON{},
		}
		for _, q := range win.QErr {
			line.QErr = append(line.QErr, windowQErrJSON{
				Version: q.Version, Count: q.Count, Mean: q.Mean(), Max: q.Max,
			})
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	for _, ev := range drift {
		line := driftJSON{
			Type: "drift", Seq: ev.Seq, Kind: ev.Kind.String(),
			AtMs: ev.At.UnixMilli(), EstVersion: ev.EstimatorVersion,
			Before: ev.Before, After: ev.After, Evidence: []evidenceJSON{},
		}
		for _, e := range ev.Evidence {
			line.Evidence = append(line.Evidence, evidenceJSON{Window: e.Window, Value: e.Value})
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	for _, ev := range models {
		line := modelJSON{
			Type: "model", Seq: ev.Seq, AtMs: ev.At.UnixMilli(),
			Action: ev.Action.String(), Version: ev.Version, Incumbent: ev.Incumbent,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// requiredFields per line type; the validator fails on any missing field,
// so schema drift is caught by CI rather than by downstream consumers.
var requiredFields = map[string][]string{
	"querystore": {"schema", "statements", "heat", "windows", "drift", "models", "dropped"},
	"statement": {"id", "shape", "calls", "cache_hits", "fallbacks", "budget_aborts",
		"total_work", "max_work", "total_rows", "page_misses",
		"qerr_count", "qerr_mean", "qerr_max", "last_seen_window", "rows_per_call"},
	"heat":   {"table", "col", "filters", "joins", "sel_count", "sel_mean"},
	"window": {"id", "start_ms", "end_ms", "queries", "cache_hits", "fallbacks", "budget_aborts", "total_work", "total_rows", "page_misses", "pool_hits", "pool_misses", "qerr"},
	"drift":  {"seq", "kind", "at_ms", "est_version", "before", "after", "evidence"},
	"model":  {"seq", "at_ms", "action", "version", "incumbent"},
}

// ValidateJSONL checks a querystore export: the first line must be the
// querystore header, every later line one of the typed records with its
// required fields, and the header's section counts must match the lines
// that follow. Returns the number of validated lines (header included).
func ValidateJSONL(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	validated := 0
	var header headerJSON
	counts := map[string]int{}
	for sc.Scan() {
		line := sc.Bytes()
		lineNo++
		if len(line) == 0 {
			continue
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(line, &m); err != nil {
			return validated, fmt.Errorf("line %d: not valid JSON: %v", lineNo, err)
		}
		var typ string
		if err := json.Unmarshal(m["type"], &typ); err != nil {
			return validated, fmt.Errorf("line %d: missing type", lineNo)
		}
		if validated == 0 {
			if typ != "querystore" {
				return validated, fmt.Errorf("line %d: first line must be the querystore header, got type %q", lineNo, typ)
			}
			if err := checkFields(m, lineNo, typ); err != nil {
				return validated, err
			}
			if err := json.Unmarshal(line, &header); err != nil {
				return validated, fmt.Errorf("line %d: bad header: %v", lineNo, err)
			}
			if header.Schema != 1 {
				return validated, fmt.Errorf("line %d: unsupported schema version %d", lineNo, header.Schema)
			}
			validated++
			continue
		}
		fields, ok := requiredFields[typ]
		if !ok || typ == "querystore" {
			return validated, fmt.Errorf("line %d: unknown record type %q", lineNo, typ)
		}
		for _, f := range fields {
			if _, present := m[f]; !present {
				return validated, fmt.Errorf("line %d: %s record missing field %q", lineNo, typ, f)
			}
		}
		counts[typ]++
		validated++
	}
	if err := sc.Err(); err != nil {
		return validated, err
	}
	if validated == 0 {
		return 0, fmt.Errorf("empty export: no querystore header")
	}
	want := map[string]int{
		"statement": header.Statements, "heat": header.Heat,
		"window": header.Windows, "drift": header.Drift, "model": header.Models,
	}
	for typ, n := range want {
		if counts[typ] != n {
			return validated, fmt.Errorf("header declares %d %s records, found %d", n, typ, counts[typ])
		}
	}
	return validated, nil
}

func checkFields(m map[string]json.RawMessage, lineNo int, typ string) error {
	for _, f := range requiredFields[typ] {
		if _, ok := m[f]; !ok {
			return fmt.Errorf("line %d: %s record missing field %q", lineNo, typ, f)
		}
	}
	return nil
}
