package querystore

import (
	"testing"
	"time"

	"ml4db/internal/mlmath"
	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/storage"
)

// TestNilStoreIsFree pins the "nil is off, and free" contract: every method
// no-ops on a nil receiver and the recording path allocates nothing.
func TestNilStoreIsFree(t *testing.T) {
	var s *Store
	o := Observation{Shape: "hdefault|T0", Work: 10, Rows: 3}
	s.Record(o)
	s.Flush()
	s.RecordModelInstall(1)
	if got := s.Statements(); got != nil {
		t.Errorf("nil Statements = %v", got)
	}
	if got := s.Windows(); got != nil {
		t.Errorf("nil Windows = %v", got)
	}
	if got := s.DriftEvents(); got != nil {
		t.Errorf("nil DriftEvents = %v", got)
	}
	if got := s.ModelEvents(); got != nil {
		t.Errorf("nil ModelEvents = %v", got)
	}
	if err := s.WriteJSONL(nil); err != nil {
		t.Errorf("nil WriteJSONL err = %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		s.Record(o)
	})
	if allocs != 0 {
		t.Errorf("nil Record allocates %.1f per call, want 0", allocs)
	}
}

func manualStore(opts Options) (*Store, *mlmath.ManualClock) {
	mc := &mlmath.ManualClock{T: time.Unix(1000, 0)}
	opts.Clock = mc
	if opts.Window == 0 {
		opts.Window = time.Second
	}
	return New(opts), mc
}

func TestStatementAccounting(t *testing.T) {
	s, _ := manualStore(Options{})
	s.Record(Observation{Shape: "a", Work: 100, Rows: 5})
	s.Record(Observation{Shape: "a", Work: 300, Rows: 7, CacheHit: true, PageMisses: 4})
	s.Record(Observation{Shape: "a", Work: 50, Fallback: true})
	s.Record(Observation{Shape: "b", Work: 20, BudgetAbort: true})

	stmts := s.Statements()
	if len(stmts) != 2 {
		t.Fatalf("statements = %d, want 2", len(stmts))
	}
	a, b := stmts[0], stmts[1]
	if a.Shape != "a" || a.ID != 0 || b.Shape != "b" || b.ID != 1 {
		t.Fatalf("IDs not in first-seen order: %+v %+v", a, b)
	}
	if a.Calls != 3 || a.TotalWork != 450 || a.MaxWork != 300 || a.TotalRows != 12 {
		t.Errorf("a accounting wrong: %+v", a)
	}
	if a.CacheHits != 1 || a.Fallbacks != 1 || a.PageMisses != 4 {
		t.Errorf("a flags wrong: %+v", a)
	}
	if b.Calls != 1 || b.BudgetAborts != 1 {
		t.Errorf("b accounting wrong: %+v", b)
	}
}

func TestStatementCap(t *testing.T) {
	s, _ := manualStore(Options{MaxStatements: 2})
	for _, shape := range []string{"a", "b", "c", "b"} {
		s.Record(Observation{Shape: shape})
	}
	if got := len(s.Statements()); got != 2 {
		t.Errorf("statements = %d, want 2 (capped)", got)
	}
	if got := s.DroppedStatements(); got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
	// The capped shape still counted in the window aggregates.
	s.Flush()
	if w := s.Windows(); len(w) != 1 || w[0].Queries != 4 {
		t.Errorf("window queries = %+v, want 4", w)
	}
}

// twoColCatalog builds t0(a,b) with 10 rows and t1(c,d) with 20 rows.
func twoColCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.NewCatalog()
	t0 := catalog.NewTable("t0", "a", "b")
	t1 := catalog.NewTable("t1", "c", "d")
	for i := int64(0); i < 10; i++ {
		if err := t0.AppendRow([]int64{i, i % 3}); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 20; i++ {
		if err := t1.AppendRow([]int64{i % 10, i}); err != nil {
			t.Fatal(err)
		}
	}
	cat.MustAdd(t0)
	cat.MustAdd(t1)
	return cat
}

func TestQErrAndHeatHarvest(t *testing.T) {
	cat := twoColCatalog(t)
	s, _ := manualStore(Options{Catalog: cat})

	// A join plan with known annotations: scan(t0, b=1) est 4 actual 3,
	// scan(t1) est 20 actual 20, join on t0.a = t1.c est 10 actual 6.
	l := plan.NewScan(0, 0, []expr.Pred{{Col: 1, Op: expr.EQ, Lo: 1}})
	l.EstRows, l.ActualRows = 4, 3
	r := plan.NewScan(1, 1, nil)
	r.EstRows, r.ActualRows = 20, 20
	j := plan.NewJoin(plan.OpHashJoin, l, r, 0, 0) // t0 col a, t1 col c
	j.EstRows, j.ActualRows = 10, 6
	s.Record(Observation{Shape: "q", Plan: j, EstimatorVersion: 2})

	stmts := s.Statements()
	if len(stmts) != 1 {
		t.Fatalf("statements = %d", len(stmts))
	}
	st := stmts[0]
	if st.QErrCount != 1 {
		t.Fatalf("qerr count = %d, want 1", st.QErrCount)
	}
	// Node q-errors (pseudocount +1): join 11/7, left 5/4, right 1.
	wantMean := (11.0/7.0 + 5.0/4.0 + 1.0) / 3.0
	if diff := st.QErrSum - wantMean; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("qerr sum = %v, want %v", st.QErrSum, wantMean)
	}
	if diff := st.QErrMax - 11.0/7.0; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("qerr max = %v, want %v", st.QErrMax, 11.0/7.0)
	}

	heat := s.Heat()
	if len(heat) != 3 {
		t.Fatalf("heat entries = %+v, want 3", heat)
	}
	// Sorted by (table, col): t0.a (join), t0.b (filter), t1.c (join).
	if heat[0].TableID != 0 || heat[0].Col != 0 || heat[0].JoinCount != 1 {
		t.Errorf("heat[0] = %+v, want t0.a join", heat[0])
	}
	if heat[1].TableID != 0 || heat[1].Col != 1 || heat[1].FilterCount != 1 {
		t.Errorf("heat[1] = %+v, want t0.b filter", heat[1])
	}
	if heat[2].TableID != 1 || heat[2].Col != 0 || heat[2].JoinCount != 1 {
		t.Errorf("heat[2] = %+v, want t1.c join", heat[2])
	}
	// Filter selectivity: leaf output 3 of 10 rows.
	if diff := heat[1].SelSum - 0.3; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("filter sel = %v, want 0.3", heat[1].SelSum)
	}
	// Join selectivity: 6 / (3*20).
	if diff := heat[0].SelSum - 0.1; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("join sel = %v, want 0.1", heat[0].SelSum)
	}

	// A budget abort contributes counters but no harvest.
	s.Record(Observation{Shape: "q", Plan: j, BudgetAbort: true})
	st = s.Statements()[0]
	if st.Calls != 2 || st.QErrCount != 1 {
		t.Errorf("abort harvested: %+v", st)
	}
}

func TestWindowAdvance(t *testing.T) {
	var pool fakePool
	s, mc := manualStore(Options{Pool: &pool})
	s.Record(Observation{Shape: "a", Work: 10, EstimatorVersion: 1})
	s.Record(Observation{Shape: "a", Work: 20, CacheHit: true})
	pool.stats = storage.PoolStats{Hits: 8, Misses: 2}
	mc.Advance(time.Second) // seals window 0
	s.Record(Observation{Shape: "b", Work: 5, Fallback: true})
	mc.Advance(5 * time.Second) // idle gap: window indexes must jump
	s.Record(Observation{Shape: "b", Work: 7})
	s.Flush()

	wins := s.Windows()
	if len(wins) != 3 {
		t.Fatalf("windows = %d, want 3: %+v", len(wins), wins)
	}
	w0, w1, w2 := wins[0], wins[1], wins[2]
	if w0.Index != 0 || w0.Queries != 2 || w0.TotalWork != 30 || w0.CacheHits != 1 {
		t.Errorf("w0 = %+v", w0)
	}
	if w0.PoolHits != 8 || w0.PoolMisses != 2 {
		t.Errorf("w0 pool delta = %d/%d, want 8/2", w0.PoolHits, w0.PoolMisses)
	}
	if w1.Index != 1 || w1.Queries != 1 || w1.Fallbacks != 1 {
		t.Errorf("w1 = %+v", w1)
	}
	if w2.Index != 6 || w2.Queries != 1 || w2.TotalWork != 7 {
		t.Errorf("w2 = %+v (idle windows must be skipped, not emitted)", w2)
	}
	// Second seal sees no pool movement.
	if w1.PoolHits != 0 || w1.PoolMisses != 0 {
		t.Errorf("w1 pool delta = %d/%d, want 0/0", w1.PoolHits, w1.PoolMisses)
	}
	if !w0.End.Equal(w0.Start.Add(time.Second)) {
		t.Errorf("w0 interval = [%v, %v)", w0.Start, w0.End)
	}
}

type fakePool struct{ stats storage.PoolStats }

func (p *fakePool) Stats() storage.PoolStats { return p.stats }

func TestWindowRingCap(t *testing.T) {
	s, mc := manualStore(Options{MaxWindows: 3})
	for i := 0; i < 5; i++ {
		s.Record(Observation{Shape: "a"})
		mc.Advance(time.Second)
	}
	s.Flush()
	wins := s.Windows()
	if len(wins) != 3 {
		t.Fatalf("ring holds %d, want 3", len(wins))
	}
	if wins[0].Index != 2 || wins[2].Index != 4 {
		t.Errorf("ring kept wrong windows: %+v", wins)
	}
}

// TestRecencyAndTemplateHarvest pins the tuning-loop inputs: LastWindow
// tracks the window of the most recent call, RowsPerCall averages result
// sizes, and the first harvested plan reconstructs a statement template with
// the executed tables, filters, and join conditions.
func TestRecencyAndTemplateHarvest(t *testing.T) {
	cat := twoColCatalog(t)
	s, mc := manualStore(Options{Catalog: cat})

	l := plan.NewScan(0, 0, []expr.Pred{{Col: 1, Op: expr.BETWEEN, Lo: 1, Hi: 3}})
	l.EstRows, l.ActualRows = 4, 3
	r := plan.NewScan(1, 1, nil)
	r.EstRows, r.ActualRows = 20, 20
	j := plan.NewJoin(plan.OpHashJoin, l, r, 0, 0)
	j.EstRows, j.ActualRows = 10, 6

	s.Record(Observation{Shape: "q", Plan: j, Rows: 6})
	mc.Advance(3100 * time.Millisecond)
	s.Record(Observation{Shape: "q", Plan: j, Rows: 2})

	st := s.Statements()[0]
	if st.LastWindow != 3 {
		t.Errorf("LastWindow = %d, want 3 (the window of the latest call)", st.LastWindow)
	}
	if got := st.RowsPerCall(); got != 4 {
		t.Errorf("RowsPerCall = %v, want 4", got)
	}
	tmpl := st.Template
	if tmpl == nil {
		t.Fatal("no template reconstructed despite a catalog and a harvested plan")
	}
	if tmpl.NumTables() != 2 || tmpl.Tables[0] != 0 || tmpl.Tables[1] != 1 {
		t.Fatalf("template tables = %v, want [0 1]", tmpl.Tables)
	}
	if len(tmpl.Filters[0]) != 1 || tmpl.Filters[0][0].Op != expr.BETWEEN {
		t.Errorf("template filters = %+v, want t0's BETWEEN preserved", tmpl.Filters)
	}
	if len(tmpl.Joins) != 1 || tmpl.Joins[0].LeftCol != 0 || tmpl.Joins[0].RightCol != 0 {
		t.Errorf("template joins = %+v", tmpl.Joins)
	}
	// The template is captured once and shared read-only across snapshots.
	if again := s.Statements()[0].Template; again != tmpl {
		t.Error("template pointer changed between snapshots")
	}
}
