package querystore

import (
	"sort"
	"time"
)

// VersionQErr is one estimator version's q-error aggregate within a window.
type VersionQErr struct {
	Version int
	Count   int64
	Sum     float64
	Max     float64
}

// Mean returns the mean per-call q-error, or 0 with no samples.
func (v VersionQErr) Mean() float64 {
	if v.Count == 0 {
		return 0
	}
	return v.Sum / float64(v.Count)
}

// WindowStats is one sealed aggregation window. Index is the window's
// position on the logical timeline (consecutive windows over an idle period
// are skipped, so indexes can jump); [Start, End) is its clock interval.
type WindowStats struct {
	Index        int64
	Start, End   time.Time
	Queries      int64
	CacheHits    int64
	Fallbacks    int64
	BudgetAborts int64
	TotalWork    int64
	TotalRows    int64
	PageMisses   int64
	// QErr holds per-estimator-version q-error aggregates, sorted by
	// version. Version 0 is the classical planner.
	QErr []VersionQErr
	// PoolHits/PoolMisses are the buffer-pool deltas over the window
	// (sampled from Options.Pool at seal time; zero without a pool).
	PoolHits   int64
	PoolMisses int64
}

// winAgg is the open (current) window being accumulated.
type winAgg struct {
	index        int64
	start        time.Time
	queries      int64
	cacheHits    int64
	fallbacks    int64
	budgetAborts int64
	totalWork    int64
	totalRows    int64
	pageMisses   int64
	qerr         map[int]*VersionQErr
}

func (w *winAgg) add(o Observation, h harvestResult) {
	w.queries++
	if o.CacheHit {
		w.cacheHits++
	}
	if o.Fallback {
		w.fallbacks++
	}
	if o.BudgetAbort {
		w.budgetAborts++
	}
	w.totalWork += o.Work
	w.totalRows += o.Rows
	w.pageMisses += o.PageMisses
	if h.ok {
		if w.qerr == nil {
			w.qerr = make(map[int]*VersionQErr)
		}
		v, ok := w.qerr[o.EstimatorVersion]
		if !ok {
			v = &VersionQErr{Version: o.EstimatorVersion}
			w.qerr[o.EstimatorVersion] = v
		}
		v.Count++
		v.Sum += h.qerrMean
		if h.qerrMax > v.Max {
			v.Max = h.qerrMax
		}
	}
}

// seal converts the open window into its exported form.
func (w *winAgg) seal(dur time.Duration) WindowStats {
	ws := WindowStats{
		Index:        w.index,
		Start:        w.start,
		End:          w.start.Add(dur),
		Queries:      w.queries,
		CacheHits:    w.cacheHits,
		Fallbacks:    w.fallbacks,
		BudgetAborts: w.budgetAborts,
		TotalWork:    w.totalWork,
		TotalRows:    w.totalRows,
		PageMisses:   w.pageMisses,
	}
	versions := make([]int, 0, len(w.qerr))
	for v := range w.qerr {
		versions = append(versions, v)
	}
	sort.Ints(versions)
	for _, v := range versions {
		ws.QErr = append(ws.QErr, *w.qerr[v])
	}
	return ws
}

// windowRing keeps the most recent cap sealed windows in seal order.
type windowRing struct {
	cap  int
	wins []WindowStats
}

func (r *windowRing) push(w WindowStats) {
	r.wins = append(r.wins, w)
	if len(r.wins) > r.cap {
		// Shift instead of a circular index: cap is small and snapshots stay
		// trivially ordered.
		copy(r.wins, r.wins[len(r.wins)-r.cap:])
		r.wins = r.wins[:r.cap]
	}
}

// advanceLocked moves the window frontier to cover now, sealing the current
// window if the clock has left it. Returns any drift events the seal fired.
func (s *Store) advanceLocked(now time.Time) []DriftEvent {
	if !s.curStarted {
		s.curStarted = true
		s.cur = winAgg{index: 0, start: now}
		return nil
	}
	dur := s.opts.Window
	if now.Before(s.cur.start.Add(dur)) {
		return nil
	}
	// Whole windows elapsed since the current one opened; skip the empty
	// ones so an idle store does not flood the ring.
	k := now.Sub(s.cur.start) / dur
	fired := s.sealLocked()
	s.cur = winAgg{index: s.cur.index + int64(k), start: s.cur.start.Add(time.Duration(k) * dur)}
	s.curStarted = true
	return fired
}

// sealLocked pushes the current (non-empty) window into the ring, samples
// the pool delta, and runs the drift monitors. The current window resets to
// unstarted; the next observation opens a fresh one.
func (s *Store) sealLocked() []DriftEvent {
	if !s.curStarted || s.cur.queries == 0 {
		s.curStarted = false
		return nil
	}
	ws := s.cur.seal(s.opts.Window)
	if s.opts.Pool != nil {
		ps := s.opts.Pool.Stats()
		ws.PoolHits = ps.Hits - s.drift.lastPoolHits
		ws.PoolMisses = ps.Misses - s.drift.lastPoolMisses
		s.drift.lastPoolHits = ps.Hits
		s.drift.lastPoolMisses = ps.Misses
	}
	s.windows.push(ws)
	s.curStarted = false
	return s.evaluateDriftLocked(ws)
}

// LastWindowIndex returns the index of the current open window, or of the
// most recently sealed one when none is open, or -1 before any observation.
// Tuning trials anchor on it: "wait N more windows" means N sealed windows
// with a larger index.
func (s *Store) LastWindowIndex() int64 {
	if s == nil {
		return -1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.curStarted {
		return s.cur.index
	}
	if n := len(s.windows.wins); n > 0 {
		return s.windows.wins[n-1].Index
	}
	return -1
}

// Windows returns the sealed windows, oldest first.
func (s *Store) Windows() []WindowStats {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WindowStats, len(s.windows.wins))
	copy(out, s.windows.wins)
	return out
}
