// Package querystore is the engine's workload observatory: a deterministic,
// queryable record of what the database has been asked to do and how well
// its learned components served those requests.
//
// The engine feeds the store one Observation per executed query. The store
// maintains four connected views of that stream:
//
//   - a statement store, keyed by the engine's normalized query shape,
//     accumulating calls, work, rows, page misses, budget aborts, plan-cache
//     hits, estimator fallbacks, and estimated-vs-actual cardinality error
//     harvested from the executed plan tree — plus a predicate/column heat
//     map (which columns appear in filters and joins, with observed
//     selectivities), the input contract of index/physical-design advisors;
//   - windowed snapshots: a fixed-size ring of per-window aggregates
//     advanced by an injected mlmath.Clock, so replays under a ManualClock
//     are bit-identical;
//   - drift monitors over those windows — q-error trend per estimator
//     version, buffer-pool hit-rate trend, fallback-rate trend — emitting
//     typed DriftEvents with the window evidence attached;
//   - SQL system views (sys_statements, sys_windows, sys_drift, sys_models)
//     registered as virtual catalog tables, so the observatory is read back
//     through the normal planner/executor with plain SELECTs.
//
// The store carries the same "nil is off, and free" contract as obs: every
// method on a nil *Store no-ops without allocating, so instrumented code
// needs no conditionals and pays nothing when observation is disabled.
package querystore
