package querystore

import (
	"fmt"
	"math"

	"ml4db/internal/sqlkit/catalog"
)

// The system-view table names RegisterViews claims in the catalog.
const (
	ViewStatements = "sys_statements"
	ViewWindows    = "sys_windows"
	ViewDrift      = "sys_drift"
	ViewModels     = "sys_models"
)

// RegisterViews registers the four querystore system views as virtual
// read-only tables served from s, making the observatory queryable with
// plain SELECTs through the normal planner/executor. Tables hold int64
// values, so fractional metrics are exported milli-scaled (×1000, rounded):
// qerr_mean_milli = 2500 means a mean q-error of 2.5.
//
// Registration is idempotent per catalog: a sys_ table that is already
// virtual is rebound to s; a non-virtual table squatting on a sys_ name is
// an error.
func RegisterViews(cat *catalog.Catalog, s *Store) error {
	views := []struct {
		name   string
		cols   []string
		source catalog.VirtualSource
	}{
		{
			ViewStatements,
			[]string{"stmt_id", "calls", "cache_hits", "fallbacks", "budget_aborts",
				"total_work", "max_work", "total_rows", "page_misses",
				"qerr_count", "qerr_mean_milli", "qerr_max_milli",
				"last_seen_window", "rows_per_call_milli"},
			statementsView{s},
		},
		{
			ViewWindows,
			[]string{"window_id", "start_ms", "end_ms", "queries", "cache_hits",
				"fallbacks", "budget_aborts", "total_work", "total_rows",
				"page_misses", "pool_hits", "pool_misses", "hit_rate_milli"},
			windowsView{s},
		},
		{
			ViewDrift,
			[]string{"seq", "kind", "at_ms", "est_version",
				"before_milli", "after_milli", "evidence_windows"},
			driftView{s},
		},
		{
			ViewModels,
			[]string{"seq", "at_ms", "action", "version", "incumbent"},
			modelsView{s},
		},
	}
	for _, v := range views {
		if id, ok := cat.ByName(v.name); ok {
			t := cat.Table(id)
			if t.Virtual == nil {
				return fmt.Errorf("querystore: table %q exists and is not a virtual view", v.name)
			}
			t.Virtual = v.source
			continue
		}
		t := catalog.NewTable(v.name, v.cols...)
		t.Data = nil
		t.Virtual = v.source
		if _, err := cat.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// milli scales a fractional metric into an int64 column value (×1000,
// rounded half away from zero).
func milli(v float64) int64 {
	return int64(math.Round(v * 1000))
}

type statementsView struct{ s *Store }

// VirtualNumRows implements catalog.VirtualSource.
func (v statementsView) VirtualNumRows() int { return len(v.s.Statements()) }

// VirtualRows implements catalog.VirtualSource.
func (v statementsView) VirtualRows() [][]int64 {
	stmts := v.s.Statements()
	rows := make([][]int64, 0, len(stmts))
	for _, st := range stmts {
		rows = append(rows, []int64{
			st.ID, st.Calls, st.CacheHits, st.Fallbacks, st.BudgetAborts,
			st.TotalWork, st.MaxWork, st.TotalRows, st.PageMisses,
			st.QErrCount, milli(st.QErrMean()), milli(st.QErrMax),
			st.LastWindow, milli(st.RowsPerCall()),
		})
	}
	return rows
}

type windowsView struct{ s *Store }

// VirtualNumRows implements catalog.VirtualSource.
func (v windowsView) VirtualNumRows() int { return len(v.s.Windows()) }

// VirtualRows implements catalog.VirtualSource.
func (v windowsView) VirtualRows() [][]int64 {
	wins := v.s.Windows()
	rows := make([][]int64, 0, len(wins))
	for _, w := range wins {
		hitRate := int64(0)
		if w.PoolHits+w.PoolMisses > 0 {
			hitRate = milli(float64(w.PoolHits) / float64(w.PoolHits+w.PoolMisses))
		}
		rows = append(rows, []int64{
			w.Index, w.Start.UnixMilli(), w.End.UnixMilli(), w.Queries,
			w.CacheHits, w.Fallbacks, w.BudgetAborts, w.TotalWork,
			w.TotalRows, w.PageMisses, w.PoolHits, w.PoolMisses, hitRate,
		})
	}
	return rows
}

type driftView struct{ s *Store }

// VirtualNumRows implements catalog.VirtualSource.
func (v driftView) VirtualNumRows() int { return len(v.s.DriftEvents()) }

// VirtualRows implements catalog.VirtualSource.
func (v driftView) VirtualRows() [][]int64 {
	evs := v.s.DriftEvents()
	rows := make([][]int64, 0, len(evs))
	for _, e := range evs {
		rows = append(rows, []int64{
			e.Seq, int64(e.Kind), e.At.UnixMilli(), int64(e.EstimatorVersion),
			milli(e.Before), milli(e.After), int64(len(e.Evidence)),
		})
	}
	return rows
}

type modelsView struct{ s *Store }

// VirtualNumRows implements catalog.VirtualSource.
func (v modelsView) VirtualNumRows() int { return len(v.s.ModelEvents()) }

// VirtualRows implements catalog.VirtualSource.
func (v modelsView) VirtualRows() [][]int64 {
	evs := v.s.ModelEvents()
	rows := make([][]int64, 0, len(evs))
	for _, e := range evs {
		rows = append(rows, []int64{
			e.Seq, e.At.UnixMilli(), int64(e.Action), int64(e.Version), int64(e.Incumbent),
		})
	}
	return rows
}
