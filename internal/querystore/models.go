package querystore

import (
	"time"

	"ml4db/internal/modelsvc"
)

// ModelAction is one step in a learned component's deployment lifecycle.
type ModelAction int

// The lifecycle steps recorded in sys_models.
const (
	// ModelInstall: the engine installed an estimator version into the
	// planner (version 0 means the classical-only planner).
	ModelInstall ModelAction = iota
	// ModelCandidate: a candidate version entered a rollout's shadow window.
	ModelCandidate
	// ModelPromoted: a candidate won its window and became the incumbent.
	ModelPromoted
	// ModelRejected: a candidate lost its window (or was replaced/dropped).
	ModelRejected
	// ModelDemoted: a promotion was reverted.
	ModelDemoted
)

// String renders the action for exports and logs.
func (a ModelAction) String() string {
	switch a {
	case ModelInstall:
		return "install"
	case ModelCandidate:
		return "candidate"
	case ModelPromoted:
		return "promoted"
	case ModelRejected:
		return "rejected"
	case ModelDemoted:
		return "demoted"
	default:
		return "unknown"
	}
}

// ModelEvent is one recorded lifecycle step. Version is the deployment the
// event is about; Incumbent is the serving version after the event.
type ModelEvent struct {
	Seq       int64
	At        time.Time
	Action    ModelAction
	Version   int
	Incumbent int
}

// RecordModelInstall records that the engine installed estimator version v
// into its planner.
func (s *Store) RecordModelInstall(version int) {
	if s == nil {
		return
	}
	s.recordModel(ModelInstall, version, version)
}

// RecordRollout folds a modelsvc rollout event into the model timeline; wire
// it up with RolloutSink.
func (s *Store) RecordRollout(ev modelsvc.RolloutEvent) {
	if s == nil {
		return
	}
	var action ModelAction
	switch ev.Kind {
	case modelsvc.RolloutCandidate:
		action = ModelCandidate
	case modelsvc.RolloutPromoted:
		action = ModelPromoted
	case modelsvc.RolloutRejected:
		action = ModelRejected
	case modelsvc.RolloutDemoted:
		action = ModelDemoted
	default:
		return
	}
	s.recordModel(action, ev.Version, ev.Incumbent)
}

// RolloutSink adapts the store to modelsvc.RolloutOptions.Events. A nil
// store yields a sink that records nothing.
func RolloutSink(s *Store) func(modelsvc.RolloutEvent) {
	return s.RecordRollout
}

func (s *Store) recordModel(action ModelAction, version, incumbent int) {
	now := s.clock.Now()
	s.mu.Lock()
	s.modelSeq++
	s.models = append(s.models, ModelEvent{
		Seq:       s.modelSeq,
		At:        now,
		Action:    action,
		Version:   version,
		Incumbent: incumbent,
	})
	if len(s.models) > s.opts.MaxEvents {
		copy(s.models, s.models[len(s.models)-s.opts.MaxEvents:])
		s.models = s.models[:s.opts.MaxEvents]
	}
	s.mu.Unlock()
}

// ModelEvents returns the retained model events in emission order.
func (s *Store) ModelEvents() []ModelEvent {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ModelEvent, len(s.models))
	copy(out, s.models)
	return out
}
