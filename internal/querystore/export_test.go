package querystore

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// replayWorkload drives one fixed workload against a fresh store under a
// manual clock.
func replayWorkload(t *testing.T) *Store {
	t.Helper()
	cat := twoColCatalog(t)
	s, mc := manualStore(Options{Catalog: cat})
	s.RecordModelInstall(3)
	for i := 0; i < 3; i++ {
		s.Record(obsWithQErr(3, float64(i+1)))
		s.Record(Observation{Shape: "other", Work: int64(10 * i), Rows: int64(i), CacheHit: i > 0})
		mc.Advance(400 * time.Millisecond)
	}
	s.Flush()
	return s
}

func TestExportValidatesAndReplaysIdentically(t *testing.T) {
	var a, b bytes.Buffer
	if err := replayWorkload(t).WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := replayWorkload(t).WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("two replays exported different bytes:\n%s\nvs\n%s", a.String(), b.String())
	}
	n, err := ValidateJSONL(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("validator rejected a fresh export: %v", err)
	}
	// Header + 2 statements + heat + windows + 1 model event; exact line
	// count pins the schema sections.
	if n < 5 {
		t.Errorf("validated %d lines, want at least 5", n)
	}
}

func TestValidateJSONLRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		frag string
	}{
		{"empty", "", "no querystore header"},
		{"no header", `{"type":"statement"}`, "first line must be"},
		{"bad json", "{nope", "not valid JSON"},
		{"bad schema", `{"type":"querystore","schema":9,"statements":0,"heat":0,"windows":0,"drift":0,"models":0,"dropped":0}`, "unsupported schema"},
		{"missing field", `{"type":"querystore","schema":1,"statements":1,"heat":0,"windows":0,"drift":0,"models":0,"dropped":0}` + "\n" + `{"type":"statement","id":0}`, `missing field`},
		{"count mismatch", `{"type":"querystore","schema":1,"statements":2,"heat":0,"windows":0,"drift":0,"models":0,"dropped":0}`, "declares 2 statement"},
		{"unknown type", `{"type":"querystore","schema":1,"statements":0,"heat":0,"windows":0,"drift":0,"models":0,"dropped":0}` + "\n" + `{"type":"mystery"}`, "unknown record type"},
	}
	for _, c := range cases {
		if _, err := ValidateJSONL(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: validator accepted bad input", c.name)
		} else if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}
