package querystore

import (
	"sort"
	"sync"
	"time"

	"ml4db/internal/mlmath"
	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/storage"
)

// PoolStatsSource supplies buffer-pool statistics sampled at window seals;
// *storage.Pool implements it.
type PoolStatsSource interface {
	Stats() storage.PoolStats
}

// Options configures a Store.
type Options struct {
	// Clock advances the window ring. Nil means the system clock; inject a
	// mlmath.ManualClock for bit-identical replays.
	Clock mlmath.Clock
	// Window is the aggregation window length. Values <= 0 default to one
	// second.
	Window time.Duration
	// MaxWindows bounds the ring of sealed windows. Values below one default
	// to 64.
	MaxWindows int
	// MaxStatements bounds the number of distinct statement shapes tracked;
	// observations for shapes beyond the cap update only window aggregates
	// (DroppedStatements counts them). Values below one default to 512.
	MaxStatements int
	// MaxEvents bounds the drift-event and model-event rings. Values below
	// one default to 256.
	MaxEvents int
	// Catalog, when non-nil, lets the store harvest observed selectivities
	// for the column heat map (it needs table row counts and widths).
	// Without it the heat map still counts column appearances but records no
	// selectivities.
	Catalog *catalog.Catalog
	// Pool, when non-nil, is sampled at every window seal; the per-window
	// hit/miss deltas feed the hit-rate drift monitor.
	Pool PoolStatsSource
	// Drift configures the window-trend monitors.
	Drift DriftOptions
	// OnDrift, when non-nil, receives every DriftEvent as it fires (outside
	// the store's lock, in emission order).
	OnDrift func(DriftEvent)
}

// Observation is one executed query as the engine saw it. Shape is the
// engine's normalized statement key; Plan is the executed plan tree (the
// session's private copy — the store only reads its annotations).
type Observation struct {
	Shape            string
	Work             int64
	Rows             int64
	PageMisses       int64
	CacheHit         bool
	Fallback         bool
	BudgetAbort      bool
	EstimatorVersion int
	Plan             *plan.Node
}

// StatementStats is the accumulated record of one normalized statement.
type StatementStats struct {
	ID           int64 // first-seen order, dense from 0
	Shape        string
	Calls        int64
	CacheHits    int64
	Fallbacks    int64
	BudgetAborts int64
	TotalWork    int64
	MaxWork      int64
	TotalRows    int64
	PageMisses   int64
	// QErrCount calls contributed a cardinality-error sample (budget aborts
	// and plan-less observations do not). QErrSum accumulates the per-call
	// mean plan-node q-error; QErrMax is the largest single-node q-error
	// seen. Estimates and actuals get a +1 pseudocount, so empty results
	// never divide by zero.
	QErrCount int64
	QErrSum   float64
	QErrMax   float64
	// LastWindow is the index of the window ring the statement's most recent
	// call landed in — the recency signal tuning loops rank by, so a
	// once-hot statement ages out of the mined workload.
	LastWindow int64
	// Template is a representative query reconstructed from the statement's
	// first harvested plan: the executed leaves give tables and filters, the
	// join nodes give join conditions. It is nil when the store has no
	// catalog or no plan was harvested, and shared across snapshots —
	// callers must treat it as read-only.
	Template *plan.Query
}

// QErrMean returns the mean per-call q-error, or 0 with no samples.
func (s StatementStats) QErrMean() float64 {
	if s.QErrCount == 0 {
		return 0
	}
	return s.QErrSum / float64(s.QErrCount)
}

// RowsPerCall returns the mean result rows per call, or 0 with no calls.
func (s StatementStats) RowsPerCall() float64 {
	if s.Calls == 0 {
		return 0
	}
	return float64(s.TotalRows) / float64(s.Calls)
}

// ColumnHeat is the observed pressure on one table column: how often it
// appeared in scan filters and join conditions, with the mean observed
// selectivity of the scans/joins it appeared in.
type ColumnHeat struct {
	TableID     int
	Col         int
	FilterCount int64
	JoinCount   int64
	SelCount    int64
	SelSum      float64
}

// SelMean returns the mean observed selectivity, or 0 with no samples.
func (h ColumnHeat) SelMean() float64 {
	if h.SelCount == 0 {
		return 0
	}
	return h.SelSum / float64(h.SelCount)
}

// Store is the workload observatory. All methods are safe for concurrent
// use and no-op on a nil receiver.
type Store struct {
	opts  Options
	clock mlmath.Clock

	mu         sync.Mutex
	stmts      map[string]*StatementStats
	stmtOrder  []string // shapes in first-seen order (snapshot order)
	dropped    int64
	heat       map[heatKey]*ColumnHeat
	windows    windowRing
	cur        winAgg
	curStarted bool
	drift      driftState
	models     []ModelEvent
	modelSeq   int64
}

type heatKey struct{ table, col int }

// New builds a Store.
func New(opts Options) *Store {
	if opts.Window <= 0 {
		opts.Window = time.Second
	}
	if opts.MaxWindows < 1 {
		opts.MaxWindows = 64
	}
	if opts.MaxStatements < 1 {
		opts.MaxStatements = 512
	}
	if opts.MaxEvents < 1 {
		opts.MaxEvents = 256
	}
	opts.Drift = opts.Drift.withDefaults()
	return &Store{
		opts:    opts,
		clock:   mlmath.ClockOrSystem(opts.Clock),
		stmts:   make(map[string]*StatementStats),
		heat:    make(map[heatKey]*ColumnHeat),
		windows: windowRing{cap: opts.MaxWindows},
	}
}

// Record folds one executed query into the store. It advances the window
// ring first, so an observation after a window boundary seals the old
// window (and may fire drift events) before being counted in the new one.
// Nil stores no-op without allocating.
func (s *Store) Record(o Observation) {
	if s == nil {
		return
	}
	h := s.harvest(o)
	now := s.clock.Now()

	s.mu.Lock()
	fired := s.advanceLocked(now)
	s.recordStatementLocked(o, h)
	s.recordHeatLocked(h)
	s.cur.add(o, h)
	s.mu.Unlock()

	s.fireDrift(fired)
}

// Flush seals the current window (if it has observations) so snapshots and
// exports include it; drift monitors run over it like any other seal.
func (s *Store) Flush() {
	if s == nil {
		return
	}
	s.mu.Lock()
	fired := s.sealLocked()
	s.mu.Unlock()
	s.fireDrift(fired)
}

func (s *Store) recordStatementLocked(o Observation, h harvestResult) {
	e, ok := s.stmts[o.Shape]
	if !ok {
		if len(s.stmtOrder) >= s.opts.MaxStatements {
			s.dropped++
			return
		}
		e = &StatementStats{ID: int64(len(s.stmtOrder)), Shape: o.Shape}
		s.stmts[o.Shape] = e
		s.stmtOrder = append(s.stmtOrder, o.Shape)
	}
	e.Calls++
	if o.CacheHit {
		e.CacheHits++
	}
	if o.Fallback {
		e.Fallbacks++
	}
	if o.BudgetAbort {
		e.BudgetAborts++
	}
	e.TotalWork += o.Work
	if o.Work > e.MaxWork {
		e.MaxWork = o.Work
	}
	e.TotalRows += o.Rows
	e.PageMisses += o.PageMisses
	e.LastWindow = s.cur.index
	if e.Template == nil && h.tmpl != nil {
		e.Template = h.tmpl
	}
	if h.ok {
		e.QErrCount++
		e.QErrSum += h.qerrMean
		if h.qerrMax > e.QErrMax {
			e.QErrMax = h.qerrMax
		}
	}
}

func (s *Store) recordHeatLocked(h harvestResult) {
	for _, sample := range h.heat {
		k := heatKey{sample.table, sample.col}
		e, ok := s.heat[k]
		if !ok {
			e = &ColumnHeat{TableID: sample.table, Col: sample.col}
			s.heat[k] = e
		}
		if sample.join {
			e.JoinCount++
		} else {
			e.FilterCount++
		}
		if sample.hasSel {
			e.SelCount++
			e.SelSum += sample.sel
		}
	}
}

// DroppedStatements returns how many observations were not attributed to a
// statement because the shape cap was reached.
func (s *Store) DroppedStatements() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Statements returns the statement records in first-seen (ID) order.
func (s *Store) Statements() []StatementStats {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StatementStats, 0, len(s.stmtOrder))
	for _, shape := range s.stmtOrder {
		out = append(out, *s.stmts[shape])
	}
	return out
}

// Heat returns the column heat map sorted by (table, column).
func (s *Store) Heat() []ColumnHeat {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]heatKey, 0, len(s.heat))
	for k := range s.heat {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].table != keys[j].table {
			return keys[i].table < keys[j].table
		}
		return keys[i].col < keys[j].col
	})
	out := make([]ColumnHeat, 0, len(keys))
	for _, k := range keys {
		out = append(out, *s.heat[k])
	}
	return out
}

// harvestResult is what one observation's plan tree contributed: a per-call
// q-error sample and the column heat samples. It is computed outside the
// store lock (it may read the catalog, whose virtual tables read stores).
type harvestResult struct {
	ok       bool // a q-error sample was produced
	qerrMean float64
	qerrMax  float64
	heat     []heatSample
	tmpl     *plan.Query // reconstructed template, or nil
}

type heatSample struct {
	table  int // catalog table ID
	col    int
	join   bool
	hasSel bool
	sel    float64
}

// harvest walks the executed plan tree. Budget-aborted executions are
// skipped entirely: their ActualRows annotations describe a partial run.
func (s *Store) harvest(o Observation) harvestResult {
	var h harvestResult
	if o.Plan == nil || o.BudgetAbort {
		return h
	}
	var sum float64
	var nodes int64
	o.Plan.Walk(func(n *plan.Node) {
		q := pseudoQErr(n.EstRows, n.ActualRows)
		sum += q
		nodes++
		if q > h.qerrMax {
			h.qerrMax = q
		}
		s.harvestHeat(&h, n)
	})
	if nodes > 0 {
		h.ok = true
		h.qerrMean = sum / float64(nodes)
	}
	if s.opts.Catalog != nil && s.needsTemplate(o.Shape) {
		h.tmpl = reconstructQuery(s.opts.Catalog, o.Plan)
	}
	return h
}

// needsTemplate reports whether the shape's statement record still lacks a
// template, so harvest only pays the reconstruction walk once per shape.
func (s *Store) needsTemplate(shape string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.stmts[shape]
	return !ok || e.Template == nil
}

// reconstructQuery rebuilds a plan.Query from an executed plan tree: each
// leaf contributes its table and filters at its original table position, and
// each join node contributes a join condition with its key columns resolved
// back to base (position, column) pairs. Returns nil when the tree's
// positions do not form a dense 0..n-1 range or a join key cannot be
// resolved — the template is a best-effort mining input, not an invariant.
func reconstructQuery(cat *catalog.Catalog, p *plan.Node) *plan.Query {
	var leaves []*plan.Node
	maxPos := -1
	p.Walk(func(n *plan.Node) {
		if n.IsLeaf() {
			leaves = append(leaves, n)
			if n.TablePos > maxPos {
				maxPos = n.TablePos
			}
		}
	})
	if len(leaves) == 0 || maxPos != len(leaves)-1 {
		return nil
	}
	tables := make([]int, len(leaves))
	filled := make([]bool, len(leaves))
	for _, l := range leaves {
		if filled[l.TablePos] {
			return nil
		}
		filled[l.TablePos] = true
		tables[l.TablePos] = l.TableID
	}
	q := plan.NewQuery(tables...)
	for _, l := range leaves {
		for _, f := range l.Filters {
			q.AddFilter(l.TablePos, f)
		}
	}
	ok := true
	p.Walk(func(n *plan.Node) {
		if n.IsLeaf() || len(n.Children) != 2 || !ok {
			return
		}
		lp, lc, lok := resolveOutputPos(cat, n.Children[0], n.LeftCol)
		rp, rc, rok := resolveOutputPos(cat, n.Children[1], n.RightCol)
		if !lok || !rok {
			ok = false
			return
		}
		q.AddJoin(expr.JoinCond{LeftTable: lp, LeftCol: lc, RightTable: rp, RightCol: rc})
	})
	if !ok {
		return nil
	}
	return q
}

// resolveOutputPos maps an output-relative column offset of a subtree back
// to the (table position, column) leaf it came from.
func resolveOutputPos(cat *catalog.Catalog, n *plan.Node, off int) (tablePos, col int, ok bool) {
	if n.IsLeaf() {
		w := cat.Table(n.TableID).NumCols()
		if off < 0 || off >= w {
			return 0, 0, false
		}
		return n.TablePos, off, true
	}
	for _, c := range n.Children {
		w := outputWidth(cat, c)
		if off < w {
			return resolveOutputPos(cat, c, off)
		}
		off -= w
	}
	return 0, 0, false
}

// harvestHeat appends the node's heat samples. Scan leaves attribute the
// leaf's observed selectivity (output rows over table rows) to each filter
// column — an approximation when a leaf carries several conjuncts, but the
// right signal for "how selective are predicates touching this column".
// Join nodes attribute the observed join selectivity (output over the
// cross-product of the inputs) to both key columns.
func (s *Store) harvestHeat(h *harvestResult, n *plan.Node) {
	cat := s.opts.Catalog
	if n.IsLeaf() {
		for _, f := range n.Filters {
			sample := heatSample{table: n.TableID, col: f.Col}
			if cat != nil {
				if rows := cat.Table(n.TableID).NumRows(); rows > 0 {
					sample.hasSel = true
					sample.sel = n.ActualRows / float64(rows)
				}
			}
			h.heat = append(h.heat, sample)
		}
		return
	}
	if cat == nil || len(n.Children) != 2 {
		return
	}
	l, r := n.Children[0], n.Children[1]
	lt, lc, lok := resolveOutputCol(cat, l, n.LeftCol)
	rt, rc, rok := resolveOutputCol(cat, r, n.RightCol)
	if !lok || !rok {
		return
	}
	cross := l.ActualRows * r.ActualRows
	sel := 0.0
	hasSel := cross > 0
	if hasSel {
		sel = n.ActualRows / cross
	}
	h.heat = append(h.heat,
		heatSample{table: lt, col: lc, join: true, hasSel: hasSel, sel: sel},
		heatSample{table: rt, col: rc, join: true, hasSel: hasSel, sel: sel})
}

// resolveOutputCol maps an output-relative column offset of a subtree back
// to the base (catalog table ID, column) it came from: subtree output is the
// concatenation of its leaves' columns in leaf order.
func resolveOutputCol(cat *catalog.Catalog, n *plan.Node, off int) (tableID, col int, ok bool) {
	if n.IsLeaf() {
		w := cat.Table(n.TableID).NumCols()
		if off < 0 || off >= w {
			return 0, 0, false
		}
		return n.TableID, off, true
	}
	for _, c := range n.Children {
		w := outputWidth(cat, c)
		if off < w {
			return resolveOutputCol(cat, c, off)
		}
		off -= w
	}
	return 0, 0, false
}

func outputWidth(cat *catalog.Catalog, n *plan.Node) int {
	if n.IsLeaf() {
		return cat.Table(n.TableID).NumCols()
	}
	w := 0
	for _, c := range n.Children {
		w += outputWidth(cat, c)
	}
	return w
}

// pseudoQErr is the q-error of an (estimate, actual) row-count pair with a
// +1 pseudocount on both sides, so zero-row results stay finite. Always
// >= 1.
func pseudoQErr(est, actual float64) float64 {
	if est < 0 {
		est = 0
	}
	if actual < 0 {
		actual = 0
	}
	a, b := est+1, actual+1
	if a > b {
		return a / b
	}
	return b / a
}
