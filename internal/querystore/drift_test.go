package querystore

import (
	"testing"
	"time"

	"ml4db/internal/modelsvc"
	"ml4db/internal/sqlkit/plan"
)

// obsWithQErr fabricates an observation whose single-node plan yields the
// given q-error (est = q*actual pseudocounted away by large numbers).
func obsWithQErr(version int, q float64) Observation {
	n := plan.NewScan(0, 0, nil)
	n.ActualRows = 1e6 - 1
	n.EstRows = q*1e6 - 1
	return Observation{Shape: "q", Plan: n, EstimatorVersion: version}
}

func TestQErrorDrift(t *testing.T) {
	var fired []DriftEvent
	s, mc := manualStore(Options{
		Drift:   DriftOptions{Recent: 2, Baseline: 3, QErrRatio: 2},
		OnDrift: func(ev DriftEvent) { fired = append(fired, ev) },
	})
	// Three baseline windows at q-error ~1, then two recent at ~4.
	for i := 0; i < 3; i++ {
		s.Record(obsWithQErr(1, 1))
		mc.Advance(time.Second)
	}
	for i := 0; i < 2; i++ {
		s.Record(obsWithQErr(1, 4))
		mc.Advance(time.Second)
	}
	s.Record(Observation{Shape: "pad"}) // seals the 5th window
	s.Flush()

	evs := s.DriftEvents()
	if len(evs) != 1 {
		t.Fatalf("drift events = %+v, want exactly 1", evs)
	}
	ev := evs[0]
	if ev.Kind != DriftQError || ev.EstimatorVersion != 1 {
		t.Errorf("event = %+v, want qerror drift for version 1", ev)
	}
	if ev.After <= ev.Before*2 {
		t.Errorf("after %v not above ratio threshold over before %v", ev.After, ev.Before)
	}
	if len(ev.Evidence) != 2 {
		t.Errorf("evidence = %+v, want the 2 recent windows", ev.Evidence)
	}
	if len(fired) != 1 || fired[0].Seq != ev.Seq {
		t.Errorf("OnDrift saw %+v, want the stored event", fired)
	}
}

func TestFallbackDriftAndCooldown(t *testing.T) {
	s, mc := manualStore(Options{
		Drift: DriftOptions{Recent: 1, Baseline: 2, FallbackJump: 0.5},
	})
	// Two clean baseline windows, then fallback-heavy windows.
	for i := 0; i < 2; i++ {
		s.Record(Observation{Shape: "a"})
		mc.Advance(time.Second)
	}
	for i := 0; i < 2; i++ {
		s.Record(Observation{Shape: "a", Fallback: true})
		mc.Advance(time.Second)
	}
	s.Flush()
	evs := s.DriftEvents()
	if len(evs) != 1 {
		t.Fatalf("drift events = %+v, want 1 (cooldown must suppress the repeat)", evs)
	}
	if evs[0].Kind != DriftFallback {
		t.Errorf("kind = %v, want fallback", evs[0].Kind)
	}
}

func TestHitRateDrift(t *testing.T) {
	var pool fakePool
	s, mc := manualStore(Options{
		Pool:  &pool,
		Drift: DriftOptions{Recent: 1, Baseline: 2, HitRateDrop: 0.3},
	})
	hits, misses := int64(0), int64(0)
	step := func(h, m int64) {
		hits += h
		misses += m
		pool.stats.Hits, pool.stats.Misses = hits, misses
		s.Record(Observation{Shape: "a"})
		mc.Advance(time.Second)
	}
	// A window's pool delta is sampled when it seals, i.e. when the NEXT
	// step's Record advances past it — so each step's traffic lands in the
	// previous window.
	step(0, 0)   // opens window 0
	step(90, 10) // seals window 0 at 0.9 (baseline)
	step(90, 10) // seals window 1 at 0.9 (baseline)
	step(10, 90) // seals window 2 at 0.1 (the collapse)
	s.Flush()
	evs := s.DriftEvents()
	if len(evs) != 1 || evs[0].Kind != DriftHitRate {
		t.Fatalf("drift events = %+v, want one hitrate event", evs)
	}
	if evs[0].Before < 0.8 || evs[0].After > 0.2 {
		t.Errorf("before/after = %v/%v, want ~0.9 -> ~0.1", evs[0].Before, evs[0].After)
	}
}

func TestModelEventsFromRollout(t *testing.T) {
	s, _ := manualStore(Options{})
	s.RecordModelInstall(1)

	r := modelsvc.NewRollout(
		modelsvc.Deployment{Version: 1, Model: constModel(10)},
		modelsvc.RolloutOptions{Window: 2, Events: RolloutSink(s)},
	)
	r.SetCandidate(modelsvc.Deployment{Version: 2, Model: constModel(5)})
	// Candidate is closer to truth 6: promoted after the window fills.
	r.Observe([]float64{0}, 6)
	if out := r.Observe([]float64{0}, 6); out != modelsvc.OutcomePromoted {
		t.Fatalf("outcome = %v, want promoted", out)
	}
	if !r.Demote() {
		t.Fatal("demote failed")
	}

	evs := s.ModelEvents()
	want := []struct {
		action    ModelAction
		version   int
		incumbent int
	}{
		{ModelInstall, 1, 1},
		{ModelCandidate, 2, 1},
		{ModelPromoted, 2, 2},
		{ModelDemoted, 1, 1},
	}
	if len(evs) != len(want) {
		t.Fatalf("model events = %+v, want %d", evs, len(want))
	}
	for i, w := range want {
		e := evs[i]
		if e.Action != w.action || e.Version != w.version || e.Incumbent != w.incumbent {
			t.Errorf("event %d = %+v, want %+v", i, e, w)
		}
		if e.Seq != int64(i+1) {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, i+1)
		}
	}
}

type constModel float64

func (m constModel) Predict([]float64) float64 { return float64(m) }
