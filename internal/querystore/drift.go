package querystore

import (
	"sort"
	"time"
)

// DriftKind identifies what a drift monitor watches.
type DriftKind int

// The monitored trends.
const (
	// DriftQError: an estimator version's windowed mean q-error rose above
	// the trailing baseline by more than Drift.QErrRatio.
	DriftQError DriftKind = iota
	// DriftHitRate: the buffer pool's windowed hit rate fell below the
	// trailing baseline by more than Drift.HitRateDrop (absolute).
	DriftHitRate
	// DriftFallback: the windowed estimator-fallback rate rose above the
	// trailing baseline by more than Drift.FallbackJump (absolute).
	DriftFallback
)

// String renders the kind for exports and logs.
func (k DriftKind) String() string {
	switch k {
	case DriftQError:
		return "qerror"
	case DriftHitRate:
		return "hitrate"
	case DriftFallback:
		return "fallback"
	default:
		return "unknown"
	}
}

// DriftOptions tunes the window-trend monitors. A monitor compares the mean
// of the metric over the most recent Recent sealed windows against the mean
// over the Baseline windows before them, and fires once per crossing (it
// re-arms after Recent further seals).
type DriftOptions struct {
	// Recent is the evidence span. Values below one default to 3.
	Recent int
	// Baseline is the reference span. Values below one default to 6.
	Baseline int
	// QErrRatio fires DriftQError when recent mean q-error exceeds baseline
	// mean times this ratio. Values <= 1 default to 2.
	QErrRatio float64
	// HitRateDrop fires DriftHitRate when the recent hit rate is below the
	// baseline rate minus this absolute drop. Values <= 0 default to 0.2.
	HitRateDrop float64
	// FallbackJump fires DriftFallback when the recent fallback rate exceeds
	// the baseline rate plus this absolute jump. Values <= 0 default to 0.2.
	FallbackJump float64
}

func (d DriftOptions) withDefaults() DriftOptions {
	if d.Recent < 1 {
		d.Recent = 3
	}
	if d.Baseline < 1 {
		d.Baseline = 6
	}
	if d.QErrRatio <= 1 {
		d.QErrRatio = 2
	}
	if d.HitRateDrop <= 0 {
		d.HitRateDrop = 0.2
	}
	if d.FallbackJump <= 0 {
		d.FallbackJump = 0.2
	}
	return d
}

// WindowEvidence is one evidence window backing a drift event: the window's
// index and the monitored metric's value in it.
type WindowEvidence struct {
	Window int64
	Value  float64
}

// DriftEvent is one fired monitor: the metric moved from Before (baseline
// mean) to After (recent mean), with the recent windows attached as
// evidence. Seq orders events across kinds.
type DriftEvent struct {
	Seq  int64
	Kind DriftKind
	// At is the end of the window whose seal fired the event.
	At time.Time
	// EstimatorVersion is set for DriftQError (the degrading version).
	EstimatorVersion int
	Before, After    float64
	Evidence         []WindowEvidence
}

// driftState is the monitors' memory, guarded by the store lock.
type driftState struct {
	seq            int64
	events         []DriftEvent
	lastFired      map[driftFireKey]int64 // window index of last firing
	lastPoolHits   int64
	lastPoolMisses int64
}

type driftFireKey struct {
	kind    DriftKind
	version int
}

// evaluateDriftLocked runs every monitor after sealed joined the ring and
// returns the events to fire (the caller invokes OnDrift outside the lock).
func (s *Store) evaluateDriftLocked(sealed WindowStats) []DriftEvent {
	d := s.opts.Drift
	wins := s.windows.wins
	if len(wins) < d.Recent+d.Baseline {
		return nil
	}
	recent := wins[len(wins)-d.Recent:]
	base := wins[len(wins)-d.Recent-d.Baseline : len(wins)-d.Recent]

	var fired []DriftEvent
	emit := func(kind DriftKind, version int, before, after float64, evidence []WindowEvidence) {
		key := driftFireKey{kind, version}
		if s.drift.lastFired == nil {
			s.drift.lastFired = make(map[driftFireKey]int64)
		}
		if last, ok := s.drift.lastFired[key]; ok && sealed.Index < last+int64(d.Recent) {
			return
		}
		s.drift.lastFired[key] = sealed.Index
		s.drift.seq++
		ev := DriftEvent{
			Seq:              s.drift.seq,
			Kind:             kind,
			At:               sealed.End,
			EstimatorVersion: version,
			Before:           before,
			After:            after,
			Evidence:         evidence,
		}
		s.drift.events = append(s.drift.events, ev)
		if len(s.drift.events) > s.opts.MaxEvents {
			copy(s.drift.events, s.drift.events[len(s.drift.events)-s.opts.MaxEvents:])
			s.drift.events = s.drift.events[:s.opts.MaxEvents]
		}
		fired = append(fired, ev)
	}

	// q-error trend, per estimator version present in both spans.
	for _, v := range versionsIn(recent) {
		rSum, rCnt := qerrOver(recent, v)
		bSum, bCnt := qerrOver(base, v)
		if rCnt == 0 || bCnt == 0 {
			continue
		}
		rMean := rSum / float64(rCnt)
		bMean := bSum / float64(bCnt)
		if rMean > bMean*d.QErrRatio {
			emit(DriftQError, v, bMean, rMean, evidenceOf(recent, func(w WindowStats) (float64, bool) {
				for _, q := range w.QErr {
					if q.Version == v && q.Count > 0 {
						return q.Mean(), true
					}
				}
				return 0, false
			}))
		}
	}

	// Buffer-pool hit-rate trend.
	if rRate, rOK := hitRateOver(recent); rOK {
		if bRate, bOK := hitRateOver(base); bOK && rRate < bRate-d.HitRateDrop {
			emit(DriftHitRate, 0, bRate, rRate, evidenceOf(recent, func(w WindowStats) (float64, bool) {
				if w.PoolHits+w.PoolMisses == 0 {
					return 0, false
				}
				return float64(w.PoolHits) / float64(w.PoolHits+w.PoolMisses), true
			}))
		}
	}

	// Estimator-fallback-rate trend.
	if rRate, rOK := fallbackRateOver(recent); rOK {
		if bRate, bOK := fallbackRateOver(base); bOK && rRate > bRate+d.FallbackJump {
			emit(DriftFallback, 0, bRate, rRate, evidenceOf(recent, func(w WindowStats) (float64, bool) {
				if w.Queries == 0 {
					return 0, false
				}
				return float64(w.Fallbacks) / float64(w.Queries), true
			}))
		}
	}
	return fired
}

func versionsIn(wins []WindowStats) []int {
	seen := map[int]bool{}
	for _, w := range wins {
		for _, q := range w.QErr {
			seen[q.Version] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func qerrOver(wins []WindowStats, version int) (sum float64, count int64) {
	for _, w := range wins {
		for _, q := range w.QErr {
			if q.Version == version {
				sum += q.Sum
				count += q.Count
			}
		}
	}
	return sum, count
}

func hitRateOver(wins []WindowStats) (float64, bool) {
	var hits, misses int64
	for _, w := range wins {
		hits += w.PoolHits
		misses += w.PoolMisses
	}
	if hits+misses == 0 {
		return 0, false
	}
	return float64(hits) / float64(hits+misses), true
}

func fallbackRateOver(wins []WindowStats) (float64, bool) {
	var fb, q int64
	for _, w := range wins {
		fb += w.Fallbacks
		q += w.Queries
	}
	if q == 0 {
		return 0, false
	}
	return float64(fb) / float64(q), true
}

func evidenceOf(wins []WindowStats, value func(WindowStats) (float64, bool)) []WindowEvidence {
	out := make([]WindowEvidence, 0, len(wins))
	for _, w := range wins {
		if v, ok := value(w); ok {
			out = append(out, WindowEvidence{Window: w.Index, Value: v})
		}
	}
	return out
}

// fireDrift invokes OnDrift for each event, outside the store lock.
func (s *Store) fireDrift(events []DriftEvent) {
	if s.opts.OnDrift == nil {
		return
	}
	for _, ev := range events {
		s.opts.OnDrift(ev)
	}
}

// DriftEvents returns the retained drift events in emission order.
func (s *Store) DriftEvents() []DriftEvent {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DriftEvent, len(s.drift.events))
	copy(out, s.drift.events)
	return out
}
