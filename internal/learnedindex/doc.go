// Package learnedindex implements the one-dimensional index family of §3.2:
// the classical B+tree baseline and the "replacement"-paradigm learned
// indexes — RMI (Kraska et al.), a PGM-style piecewise-linear index with
// ε-bounded error, a RadixSpline-style single-pass spline index, and an
// ALEX-style updatable learned index with gapped arrays.
//
// All indexes map int64 keys to int64 values and report their memory
// footprint, the metric of the paper's model-efficiency discussion.
package learnedindex
