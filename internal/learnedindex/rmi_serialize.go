package learnedindex

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"ml4db/internal/modelsvc"
)

// rmiState is the gob wire form of a built RMI: both model stages, the error
// bounds, and the indexed data they are valid for. An RMI is static — its
// error bounds only hold for the exact sorted array it was built over — so
// the checkpoint must carry the data, not just the models.
type rmiState struct {
	Keys, Vals          []int64
	RootSlope, RootBias float64
	Slope, Bias         []float64
	ErrLo, ErrHi        []int
}

// SaveState serializes the built index.
func (r *RMI) SaveState(w io.Writer) error {
	st := rmiState{
		Keys: r.keys, Vals: r.vals,
		RootSlope: r.rootSlope, RootBias: r.rootBias,
		Slope: r.slope, Bias: r.bias,
		ErrLo: r.errLo, ErrHi: r.errHi,
	}
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("learnedindex: save rmi: %w", err)
	}
	return nil
}

// LoadRMIState reconstructs a saved index, validating internal consistency
// (matching stage widths) before returning it. The restored index is
// uninstrumented; call Instrument to attach probe counters.
func LoadRMIState(rd io.Reader) (*RMI, error) {
	var st rmiState
	if err := gob.NewDecoder(rd).Decode(&st); err != nil {
		return nil, fmt.Errorf("learnedindex: load rmi: %w", err)
	}
	leaves := len(st.Slope)
	if leaves < 1 || len(st.Bias) != leaves || len(st.ErrLo) != leaves || len(st.ErrHi) != leaves ||
		len(st.Keys) != len(st.Vals) {
		return nil, fmt.Errorf("learnedindex: load rmi: inconsistent state (leaves=%d keys=%d vals=%d)",
			leaves, len(st.Keys), len(st.Vals))
	}
	return &RMI{
		keys: st.Keys, vals: st.Vals,
		rootSlope: st.RootSlope, rootBias: st.RootBias,
		slope: st.Slope, bias: st.Bias,
		errLo: st.ErrLo, errHi: st.ErrHi,
	}, nil
}

// ArchHash identifies the index structure for registry manifests: two RMI
// checkpoints interchange only if their second-stage fanout agrees.
func (r *RMI) ArchHash() string {
	return fmt.Sprintf("rmi/leaves=%d", r.NumLeaves())
}

// PublishRMI checkpoints a built index as a new registry version.
func PublishRMI(reg *modelsvc.Registry, name string, r *RMI, meta map[string]string) (modelsvc.Manifest, error) {
	return reg.Publish(name, r.ArchHash(), meta, r.SaveState)
}

// LoadRMI restores a published index (version 0 = latest). The registry
// verifies the payload checksum; the decoded index's structure must match
// the manifest's architecture hash or the load is rejected with
// *modelsvc.ArchMismatchError.
func LoadRMI(reg *modelsvc.Registry, name string, version int) (*RMI, modelsvc.Manifest, error) {
	payload, man, err := reg.Load(name, version)
	if err != nil {
		return nil, modelsvc.Manifest{}, err
	}
	r, err := LoadRMIState(bytes.NewReader(payload))
	if err != nil {
		return nil, modelsvc.Manifest{}, err
	}
	if got := r.ArchHash(); got != man.ArchHash {
		return nil, modelsvc.Manifest{}, &modelsvc.ArchMismatchError{
			Name: man.Name, Version: man.Version, Want: man.ArchHash, Got: got,
		}
	}
	return r, man, nil
}
