package learnedindex

import (
	"math"
	"sort"

	"ml4db/internal/mlmath"
)

// Index is a read-only key-value index.
type Index interface {
	// Get returns the value for key, or ok == false if absent.
	Get(key int64) (value int64, ok bool)
	// Name identifies the index family.
	Name() string
	// SizeBytes estimates the index's memory footprint excluding the data
	// records themselves.
	SizeBytes() int
}

// Updatable is an index supporting inserts.
type Updatable interface {
	Index
	// Insert adds key → value. Inserting an existing key overwrites.
	Insert(key, value int64)
}

// KV is a key-value pair used for bulk loading.
type KV struct {
	Key, Value int64
}

// SortKVs sorts pairs by key in place.
func SortKVs(kvs []KV) {
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
}

// DedupKVs removes duplicate keys from sorted pairs, keeping the last value.
func DedupKVs(kvs []KV) []KV {
	if len(kvs) == 0 {
		return kvs
	}
	out := kvs[:1]
	for _, kv := range kvs[1:] {
		if kv.Key == out[len(out)-1].Key {
			out[len(out)-1].Value = kv.Value
		} else {
			out = append(out, kv)
		}
	}
	return out
}

// KeyDist names a key distribution for index experiments.
type KeyDist int

// Key distributions for the E2/E3 experiments.
const (
	// DistUniform draws keys uniformly from a large domain.
	DistUniform KeyDist = iota
	// DistLognormal produces the heavily clustered keys that stress linear
	// models (long empty stretches plus dense regions).
	DistLognormal
	// DistZipfGap produces keys with Zipf-distributed gaps between
	// consecutive keys.
	DistZipfGap
)

// String implements fmt.Stringer.
func (d KeyDist) String() string {
	switch d {
	case DistUniform:
		return "uniform"
	case DistLognormal:
		return "lognormal"
	case DistZipfGap:
		return "zipfgap"
	default:
		return "unknown"
	}
}

// GenKeys generates n distinct sorted keys of the given distribution; the
// value of each key is its rank.
func GenKeys(rng *mlmath.RNG, dist KeyDist, n int) []KV {
	seen := make(map[int64]bool, n)
	keys := make([]int64, 0, n)
	switch dist {
	case DistUniform:
		for len(keys) < n {
			k := rng.Int63() % (int64(n) * 1000)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	case DistLognormal:
		for len(keys) < n {
			k := int64(math.Exp(rng.NormFloat64()*2+10)) + rng.Int63()%7
			if k >= 0 && !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	case DistZipfGap:
		z := mlmath.NewZipf(rng, 1.3, 1000)
		k := int64(0)
		for len(keys) < n {
			k += int64(z.Draw()) + 1
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	kvs := make([]KV, n)
	for i, k := range keys {
		kvs[i] = KV{Key: k, Value: int64(i)}
	}
	return kvs
}

// searchRange binary-searches keys[lo:hi] (hi exclusive) for key and returns
// its index, or -1.
func searchRange(keys []int64, lo, hi int, key int64) int {
	if lo < 0 {
		lo = 0
	}
	if hi > len(keys) {
		hi = len(keys)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch {
		case keys[mid] < key:
			lo = mid + 1
		case keys[mid] > key:
			hi = mid
		default:
			return mid
		}
	}
	return -1
}

// clampInt limits x to [lo, hi].
func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
