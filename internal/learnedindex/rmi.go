package learnedindex

import (
	"ml4db/internal/mlmath"
	"ml4db/internal/obs"
)

// RMI is the two-stage Recursive Model Index of Kraska et al.: a root linear
// model routes a key to one of many second-stage linear models, each of which
// predicts the key's position in the sorted array; a recorded per-model error
// bound turns the prediction into a guaranteed search window.
//
// RMI is static: it learns the CDF of a fixed dataset. Experiment E3 shows
// what happens when the data moves underneath it (the robustness limitation
// §3.2 discusses).
type RMI struct {
	keys []int64
	vals []int64
	// Root model: leaf = clamp(rootSlope·key + rootBias).
	rootSlope, rootBias float64
	// Second stage: position = slope[l]·key + bias[l], with error bounds.
	slope, bias  []float64
	errLo, errHi []int

	// Probe counters, cached from Instrument. Nil (the default) makes every
	// record a no-op, keeping uninstrumented probes free.
	hits   *obs.Counter // model predicted the exact position
	window *obs.Counter // key found by the bounded window search
	misses *obs.Counter // key absent (or outside the stale window)
}

// Instrument registers the index's probe counters and build gauges on reg:
// learnedindex.rmi.model_hit / window_search / miss count probes by how the
// key was (or wasn't) found, and learnedindex.rmi.{leaves,max_error} describe
// the built model. A nil registry detaches instrumentation.
func (r *RMI) Instrument(reg *obs.Registry) {
	r.hits = reg.Counter("learnedindex.rmi.model_hit")
	r.window = reg.Counter("learnedindex.rmi.window_search")
	r.misses = reg.Counter("learnedindex.rmi.miss")
	reg.Gauge("learnedindex.rmi.leaves").Set(float64(r.NumLeaves()))
	reg.Gauge("learnedindex.rmi.max_error").Set(float64(r.MaxError()))
}

// BuildRMI builds an RMI with numLeaves second-stage models over sorted
// unique pairs. Leaf fitting runs on the shared mlmath pool: every leaf is
// fit independently over a disjoint key range, so the built index is
// bit-identical to a serial build regardless of worker count.
func BuildRMI(kvs []KV, numLeaves int) *RMI {
	return BuildRMIPool(kvs, numLeaves, mlmath.Shared())
}

// BuildRMIPool is BuildRMI with an explicit worker pool (nil builds
// serially) — injectable for determinism and speedup tests.
func BuildRMIPool(kvs []KV, numLeaves int, pool *mlmath.Pool) *RMI {
	if numLeaves < 1 {
		numLeaves = 1
	}
	r := &RMI{
		keys:  make([]int64, len(kvs)),
		vals:  make([]int64, len(kvs)),
		slope: make([]float64, numLeaves),
		bias:  make([]float64, numLeaves),
		errLo: make([]int, numLeaves),
		errHi: make([]int, numLeaves),
	}
	for i, kv := range kvs {
		r.keys[i] = kv.Key
		r.vals[i] = kv.Value
	}
	if len(kvs) == 0 {
		return r
	}
	// Root: least-squares linear fit of the CDF, key → rank·L/n. A linear
	// root fits uniform-ish CDFs well and degrades on heavily skewed ones —
	// the fit-difficulty spectrum experiment E2 measures.
	xs := make([]float64, len(r.keys))
	ys := make([]float64, len(r.keys))
	scale := float64(numLeaves) / float64(len(r.keys))
	for i, k := range r.keys {
		xs[i] = float64(k)
		ys[i] = float64(i) * scale
	}
	r.rootSlope, r.rootBias = linearFit(xs, ys)
	if r.rootSlope < 0 {
		r.rootSlope = 0 // keys are sorted; a negative fit is numerical noise
	}
	// Partition keys by root prediction, fit a linear model per leaf.
	starts := make([]int, numLeaves+1)
	leafOf := func(k int64) int {
		return clampInt(int(r.rootSlope*float64(k)+r.rootBias), 0, numLeaves-1)
	}
	idx := 0
	for l := 0; l < numLeaves; l++ {
		starts[l] = idx
		for idx < len(r.keys) && leafOf(r.keys[idx]) <= l {
			idx++
		}
	}
	starts[numLeaves] = len(r.keys)
	// Each leaf model is fit over its own key range and written to its own
	// slots of slope/bias/errLo/errHi, so leaves parallelize with no
	// cross-shard state and the result cannot depend on the worker count.
	pool.ParallelFor(numLeaves, func(blo, bhi int) {
		for l := blo; l < bhi; l++ {
			r.fitLeaf(l, starts[l], starts[l+1])
		}
	})
	return r
}

func (r *RMI) fitLeaf(l, lo, hi int) {
	n := hi - lo
	switch {
	case n == 0:
		r.slope[l], r.bias[l] = 0, float64(lo)
	case n == 1:
		r.slope[l], r.bias[l] = 0, float64(lo)
	default:
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(r.keys[lo+i])
			ys[i] = float64(lo + i)
		}
		r.slope[l], r.bias[l] = linearFit(xs, ys)
	}
	// Record worst-case prediction error over the leaf's keys.
	for i := lo; i < hi; i++ {
		pred := int(r.slope[l]*float64(r.keys[i]) + r.bias[l])
		if d := i - pred; d < r.errLo[l] {
			r.errLo[l] = d
		} else if d > r.errHi[l] {
			r.errHi[l] = d
		}
	}
}

func linearFit(xs, ys []float64) (slope, bias float64) {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx < 1e-12 {
		return 0, my
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}

// Name implements Index.
func (r *RMI) Name() string { return "rmi" }

// SizeBytes implements Index: two stages of float64 models plus error ints.
func (r *RMI) SizeBytes() int { return 16 + len(r.slope)*(8+8+8+8) }

// NumLeaves returns the second-stage fanout.
func (r *RMI) NumLeaves() int { return len(r.slope) }

// Get implements Index.
func (r *RMI) Get(key int64) (int64, bool) {
	if len(r.keys) == 0 {
		r.misses.Inc()
		return 0, false
	}
	l := clampInt(int(r.rootSlope*float64(key)+r.rootBias), 0, len(r.slope)-1)
	pred := int(r.slope[l]*float64(key) + r.bias[l])
	lo := clampInt(pred+r.errLo[l], 0, len(r.keys))
	hi := clampInt(pred+r.errHi[l]+1, 0, len(r.keys))
	if i := searchRange(r.keys, lo, hi, key); i >= 0 {
		if i == pred {
			r.hits.Inc()
		} else {
			r.window.Inc()
		}
		return r.vals[i], true
	}
	r.misses.Inc()
	return 0, false
}

// MaxError returns the largest search-window width across leaves — the
// quality of the learned CDF fit.
func (r *RMI) MaxError() int {
	m := 0
	for l := range r.slope {
		if w := r.errHi[l] - r.errLo[l]; w > m {
			m = w
		}
	}
	return m
}

// StaleLookup performs a lookup against possibly updated external data using
// the *original* model — this simulates the robustness failure of a static
// learned index after inserts (E3): the model's error bounds no longer hold,
// so the window search can miss keys.
func (r *RMI) StaleLookup(keys []int64, vals []int64, key int64) (int64, bool) {
	if len(keys) == 0 {
		return 0, false
	}
	l := clampInt(int(r.rootSlope*float64(key)+r.rootBias), 0, len(r.slope)-1)
	pred := int(r.slope[l]*float64(key) + r.bias[l])
	lo := clampInt(pred+r.errLo[l], 0, len(keys))
	hi := clampInt(pred+r.errHi[l]+1, 0, len(keys))
	if i := searchRange(keys, lo, hi, key); i >= 0 {
		return vals[i], true
	}
	return 0, false
}
