package learnedindex

import (
	"errors"
	"io"
	"testing"
	"time"

	"ml4db/internal/mlmath"
	"ml4db/internal/modelsvc"
)

func builtRMI(t *testing.T) (*RMI, []KV) {
	t.Helper()
	rng := mlmath.NewRNG(17)
	seen := map[int64]bool{}
	var kvs []KV
	for len(kvs) < 3000 {
		k := rng.Int63() % 1_000_000
		if seen[k] {
			continue
		}
		seen[k] = true
		kvs = append(kvs, KV{Key: k, Value: k * 2})
	}
	SortKVs(kvs)
	return BuildRMIPool(kvs, 64, nil), kvs
}

func TestRMIRegistryRoundTrip(t *testing.T) {
	src, kvs := builtRMI(t)
	reg, err := modelsvc.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg.Clock = &mlmath.ManualClock{T: time.Unix(1700000000, 0)}
	man, err := PublishRMI(reg, "rmi-fact", src, map[string]string{"keys": "3000"})
	if err != nil {
		t.Fatal(err)
	}
	if man.ArchHash != src.ArchHash() {
		t.Fatalf("manifest arch hash %q != model %q", man.ArchHash, src.ArchHash())
	}
	dst, got, err := LoadRMI(reg, "rmi-fact", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != man.Version {
		t.Fatalf("loaded version %d, want %d", got.Version, man.Version)
	}
	if dst.NumLeaves() != src.NumLeaves() || dst.MaxError() != src.MaxError() {
		t.Fatalf("restored structure differs: leaves %d/%d maxErr %d/%d",
			dst.NumLeaves(), src.NumLeaves(), dst.MaxError(), src.MaxError())
	}
	// Every key resolves identically through both indexes; a probe for an
	// absent key misses in both.
	for _, kv := range kvs {
		a, okA := src.Get(kv.Key)
		b, okB := dst.Get(kv.Key)
		if okA != okB || a != b {
			t.Fatalf("key %d: src (%d,%v) dst (%d,%v)", kv.Key, a, okA, b, okB)
		}
	}
	if _, ok := dst.Get(-1); ok {
		t.Fatal("restored index found an absent key")
	}
}

func TestLoadRMIRejectsForeignPayload(t *testing.T) {
	reg, err := modelsvc.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("rmi-fact", "rmi/leaves=64", nil, func(w io.Writer) error {
		_, werr := w.Write([]byte("not a gob stream"))
		return werr
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadRMI(reg, "rmi-fact", 0); err == nil {
		t.Fatal("LoadRMI accepted a non-RMI payload")
	}
}

func TestLoadRMIRejectsArchMismatch(t *testing.T) {
	src, _ := builtRMI(t)
	reg, err := modelsvc.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Publish with a lying arch hash: the decoded structure won't match.
	if _, err := reg.Publish("rmi-fact", "rmi/leaves=8", nil, src.SaveState); err != nil {
		t.Fatal(err)
	}
	_, _, err = LoadRMI(reg, "rmi-fact", 0)
	var aerr *modelsvc.ArchMismatchError
	if !errors.As(err, &aerr) {
		t.Fatalf("want *modelsvc.ArchMismatchError, got %v", err)
	}
}
