package learnedindex

import "sort"

// PGM is a PGM-index-style piecewise geometric model: an optimal-ish greedy
// segmentation of the key→rank function into linear segments, each
// guaranteeing |prediction − rank| ≤ ε (the provable worst-case bound of
// Ferragina & Vinciguerra). Segments are found in one pass with the
// shrinking-cone algorithm; lookups binary-search the segment directory and
// then probe a 2ε+1 window.
//
// Inserts go to a sorted delta buffer that is merged into the base when it
// exceeds a fraction of the base size (the simplest of the PGM dynamization
// strategies).
type PGM struct {
	Epsilon int

	keys []int64
	vals []int64
	segs []pgmSegment

	// Delta buffer for inserts (kept sorted).
	deltaK []int64
	deltaV []int64
	// maxDelta triggers a merge when exceeded.
	maxDelta int
}

type pgmSegment struct {
	firstKey    int64
	slope, bias float64 // rank ≈ slope·key + bias
}

// BuildPGM builds a PGM index with the given ε over sorted unique pairs.
func BuildPGM(kvs []KV, epsilon int) *PGM {
	if epsilon < 1 {
		epsilon = 1
	}
	p := &PGM{Epsilon: epsilon}
	p.keys = make([]int64, len(kvs))
	p.vals = make([]int64, len(kvs))
	for i, kv := range kvs {
		p.keys[i] = kv.Key
		p.vals[i] = kv.Value
	}
	p.segs = buildSegments(p.keys, epsilon)
	p.maxDelta = len(kvs)/8 + 64
	return p
}

// buildSegments runs the shrinking-cone greedy segmentation: maintain the
// feasible slope interval [loSlope, hiSlope] through the current segment's
// origin; start a new segment when it empties.
func buildSegments(keys []int64, eps int) []pgmSegment {
	var segs []pgmSegment
	n := len(keys)
	if n == 0 {
		return segs
	}
	e := float64(eps)
	start := 0
	originX, originY := float64(keys[0]), 0.0
	loSlope, hiSlope := -1e18, 1e18
	// close emits the current segment using a slope from the feasible cone,
	// which guarantees |slope·(x−origin) + originY − rank| ≤ ε for every
	// point in the segment (the PGM worst-case bound).
	close := func(endExclusive int) {
		slope := 0.0
		if endExclusive-start > 1 {
			slope = (loSlope + hiSlope) / 2
		}
		segs = append(segs, pgmSegment{
			firstKey: keys[start],
			slope:    slope,
			bias:     originY - slope*originX,
		})
	}
	for i := 1; i < n; i++ {
		x, y := float64(keys[i]), float64(i)
		dx := x - originX
		if dx <= 0 {
			continue // duplicate key; callers pass unique keys
		}
		lo := (y - e - originY) / dx
		hi := (y + e - originY) / dx
		newLo, newHi := loSlope, hiSlope
		if lo > newLo {
			newLo = lo
		}
		if hi < newHi {
			newHi = hi
		}
		if newLo > newHi {
			// Cone is empty: close the segment at [start, i) and restart.
			close(i)
			start = i
			originX, originY = x, y
			loSlope, hiSlope = -1e18, 1e18
		} else {
			loSlope, hiSlope = newLo, newHi
		}
	}
	close(n)
	return segs
}

// Name implements Index.
func (p *PGM) Name() string { return "pgm" }

// SizeBytes implements Index.
func (p *PGM) SizeBytes() int { return len(p.segs)*24 + len(p.deltaK)*16 }

// NumSegments returns the segment count (size/accuracy tradeoff of ε).
func (p *PGM) NumSegments() int { return len(p.segs) }

// Get implements Index.
func (p *PGM) Get(key int64) (int64, bool) {
	// Check the delta buffer first (most recent wins).
	if i := searchRange(p.deltaK, 0, len(p.deltaK), key); i >= 0 {
		return p.deltaV[i], true
	}
	if len(p.keys) == 0 {
		return 0, false
	}
	s := sort.Search(len(p.segs), func(i int) bool { return p.segs[i].firstKey > key })
	if s == 0 {
		s = 1
	}
	seg := p.segs[s-1]
	pred := int(seg.slope*float64(key) + seg.bias)
	// ±1 beyond ε absorbs float truncation of the prediction.
	lo := clampInt(pred-p.Epsilon-1, 0, len(p.keys))
	hi := clampInt(pred+p.Epsilon+2, 0, len(p.keys))
	if i := searchRange(p.keys, lo, hi, key); i >= 0 {
		return p.vals[i], true
	}
	return 0, false
}

// LowerBound returns the number of base keys strictly less than key. The
// learned model narrows the search window; a verification step falls back to
// a global binary search when the model's window does not bracket the
// answer (possible for keys absent from the data). The delta buffer is not
// consulted — LowerBound serves the spatial indexes that use PGM as a
// static learned CDF.
func (p *PGM) LowerBound(key int64) int {
	n := len(p.keys)
	if n == 0 {
		return 0
	}
	s := sort.Search(len(p.segs), func(i int) bool { return p.segs[i].firstKey > key })
	if s == 0 {
		s = 1
	}
	seg := p.segs[s-1]
	pred := int(seg.slope*float64(key) + seg.bias)
	lo := clampInt(pred-p.Epsilon-1, 0, n)
	hi := clampInt(pred+p.Epsilon+2, 0, n)
	lb := lo + sort.Search(hi-lo, func(i int) bool { return p.keys[lo+i] >= key })
	if (lb == 0 || p.keys[lb-1] < key) && (lb == n || p.keys[lb] >= key) {
		return lb
	}
	return sort.Search(n, func(i int) bool { return p.keys[i] >= key })
}

// BaseKeyAt returns the i-th base key and value (for scan-based consumers).
func (p *PGM) BaseKeyAt(i int) (int64, int64) { return p.keys[i], p.vals[i] }

// BaseLen returns the number of base keys.
func (p *PGM) BaseLen() int { return len(p.keys) }

// Insert implements Updatable via the delta buffer.
func (p *PGM) Insert(key, value int64) {
	i := sort.Search(len(p.deltaK), func(i int) bool { return p.deltaK[i] >= key })
	if i < len(p.deltaK) && p.deltaK[i] == key {
		p.deltaV[i] = value
		return
	}
	p.deltaK = append(p.deltaK, 0)
	p.deltaV = append(p.deltaV, 0)
	copy(p.deltaK[i+1:], p.deltaK[i:])
	copy(p.deltaV[i+1:], p.deltaV[i:])
	p.deltaK[i] = key
	p.deltaV[i] = value
	if len(p.deltaK) > p.maxDelta {
		p.merge()
	}
}

// merge folds the delta buffer into the base and rebuilds the segments.
func (p *PGM) merge() {
	merged := make([]KV, 0, len(p.keys)+len(p.deltaK))
	i, j := 0, 0
	for i < len(p.keys) || j < len(p.deltaK) {
		switch {
		case i >= len(p.keys):
			merged = append(merged, KV{p.deltaK[j], p.deltaV[j]})
			j++
		case j >= len(p.deltaK):
			merged = append(merged, KV{p.keys[i], p.vals[i]})
			i++
		case p.keys[i] < p.deltaK[j]:
			merged = append(merged, KV{p.keys[i], p.vals[i]})
			i++
		case p.keys[i] > p.deltaK[j]:
			merged = append(merged, KV{p.deltaK[j], p.deltaV[j]})
			j++
		default: // same key: delta wins
			merged = append(merged, KV{p.deltaK[j], p.deltaV[j]})
			i++
			j++
		}
	}
	p.keys = p.keys[:0]
	p.vals = p.vals[:0]
	for _, kv := range merged {
		p.keys = append(p.keys, kv.Key)
		p.vals = append(p.vals, kv.Value)
	}
	p.segs = buildSegments(p.keys, p.Epsilon)
	p.deltaK = p.deltaK[:0]
	p.deltaV = p.deltaV[:0]
	p.maxDelta = len(p.keys)/8 + 64
}
