package learnedindex

import "sort"

// RadixSpline is a RadixSpline-style single-pass learned index: a greedy
// error-bounded linear spline over the CDF, plus a radix table over the top
// bits of the key that narrows the spline-segment search to a small range.
// Built in one pass over sorted data, as in Kipf et al.
type RadixSpline struct {
	MaxError int

	keys []int64
	vals []int64

	splineX []int64   // spline point keys
	splineY []float64 // spline point ranks

	// Radix table: for prefix p, radix[p] is the index of the first spline
	// point whose shifted key is >= p.
	radix     []int32
	shift     uint
	minKey    int64
	radixBits uint
}

// BuildRadixSpline builds the index with the given error bound and radix
// table bits (e.g. 18).
func BuildRadixSpline(kvs []KV, maxError int, radixBits uint) *RadixSpline {
	if maxError < 1 {
		maxError = 1
	}
	if radixBits == 0 || radixBits > 24 {
		radixBits = 16
	}
	r := &RadixSpline{MaxError: maxError, radixBits: radixBits}
	r.keys = make([]int64, len(kvs))
	r.vals = make([]int64, len(kvs))
	for i, kv := range kvs {
		r.keys[i] = kv.Key
		r.vals[i] = kv.Value
	}
	if len(kvs) == 0 {
		return r
	}
	r.buildSpline()
	r.buildRadix()
	return r
}

// buildSpline runs the one-pass GreedySplineCorridor: a point i is accepted
// into the current segment only if the interpolation slope base→i lies in
// the intersection of every previous point's ±maxError corridor, which
// guarantees all intermediate points stay within maxError of the final
// segment line. Otherwise the previous point becomes a spline knot and the
// corridor restarts.
func (r *RadixSpline) buildSpline() {
	n := len(r.keys)
	e := float64(r.MaxError)
	addPoint := func(i int) {
		r.splineX = append(r.splineX, r.keys[i])
		r.splineY = append(r.splineY, float64(i))
	}
	addPoint(0)
	if n == 1 {
		return
	}
	baseX, baseY := float64(r.keys[0]), 0.0
	loSlope, hiSlope := -1e18, 1e18
	last := 0
	for i := 1; i < n; i++ {
		x, y := float64(r.keys[i]), float64(i)
		dx := x - baseX
		if dx <= 0 {
			continue
		}
		s := (y - baseY) / dx
		if s < loSlope || s > hiSlope {
			// base→i leaves the corridor: emit the previous point as a knot
			// and restart the corridor from it.
			addPoint(last)
			baseX, baseY = float64(r.keys[last]), float64(last)
			dx = x - baseX
			loSlope, hiSlope = -1e18, 1e18
		}
		lo := (y - e - baseY) / dx
		hi := (y + e - baseY) / dx
		if lo > loSlope {
			loSlope = lo
		}
		if hi < hiSlope {
			hiSlope = hi
		}
		last = i
	}
	addPoint(n - 1)
}

func (r *RadixSpline) buildRadix() {
	r.minKey = r.keys[0]
	span := uint64(r.keys[len(r.keys)-1] - r.minKey)
	r.shift = 0
	for span>>r.shift >= uint64(1)<<r.radixBits {
		r.shift++
	}
	size := int(span>>r.shift) + 2
	r.radix = make([]int32, size+1)
	// radix[p] = first spline index with prefix >= p.
	si := 0
	for p := 0; p <= size; p++ {
		for si < len(r.splineX) && uint64(r.splineX[si]-r.minKey)>>r.shift < uint64(p) {
			si++
		}
		r.radix[p] = int32(si)
	}
}

// Name implements Index.
func (r *RadixSpline) Name() string { return "radixspline" }

// SizeBytes implements Index.
func (r *RadixSpline) SizeBytes() int { return len(r.splineX)*16 + len(r.radix)*4 }

// NumSplinePoints returns the spline size.
func (r *RadixSpline) NumSplinePoints() int { return len(r.splineX) }

// Get implements Index.
func (r *RadixSpline) Get(key int64) (int64, bool) {
	if len(r.keys) == 0 || key < r.minKey || key > r.keys[len(r.keys)-1] {
		return 0, false
	}
	p := uint64(key-r.minKey) >> r.shift
	lo := int(r.radix[p])
	hi := int(r.radix[p+1])
	if lo > 0 {
		lo--
	}
	if hi >= len(r.splineX) {
		hi = len(r.splineX) - 1
	}
	// Binary search the spline points in [lo, hi] for the segment.
	s := lo + sort.Search(hi-lo+1, func(i int) bool { return r.splineX[lo+i] > key }) - 1
	if s < 0 {
		s = 0
	}
	if s >= len(r.splineX)-1 {
		s = len(r.splineX) - 2
		if s < 0 {
			// Single spline point: direct probe.
			if i := searchRange(r.keys, 0, len(r.keys), key); i >= 0 {
				return r.vals[i], true
			}
			return 0, false
		}
	}
	x0, y0 := float64(r.splineX[s]), r.splineY[s]
	x1, y1 := float64(r.splineX[s+1]), r.splineY[s+1]
	var pred float64
	if x1 > x0 {
		pred = y0 + (y1-y0)*(float64(key)-x0)/(x1-x0)
	} else {
		pred = y0
	}
	pi := int(pred)
	// ±1 beyond the bound absorbs float truncation of the prediction.
	loI := clampInt(pi-r.MaxError-1, 0, len(r.keys))
	hiI := clampInt(pi+r.MaxError+2, 0, len(r.keys))
	if i := searchRange(r.keys, loI, hiI, key); i >= 0 {
		return r.vals[i], true
	}
	return 0, false
}
