package learnedindex

import (
	"math"
	"testing"

	"ml4db/internal/mlmath"
)

// TestBuildRMIPoolBitIdentical: leaf fitting over disjoint key ranges must
// make the built index identical to the serial build for every worker count.
func TestBuildRMIPoolBitIdentical(t *testing.T) {
	kvs := GenKeys(mlmath.NewRNG(3), DistLognormal, 5000)
	serial := BuildRMIPool(kvs, 64, nil)
	for _, workers := range []int{1, 2, 3, 4, 8} {
		p := mlmath.NewPool(workers)
		got := BuildRMIPool(kvs, 64, p)
		p.Close()
		for l := range serial.slope {
			if math.Float64bits(serial.slope[l]) != math.Float64bits(got.slope[l]) ||
				math.Float64bits(serial.bias[l]) != math.Float64bits(got.bias[l]) ||
				serial.errLo[l] != got.errLo[l] || serial.errHi[l] != got.errHi[l] {
				t.Fatalf("workers=%d: leaf %d differs from serial build", workers, l)
			}
		}
	}
}

// TestBuildRMIUsesSharedPoolAndStaysCorrect: the default constructor (shared
// pool) must index every key.
func TestBuildRMIUsesSharedPoolAndStaysCorrect(t *testing.T) {
	kvs := GenKeys(mlmath.NewRNG(5), DistUniform, 2000)
	r := BuildRMI(kvs, 32)
	for _, kv := range kvs {
		v, ok := r.Get(kv.Key)
		if !ok || v != kv.Value {
			t.Fatalf("key %d: got (%d,%v), want (%d,true)", kv.Key, v, ok, kv.Value)
		}
	}
}
