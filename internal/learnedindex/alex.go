package learnedindex

import (
	"math"
	"sort"
)

// Alex is an ALEX-style updatable adaptive learned index (Ding et al.):
// leaves are gapped arrays addressed by per-leaf linear models, inserts go
// to the model-predicted slot (shifting to the nearest gap on collision),
// and leaves split with retrained models when they exceed a density bound.
//
// Simplification vs. the paper: the root directory is a binary-searched
// sorted array of leaf boundary keys rather than an adaptive model tree; the
// leaf mechanics (model-based placement, gapped arrays, splits) follow ALEX.
type Alex struct {
	leaves    []*alexLeaf
	firstKeys []int64 // firstKeys[i] is the minimum key routed to leaves[i]
	count     int
}

const (
	alexLeafCap    = 256 // slots per fresh leaf
	alexMaxDensity = 0.8 // split threshold
	alexFillGap    = math.MinInt64
)

type alexLeaf struct {
	slots    []int64 // keys; gaps hold the nearest occupied key to the left
	vals     []int64
	occupied []bool
	n        int
	slope    float64 // model: slot ≈ slope·key + bias
	bias     float64
}

// NewAlex returns an empty index.
func NewAlex() *Alex {
	leaf := newAlexLeaf(alexLeafCap)
	return &Alex{leaves: []*alexLeaf{leaf}, firstKeys: []int64{math.MinInt64}}
}

// BuildAlex bulk-loads sorted unique pairs.
func BuildAlex(kvs []KV) *Alex {
	a := &Alex{}
	if len(kvs) == 0 {
		return NewAlex()
	}
	per := alexLeafCap * 6 / 10 // 60% initial density
	for i := 0; i < len(kvs); i += per {
		end := i + per
		if end > len(kvs) {
			end = len(kvs)
		}
		leaf := buildAlexLeaf(kvs[i:end], alexLeafCap)
		first := int64(math.MinInt64)
		if i > 0 {
			first = kvs[i].Key
		}
		a.leaves = append(a.leaves, leaf)
		a.firstKeys = append(a.firstKeys, first)
		a.count += end - i
	}
	return a
}

func newAlexLeaf(capacity int) *alexLeaf {
	l := &alexLeaf{
		slots:    make([]int64, capacity),
		vals:     make([]int64, capacity),
		occupied: make([]bool, capacity),
	}
	for i := range l.slots {
		l.slots[i] = alexFillGap
	}
	return l
}

// buildAlexLeaf places elements at evenly spaced slots and fits the model.
func buildAlexLeaf(kvs []KV, capacity int) *alexLeaf {
	l := newAlexLeaf(capacity)
	n := len(kvs)
	if n == 0 {
		return l
	}
	stride := float64(capacity) / float64(n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, kv := range kvs {
		slot := clampInt(int(float64(i)*stride), 0, capacity-1)
		// Even spacing cannot collide while stride >= 1; guard anyway.
		for l.occupied[slot] && slot+1 < capacity {
			slot++
		}
		l.slots[slot] = kv.Key
		l.vals[slot] = kv.Value
		l.occupied[slot] = true
		xs[i] = float64(kv.Key)
		ys[i] = float64(slot)
	}
	l.n = n
	l.slope, l.bias = linearFit(xs, ys)
	l.refill(0, capacity)
	return l
}

// refill restores the gap-fill invariant over [lo, hi): every gap holds the
// nearest occupied key to its left (or the fill sentinel).
func (l *alexLeaf) refill(lo, hi int) {
	last := int64(alexFillGap)
	if lo > 0 {
		last = l.slots[lo-1]
	}
	for i := lo; i < hi; i++ {
		if l.occupied[i] {
			last = l.slots[i]
		} else {
			l.slots[i] = last
		}
	}
}

// get looks up key via model prediction then local search. The fill
// invariant makes the slot array non-decreasing, so binary search is valid;
// the model narrows the window first (ALEX's exponential search).
func (l *alexLeaf) get(key int64) (int64, bool) {
	if l.n == 0 {
		return 0, false
	}
	c := len(l.slots)
	pred := clampInt(int(l.slope*float64(key)+l.bias), 0, c-1)
	// Exponential search for the bracketing window.
	lo, hi := pred, pred+1
	step := 1
	for lo > 0 && l.slots[lo] > key {
		lo -= step
		step <<= 1
	}
	if lo < 0 {
		lo = 0
	}
	step = 1
	for hi < c && l.slots[hi-1] < key {
		hi += step
		step <<= 1
	}
	if hi > c {
		hi = c
	}
	i := lo + sort.Search(hi-lo, func(j int) bool { return l.slots[lo+j] >= key })
	if i >= c || l.slots[i] != key {
		return 0, false
	}
	// A matching slot may be a gap fill; the occupied element is the head of
	// the equal-valued run (fills copy the nearest occupied key to the left).
	for i > 0 && l.slots[i-1] == key {
		i--
	}
	if l.occupied[i] {
		return l.vals[i], true
	}
	return 0, false
}

// insert places key at (or near) the model-predicted slot, shifting to the
// nearest gap when needed. It reports whether the leaf now needs a split.
func (l *alexLeaf) insert(key, value int64) (added, needSplit bool) {
	c := len(l.slots)
	// Find the first slot with key >= target to locate the sorted position.
	i := sort.Search(c, func(j int) bool { return l.slots[j] >= key })
	if i < c && l.slots[i] == key && l.occupied[i] {
		l.vals[i] = value
		return false, false
	}
	// The new element belongs at slot i (before the first larger key).
	s := i
	switch {
	case s < c && !l.occupied[s]:
		// Target slot is a gap.
	default:
		// Find the nearest gap right, else left, and shift toward it.
		g := -1
		for j := s; j < c; j++ {
			if !l.occupied[j] {
				g = j
				break
			}
		}
		if g >= 0 {
			// Shift occupied block [s, g) right by one.
			copy(l.slots[s+1:g+1], l.slots[s:g])
			copy(l.vals[s+1:g+1], l.vals[s:g])
			copy(l.occupied[s+1:g+1], l.occupied[s:g])
		} else {
			for j := s - 1; j >= 0; j-- {
				if !l.occupied[j] {
					g = j
					break
				}
			}
			if g < 0 {
				return false, true // completely full: split first
			}
			// Shift occupied block (g, s) left by one; insert lands at s-1.
			copy(l.slots[g:s-1], l.slots[g+1:s])
			copy(l.vals[g:s-1], l.vals[g+1:s])
			copy(l.occupied[g:s-1], l.occupied[g+1:s])
			s = s - 1
		}
	}
	l.slots[s] = key
	l.vals[s] = value
	l.occupied[s] = true
	l.n++
	l.refill(0, c) // restore gap fills (spans at most the shifted region plus right run)
	return true, float64(l.n) > alexMaxDensity*float64(c)
}

// items returns the leaf's occupied pairs in key order.
func (l *alexLeaf) items() []KV {
	out := make([]KV, 0, l.n)
	for i, occ := range l.occupied {
		if occ {
			out = append(out, KV{l.slots[i], l.vals[i]})
		}
	}
	return out
}

// Name implements Index.
func (a *Alex) Name() string { return "alex" }

// Len returns the number of stored keys.
func (a *Alex) Len() int { return a.count }

// NumLeaves returns the leaf count.
func (a *Alex) NumLeaves() int { return len(a.leaves) }

// SizeBytes implements Index.
func (a *Alex) SizeBytes() int {
	s := len(a.firstKeys) * 8
	for _, l := range a.leaves {
		s += len(l.slots)*17 + 16
	}
	return s
}

func (a *Alex) leafFor(key int64) int {
	i := sort.Search(len(a.firstKeys), func(j int) bool { return a.firstKeys[j] > key })
	return i - 1
}

// Get implements Index.
func (a *Alex) Get(key int64) (int64, bool) {
	return a.leaves[a.leafFor(key)].get(key)
}

// Insert implements Updatable.
func (a *Alex) Insert(key, value int64) {
	li := a.leafFor(key)
	leaf := a.leaves[li]
	added, split := leaf.insert(key, value)
	if added {
		a.count++
	}
	if split {
		a.splitLeaf(li)
	}
}

// splitLeaf replaces leaf li with two half-full leaves with fresh models —
// ALEX's adaptive structural modification.
func (a *Alex) splitLeaf(li int) {
	items := a.leaves[li].items()
	mid := len(items) / 2
	left := buildAlexLeaf(items[:mid], alexLeafCap)
	right := buildAlexLeaf(items[mid:], alexLeafCap)
	a.leaves[li] = left
	a.leaves = append(a.leaves, nil)
	copy(a.leaves[li+2:], a.leaves[li+1:])
	a.leaves[li+1] = right
	a.firstKeys = append(a.firstKeys, 0)
	copy(a.firstKeys[li+2:], a.firstKeys[li+1:])
	a.firstKeys[li+1] = items[mid].Key
}
