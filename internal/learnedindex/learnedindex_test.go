package learnedindex

import (
	"testing"
	"testing/quick"

	"ml4db/internal/mlmath"
)

func genSorted(t *testing.T, dist KeyDist, n int, seed uint64) []KV {
	t.Helper()
	return GenKeys(mlmath.NewRNG(seed), dist, n)
}

func TestGenKeysSortedUnique(t *testing.T) {
	for _, dist := range []KeyDist{DistUniform, DistLognormal, DistZipfGap} {
		kvs := genSorted(t, dist, 5000, 1)
		if len(kvs) != 5000 {
			t.Fatalf("%v: got %d keys", dist, len(kvs))
		}
		for i := 1; i < len(kvs); i++ {
			if kvs[i].Key <= kvs[i-1].Key {
				t.Fatalf("%v: keys not strictly increasing at %d", dist, i)
			}
		}
	}
}

// buildAll constructs every index over the same data.
func buildAll(kvs []KV) []Index {
	return []Index{
		BulkLoadBTree(kvs),
		BuildRMI(kvs, 64),
		BuildPGM(kvs, 32),
		BuildRadixSpline(kvs, 32, 14),
		BuildAlex(kvs),
	}
}

func TestAllIndexesFindEveryKey(t *testing.T) {
	for _, dist := range []KeyDist{DistUniform, DistLognormal, DistZipfGap} {
		kvs := genSorted(t, dist, 10000, 2)
		for _, idx := range buildAll(kvs) {
			for _, kv := range kvs {
				v, ok := idx.Get(kv.Key)
				if !ok || v != kv.Value {
					t.Fatalf("%s/%v: Get(%d) = (%d, %v), want (%d, true)",
						idx.Name(), dist, kv.Key, v, ok, kv.Value)
				}
			}
		}
	}
}

func TestAllIndexesRejectAbsentKeys(t *testing.T) {
	kvs := genSorted(t, DistUniform, 5000, 3)
	present := make(map[int64]bool, len(kvs))
	for _, kv := range kvs {
		present[kv.Key] = true
	}
	rng := mlmath.NewRNG(4)
	for _, idx := range buildAll(kvs) {
		misses := 0
		for i := 0; i < 2000; i++ {
			k := rng.Int63() % (int64(len(kvs)) * 1000)
			if present[k] {
				continue
			}
			misses++
			if _, ok := idx.Get(k); ok {
				t.Fatalf("%s: found absent key %d", idx.Name(), k)
			}
		}
		if misses == 0 {
			t.Fatal("test generated no absent keys")
		}
	}
}

func TestBTreeInsertAndLookup(t *testing.T) {
	bt := NewBTree()
	rng := mlmath.NewRNG(5)
	ref := map[int64]int64{}
	for i := 0; i < 20000; i++ {
		k := rng.Int63() % 100000
		v := int64(i)
		bt.Insert(k, v)
		ref[k] = v
	}
	if bt.Len() != len(ref) {
		t.Errorf("Len = %d, want %d", bt.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := bt.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = (%d, %v), want (%d, true)", k, got, ok, v)
		}
	}
	if bt.Height() < 2 {
		t.Errorf("height = %d after 20k inserts", bt.Height())
	}
}

func TestBTreeRange(t *testing.T) {
	kvs := make([]KV, 100)
	for i := range kvs {
		kvs[i] = KV{Key: int64(i * 10), Value: int64(i)}
	}
	bt := BulkLoadBTree(kvs)
	got := bt.Range(95, 205, 0)
	// Keys 100..200 → values 10..20.
	if len(got) != 11 {
		t.Fatalf("range len = %d, want 11 (%v)", len(got), got)
	}
	for i, v := range got {
		if v != int64(10+i) {
			t.Errorf("range[%d] = %d", i, v)
		}
	}
	if lim := bt.Range(0, 1000, 5); len(lim) != 5 {
		t.Errorf("limited range len = %d", len(lim))
	}
}

func TestRMIFitDifficultyOrdering(t *testing.T) {
	// A linear-root RMI fits a uniform CDF far better than a lognormal one —
	// the accuracy-depends-on-learnability behavior §3.2 discusses.
	uni := BuildRMI(genSorted(t, DistUniform, 20000, 6), 128)
	logn := BuildRMI(genSorted(t, DistLognormal, 20000, 6), 128)
	if uni.MaxError() >= logn.MaxError() {
		t.Errorf("uniform max error %d should be below lognormal %d", uni.MaxError(), logn.MaxError())
	}
	if uni.NumLeaves() != 128 {
		t.Errorf("leaves = %d", uni.NumLeaves())
	}
	if uni.MaxError() > 2000 {
		t.Errorf("uniform max error %d is implausibly large", uni.MaxError())
	}
}

func TestRMISmallerThanBTree(t *testing.T) {
	kvs := genSorted(t, DistUniform, 50000, 7)
	bt := BulkLoadBTree(kvs)
	r := BuildRMI(kvs, 256)
	if r.SizeBytes() >= bt.SizeBytes()/10 {
		t.Errorf("RMI size %d not ≪ B-tree size %d", r.SizeBytes(), bt.SizeBytes())
	}
}

func TestRMIStaleLookupMissesAfterInserts(t *testing.T) {
	// E3's mechanism: a static RMI over the original data can miss keys once
	// the array has grown underneath it.
	kvs := genSorted(t, DistUniform, 20000, 8)
	r := BuildRMI(kvs, 256)
	// Insert 20000 new keys into the sorted arrays (not the model).
	rng := mlmath.NewRNG(9)
	grown := make([]KV, len(kvs))
	copy(grown, kvs)
	for i := 0; i < 20000; i++ {
		grown = append(grown, KV{Key: rng.Int63() % (int64(len(kvs)) * 1000), Value: -1})
	}
	SortKVs(grown)
	grown = DedupKVs(grown)
	keys := make([]int64, len(grown))
	vals := make([]int64, len(grown))
	for i, kv := range grown {
		keys[i] = kv.Key
		vals[i] = kv.Value
	}
	misses := 0
	for _, kv := range grown {
		if _, ok := r.StaleLookup(keys, vals, kv.Key); !ok {
			misses++
		}
	}
	if misses == 0 {
		t.Error("stale RMI should miss keys after 100% growth (robustness failure)")
	}
}

func TestPGMSegmentsRespectEpsilonTradeoff(t *testing.T) {
	kvs := genSorted(t, DistLognormal, 30000, 10)
	small := BuildPGM(kvs, 8)
	large := BuildPGM(kvs, 128)
	if small.NumSegments() <= large.NumSegments() {
		t.Errorf("ε=8 gives %d segments, ε=128 gives %d; expected more segments for smaller ε",
			small.NumSegments(), large.NumSegments())
	}
}

func TestPGMInsertsThroughDeltaAndMerge(t *testing.T) {
	kvs := genSorted(t, DistUniform, 5000, 11)
	p := BuildPGM(kvs, 16)
	rng := mlmath.NewRNG(12)
	added := map[int64]int64{}
	for i := 0; i < 3000; i++ { // exceeds maxDelta → forces merges
		k := rng.Int63()%10000000 + 100000000
		p.Insert(k, int64(i))
		added[k] = int64(i)
	}
	for k, v := range added {
		got, ok := p.Get(k)
		if !ok || got != v {
			t.Fatalf("after merge: Get(%d) = (%d, %v), want (%d, true)", k, got, ok, v)
		}
	}
	// Original keys still present.
	for _, kv := range kvs[:500] {
		if _, ok := p.Get(kv.Key); !ok {
			t.Fatalf("original key %d lost after merges", kv.Key)
		}
	}
}

func TestPGMInsertOverwrites(t *testing.T) {
	p := BuildPGM([]KV{{1, 10}, {5, 50}}, 4)
	p.Insert(5, 99)
	if v, ok := p.Get(5); !ok || v != 99 {
		t.Errorf("overwrite: Get(5) = (%d, %v)", v, ok)
	}
}

func TestRadixSplineSplinePointTradeoff(t *testing.T) {
	kvs := genSorted(t, DistZipfGap, 30000, 13)
	tight := BuildRadixSpline(kvs, 4, 14)
	loose := BuildRadixSpline(kvs, 256, 14)
	if tight.NumSplinePoints() <= loose.NumSplinePoints() {
		t.Errorf("maxErr=4: %d points, maxErr=256: %d points",
			tight.NumSplinePoints(), loose.NumSplinePoints())
	}
}

func TestAlexInsertHeavy(t *testing.T) {
	a := NewAlex()
	rng := mlmath.NewRNG(14)
	ref := map[int64]int64{}
	for i := 0; i < 30000; i++ {
		k := rng.Int63() % 1000000
		a.Insert(k, int64(i))
		ref[k] = int64(i)
	}
	if a.Len() != len(ref) {
		t.Errorf("Len = %d, want %d", a.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := a.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = (%d, %v), want (%d, true)", k, got, ok, v)
		}
	}
	if a.NumLeaves() < 10 {
		t.Errorf("expected many leaf splits, got %d leaves", a.NumLeaves())
	}
}

func TestAlexMixedBulkAndInsert(t *testing.T) {
	kvs := genSorted(t, DistUniform, 10000, 15)
	a := BuildAlex(kvs)
	rng := mlmath.NewRNG(16)
	ref := map[int64]int64{}
	for _, kv := range kvs {
		ref[kv.Key] = kv.Value
	}
	for i := 0; i < 10000; i++ {
		k := rng.Int63() % (int64(len(kvs)) * 1000)
		a.Insert(k, int64(1000000+i))
		ref[k] = int64(1000000 + i)
	}
	for k, v := range ref {
		got, ok := a.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = (%d, %v), want (%d, true)", k, got, ok, v)
		}
	}
}

func TestAlexSequentialInsert(t *testing.T) {
	// Monotonic append is the classic adversarial pattern for gapped arrays.
	a := NewAlex()
	for i := int64(0); i < 5000; i++ {
		a.Insert(i, i*2)
	}
	for i := int64(0); i < 5000; i++ {
		v, ok := a.Get(i)
		if !ok || v != i*2 {
			t.Fatalf("Get(%d) = (%d, %v)", i, v, ok)
		}
	}
}

func TestDedupKVs(t *testing.T) {
	kvs := []KV{{1, 1}, {1, 2}, {2, 3}, {3, 4}, {3, 5}}
	out := DedupKVs(kvs)
	if len(out) != 3 || out[0].Value != 2 || out[2].Value != 5 {
		t.Errorf("DedupKVs = %v", out)
	}
	if got := DedupKVs(nil); len(got) != 0 {
		t.Error("DedupKVs(nil) should be empty")
	}
}

// Property: for any random key set, every index agrees with a reference map.
func TestIndexAgreementProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mlmath.NewRNG(seed)
		n := 100 + rng.Intn(2000)
		kvs := GenKeys(rng, KeyDist(rng.Intn(3)), n)
		probeKeys := make([]int64, 200)
		for i := range probeKeys {
			if rng.Float64() < 0.5 {
				probeKeys[i] = kvs[rng.Intn(n)].Key
			} else {
				probeKeys[i] = rng.Int63() % (int64(n) * 1000)
			}
		}
		ref := make(map[int64]int64, n)
		for _, kv := range kvs {
			ref[kv.Key] = kv.Value
		}
		for _, idx := range buildAll(kvs) {
			for _, k := range probeKeys {
				want, wantOK := ref[k]
				got, ok := idx.Get(k)
				if ok != wantOK || (ok && got != want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestEmptyIndexes(t *testing.T) {
	for _, idx := range buildAll(nil) {
		if _, ok := idx.Get(42); ok {
			t.Errorf("%s: found key in empty index", idx.Name())
		}
		if idx.SizeBytes() < 0 {
			t.Errorf("%s: negative size", idx.Name())
		}
	}
}
