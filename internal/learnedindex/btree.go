package learnedindex

import "sort"

// btreeOrder is the maximum number of keys per node.
const btreeOrder = 64

// BTree is an in-memory B+tree: the traditional index that RMI proposed to
// replace. It supports point lookups, inserts, and bulk loading.
type BTree struct {
	root   *btreeNode
	height int
	count  int
	nodes  int
}

type btreeNode struct {
	keys []int64
	// Leaf storage.
	vals []int64
	// Internal children: len(children) == len(keys)+1.
	children []*btreeNode
	leaf     bool
}

// NewBTree returns an empty B+tree.
func NewBTree() *BTree {
	return &BTree{root: &btreeNode{leaf: true}, height: 1, nodes: 1}
}

// BulkLoadBTree builds a B+tree from sorted unique pairs.
func BulkLoadBTree(kvs []KV) *BTree {
	t := NewBTree()
	// Build leaves at ~70% fill.
	const fill = btreeOrder * 7 / 10
	var level []*btreeNode
	for i := 0; i < len(kvs); i += fill {
		end := i + fill
		if end > len(kvs) {
			end = len(kvs)
		}
		n := &btreeNode{leaf: true}
		for _, kv := range kvs[i:end] {
			n.keys = append(n.keys, kv.Key)
			n.vals = append(n.vals, kv.Value)
		}
		level = append(level, n)
	}
	if len(level) == 0 {
		return t
	}
	t.nodes = len(level)
	t.height = 1
	for len(level) > 1 {
		var up []*btreeNode
		for i := 0; i < len(level); i += fill {
			end := i + fill
			if end > len(level) {
				end = len(level)
			}
			n := &btreeNode{}
			n.children = append(n.children, level[i])
			for _, c := range level[i+1 : end] {
				n.keys = append(n.keys, firstKey(c))
				n.children = append(n.children, c)
			}
			up = append(up, n)
		}
		t.nodes += len(up)
		t.height++
		level = up
	}
	t.root = level[0]
	t.count = len(kvs)
	return t
}

func firstKey(n *btreeNode) int64 {
	for !n.leaf {
		n = n.children[0]
	}
	return n.keys[0]
}

// Name implements Index.
func (t *BTree) Name() string { return "btree" }

// Len returns the number of stored keys.
func (t *BTree) Len() int { return t.count }

// Height returns the tree height (levels traversed per lookup).
func (t *BTree) Height() int { return t.height }

// SizeBytes implements Index: keys + values + child pointers.
func (t *BTree) SizeBytes() int { return t.nodes * (btreeOrder*16 + (btreeOrder+1)*8) }

// Get implements Index.
func (t *BTree) Get(key int64) (int64, bool) {
	n := t.root
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
		n = n.children[i]
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true
	}
	return 0, false
}

// Insert implements Updatable.
func (t *BTree) Insert(key, value int64) {
	mid, right := t.insert(t.root, key, value)
	if right != nil {
		newRoot := &btreeNode{keys: []int64{mid}, children: []*btreeNode{t.root, right}}
		t.root = newRoot
		t.height++
		t.nodes++
	}
}

// insert descends, inserting into the leaf; on overflow it splits and
// returns the separator key and the new right sibling.
func (t *BTree) insert(n *btreeNode, key, value int64) (int64, *btreeNode) {
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = value
			return 0, nil
		}
		n.keys = append(n.keys, 0)
		n.vals = append(n.vals, 0)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.vals[i+1:], n.vals[i:])
		n.keys[i] = key
		n.vals[i] = value
		t.count++
		if len(n.keys) <= btreeOrder {
			return 0, nil
		}
		// Split leaf.
		mid := len(n.keys) / 2
		right := &btreeNode{leaf: true}
		right.keys = append(right.keys, n.keys[mid:]...)
		right.vals = append(right.vals, n.vals[mid:]...)
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		t.nodes++
		return right.keys[0], right
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
	sep, right := t.insert(n.children[i], key, value)
	if right == nil {
		return 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if len(n.keys) <= btreeOrder {
		return 0, nil
	}
	// Split internal node.
	mid := len(n.keys) / 2
	sepUp := n.keys[mid]
	rn := &btreeNode{}
	rn.keys = append(rn.keys, n.keys[mid+1:]...)
	rn.children = append(rn.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	t.nodes++
	return sepUp, rn
}

// Range returns up to limit values with keys in [lo, hi].
func (t *BTree) Range(lo, hi int64, limit int) []int64 {
	var out []int64
	var walk func(n *btreeNode) bool
	walk = func(n *btreeNode) bool {
		if n.leaf {
			for i, k := range n.keys {
				if k < lo {
					continue
				}
				if k > hi {
					return false
				}
				out = append(out, n.vals[i])
				if limit > 0 && len(out) >= limit {
					return false
				}
			}
			return true
		}
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > lo })
		for ; i < len(n.children); i++ {
			if !walk(n.children[i]) {
				return false
			}
			if i < len(n.keys) && n.keys[i] > hi {
				return false
			}
		}
		return true
	}
	walk(t.root)
	return out
}
