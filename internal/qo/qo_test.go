package qo

import (
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/planrep"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/exec"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/tree"
	"ml4db/internal/workload"
)

func testEnv(t *testing.T) (*Env, *workload.StarGen) {
	t.Helper()
	rng := mlmath.NewRNG(1)
	sch, err := datagen.NewStarSchema(rng, 3000, 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	return NewEnv(sch.Cat), workload.NewStarGen(sch, rng)
}

func newSearch(env *Env, seed uint64) *ValueSearch {
	rng := mlmath.NewRNG(seed)
	pe := planrep.NewPlanEncoder(env.Cat, planrep.FullFeatures())
	enc := tree.NewTreeRNNEncoder(pe.FeatDim(), 8, rng)
	return &ValueSearch{
		Env: env, Enc: pe,
		Reg: tree.NewRegressor(enc, []int{16}, rng),
		Eps: 0.3, RNG: rng,
	}
}

func TestEnvRunAndTimeout(t *testing.T) {
	env, gen := testEnv(t)
	q := gen.QueryWithDims(2)
	p, err := env.Opt.Plan(q, optimizer.NoHint())
	if err != nil {
		t.Fatal(err)
	}
	work, timedOut, err := env.Run(p, 0)
	if err != nil || timedOut {
		t.Fatalf("Run: %v timedOut=%v", err, timedOut)
	}
	if work <= 0 {
		t.Fatal("no work")
	}
	_, timedOut, err = env.Run(p, work/2)
	if err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Error("expected timeout under half budget")
	}
}

func TestBuildPlanProducesValidExecutablePlans(t *testing.T) {
	env, gen := testEnv(t)
	vs := newSearch(env, 2)
	for i := 0; i < 10; i++ {
		q := gen.Query()
		p, err := vs.BuildPlan(q, i%2 == 0)
		if err != nil {
			t.Fatal(err)
		}
		// Same cardinality as the expert plan: correctness of the join tree.
		pe, err := env.Opt.Plan(q, optimizer.NoHint())
		if err != nil {
			t.Fatal(err)
		}
		re, err := env.Exec.Execute(pe, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rl, err := env.Exec.Execute(p, exec.Options{})
		if err != nil {
			t.Fatalf("learned plan failed: %v\n%s", err, p)
		}
		if len(re.Rows) != len(rl.Rows) {
			t.Fatalf("query %d: learned plan returns %d rows, expert %d", i, len(rl.Rows), len(re.Rows))
		}
	}
}

func TestValueSearchLearnsToAvoidNLJoins(t *testing.T) {
	env, gen := testEnv(t)
	vs := newSearch(env, 3)
	// Collect diverse experience: every hint-set plan, executed.
	var exps []Experience
	var queries []*plan.Query
	for i := 0; i < 10; i++ {
		q := gen.QueryWithDims(2)
		queries = append(queries, q)
		for _, h := range optimizer.StandardHintSets() {
			p, err := env.Opt.Plan(q, h)
			if err != nil {
				t.Fatal(err)
			}
			work, _, err := env.Run(p, 0)
			if err != nil {
				t.Fatal(err)
			}
			exps = append(exps, Experience{Query: q, Plan: p, LogWork: LogWork(work)})
		}
	}
	vs.TrainValue(exps, 25, 3e-3)
	// The trained policy should produce plans far cheaper than the worst
	// hint (nl-only) and in the ballpark of the expert.
	var wLearned, wExpert, wWorst int64
	for _, q := range queries {
		p, err := vs.BuildPlan(q, false)
		if err != nil {
			t.Fatal(err)
		}
		w, _, err := env.Run(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		wLearned += w
		pe, _ := env.Opt.Plan(q, optimizer.NoHint())
		we, _, _ := env.Run(pe, 0)
		wExpert += we
		pw, _ := env.Opt.Plan(q, optimizer.HintSet{Name: "nl", JoinOps: []plan.OpType{plan.OpNLJoin}})
		ww, _, _ := env.Run(pw, 0)
		wWorst += ww
	}
	if wLearned >= wWorst {
		t.Errorf("learned %d not better than worst hint %d", wLearned, wWorst)
	}
	if float64(wLearned) > 5*float64(wExpert) {
		t.Errorf("learned %d far above expert %d on training queries", wLearned, wExpert)
	}
}

func TestTrainValueReducesPredictionLoss(t *testing.T) {
	env, gen := testEnv(t)
	vs := newSearch(env, 4)
	var exps []Experience
	for i := 0; i < 8; i++ {
		q := gen.QueryWithDims(2)
		for _, h := range optimizer.StandardHintSets()[:4] {
			p, err := env.Opt.Plan(q, h)
			if err != nil {
				t.Fatal(err)
			}
			work, _, err := env.Run(p, 0)
			if err != nil {
				t.Fatal(err)
			}
			exps = append(exps, Experience{Query: q, Plan: p, LogWork: LogWork(work)})
		}
	}
	lossBefore := predLoss(vs, exps)
	vs.TrainValue(exps, 30, 3e-3)
	lossAfter := predLoss(vs, exps)
	if lossAfter >= lossBefore {
		t.Errorf("training did not reduce loss: %v → %v", lossBefore, lossAfter)
	}
}

func predLoss(vs *ValueSearch, exps []Experience) float64 {
	s := 0.0
	for _, e := range exps {
		d := vs.PredictPlan(e.Query, e.Plan) - e.LogWork
		s += d * d
	}
	return s / float64(len(exps))
}

func TestBuildPlanRejectsDisconnected(t *testing.T) {
	env, _ := testEnv(t)
	vs := newSearch(env, 5)
	q := plan.NewQuery(0, 1) // no join conditions
	if _, err := vs.BuildPlan(q, false); err == nil {
		t.Error("expected disconnected error")
	}
}
