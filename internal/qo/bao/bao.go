package bao

import (
	"math"

	"ml4db/internal/bandit"
	"ml4db/internal/mlmath"
	"ml4db/internal/qo"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
)

// planFeatDim is the width of the plan feature vector.
const planFeatDim = 9

// PlanFeatures summarizes a candidate plan for the bandit's reward model:
// bias, log estimated cost, log estimated rows, operator counts, tree depth
// and size. (BAO uses a tree convolution; a linear model over these summary
// features keeps Thompson sampling exact.)
func PlanFeatures(p *plan.Node) []float64 {
	var nHash, nNL, nMerge, nScan float64
	p.Walk(func(n *plan.Node) {
		switch n.Op {
		case plan.OpHashJoin:
			nHash++
		case plan.OpNLJoin:
			nNL++
		case plan.OpMergeJoin:
			nMerge++
		case plan.OpSeqScan:
			nScan++
		}
	})
	return []float64{
		1,
		math.Log(p.EstCost + 1),
		math.Log(p.EstRows + 1),
		nHash, nNL, nMerge, nScan,
		float64(p.Depth()),
		float64(p.NumNodes()) / 16,
	}
}

// Bao steers the expert optimizer with a Thompson-sampling bandit. As in
// the published system, ONE reward model predicts plan latency from plan
// features and is shared across arms: every executed query trains it, no
// matter which hint produced the plan, so convergence is fast.
type Bao struct {
	Env   *qo.Env
	Hints []optimizer.HintSet
	// Bandit holds the shared Bayesian linear latency model over plan
	// features; reward is negative log work.
	Bandit *bandit.ThompsonLinear
	rng    *mlmath.RNG
	// Queries counts processed queries (the training cost metric).
	Queries int
}

// New constructs BAO over the given hint collection.
func New(env *qo.Env, hints []optimizer.HintSet, rng *mlmath.RNG) *Bao {
	return &Bao{
		Env:    env,
		Hints:  hints,
		Bandit: bandit.NewThompsonLinear(1, planFeatDim, 0.3, 1),
		rng:    rng,
	}
}

// SelectPlan plans q under every hint set, draws one posterior sample of the
// latency model, and returns the plan the sampled model predicts best — the
// Thompson step over correlated arms.
func (b *Bao) SelectPlan(q *plan.Query) (*plan.Node, int, error) {
	plans, _, err := b.Env.Opt.CheapestHint(q, b.Hints)
	if err != nil {
		return nil, 0, err
	}
	w, err := b.Bandit.SampleWeights(0, b.rng)
	if err != nil {
		return nil, 0, err
	}
	bestArm, bestVal := 0, math.Inf(-1)
	for arm, p := range plans {
		if v := mlmath.Dot(w, PlanFeatures(p)); v > bestVal {
			bestArm, bestVal = arm, v
		}
	}
	return plans[bestArm], bestArm, nil
}

// RunQuery selects, executes, and learns from one query, returning the work
// and the chosen hint index.
func (b *Bao) RunQuery(q *plan.Query) (int64, int, error) {
	p, arm, err := b.SelectPlan(q)
	if err != nil {
		return 0, 0, err
	}
	work, _, err := b.Env.Run(p, 0)
	if err != nil {
		return 0, 0, err
	}
	reward := -qo.LogWork(work)
	b.Bandit.Update(0, PlanFeatures(p), reward)
	b.Queries++
	if m := b.Env.Metrics; m != nil {
		m.Counter("qo.bao.queries").Inc()
		m.Counter("qo.bao.arm." + b.Hints[arm].Name).Inc()
		m.Histogram("qo.bao.work", qo.WorkBuckets).Observe(float64(work))
		m.Gauge("qo.bao.last_reward").Set(reward)
	}
	return work, arm, nil
}

// RunQueryCompared is RunQuery plus an expert-baseline execution of the same
// query, recording whether BAO's steered plan beat or regressed against the
// unsteered expert (qo.bao.wins / qo.bao.regressions). The execution order —
// steered first, expert second — matches the E9 evaluation loop exactly.
func (b *Bao) RunQueryCompared(q *plan.Query) (baoWork, expertWork int64, arm int, err error) {
	baoWork, arm, err = b.RunQuery(q)
	if err != nil {
		return 0, 0, 0, err
	}
	expertWork, err = b.ExpertWork(q)
	if err != nil {
		return 0, 0, 0, err
	}
	if m := b.Env.Metrics; m != nil {
		switch {
		case baoWork < expertWork:
			m.Counter("qo.bao.wins").Inc()
		case baoWork > expertWork:
			m.Counter("qo.bao.regressions").Inc()
		default:
			m.Counter("qo.bao.ties").Inc()
		}
	}
	return baoWork, expertWork, arm, nil
}

// ExpertWork executes the unhinted expert plan (the baseline BAO improves).
func (b *Bao) ExpertWork(q *plan.Query) (int64, error) {
	p, err := b.Env.Opt.Plan(q, optimizer.NoHint())
	if err != nil {
		return 0, err
	}
	work, _, err := b.Env.Run(p, 0)
	return work, err
}
