// Package bao implements a BAO-style bandit optimizer (Marcus et al.,
// SIGMOD 2021): instead of replacing the expert optimizer, BAO steers it —
// per query, each hint set yields a candidate plan from the expert, a
// learned model predicts each plan's latency, and Thompson sampling picks
// the plan to execute, balancing exploration of unproven hint sets against
// exploitation. The observed latency updates the model.
//
// This is the ML-enhanced design the paper credits with production adoption:
// training cost is tiny (one observation per query), the worst case is
// bounded by the expert's plan space, and the model adapts to workload and
// data change automatically.
package bao
