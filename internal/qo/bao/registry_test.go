package bao

import (
	"errors"
	"testing"

	"ml4db/internal/bandit"
	"ml4db/internal/mlmath"
	"ml4db/internal/modelsvc"
	"ml4db/internal/sqlkit/optimizer"
)

// TestBaoModelRegistryRoundTrip trains BAO on a few queries, publishes the
// bandit posterior, and restores it into a fresh instance: the restored
// optimizer must sample and select exactly like the original under the same
// RNG stream.
func TestBaoModelRegistryRoundTrip(t *testing.T) {
	env, gen := setup(t, 21)
	src := New(env, optimizer.StandardHintSets(), mlmath.NewRNG(22))
	for i := 0; i < 30; i++ {
		if _, _, err := src.RunQuery(gen.Query()); err != nil {
			t.Fatal(err)
		}
	}
	reg, err := modelsvc.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	man, err := src.PublishModel(reg, "bao-latency", map[string]string{"queries": "30"})
	if err != nil {
		t.Fatal(err)
	}
	if man.Version != 1 || man.ArchHash != src.Bandit.ArchHash() {
		t.Fatalf("unexpected manifest %+v", man)
	}

	dst := New(env, optimizer.StandardHintSets(), mlmath.NewRNG(99))
	if _, err := dst.LoadModel(reg, "bao-latency", 0); err != nil {
		t.Fatal(err)
	}
	ctx := []float64{1, 2, 3, 0, 1, 0, 2, 2, 0.5}
	a, err := src.Bandit.Mean(0, ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dst.Bandit.Mean(0, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("restored posterior mean differs: %v vs %v", a, b)
	}
	// Same RNG state on both sides → identical plan selection.
	q := gen.QueryWithDims(2)
	srcRNG, dstRNG := mlmath.NewRNG(5), mlmath.NewRNG(5)
	src.rng, dst.rng = srcRNG, dstRNG
	_, armA, err := src.SelectPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	_, armB, err := dst.SelectPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if armA != armB {
		t.Fatalf("restored BAO selects arm %d, original %d", armB, armA)
	}
}

func TestBaoLoadModelRejectsArchMismatch(t *testing.T) {
	env, _ := setup(t, 23)
	src := New(env, optimizer.StandardHintSets(), mlmath.NewRNG(24))
	reg, err := modelsvc.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.PublishModel(reg, "bao-latency", nil); err != nil {
		t.Fatal(err)
	}
	dst := New(env, optimizer.StandardHintSets(), mlmath.NewRNG(25))
	// A different context dimension must be rejected before any state moves.
	dst.Bandit = bandit.NewThompsonLinear(1, planFeatDim+1, 0.3, 1)
	_, err = dst.LoadModel(reg, "bao-latency", 0)
	var aerr *modelsvc.ArchMismatchError
	if !errors.As(err, &aerr) {
		t.Fatalf("want *modelsvc.ArchMismatchError, got %v", err)
	}
}
