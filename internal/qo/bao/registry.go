package bao

import (
	"bytes"
	"io"

	"ml4db/internal/modelsvc"
)

// PublishModel checkpoints the bandit's latency-model posterior as a new
// version in the registry, so a steered optimizer can be restored — or
// shadow-compared against a retrained candidate — without replaying its
// training queries.
func (b *Bao) PublishModel(reg *modelsvc.Registry, name string, meta map[string]string) (modelsvc.Manifest, error) {
	return reg.Publish(name, b.Bandit.ArchHash(), meta, func(w io.Writer) error {
		return b.Bandit.SaveState(w)
	})
}

// LoadModel restores the bandit posterior from a published version
// (version 0 = latest). The manifest's architecture hash must match the
// receiver's bandit — a mismatch returns *modelsvc.ArchMismatchError before
// any state is touched — and payload corruption is rejected by the
// registry's checksum verification.
func (b *Bao) LoadModel(reg *modelsvc.Registry, name string, version int) (modelsvc.Manifest, error) {
	payload, man, err := reg.Load(name, version)
	if err != nil {
		return modelsvc.Manifest{}, err
	}
	if got := b.Bandit.ArchHash(); got != man.ArchHash {
		return modelsvc.Manifest{}, &modelsvc.ArchMismatchError{
			Name: man.Name, Version: man.Version, Want: man.ArchHash, Got: got,
		}
	}
	if err := b.Bandit.LoadState(bytes.NewReader(payload)); err != nil {
		return modelsvc.Manifest{}, err
	}
	return man, nil
}
