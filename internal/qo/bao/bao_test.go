package bao

import (
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/qo"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/workload"
)

func setup(t *testing.T, seed uint64) (*qo.Env, *workload.StarGen) {
	t.Helper()
	rng := mlmath.NewRNG(seed)
	sch, err := datagen.NewStarSchema(rng, 4000, 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	return qo.NewEnv(sch.Cat), workload.NewStarGen(sch, rng)
}

func TestPlanFeaturesShape(t *testing.T) {
	env, gen := setup(t, 1)
	q := gen.QueryWithDims(2)
	p, err := env.Opt.Plan(q, optimizer.NoHint())
	if err != nil {
		t.Fatal(err)
	}
	f := PlanFeatures(p)
	if len(f) != planFeatDim {
		t.Fatalf("feature dim %d, want %d", len(f), planFeatDim)
	}
	if f[0] != 1 {
		t.Error("bias feature missing")
	}
	// 3 scans for a 2-dim star query.
	if f[6] != 3 {
		t.Errorf("scan count feature = %v, want 3", f[6])
	}
}

func TestBaoLearnsToAvoidBadArms(t *testing.T) {
	env, gen := setup(t, 2)
	rng := mlmath.NewRNG(3)
	// Arm set includes the pathological nl-only arm.
	hints := []optimizer.HintSet{
		{Name: "default"},
		{Name: "nl-only", JoinOps: []plan.OpType{plan.OpNLJoin}},
		{Name: "hash-only", JoinOps: []plan.OpType{plan.OpHashJoin}},
	}
	b := New(env, hints, rng)
	nlPicks := 0
	const rounds = 60
	for i := 0; i < rounds; i++ {
		q := gen.QueryWithDims(2)
		_, arm, err := b.RunQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if i >= rounds/2 && hints[arm].Name == "nl-only" {
			nlPicks++
		}
	}
	if nlPicks > 4 {
		t.Errorf("BAO still picked nl-only %d times in the second half", nlPicks)
	}
}

func TestBaoNoWorseThanExpertInAggregate(t *testing.T) {
	env, gen := setup(t, 4)
	rng := mlmath.NewRNG(5)
	b := New(env, optimizer.StandardHintSets(), rng)
	var wBao, wExp int64
	// Warmup phase lets the bandit explore.
	for i := 0; i < 40; i++ {
		if _, _, err := b.RunQuery(gen.Query()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		q := gen.Query()
		w, _, err := b.RunQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		wBao += w
		we, err := b.ExpertWork(q)
		if err != nil {
			t.Fatal(err)
		}
		wExp += we
	}
	if float64(wBao) > 1.3*float64(wExp) {
		t.Errorf("post-warmup BAO work %d far above expert %d", wBao, wExp)
	}
}

func TestSelectPlanReturnsValidArm(t *testing.T) {
	env, gen := setup(t, 6)
	b := New(env, optimizer.StandardHintSets(), mlmath.NewRNG(7))
	p, arm, err := b.SelectPlan(gen.QueryWithDims(1))
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || arm < 0 || arm >= len(b.Hints) {
		t.Errorf("SelectPlan = (%v, %d)", p, arm)
	}
}
