package lemo

import (
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/qo"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/exec"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/workload"
)

func setup(t *testing.T, seed uint64) (*qo.Env, *workload.StarGen) {
	t.Helper()
	rng := mlmath.NewRNG(seed)
	sch, err := datagen.NewStarSchema(rng, 4000, 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	return qo.NewEnv(sch.Cat), workload.NewStarGen(sch, rng)
}

// fixedTemplateQuery returns queries sharing one template with varying
// constants.
func fixedTemplateQuery(gen *workload.StarGen, sch *datagen.StarSchema, center int64) *plan.Query {
	q := plan.NewQuery(sch.FactID, sch.DimIDs[0])
	q.AddJoin(expr.JoinCond{LeftTable: 0, LeftCol: sch.FKCol[0], RightTable: 1, RightCol: 0})
	q.AddFilter(0, expr.Pred{Col: sch.AttrCols[0], Op: expr.BETWEEN, Lo: center - 50, Hi: center + 50})
	return q
}

func TestRebindProducesCorrectResults(t *testing.T) {
	env, gen := setup(t, 1)
	sch := gen.Schema
	l := New(env, 500, mlmath.NewRNG(2))
	q1 := fixedTemplateQuery(gen, sch, 300)
	if _, reused, err := l.Run(q1); err != nil || reused {
		t.Fatalf("first query: reused=%v err=%v", reused, err)
	}
	// Force a reuse by querying the same template until the bandit picks it,
	// and verify the reused plan's results match a fresh plan's.
	q2 := fixedTemplateQuery(gen, sch, 600)
	e := l.cache[templateKey(q2)]
	if e == nil {
		t.Fatal("template not cached")
	}
	p := rebind(e, q2)
	res, err := env.Exec.Execute(p, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := env.Opt.Plan(q2, optimizer.NoHint())
	if err != nil {
		t.Fatal(err)
	}
	fres, err := env.Exec.Execute(fresh, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(fres.Rows) {
		t.Fatalf("reused plan returns %d rows, fresh %d", len(res.Rows), len(fres.Rows))
	}
}

func TestLemoLearnsToReuseStableTemplates(t *testing.T) {
	env, gen := setup(t, 3)
	sch := gen.Schema
	// Planning penalty comparable to query work: reuse should win for a
	// stable template.
	l := New(env, 4000, mlmath.NewRNG(4))
	rng := mlmath.NewRNG(5)
	for i := 0; i < 80; i++ {
		q := fixedTemplateQuery(gen, sch, int64(200+rng.Intn(600)))
		if _, _, err := l.Run(q); err != nil {
			t.Fatal(err)
		}
	}
	if l.Reuses <= l.Reopts {
		t.Errorf("reuses %d should exceed reopts %d for a stable template with high planning cost", l.Reuses, l.Reopts)
	}
}

func TestLemoTotalCostBeatsAlwaysReoptimize(t *testing.T) {
	env, gen := setup(t, 6)
	sch := gen.Schema
	const penalty = 4000
	queries := make([]*plan.Query, 100)
	rng := mlmath.NewRNG(7)
	for i := range queries {
		queries[i] = fixedTemplateQuery(gen, sch, int64(200+rng.Intn(600)))
	}
	l := New(env, penalty, mlmath.NewRNG(8))
	var lemoCost float64
	for _, q := range queries {
		c, _, err := l.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		lemoCost += c
	}
	var reoptCost float64
	for _, q := range queries {
		p, err := env.Opt.Plan(q, optimizer.NoHint())
		if err != nil {
			t.Fatal(err)
		}
		w, _, err := env.Run(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		reoptCost += float64(w) + penalty
	}
	if lemoCost >= reoptCost {
		t.Errorf("lemo total %v not below always-reoptimize %v", lemoCost, reoptCost)
	}
}

func TestCacheGrowsPerTemplate(t *testing.T) {
	env, gen := setup(t, 9)
	l := New(env, 100, mlmath.NewRNG(10))
	for i := 0; i < 10; i++ {
		if _, _, err := l.Run(gen.QueryWithDims(1 + i%3)); err != nil {
			t.Fatal(err)
		}
	}
	if l.CacheSize() == 0 {
		t.Error("cache empty after misses")
	}
	if l.Misses == 0 {
		t.Error("no misses recorded")
	}
}
