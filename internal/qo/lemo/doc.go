// Package lemo implements a Lemo-style cache-enhanced learned optimizer
// (Mo et al., PACMMOD 2023): under a concurrent query stream, full plan
// optimization is itself a cost, and most arriving queries match a template
// that was optimized moments ago. Lemo caches plans per template and uses a
// learned policy to decide, per query, whether to *reuse* the cached plan
// structure (skipping optimization, risking a stale join order) or to
// *re-optimize* (paying planning cost for a fresh plan).
//
// The decision is a two-armed contextual bandit over query features (the
// drift of the new constants' estimated cardinalities from the cached
// ones); each executed query's total cost — execution work plus planning
// penalty — is the reward signal.
package lemo
