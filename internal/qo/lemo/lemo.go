package lemo

import (
	"math"

	"ml4db/internal/bandit"
	"ml4db/internal/mlmath"
	"ml4db/internal/qo"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
)

// ctxDim is the bandit context width.
const ctxDim = 4

// entry is a cached template plan.
type entry struct {
	// structure is the cached plan with the origin query's filters.
	structure *plan.Node
	// scanRows are the origin query's per-position estimated scan rows,
	// against which new constants are compared.
	scanRows []float64
}

// Lemo is the cache-enhanced optimizer.
type Lemo struct {
	Env *qo.Env
	// PlanningCost is the work-unit penalty of a fresh optimization (the
	// latency a concurrent stream pays for planning).
	PlanningCost float64

	cache  map[string]*entry
	policy *bandit.ThompsonLinear
	rng    *mlmath.RNG

	// Stats counts decisions for reporting.
	Reuses, Reopts, Misses int
}

// New constructs Lemo with the given planning-cost penalty.
func New(env *qo.Env, planningCost float64, rng *mlmath.RNG) *Lemo {
	return &Lemo{
		Env:          env,
		PlanningCost: planningCost,
		cache:        map[string]*entry{},
		policy:       bandit.NewThompsonLinear(2, ctxDim, 0.3, 1),
		rng:          rng,
	}
}

const (
	armReuse = 0
	armReopt = 1
)

// templateKey strips constants: Query.Signature already encodes tables,
// joins, and filter columns/operators but not bound values.
func templateKey(q *plan.Query) string { return q.Signature() }

// scanRowEst returns per-position estimated scan rows for q.
func (l *Lemo) scanRowEst(q *plan.Query) []float64 {
	out := make([]float64, q.NumTables())
	for pos := range q.Tables {
		out[pos] = l.Env.Opt.Est.ScanRows(q, pos)
	}
	return out
}

// context builds the bandit features: constant drift between the cached
// plan's estimated scan cardinalities and the new query's.
func (l *Lemo) context(e *entry, rows []float64) []float64 {
	maxDrift, sumDrift := 0.0, 0.0
	for i := range rows {
		d := math.Abs(math.Log((rows[i] + 1) / (e.scanRows[i] + 1)))
		sumDrift += d
		if d > maxDrift {
			maxDrift = d
		}
	}
	return []float64{1, maxDrift, sumDrift / float64(len(rows)), float64(len(rows)) / 8}
}

// rebind clones the cached structure and substitutes the new query's
// filters into its scan leaves — plan reuse without re-optimization.
func rebind(e *entry, q *plan.Query) *plan.Node {
	p := e.structure.Clone()
	p.Walk(func(n *plan.Node) {
		if n.IsLeaf() {
			n.Filters = q.Filters[n.TablePos]
		}
		n.EstRows, n.EstCost, n.ActualRows = 0, 0, 0
	})
	return p
}

// Run processes one query and returns its total cost (execution work plus
// planning penalty when a fresh optimization ran) and whether a cached plan
// was reused.
func (l *Lemo) Run(q *plan.Query) (totalCost float64, reused bool, err error) {
	key := templateKey(q)
	rows := l.scanRowEst(q)
	e, ok := l.cache[key]
	if !ok {
		l.Misses++
		cost, err := l.optimizeAndRun(q, key, rows)
		return cost, false, err
	}
	ctx := l.context(e, rows)
	arm, err := l.policy.Select(ctx, l.rng)
	if err != nil {
		return 0, false, err
	}
	if arm == armReuse {
		l.Reuses++
		p := rebind(e, q)
		work, _, err := l.Env.Run(p, 0)
		if err != nil {
			return 0, false, err
		}
		cost := float64(work)
		l.policy.Update(armReuse, ctx, -math.Log(cost+1))
		return cost, true, nil
	}
	l.Reopts++
	cost, err := l.optimizeAndRun(q, key, rows)
	if err != nil {
		return 0, false, err
	}
	l.policy.Update(armReopt, ctx, -math.Log(cost+1))
	return cost, false, nil
}

func (l *Lemo) optimizeAndRun(q *plan.Query, key string, rows []float64) (float64, error) {
	p, err := l.Env.Opt.Plan(q, optimizer.NoHint())
	if err != nil {
		return 0, err
	}
	work, _, err := l.Env.Run(p, 0)
	if err != nil {
		return 0, err
	}
	l.cache[key] = &entry{structure: p, scanRows: rows}
	return float64(work) + l.PlanningCost, nil
}

// CacheSize reports the number of cached templates.
func (l *Lemo) CacheSize() int { return len(l.cache) }
