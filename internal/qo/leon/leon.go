package leon

import (
	"math"

	"ml4db/internal/mlmath"
	"ml4db/internal/nn"
	"ml4db/internal/planrep"
	"ml4db/internal/qo"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/tree"
)

// Leon is the mixed-estimation planner.
type Leon struct {
	Env *qo.Env
	Enc *planrep.PlanEncoder
	// Ranker scores plans; trained pairwise so only its ordering matters.
	Ranker *tree.Regressor
	// Alpha mixes expert and learned scores: score = α·normExpert +
	// (1−α)·normLearned.
	Alpha float64
	// Calibrated tracks pairwise validation accuracy; below FallbackAcc the
	// planner ignores the model (expert fallback).
	Calibrated  float64
	FallbackAcc float64
	rng         *mlmath.RNG
}

// New constructs LEON over the environment.
func New(env *qo.Env, hidden int, rng *mlmath.RNG) *Leon {
	if hidden <= 0 {
		hidden = 16
	}
	pe := planrep.NewPlanEncoder(env.Cat, planrep.FullFeatures())
	enc := tree.NewTreeCNNEncoder(pe.FeatDim(), hidden, rng)
	return &Leon{
		Env:         env,
		Enc:         pe,
		Ranker:      tree.NewRegressor(enc, []int{32}, rng),
		Alpha:       0.5,
		FallbackAcc: 0.55,
		rng:         rng,
	}
}

// candidates returns the deduplicated hint-set plans for q with measured
// work (optionally) — LEON's exploration set.
func (l *Leon) candidates(q *plan.Query) ([]*plan.Node, error) {
	var out []*plan.Node
	seen := map[string]bool{}
	for _, h := range optimizer.StandardHintSets() {
		p, err := l.Env.Opt.Plan(q, h)
		if err != nil {
			return nil, err
		}
		if key := p.String(); !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	return out, nil
}

// Train executes the candidate plans of each training query and fits the
// ranker pairwise: for every pair, the plan with lower measured work must
// score lower. A held-out fraction calibrates the fallback.
func (l *Leon) Train(queries []*plan.Query, pairEpochs int) error {
	type labeled struct {
		tree *tree.EncTree
		work int64
	}
	var groups [][]labeled
	for _, q := range queries {
		cands, err := l.candidates(q)
		if err != nil {
			return err
		}
		var g []labeled
		for _, p := range cands {
			work, _, err := l.Env.Run(p, 0)
			if err != nil {
				return err
			}
			g = append(g, labeled{l.Enc.Encode(p), work})
		}
		groups = append(groups, g)
	}
	cut := len(groups) * 4 / 5
	if cut < 1 {
		cut = len(groups)
	}
	opt := nn.NewAdam(2e-3)
	for e := 0; e < pairEpochs; e++ {
		for _, g := range groups[:cut] {
			for i := 0; i < len(g); i++ {
				for j := i + 1; j < len(g); j++ {
					if g[i].work == g[j].work {
						continue
					}
					better, worse := g[i], g[j]
					if worse.work < better.work {
						better, worse = worse, better
					}
					l.Ranker.TrainPair(better.tree, worse.tree)
					opt.Step(l.Ranker)
				}
			}
		}
	}
	// Calibrate on the held-out groups.
	correct, total := 0, 0
	for _, g := range groups[cut:] {
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				if g[i].work == g[j].work {
					continue
				}
				total++
				si := l.Ranker.Predict(g[i].tree)
				sj := l.Ranker.Predict(g[j].tree)
				if (si < sj) == (g[i].work < g[j].work) {
					correct++
				}
			}
		}
	}
	if total > 0 {
		l.Calibrated = float64(correct) / float64(total)
	} else {
		l.Calibrated = 1
	}
	l.Env.Metrics.Gauge("qo.leon.calibrated").Set(l.Calibrated)
	return nil
}

// UsesFallback reports whether LEON currently distrusts its model.
func (l *Leon) UsesFallback() bool { return l.Calibrated < l.FallbackAcc }

// Plan picks the candidate with the best mixed score — or the expert's
// default plan when the model is in fallback.
func (l *Leon) Plan(q *plan.Query) (*plan.Node, error) {
	if l.UsesFallback() {
		l.Env.Metrics.Counter("qo.leon.fallbacks").Inc()
		return l.Env.Opt.Plan(q, optimizer.NoHint())
	}
	l.Env.Metrics.Counter("qo.leon.model_plans").Inc()
	cands, err := l.candidates(q)
	if err != nil {
		return nil, err
	}
	scores := l.scoreCandidates(cands, ScoreMixed)
	best, bestScore := 0, math.Inf(1)
	for i := range cands {
		if scores[i] < bestScore {
			best, bestScore = i, scores[i]
		}
	}
	return cands[best], nil
}

// ScoreMode selects which estimator ranks plans in RankAccuracy.
type ScoreMode int

// Score modes for ranking evaluation (the E11 comparison axes).
const (
	// ScoreExpert ranks by the formula cost model alone.
	ScoreExpert ScoreMode = iota
	// ScoreLearned ranks by the pairwise-trained model alone.
	ScoreLearned
	// ScoreMixed ranks by LEON's normalized expert+learned mixture.
	ScoreMixed
)

// scoreCandidates returns per-candidate scores under the mode, normalized
// within the candidate set where mixing requires it.
func (l *Leon) scoreCandidates(cands []*plan.Node, mode ScoreMode) []float64 {
	expert := make([]float64, len(cands))
	learned := make([]float64, len(cands))
	for i, p := range cands {
		expert[i] = math.Log(p.EstCost + 1)
		learned[i] = l.Ranker.Predict(l.Enc.Encode(p))
	}
	switch mode {
	case ScoreExpert:
		return expert
	case ScoreLearned:
		return learned
	default:
		norm01(expert)
		norm01(learned)
		out := make([]float64, len(cands))
		for i := range out {
			out[i] = l.Alpha*expert[i] + (1-l.Alpha)*learned[i]
		}
		return out
	}
}

// RankAccuracy evaluates pairwise ordering accuracy of a score mode against
// measured work on each query's candidate set — the E11 metric.
func (l *Leon) RankAccuracy(queries []*plan.Query, mode ScoreMode) (float64, error) {
	correct, total := 0, 0
	for _, q := range queries {
		cands, err := l.candidates(q)
		if err != nil {
			return 0, err
		}
		works := make([]int64, len(cands))
		for i, p := range cands {
			w, _, err := l.Env.Run(p, 0)
			if err != nil {
				return 0, err
			}
			works[i] = w
		}
		scores := l.scoreCandidates(cands, mode)
		for i := 0; i < len(cands); i++ {
			for j := i + 1; j < len(cands); j++ {
				if works[i] == works[j] {
					continue
				}
				total++
				if (scores[i] < scores[j]) == (works[i] < works[j]) {
					correct++
				}
			}
		}
	}
	if total == 0 {
		return 1, nil
	}
	return float64(correct) / float64(total), nil
}

func norm01(v []float64) {
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi-lo < 1e-12 {
		for i := range v {
			v[i] = 0
		}
		return
	}
	for i := range v {
		v[i] = (v[i] - lo) / (hi - lo)
	}
}
