// Package leon implements a LEON-style ML-aided optimizer (Chen et al.,
// VLDB 2023): the expert optimizer stays in charge, and a learned model
// trained with a *pairwise ranking* objective adjusts its cost estimates for
// the local data and workload. Plan scores mix the expert's formula cost
// with the learned ranking score, and when the learned model is uncertain
// the system falls back to the expert entirely — the safety property that
// distinguishes ML-aided from replacement designs.
package leon
