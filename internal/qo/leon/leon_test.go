package leon

import (
	"math"
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/qo"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/workload"
)

func setup(t *testing.T, seed uint64) (*qo.Env, *workload.StarGen) {
	t.Helper()
	rng := mlmath.NewRNG(seed)
	sch, err := datagen.NewStarSchema(rng, 3000, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	return qo.NewEnv(sch.Cat), workload.NewStarGen(sch, rng)
}

func TestLeonTrainAndPlan(t *testing.T) {
	env, gen := setup(t, 1)
	l := New(env, 8, mlmath.NewRNG(2))
	var train []*plan.Query
	for i := 0; i < 10; i++ {
		train = append(train, gen.QueryWithDims(2))
	}
	if err := l.Train(train, 3); err != nil {
		t.Fatal(err)
	}
	if l.Calibrated <= 0 || l.Calibrated > 1 {
		t.Errorf("calibration = %v", l.Calibrated)
	}
	p, err := l.Plan(gen.QueryWithDims(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := env.Run(p, 0); err != nil {
		t.Fatalf("LEON plan failed to execute: %v", err)
	}
}

func TestLeonLearnedRankingBeatsRandom(t *testing.T) {
	env, gen := setup(t, 3)
	l := New(env, 8, mlmath.NewRNG(4))
	var train, test []*plan.Query
	for i := 0; i < 12; i++ {
		train = append(train, gen.QueryWithDims(2))
	}
	for i := 0; i < 6; i++ {
		test = append(test, gen.QueryWithDims(2))
	}
	if err := l.Train(train, 4); err != nil {
		t.Fatal(err)
	}
	acc, err := l.RankAccuracy(test, ScoreMixed)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.55 {
		t.Errorf("mixed ranking accuracy %v barely above chance", acc)
	}
}

func TestLeonFallbackActivates(t *testing.T) {
	env, gen := setup(t, 5)
	l := New(env, 8, mlmath.NewRNG(6))
	l.Calibrated = 0.4 // force distrust
	if !l.UsesFallback() {
		t.Fatal("fallback should be active")
	}
	q := gen.QueryWithDims(2)
	p, err := l.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := env.Opt.Plan(q, optimizer.NoHint())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.EstCost-pe.EstCost) > 1e-9 {
		t.Error("fallback plan differs from expert plan")
	}
}
