// Package autosteer implements AutoSteer-style hint-set discovery (Anneser
// et al., VLDB 2023): where BAO requires a hand-crafted collection of hint
// sets per database system, AutoSteer explores the space of atomic knob
// combinations greedily and keeps only those that actually change the
// query's plan and look promising under the cost model — generating the arm
// collection automatically, per query.
package autosteer
