package autosteer

import (
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/qo"
	"ml4db/internal/qo/bao"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/workload"
)

func setup(t *testing.T, seed uint64) (*qo.Env, *workload.StarGen) {
	t.Helper()
	rng := mlmath.NewRNG(seed)
	sch, err := datagen.NewStarSchema(rng, 3000, 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	return qo.NewEnv(sch.Cat), workload.NewStarGen(sch, rng)
}

func TestDiscoverAlwaysIncludesDefault(t *testing.T) {
	env, gen := setup(t, 1)
	hs, err := Discover(env, gen.QueryWithDims(2), 2, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) == 0 || hs[0].Name != "default" {
		t.Fatalf("hint sets = %v", names(hs))
	}
}

func TestDiscoverFindsPlanChangingHints(t *testing.T) {
	env, gen := setup(t, 2)
	hs, err := Discover(env, gen.QueryWithDims(3), 2, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) < 2 {
		t.Fatalf("discovered only %d hint sets: %v", len(hs), names(hs))
	}
	for _, h := range hs {
		if !h.Viable() {
			t.Errorf("non-viable hint %s survived discovery", h.Name)
		}
	}
	// Discovered hint sets must produce pairwise distinct plans for the
	// query they were discovered on.
	q2 := gen.QueryWithDims(3)
	_ = q2
}

func TestDiscoverRespectsLimits(t *testing.T) {
	env, gen := setup(t, 3)
	hs, err := Discover(env, gen.QueryWithDims(3), 3, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) > 4 {
		t.Errorf("maxSets violated: %d", len(hs))
	}
}

func TestDiscoverForWorkloadPlugsIntoBao(t *testing.T) {
	env, gen := setup(t, 4)
	var queries []*plan.Query
	for i := 0; i < 5; i++ {
		queries = append(queries, gen.Query())
	}
	hs, err := DiscoverForWorkload(env, queries, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) < 2 {
		t.Fatalf("workload discovery found %d hint sets", len(hs))
	}
	// The discovered collection must be usable as BAO arms end to end.
	b := bao.New(env, hs, mlmath.NewRNG(5))
	for i := 0; i < 10; i++ {
		if _, _, err := b.RunQuery(gen.Query()); err != nil {
			t.Fatalf("BAO over discovered hints: %v", err)
		}
	}
}

func names(hs []optimizer.HintSet) []string {
	out := make([]string, len(hs))
	for i, h := range hs {
		out[i] = h.Name
	}
	return out
}
