package autosteer

import (
	"ml4db/internal/qo"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
)

// Discover greedily builds hint sets for q: starting from the default, it
// tries extending each frontier hint set with every atomic knob; extensions
// that produce a structurally different plan with estimated cost no worse
// than failFactor× the default's are kept, up to maxDepth knobs and maxSets
// total. The default (empty) hint set is always included, so steering can
// never remove the expert's own plan from the candidate set.
func Discover(env *qo.Env, q *plan.Query, maxDepth, maxSets int, failFactor float64) ([]optimizer.HintSet, error) {
	if failFactor <= 0 {
		failFactor = 10
	}
	def := optimizer.NoHint()
	defPlan, err := env.Opt.Plan(q, def)
	if err != nil {
		return nil, err
	}
	result := []optimizer.HintSet{def}
	seenPlans := map[string]bool{defPlan.String(): true}
	frontier := []optimizer.HintSet{def}
	atomic := optimizer.AtomicHints()
	for depth := 0; depth < maxDepth && len(result) < maxSets; depth++ {
		var next []optimizer.HintSet
		for _, base := range frontier {
			for _, knob := range atomic {
				combined := optimizer.Combine(base, knob)
				if !combined.Viable() {
					continue
				}
				p, err := env.Opt.Plan(q, combined)
				if err != nil {
					continue // hint admits no plan for this query shape
				}
				key := p.String()
				if seenPlans[key] {
					continue // knob did not change the plan
				}
				if p.EstCost > failFactor*defPlan.EstCost {
					continue // cost model flags it as unpromising
				}
				seenPlans[key] = true
				result = append(result, combined)
				next = append(next, combined)
				if len(result) >= maxSets {
					return result, nil
				}
			}
		}
		frontier = next
	}
	return result, nil
}

// DiscoverForWorkload merges per-query discoveries into one deduplicated
// collection usable as BAO arms.
func DiscoverForWorkload(env *qo.Env, queries []*plan.Query, maxDepth, maxSets int) ([]optimizer.HintSet, error) {
	seen := map[string]bool{}
	var out []optimizer.HintSet
	for _, q := range queries {
		hs, err := Discover(env, q, maxDepth, maxSets, 10)
		if err != nil {
			return nil, err
		}
		for _, h := range hs {
			if !seen[h.Name] {
				seen[h.Name] = true
				out = append(out, h)
				if len(out) >= maxSets {
					return out, nil
				}
			}
		}
	}
	return out, nil
}
