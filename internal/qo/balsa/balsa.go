package balsa

import (
	"ml4db/internal/mlmath"
	"ml4db/internal/planrep"
	"ml4db/internal/qo"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/tree"
)

// Balsa is the sim-to-real learned optimizer.
type Balsa struct {
	Search *qo.ValueSearch
	// Timeout bounds real executions to Timeout× the best work seen so far
	// for the query (per-query safety budget).
	Timeout float64
	// bestWork tracks the best observed work per query signature.
	bestWork map[string]int64
	// TimedOut counts fine-tuning executions stopped by the safety budget.
	TimedOut int
	rng      *mlmath.RNG
}

// New constructs a Balsa instance.
func New(env *qo.Env, hidden int, rng *mlmath.RNG) *Balsa {
	if hidden <= 0 {
		hidden = 16
	}
	pe := planrep.NewPlanEncoder(env.Cat, planrep.FullFeatures())
	enc := tree.NewTreeCNNEncoder(pe.FeatDim(), hidden, rng)
	reg := tree.NewRegressor(enc, []int{32}, rng)
	return &Balsa{
		Search:   &qo.ValueSearch{Env: env, Enc: pe, Reg: reg, Eps: 0.3, RNG: rng},
		Timeout:  4,
		bestWork: map[string]int64{},
		rng:      rng,
	}
}

// Simulate is the simulation phase: build plans with heavy exploration and
// label them with the cost model's estimate — no execution at all.
func (b *Balsa) Simulate(queries []*plan.Query, rounds, epochs int) error {
	var exps []qo.Experience
	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			p, err := b.Search.BuildPlan(q, true)
			if err != nil {
				return err
			}
			exps = append(exps, qo.Experience{Query: q, Plan: p, LogWork: qo.LogWork(int64(p.EstCost))})
		}
	}
	b.Search.TrainValue(exps, epochs, 3e-3)
	return nil
}

// FineTune is the real-execution phase with safe timeouts: each query's work
// budget is Timeout× its best observed work (or unlimited on first sight).
// Timed-out plans are labeled with the budget (a pessimistic-but-bounded
// signal), exactly Balsa's safe execution strategy.
func (b *Balsa) FineTune(queries []*plan.Query, episodes, epochs int) error {
	var exps []qo.Experience
	for e := 0; e < episodes; e++ {
		for _, q := range queries {
			p, err := b.Search.BuildPlan(q, true)
			if err != nil {
				return err
			}
			sig := q.Signature()
			var budget int64
			if best, ok := b.bestWork[sig]; ok {
				budget = int64(b.Timeout * float64(best))
			}
			work, timedOut, err := b.Search.Env.Run(p, budget)
			if err != nil {
				return err
			}
			if timedOut {
				b.TimedOut++
			} else if best, ok := b.bestWork[sig]; !ok || work < best {
				b.bestWork[sig] = work
			}
			if m := b.Search.Env.Metrics; m != nil {
				if timedOut {
					m.Counter("qo.balsa.timeouts").Inc()
				}
				m.Histogram("qo.balsa.work", qo.WorkBuckets).Observe(float64(work))
			}
			exps = append(exps, qo.Experience{Query: q, Plan: p, LogWork: qo.LogWork(work)})
		}
		b.Search.Env.Metrics.Counter("qo.balsa.episodes").Inc()
	}
	b.Search.TrainValue(exps, epochs, 1e-3)
	return nil
}

// Plan produces Balsa's plan for q.
func (b *Balsa) Plan(q *plan.Query) (*plan.Node, error) {
	return b.Search.BuildPlan(q, false)
}
