// Package balsa implements a Balsa-style learned optimizer (Yang et al.,
// SIGMOD 2022) that learns *without expert demonstrations*: a simulation
// phase trains the value network purely on the classical cost model's
// estimates of self-generated plans (avoiding disastrous plans before ever
// touching the database), and a real-execution phase fine-tunes with a
// safety timeout that bounds the damage any exploratory plan can do — the
// model-efficiency technique §3.3 highlights.
package balsa
