package balsa

import (
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/qo"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/workload"
)

func setup(t *testing.T, seed uint64) (*qo.Env, *workload.StarGen) {
	t.Helper()
	rng := mlmath.NewRNG(seed)
	sch, err := datagen.NewStarSchema(rng, 3000, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	return qo.NewEnv(sch.Cat), workload.NewStarGen(sch, rng)
}

func TestBalsaSimulationPhaseUsesNoExecution(t *testing.T) {
	env, gen := setup(t, 1)
	b := New(env, 8, mlmath.NewRNG(2))
	var train []*plan.Query
	for i := 0; i < 8; i++ {
		train = append(train, gen.QueryWithDims(2))
	}
	// Simulation must not touch bestWork (no executions happened).
	if err := b.Simulate(train, 2, 10); err != nil {
		t.Fatal(err)
	}
	if len(b.bestWork) != 0 {
		t.Error("simulation phase recorded executions")
	}
	// After simulation alone, plans should avoid the worst plans: compare
	// against the nl-only disaster.
	var wSim, wWorst int64
	for _, q := range train {
		p, err := b.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		w, _, err := env.Run(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		wSim += w
		pw, err := env.Opt.Plan(q, optimizer.HintSet{Name: "nl", JoinOps: []plan.OpType{plan.OpNLJoin}})
		if err != nil {
			t.Fatal(err)
		}
		ww, _, err := env.Run(pw, 0)
		if err != nil {
			t.Fatal(err)
		}
		wWorst += ww
	}
	if wSim >= wWorst {
		t.Errorf("simulation-trained Balsa (%d) no better than disaster plans (%d)", wSim, wWorst)
	}
}

func TestBalsaFineTuneTimeoutBoundsDisasters(t *testing.T) {
	env, gen := setup(t, 3)
	b := New(env, 8, mlmath.NewRNG(4))
	b.Timeout = 2
	var train []*plan.Query
	for i := 0; i < 6; i++ {
		train = append(train, gen.QueryWithDims(2))
	}
	if err := b.Simulate(train, 1, 8); err != nil {
		t.Fatal(err)
	}
	if err := b.FineTune(train, 3, 8); err != nil {
		t.Fatal(err)
	}
	// With ε=0.3 exploration over three episodes some disasters are
	// attempted; the timeout must have capped at least one OR exploration
	// got lucky — either way bestWork must now be populated.
	if len(b.bestWork) == 0 {
		t.Error("fine-tuning recorded no completed executions")
	}
	p, err := b.Plan(train[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := env.Run(p, 0); err != nil {
		t.Fatal(err)
	}
}
