// Package neo implements a NEO-style end-to-end learned query optimizer
// (Marcus et al., VLDB 2019): a value network trained to predict final query
// latency from (partial) plans, bootstrapped from an existing expert
// optimizer's plans and refined from its own execution experience, with a
// greedy value-guided plan search producing complete execution plans.
//
// NEO follows the "replacement" paradigm: at inference time the expert
// optimizer is gone, and plan quality rests entirely on the network — which
// is exactly why experiment E8 measures its degradation on unseen query
// templates and its cold-start behavior.
package neo
