package neo

import (
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/qo"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/workload"
)

func setup(t *testing.T, seed uint64) (*qo.Env, *workload.StarGen) {
	t.Helper()
	rng := mlmath.NewRNG(seed)
	sch, err := datagen.NewStarSchema(rng, 3000, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	return qo.NewEnv(sch.Cat), workload.NewStarGen(sch, rng)
}

func run(t *testing.T, env *qo.Env, p *plan.Node) int64 {
	t.Helper()
	w, _, err := env.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNeoBootstrapAndPlan(t *testing.T) {
	env, gen := setup(t, 1)
	rng := mlmath.NewRNG(2)
	n := New(env, Config{Hidden: 8}, rng)
	var train []*plan.Query
	for i := 0; i < 12; i++ {
		train = append(train, gen.QueryWithDims(2))
	}
	if err := n.Bootstrap(train, 15); err != nil {
		t.Fatal(err)
	}
	// Bootstrap gathers the expert's deduplicated hint-set plans per query:
	// at least one and at most len(StandardHintSets()) each.
	if len(n.Experience) < 12 {
		t.Errorf("experience = %d, want >= 12", len(n.Experience))
	}
	if err := n.Episode(train, 10); err != nil {
		t.Fatal(err)
	}
	// Plans must execute and be not-disastrous on training queries.
	var wNeo, wExpert int64
	for _, q := range train {
		p, err := n.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		wNeo += run(t, env, p)
		pe, err := env.Opt.Plan(q, optimizer.NoHint())
		if err != nil {
			t.Fatal(err)
		}
		wExpert += run(t, env, pe)
	}
	if float64(wNeo) > 6*float64(wExpert) {
		t.Errorf("NEO work %d vs expert %d on training queries", wNeo, wExpert)
	}
}

// TestNeoColdStartIsBad pins the robustness limitation: an untrained NEO
// (random value network) produces plans far worse than the expert.
func TestNeoColdStartIsBad(t *testing.T) {
	env, gen := setup(t, 3)
	rng := mlmath.NewRNG(4)
	n := New(env, Config{Hidden: 8}, rng)
	var wCold, wExpert int64
	for i := 0; i < 8; i++ {
		q := gen.QueryWithDims(2)
		p, err := n.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		wCold += run(t, env, p)
		pe, err := env.Opt.Plan(q, optimizer.NoHint())
		if err != nil {
			t.Fatal(err)
		}
		wExpert += run(t, env, pe)
	}
	if wCold <= wExpert {
		t.Skipf("cold NEO happened to find good plans (wCold=%d, wExpert=%d); the bench measures the distribution", wCold, wExpert)
	}
}
