package neo

import (
	"ml4db/internal/mlmath"
	"ml4db/internal/planrep"
	"ml4db/internal/qo"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/tree"
)

// Neo is the learned optimizer.
type Neo struct {
	Search *qo.ValueSearch
	// Experience is the replay buffer of executed plans.
	Experience []qo.Experience
	rng        *mlmath.RNG
}

// Config controls model shape and training.
type Config struct {
	Hidden int     // tree-model hidden width (default 16)
	Eps    float64 // exploration rate during RL episodes (default 0.2)
}

// New constructs a NEO instance over the environment. NEO's published model
// uses tree convolution; the encoder here matches that choice.
func New(env *qo.Env, cfg Config, rng *mlmath.RNG) *Neo {
	if cfg.Hidden <= 0 {
		cfg.Hidden = 16
	}
	if cfg.Eps <= 0 {
		cfg.Eps = 0.2
	}
	pe := planrep.NewPlanEncoder(env.Cat, planrep.FullFeatures())
	enc := tree.NewTreeCNNEncoder(pe.FeatDim(), cfg.Hidden, rng)
	reg := tree.NewRegressor(enc, []int{32}, rng)
	return &Neo{
		Search: &qo.ValueSearch{Env: env, Enc: pe, Reg: reg, Eps: cfg.Eps, RNG: rng},
		rng:    rng,
	}
}

// Bootstrap seeds the experience buffer with the expert optimizer's plans
// for the training queries — the default plan plus the structurally distinct
// plans under each standard hint set, all executed for real latency labels —
// and trains the value network. This is NEO's "bootstrap from PostgreSQL"
// phase: the hinted variants give the value network contrast between good
// and bad operator choices before any self-driven exploration.
func (n *Neo) Bootstrap(queries []*plan.Query, epochs int) error {
	for _, q := range queries {
		seen := map[string]bool{}
		for _, h := range optimizer.StandardHintSets() {
			p, err := n.Search.Env.Opt.Plan(q, h)
			if err != nil {
				return err
			}
			if key := p.String(); seen[key] {
				continue
			} else {
				seen[key] = true
			}
			work, _, err := n.Search.Env.Run(p, 0)
			if err != nil {
				return err
			}
			n.Search.Env.Metrics.Histogram("qo.neo.work", qo.WorkBuckets).Observe(float64(work))
			n.Experience = append(n.Experience, qo.Experience{Query: q, Plan: p, LogWork: qo.LogWork(work)})
		}
	}
	n.Search.TrainValue(n.Experience, epochs, 3e-3)
	return nil
}

// Episode runs one RL iteration over the queries: plan with exploration,
// execute, append experience, retrain.
func (n *Neo) Episode(queries []*plan.Query, epochs int) error {
	for _, q := range queries {
		p, err := n.Search.BuildPlan(q, true)
		if err != nil {
			return err
		}
		work, _, err := n.Search.Env.Run(p, 0)
		if err != nil {
			return err
		}
		n.Search.Env.Metrics.Histogram("qo.neo.work", qo.WorkBuckets).Observe(float64(work))
		n.Experience = append(n.Experience, qo.Experience{Query: q, Plan: p, LogWork: qo.LogWork(work)})
	}
	n.Search.Env.Metrics.Counter("qo.neo.episodes").Inc()
	n.Search.TrainValue(n.Experience, epochs, 1e-3)
	return nil
}

// Plan produces the learned optimizer's plan for q (no exploration).
func (n *Neo) Plan(q *plan.Query) (*plan.Node, error) {
	return n.Search.BuildPlan(q, false)
}
