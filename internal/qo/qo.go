package qo

import (
	"errors"
	"fmt"
	"math"

	"ml4db/internal/mlmath"
	"ml4db/internal/nn"
	"ml4db/internal/obs"
	"ml4db/internal/planrep"
	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/exec"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/tree"
)

// Env bundles the database substrate a learned optimizer interacts with.
type Env struct {
	Cat  *catalog.Catalog
	Opt  *optimizer.Optimizer
	Exec *exec.Executor
	// Trace and Metrics instrument the env's executions and the learned
	// agents built on it. Nil (the default) keeps everything off and free;
	// attach both with Instrument.
	Trace   *obs.Tracer
	Metrics *obs.Registry
}

// NewEnv builds an environment over the catalog with the expert optimizer
// and executor.
func NewEnv(cat *catalog.Catalog) *Env {
	return &Env{Cat: cat, Opt: optimizer.New(cat), Exec: exec.New(cat)}
}

// Instrument attaches a tracer, metrics registry, and clock to the env and
// its executor; the agents (bao, balsa, leon, neo) pick their counters and
// histograms up from here. Any argument may be nil.
func (e *Env) Instrument(tr *obs.Tracer, reg *obs.Registry, clock mlmath.Clock) {
	e.Trace, e.Metrics = tr, reg
	e.Exec.Trace, e.Exec.Metrics, e.Exec.Clock = tr, reg, clock
}

// WorkBuckets are the shared histogram bounds for work-unit metrics.
var WorkBuckets = obs.ExpBuckets(16, 4, 12)

// Run executes a plan and returns its work (latency signal). maxWork > 0
// aborts over-budget plans (Balsa's timeout); the returned work is then the
// budget and timedOut is true.
func (e *Env) Run(p *plan.Node, maxWork int64) (work int64, timedOut bool, err error) {
	res, err := e.Exec.Execute(p, exec.Options{MaxWork: maxWork})
	if errors.Is(err, exec.ErrWorkBudgetExceeded) {
		e.Metrics.Counter("qo.env.timeouts").Inc()
		return res.Work, true, nil
	}
	if err != nil {
		return 0, false, err
	}
	return res.Work, false, nil
}

// LogWork converts a work measurement to the log-scale regression target.
func LogWork(work int64) float64 { return math.Log(float64(work) + 1) }

// ValueSearch builds complete plans greedily with a learned value function:
// starting from scans, it repeatedly applies the valid (subtree, subtree,
// operator) join whose resulting partial plan the value network scores
// cheapest — NEO's plan search with a greedy frontier.
type ValueSearch struct {
	Env *Env
	Enc *planrep.PlanEncoder
	Reg *tree.Regressor
	// Eps is the exploration rate during RL data collection.
	Eps float64
	RNG *mlmath.RNG
	// Pool parallelizes candidate scoring during plan search and training.
	// Scoring is read-only per candidate, so search decisions are
	// bit-identical for any worker count; nil scores serially.
	Pool *mlmath.Pool
}

// forestEntry tracks a subtree and its output column layout.
type forestEntry struct {
	node   *plan.Node
	layout []int // table positions in leaf order
}

func (v *ValueSearch) colOffset(q *plan.Query, layout []int, tablePos, col int) int {
	off := 0
	for _, p := range layout {
		if p == tablePos {
			return off + col
		}
		off += v.Env.Cat.Table(q.Tables[p]).NumCols()
	}
	//ml4db:allow nakedpanic "unreachable: layouts are permutations of the query tables by construction"
	panic(fmt.Sprintf("qo: table position %d not in layout %v", tablePos, layout))
}

// candidate is a possible join step.
type candidate struct {
	left, right int // forest indexes
	op          plan.OpType
	node        *plan.Node
	score       float64
}

// BuildPlan constructs a complete plan for q. With explore true, each step
// is ε-greedy over the value scores.
func (v *ValueSearch) BuildPlan(q *plan.Query, explore bool) (*plan.Node, error) {
	n := q.NumTables()
	forest := make([]forestEntry, 0, n)
	for pos := 0; pos < n; pos++ {
		scan := plan.NewScan(pos, q.Tables[pos], q.Filters[pos])
		forest = append(forest, forestEntry{node: scan, layout: []int{pos}})
	}
	for len(forest) > 1 {
		cands := v.candidates(q, forest)
		if len(cands) == 0 {
			return nil, fmt.Errorf("qo: disconnected join graph")
		}
		pick := 0
		if explore && v.RNG.Float64() < v.Eps {
			pick = v.RNG.Intn(len(cands))
		} else {
			best := math.Inf(1)
			for i, c := range cands {
				if c.score < best {
					best, pick = c.score, i
				}
			}
		}
		c := cands[pick]
		merged := forestEntry{
			node:   c.node,
			layout: append(append([]int{}, forest[c.left].layout...), forest[c.right].layout...),
		}
		var next []forestEntry
		for i, f := range forest {
			if i != c.left && i != c.right {
				next = append(next, f)
			}
		}
		forest = append(next, merged)
	}
	root := forest[0].node
	v.Env.Opt.Annotate(q, root)
	return root, nil
}

// candidates enumerates valid join steps and scores them with the value
// network in one batched inference pass: enumeration and annotation stay
// serial (Annotate mutates plan nodes), then every candidate subtree is
// encoded and scored in parallel on v.Pool.
func (v *ValueSearch) candidates(q *plan.Query, forest []forestEntry) []candidate {
	var out []candidate
	for i := range forest {
		for j := range forest {
			if i == j {
				continue
			}
			cond, ok := condBetween(q, forest[i].layout, forest[j].layout)
			if !ok {
				continue
			}
			lc := v.colOffset(q, forest[i].layout, cond.LeftTable, cond.LeftCol)
			rc := v.colOffset(q, forest[j].layout, cond.RightTable, cond.RightCol)
			for _, op := range plan.AllJoinOps {
				node := plan.NewJoin(op, forest[i].node, forest[j].node, lc, rc)
				v.Env.Opt.Annotate(q, node)
				out = append(out, candidate{left: i, right: j, op: op, node: node})
			}
		}
	}
	trees := make([]*tree.EncTree, len(out))
	v.Pool.ParallelFor(len(out), func(lo, hi int) {
		for c := lo; c < hi; c++ {
			trees[c] = v.Enc.Encode(out[c].node)
		}
	})
	for c, score := range v.Reg.PredictBatch(trees, v.Pool) {
		out[c].score = score
	}
	return out
}

// condBetween finds a join condition connecting the two layouts, oriented
// left→right.
func condBetween(q *plan.Query, left, right []int) (expr.JoinCond, bool) {
	inLeft := map[int]bool{}
	for _, p := range left {
		inLeft[p] = true
	}
	inRight := map[int]bool{}
	for _, p := range right {
		inRight[p] = true
	}
	for _, c := range q.Joins {
		if inLeft[c.LeftTable] && inRight[c.RightTable] {
			return c, true
		}
		if inLeft[c.RightTable] && inRight[c.LeftTable] {
			return expr.JoinCond{LeftTable: c.RightTable, LeftCol: c.RightCol, RightTable: c.LeftTable, RightCol: c.LeftCol}, true
		}
	}
	return expr.JoinCond{}, false
}

// Experience is one labeled execution.
type Experience struct {
	Query *plan.Query
	Plan  *plan.Node
	// LogWork is the log-scale latency label.
	LogWork float64
}

// TrainValue fits the value network on the experiences. Following NEO, each
// *partial* plan (every join subtree of an executed plan) is a training
// sample labeled with the episode's final latency: the network learns "what
// total cost does a plan containing this subtree lead to", which is exactly
// the quantity the greedy search compares candidates on.
func (v *ValueSearch) TrainValue(exps []Experience, epochs int, lr float64) {
	var trees []*tree.EncTree
	var ys []float64
	for _, e := range exps {
		v.Env.Opt.Annotate(e.Query, e.Plan)
		e.Plan.Walk(func(n *plan.Node) {
			if n.IsLeaf() {
				return
			}
			trees = append(trees, v.Enc.Encode(n))
			ys = append(ys, e.LogWork)
		})
	}
	v.Reg.Fit(trees, ys, tree.FitOptions{
		Epochs: epochs, BatchSize: 16,
		Optimizer: nn.NewAdam(lr), RNG: v.RNG,
	})
}

// PredictPlan scores a complete plan with the value network.
func (v *ValueSearch) PredictPlan(q *plan.Query, p *plan.Node) float64 {
	v.Env.Opt.Annotate(q, p)
	return v.Reg.Predict(v.Enc.Encode(p))
}
