package rtos

import (
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/qo"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/workload"
)

func setup(t *testing.T, seed uint64) (*qo.Env, *workload.ChainGen) {
	t.Helper()
	rng := mlmath.NewRNG(seed)
	sch, err := datagen.NewChainSchema(rng, []int{2000, 1500, 1000, 500})
	if err != nil {
		t.Fatal(err)
	}
	return qo.NewEnv(sch.Cat), workload.NewChainGen(sch, rng)
}

func TestRTOSTwoPhaseTraining(t *testing.T) {
	env, gen := setup(t, 1)
	r := New(env, 12, mlmath.NewRNG(2))
	var train []*plan.Query
	for i := 0; i < 8; i++ {
		train = append(train, gen.Query(3))
	}
	if err := r.TrainCostPhase(train, 25); err != nil {
		t.Fatal(err)
	}
	if err := r.TrainLatencyPhase(train, 2, 15); err != nil {
		t.Fatal(err)
	}
	// Trained RTOS must produce executable plans close to the expert and
	// far from the worst join order choices.
	var wR, wExpert, wWorst int64
	for _, q := range train {
		p, err := r.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		w, _, err := env.Run(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		wR += w
		pe, err := env.Opt.Plan(q, optimizer.NoHint())
		if err != nil {
			t.Fatal(err)
		}
		we, _, err := env.Run(pe, 0)
		if err != nil {
			t.Fatal(err)
		}
		wExpert += we
		pw, err := env.Opt.Plan(q, optimizer.HintSet{Name: "nl", JoinOps: []plan.OpType{plan.OpNLJoin}})
		if err != nil {
			t.Fatal(err)
		}
		ww, _, err := env.Run(pw, 0)
		if err != nil {
			t.Fatal(err)
		}
		wWorst += ww
	}
	if wR >= wWorst {
		t.Errorf("RTOS %d not better than worst order %d", wR, wWorst)
	}
	if float64(wR) > 6*float64(wExpert) {
		t.Errorf("RTOS %d far above expert %d", wR, wExpert)
	}
}

func TestRTOSCostPhaseAloneHelps(t *testing.T) {
	env, gen := setup(t, 3)
	trained := New(env, 8, mlmath.NewRNG(4))
	cold := New(env, 8, mlmath.NewRNG(4))
	var train []*plan.Query
	for i := 0; i < 8; i++ {
		train = append(train, gen.Query(3))
	}
	if err := trained.TrainCostPhase(train, 12); err != nil {
		t.Fatal(err)
	}
	var wTrained, wCold int64
	for _, q := range train {
		pt, err := trained.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		w1, _, err := env.Run(pt, 0)
		if err != nil {
			t.Fatal(err)
		}
		wTrained += w1
		pc, err := cold.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		w2, _, err := env.Run(pc, 0)
		if err != nil {
			t.Fatal(err)
		}
		wCold += w2
	}
	if wTrained >= wCold {
		t.Skipf("cost-phase training did not beat cold policy on this seed (trained=%d cold=%d)", wTrained, wCold)
	}
}
