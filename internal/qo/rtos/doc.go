// Package rtos implements an RTOS-style join-order selector (Yu et al.,
// ICDE 2020): reinforcement learning over join orders with a Tree-LSTM plan
// representation, trained in two phases — first from the optimizer's cost
// estimates (cheap, plentiful) and then from real execution latencies
// (expensive, accurate) — the cost/latency curriculum that improves training
// efficiency over latency-only learning.
package rtos
