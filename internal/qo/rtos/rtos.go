package rtos

import (
	"ml4db/internal/mlmath"
	"ml4db/internal/planrep"
	"ml4db/internal/qo"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/tree"
)

// RTOS is the join-order learner.
type RTOS struct {
	Search *qo.ValueSearch
	rng    *mlmath.RNG
}

// New constructs an RTOS instance; the encoder is a TreeLSTM, matching the
// paper's plan representation.
func New(env *qo.Env, hidden int, rng *mlmath.RNG) *RTOS {
	if hidden <= 0 {
		hidden = 16
	}
	pe := planrep.NewPlanEncoder(env.Cat, planrep.FullFeatures())
	enc := tree.NewTreeLSTMEncoder(pe.FeatDim(), hidden, rng)
	reg := tree.NewRegressor(enc, []int{32}, rng)
	return &RTOS{
		Search: &qo.ValueSearch{Env: env, Enc: pe, Reg: reg, Eps: 0.2, RNG: rng},
		rng:    rng,
	}
}

// TrainCostPhase is phase 1: generate diverse plans per query (expert plans
// under every hint set) and train the value network on *estimated cost*
// labels — no execution needed.
func (r *RTOS) TrainCostPhase(queries []*plan.Query, epochs int) error {
	var exps []qo.Experience
	for _, q := range queries {
		for _, h := range optimizer.StandardHintSets() {
			p, err := r.Search.Env.Opt.Plan(q, h)
			if err != nil {
				return err
			}
			exps = append(exps, qo.Experience{Query: q, Plan: p, LogWork: qo.LogWork(int64(p.EstCost))})
		}
	}
	r.Search.TrainValue(exps, epochs, 3e-3)
	return nil
}

// TrainLatencyPhase is phase 2: run the current policy with exploration,
// execute, and fine-tune on real latencies.
func (r *RTOS) TrainLatencyPhase(queries []*plan.Query, episodes, epochs int) error {
	var exps []qo.Experience
	for e := 0; e < episodes; e++ {
		for _, q := range queries {
			p, err := r.Search.BuildPlan(q, true)
			if err != nil {
				return err
			}
			work, _, err := r.Search.Env.Run(p, 0)
			if err != nil {
				return err
			}
			exps = append(exps, qo.Experience{Query: q, Plan: p, LogWork: qo.LogWork(work)})
		}
	}
	r.Search.TrainValue(exps, epochs, 1e-3)
	return nil
}

// Plan produces the learned join order for q.
func (r *RTOS) Plan(q *plan.Query) (*plan.Node, error) {
	return r.Search.BuildPlan(q, false)
}
