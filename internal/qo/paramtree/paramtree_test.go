package paramtree

import (
	"math"
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/qo"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/exec"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/workload"
)

// collect executes diverse plans and returns observations labeled by hw.
func collect(t *testing.T, hw Hardware, n int, seed uint64) []Observation {
	t.Helper()
	rng := mlmath.NewRNG(seed)
	sch, err := datagen.NewStarSchema(rng, 3000, 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	env := qo.NewEnv(sch.Cat)
	gen := workload.NewStarGen(sch, rng)
	var obs []Observation
	for len(obs) < n {
		q := gen.Query()
		for _, h := range optimizer.StandardHintSets() {
			p, err := env.Opt.Plan(q, h)
			if err != nil {
				t.Fatal(err)
			}
			res, err := env.Exec.Execute(p, exec.Options{})
			if err != nil {
				t.Fatal(err)
			}
			obs = append(obs, Observation{Counters: res.Counters, Latency: hw.Latency(res.Counters)})
			if len(obs) >= n {
				break
			}
		}
	}
	return obs
}

// signalColumns reports which parameter columns have observations (a
// workload without index scans gives no signal for index params).
func signalColumns(obs []Observation) []bool {
	dim := len(obs[0].Counters.Vec())
	sig := make([]bool, dim)
	for _, o := range obs {
		for i, v := range o.Counters.Vec() {
			if v > 0 {
				sig[i] = true
			}
		}
	}
	return sig
}

func TestFitRecoversUniformHardware(t *testing.T) {
	obs := collect(t, DefaultHardware(), 80, 1)
	params, err := Fit(obs, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	sig := signalColumns(obs)
	for i, v := range params.Vec() {
		if !sig[i] {
			continue
		}
		if math.Abs(v-1) > 0.15 {
			t.Errorf("param %d = %v, want ~1", i, v)
		}
	}
}

func TestFitRecoversAlternateHardware(t *testing.T) {
	hw := MemoryRichHardware()
	obs := collect(t, hw, 80, 2)
	params, err := Fit(obs, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	want := hw.Params.Vec()
	got := params.Vec()
	sig := signalColumns(obs)
	for i := range want {
		if !sig[i] {
			continue
		}
		if math.Abs(got[i]-want[i]) > 0.2*math.Max(0.5, want[i]) {
			t.Errorf("param %d = %v, want ~%v", i, got[i], want[i])
		}
	}
}

func TestTunedBeatsDefaultPrediction(t *testing.T) {
	hw := MemoryRichHardware()
	obs := collect(t, hw, 80, 3)
	tuned, err := Fit(obs[:60], 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	test := obs[60:]
	errTuned := PredictionError(tuned, test)
	errDefault := PredictionError(optimizer.DefaultCostParams(), test)
	if errTuned >= errDefault {
		t.Errorf("tuned error %v not below default %v", errTuned, errDefault)
	}
	if errTuned > 0.1 {
		t.Errorf("tuned error %v should be near zero (model is exactly linear)", errTuned)
	}
}

func TestFitRequiresEnoughObservations(t *testing.T) {
	if _, err := Fit(make([]Observation, 3), 1e-3); err == nil {
		t.Error("expected error for too few observations")
	}
}
