// Package paramtree implements ParamTree-style cost-model calibration (Yang
// et al., PACMMOD 2023): rather than replacing the formula cost model with a
// learned one, it *learns the formula's hyperparameters* (the R-params: the
// per-operation cost coefficients) from observed executions. A formula cost
// is linear in its parameters given the per-operation work counters, so the
// fit is a ridge regression — explainable, tiny, and adaptive to
// configuration change, which is ParamTree's argument against starting from
// scratch.
package paramtree
