package paramtree

import (
	"fmt"

	"ml4db/internal/mlmath"
	"ml4db/internal/sqlkit/exec"
	"ml4db/internal/sqlkit/optimizer"
)

// Observation is one executed plan's per-operation counters and measured
// latency (in whatever unit the deployment measures).
type Observation struct {
	Counters exec.Counters
	Latency  float64
}

// Fit learns CostParams minimizing Σ(latency − params·counters)² + λ‖·‖².
// At least as many observations as parameters are required.
func Fit(obs []Observation, lambda float64) (optimizer.CostParams, error) {
	dim := len(optimizer.TrueCostParams().Vec())
	if len(obs) < dim {
		return optimizer.CostParams{}, fmt.Errorf("paramtree: %d observations, need >= %d", len(obs), dim)
	}
	x := mlmath.NewMat(len(obs), dim)
	y := make([]float64, len(obs))
	for i, o := range obs {
		copy(x.Row(i), o.Counters.Vec())
		y[i] = o.Latency
	}
	w, err := mlmath.RidgeRegression(x, y, lambda)
	if err != nil {
		return optimizer.CostParams{}, fmt.Errorf("paramtree: %w", err)
	}
	// Cost coefficients are physically non-negative.
	for i := range w {
		if w[i] < 0 {
			w[i] = 0
		}
	}
	return optimizer.ParamsFromVec(w), nil
}

// Hardware models a deployment configuration: the true per-operation costs
// that generate observed latency from counters. The experiments use two
// configurations to show ParamTree adapting (the paper's static vs dynamic
// environments).
type Hardware struct {
	Name   string
	Params optimizer.CostParams
}

// Latency computes the configuration's latency for executed counters.
func (h Hardware) Latency(c exec.Counters) float64 {
	return mlmath.Dot(h.Params.Vec(), c.Vec())
}

// DefaultHardware matches the executor's unit work charges.
func DefaultHardware() Hardware {
	return Hardware{Name: "uniform", Params: optimizer.TrueCostParams()}
}

// MemoryRichHardware models a machine where hashing is cheap and random
// access (NL pairs) expensive.
func MemoryRichHardware() Hardware {
	return Hardware{Name: "memory-rich", Params: optimizer.CostParams{
		CPUTuple: 1, HashBuild: 0.5, HashProbe: 0.25, NLTuple: 3,
		MergeSort: 1.5, MergeScan: 0.5, OutputTuple: 0.5,
		IndexProbe: 2, IndexFetch: 4, // random access is expensive here
	}}
}

// PredictionError returns the mean relative error of a parameter set's cost
// predictions against observed latencies.
func PredictionError(params optimizer.CostParams, obs []Observation) float64 {
	if len(obs) == 0 {
		return 0
	}
	s := 0.0
	for _, o := range obs {
		pred := mlmath.Dot(params.Vec(), o.Counters.Vec())
		denom := o.Latency
		if denom < 1 {
			denom = 1
		}
		d := (pred - o.Latency) / denom
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s / float64(len(obs))
}
