// Package qo provides the shared machinery of the learned query optimizers
// of §3.2: an execution environment producing deterministic latency signals,
// and a value-network-guided bottom-up plan search. The concrete systems —
// NEO (qo/neo), RTOS (qo/rtos), BAO (qo/bao), AutoSteer (qo/autosteer),
// LEON (qo/leon), ParamTree (qo/paramtree), and Balsa (qo/balsa) — build on
// these pieces.
package qo
