package qo

import (
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/sqlkit/plan"
)

// TestBuildPlanBitIdenticalWithPool: candidate scoring is read-only per
// candidate, so a pooled search must pick exactly the plans a serial search
// picks.
func TestBuildPlanBitIdenticalWithPool(t *testing.T) {
	env, gen := testEnv(t)
	queries := make([]*planQuery, 0, 6)
	for i := 0; i < 6; i++ {
		queries = append(queries, &planQuery{q: gen.Query()})
	}
	serial := newSearch(env, 3)
	for _, pq := range queries {
		p, err := serial.BuildPlan(pq.q, false)
		if err != nil {
			t.Fatal(err)
		}
		pq.want = p.String()
	}
	for _, workers := range []int{2, 4} {
		pool := mlmath.NewPool(workers)
		vs := newSearch(env, 3)
		vs.Pool = pool
		for qi, pq := range queries {
			p, err := vs.BuildPlan(pq.q, false)
			if err != nil {
				t.Fatal(err)
			}
			if got := p.String(); got != pq.want {
				t.Fatalf("workers=%d query %d: pooled search picked\n%s\nserial picked\n%s", workers, qi, got, pq.want)
			}
		}
		pool.Close()
	}
}

type planQuery struct {
	q    *plan.Query
	want string
}
