// Package obs is the deterministic observability layer: hierarchical spans
// and a metrics registry, wired through the engine (optimize → execute →
// per-operator EXPLAIN ANALYZE) and the learned components (training-loss
// curves, q-error distributions, per-episode rewards, learned-index hit
// rates).
//
// Contract:
//
//   - Determinism. Every timing read flows through an injected mlmath.Clock
//     (the Tracer never calls time.Now itself), so a trace captured under
//     ManualClock is bit-identical across replays: same workload + same
//     clock schedule → byte-identical JSONL. The determinism analyzer
//     (cmd/ml4db-vet) enforces this: internal/obs is a core package where a
//     direct time.Now is a vet error.
//
//   - Nil is off, and free. A nil *Tracer returns nil *Span from StartSpan,
//     and every Span/Counter/Gauge/Histogram method is a no-op on a nil
//     receiver. Instrumented hot paths therefore cost one pointer test and
//     zero allocations when observability is disabled — verified by
//     TestNilObservabilityAllocatesNothing and BENCH_obs.json.
//
//   - Metrics are named and label-free. Names are dot-separated,
//     lowercase, component-first: "exec.work", "nn.fit.epoch_loss",
//     "qo.bao.regressions", "learnedindex.rmi.model_hit". Variable parts
//     (an arm index) are appended as a final segment. The first
//     registration of a histogram name fixes its buckets.
//
//   - Snapshots are stable. Exporters emit one JSON object per line
//     (JSONL): spans in start order, metrics in sorted-name order, with a
//     schema-stable field set (spans: type,id,parent,name,start,duration
//     [,attrs]; metrics: type,name,value or the histogram fields).
//     ValidateTraceJSONL/ValidateMetricsJSONL check that schema and back
//     the scripts/check.sh smoke gate via cmd/ml4db-tracecheck.
//
// Concurrency: Tracer and Registry are mutex-guarded and safe for
// concurrent use; a Span's attributes must only be set by the goroutine
// that started it (enforced by convention, as with contexts).
package obs
