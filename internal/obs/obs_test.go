package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"ml4db/internal/mlmath"
)

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("empty histogram count=%d sum=%g", h.Count(), h.Sum())
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%g) = %g, want 0", q, got)
		}
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := newHistogram(ExpBuckets(1, 10, 5))
	h.Observe(37)
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		if got := h.Quantile(q); got != 37 {
			t.Fatalf("single-sample Quantile(%g) = %g, want 37", q, got)
		}
	}
	if h.Sum() != 37 || h.Count() != 1 {
		t.Fatalf("sum=%g count=%d", h.Sum(), h.Count())
	}
}

func TestHistogramBucketBoundaryValues(t *testing.T) {
	// Inclusive upper bounds: a sample equal to a bound lands in that
	// bucket, not the next one.
	h := newHistogram([]float64{10, 100})
	h.Observe(10)
	h.Observe(100)
	h.Observe(101)
	bounds, counts, count, _, min, max, _, _, _ := h.snapshot()
	if len(bounds) != 2 || len(counts) != 3 {
		t.Fatalf("bounds=%v counts=%v", bounds, counts)
	}
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("boundary samples landed in wrong buckets: %v", counts)
	}
	if count != 3 || min != 10 || max != 101 {
		t.Fatalf("count=%d min=%g max=%g", count, min, max)
	}
}

// TestHistogramQuantileEdges pins the exact quantile semantics at the
// edges: empty histograms, single samples, samples landing exactly on a
// bucket bound, overflow-only data, out-of-range q, and interpolation
// within a bucket clamped to the observed [min, max].
func TestHistogramQuantileEdges(t *testing.T) {
	cases := []struct {
		name    string
		bounds  []float64
		samples []float64
		q       float64
		want    float64
	}{
		{"empty q0", []float64{1, 10}, nil, 0, 0},
		{"empty q1", []float64{1, 10}, nil, 1, 0},
		{"single below first bound", []float64{10, 100}, []float64{3}, 0.5, 3},
		{"single exactly on bound", []float64{10, 100}, []float64{10}, 0.5, 10},
		{"single in overflow", []float64{10, 100}, []float64{500}, 0.5, 500},
		{"q below zero clamps to min", []float64{10, 100}, []float64{20, 30}, -1, 20},
		{"q above one clamps to max", []float64{10, 100}, []float64{20, 30}, 2, 30},
		{"q0 is the observed min", []float64{10, 100}, []float64{20, 30, 90}, 0, 20},
		{"q1 is the observed max", []float64{10, 100}, []float64{20, 30, 90}, 1, 90},
		// Two samples inside one bucket: interpolation runs over the
		// observed [20, 30], not the bucket's [10, 100].
		{"interpolates observed range", []float64{10, 100}, []float64{20, 30}, 0.5, 25},
		// Rank landing exactly on a bucket boundary resolves to the lower
		// bucket's upper edge (clamped to its max sample).
		{"rank on bucket edge", []float64{10, 100}, []float64{5, 5, 50, 50}, 0.5, 10},
		{"no bounds means one overflow bucket", nil, []float64{4, 8}, 0.5, 6},
	}
	for _, c := range cases {
		h := newHistogram(c.bounds)
		for _, v := range c.samples {
			h.Observe(v)
		}
		got := h.Quantile(c.q)
		if diff := got - c.want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%s: Quantile(%g) = %g, want %g", c.name, c.q, got, c.want)
		}
	}
}

func TestHistogramQuantileMonotoneAndClamped(t *testing.T) {
	h := newHistogram(ExpBuckets(1, 2, 12))
	rng := mlmath.NewRNG(7)
	lo, hi := 1e18, -1e18
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 3000
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		h.Observe(v)
	}
	prev := -1e18
	for q := 0.0; q <= 1.0001; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: Quantile(%g)=%g < previous %g", q, v, prev)
		}
		if v < lo || v > hi {
			t.Fatalf("Quantile(%g)=%g outside observed [%g, %g]", q, v, lo, hi)
		}
		prev = v
	}
}

func TestSpanNestingAndOrderingUnderManualClock(t *testing.T) {
	clock := &mlmath.ManualClock{T: time.Unix(1000, 0)}
	tr := NewTracer(clock)
	root := tr.StartSpan("query", nil)
	clock.Advance(time.Millisecond)
	child := tr.StartSpan("optimize", root)
	clock.Advance(2 * time.Millisecond)
	child.End()
	grand := tr.StartSpan("execute", root)
	clock.Advance(3 * time.Millisecond)
	grand.SetInt("work", 42).End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// IDs follow start order; parents link the hierarchy.
	if spans[0].Name != "query" || spans[0].ID != 1 || spans[0].Parent != 0 {
		t.Fatalf("root span wrong: %+v", spans[0])
	}
	if spans[1].Name != "optimize" || spans[1].Parent != 1 || spans[1].Duration != 2*time.Millisecond {
		t.Fatalf("optimize span wrong: %+v", spans[1])
	}
	if spans[2].Name != "execute" || spans[2].Parent != 1 || spans[2].Duration != 3*time.Millisecond {
		t.Fatalf("execute span wrong: %+v", spans[2])
	}
	if spans[0].Duration != 6*time.Millisecond {
		t.Fatalf("root duration = %v, want 6ms", spans[0].Duration)
	}
	if len(spans[2].Attrs) != 1 || spans[2].Attrs[0].Key != "work" || spans[2].Attrs[0].Int != 42 {
		t.Fatalf("execute attrs wrong: %+v", spans[2].Attrs)
	}
	sum := tr.Summary()
	if !strings.Contains(sum, "query") || !strings.Contains(sum, "  optimize") {
		t.Fatalf("summary does not render the nesting:\n%s", sum)
	}
}

// TestTraceBitIdenticalUnderManualClockReplay is the determinism contract:
// the same workload against the same clock schedule produces byte-identical
// JSONL.
func TestTraceBitIdenticalUnderManualClockReplay(t *testing.T) {
	run := func() []byte {
		clock := &mlmath.ManualClock{T: time.Unix(5, 0)}
		tr := NewTracer(clock)
		root := tr.StartSpan("execute", nil)
		for i := 0; i < 3; i++ {
			clock.Advance(time.Duration(i+1) * time.Millisecond)
			sp := tr.StartSpan("op", root)
			sp.SetInt("rows", int64(i)).SetFloat("sel", 0.1*float64(i)).SetStr("kind", "scan")
			clock.Advance(time.Millisecond)
			sp.End()
		}
		root.End()
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("replayed trace differs:\n%s\nvs\n%s", a, b)
	}
	n, err := ValidateTraceJSONL(bytes.NewReader(a))
	if err != nil || n != 4 {
		t.Fatalf("ValidateTraceJSONL = %d, %v; want 4, nil", n, err)
	}
}

func TestMetricsJSONLSchemaAndValidation(t *testing.T) {
	r := NewRegistry()
	r.Counter("exec.queries").Add(3)
	r.Gauge("leon.calibrated").Set(0.75)
	h := r.Histogram("exec.work", ExpBuckets(1, 4, 8))
	h.Observe(12)
	h.Observe(1200)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateMetricsJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil || n != 3 {
		t.Fatalf("ValidateMetricsJSONL = %d, %v; want 3, nil\n%s", n, err, buf.String())
	}
	// Schema drift must fail validation: drop a required field.
	broken := strings.Replace(buf.String(), `"count"`, `"cnt"`, 1)
	if _, err := ValidateMetricsJSONL(strings.NewReader(broken)); err == nil {
		t.Fatal("validator accepted a histogram line missing its count field")
	}
	bad := `{"type":"span","name":"x"}` + "\n"
	if _, err := ValidateTraceJSONL(strings.NewReader(bad)); err == nil {
		t.Fatal("validator accepted a span line missing id/parent/start/duration")
	}
	if _, err := ValidateTraceJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("validator accepted a non-JSON line")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("shared.counter").Inc()
				r.Gauge("shared.gauge").Set(float64(i))
				r.Histogram("shared.hist", ExpBuckets(1, 2, 10)).Observe(float64(i % 100))
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("shared.hist", nil).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestNilObservabilityAllocatesNothing pins the "nil is off, and free"
// contract: the full instrumentation call surface on nil receivers performs
// zero allocations.
func TestNilObservabilityAllocatesNothing(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan("execute", nil)
		sp.SetInt("work", 1).SetFloat("sel", 0.5).SetStr("hint", "nohash")
		child := tr.StartSpan("op", sp)
		child.End()
		sp.End()
		reg.Counter("c").Inc()
		reg.Counter("c").Add(5)
		reg.Gauge("g").Set(1)
		reg.Histogram("h", nil).Observe(3)
		_ = reg.Histogram("h", nil).Quantile(0.5)
	})
	if allocs != 0 {
		t.Fatalf("nil observability allocated %.1f times per op, want 0", allocs)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	if len(b) != len(want) {
		t.Fatalf("ExpBuckets = %v", b)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	if ExpBuckets(0, 10, 4) != nil || ExpBuckets(1, 1, 4) != nil || ExpBuckets(1, 10, 0) != nil {
		t.Fatal("degenerate ExpBuckets args must yield nil")
	}
}
