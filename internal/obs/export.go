package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The JSONL schemas. Field sets are stable: cmd/ml4db-tracecheck and the
// scripts/check.sh smoke gate fail if a required field disappears.

type spanJSON struct {
	Type     string                 `json:"type"`
	ID       int                    `json:"id"`
	Parent   int                    `json:"parent"`
	Name     string                 `json:"name"`
	Start    int64                  `json:"start"`    // UnixNano of the span's start
	Duration int64                  `json:"duration"` // nanoseconds
	Attrs    map[string]interface{} `json:"attrs,omitempty"`
}

type counterJSON struct {
	Type  string `json:"type"`
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

type gaugeJSON struct {
	Type  string  `json:"type"`
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

type histJSON struct {
	Type   string    `json:"type"`
	Name   string    `json:"name"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// WriteJSONL writes one span per line in start order. Under a ManualClock
// the output is bit-identical across replays of the same workload.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range t.Spans() {
		line := spanJSON{
			Type:     "span",
			ID:       sp.ID,
			Parent:   sp.Parent,
			Name:     sp.Name,
			Start:    sp.Start.UnixNano(),
			Duration: sp.Duration.Nanoseconds(),
			Attrs:    attrMap(sp.Attrs),
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONL writes one metric snapshot per line: counters, then gauges,
// then histograms, each block in sorted-name order.
func (r *Registry) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counterNames := sortedNames(r.counters)
	gaugeNames := sortedNames(r.gauges)
	histNames := sortedNames(r.hists)
	counters := make([]*Counter, len(counterNames))
	for i, n := range counterNames {
		counters[i] = r.counters[n]
	}
	gauges := make([]*Gauge, len(gaugeNames))
	for i, n := range gaugeNames {
		gauges[i] = r.gauges[n]
	}
	hists := make([]*Histogram, len(histNames))
	for i, n := range histNames {
		hists[i] = r.hists[n]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, n := range counterNames {
		if err := enc.Encode(counterJSON{Type: "counter", Name: n, Value: counters[i].Value()}); err != nil {
			return err
		}
	}
	for i, n := range gaugeNames {
		if err := enc.Encode(gaugeJSON{Type: "gauge", Name: n, Value: gauges[i].Value()}); err != nil {
			return err
		}
	}
	for i, n := range histNames {
		bounds, counts, count, sum, min, max, p50, p90, p99 := hists[i].snapshot()
		line := histJSON{
			Type: "histogram", Name: n,
			Count: count, Sum: sum, Min: min, Max: max,
			P50: p50, P90: p90, P99: p99,
			Bounds: bounds, Counts: counts,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// requireFields checks that every named field is present in the decoded
// line.
func requireFields(m map[string]json.RawMessage, lineNo int, fields ...string) error {
	for _, f := range fields {
		if _, ok := m[f]; !ok {
			return fmt.Errorf("line %d: missing required field %q", lineNo, f)
		}
	}
	return nil
}

// validateJSONL runs check over every non-empty line of r, returning the
// number of validated lines.
func validateJSONL(r io.Reader, check func(lineNo int, m map[string]json.RawMessage) error) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	n := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(line, &m); err != nil {
			return n, fmt.Errorf("line %d: not valid JSON: %v", lineNo, err)
		}
		if err := check(lineNo, m); err != nil {
			return n, err
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}

// ValidateTraceJSONL checks a span trace file: every line must parse as
// JSON and carry the stable span schema (type=span with id, parent, name,
// start, duration). It returns the number of validated spans.
func ValidateTraceJSONL(r io.Reader) (int, error) {
	return validateJSONL(r, func(lineNo int, m map[string]json.RawMessage) error {
		var typ string
		if err := json.Unmarshal(m["type"], &typ); err != nil || typ != "span" {
			return fmt.Errorf("line %d: trace line is not a span (type=%s)", lineNo, m["type"])
		}
		if err := requireFields(m, lineNo, "id", "parent", "name", "start", "duration"); err != nil {
			return err
		}
		var line spanJSON
		if err := json.Unmarshal(mustRemarshal(m), &line); err != nil {
			return fmt.Errorf("line %d: span fields have wrong types: %v", lineNo, err)
		}
		if line.Name == "" {
			return fmt.Errorf("line %d: span has empty name", lineNo)
		}
		if line.ID < 1 || line.Parent < 0 || line.Parent >= line.ID {
			return fmt.Errorf("line %d: span id/parent out of order (id=%d parent=%d)", lineNo, line.ID, line.Parent)
		}
		return nil
	})
}

// ValidateMetricsJSONL checks a metrics snapshot file: every line must be a
// counter, gauge, or histogram with its required fields. It returns the
// number of validated metrics.
func ValidateMetricsJSONL(r io.Reader) (int, error) {
	return validateJSONL(r, func(lineNo int, m map[string]json.RawMessage) error {
		var typ string
		if err := json.Unmarshal(m["type"], &typ); err != nil {
			return fmt.Errorf("line %d: metric line has no type", lineNo)
		}
		switch typ {
		case "counter", "gauge":
			return requireFields(m, lineNo, "name", "value")
		case "histogram":
			return requireFields(m, lineNo, "name", "count", "sum", "min", "max", "p50", "p90", "p99", "bounds", "counts")
		default:
			return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
		}
	})
}

// mustRemarshal re-encodes a decoded raw-message map so it can be decoded
// into a typed struct. Encoding a map of raw messages cannot fail.
func mustRemarshal(m map[string]json.RawMessage) []byte {
	data, err := json.Marshal(m)
	if err != nil {
		return nil
	}
	return data
}
