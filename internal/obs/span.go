package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ml4db/internal/mlmath"
)

// Tracer records hierarchical spans. The zero value is not useful: build
// one with NewTracer. A nil *Tracer is the "observability off" state — its
// StartSpan returns a nil *Span and costs nothing.
type Tracer struct {
	clock mlmath.Clock

	mu    sync.Mutex
	spans []*Span
}

// NewTracer returns a tracer reading time through clock (nil means the
// system clock). Inject a *mlmath.ManualClock to make traces bit-identical
// across replays.
func NewTracer(clock mlmath.Clock) *Tracer {
	return &Tracer{clock: mlmath.ClockOrSystem(clock)}
}

// Span is one timed region. IDs are 1-based in start order; a root span has
// parent ID 0. All methods are no-ops on a nil receiver.
type Span struct {
	tracer *Tracer
	id     int
	parent int
	name   string
	start  time.Time
	dur    time.Duration
	ended  bool
	attrs  []Attr
}

// AttrKind discriminates the value held by an Attr.
type AttrKind uint8

// Attr value kinds.
const (
	AttrInt AttrKind = iota
	AttrFloat
	AttrStr
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Kind  AttrKind
	Int   int64
	Float float64
	Str   string
}

// Value returns the attribute's value as an interface, for JSON encoding.
func (a Attr) Value() interface{} {
	switch a.Kind {
	case AttrFloat:
		return a.Float
	case AttrStr:
		return a.Str
	default:
		return a.Int
	}
}

// StartSpan opens a span named name under parent (nil parent = root). The
// start time is read from the tracer's clock. On a nil tracer it returns
// nil, which every Span method accepts.
func (t *Tracer) StartSpan(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	sp := &Span{tracer: t, id: len(t.spans) + 1, name: name, start: t.clock.Now()}
	if parent != nil {
		sp.parent = parent.id
	}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// End closes the span, recording its duration from the tracer's clock.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	if !s.ended {
		s.dur = s.tracer.clock.Now().Sub(s.start)
		s.ended = true
	}
	s.tracer.mu.Unlock()
}

// SetInt attaches an integer attribute and returns the span for chaining.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.tracer.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrInt, Int: v})
	s.tracer.mu.Unlock()
	return s
}

// SetFloat attaches a float attribute and returns the span for chaining.
func (s *Span) SetFloat(key string, v float64) *Span {
	if s == nil {
		return nil
	}
	s.tracer.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrFloat, Float: v})
	s.tracer.mu.Unlock()
	return s
}

// SetStr attaches a string attribute and returns the span for chaining.
func (s *Span) SetStr(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.tracer.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrStr, Str: v})
	s.tracer.mu.Unlock()
	return s
}

// SpanData is an immutable snapshot of one span.
type SpanData struct {
	ID       int
	Parent   int
	Name     string
	Start    time.Time
	Duration time.Duration
	Ended    bool
	Attrs    []Attr
}

// Spans snapshots all recorded spans in start order. Safe to call while
// spans are still being recorded.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, len(t.spans))
	for i, sp := range t.spans {
		out[i] = SpanData{
			ID:       sp.id,
			Parent:   sp.parent,
			Name:     sp.name,
			Start:    sp.start,
			Duration: sp.dur,
			Ended:    sp.ended,
			Attrs:    append([]Attr(nil), sp.attrs...),
		}
	}
	return out
}

// Summary renders the span forest as an indented text tree, children under
// parents in start order — the human-readable view of a trace.
func (t *Tracer) Summary() string {
	spans := t.Spans()
	if len(spans) == 0 {
		return ""
	}
	children := map[int][]SpanData{}
	var roots []SpanData
	for _, sp := range spans {
		if sp.Parent == 0 {
			roots = append(roots, sp)
		} else {
			children[sp.Parent] = append(children[sp.Parent], sp)
		}
	}
	var b strings.Builder
	var render func(sp SpanData, depth int)
	render = func(sp SpanData, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s %dµs", sp.Name, sp.Duration.Microseconds())
		for _, a := range sp.Attrs {
			switch a.Kind {
			case AttrFloat:
				fmt.Fprintf(&b, " %s=%g", a.Key, a.Float)
			case AttrStr:
				fmt.Fprintf(&b, " %s=%s", a.Key, a.Str)
			default:
				fmt.Fprintf(&b, " %s=%d", a.Key, a.Int)
			}
		}
		b.WriteByte('\n')
		for _, c := range children[sp.ID] {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
	return b.String()
}

// attrMap returns the attribute list as a key→value map for JSON encoding;
// encoding/json emits map keys sorted, keeping output stable.
func attrMap(attrs []Attr) map[string]interface{} {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]interface{}, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// sortedNames returns the map's keys in sorted order — the sanctioned
// deterministic map-iteration idiom.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
