package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry holds named, label-free metrics. All methods are safe for
// concurrent use, and every method on a nil *Registry (observability off)
// is a no-op returning nil instruments whose methods are themselves no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use; later calls reuse the first
// registration's buckets. Bounds must be sorted ascending; an implicit
// overflow bucket catches everything above the last bound. Returns nil on a
// nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	mu sync.Mutex
	v  int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a last-value float metric.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set records the gauge's current value. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the last set value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram is a fixed-bucket distribution metric with quantile readout.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds; counts has one extra overflow slot
	counts []int64
	count  int64
	sum    float64
	min    float64
	max    float64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
}

// ExpBuckets returns n exponentially spaced bucket bounds start,
// start·factor, start·factor², … — the usual shape for latencies, work
// units, and losses. Degenerate arguments (start ≤ 0, factor ≤ 1, n < 1)
// yield nil, i.e. a single overflow bucket.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		return nil
	}
	out := make([]float64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// Observe records one sample. A sample equal to a bucket's upper bound
// lands in that bucket (inclusive upper bounds). No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, len(bounds) if none
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of samples (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sample sum (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (q in [0,1], clamped) by linear
// interpolation within the covering bucket, clamped to the observed
// [min, max]. An empty histogram reports 0. Quantile is monotone
// non-decreasing in q.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	cum := 0.0
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= rank {
			lo := h.min
			if i > 0 && h.bounds[i-1] > lo {
				lo = h.bounds[i-1]
			}
			hi := h.max
			if i < len(h.bounds) && h.bounds[i] < hi {
				hi = h.bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum += float64(c)
	}
	return h.max
}

// snapshot copies the histogram state under its lock.
func (h *Histogram) snapshot() (bounds []float64, counts []int64, count int64, sum, min, max, p50, p90, p99 float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...), append([]int64(nil), h.counts...),
		h.count, h.sum, h.min, h.max,
		h.quantileLocked(0.50), h.quantileLocked(0.90), h.quantileLocked(0.99)
}

// Summary renders all metrics as sorted human-readable lines.
func (r *Registry) Summary() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	counterNames := sortedNames(r.counters)
	gaugeNames := sortedNames(r.gauges)
	histNames := sortedNames(r.hists)
	counters := make([]*Counter, len(counterNames))
	for i, n := range counterNames {
		counters[i] = r.counters[n]
	}
	gauges := make([]*Gauge, len(gaugeNames))
	for i, n := range gaugeNames {
		gauges[i] = r.gauges[n]
	}
	hists := make([]*Histogram, len(histNames))
	for i, n := range histNames {
		hists[i] = r.hists[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for i, n := range counterNames {
		fmt.Fprintf(&b, "counter   %-36s %d\n", n, counters[i].Value())
	}
	for i, n := range gaugeNames {
		fmt.Fprintf(&b, "gauge     %-36s %g\n", n, gauges[i].Value())
	}
	for i, n := range histNames {
		_, _, count, sum, min, max, p50, p90, p99 := hists[i].snapshot()
		fmt.Fprintf(&b, "histogram %-36s n=%d sum=%g min=%g max=%g p50=%g p90=%g p99=%g\n",
			n, count, sum, min, max, p50, p90, p99)
	}
	return b.String()
}
