package docslint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Rule identifiers, one per documentation contract.
const (
	RuleMissingDocGo     = "missing-doc-go"
	RuleUnreferencedDoc  = "unreferenced-doc"
	RuleDeadLink         = "dead-link"
	RuleMissingDocsIndex = "missing-docs-index"
)

// Finding is one violated documentation contract.
type Finding struct {
	// Path is repo-relative: the package directory (missing-doc-go), the
	// orphaned docs file (unreferenced-doc), or the markdown file holding
	// the broken link (dead-link, missing-docs-index).
	Path string
	Rule string
	Msg  string
}

// String formats the finding the way cmd/ml4db-docslint prints it.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Path, f.Rule, f.Msg)
}

// mdLink matches inline markdown links and captures the target. Reference
// definitions ([id]: url) are out of scope: the repo uses inline links.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// Check runs every documentation rule against the repository rooted at
// root and returns the findings sorted by path then rule. A nil slice
// means the docs contract holds.
func Check(root string) ([]Finding, error) {
	var findings []Finding

	pkgs, err := packagesMissingDocGo(root)
	if err != nil {
		return nil, err
	}
	for _, dir := range pkgs {
		findings = append(findings, Finding{
			Path: dir,
			Rule: RuleMissingDocGo,
			Msg:  "internal package has Go files but no doc.go; move the package comment into one",
		})
	}

	orphans, err := unreferencedDocs(root)
	if err != nil {
		return nil, err
	}
	findings = append(findings, orphans...)

	dead, err := deadLinks(root)
	if err != nil {
		return nil, err
	}
	findings = append(findings, dead...)

	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Path != findings[j].Path {
			return findings[i].Path < findings[j].Path
		}
		if findings[i].Rule != findings[j].Rule {
			return findings[i].Rule < findings[j].Rule
		}
		return findings[i].Msg < findings[j].Msg
	})
	return findings, nil
}

// packagesMissingDocGo returns repo-relative internal/ package directories
// that contain non-test Go files but no doc.go. Fixture trees under
// testdata are not packages of the module and are skipped whole.
func packagesMissingDocGo(root string) ([]string, error) {
	var missing []string
	base := filepath.Join(root, "internal")
	if _, err := os.Stat(base); os.IsNotExist(err) {
		return nil, nil
	}
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if d.Name() == "testdata" {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo, hasDoc := false, false
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			hasGo = true
			if name == "doc.go" {
				hasDoc = true
			}
		}
		if hasGo && !hasDoc {
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			missing = append(missing, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(missing)
	return missing, nil
}

// linkTargets extracts the relative-file link targets from one markdown
// file, resolved repo-relative. External URLs and pure fragments are not
// file links and are dropped.
func linkTargets(root, mdPath string) ([]string, error) {
	data, err := os.ReadFile(filepath.Join(root, mdPath))
	if err != nil {
		return nil, err
	}
	var targets []string
	for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
		raw := m[1]
		if strings.Contains(raw, "://") || strings.HasPrefix(raw, "mailto:") || strings.HasPrefix(raw, "#") {
			continue
		}
		if i := strings.IndexByte(raw, '#'); i >= 0 {
			raw = raw[:i]
		}
		if raw == "" {
			continue
		}
		resolved := filepath.ToSlash(filepath.Clean(filepath.Join(filepath.Dir(mdPath), raw)))
		targets = append(targets, resolved)
	}
	return targets, nil
}

// docsFiles lists docs/*.md repo-relative, sorted.
func docsFiles(root string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(root, "docs"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
			files = append(files, "docs/"+e.Name())
		}
	}
	sort.Strings(files)
	return files, nil
}

// unreferencedDocs flags docs/*.md files that neither README.md nor the
// docs index (docs/README.md) links to — documentation nobody can find is
// documentation that rots. A docs/ directory without an index is itself a
// finding: the index is the entry point the rule hinges on.
func unreferencedDocs(root string) ([]Finding, error) {
	docs, err := docsFiles(root)
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, nil
	}
	referenced := map[string]bool{}
	indexes := []string{"README.md", "docs/README.md"}
	haveIndex := false
	for _, idx := range indexes {
		if _, err := os.Stat(filepath.Join(root, idx)); err != nil {
			continue
		}
		if idx == "docs/README.md" {
			haveIndex = true
		}
		targets, err := linkTargets(root, idx)
		if err != nil {
			return nil, err
		}
		for _, t := range targets {
			referenced[t] = true
		}
	}
	var findings []Finding
	if !haveIndex {
		findings = append(findings, Finding{
			Path: "docs/README.md",
			Rule: RuleMissingDocsIndex,
			Msg:  "docs/ has markdown files but no README.md index",
		})
	}
	for _, doc := range docs {
		if doc == "docs/README.md" || referenced[doc] {
			continue
		}
		findings = append(findings, Finding{
			Path: doc,
			Rule: RuleUnreferencedDoc,
			Msg:  "not linked from README.md or docs/README.md; add it to the docs index",
		})
	}
	return findings, nil
}

// deadLinks verifies that every relative link in README.md and docs/*.md
// resolves to an existing file or directory.
func deadLinks(root string) ([]Finding, error) {
	sources := []string{"README.md"}
	docs, err := docsFiles(root)
	if err != nil {
		return nil, err
	}
	sources = append(sources, docs...)
	var findings []Finding
	for _, src := range sources {
		if _, err := os.Stat(filepath.Join(root, src)); err != nil {
			continue
		}
		targets, err := linkTargets(root, src)
		if err != nil {
			return nil, err
		}
		for _, t := range targets {
			if _, err := os.Stat(filepath.Join(root, filepath.FromSlash(t))); err != nil {
				findings = append(findings, Finding{
					Path: src,
					Rule: RuleDeadLink,
					Msg:  fmt.Sprintf("link target %q does not exist", t),
				})
			}
		}
	}
	return findings, nil
}
