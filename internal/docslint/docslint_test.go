package docslint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scaffold writes a file tree: map of repo-relative path -> content. A
// trailing slash creates a bare directory.
func scaffold(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for path, content := range files {
		full := filepath.Join(root, filepath.FromSlash(path))
		if strings.HasSuffix(path, "/") {
			if err := os.MkdirAll(full, 0o755); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func rules(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Path + ":" + f.Rule
	}
	return out
}

func TestCleanTreeHasNoFindings(t *testing.T) {
	root := scaffold(t, map[string]string{
		"README.md":                "See the [docs index](docs/README.md).\n",
		"docs/README.md":           "- [Storage](STORAGE.md)\n",
		"docs/STORAGE.md":          "Back to [index](README.md) and [pool](../internal/storage/pool.go).\n",
		"internal/storage/doc.go":  "// Package storage.\npackage storage\n",
		"internal/storage/pool.go": "package storage\n",
	})
	fs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("clean tree produced findings: %v", rules(fs))
	}
}

func TestMissingDocGo(t *testing.T) {
	root := scaffold(t, map[string]string{
		"internal/storage/pool.go":             "package storage\n",
		"internal/ok/doc.go":                   "// Package ok.\npackage ok\n",
		"internal/ok/ok.go":                    "package ok\n",
		"internal/testonly/only_test.go":       "package testonly\n",
		"internal/fix/testdata/src/bad/bad.go": "package bad\n",
		"internal/fix/doc.go":                  "// Package fix.\npackage fix\n",
		"internal/fix/fix.go":                  "package fix\n",
	})
	fs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"internal/storage:" + RuleMissingDocGo}
	if got := rules(fs); len(got) != 1 || got[0] != want[0] {
		t.Fatalf("findings = %v, want %v", got, want)
	}
}

func TestUnreferencedDocAndMissingIndex(t *testing.T) {
	root := scaffold(t, map[string]string{
		"README.md":         "no links here\n",
		"docs/ORPHAN.md":    "nobody links to me\n",
		"docs/MENTIONED.md": "linked below\n",
		"docs/README.md":    "- [Mentioned](MENTIONED.md)\n",
	})
	fs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"docs/ORPHAN.md:" + RuleUnreferencedDoc}
	if got := rules(fs); len(got) != 1 || got[0] != want[0] {
		t.Fatalf("findings = %v, want %v", got, want)
	}

	// Without an index, the missing index itself is the finding.
	noIdx := scaffold(t, map[string]string{
		"README.md":      "no links\n",
		"docs/ORPHAN.md": "alone\n",
	})
	fs, err = Check(noIdx)
	if err != nil {
		t.Fatal(err)
	}
	got := rules(fs)
	if len(got) != 2 || got[0] != "docs/ORPHAN.md:"+RuleUnreferencedDoc || got[1] != "docs/README.md:"+RuleMissingDocsIndex {
		t.Fatalf("findings = %v", got)
	}
}

func TestDeadLinks(t *testing.T) {
	root := scaffold(t, map[string]string{
		"README.md":      "[gone](docs/GONE.md) [ok](docs/README.md) [web](https://example.com) [frag](#section)\n",
		"docs/README.md": "[up](../README.md) [dead](../internal/nope/x.go) [anchored](README.md#top)\n",
	})
	fs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	got := rules(fs)
	want := []string{
		"README.md:" + RuleDeadLink,
		"docs/README.md:" + RuleDeadLink,
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("findings = %v, want %v", got, want)
	}
	if !strings.Contains(fs[0].Msg, "docs/GONE.md") || !strings.Contains(fs[1].Msg, "internal/nope/x.go") {
		t.Fatalf("messages lack targets: %v / %v", fs[0].Msg, fs[1].Msg)
	}
}

// TestRepoIsClean pins the real repository to the docs contract: if this
// fails, a package lost its doc.go or a docs page fell out of the index.
func TestRepoIsClean(t *testing.T) {
	fs, err := Check("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		for _, f := range fs {
			t.Errorf("%s", f)
		}
	}
}
