// Package docslint enforces the repository's documentation contract: every
// internal package carries a doc.go, every file under docs/ is reachable
// from the README or the docs index, and no committed markdown contains a
// dead relative link. It is the library behind cmd/ml4db-docslint, which
// scripts/check.sh runs on every commit — documentation drift fails the
// gate exactly like a broken test.
package docslint
