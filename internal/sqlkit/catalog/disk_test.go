package catalog

import (
	"path/filepath"
	"reflect"
	"testing"

	"ml4db/internal/storage"
)

func spilledTable(t *testing.T, nrows int) (*Table, *storage.Pool) {
	t.Helper()
	tb := NewTable("t", "a", "b")
	for r := 0; r < nrows; r++ {
		if err := tb.AppendRow([]int64{int64(r), int64(r % 7)}); err != nil {
			t.Fatal(err)
		}
	}
	pool := storage.NewPool(storage.PoolOptions{Capacity: 4})
	if err := tb.SpillToDisk(filepath.Join(t.TempDir(), "t.tbl"), pool); err != nil {
		t.Fatal(err)
	}
	return tb, pool
}

func TestSpillToDiskPreservesRows(t *testing.T) {
	tb, _ := spilledTable(t, 1000)
	if !tb.IsDisk() || tb.Data != nil {
		t.Fatalf("spill left in-memory backing: disk=%v data=%v", tb.IsDisk(), tb.Data != nil)
	}
	if tb.NumRows() != 1000 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	if tb.NumDiskPages() == 0 {
		t.Fatal("no disk pages after spill")
	}
	colA, err := tb.ColumnValues(0)
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range colA {
		if v != int64(r) {
			t.Fatalf("column a row %d = %d", r, v)
		}
	}
	// Appends keep going to disk.
	if err := tb.AppendRow([]int64{1000, 3}); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1001 {
		t.Fatalf("NumRows after append = %d", tb.NumRows())
	}
	// A second spill is rejected.
	if err := tb.SpillToDisk("x", nil); err == nil {
		t.Fatal("double spill succeeded")
	}
}

func TestAnalyzeTableSkipsDiskAnalyzeIOReads(t *testing.T) {
	tb, _ := spilledTable(t, 500)
	AnalyzeTable(tb, 8, 32) // must be a no-op, not a panic
	if tb.Columns[0].Stats != nil {
		t.Fatal("AnalyzeTable analyzed a disk table")
	}
	if err := AnalyzeTableIO(tb, 8, 32); err != nil {
		t.Fatal(err)
	}
	st := tb.Columns[0].Stats
	if st == nil || st.Count != 500 || st.Min != 0 || st.Max != 499 {
		t.Fatalf("disk stats = %+v", st)
	}
	if st2 := tb.Columns[1].Stats; st2 == nil || st2.Distinct != 7 {
		t.Fatalf("disk stats col b = %+v", tb.Columns[1].Stats)
	}
}

func TestBuildSecondaryIndexIOOnDisk(t *testing.T) {
	tb, _ := spilledTable(t, 300)
	ix, err := BuildSecondaryIndexIO(tb, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 300 {
		t.Fatalf("index len = %d", ix.Len())
	}
	// Build the same index from an in-memory twin and compare.
	twin := NewTable("twin", "a", "b")
	for r := 0; r < 300; r++ {
		if err := twin.AppendRow([]int64{int64(r), int64(r % 7)}); err != nil {
			t.Fatal(err)
		}
	}
	want := BuildSecondaryIndex(twin, 1)
	if !reflect.DeepEqual(ix.RangeRows(2, 3), want.RangeRows(2, 3)) {
		t.Fatalf("disk index diverges from in-memory index")
	}
}
