// Package catalog implements the storage and metadata layer of the
// from-scratch relational engine: column-major in-memory tables, column
// statistics (min/max, distinct counts, equi-depth histograms, reservoir
// samples), and a catalog mapping names to tables.
//
// It stands in for the PostgreSQL storage/statistics subsystem that the
// surveyed ML4DB systems depend on. All values are int64; categorical data
// is dictionary-encoded by the generators.
package catalog
