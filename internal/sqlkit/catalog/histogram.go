package catalog

import "sort"

// Histogram is an equi-depth histogram: each bucket covers roughly the same
// number of rows. Buckets store their value bounds, row counts, and distinct
// counts, exactly the information a classical optimizer keeps.
type Histogram struct {
	// Bounds[i] is the inclusive upper bound of bucket i; buckets partition
	// [min, max]. Lower bound of bucket 0 is Lo.
	Lo       int64
	Bounds   []int64
	Counts   []int
	Distinct []int
	Total    int
}

// BuildHistogram builds an equi-depth histogram over sorted values.
// values must be sorted ascending; buckets must be >= 1.
func BuildHistogram(sorted []int64, buckets int) *Histogram {
	h := &Histogram{Total: len(sorted)}
	if len(sorted) == 0 {
		return h
	}
	if buckets < 1 {
		buckets = 1
	}
	h.Lo = sorted[0]
	per := (len(sorted) + buckets - 1) / buckets
	i := 0
	for i < len(sorted) {
		end := i + per
		if end > len(sorted) {
			end = len(sorted)
		}
		// Extend the bucket so equal values never straddle a boundary —
		// required for the uniform-within-bucket assumption to be coherent.
		for end < len(sorted) && sorted[end] == sorted[end-1] {
			end++
		}
		bound := sorted[end-1]
		cnt := end - i
		d := 1
		for j := i + 1; j < end; j++ {
			if sorted[j] != sorted[j-1] {
				d++
			}
		}
		h.Bounds = append(h.Bounds, bound)
		h.Counts = append(h.Counts, cnt)
		h.Distinct = append(h.Distinct, d)
		i = end
	}
	return h
}

// bucketOf returns the index of the bucket containing v, or -1 if v is
// outside the histogram's range.
func (h *Histogram) bucketOf(v int64) int {
	if h.Total == 0 || v < h.Lo || len(h.Bounds) == 0 || v > h.Bounds[len(h.Bounds)-1] {
		return -1
	}
	return sort.Search(len(h.Bounds), func(i int) bool { return h.Bounds[i] >= v })
}

// FracInBucketOf returns the fraction of all rows that fall in v's bucket.
func (h *Histogram) FracInBucketOf(v int64) float64 {
	b := h.bucketOf(v)
	if b < 0 {
		return 0
	}
	return float64(h.Counts[b]) / float64(h.Total)
}

// DistinctInBucketOf returns the distinct count of v's bucket (0 if outside).
func (h *Histogram) DistinctInBucketOf(v int64) float64 {
	b := h.bucketOf(v)
	if b < 0 {
		return 0
	}
	return float64(h.Distinct[b])
}

// FracRange estimates the fraction of rows in [lo, hi] assuming uniformity
// within buckets.
func (h *Histogram) FracRange(lo, hi int64) float64 {
	if h.Total == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if hi < lo {
		return 0
	}
	hiBound := h.Bounds[len(h.Bounds)-1]
	if hi < h.Lo || lo > hiBound {
		return 0
	}
	if lo < h.Lo {
		lo = h.Lo
	}
	if hi > hiBound {
		hi = hiBound
	}
	frac := 0.0
	bLo := h.Lo
	for i, bound := range h.Bounds {
		bucketLo, bucketHi := bLo, bound
		bLo = bound + 1
		if hi < bucketLo || lo > bucketHi {
			continue
		}
		overlapLo, overlapHi := lo, hi
		if overlapLo < bucketLo {
			overlapLo = bucketLo
		}
		if overlapHi > bucketHi {
			overlapHi = bucketHi
		}
		width := float64(bucketHi-bucketLo) + 1
		cover := float64(overlapHi-overlapLo) + 1
		frac += float64(h.Counts[i]) / float64(h.Total) * cover / width
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}
