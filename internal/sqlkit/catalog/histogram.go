package catalog

import (
	"math"
	"sort"
)

// Histogram is an equi-depth histogram: each bucket covers roughly the same
// number of rows. Buckets store their value bounds, row counts, and distinct
// counts, exactly the information a classical optimizer keeps.
type Histogram struct {
	// Lo is the inclusive lower bound of bucket 0 (the column minimum),
	// retained for backward compatibility; Los[0] == Lo.
	Lo int64
	// Los[i] is the inclusive lower bound of bucket i: the smallest value
	// actually present in the bucket. Without per-bucket lower bounds a
	// bucket's extent would have to be inferred as Bounds[i-1]+1, which
	// inflates bucket widths across data gaps (values absent between two
	// buckets) and skews range selectivities on sparse or skewed columns.
	Los []int64
	// Bounds[i] is the inclusive upper bound of bucket i: the largest value
	// present in the bucket.
	Bounds   []int64
	Counts   []int
	Distinct []int
	Total    int
}

// BuildHistogram builds an equi-depth histogram over sorted values.
// values must be sorted ascending; buckets must be >= 1.
func BuildHistogram(sorted []int64, buckets int) *Histogram {
	h := &Histogram{Total: len(sorted)}
	if len(sorted) == 0 {
		return h
	}
	if buckets < 1 {
		buckets = 1
	}
	h.Lo = sorted[0]
	per := (len(sorted) + buckets - 1) / buckets
	i := 0
	for i < len(sorted) {
		end := i + per
		if end > len(sorted) {
			end = len(sorted)
		}
		// Extend the bucket so equal values never straddle a boundary —
		// required for the uniform-within-bucket assumption to be coherent.
		for end < len(sorted) && sorted[end] == sorted[end-1] {
			end++
		}
		bound := sorted[end-1]
		cnt := end - i
		d := 1
		for j := i + 1; j < end; j++ {
			if sorted[j] != sorted[j-1] {
				d++
			}
		}
		h.Los = append(h.Los, sorted[i])
		h.Bounds = append(h.Bounds, bound)
		h.Counts = append(h.Counts, cnt)
		h.Distinct = append(h.Distinct, d)
		i = end
	}
	return h
}

// lowerOf returns the inclusive lower bound of bucket i. Histograms built by
// BuildHistogram store it exactly; for hand-constructed histograms without
// Los it falls back to the legacy derivation Bounds[i-1]+1, saturating at
// MaxInt64 so an extreme upper bound cannot overflow into the next bucket's
// range.
func (h *Histogram) lowerOf(i int) int64 {
	if i < len(h.Los) {
		return h.Los[i]
	}
	if i == 0 {
		return h.Lo
	}
	bound := h.Bounds[i-1]
	if bound == math.MaxInt64 {
		return bound
	}
	return bound + 1
}

// bucketOf returns the index of the bucket containing v, or -1 if v is
// outside the histogram's range or falls in a gap between buckets (a value
// range provably holding no rows).
func (h *Histogram) bucketOf(v int64) int {
	if h.Total == 0 || v < h.Lo || len(h.Bounds) == 0 || v > h.Bounds[len(h.Bounds)-1] {
		return -1
	}
	b := sort.Search(len(h.Bounds), func(i int) bool { return h.Bounds[i] >= v })
	if v < h.lowerOf(b) {
		return -1 // in the gap below bucket b: no rows there
	}
	return b
}

// FracInBucketOf returns the fraction of all rows that fall in v's bucket.
func (h *Histogram) FracInBucketOf(v int64) float64 {
	b := h.bucketOf(v)
	if b < 0 {
		return 0
	}
	return float64(h.Counts[b]) / float64(h.Total)
}

// DistinctInBucketOf returns the distinct count of v's bucket (0 if outside).
func (h *Histogram) DistinctInBucketOf(v int64) float64 {
	b := h.bucketOf(v)
	if b < 0 {
		return 0
	}
	return float64(h.Distinct[b])
}

// Covers reports whether v lies inside some bucket's [lower, upper] extent.
// A histogram built over the full column is exact: when Covers is false for
// an in-range v, the value provably appears in no row.
func (h *Histogram) Covers(v int64) bool { return h.bucketOf(v) >= 0 }

// FracRange estimates the fraction of rows in [lo, hi] assuming uniformity
// within buckets. Bucket extents use the stored per-bucket lower bounds, so
// buckets spanning data gaps are not widened by the gap (which would dilute
// their density and underestimate selectivity on the occupied region).
// Widths are computed in float64 to stay exact-enough and overflow-free even
// for buckets spanning nearly the whole int64 domain.
func (h *Histogram) FracRange(lo, hi int64) float64 {
	if h.Total == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if hi < lo {
		return 0
	}
	hiBound := h.Bounds[len(h.Bounds)-1]
	if hi < h.Lo || lo > hiBound {
		return 0
	}
	frac := 0.0
	for i, bound := range h.Bounds {
		bucketLo, bucketHi := h.lowerOf(i), bound
		if hi < bucketLo || lo > bucketHi {
			continue
		}
		overlapLo, overlapHi := lo, hi
		if overlapLo < bucketLo {
			overlapLo = bucketLo
		}
		if overlapHi > bucketHi {
			overlapHi = bucketHi
		}
		// Subtract in float64: int64 subtraction overflows when a bucket
		// spans more than half the int64 domain (e.g. MinInt64..MaxInt64).
		width := float64(bucketHi) - float64(bucketLo) + 1
		cover := float64(overlapHi) - float64(overlapLo) + 1
		frac += float64(h.Counts[i]) / float64(h.Total) * cover / width
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}
