package catalog

import (
	"testing"
	"testing/quick"

	"ml4db/internal/mlmath"
)

func buildIndexedTable(t *testing.T, n int, seed uint64) *Table {
	t.Helper()
	rng := mlmath.NewRNG(seed)
	tb := NewTable("t", "a", "b")
	for i := 0; i < n; i++ {
		if err := tb.AppendRow([]int64{int64(rng.Intn(500)), int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	AnalyzeTable(tb, 16, 64)
	tb.AddIndex(BuildSecondaryIndex(tb, 0))
	return tb
}

func TestSecondaryIndexRangeMatchesBruteForce(t *testing.T) {
	tb := buildIndexedTable(t, 3000, 1)
	ix := tb.Index(0)
	if ix == nil {
		t.Fatal("index missing")
	}
	f := func(a, b int16) bool {
		lo, hi := int64(a)%500, int64(b)%500
		if lo > hi {
			lo, hi = hi, lo
		}
		got := map[int32]bool{}
		for _, r := range ix.RangeRows(lo, hi) {
			got[r] = true
		}
		want := 0
		for r := 0; r < tb.NumRows(); r++ {
			v := tb.Data[0][r]
			in := v >= lo && v <= hi
			if in {
				want++
			}
			if in != got[int32(r)] {
				return false
			}
		}
		return want == len(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIndexManagement(t *testing.T) {
	tb := buildIndexedTable(t, 100, 2)
	if got := tb.IndexedCols(); len(got) != 1 || got[0] != 0 {
		t.Errorf("IndexedCols = %v", got)
	}
	if tb.Index(1) != nil {
		t.Error("found index on unindexed column")
	}
	tb.DropIndex(0)
	if tb.Index(0) != nil {
		t.Error("index survives drop")
	}
	if tb.Index(0) != nil || len(tb.IndexedCols()) != 0 {
		t.Error("IndexedCols after drop")
	}
}

func TestSecondaryIndexEmptyRange(t *testing.T) {
	tb := buildIndexedTable(t, 100, 3)
	ix := tb.Index(0)
	if rows := ix.RangeRows(1000, 2000); len(rows) != 0 {
		t.Errorf("out-of-domain range returned %d rows", len(rows))
	}
	if rows := ix.RangeRows(10, 5); len(rows) != 0 {
		t.Errorf("inverted range returned %d rows", len(rows))
	}
}

func TestSecondaryIndexSize(t *testing.T) {
	tb := buildIndexedTable(t, 1000, 4)
	if tb.Index(0).SizeBytes() != 12000 {
		t.Errorf("SizeBytes = %d", tb.Index(0).SizeBytes())
	}
	if tb.Index(0).Len() != 1000 {
		t.Errorf("Len = %d", tb.Index(0).Len())
	}
}
