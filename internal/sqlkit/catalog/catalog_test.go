package catalog

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"ml4db/internal/mlmath"
)

func TestTableBasics(t *testing.T) {
	tb := NewTable("users", "id", "age")
	if tb.NumRows() != 0 || tb.NumCols() != 2 {
		t.Fatalf("fresh table: rows=%d cols=%d", tb.NumRows(), tb.NumCols())
	}
	if err := tb.AppendRow([]int64{1, 30}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AppendRow([]int64{2, 40}); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", tb.NumRows())
	}
	if tb.Data[1][1] != 40 {
		t.Errorf("Data[1][1] = %d, want 40", tb.Data[1][1])
	}
	if err := tb.AppendRow([]int64{1}); err == nil {
		t.Error("expected width-mismatch error")
	}
	if tb.ColIndex("age") != 1 || tb.ColIndex("nope") != -1 {
		t.Error("ColIndex wrong")
	}
}

func TestCatalogRegistration(t *testing.T) {
	c := NewCatalog()
	id := c.MustAdd(NewTable("a", "x"))
	if id != 0 {
		t.Errorf("first id = %d", id)
	}
	if _, err := c.Add(NewTable("a", "y")); err == nil {
		t.Error("expected duplicate error")
	}
	got, ok := c.ByName("a")
	if !ok || got != 0 {
		t.Errorf("ByName = (%d, %v)", got, ok)
	}
	if _, ok := c.ByName("zz"); ok {
		t.Error("ByName found missing table")
	}
}

func TestBuildStatsExactCounts(t *testing.T) {
	vals := []int64{5, 1, 3, 3, 2, 5, 5}
	s := BuildStats(vals, 4, 10)
	if s.Count != 7 || s.Min != 1 || s.Max != 5 || s.Distinct != 4 {
		t.Errorf("stats = %+v", s)
	}
	if len(s.Sample) == 0 {
		t.Error("no sample taken")
	}
}

func TestBuildStatsEmpty(t *testing.T) {
	s := BuildStats(nil, 4, 10)
	if s.Count != 0 {
		t.Errorf("empty stats count = %d", s.Count)
	}
	if s.SelectivityEq(5) != 0 || s.SelectivityRange(1, 2) != 0 {
		t.Error("empty stats should give 0 selectivity")
	}
}

func TestHistogramBucketsPartitionRows(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mlmath.NewRNG(seed)
		n := 1 + rng.Intn(2000)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(500))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		h := BuildHistogram(vals, 8)
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		if total != n {
			return false
		}
		// Bounds must be non-decreasing.
		for i := 1; i < len(h.Bounds); i++ {
			if h.Bounds[i] < h.Bounds[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogramNoValueStraddlesBuckets(t *testing.T) {
	// Heavy duplicates: all equal values must land in one bucket.
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i / 25) // 4 distinct values, 25 each
	}
	h := BuildHistogram(vals, 10)
	for i := 1; i < len(h.Bounds); i++ {
		if h.Bounds[i] == h.Bounds[i-1] {
			t.Errorf("value %d appears as bound of two buckets", h.Bounds[i])
		}
	}
}

func TestFracRangeFullAndEmpty(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i)
	}
	h := BuildHistogram(vals, 16)
	if got := h.FracRange(0, 999); math.Abs(got-1) > 1e-9 {
		t.Errorf("full range frac = %v, want 1", got)
	}
	if got := h.FracRange(2000, 3000); got != 0 {
		t.Errorf("out-of-range frac = %v, want 0", got)
	}
	if got := h.FracRange(10, 5); got != 0 {
		t.Errorf("inverted range frac = %v, want 0", got)
	}
}

func TestFracRangeAccuracyOnUniform(t *testing.T) {
	rng := mlmath.NewRNG(9)
	vals := make([]int64, 20000)
	for i := range vals {
		vals[i] = int64(rng.Intn(1000))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	h := BuildHistogram(vals, 32)
	// True selectivity of [100, 299] is ~0.2 on uniform data.
	got := h.FracRange(100, 299)
	if math.Abs(got-0.2) > 0.03 {
		t.Errorf("FracRange(100,299) = %v, want ~0.2", got)
	}
}

func TestSelectivityEqOnSkewedData(t *testing.T) {
	rng := mlmath.NewRNG(10)
	z := mlmath.NewZipf(rng, 1.3, 100)
	vals := make([]int64, 50000)
	counts := map[int64]int{}
	for i := range vals {
		v := int64(z.Draw())
		vals[i] = v
		counts[v]++
	}
	s := BuildStats(vals, 32, 100)
	// The hottest value should get a much higher eq-selectivity estimate
	// than a cold one.
	hot := s.SelectivityEq(0)
	cold := s.SelectivityEq(90)
	trueHot := float64(counts[0]) / 50000
	if hot < trueHot/5 {
		t.Errorf("hot-value selectivity %v far below truth %v", hot, trueHot)
	}
	if cold >= hot {
		t.Errorf("cold (%v) >= hot (%v) selectivity", cold, hot)
	}
}

func TestSelectivityRangeMatchesTruth(t *testing.T) {
	rng := mlmath.NewRNG(11)
	vals := make([]int64, 30000)
	for i := range vals {
		vals[i] = int64(500 + 100*rng.NormFloat64())
	}
	s := BuildStats(vals, 32, 100)
	trueCount := 0
	for _, v := range vals {
		if v >= 450 && v <= 550 {
			trueCount++
		}
	}
	truth := float64(trueCount) / 30000
	got := s.SelectivityRange(450, 550)
	if q := mlmath.QError(got*30000, truth*30000); q > 1.2 {
		t.Errorf("range selectivity %v vs truth %v (q-error %v)", got, truth, q)
	}
}

func TestAnalyzeAll(t *testing.T) {
	c := NewCatalog()
	tb := NewTable("t", "x", "y")
	for i := 0; i < 100; i++ {
		if err := tb.AppendRow([]int64{int64(i), int64(i % 10)}); err != nil {
			t.Fatal(err)
		}
	}
	c.MustAdd(tb)
	c.AnalyzeAll(8, 16)
	if tb.Columns[0].Stats == nil || tb.Columns[1].Stats == nil {
		t.Fatal("stats missing after AnalyzeAll")
	}
	if tb.Columns[0].Stats.Distinct != 100 || tb.Columns[1].Stats.Distinct != 10 {
		t.Errorf("distinct = %d, %d; want 100, 10",
			tb.Columns[0].Stats.Distinct, tb.Columns[1].Stats.Distinct)
	}
}
