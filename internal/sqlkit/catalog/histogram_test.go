package catalog

import (
	"math"
	"testing"
)

// gappyValues builds a column whose values cluster in two dense runs
// separated by a huge gap: 0..99 and 100000..100099. An equi-depth histogram
// with a bucket boundary inside either run gives every bucket a tight
// extent; the regression below checks that the bucket straddling nothing —
// but whose legacy lower bound would be derived as "previous bound + 1",
// spanning the gap — no longer dilutes its density across the gap.
func gappyValues() []int64 {
	vals := make([]int64, 0, 200)
	for i := 0; i < 100; i++ {
		vals = append(vals, int64(i))
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, int64(100000+i))
	}
	return vals
}

func TestFracRangeGapRegression(t *testing.T) {
	vals := gappyValues()
	// 2 buckets: bucket 0 = [0,99], bucket 1 = [100000,100099]. The legacy
	// derivation gave bucket 1 the extent [100, 100099] — width 100000
	// instead of 100 — underestimating any range inside the upper cluster by
	// a factor of ~1000.
	h := BuildHistogram(vals, 2)
	if len(h.Bounds) != 2 {
		t.Fatalf("expected 2 buckets, got %d", len(h.Bounds))
	}
	if got, want := h.Los[1], int64(100000); got != want {
		t.Fatalf("bucket 1 lower bound = %d, want %d", got, want)
	}

	// The whole upper cluster: exactly half the rows.
	if got := h.FracRange(100000, 100099); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("FracRange(upper cluster) = %v, want 0.5", got)
	}
	// Half the upper cluster: a quarter of the rows. Under the inflated
	// width this came out as ~0.00025.
	got := h.FracRange(100000, 100049)
	if math.Abs(got-0.25) > 1e-9 {
		t.Errorf("FracRange(half upper cluster) = %v, want 0.25", got)
	}
	// A range entirely inside the gap provably matches nothing.
	if got := h.FracRange(500, 99999); got != 0 {
		t.Errorf("FracRange(gap) = %v, want 0", got)
	}
	// A range spanning the gap plus the upper cluster: still half the rows.
	if got := h.FracRange(150, 100099); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("FracRange(gap+upper) = %v, want 0.5", got)
	}
}

func TestFracRangeGapRegressionManyBuckets(t *testing.T) {
	// Sparse/skewed column: powers of two. Every inter-bucket gap used to be
	// absorbed into the following bucket's width.
	var vals []int64
	for i := 0; i < 40; i++ {
		for r := 0; r < 5; r++ {
			vals = append(vals, int64(1)<<uint(i))
		}
	}
	h := BuildHistogram(vals, 8)
	// A full-bucket range must estimate exactly the bucket's row share. With
	// the legacy gap-inflated widths (bucket extent starting at the previous
	// bound + 1) the cover/width ratio came out well below 1, so every
	// bucket following a gap underestimated its own contents.
	for i := range h.Bounds {
		got := h.FracRange(h.Los[i], h.Bounds[i])
		want := float64(h.Counts[i]) / float64(h.Total)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("FracRange(full bucket %d) = %g, want exactly %g", i, got, want)
		}
	}
	// Sum over disjoint per-bucket extents must still cover all rows.
	sum := 0.0
	for i := range h.Bounds {
		sum += h.FracRange(h.Los[i], h.Bounds[i])
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum of per-bucket FracRange = %v, want 1", sum)
	}
}

func TestFracRangeExtremeValues(t *testing.T) {
	// Bounds at the int64 extremes: the legacy code computed the next
	// bucket's lower bound as bound+1, overflowing at MaxInt64, and bucket
	// widths as int64 differences, overflowing across the full domain.
	vals := []int64{math.MinInt64, math.MinInt64, 0, math.MaxInt64, math.MaxInt64}
	h := BuildHistogram(vals, 3)
	if got := h.FracRange(math.MinInt64, math.MaxInt64); math.Abs(got-1) > 1e-9 {
		t.Errorf("FracRange(full domain) = %v, want 1", got)
	}
	if got := h.FracRange(math.MaxInt64, math.MaxInt64); got <= 0 {
		t.Errorf("FracRange(MaxInt64 point) = %v, want > 0", got)
	}
	if got := h.FracRange(math.MinInt64, math.MinInt64); got <= 0 {
		t.Errorf("FracRange(MinInt64 point) = %v, want > 0", got)
	}
	// A point in the inter-bucket gap between MinInt64 and the next
	// bucket's lower bound (0) provably matches nothing.
	if got := h.FracRange(-5, -5); got != 0 {
		t.Errorf("FracRange(gap point) = %v, want 0", got)
	}
	// A point inside a bucket spanning nearly the whole domain: a tiny but
	// finite, non-negative density (no overflow to garbage).
	if got := h.FracRange(42, 42); got < 0 || math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("FracRange(wide-bucket point) = %v, want small finite", got)
	}
}

func TestLegacyHistogramWithoutLosStillWorks(t *testing.T) {
	// Hand-constructed histogram without Los (as older callers might build):
	// lowerOf falls back to the bound+1 derivation, saturating at MaxInt64.
	h := &Histogram{
		Lo:       0,
		Bounds:   []int64{9, math.MaxInt64},
		Counts:   []int{10, 10},
		Distinct: []int{10, 10},
		Total:    20,
	}
	if got := h.FracRange(0, 9); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("legacy FracRange(0,9) = %v, want 0.5", got)
	}
	// Must not panic or overflow; the second bucket spans 10..MaxInt64.
	if got := h.FracRange(10, math.MaxInt64); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("legacy FracRange(10,MaxInt64) = %v, want 0.5", got)
	}
}

func TestSelectivityEqGapValue(t *testing.T) {
	s := BuildStats(gappyValues(), 2, 0)
	if got := s.SelectivityEq(50); got <= 0 {
		t.Errorf("SelectivityEq(present value) = %v, want > 0", got)
	}
	// In-range but in the inter-bucket gap: provably absent.
	if got := s.SelectivityEq(50000); got != 0 {
		t.Errorf("SelectivityEq(gap value) = %v, want 0", got)
	}
}

func TestBuildHistogramLosMatchBuckets(t *testing.T) {
	vals := gappyValues()
	for _, buckets := range []int{1, 2, 3, 7, 50} {
		h := BuildHistogram(vals, buckets)
		if len(h.Los) != len(h.Bounds) {
			t.Fatalf("buckets=%d: len(Los)=%d != len(Bounds)=%d", buckets, len(h.Los), len(h.Bounds))
		}
		if h.Los[0] != h.Lo {
			t.Errorf("buckets=%d: Los[0]=%d != Lo=%d", buckets, h.Los[0], h.Lo)
		}
		for i := range h.Bounds {
			if h.Los[i] > h.Bounds[i] {
				t.Errorf("buckets=%d: bucket %d has Lo %d > Hi %d", buckets, i, h.Los[i], h.Bounds[i])
			}
			if i > 0 && h.Los[i] <= h.Bounds[i-1] {
				t.Errorf("buckets=%d: bucket %d lower %d overlaps previous bound %d", buckets, i, h.Los[i], h.Bounds[i-1])
			}
		}
	}
}
