package catalog

import (
	"fmt"
	"sort"

	"ml4db/internal/storage"
)

// IsDisk reports whether the table's rows live in a disk heap file rather
// than in-memory column arrays.
func (t *Table) IsDisk() bool { return t.Disk != nil }

// NumDiskPages returns the heap-file page count backing the table, or 0 for
// an in-memory table — the quantity the optimizer's I/O cost term scales
// with.
func (t *Table) NumDiskPages() int {
	if t.Disk == nil {
		return 0
	}
	return t.Disk.NumPages()
}

// SpillToDisk moves the table's rows into a heap file at path, cached
// through pool, and drops the in-memory column arrays. Column statistics
// and secondary indexes are kept: stats were computed over the same rows,
// and index row ids remain valid because the spill appends rows in order
// into empty pages (row id == row position).
func (t *Table) SpillToDisk(path string, pool *storage.Pool) error {
	if t.Disk != nil {
		return fmt.Errorf("catalog: table %s is already disk-backed", t.Name)
	}
	tf, err := storage.CreateTableFile(path, len(t.Columns), pool)
	if err != nil {
		return err
	}
	nRows := t.NumRows()
	row := make([]int64, len(t.Columns))
	for r := 0; r < nRows; r++ {
		for c := range row {
			row[c] = t.Data[c][r]
		}
		rowID, err := tf.AppendRow(row)
		if err != nil {
			return err
		}
		if rowID != int64(r) {
			return fmt.Errorf("catalog: spill of %s mapped row %d to rowid %d", t.Name, r, rowID)
		}
	}
	if err := tf.Flush(); err != nil {
		return err
	}
	t.Disk = tf
	t.Data = nil
	return nil
}

// ColumnValues reads one full column, from memory or through the disk
// table's buffer pool — the accessor ANALYZE and index builds use so they
// work on either backing.
func (t *Table) ColumnValues(col int) ([]int64, error) {
	if col < 0 || col >= len(t.Columns) {
		return nil, fmt.Errorf("catalog: column %d out of range of %s", col, t.Name)
	}
	if t.Disk != nil {
		return t.Disk.ColumnValues(col)
	}
	return t.Data[col], nil
}

// AnalyzeTableIO computes per-column statistics for a table of either
// backing, reading disk tables through their buffer pool. It is the
// error-returning counterpart of AnalyzeTable (which skips disk tables
// because reading them can fail).
func AnalyzeTableIO(t *Table, buckets, sampleSize int) error {
	for i := range t.Columns {
		vals, err := t.ColumnValues(i)
		if err != nil {
			return fmt.Errorf("catalog: analyzing %s.%s: %w", t.Name, t.Columns[i].Name, err)
		}
		t.Columns[i].Stats = BuildStats(vals, buckets, sampleSize)
	}
	return nil
}

// BuildSecondaryIndexIO constructs the index over t's column col for a
// table of either backing; disk tables are scanned through their buffer
// pool, indexing heap row ids.
func BuildSecondaryIndexIO(t *Table, col int) (*SecondaryIndex, error) {
	if t.Disk == nil {
		return BuildSecondaryIndex(t, col), nil
	}
	ix := &SecondaryIndex{Col: col}
	err := t.Disk.Scan(func(rowID int64, row []int64) error {
		if rowID > 1<<31-1 {
			return fmt.Errorf("catalog: row id %d of %s overflows the index's int32 row ids", rowID, t.Name)
		}
		ix.vals = append(ix.vals, row[col])
		ix.rows = append(ix.rows, int32(rowID))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Sort(byVal{ix})
	return ix, nil
}
