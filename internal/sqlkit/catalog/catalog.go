package catalog

import (
	"fmt"
	"sort"

	"ml4db/internal/storage"
)

// Column describes one attribute of a table.
type Column struct {
	Name string
	// Stats are computed by AnalyzeTable and may be nil before analysis.
	Stats *ColumnStats
}

// VirtualSource produces the rows of a virtual (system) table on demand.
// The executor snapshots VirtualRows at scan time, so a virtual table always
// reflects the provider's current state; implementations must return fresh
// row slices the executor may retain, in a deterministic order.
type VirtualSource interface {
	// VirtualNumRows returns the current row count (the optimizer's input).
	VirtualNumRows() int
	// VirtualRows materializes the current rows, one fresh slice per row.
	VirtualRows() [][]int64
}

// Table is a column-major relation. Rows live in the in-memory Data arrays,
// in a disk heap file read through a buffer pool after SpillToDisk (see
// disk.go), or — for system views — are produced on demand by a
// VirtualSource; exactly one backing is active at a time.
type Table struct {
	Name    string
	Columns []Column
	// Data[c][r] is the value of column c in row r (nil when disk-backed or
	// virtual).
	Data [][]int64
	// Disk, when non-nil, is the heap file backing the table's rows.
	Disk *storage.TableFile
	// Virtual, when non-nil, produces the table's rows on demand (read-only:
	// AppendRow refuses virtual tables).
	Virtual VirtualSource
	// indexes holds secondary indexes by column (see secondary.go).
	indexes map[int]*SecondaryIndex
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if t.Virtual != nil {
		return t.Virtual.VirtualNumRows()
	}
	if t.Disk != nil {
		return t.Disk.NumRows()
	}
	if len(t.Data) == 0 {
		return 0
	}
	return len(t.Data[0])
}

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.Columns) }

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// AppendRow adds one row; vals must have one entry per column.
func (t *Table) AppendRow(vals []int64) error {
	if t.Virtual != nil {
		return fmt.Errorf("catalog: %s is a virtual table (read-only)", t.Name)
	}
	if len(vals) != len(t.Columns) {
		return fmt.Errorf("catalog: row width %d != %d columns of %s", len(vals), len(t.Columns), t.Name)
	}
	if t.Disk != nil {
		_, err := t.Disk.AppendRow(vals)
		return err
	}
	for c, v := range vals {
		t.Data[c] = append(t.Data[c], v)
	}
	return nil
}

// NewTable constructs an empty table with the given column names.
func NewTable(name string, colNames ...string) *Table {
	t := &Table{Name: name}
	for _, cn := range colNames {
		t.Columns = append(t.Columns, Column{Name: cn})
	}
	t.Data = make([][]int64, len(colNames))
	return t
}

// Catalog is a named collection of tables — the database.
type Catalog struct {
	Tables []*Table
	byName map[string]int
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byName: make(map[string]int)}
}

// Add registers a table and returns its ID. Adding a duplicate name is an
// error.
func (c *Catalog) Add(t *Table) (int, error) {
	if _, dup := c.byName[t.Name]; dup {
		return 0, fmt.Errorf("catalog: duplicate table %q", t.Name)
	}
	id := len(c.Tables)
	c.Tables = append(c.Tables, t)
	c.byName[t.Name] = id
	return id, nil
}

// DropLast removes the table with the given ID, which must be the most
// recently added one — the narrow removal what-if probes need: a transient
// hypothetical table can be added, costed against, and removed again while
// every other table keeps its ID. The caller must ensure no live plan or
// view references the table.
func (c *Catalog) DropLast(id int) error {
	if id != len(c.Tables)-1 {
		return fmt.Errorf("catalog: DropLast(%d): only the last table (%d) can be dropped", id, len(c.Tables)-1)
	}
	delete(c.byName, c.Tables[id].Name)
	c.Tables = c.Tables[:id]
	return nil
}

// MustAdd is Add for construction-time code where duplicates are bugs.
func (c *Catalog) MustAdd(t *Table) int {
	id, err := c.Add(t)
	if err != nil {
		//ml4db:allow nakedpanic "Must variant for construction-time code; Add is the error-returning API"
		panic(err)
	}
	return id
}

// Table returns the table with the given ID.
func (c *Catalog) Table(id int) *Table { return c.Tables[id] }

// ByName returns the table ID for name.
func (c *Catalog) ByName(name string) (int, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// AnalyzeAll computes statistics for every column of every table, like a
// database-wide ANALYZE.
func (c *Catalog) AnalyzeAll(buckets, sampleSize int) {
	for _, t := range c.Tables {
		AnalyzeTable(t, buckets, sampleSize)
	}
}

// AnalyzeTable computes per-column statistics for one table. Disk-backed
// tables are skipped (their stats were computed before the spill); use
// AnalyzeTableIO to re-analyze one through its buffer pool. Virtual tables
// are skipped too: their rows change under the provider, so the planner
// estimates them from row counts and default selectivities.
func AnalyzeTable(t *Table, buckets, sampleSize int) {
	if t.Disk != nil || t.Virtual != nil {
		return
	}
	for i := range t.Columns {
		t.Columns[i].Stats = BuildStats(t.Data[i], buckets, sampleSize)
	}
}

// ColumnStats summarizes a column's value distribution, mirroring the
// statistics a classical optimizer keeps (and that ML4DB systems consume as
// "database statistics" features, §3.1).
type ColumnStats struct {
	Count    int
	Min, Max int64
	// Distinct is an exact distinct count (tables are in memory).
	Distinct int
	// Hist is an equi-depth histogram over the column.
	Hist *Histogram
	// Sample is a deterministic systematic sample of column values.
	Sample []int64
}

// BuildStats computes statistics over the values.
func BuildStats(vals []int64, buckets, sampleSize int) *ColumnStats {
	s := &ColumnStats{Count: len(vals)}
	if len(vals) == 0 {
		s.Hist = &Histogram{}
		return s
	}
	sorted := make([]int64, len(vals))
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	distinct := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			distinct++
		}
	}
	s.Distinct = distinct
	s.Hist = BuildHistogram(sorted, buckets)
	if sampleSize > 0 {
		if sampleSize > len(vals) {
			sampleSize = len(vals)
		}
		step := len(vals) / sampleSize
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(vals) && len(s.Sample) < sampleSize; i += step {
			s.Sample = append(s.Sample, vals[i])
		}
	}
	return s
}

// SelectivityEq estimates the fraction of rows equal to v using the uniform
// frequency assumption within the histogram bucket containing v.
func (s *ColumnStats) SelectivityEq(v int64) float64 {
	if s.Count == 0 || v < s.Min || v > s.Max {
		return 0
	}
	if s.Distinct <= 0 {
		return 0
	}
	// The histogram is built over the full column, so a value falling in a
	// gap between bucket extents provably matches no row.
	if len(s.Hist.Bounds) > 0 && !s.Hist.Covers(v) {
		return 0
	}
	// Classical assumption: each distinct value is equally frequent within
	// its bucket; approximate globally by 1/distinct weighted by the
	// bucket's share of rows.
	frac := s.Hist.FracInBucketOf(v)
	perValue := frac / maxf(1, s.Hist.DistinctInBucketOf(v))
	if perValue <= 0 {
		return 1 / float64(s.Distinct)
	}
	return perValue
}

// SelectivityRange estimates the fraction of rows with lo ≤ value ≤ hi.
func (s *ColumnStats) SelectivityRange(lo, hi int64) float64 {
	if s.Count == 0 || hi < lo {
		return 0
	}
	return s.Hist.FracRange(lo, hi)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
