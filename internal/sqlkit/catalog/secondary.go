package catalog

import "sort"

// SecondaryIndex is a sorted (value, row) index over one column of a table —
// the access path an index advisor recommends building. Lookups cost one
// binary-search probe plus one fetch per matching row, which the executor
// charges separately from sequential scans (random fetches are the classic
// reason what-if advisors overestimate index benefit).
type SecondaryIndex struct {
	Col  int
	vals []int64
	rows []int32
	// Hypothetical marks a what-if index: it carries the column and projected
	// size but no entries, so the optimizer costs plans through it while the
	// executor refuses to scan it. Index advisors use hypothetical indexes to
	// cost a candidate without paying its build.
	Hypothetical bool
	hypoRows     int
}

// BuildSecondaryIndex constructs the index over t's column col.
func BuildSecondaryIndex(t *Table, col int) *SecondaryIndex {
	n := t.NumRows()
	ix := &SecondaryIndex{
		Col:  col,
		vals: make([]int64, n),
		rows: make([]int32, n),
	}
	for r := 0; r < n; r++ {
		ix.vals[r] = t.Data[col][r]
		ix.rows[r] = int32(r)
	}
	sort.Sort(byVal{ix})
	return ix
}

// NewHypotheticalIndex returns a what-if index over t's column col, sized as
// if it were built now. Attach it with AddIndex to make the optimizer
// consider index plans, cost them, and detach it with DropIndex afterwards;
// executing a plan through it is an error.
func NewHypotheticalIndex(t *Table, col int) *SecondaryIndex {
	return &SecondaryIndex{Col: col, Hypothetical: true, hypoRows: t.NumRows()}
}

type byVal struct{ ix *SecondaryIndex }

func (b byVal) Len() int { return len(b.ix.vals) }
func (b byVal) Less(i, j int) bool {
	if b.ix.vals[i] != b.ix.vals[j] {
		return b.ix.vals[i] < b.ix.vals[j]
	}
	return b.ix.rows[i] < b.ix.rows[j]
}
func (b byVal) Swap(i, j int) {
	b.ix.vals[i], b.ix.vals[j] = b.ix.vals[j], b.ix.vals[i]
	b.ix.rows[i], b.ix.rows[j] = b.ix.rows[j], b.ix.rows[i]
}

// Len returns the number of indexed entries (the projected count for a
// hypothetical index).
func (ix *SecondaryIndex) Len() int {
	if ix.Hypothetical {
		return ix.hypoRows
	}
	return len(ix.vals)
}

// RangeRows returns the row ids with column value in [lo, hi], in index
// order.
func (ix *SecondaryIndex) RangeRows(lo, hi int64) []int32 {
	start := sort.Search(len(ix.vals), func(i int) bool { return ix.vals[i] >= lo })
	end := sort.Search(len(ix.vals), func(i int) bool { return ix.vals[i] > hi })
	if end <= start {
		return nil
	}
	return ix.rows[start:end]
}

// SizeBytes reports the index footprint (the projected footprint for a
// hypothetical index).
func (ix *SecondaryIndex) SizeBytes() int { return ix.Len() * 12 }

// AddIndex attaches a secondary index to the table, replacing any previous
// index on the same column.
func (t *Table) AddIndex(ix *SecondaryIndex) {
	if t.indexes == nil {
		t.indexes = map[int]*SecondaryIndex{}
	}
	t.indexes[ix.Col] = ix
}

// DropIndex removes the index on col, if any.
func (t *Table) DropIndex(col int) { delete(t.indexes, col) }

// Index returns the secondary index on col, or nil.
func (t *Table) Index(col int) *SecondaryIndex {
	return t.indexes[col]
}

// IndexedCols lists the columns with secondary indexes.
func (t *Table) IndexedCols() []int {
	var out []int
	for c := range t.indexes {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}
