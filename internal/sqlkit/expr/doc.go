// Package expr defines the predicate language of the relational engine:
// single-column comparison and range predicates, and equi-join conditions.
// Predicates reference columns positionally so plans can be evaluated without
// name resolution on the hot path.
package expr
