package expr

import (
	"testing"
	"testing/quick"
)

func TestPredEval(t *testing.T) {
	cases := []struct {
		p    Pred
		v    int64
		want bool
	}{
		{Pred{Op: EQ, Lo: 5}, 5, true},
		{Pred{Op: EQ, Lo: 5}, 6, false},
		{Pred{Op: NE, Lo: 5}, 6, true},
		{Pred{Op: LT, Lo: 5}, 4, true},
		{Pred{Op: LT, Lo: 5}, 5, false},
		{Pred{Op: LE, Lo: 5}, 5, true},
		{Pred{Op: GT, Lo: 5}, 6, true},
		{Pred{Op: GE, Lo: 5}, 5, true},
		{Pred{Op: GE, Lo: 5}, 4, false},
		{Pred{Op: BETWEEN, Lo: 2, Hi: 4}, 3, true},
		{Pred{Op: BETWEEN, Lo: 2, Hi: 4}, 2, true},
		{Pred{Op: BETWEEN, Lo: 2, Hi: 4}, 4, true},
		{Pred{Op: BETWEEN, Lo: 2, Hi: 4}, 5, false},
	}
	for _, c := range cases {
		if got := c.p.Eval(c.v); got != c.want {
			t.Errorf("%v.Eval(%d) = %v, want %v", c.p, c.v, got, c.want)
		}
	}
}

// TestRangeConsistentWithEval: for interval-expressible predicates, Eval(v)
// must equal v ∈ Range.
func TestRangeConsistentWithEval(t *testing.T) {
	const domLo, domHi = int64(-100), int64(100)
	ops := []Op{EQ, LT, LE, GT, GE, BETWEEN}
	f := func(rawOp uint8, lo, hi int8, v int8) bool {
		p := Pred{Op: ops[int(rawOp)%len(ops)], Lo: int64(lo), Hi: int64(hi)}
		if p.Op == BETWEEN && p.Hi < p.Lo {
			p.Lo, p.Hi = p.Hi, p.Lo
		}
		rlo, rhi, ok := p.Range(domLo, domHi)
		if !ok {
			return false // all listed ops are interval-expressible
		}
		// Range clamps to the domain, so probe only in-domain values.
		val := int64(v) % (domHi + 1)
		inRange := val >= rlo && val <= rhi
		return p.Eval(val) == inRange
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRangeNEIsNotInterval(t *testing.T) {
	p := Pred{Op: NE, Lo: 3}
	if _, _, ok := p.Range(0, 10); ok {
		t.Error("NE should not be interval-expressible")
	}
}

func TestJoinCondTouches(t *testing.T) {
	j := JoinCond{LeftTable: 0, LeftCol: 1, RightTable: 2, RightCol: 0}
	if !j.Touches(0) || !j.Touches(2) || j.Touches(1) {
		t.Error("Touches wrong")
	}
}

func TestStringRendering(t *testing.T) {
	p := Pred{Col: 3, Op: BETWEEN, Lo: 1, Hi: 9}
	if p.String() != "c3 between 1 and 9" {
		t.Errorf("Pred.String = %q", p.String())
	}
	j := JoinCond{LeftTable: 0, LeftCol: 1, RightTable: 2, RightCol: 3}
	if j.String() != "t0.c1 = t2.c3" {
		t.Errorf("JoinCond.String = %q", j.String())
	}
	if EQ.String() != "=" || BETWEEN.String() != "between" {
		t.Error("Op.String wrong")
	}
}
