package expr

import "fmt"

// Op is a comparison operator.
type Op int

// Supported comparison operators.
const (
	EQ Op = iota
	NE
	LT
	LE
	GT
	GE
	BETWEEN // inclusive [Lo, Hi]
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case BETWEEN:
		return "between"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Pred is a predicate on one column of a base table: col Op Lo (or
// BETWEEN Lo AND Hi).
type Pred struct {
	Col    int // column index within the base table
	Op     Op
	Lo, Hi int64 // Hi used only by BETWEEN
}

// Eval reports whether value v satisfies the predicate.
func (p Pred) Eval(v int64) bool {
	switch p.Op {
	case EQ:
		return v == p.Lo
	case NE:
		return v != p.Lo
	case LT:
		return v < p.Lo
	case LE:
		return v <= p.Lo
	case GT:
		return v > p.Lo
	case GE:
		return v >= p.Lo
	case BETWEEN:
		return v >= p.Lo && v <= p.Hi
	default:
		return false
	}
}

// String renders the predicate for debugging and plan display.
func (p Pred) String() string {
	if p.Op == BETWEEN {
		return fmt.Sprintf("c%d between %d and %d", p.Col, p.Lo, p.Hi)
	}
	return fmt.Sprintf("c%d %s %d", p.Col, p.Op, p.Lo)
}

// Range returns the value interval [lo, hi] selected by the predicate,
// clamped to the domain [domLo, domHi]. ok is false when the predicate is a
// disequality (NE), which is not an interval.
func (p Pred) Range(domLo, domHi int64) (lo, hi int64, ok bool) {
	switch p.Op {
	case EQ:
		return p.Lo, p.Lo, true
	case LT:
		return domLo, p.Lo - 1, true
	case LE:
		return domLo, p.Lo, true
	case GT:
		return p.Lo + 1, domHi, true
	case GE:
		return p.Lo, domHi, true
	case BETWEEN:
		return p.Lo, p.Hi, true
	default:
		return 0, 0, false
	}
}

// JoinCond is an equi-join condition between a column of one relation and a
// column of another. Tables are referenced by their position in the query's
// table list, not by catalog ID, so the same template can bind different
// tables.
type JoinCond struct {
	LeftTable  int // index into Query.Tables
	LeftCol    int
	RightTable int
	RightCol   int
}

// String renders the join condition.
func (j JoinCond) String() string {
	return fmt.Sprintf("t%d.c%d = t%d.c%d", j.LeftTable, j.LeftCol, j.RightTable, j.RightCol)
}

// Touches reports whether the condition references table position t.
func (j JoinCond) Touches(t int) bool { return j.LeftTable == t || j.RightTable == t }
