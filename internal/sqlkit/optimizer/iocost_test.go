package optimizer

import (
	"path/filepath"
	"testing"

	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/storage"
)

type fixedMissRate float64

func (f fixedMissRate) MissRate() float64 { return float64(f) }

func diskCatalog(t *testing.T, nrows int) *catalog.Catalog {
	t.Helper()
	cat := catalog.NewCatalog()
	tb := catalog.NewTable("t", "a", "b")
	for r := 0; r < nrows; r++ {
		if err := tb.AppendRow([]int64{int64(r), int64(r % 11)}); err != nil {
			t.Fatal(err)
		}
	}
	catalog.AnalyzeTable(tb, 16, 64)
	pool := storage.NewPool(storage.PoolOptions{Capacity: 4})
	if err := tb.SpillToDisk(filepath.Join(t.TempDir(), "t.tbl"), pool); err != nil {
		t.Fatal(err)
	}
	cat.MustAdd(tb)
	return cat
}

func TestScanCostIncludesIOForDiskTables(t *testing.T) {
	cat := diskCatalog(t, 2000)
	pages := float64(cat.Table(0).NumDiskPages())
	if pages == 0 {
		t.Fatal("table has no disk pages")
	}
	o := New(cat)
	o.Cost = TrueCostParams()
	q := plan.NewQuery(0)

	// Without pool feedback the optimizer assumes a cold cache.
	p, err := o.Plan(q, HintSet{})
	if err != nil {
		t.Fatal(err)
	}
	wantCold := o.Cost.ScanCost(2000) + 1*pages
	if p.EstCost != wantCold {
		t.Fatalf("cold EstCost = %v, want %v", p.EstCost, wantCold)
	}

	// A warm pool shrinks the I/O term by the observed miss rate.
	o.IO = fixedMissRate(0.25)
	p, err = o.Plan(q, HintSet{})
	if err != nil {
		t.Fatal(err)
	}
	wantWarm := o.Cost.ScanCost(2000) + 1*pages*0.25
	if p.EstCost != wantWarm {
		t.Fatalf("warm EstCost = %v, want %v", p.EstCost, wantWarm)
	}

	// Annotate applies the same term to externally built plans.
	n := plan.NewScan(0, 0, nil)
	if got := o.Annotate(q, n); got != wantWarm {
		t.Fatalf("Annotate = %v, want %v", got, wantWarm)
	}
}

func TestPlanCostActualUsesRecordedMisses(t *testing.T) {
	cat := diskCatalog(t, 500)
	o := New(cat)
	o.Cost = TrueCostParams()
	n := plan.NewScan(0, 0, nil)
	n.ActualRows = 500
	n.ActualPageMisses = 3
	want := o.Cost.ScanCost(500) + 3
	if got := o.PlanCostActual(n); got != want {
		t.Fatalf("PlanCostActual = %v, want %v", got, want)
	}
}

func TestPoolSatisfiesIOStats(t *testing.T) {
	var io IOStats = storage.NewPool(storage.PoolOptions{Capacity: 2})
	if io.MissRate() != 1 {
		t.Fatalf("cold pool miss rate = %v", io.MissRate())
	}
}
