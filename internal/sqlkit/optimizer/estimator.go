package optimizer

import (
	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
)

// HistEstimator is the classical histogram-based cardinality estimator with
// per-predicate independence and the System-R join selectivity formula
// 1/max(V(L.a), V(R.b)). Its systematic errors on correlated data are the
// weakness the learned estimators of §3.3 target.
type HistEstimator struct {
	Cat *catalog.Catalog
}

var _ CardEstimator = (*HistEstimator)(nil)

// ScanRows implements CardEstimator.
func (h *HistEstimator) ScanRows(q *plan.Query, pos int) float64 {
	t := h.Cat.Table(q.Tables[pos])
	rows := float64(t.NumRows())
	sel := 1.0
	for _, f := range q.Filters[pos] {
		sel *= h.predSelectivity(t, f)
	}
	est := rows * sel
	if est < 1 {
		est = 1
	}
	return est
}

func (h *HistEstimator) predSelectivity(t *catalog.Table, f expr.Pred) float64 {
	st := t.Columns[f.Col].Stats
	if st == nil || st.Count == 0 {
		return 0.1 // PostgreSQL-style default guess
	}
	switch f.Op {
	case expr.EQ:
		return st.SelectivityEq(f.Lo)
	case expr.NE:
		return 1 - st.SelectivityEq(f.Lo)
	default:
		lo, hi, ok := f.Range(st.Min, st.Max)
		if !ok {
			return 0.1
		}
		return st.SelectivityRange(lo, hi)
	}
}

// JoinSelectivity implements CardEstimator with the System-R formula.
func (h *HistEstimator) JoinSelectivity(q *plan.Query, cond expr.JoinCond) float64 {
	lt := h.Cat.Table(q.Tables[cond.LeftTable])
	rt := h.Cat.Table(q.Tables[cond.RightTable])
	vl, vr := 1.0, 1.0
	if st := lt.Columns[cond.LeftCol].Stats; st != nil && st.Distinct > 0 {
		vl = float64(st.Distinct)
	}
	if st := rt.Columns[cond.RightCol].Stats; st != nil && st.Distinct > 0 {
		vr = float64(st.Distinct)
	}
	v := vl
	if vr > v {
		v = vr
	}
	return 1 / v
}

// EstimateSubtreeRows estimates the output cardinality of joining the table
// positions in set, under the independence assumption: the product of scan
// estimates times the product of the selectivities of all join conditions
// internal to the set.
func EstimateSubtreeRows(est CardEstimator, q *plan.Query, set []int) float64 {
	in := make(map[int]bool, len(set))
	for _, p := range set {
		in[p] = true
	}
	rows := 1.0
	for _, p := range set {
		rows *= est.ScanRows(q, p)
	}
	for _, c := range q.Joins {
		if in[c.LeftTable] && in[c.RightTable] {
			rows *= est.JoinSelectivity(q, c)
		}
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}
