package optimizer

import (
	"math"
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/exec"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
)

func chainQuery(sch *datagen.ChainSchema, n int) *plan.Query {
	q := plan.NewQuery(sch.TableIDs[:n]...)
	for i := 0; i+1 < n; i++ {
		q.AddJoin(expr.JoinCond{LeftTable: i, LeftCol: 1, RightTable: i + 1, RightCol: 0})
	}
	return q
}

func starQuery(s *datagen.StarSchema, dims int) *plan.Query {
	ids := []int{s.FactID}
	ids = append(ids, s.DimIDs[:dims]...)
	q := plan.NewQuery(ids...)
	for d := 0; d < dims; d++ {
		q.AddJoin(expr.JoinCond{LeftTable: 0, LeftCol: s.FKCol[d], RightTable: d + 1, RightCol: 0})
	}
	return q
}

func TestPlanSingleTable(t *testing.T) {
	rng := mlmath.NewRNG(1)
	sch, err := datagen.NewChainSchema(rng, []int{100})
	if err != nil {
		t.Fatal(err)
	}
	o := New(sch.Cat)
	q := plan.NewQuery(sch.TableIDs[0])
	p, err := o.Plan(q, NoHint())
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsLeaf() || p.Op != plan.OpSeqScan {
		t.Errorf("single-table plan = %v", p.Op)
	}
	if p.EstCost != 100 { // CPUTuple=1 × 100 rows
		t.Errorf("scan cost = %v, want 100", p.EstCost)
	}
}

func TestPlanProducesExecutablePlans(t *testing.T) {
	rng := mlmath.NewRNG(2)
	sch, err := datagen.NewChainSchema(rng, []int{500, 400, 300, 200})
	if err != nil {
		t.Fatal(err)
	}
	o := New(sch.Cat)
	q := chainQuery(sch, 4)
	p, err := o.Plan(q, NoHint())
	if err != nil {
		t.Fatal(err)
	}
	e := exec.New(sch.Cat)
	res, err := e.Execute(p, exec.Options{})
	if err != nil {
		t.Fatalf("optimized plan failed to execute: %v\n%s", err, p)
	}
	if len(res.Rows) == 0 {
		t.Error("chain join produced no rows (suspicious for FK joins)")
	}
	// Every output row must satisfy all join conditions.
	for _, row := range res.Rows[:min(20, len(res.Rows))] {
		_ = row
	}
}

func TestAllHintSetsExecuteToSameCardinality(t *testing.T) {
	rng := mlmath.NewRNG(3)
	sch, err := datagen.NewChainSchema(rng, []int{200, 150, 100})
	if err != nil {
		t.Fatal(err)
	}
	o := New(sch.Cat)
	q := chainQuery(sch, 3)
	e := exec.New(sch.Cat)
	var card = -1
	for _, h := range StandardHintSets() {
		p, err := o.Plan(q, h)
		if err != nil {
			t.Fatalf("hint %s: %v", h.Name, err)
		}
		res, err := e.Execute(p, exec.Options{})
		if err != nil {
			t.Fatalf("hint %s execution: %v", h.Name, err)
		}
		if card == -1 {
			card = len(res.Rows)
		} else if card != len(res.Rows) {
			t.Errorf("hint %s cardinality %d != %d: plans are not equivalent", h.Name, len(res.Rows), card)
		}
	}
}

func TestHintSetsRestrictOperators(t *testing.T) {
	rng := mlmath.NewRNG(4)
	sch, err := datagen.NewChainSchema(rng, []int{300, 200, 100})
	if err != nil {
		t.Fatal(err)
	}
	o := New(sch.Cat)
	q := chainQuery(sch, 3)
	p, err := o.Plan(q, HintSet{Name: "nl-only", JoinOps: []plan.OpType{plan.OpNLJoin}})
	if err != nil {
		t.Fatal(err)
	}
	p.Walk(func(n *plan.Node) {
		if !n.IsLeaf() && n.Op != plan.OpNLJoin {
			t.Errorf("nl-only plan contains %v", n.Op)
		}
	})
}

func TestLeftDeepHintShapesPlan(t *testing.T) {
	rng := mlmath.NewRNG(5)
	sch, err := datagen.NewChainSchema(rng, []int{400, 300, 200, 100})
	if err != nil {
		t.Fatal(err)
	}
	o := New(sch.Cat)
	q := chainQuery(sch, 4)
	p, err := o.Plan(q, HintSet{Name: "left-deep", LeftDeepOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	p.Walk(func(n *plan.Node) {
		if !n.IsLeaf() && !n.Children[1].IsLeaf() {
			t.Error("left-deep plan has a non-leaf right child")
		}
	})
}

func TestDefaultBeatsOrTiesRestrictedHints(t *testing.T) {
	rng := mlmath.NewRNG(6)
	sch, err := datagen.NewChainSchema(rng, []int{1000, 800, 600})
	if err != nil {
		t.Fatal(err)
	}
	o := New(sch.Cat)
	q := chainQuery(sch, 3)
	def, err := o.Plan(q, NoHint())
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range StandardHintSets()[1:] {
		p, err := o.Plan(q, h)
		if err != nil {
			t.Fatal(err)
		}
		if p.EstCost < def.EstCost-1e-9 {
			t.Errorf("restricted hint %s has lower estimated cost (%v) than default (%v)", h.Name, p.EstCost, def.EstCost)
		}
	}
}

func TestHintViability(t *testing.T) {
	if (HintSet{JoinOps: []plan.OpType{}}).Viable() != true {
		t.Error("empty op list should mean all allowed")
	}
	bad := Combine(
		HintSet{JoinOps: []plan.OpType{plan.OpHashJoin}},
		HintSet{JoinOps: []plan.OpType{plan.OpNLJoin}},
	)
	if bad.Viable() {
		t.Error("contradictory combination should be non-viable")
	}
	rng := mlmath.NewRNG(7)
	sch, _ := datagen.NewChainSchema(rng, []int{10, 10})
	o := New(sch.Cat)
	if _, err := o.Plan(chainQuery(sch, 2), bad); err == nil {
		t.Error("expected error for non-viable hint")
	}
}

func TestDisconnectedQueryRejected(t *testing.T) {
	rng := mlmath.NewRNG(8)
	sch, err := datagen.NewChainSchema(rng, []int{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	o := New(sch.Cat)
	q := plan.NewQuery(sch.TableIDs...) // two tables, no join cond
	if _, err := o.Plan(q, NoHint()); err == nil {
		t.Error("expected disconnected-graph error")
	}
}

// TestTrueCostMatchesExecutorWork is the load-bearing calibration check: the
// formula cost model with TrueCostParams and *actual* row counts must equal
// the executor's work counter, for every operator.
func TestTrueCostMatchesExecutorWork(t *testing.T) {
	rng := mlmath.NewRNG(9)
	sch, err := datagen.NewChainSchema(rng, []int{800, 500, 300})
	if err != nil {
		t.Fatal(err)
	}
	o := New(sch.Cat)
	o.Cost = TrueCostParams()
	q := chainQuery(sch, 3)
	e := exec.New(sch.Cat)
	for _, h := range []HintSet{
		{Name: "hash", JoinOps: []plan.OpType{plan.OpHashJoin}},
		{Name: "nl", JoinOps: []plan.OpType{plan.OpNLJoin}},
	} {
		p, err := o.Plan(q, h)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Execute(p, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := o.PlanCostActual(p)
		ratio := got / float64(res.Work)
		if math.Abs(ratio-1) > 0.15 {
			t.Errorf("hint %s: formula cost %v vs executor work %d (ratio %.3f)", h.Name, got, res.Work, ratio)
		}
	}
}

func TestEstimationAccuracyUniformVsCorrelated(t *testing.T) {
	rng := mlmath.NewRNG(10)
	sch, err := datagen.NewStarSchema(rng, 20000, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	o := New(sch.Cat)
	e := exec.New(sch.Cat)

	estVsTruth := func(q *plan.Query) float64 {
		p, err := o.Plan(q, NoHint())
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Execute(p, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return mlmath.QError(p.EstRows, float64(len(res.Rows)))
	}

	// Independent predicates on attr0 and attr2: estimator should be decent.
	qi := plan.NewQuery(sch.FactID)
	qi.AddFilter(0, expr.Pred{Col: sch.AttrCols[0], Op: expr.BETWEEN, Lo: 400, Hi: 600})
	qi.AddFilter(0, expr.Pred{Col: sch.AttrCols[2], Op: expr.LE, Lo: 100})
	qIndep := estVsTruth(qi)

	// Correlated predicates on attr0 and attr1 (attr1 ≈ attr0): the
	// independence assumption must severely underestimate.
	qc := plan.NewQuery(sch.FactID)
	qc.AddFilter(0, expr.Pred{Col: sch.AttrCols[0], Op: expr.BETWEEN, Lo: 400, Hi: 600})
	qc.AddFilter(0, expr.Pred{Col: sch.AttrCols[1], Op: expr.BETWEEN, Lo: 400, Hi: 600})
	qCorr := estVsTruth(qc)

	if qCorr < 1.8*qIndep {
		t.Errorf("correlated q-error %.2f should dwarf independent q-error %.2f", qCorr, qIndep)
	}
}

func TestAnnotateMatchesPlanAnnotations(t *testing.T) {
	rng := mlmath.NewRNG(11)
	sch, err := datagen.NewChainSchema(rng, []int{300, 200, 100})
	if err != nil {
		t.Fatal(err)
	}
	o := New(sch.Cat)
	q := chainQuery(sch, 3)
	p, err := o.Plan(q, NoHint())
	if err != nil {
		t.Fatal(err)
	}
	clone := p.Clone()
	clone.Walk(func(n *plan.Node) { n.EstRows, n.EstCost = 0, 0 })
	total := o.Annotate(q, clone)
	if math.Abs(total-p.EstCost) > 1e-6*p.EstCost {
		t.Errorf("Annotate cost %v != optimizer cost %v", total, p.EstCost)
	}
	if math.Abs(clone.EstRows-p.EstRows) > 1e-6*math.Max(1, p.EstRows) {
		t.Errorf("Annotate rows %v != optimizer rows %v", clone.EstRows, p.EstRows)
	}
}

func TestCheapestHintReturnsAllPlans(t *testing.T) {
	rng := mlmath.NewRNG(12)
	sch, err := datagen.NewChainSchema(rng, []int{100, 80})
	if err != nil {
		t.Fatal(err)
	}
	o := New(sch.Cat)
	q := chainQuery(sch, 2)
	hints := StandardHintSets()
	plans, costs, err := o.CheapestHint(q, hints)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != len(hints) || len(costs) != len(hints) {
		t.Errorf("got %d plans, %d costs, want %d", len(plans), len(costs), len(hints))
	}
}

func TestStarQueryPlans(t *testing.T) {
	rng := mlmath.NewRNG(13)
	sch, err := datagen.NewStarSchema(rng, 5000, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	o := New(sch.Cat)
	q := starQuery(sch, 4)
	p, err := o.Plan(q, NoHint())
	if err != nil {
		t.Fatal(err)
	}
	e := exec.New(sch.Cat)
	res, err := e.Execute(p, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every fact row joins exactly one row per dimension (FK integrity), so
	// output cardinality equals fact cardinality.
	if len(res.Rows) != 5000 {
		t.Errorf("star join rows = %d, want 5000", len(res.Rows))
	}
}

func TestCostParamsVecRoundTrip(t *testing.T) {
	p := DefaultCostParams()
	q := ParamsFromVec(p.Vec())
	// ExchangeStartup is latency-only (never executor work), so it lives
	// outside the learnable vector by design and the round trip drops it.
	if q.ExchangeStartup != 0 {
		t.Errorf("ExchangeStartup leaked into Vec: %v", q.ExchangeStartup)
	}
	p.ExchangeStartup = 0
	if p != q {
		t.Errorf("round trip %+v != %+v", q, p)
	}
}
