package optimizer

import (
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
)

// TestParallelizeCostsKnob pins the Partitions costing: with parallelism
// available, a big scan partitions (its CPU term divides by the degree, the
// per-shard startup term bounds the degree), the plan's EstCost drops below
// the serial plan's, every assigned degree stays within [1, Parallelism],
// and ineligible operators stay serial.
func TestParallelizeCostsKnob(t *testing.T) {
	rng := mlmath.NewRNG(3)
	sch, err := datagen.NewStarSchema(rng, 4000, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := plan.NewQuery(sch.FactID, sch.DimIDs[0], sch.DimIDs[1])
	q.AddJoin(expr.JoinCond{LeftTable: 0, LeftCol: sch.FKCol[0], RightTable: 1, RightCol: 0})
	q.AddJoin(expr.JoinCond{LeftTable: 0, LeftCol: sch.FKCol[1], RightTable: 2, RightCol: 0})

	serialOpt := New(sch.Cat)
	parOpt := New(sch.Cat)
	parOpt.Parallelism = 8

	serial, err := serialOpt.Plan(q, NoHint())
	if err != nil {
		t.Fatal(err)
	}
	par, err := parOpt.Plan(q, NoHint())
	if err != nil {
		t.Fatal(err)
	}

	serial.Walk(func(n *plan.Node) {
		if n.Partitions > 1 {
			t.Errorf("serial optimizer assigned Partitions=%d to %v", n.Partitions, n.Op)
		}
	})
	sawParallel := false
	par.Walk(func(n *plan.Node) {
		if n.Partitions < 1 || n.Partitions > 8 {
			t.Errorf("%v: Partitions=%d outside [1, 8]", n.Op, n.Partitions)
		}
		if n.Partitions > 1 {
			sawParallel = true
			switch n.Op {
			case plan.OpIndexScan, plan.OpMergeJoin:
				t.Errorf("%v partitioned; it never should be", n.Op)
			}
		}
	})
	if !sawParallel {
		t.Error("no operator partitioned despite Parallelism=8 and a 4000-row fact scan")
	}
	if par.EstCost >= serial.EstCost {
		t.Errorf("parallel plan cost %.0f not below serial %.0f", par.EstCost, serial.EstCost)
	}
}

// TestParallelizeSkipsSmallScans pins the startup term: when the whole query
// is tiny, paying ExchangeStartup per shard never wins and every node stays
// serial.
func TestParallelizeSkipsSmallScans(t *testing.T) {
	rng := mlmath.NewRNG(5)
	sch, err := datagen.NewStarSchema(rng, 20, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt := New(sch.Cat)
	opt.Parallelism = 8
	q := plan.NewQuery(sch.FactID)
	p, err := opt.Plan(q, NoHint())
	if err != nil {
		t.Fatal(err)
	}
	p.Walk(func(n *plan.Node) {
		if n.Partitions > 1 {
			t.Errorf("%v: Partitions=%d on a 20-row table; startup should dominate", n.Op, n.Partitions)
		}
	})
}

// TestProbeStepsMatchesExecutorLog2 pins the probe-count alignment fixed by
// this sweep: probeSteps mirrors exec.log2int (floor(log2 n) + 1, min 1) and
// nLogN mirrors the executor's merge-sort charge (m·floor(log2 m), m for
// m ≤ 1) — no ceil/floor off-by-ones between cost model and executor.
func TestProbeStepsMatchesExecutorLog2(t *testing.T) {
	probeCases := map[float64]float64{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 1023: 10, 1024: 11}
	for n, want := range probeCases {
		if got := probeSteps(n); got != want {
			t.Errorf("probeSteps(%v) = %v, want %v", n, got, want)
		}
	}
	nLogNCases := map[float64]float64{0: 0, 1: 1, 2: 2, 3: 3, 4: 8, 7: 14, 8: 24, 16: 64}
	for m, want := range nLogNCases {
		if got := nLogN(m); got != want {
			t.Errorf("nLogN(%v) = %v, want %v", m, got, want)
		}
	}
}
