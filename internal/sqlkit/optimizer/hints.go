package optimizer

import "ml4db/internal/sqlkit/plan"

// HintSet constrains the optimizer's search space, mirroring the per-query
// hint sets BAO selects among (e.g. "disable nested loop joins"). An empty
// JoinOps list means all operators are allowed.
type HintSet struct {
	Name         string
	JoinOps      []plan.OpType
	LeftDeepOnly bool
	// NoIndexScan forbids secondary-index access paths.
	NoIndexScan bool
	// denyAllJoins marks a contradictory Combine result (empty operator
	// intersection), which would otherwise be indistinguishable from the
	// "no restriction" empty JoinOps.
	denyAllJoins bool
}

// Allows reports whether the hint set permits join operator op.
func (h HintSet) Allows(op plan.OpType) bool {
	if h.denyAllJoins {
		return false
	}
	if len(h.JoinOps) == 0 {
		return true
	}
	for _, o := range h.JoinOps {
		if o == op {
			return true
		}
	}
	return false
}

// NoHint is the unconstrained search space (the expert optimizer's default).
func NoHint() HintSet { return HintSet{Name: "default"} }

// StandardHintSets is the hand-crafted hint collection a BAO deployment
// starts from: each arm disables some operators or plan shapes, exactly the
// kind of collection the paper notes must be hand-crafted per system (and
// that AutoSteer discovers automatically).
func StandardHintSets() []HintSet {
	return []HintSet{
		{Name: "default"},
		{Name: "hash-only", JoinOps: []plan.OpType{plan.OpHashJoin}},
		{Name: "no-nl", JoinOps: []plan.OpType{plan.OpHashJoin, plan.OpMergeJoin}},
		{Name: "nl-only", JoinOps: []plan.OpType{plan.OpNLJoin}},
		{Name: "merge-only", JoinOps: []plan.OpType{plan.OpMergeJoin}},
		{Name: "left-deep", LeftDeepOnly: true},
		{Name: "left-deep-hash", JoinOps: []plan.OpType{plan.OpHashJoin}, LeftDeepOnly: true},
		{Name: "no-hash", JoinOps: []plan.OpType{plan.OpNLJoin, plan.OpMergeJoin}},
	}
}

// AtomicHints returns the single-knob hints AutoSteer composes greedily.
func AtomicHints() []HintSet {
	return []HintSet{
		{Name: "disable-nl", JoinOps: []plan.OpType{plan.OpHashJoin, plan.OpMergeJoin}},
		{Name: "disable-hash", JoinOps: []plan.OpType{plan.OpNLJoin, plan.OpMergeJoin}},
		{Name: "disable-merge", JoinOps: []plan.OpType{plan.OpHashJoin, plan.OpNLJoin}},
		{Name: "force-left-deep", LeftDeepOnly: true},
		{Name: "disable-indexscan", NoIndexScan: true},
	}
}

// Combine intersects two hint sets: the result allows only join operators
// both allow and is left-deep if either is.
func Combine(a, b HintSet) HintSet {
	out := HintSet{
		Name:         a.Name + "+" + b.Name,
		LeftDeepOnly: a.LeftDeepOnly || b.LeftDeepOnly,
		NoIndexScan:  a.NoIndexScan || b.NoIndexScan,
	}
	for _, op := range plan.AllJoinOps {
		if a.Allows(op) && b.Allows(op) {
			out.JoinOps = append(out.JoinOps, op)
		}
	}
	if len(out.JoinOps) == 0 {
		out.denyAllJoins = true
	}
	return out
}

// Viable reports whether the hint set leaves at least one join operator.
func (h HintSet) Viable() bool {
	for _, op := range plan.AllJoinOps {
		if h.Allows(op) {
			return true
		}
	}
	return false
}
