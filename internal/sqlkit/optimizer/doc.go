// Package optimizer implements the expert query optimizer of the relational
// engine: histogram-based cardinality estimation with independence
// assumptions, a PostgreSQL-style parametric formula cost model, System-R
// dynamic-programming join enumeration, and hint sets that constrain the
// search space (the mechanism BAO and AutoSteer steer, §3.2).
package optimizer
