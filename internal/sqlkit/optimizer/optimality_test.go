package optimizer

import (
	"math"
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
)

// bruteForceBest exhaustively enumerates every connected join tree and
// operator assignment, mirroring the DP's cost recurrence, and returns the
// minimum total cost.
func bruteForceBest(o *Optimizer, q *plan.Query, hint HintSet) float64 {
	n := q.NumTables()
	type state struct {
		cost, rows float64
	}
	memo := map[uint32]state{} // best over ALL split choices, like the DP
	var solve func(mask uint32) (state, bool)
	solve = func(mask uint32) (state, bool) {
		if s, ok := memo[mask]; ok {
			return s, true
		}
		// Singleton: scan.
		if mask&(mask-1) == 0 {
			pos := 0
			for mask>>uint(pos)&1 == 0 {
				pos++
			}
			sp := o.scanPlan(q, pos, hint)
			s := state{cost: sp.cost, rows: sp.rows}
			memo[mask] = s
			return s, true
		}
		best := state{cost: math.Inf(1)}
		found := false
		// All proper splits, both orientations.
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			other := mask ^ sub
			l, okL := solve(sub)
			r, okR := solve(other)
			if !okL || !okR {
				continue
			}
			cond, ok := condBetweenSets(q, sub, other)
			if !ok {
				continue
			}
			if hint.LeftDeepOnly && other&(other-1) != 0 {
				continue
			}
			sel := o.Est.JoinSelectivity(q, cond)
			outRows := l.rows * r.rows * sel
			if outRows < 1 {
				outRows = 1
			}
			for _, op := range plan.AllJoinOps {
				if !hint.Allows(op) {
					continue
				}
				c := l.cost + r.cost + o.Cost.JoinCost(op, l.rows, r.rows, outRows)
				if c < best.cost {
					best = state{cost: c, rows: outRows}
					found = true
				}
			}
		}
		if found {
			memo[mask] = best
		}
		return best, found
	}
	s, ok := solve(uint32(1<<uint(n)) - 1)
	if !ok {
		return math.Inf(1)
	}
	return s.cost
}

func condBetweenSets(q *plan.Query, left, right uint32) (expr.JoinCond, bool) {
	for _, c := range q.Joins {
		lIn := left>>uint(c.LeftTable)&1 == 1
		rIn := right>>uint(c.RightTable)&1 == 1
		if lIn && rIn {
			return c, true
		}
		if left>>uint(c.RightTable)&1 == 1 && right>>uint(c.LeftTable)&1 == 1 {
			return expr.JoinCond{LeftTable: c.RightTable, LeftCol: c.RightCol, RightTable: c.LeftTable, RightCol: c.LeftCol}, true
		}
	}
	return expr.JoinCond{}, false
}

// TestDPFindsOptimalPlans: the DP's plan cost must equal the exhaustive
// minimum on random chain queries under every hint shape.
func TestDPFindsOptimalPlans(t *testing.T) {
	rng := mlmath.NewRNG(1)
	sch, err := datagen.NewChainSchema(rng, []int{800, 600, 400, 300, 200})
	if err != nil {
		t.Fatal(err)
	}
	o := New(sch.Cat)
	o.Cost = TrueCostParams()
	hints := []HintSet{
		NoHint(),
		{Name: "hash-only", JoinOps: []plan.OpType{plan.OpHashJoin}},
		{Name: "left-deep", LeftDeepOnly: true},
	}
	for trial := 0; trial < 15; trial++ {
		n := 3 + trial%3
		ids := sch.TableIDs[:n]
		q := plan.NewQuery(ids...)
		for i := 0; i+1 < n; i++ {
			q.AddJoin(expr.JoinCond{LeftTable: i, LeftCol: 1, RightTable: i + 1, RightCol: 0})
		}
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.6 {
				c := int64(rng.Intn(900))
				q.AddFilter(i, expr.Pred{Col: 2, Op: expr.BETWEEN, Lo: c, Hi: c + int64(rng.Intn(300))})
			}
		}
		for _, h := range hints {
			p, err := o.Plan(q, h)
			if err != nil {
				t.Fatalf("trial %d hint %s: %v", trial, h.Name, err)
			}
			want := bruteForceBest(o, q, h)
			if math.Abs(p.EstCost-want) > 1e-6*math.Max(1, want) {
				t.Errorf("trial %d hint %s: DP cost %v != exhaustive optimum %v", trial, h.Name, p.EstCost, want)
			}
		}
	}
}
