package optimizer

import (
	"math"

	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
)

// CostParams are the tunable coefficients of the formula cost model — the
// "R-params" that ParamTree (§3.2) learns. When the coefficients match the
// executor's true per-operation work, estimated cost equals actual work given
// true cardinalities.
type CostParams struct {
	CPUTuple    float64 // per tuple scanned by SeqScan
	HashBuild   float64 // per build-side tuple of HashJoin
	HashProbe   float64 // per probe-side tuple of HashJoin
	NLTuple     float64 // per (outer, inner) pair of NLJoin
	MergeSort   float64 // per tuple·log2(tuples) of MergeJoin sorting
	MergeScan   float64 // per input tuple of the merge phase
	OutputTuple float64 // per output tuple of HashJoin/MergeJoin
	IndexProbe  float64 // per binary-search step of an IndexScan probe
	IndexFetch  float64 // per row fetched through a secondary index
	PageRead    float64 // per buffer-pool miss of a disk-table scan
	AggTuple    float64 // per input tuple accumulated by HashAgg

	// ExchangeStartup is the per-shard coordination overhead of a
	// partitioned (exchange-parallel) operator, in cost units. It models
	// latency the executor never charges as work — shard setup and merge —
	// so it is excluded from Vec (ParamTree fits work-unit coefficients
	// only) and is zero in TrueCostParams, keeping the "true params
	// reproduce actual work" identity exact at any partition count.
	ExchangeStartup float64
}

// TrueCostParams mirror the executor's work charges exactly.
func TrueCostParams() CostParams {
	return CostParams{
		CPUTuple: 1, HashBuild: 1, HashProbe: 1, NLTuple: 1,
		MergeSort: 1, MergeScan: 1, OutputTuple: 1, IndexProbe: 1, IndexFetch: 1,
		PageRead: 1, AggTuple: 1,
	}
}

// DefaultCostParams are deliberately mis-calibrated defaults, standing in for
// a database whose cost constants were never tuned to the hardware — the
// situation ParamTree addresses.
func DefaultCostParams() CostParams {
	return CostParams{
		CPUTuple: 1, HashBuild: 4, HashProbe: 0.5, NLTuple: 0.25,
		MergeSort: 0.5, MergeScan: 2, OutputTuple: 0.1, IndexProbe: 2, IndexFetch: 0.25,
		PageRead: 16, AggTuple: 2, ExchangeStartup: 32,
	}
}

// Vec returns the parameters as a feature vector (ParamTree's learning
// target).
func (p CostParams) Vec() []float64 {
	return []float64{
		p.CPUTuple, p.HashBuild, p.HashProbe, p.NLTuple,
		p.MergeSort, p.MergeScan, p.OutputTuple, p.IndexProbe, p.IndexFetch,
		p.PageRead, p.AggTuple,
	}
}

// ParamsFromVec reconstructs CostParams from Vec ordering.
func ParamsFromVec(v []float64) CostParams {
	return CostParams{
		CPUTuple: v[0], HashBuild: v[1], HashProbe: v[2], NLTuple: v[3],
		MergeSort: v[4], MergeScan: v[5], OutputTuple: v[6], IndexProbe: v[7], IndexFetch: v[8],
		PageRead: v[9], AggTuple: v[10],
	}
}

// probeSteps mirrors exec.log2int exactly: the number of probes a binary
// search makes over n items — floor(log2 n) + 1, minimum 1 — so IndexScanCost
// under TrueCostParams reproduces the executor's IndexProbe charge with no
// off-by-one.
func probeSteps(x float64) float64 {
	c := 1.0
	for v := int64(x); v > 1; v >>= 1 {
		c++
	}
	return c
}

// nLogN mirrors the executor's merge-sort charge exactly: m·floor(log2 m)
// for m > 1, m itself for m ≤ 1 (fractional estimates use the floor's
// integer log but keep the fractional multiplier).
func nLogN(x float64) float64 {
	if x <= 1 {
		return x
	}
	logM := 0.0
	for v := int64(x); v > 1; v >>= 1 {
		logM++
	}
	return x * logM
}

// JoinCost returns the formula cost of joining inputs of the given estimated
// sizes with operator op, excluding child costs.
func (p CostParams) JoinCost(op plan.OpType, leftRows, rightRows, outRows float64) float64 {
	switch op {
	case plan.OpHashJoin:
		return p.HashBuild*leftRows + p.HashProbe*rightRows + p.OutputTuple*outRows
	case plan.OpNLJoin:
		return p.NLTuple * leftRows * rightRows
	case plan.OpMergeJoin:
		return p.MergeSort*(nLogN(leftRows)+nLogN(rightRows)) +
			p.MergeScan*(leftRows+rightRows) + p.OutputTuple*outRows
	default:
		return math.Inf(1)
	}
}

// ScanCost returns the formula cost of scanning a base table of tableRows.
func (p CostParams) ScanCost(tableRows float64) float64 { return p.CPUTuple * tableRows }

// IndexScanCost returns the formula cost of an index scan over a table of
// tableRows fetching estFetched rows through the index.
func (p CostParams) IndexScanCost(tableRows, estFetched float64) float64 {
	return p.IndexProbe*probeSteps(tableRows) + p.IndexFetch*estFetched
}

// AggCost returns the formula cost of hash-aggregating inRows input tuples
// into groups output groups, excluding child costs.
func (p CostParams) AggCost(inRows, groups float64) float64 {
	return p.AggTuple*inRows + p.OutputTuple*groups
}

// CardEstimator estimates result sizes. The expert implementation uses
// histograms; learned estimators (internal/cardest) satisfy the same
// interface, which is how "ML-enhanced" estimation plugs into the classical
// optimizer without replacing it.
type CardEstimator interface {
	// ScanRows estimates output rows of scanning q's table at position pos
	// with its filters applied.
	ScanRows(q *plan.Query, pos int) float64
	// JoinSelectivity estimates the selectivity of the equi-join condition.
	JoinSelectivity(q *plan.Query, cond expr.JoinCond) float64
}
