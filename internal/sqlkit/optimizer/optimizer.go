package optimizer

import (
	"fmt"
	"math"
	"math/bits"

	"ml4db/internal/obs"
	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
)

// IOStats exposes the buffer pool's observed miss rate to the cost model —
// satisfied by *storage.Pool. A nil IOStats means no pool feedback: the
// optimizer assumes every page read misses (the cold-cache worst case).
type IOStats interface {
	// MissRate returns misses/(hits+misses) observed so far, in [0, 1].
	MissRate() float64
}

// Optimizer is the expert (System-R style) query optimizer: exhaustive
// dynamic programming over connected join orders using a cardinality
// estimator and a formula cost model.
type Optimizer struct {
	Cat  *catalog.Catalog
	Est  CardEstimator
	Cost CostParams
	// IO feeds the observed buffer-pool miss rate into the I/O cost term
	// for disk-backed tables; nil assumes a cold cache (miss rate 1).
	IO IOStats
	// Parallelism is the maximum exchange degree the optimizer may assign to
	// a node's Partitions knob — typically the executor pool's worker count.
	// Values below two leave every plan serial (Partitions zero), which is
	// also the default, so plans stay byte-identical to the pre-parallel
	// optimizer unless a caller opts in.
	Parallelism int
}

// missRate returns the pool-observed miss rate, or 1 without pool feedback.
func (o *Optimizer) missRate() float64 {
	if o.IO == nil {
		return 1
	}
	return o.IO.MissRate()
}

// scanIOCost estimates the I/O term of sequentially scanning t: every heap
// page is read once, and a fraction missRate of those reads miss the pool.
func (o *Optimizer) scanIOCost(t *catalog.Table) float64 {
	pages := float64(t.NumDiskPages())
	if pages == 0 {
		return 0
	}
	return o.Cost.PageRead * pages * o.missRate()
}

// indexIOCost estimates the I/O term of fetching estFetched rows through an
// index on t: each fetch may touch a distinct page (random access), capped
// at the table's page count.
func (o *Optimizer) indexIOCost(t *catalog.Table, estFetched float64) float64 {
	pages := float64(t.NumDiskPages())
	if pages == 0 {
		return 0
	}
	touched := estFetched
	if touched > pages {
		touched = pages
	}
	return o.Cost.PageRead * touched * o.missRate()
}

// New returns an optimizer with histogram estimation and default (untuned)
// cost parameters.
func New(cat *catalog.Catalog) *Optimizer {
	return &Optimizer{Cat: cat, Est: &HistEstimator{Cat: cat}, Cost: DefaultCostParams()}
}

// subPlan is the DP table entry for a table-position subset.
type subPlan struct {
	node   *plan.Node
	cost   float64
	rows   float64
	layout []int // table positions in leaf (output) order
}

// Plan returns the cheapest plan for q under the hint set. It errors if the
// query's join graph is disconnected or the hint set admits no operator.
func (o *Optimizer) Plan(q *plan.Query, hint HintSet) (*plan.Node, error) {
	n := q.NumTables()
	if n == 0 {
		return nil, fmt.Errorf("optimizer: empty query")
	}
	if n > 1 && !hint.Viable() {
		return nil, fmt.Errorf("optimizer: hint set %q admits no join operator", hint.Name)
	}
	if n > 20 {
		return nil, fmt.Errorf("optimizer: %d tables exceeds DP limit", n)
	}
	best := make(map[uint32]*subPlan, 1<<n)
	for pos := 0; pos < n; pos++ {
		sp := o.scanPlan(q, pos, hint)
		best[1<<uint(pos)] = sp
	}
	full := uint32(1<<uint(n)) - 1
	for mask := uint32(1); mask <= full; mask++ {
		if bits.OnesCount32(mask) < 2 {
			continue
		}
		var bestSP *subPlan
		lowest := mask & (^mask + 1)
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			if sub&lowest == 0 {
				continue // canonical split: left side holds the lowest bit
			}
			other := mask ^ sub
			left, right := best[sub], best[other]
			if left == nil || right == nil {
				continue
			}
			cands := o.joinCandidates(q, hint, left, right)
			for _, sp := range cands {
				if bestSP == nil || sp.cost < bestSP.cost {
					bestSP = sp
				}
			}
		}
		if bestSP != nil {
			best[mask] = bestSP
		}
	}
	sp := best[full]
	if sp == nil {
		return nil, fmt.Errorf("optimizer: join graph is disconnected")
	}
	root := sp.node
	if q.Agg != nil {
		gc := o.colOffset(q, sp.layout, q.Agg.GroupTable, q.Agg.GroupCol)
		sums := make([]int, 0, len(q.Agg.Sums))
		for _, s := range q.Agg.Sums {
			sums = append(sums, o.colOffset(q, sp.layout, s.Table, s.Col))
		}
		agg := plan.NewAgg(root, gc, sums...)
		agg.EstRows = o.estAggGroups(q, root.EstRows)
		agg.EstCost = root.EstCost + o.Cost.AggCost(root.EstRows, agg.EstRows)
		root = agg
	}
	o.parallelize(root)
	return root, nil
}

// estAggGroups estimates the group count of q's aggregation: the grouping
// column's exact distinct count when statistics exist, capped by the child's
// output estimate.
func (o *Optimizer) estAggGroups(q *plan.Query, childRows float64) float64 {
	groups := childRows
	if q.Agg != nil {
		t := o.Cat.Table(q.Tables[q.Agg.GroupTable])
		if st := t.Columns[q.Agg.GroupCol].Stats; st != nil && st.Distinct > 0 {
			groups = float64(st.Distinct)
		}
	}
	if groups > childRows {
		groups = childRows
	}
	if groups < 1 {
		groups = 1
	}
	return groups
}

// parallelize assigns each node's Partitions knob bottom-up, costing the
// knob explicitly: a node's own (exclusive) cost splits into a
// parallelizable part and a fixed serial part, and partitioning into P
// shards costs par/P + fixed + ExchangeStartup·P. The best P in
// [1, Parallelism] wins; P = 1 keeps the pure serial cost with no startup
// term. EstCost is rebuilt cumulatively afterward, so learned components
// that consume EstCost see the parallel-adjusted plan cost.
func (o *Optimizer) parallelize(root *plan.Node) {
	if o.Parallelism <= 1 {
		return
	}
	var walk func(n *plan.Node) float64
	walk = func(n *plan.Node) float64 {
		childOrig := 0.0
		for _, c := range n.Children {
			childOrig += c.EstCost
		}
		own := n.EstCost - childOrig
		if own < 0 {
			own = 0
		}
		childNew := 0.0
		for _, c := range n.Children {
			childNew += walk(c)
		}
		par, fixed := o.splitParallelizable(n, own)
		bestCost, bestP := own, 1
		if par > 0 {
			for p := 2; p <= o.Parallelism; p++ {
				c := par/float64(p) + fixed + o.Cost.ExchangeStartup*float64(p)
				if c < bestCost {
					bestCost, bestP = c, p
				}
			}
		}
		n.Partitions = bestP
		n.EstCost = childNew + bestCost
		return n.EstCost
	}
	walk(root)
}

// splitParallelizable divides a node's own cost into the part an exchange
// can divide across shards and the part that stays serial, mirroring which
// executor phases exchange.go actually partitions: scans and nested-loop
// pairs divide fully, a hash join's build (and an aggregation's sorted
// emission) stay on the coordinator, and index scans, merge joins, and
// virtual-table scans never partition.
func (o *Optimizer) splitParallelizable(n *plan.Node, own float64) (par, fixed float64) {
	switch n.Op {
	case plan.OpSeqScan:
		if o.Cat.Table(n.TableID).Virtual != nil {
			return 0, own
		}
		return own, 0
	case plan.OpHashJoin:
		build := o.Cost.HashBuild * n.Children[0].EstRows
		if build > own {
			build = own
		}
		return own - build, build
	case plan.OpNLJoin:
		return own, 0
	case plan.OpHashAgg:
		emit := o.Cost.OutputTuple * n.EstRows
		if emit > own {
			emit = own
		}
		return own - emit, emit
	default: // IndexScan, MergeJoin: always serial
		return 0, own
	}
}

// PlanTraced is Plan wrapped in an "optimizer.plan" span under parent,
// annotated with the query size and the chosen plan's estimated cost. A nil
// tracer reduces it to Plan.
func (o *Optimizer) PlanTraced(q *plan.Query, hint HintSet, tr *obs.Tracer, parent *obs.Span) (*plan.Node, error) {
	sp := tr.StartSpan("optimizer.plan", parent)
	p, err := o.Plan(q, hint)
	if p != nil {
		sp.SetInt("tables", int64(q.NumTables())).SetFloat("est_cost", p.EstCost)
	}
	sp.End()
	return p, err
}

// scanPlan picks the cheapest access path for the table at pos: a
// sequential scan, or an index scan through any secondary index whose column
// carries an interval predicate (unless the hint forbids it).
func (o *Optimizer) scanPlan(q *plan.Query, pos int, hint HintSet) *subPlan {
	tid := q.Tables[pos]
	t := o.Cat.Table(tid)
	rows := float64(t.NumRows())
	best := plan.NewScan(pos, tid, q.Filters[pos])
	best.EstRows = o.Est.ScanRows(q, pos)
	best.EstCost = o.Cost.ScanCost(rows) + o.scanIOCost(t)
	if !hint.NoIndexScan {
		for _, col := range t.IndexedCols() {
			fetched, ok := o.estIndexFetched(t, q.Filters[pos], col)
			if !ok {
				continue
			}
			cost := o.Cost.IndexScanCost(rows, fetched) + o.indexIOCost(t, fetched)
			if cost < best.EstCost {
				node := plan.NewIndexScan(pos, tid, col, q.Filters[pos])
				node.EstRows = best.EstRows
				node.EstFetched = fetched
				node.EstCost = cost
				best = node
			}
		}
	}
	return &subPlan{node: best, cost: best.EstCost, rows: best.EstRows, layout: []int{pos}}
}

// estIndexFetched estimates how many rows an index on col would fetch given
// the interval predicates on that column. ok is false when no interval
// predicate constrains the column.
func (o *Optimizer) estIndexFetched(t *catalog.Table, filters []expr.Pred, col int) (float64, bool) {
	st := t.Columns[col].Stats
	if st == nil || st.Count == 0 {
		return 0, false
	}
	sel := 1.0
	found := false
	for _, f := range filters {
		if f.Col != col {
			continue
		}
		if lo, hi, isInterval := f.Range(st.Min, st.Max); isInterval {
			sel *= st.SelectivityRange(lo, hi)
			found = true
		}
	}
	if !found {
		return 0, false
	}
	fetched := float64(t.NumRows()) * sel
	if fetched < 1 {
		fetched = 1
	}
	return fetched, true
}

// condBetween finds a join condition with one side in left's tables and the
// other in right's, returning it oriented so that Left refers to the left
// subtree. ok is false if no condition connects the sides.
func condBetween(q *plan.Query, left, right *subPlan) (expr.JoinCond, bool) {
	inLeft := make(map[int]bool, len(left.layout))
	for _, p := range left.layout {
		inLeft[p] = true
	}
	inRight := make(map[int]bool, len(right.layout))
	for _, p := range right.layout {
		inRight[p] = true
	}
	for _, c := range q.Joins {
		if inLeft[c.LeftTable] && inRight[c.RightTable] {
			return c, true
		}
		if inLeft[c.RightTable] && inRight[c.LeftTable] {
			return expr.JoinCond{LeftTable: c.RightTable, LeftCol: c.RightCol, RightTable: c.LeftTable, RightCol: c.LeftCol}, true
		}
	}
	return expr.JoinCond{}, false
}

// colOffset maps (tablePos, col) to an output-relative offset given a layout.
func (o *Optimizer) colOffset(q *plan.Query, layout []int, tablePos, col int) int {
	off := 0
	for _, p := range layout {
		if p == tablePos {
			return off + col
		}
		off += o.Cat.Table(q.Tables[p]).NumCols()
	}
	//ml4db:allow nakedpanic "unreachable: layouts are permutations of the query tables by construction"
	panic(fmt.Sprintf("optimizer: table position %d not in layout %v", tablePos, layout))
}

func (o *Optimizer) joinCandidates(q *plan.Query, hint HintSet, left, right *subPlan) []*subPlan {
	var out []*subPlan
	for _, pair := range [][2]*subPlan{{left, right}, {right, left}} {
		l, r := pair[0], pair[1]
		if hint.LeftDeepOnly && len(r.layout) > 1 {
			continue
		}
		cond, ok := condBetween(q, l, r)
		if !ok {
			continue
		}
		sel := o.Est.JoinSelectivity(q, normalizeCond(q, cond))
		outRows := l.rows * r.rows * sel
		if outRows < 1 {
			outRows = 1
		}
		lc := o.colOffset(q, l.layout, cond.LeftTable, cond.LeftCol)
		rc := o.colOffset(q, r.layout, cond.RightTable, cond.RightCol)
		for _, op := range plan.AllJoinOps {
			if !hint.Allows(op) {
				continue
			}
			node := plan.NewJoin(op, l.node, r.node, lc, rc)
			node.EstRows = outRows
			cost := l.cost + r.cost + o.Cost.JoinCost(op, l.rows, r.rows, outRows)
			node.EstCost = cost
			layout := make([]int, 0, len(l.layout)+len(r.layout))
			layout = append(layout, l.layout...)
			layout = append(layout, r.layout...)
			out = append(out, &subPlan{node: node, cost: cost, rows: outRows, layout: layout})
		}
	}
	return out
}

// normalizeCond re-orients a condition to match one declared in the query so
// estimators that key on the declared form behave consistently.
func normalizeCond(q *plan.Query, c expr.JoinCond) expr.JoinCond {
	for _, d := range q.Joins {
		if d == c {
			return d
		}
		if d.LeftTable == c.RightTable && d.LeftCol == c.RightCol && d.RightTable == c.LeftTable && d.RightCol == c.LeftCol {
			return d
		}
	}
	return c
}

// Annotate fills EstRows and EstCost on every node of an externally
// constructed plan (as built by NEO, RTOS, or Balsa) and returns the total
// estimated cost of the root.
func (o *Optimizer) Annotate(q *plan.Query, n *plan.Node) float64 {
	if n.IsLeaf() {
		t := o.Cat.Table(n.TableID)
		n.EstRows = o.Est.ScanRows(q, n.TablePos)
		if n.Op == plan.OpIndexScan {
			fetched, ok := o.estIndexFetched(t, n.Filters, n.IndexCol)
			if !ok {
				fetched = float64(t.NumRows())
			}
			n.EstFetched = fetched
			n.EstCost = o.Cost.IndexScanCost(float64(t.NumRows()), fetched) + o.indexIOCost(t, fetched)
		} else {
			n.EstCost = o.Cost.ScanCost(float64(t.NumRows())) + o.scanIOCost(t)
		}
		return n.EstCost
	}
	if n.Op == plan.OpHashAgg {
		lc := o.Annotate(q, n.Children[0])
		n.EstRows = o.estAggGroups(q, n.Children[0].EstRows)
		n.EstCost = lc + o.Cost.AggCost(n.Children[0].EstRows, n.EstRows)
		return n.EstCost
	}
	lc := o.Annotate(q, n.Children[0])
	rc := o.Annotate(q, n.Children[1])
	n.EstRows = EstimateSubtreeRows(o.Est, q, n.Tables())
	n.EstCost = lc + rc + o.Cost.JoinCost(n.Op, n.Children[0].EstRows, n.Children[1].EstRows, n.EstRows)
	return n.EstCost
}

// PlanCostActual computes the formula cost of a plan using the *actual* row
// counts recorded by a previous execution — the quantity ParamTree fits its
// parameters against.
func (o *Optimizer) PlanCostActual(n *plan.Node) float64 {
	return planCostWith(o.Cat, o.Cost, n, func(x *plan.Node) float64 { return x.ActualRows })
}

func planCostWith(cat *catalog.Catalog, p CostParams, n *plan.Node, rows func(*plan.Node) float64) float64 {
	if n.IsLeaf() {
		t := cat.Table(n.TableID)
		// The I/O term uses the misses the execution actually charged, so
		// true params reproduce actual work exactly on disk tables too.
		io := p.PageRead * n.ActualPageMisses
		if n.Op == plan.OpIndexScan {
			return p.IndexScanCost(float64(t.NumRows()), n.ActualFetched) + io
		}
		return p.ScanCost(float64(t.NumRows())) + io
	}
	if n.Op == plan.OpHashAgg {
		c := planCostWith(cat, p, n.Children[0], rows)
		return c + p.AggCost(rows(n.Children[0]), rows(n))
	}
	c := planCostWith(cat, p, n.Children[0], rows) + planCostWith(cat, p, n.Children[1], rows)
	return c + p.JoinCost(n.Op, rows(n.Children[0]), rows(n.Children[1]), rows(n))
}

// CheapestHint plans q under every hint set and returns the plans with their
// estimated costs — the candidate set a bandit optimizer selects among.
func (o *Optimizer) CheapestHint(q *plan.Query, hints []HintSet) (plans []*plan.Node, costs []float64, err error) {
	for _, h := range hints {
		p, perr := o.Plan(q, h)
		if perr != nil {
			return nil, nil, perr
		}
		plans = append(plans, p)
		costs = append(costs, p.EstCost)
	}
	if len(plans) == 0 {
		return nil, nil, fmt.Errorf("optimizer: no hints given")
	}
	return plans, costs, nil
}

// Infinity is a sentinel cost for invalid plans.
var Infinity = math.Inf(1)
