// Package plan defines queries and physical plan trees — the "directed tree
// in which each node describes a unit operation" that the paper identifies as
// the common input of ML4DB systems (§3.1).
package plan
