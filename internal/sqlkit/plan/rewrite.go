package plan

// PosMap records where one original table position landed after a query
// rewrite: the table position in the rewritten query, plus the offset that
// position's columns start at inside the (possibly wider) rewritten table.
// Column c of the original position is column ColShift+c of the rewritten
// one, so maps from chained rewrites compose by adding shifts.
type PosMap struct {
	Pos      int
	ColShift int
}

// QueryRewriter rewrites a query into an equivalent one over different
// tables — a materialized view substituting for a join pair is the canonical
// case. RewriteMapped must not mutate q; the returned map has one entry per
// original table position. ok is false when the rewriter does not apply.
type QueryRewriter interface {
	RewriteMapped(q *Query) (nq *Query, m []PosMap, ok bool)
}
