package plan

import (
	"strings"
	"testing"

	"ml4db/internal/sqlkit/expr"
)

func twoJoinPlan() *Node {
	s0 := NewScan(0, 10, []expr.Pred{{Col: 1, Op: expr.GT, Lo: 5}})
	s1 := NewScan(1, 11, nil)
	s2 := NewScan(2, 12, nil)
	j1 := NewJoin(OpHashJoin, s0, s1, 0, 1)
	return NewJoin(OpNLJoin, j1, s2, 2, 0)
}

func TestNodeShapeAccessors(t *testing.T) {
	root := twoJoinPlan()
	if root.IsLeaf() {
		t.Error("join reported as leaf")
	}
	if got := root.NumNodes(); got != 5 {
		t.Errorf("NumNodes = %d, want 5", got)
	}
	if got := root.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
	tables := root.Tables()
	if len(tables) != 3 {
		t.Fatalf("Tables = %v", tables)
	}
	want := map[int]bool{0: true, 1: true, 2: true}
	for _, p := range tables {
		if !want[p] {
			t.Errorf("unexpected table position %d", p)
		}
	}
}

func TestWidth(t *testing.T) {
	root := twoJoinPlan()
	colsOf := func(pos int) int { return pos + 2 } // t0:2, t1:3, t2:4
	if got := root.Width(colsOf); got != 9 {
		t.Errorf("Width = %d, want 9", got)
	}
}

func TestWalkVisitsAllPreOrder(t *testing.T) {
	root := twoJoinPlan()
	var ops []OpType
	root.Walk(func(n *Node) { ops = append(ops, n.Op) })
	want := []OpType{OpNLJoin, OpHashJoin, OpSeqScan, OpSeqScan, OpSeqScan}
	if len(ops) != len(want) {
		t.Fatalf("visited %d nodes, want %d", len(ops), len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("visit %d: %v, want %v", i, ops[i], want[i])
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	root := twoJoinPlan()
	c := root.Clone()
	c.Children[0].Op = OpMergeJoin
	c.Children[1].TableID = 99
	if root.Children[0].Op == OpMergeJoin {
		t.Error("Clone shares internal nodes")
	}
	if root.Children[1].TableID == 99 {
		t.Error("Clone shares leaves")
	}
}

func TestStringRendersTree(t *testing.T) {
	s := twoJoinPlan().String()
	for _, frag := range []string{"NLJoin", "HashJoin", "SeqScan", "c1 > 5"} {
		if !strings.Contains(s, frag) {
			t.Errorf("plan rendering missing %q in:\n%s", frag, s)
		}
	}
}

func TestQueryBuilding(t *testing.T) {
	q := NewQuery(7, 8, 9)
	q.AddFilter(0, expr.Pred{Col: 2, Op: expr.EQ, Lo: 1}).
		AddJoin(expr.JoinCond{LeftTable: 0, LeftCol: 0, RightTable: 1, RightCol: 1}).
		AddJoin(expr.JoinCond{LeftTable: 1, LeftCol: 0, RightTable: 2, RightCol: 1})
	if q.NumTables() != 3 {
		t.Errorf("NumTables = %d", q.NumTables())
	}
	if len(q.Filters[0]) != 1 || len(q.Joins) != 2 {
		t.Error("builder did not record filters/joins")
	}
}

func TestQuerySignatureDistinguishesTemplates(t *testing.T) {
	q1 := NewQuery(1, 2)
	q1.AddJoin(expr.JoinCond{LeftTable: 0, LeftCol: 0, RightTable: 1, RightCol: 0})
	q2 := NewQuery(1, 2)
	q2.AddJoin(expr.JoinCond{LeftTable: 0, LeftCol: 0, RightTable: 1, RightCol: 0})
	q2.AddFilter(0, expr.Pred{Col: 1, Op: expr.GT, Lo: 3})
	if q1.Signature() == q2.Signature() {
		t.Error("signatures should differ when filters differ")
	}
	q3 := NewQuery(1, 2)
	q3.AddJoin(expr.JoinCond{LeftTable: 0, LeftCol: 0, RightTable: 1, RightCol: 0})
	if q1.Signature() != q3.Signature() {
		t.Error("identical queries should share a signature")
	}
}

func TestOpStrings(t *testing.T) {
	if OpSeqScan.String() != "SeqScan" || OpHashJoin.String() != "HashJoin" ||
		OpNLJoin.String() != "NLJoin" || OpMergeJoin.String() != "MergeJoin" {
		t.Error("OpType.String wrong")
	}
}
