package plan

import (
	"fmt"
	"strings"

	"ml4db/internal/sqlkit/expr"
)

// Query is a select-project-join query: a list of base tables, conjunctive
// single-table filters, and equi-join conditions. This is exactly the SPJ
// class the paper notes learned optimizers handle.
type Query struct {
	// Tables holds catalog table IDs. Positions within this slice are the
	// "table positions" predicates and joins refer to.
	Tables []int
	// Filters[pos] are conjunctive predicates on the table at pos.
	Filters map[int][]expr.Pred
	// Joins are equi-join conditions between table positions.
	Joins []expr.JoinCond
	// Agg, when non-nil, applies a grouped aggregation on top of the join
	// result (see AggSpec). The optimizer plans it as an OpHashAgg root.
	Agg *AggSpec
}

// AggSpec is an optional grouped aggregation over the query result: one
// GROUP BY column and any number of SUM columns, each named as a (table
// position, column) pair like join conditions. The result has one row per
// group — [group value, COUNT(*), SUM(col)...] — emitted in ascending group
// order, which keeps aggregated results deterministic.
type AggSpec struct {
	// GroupTable/GroupCol name the grouping column.
	GroupTable, GroupCol int
	// Sums name the columns summed per group, in output order.
	Sums []AggCol
}

// AggCol names one aggregated column as a (table position, column) pair.
type AggCol struct {
	Table, Col int
}

// SetAgg installs a grouped aggregation on the query.
func (q *Query) SetAgg(groupTable, groupCol int, sums ...AggCol) *Query {
	q.Agg = &AggSpec{GroupTable: groupTable, GroupCol: groupCol, Sums: sums}
	return q
}

// NewQuery constructs an empty query over the given catalog table IDs.
func NewQuery(tableIDs ...int) *Query {
	return &Query{Tables: tableIDs, Filters: make(map[int][]expr.Pred)}
}

// AddFilter appends a predicate on the table at position pos.
func (q *Query) AddFilter(pos int, p expr.Pred) *Query {
	q.Filters[pos] = append(q.Filters[pos], p)
	return q
}

// AddJoin appends an equi-join condition.
func (q *Query) AddJoin(j expr.JoinCond) *Query {
	q.Joins = append(q.Joins, j)
	return q
}

// NumTables returns the number of base tables.
func (q *Query) NumTables() int { return len(q.Tables) }

// Signature returns a short string identifying the query's structure
// (tables, joins, filter columns) — used as a template key by workload-drift
// experiments.
func (q *Query) Signature() string {
	var b strings.Builder
	for i, t := range q.Tables {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "T%d", t)
		for _, f := range q.Filters[i] {
			fmt.Fprintf(&b, ":c%d%s", f.Col, f.Op)
		}
	}
	for _, j := range q.Joins {
		fmt.Fprintf(&b, "|%s", j)
	}
	if q.Agg != nil {
		fmt.Fprintf(&b, "|G%d.c%d", q.Agg.GroupTable, q.Agg.GroupCol)
		for _, s := range q.Agg.Sums {
			fmt.Fprintf(&b, "|S%d.c%d", s.Table, s.Col)
		}
	}
	return b.String()
}

// OpType identifies a physical operator.
type OpType int

// Physical operators of the execution engine.
const (
	OpSeqScan OpType = iota
	OpHashJoin
	OpNLJoin // tuple nested-loop join
	OpMergeJoin
	// OpIndexScan reads rows through a secondary index on IndexCol using
	// the node's interval predicate on that column, then applies the
	// remaining filters.
	OpIndexScan
	// OpHashAgg groups its single child's rows by GroupCol and emits one
	// row per group — [group, COUNT(*), SUM(col)...] — in ascending group
	// order.
	OpHashAgg
)

// String implements fmt.Stringer.
func (o OpType) String() string {
	switch o {
	case OpSeqScan:
		return "SeqScan"
	case OpHashJoin:
		return "HashJoin"
	case OpNLJoin:
		return "NLJoin"
	case OpMergeJoin:
		return "MergeJoin"
	case OpIndexScan:
		return "IndexScan"
	case OpHashAgg:
		return "HashAgg"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// AllJoinOps lists the join operators the optimizer may choose among.
var AllJoinOps = []OpType{OpHashJoin, OpNLJoin, OpMergeJoin}

// Node is a physical plan node. A leaf is a SeqScan of a base table with
// pushed-down filters; internal nodes are joins. Cost and cardinality
// annotations are filled by the optimizer; ActualRows by the executor. These
// annotations are the "database statistics" features of plan representation
// (§3.1).
type Node struct {
	Op       OpType
	Children []*Node

	// Scan fields (SeqScan and IndexScan).
	TablePos int // position in the query's table list
	TableID  int // catalog table ID
	Filters  []expr.Pred
	// IndexCol is the indexed column an IndexScan reads through.
	IndexCol int

	// Join fields: output-relative column offsets into the left and right
	// child schemas.
	LeftCol, RightCol int

	// Agg fields (OpHashAgg): output-relative offsets into the child
	// schema. GroupCol is the grouping column; SumCols are summed per
	// group.
	GroupCol int
	SumCols  []int

	// Partitions is the exchange degree: how many contiguous shards the
	// operator's parallel phase splits into. Zero or one mean serial. The
	// executor produces bit-identical rows and counters for every value —
	// partitioning only trades latency — so the optimizer costs the knob
	// and the plan cache keys on it purely for performance coherence.
	Partitions int

	// Optimizer annotations.
	EstRows float64
	EstCost float64

	// EstFetched is the optimizer's estimate of rows fetched through the
	// index before residual filtering (IndexScan only).
	EstFetched float64

	// Executor annotations.
	ActualRows float64
	// ActualFetched counts rows fetched through the index (IndexScan only).
	ActualFetched float64
	// ActualPageMisses counts buffer-pool misses this scan charged
	// (disk-backed tables only; zero for in-memory scans).
	ActualPageMisses float64
}

// IsLeaf reports whether the node is a scan.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// NewIndexScan constructs an index-scan leaf reading through the secondary
// index on col.
func NewIndexScan(tablePos, tableID, col int, filters []expr.Pred) *Node {
	return &Node{Op: OpIndexScan, TablePos: tablePos, TableID: tableID, IndexCol: col, Filters: filters}
}

// Tables returns the set of table positions covered by the subtree.
func (n *Node) Tables() []int {
	if n.IsLeaf() {
		return []int{n.TablePos}
	}
	var out []int
	for _, c := range n.Children {
		out = append(out, c.Tables()...)
	}
	return out
}

// Width returns the number of output columns of the subtree, given a lookup
// from table position to that base table's column count.
func (n *Node) Width(colsOf func(tablePos int) int) int {
	if n.IsLeaf() {
		return colsOf(n.TablePos)
	}
	if n.Op == OpHashAgg {
		return 2 + len(n.SumCols) // group, COUNT(*), one column per SUM
	}
	w := 0
	for _, c := range n.Children {
		w += c.Width(colsOf)
	}
	return w
}

// NumNodes returns the node count of the subtree.
func (n *Node) NumNodes() int {
	c := 1
	for _, ch := range n.Children {
		c += ch.NumNodes()
	}
	return c
}

// Depth returns the height of the subtree (1 for a leaf).
func (n *Node) Depth() int {
	d := 0
	for _, ch := range n.Children {
		if cd := ch.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Walk visits the subtree pre-order.
func (n *Node) Walk(visit func(*Node)) {
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// Clone deep-copies the plan tree.
func (n *Node) Clone() *Node {
	out := *n
	out.Children = nil
	for _, c := range n.Children {
		out.Children = append(out.Children, c.Clone())
	}
	out.SumCols = append([]int(nil), n.SumCols...)
	return &out
}

// String renders the plan as an indented tree.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	if n.IsLeaf() {
		fmt.Fprintf(b, "%s(t%d#%d", n.Op, n.TablePos, n.TableID)
		if n.Op == OpIndexScan {
			fmt.Fprintf(b, " ix=c%d", n.IndexCol)
		}
		for _, f := range n.Filters {
			fmt.Fprintf(b, " %s", f)
		}
		b.WriteString(")")
	} else if n.Op == OpHashAgg {
		fmt.Fprintf(b, "%s(g=c%d", n.Op, n.GroupCol)
		for _, c := range n.SumCols {
			fmt.Fprintf(b, " sum=c%d", c)
		}
		b.WriteString(")")
	} else {
		fmt.Fprintf(b, "%s(l.c%d = r.c%d)", n.Op, n.LeftCol, n.RightCol)
	}
	if n.Partitions > 1 {
		fmt.Fprintf(b, " par=%d", n.Partitions)
	}
	fmt.Fprintf(b, " rows=%.0f cost=%.0f\n", n.EstRows, n.EstCost)
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}

// NewScan constructs a scan leaf.
func NewScan(tablePos, tableID int, filters []expr.Pred) *Node {
	return &Node{Op: OpSeqScan, TablePos: tablePos, TableID: tableID, Filters: filters}
}

// NewJoin constructs a join node over two children with output-relative key
// column offsets.
func NewJoin(op OpType, left, right *Node, leftCol, rightCol int) *Node {
	return &Node{Op: op, Children: []*Node{left, right}, LeftCol: leftCol, RightCol: rightCol}
}

// NewAgg constructs a hash-aggregation node over one child with
// output-relative column offsets.
func NewAgg(child *Node, groupCol int, sumCols ...int) *Node {
	return &Node{Op: OpHashAgg, Children: []*Node{child}, GroupCol: groupCol, SumCols: sumCols}
}
