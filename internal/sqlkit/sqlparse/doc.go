// Package sqlparse parses a practical subset of SQL into the repository's
// plan.Query form plus the projection metadata the executor does not model:
//
//	SELECT {* | col[, col...]} FROM table[, table...]
//	  [WHERE cond AND cond...] [ORDER BY col [ASC|DESC][, ...]] [LIMIT n]
//
// Conditions are integer comparisons (=, !=, <, <=, >, >=), BETWEEN, and
// equi-joins between two tables; columns may be qualified (t.col) or bare
// when the name is unambiguous across the FROM list. Names resolve against
// a catalog.Catalog at parse time, so unknown tables and columns fail with
// positioned errors instead of planning failures. The parsed Stmt carries
// the plan.Query for the optimizer plus the SELECT list, ORDER BY keys, and
// LIMIT for the caller to apply to executor output — engine.Session.Query
// is the primary consumer, created so the querystore system views are
// reachable end to end in SQL.
package sqlparse
