package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
)

// ColRef addresses one column of one table in the statement's FROM list by
// table position (index into Query.Tables) and column index.
type ColRef struct {
	TablePos int
	Col      int
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Col  ColRef
	Desc bool
}

// Stmt is a parsed SELECT statement: the SPJ core as a plan.Query the normal
// optimizer/executor pipeline runs, plus the presentation clauses
// (projection, ordering, limit) the engine applies to the executed rows.
type Stmt struct {
	Query *plan.Query
	// Cols is the projection; nil means SELECT *.
	Cols []ColRef
	// OrderBy sorts the output; empty leaves executor order.
	OrderBy []OrderKey
	// Limit caps the output rows; negative means no limit.
	Limit int
}

// Parse parses a SELECT statement against the catalog. The supported
// grammar is the engine's SPJ class plus presentation clauses:
//
//	SELECT {* | col [, col]...}
//	FROM table [, table]...
//	[WHERE cond [AND cond]...]
//	[ORDER BY col [ASC|DESC] [, col [ASC|DESC]]...]
//	[LIMIT n]
//
// where cond is `col <op> int`, `col BETWEEN int AND int`, or the equi-join
// `a.col = b.col`, and col is `name` or `table.name` (a bare name must be
// unambiguous across the FROM tables). Keywords are case-insensitive.
func Parse(cat *catalog.Catalog, sql string) (*Stmt, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{cat: cat, toks: toks}
	st, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("sqlparse: unexpected %q after statement", p.peek().text)
	}
	return st, nil
}

// token kinds.
const (
	tokIdent = iota
	tokNumber
	tokSymbol // punctuation and comparison operators
	tokEOF
)

type token struct {
	kind int
	text string // keywords and idents kept verbatim; upper() for matching
}

func lex(sql string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(sql) {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdentStart(c):
			j := i + 1
			for j < len(sql) && isIdentPart(sql[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, sql[i:j]})
			i = j
		case c >= '0' && c <= '9':
			j := i + 1
			for j < len(sql) && sql[j] >= '0' && sql[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokNumber, sql[i:j]})
			i = j
		case c == '<':
			if i+1 < len(sql) && (sql[i+1] == '=' || sql[i+1] == '>') {
				toks = append(toks, token{tokSymbol, sql[i : i+2]})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, "<"})
				i++
			}
		case c == '>':
			if i+1 < len(sql) && sql[i+1] == '=' {
				toks = append(toks, token{tokSymbol, ">="})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, ">"})
				i++
			}
		case c == '!':
			if i+1 < len(sql) && sql[i+1] == '=' {
				toks = append(toks, token{tokSymbol, "!="})
				i += 2
			} else {
				return nil, fmt.Errorf("sqlparse: stray '!' at offset %d", i)
			}
		case c == '=' || c == ',' || c == '.' || c == '*' || c == '-' || c == ';' || c == '(' || c == ')':
			toks = append(toks, token{tokSymbol, string(c)})
			i++
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

// rawRef is an unresolved column reference.
type rawRef struct {
	table string // empty = unqualified
	col   string
}

type parser struct {
	cat  *catalog.Catalog
	toks []token
	pos  int

	// FROM list, filled before references resolve.
	tableNames []string
	tableIDs   []int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) atEnd() bool {
	// A trailing semicolon closes the statement.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.pos++
	}
	return p.peek().kind == tokEOF
}

// keyword consumes the next token if it is the given keyword
// (case-insensitive) and reports whether it did.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("sqlparse: expected %s, got %q", strings.ToUpper(kw), p.peek().text)
	}
	return nil
}

func (p *parser) symbol(s string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseSelect() (*Stmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	star := p.symbol("*")
	var rawCols []rawRef
	if !star {
		for {
			r, err := p.parseRawRef()
			if err != nil {
				return nil, err
			}
			rawCols = append(rawCols, r)
			if !p.symbol(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("sqlparse: expected table name, got %q", t.text)
		}
		id, ok := p.cat.ByName(t.text)
		if !ok {
			return nil, fmt.Errorf("sqlparse: unknown table %q", t.text)
		}
		p.tableNames = append(p.tableNames, t.text)
		p.tableIDs = append(p.tableIDs, id)
		if !p.symbol(",") {
			break
		}
	}
	st := &Stmt{Query: plan.NewQuery(p.tableIDs...), Limit: -1}
	for _, r := range rawCols {
		ref, err := p.resolve(r)
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, ref)
	}
	if p.keyword("where") {
		for {
			if err := p.parseCond(st.Query); err != nil {
				return nil, err
			}
			if !p.keyword("and") {
				break
			}
		}
	}
	if p.keyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			r, err := p.parseRawRef()
			if err != nil {
				return nil, err
			}
			ref, err := p.resolve(r)
			if err != nil {
				return nil, err
			}
			key := OrderKey{Col: ref}
			if p.keyword("desc") {
				key.Desc = true
			} else {
				p.keyword("asc")
			}
			st.OrderBy = append(st.OrderBy, key)
			if !p.symbol(",") {
				break
			}
		}
	}
	if p.keyword("limit") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("sqlparse: negative LIMIT %d", n)
		}
		st.Limit = int(n)
	}
	return st, nil
}

// parseRawRef reads `ident` or `ident.ident`.
func (p *parser) parseRawRef() (rawRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return rawRef{}, fmt.Errorf("sqlparse: expected column reference, got %q", t.text)
	}
	if p.symbol(".") {
		c := p.next()
		if c.kind != tokIdent {
			return rawRef{}, fmt.Errorf("sqlparse: expected column after %q., got %q", t.text, c.text)
		}
		return rawRef{table: t.text, col: c.text}, nil
	}
	return rawRef{col: t.text}, nil
}

// resolve binds a raw reference against the FROM list.
func (p *parser) resolve(r rawRef) (ColRef, error) {
	if r.table != "" {
		for pos, name := range p.tableNames {
			if strings.EqualFold(name, r.table) {
				col := p.cat.Table(p.tableIDs[pos]).ColIndex(r.col)
				if col < 0 {
					return ColRef{}, fmt.Errorf("sqlparse: table %q has no column %q", name, r.col)
				}
				return ColRef{TablePos: pos, Col: col}, nil
			}
		}
		return ColRef{}, fmt.Errorf("sqlparse: table %q is not in the FROM list", r.table)
	}
	found := ColRef{TablePos: -1}
	for pos, id := range p.tableIDs {
		if col := p.cat.Table(id).ColIndex(r.col); col >= 0 {
			if found.TablePos >= 0 {
				return ColRef{}, fmt.Errorf("sqlparse: column %q is ambiguous (in %q and %q)",
					r.col, p.tableNames[found.TablePos], p.tableNames[pos])
			}
			found = ColRef{TablePos: pos, Col: col}
		}
	}
	if found.TablePos < 0 {
		return ColRef{}, fmt.Errorf("sqlparse: no FROM table has a column %q", r.col)
	}
	return found, nil
}

func (p *parser) parseInt() (int64, error) {
	neg := p.symbol("-")
	t := p.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("sqlparse: expected integer, got %q", t.text)
	}
	v, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sqlparse: bad integer %q: %v", t.text, err)
	}
	if neg {
		v = -v
	}
	return v, nil
}

// parseCond parses one WHERE conjunct into a filter or a join condition.
func (p *parser) parseCond(q *plan.Query) error {
	left, err := p.parseRawRef()
	if err != nil {
		return err
	}
	lref, err := p.resolve(left)
	if err != nil {
		return err
	}
	if p.keyword("between") {
		lo, err := p.parseInt()
		if err != nil {
			return err
		}
		if err := p.expectKeyword("and"); err != nil {
			return err
		}
		hi, err := p.parseInt()
		if err != nil {
			return err
		}
		q.AddFilter(lref.TablePos, expr.Pred{Col: lref.Col, Op: expr.BETWEEN, Lo: lo, Hi: hi})
		return nil
	}
	t := p.next()
	if t.kind != tokSymbol {
		return fmt.Errorf("sqlparse: expected comparison operator, got %q", t.text)
	}
	var op expr.Op
	switch t.text {
	case "=":
		op = expr.EQ
	case "!=", "<>":
		op = expr.NE
	case "<":
		op = expr.LT
	case "<=":
		op = expr.LE
	case ">":
		op = expr.GT
	case ">=":
		op = expr.GE
	default:
		return fmt.Errorf("sqlparse: unknown operator %q", t.text)
	}
	// An equality whose right side is a column reference is an equi-join.
	if op == expr.EQ && p.peek().kind == tokIdent {
		right, err := p.parseRawRef()
		if err != nil {
			return err
		}
		rref, err := p.resolve(right)
		if err != nil {
			return err
		}
		if rref.TablePos == lref.TablePos {
			return fmt.Errorf("sqlparse: join condition references table %q on both sides",
				p.tableNames[lref.TablePos])
		}
		q.AddJoin(expr.JoinCond{
			LeftTable: lref.TablePos, LeftCol: lref.Col,
			RightTable: rref.TablePos, RightCol: rref.Col,
		})
		return nil
	}
	v, err := p.parseInt()
	if err != nil {
		return err
	}
	q.AddFilter(lref.TablePos, expr.Pred{Col: lref.Col, Op: op, Lo: v})
	return nil
}
