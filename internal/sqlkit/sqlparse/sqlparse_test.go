package sqlparse

import (
	"strings"
	"testing"

	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/expr"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.NewCatalog()
	users := catalog.NewTable("users", "id", "age", "city")
	orders := catalog.NewTable("orders", "id", "user_id", "amount")
	cat.MustAdd(users)
	cat.MustAdd(orders)
	return cat
}

func TestParseSelectStar(t *testing.T) {
	cat := testCatalog(t)
	st, err := Parse(cat, "SELECT * FROM users")
	if err != nil {
		t.Fatal(err)
	}
	if st.Cols != nil {
		t.Fatalf("SELECT * should leave Cols nil, got %v", st.Cols)
	}
	if len(st.Query.Tables) != 1 {
		t.Fatalf("tables = %v", st.Query.Tables)
	}
	if st.Limit != -1 {
		t.Fatalf("limit = %d, want -1", st.Limit)
	}
}

func TestParseFiltersAndBetween(t *testing.T) {
	cat := testCatalog(t)
	st, err := Parse(cat, "select age, city from users where age >= 18 and city != 3 and id between 10 and 20;")
	if err != nil {
		t.Fatal(err)
	}
	want := []ColRef{{0, 1}, {0, 2}}
	if len(st.Cols) != 2 || st.Cols[0] != want[0] || st.Cols[1] != want[1] {
		t.Fatalf("cols = %v, want %v", st.Cols, want)
	}
	fs := st.Query.Filters[0]
	if len(fs) != 3 {
		t.Fatalf("filters = %v", fs)
	}
	if fs[0] != (expr.Pred{Col: 1, Op: expr.GE, Lo: 18}) {
		t.Errorf("filter 0 = %+v", fs[0])
	}
	if fs[1] != (expr.Pred{Col: 2, Op: expr.NE, Lo: 3}) {
		t.Errorf("filter 1 = %+v", fs[1])
	}
	if fs[2] != (expr.Pred{Col: 0, Op: expr.BETWEEN, Lo: 10, Hi: 20}) {
		t.Errorf("filter 2 = %+v", fs[2])
	}
}

func TestParseJoinAndQualified(t *testing.T) {
	cat := testCatalog(t)
	st, err := Parse(cat, "SELECT users.city, orders.amount FROM users, orders WHERE users.id = orders.user_id AND amount > 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Query.Joins) != 1 {
		t.Fatalf("joins = %v", st.Query.Joins)
	}
	j := st.Query.Joins[0]
	if j.LeftTable != 0 || j.LeftCol != 0 || j.RightTable != 1 || j.RightCol != 1 {
		t.Fatalf("join = %+v", j)
	}
	// `amount` is unqualified but unique to orders.
	fs := st.Query.Filters[1]
	if len(fs) != 1 || fs[0] != (expr.Pred{Col: 2, Op: expr.GT, Lo: 100}) {
		t.Fatalf("orders filters = %v", fs)
	}
}

func TestParseOrderByLimit(t *testing.T) {
	cat := testCatalog(t)
	st, err := Parse(cat, "SELECT * FROM users ORDER BY age DESC, id LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.OrderBy) != 2 {
		t.Fatalf("order by = %v", st.OrderBy)
	}
	if st.OrderBy[0] != (OrderKey{Col: ColRef{0, 1}, Desc: true}) {
		t.Errorf("key 0 = %+v", st.OrderBy[0])
	}
	if st.OrderBy[1] != (OrderKey{Col: ColRef{0, 0}}) {
		t.Errorf("key 1 = %+v", st.OrderBy[1])
	}
	if st.Limit != 5 {
		t.Fatalf("limit = %d", st.Limit)
	}
}

func TestParseNegativeLiteral(t *testing.T) {
	cat := testCatalog(t)
	st, err := Parse(cat, "SELECT * FROM users WHERE age > -5")
	if err != nil {
		t.Fatal(err)
	}
	if st.Query.Filters[0][0].Lo != -5 {
		t.Fatalf("filter = %+v", st.Query.Filters[0][0])
	}
}

func TestParseErrors(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		sql  string
		frag string
	}{
		{"FROM users", "expected SELECT"},
		{"SELECT * FROM nope", `unknown table "nope"`},
		{"SELECT bogus FROM users", `no FROM table has a column "bogus"`},
		{"SELECT id FROM users, orders", "ambiguous"},
		{"SELECT * FROM users WHERE users.id = users.age", "both sides"},
		{"SELECT * FROM users WHERE age ~ 3", "unexpected character"},
		{"SELECT * FROM users LIMIT -1", "negative LIMIT"},
		{"SELECT * FROM users extra", "unexpected"},
		{"SELECT * FROM users WHERE orders.id = 1", "not in the FROM list"},
	}
	for _, c := range cases {
		_, err := Parse(cat, c.sql)
		if err == nil {
			t.Errorf("%q: expected error", c.sql)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q: error %q does not contain %q", c.sql, err, c.frag)
		}
	}
}
