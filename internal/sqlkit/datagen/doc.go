// Package datagen generates synthetic relations with controllable
// distributions — uniform, Zipf, Gaussian, and cross-column correlation.
// Correlated columns deliberately violate the optimizer's independence
// assumption, reproducing the estimation errors that motivate the learned
// cardinality estimators and steered optimizers surveyed in the paper.
package datagen
