package datagen

import (
	"fmt"

	"ml4db/internal/mlmath"
	"ml4db/internal/sqlkit/catalog"
)

// DistKind selects a column value distribution.
type DistKind int

// Supported column distributions.
const (
	// Sequential yields 0, 1, 2, ... (primary keys).
	Sequential DistKind = iota
	// Uniform yields uniform integers in [0, Domain).
	Uniform
	// Zipf yields Zipf-distributed ranks in [0, Domain) with exponent Skew.
	Zipf
	// Normal yields rounded Gaussians centered at Domain/2 with standard
	// deviation Domain*Spread, clamped to [0, Domain).
	Normal
	// Correlated yields BaseCol's value plus bounded uniform noise in
	// [-Noise, +Noise], clamped to [0, Domain). It creates the cross-column
	// correlation that breaks independence-based estimation.
	Correlated
	// FK yields uniform references into [0, Domain) where Domain is the
	// referenced table's row count.
	FK
	// FKZipf yields Zipf-skewed references (popular dimension rows).
	FKZipf
)

// ColSpec describes one generated column.
type ColSpec struct {
	Name   string
	Kind   DistKind
	Domain int64   // value domain size (or referenced row count for FK kinds)
	Skew   float64 // Zipf exponent for Zipf/FKZipf (default 1.1)
	Spread float64 // Normal: stddev as a fraction of Domain (default 0.15)
	// BaseCol is the index of the column a Correlated column follows.
	BaseCol int
	// Noise is the half-width of the Correlated noise band (default Domain/20).
	Noise int64
}

// GenTable builds a table of rows rows following the column specs.
func GenTable(rng *mlmath.RNG, name string, rows int, specs []ColSpec) (*catalog.Table, error) {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	t := catalog.NewTable(name, names...)
	samplers := make([]func(row int, vals []int64) int64, len(specs))
	for i, s := range specs {
		sam, err := makeSampler(rng, s)
		if err != nil {
			return nil, fmt.Errorf("datagen: column %s of %s: %w", s.Name, name, err)
		}
		samplers[i] = sam
	}
	vals := make([]int64, len(specs))
	for r := 0; r < rows; r++ {
		for c := range specs {
			vals[c] = samplers[c](r, vals)
		}
		if err := t.AppendRow(vals); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func makeSampler(rng *mlmath.RNG, s ColSpec) (func(int, []int64) int64, error) {
	dom := s.Domain
	if dom <= 0 && s.Kind != Sequential {
		return nil, fmt.Errorf("domain must be positive, got %d", dom)
	}
	clampDom := func(v int64) int64 {
		if v < 0 {
			return 0
		}
		if v >= dom {
			return dom - 1
		}
		return v
	}
	switch s.Kind {
	case Sequential:
		return func(row int, _ []int64) int64 { return int64(row) }, nil
	case Uniform, FK:
		return func(_ int, _ []int64) int64 { return int64(rng.Intn(int(dom))) }, nil
	case Zipf, FKZipf:
		skew := s.Skew
		if skew <= 0 {
			skew = 1.1
		}
		z := mlmath.NewZipf(rng, skew, int(dom))
		return func(_ int, _ []int64) int64 { return int64(z.Draw()) }, nil
	case Normal:
		spread := s.Spread
		if spread <= 0 {
			spread = 0.15
		}
		sd := float64(dom) * spread
		mean := float64(dom) / 2
		return func(_ int, _ []int64) int64 {
			return clampDom(int64(mean + sd*rng.NormFloat64()))
		}, nil
	case Correlated:
		noise := s.Noise
		if noise <= 0 {
			noise = dom / 20
			if noise < 1 {
				noise = 1
			}
		}
		base := s.BaseCol
		return func(_ int, vals []int64) int64 {
			d := int64(rng.Intn(int(2*noise+1))) - noise
			return clampDom(vals[base] + d)
		}, nil
	default:
		return nil, fmt.Errorf("unknown distribution %d", s.Kind)
	}
}

// StarSchema describes a generated star schema: one fact table referencing
// numDims dimension tables, with correlated filter columns on the fact table.
type StarSchema struct {
	Cat    *catalog.Catalog
	FactID int
	DimIDs []int
	// FKCol[i] is the fact-table column referencing dimension i's id column.
	FKCol []int
	// AttrCols are the positions of the fact table's filterable measure
	// columns (attr0 and attr1 are correlated with each other).
	AttrCols []int
}

// NewStarSchema generates a star schema: fact(fk0..fk{d-1}, attr0, attr1,
// attr2) and dims dim_i(id, a, b). attr1 is correlated with attr0; attr2 is
// independent Zipf. Dimension attribute a is Normal, b Uniform.
func NewStarSchema(rng *mlmath.RNG, factRows, dimRows, numDims int) (*StarSchema, error) {
	cat := catalog.NewCatalog()
	s := &StarSchema{Cat: cat}
	for d := 0; d < numDims; d++ {
		t, err := GenTable(rng, fmt.Sprintf("dim%d", d), dimRows, []ColSpec{
			{Name: "id", Kind: Sequential},
			{Name: "a", Kind: Normal, Domain: 1000},
			{Name: "b", Kind: Uniform, Domain: 100},
		})
		if err != nil {
			return nil, err
		}
		s.DimIDs = append(s.DimIDs, cat.MustAdd(t))
	}
	specs := make([]ColSpec, 0, numDims+3)
	for d := 0; d < numDims; d++ {
		kind := FK
		if d%2 == 1 {
			kind = FKZipf // odd dimensions get skewed references
		}
		specs = append(specs, ColSpec{Name: fmt.Sprintf("fk%d", d), Kind: kind, Domain: int64(dimRows)})
		s.FKCol = append(s.FKCol, d)
	}
	attrBase := numDims
	specs = append(specs,
		ColSpec{Name: "attr0", Kind: Normal, Domain: 1000},
		ColSpec{Name: "attr1", Kind: Correlated, Domain: 1000, BaseCol: attrBase, Noise: 25},
		ColSpec{Name: "attr2", Kind: Zipf, Domain: 1000, Skew: 1.2},
	)
	s.AttrCols = []int{attrBase, attrBase + 1, attrBase + 2}
	fact, err := GenTable(rng, "fact", factRows, specs)
	if err != nil {
		return nil, err
	}
	s.FactID = cat.MustAdd(fact)
	cat.AnalyzeAll(32, 512)
	return s, nil
}

// ChainSchema generates a linear chain of tables t0 — t1 — ... — t{n-1},
// where t{i} has a foreign key into t{i+1}. Used by join-order experiments.
type ChainSchema struct {
	Cat      *catalog.Catalog
	TableIDs []int
}

// NewChainSchema builds a chain of n tables with the given row counts
// (len(rows) == n). Each table has columns (id, next, attr): next references
// the following table's id; attr is a filterable Normal column.
func NewChainSchema(rng *mlmath.RNG, rows []int) (*ChainSchema, error) {
	cat := catalog.NewCatalog()
	s := &ChainSchema{Cat: cat}
	for i, r := range rows {
		nextDom := int64(1)
		if i+1 < len(rows) {
			nextDom = int64(rows[i+1])
		}
		t, err := GenTable(rng, fmt.Sprintf("t%d", i), r, []ColSpec{
			{Name: "id", Kind: Sequential},
			{Name: "next", Kind: FK, Domain: nextDom},
			{Name: "attr", Kind: Normal, Domain: 1000},
		})
		if err != nil {
			return nil, err
		}
		s.TableIDs = append(s.TableIDs, cat.MustAdd(t))
	}
	cat.AnalyzeAll(32, 512)
	return s, nil
}
