package datagen

import (
	"testing"

	"ml4db/internal/mlmath"
)

func TestGenTableShapes(t *testing.T) {
	rng := mlmath.NewRNG(1)
	tb, err := GenTable(rng, "t", 1000, []ColSpec{
		{Name: "id", Kind: Sequential},
		{Name: "u", Kind: Uniform, Domain: 50},
		{Name: "z", Kind: Zipf, Domain: 50, Skew: 1.3},
		{Name: "n", Kind: Normal, Domain: 100},
		{Name: "c", Kind: Correlated, Domain: 100, BaseCol: 3, Noise: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1000 || tb.NumCols() != 5 {
		t.Fatalf("shape = %dx%d", tb.NumRows(), tb.NumCols())
	}
	for r := 0; r < 1000; r++ {
		if tb.Data[0][r] != int64(r) {
			t.Fatal("sequential column broken")
		}
		if v := tb.Data[1][r]; v < 0 || v >= 50 {
			t.Fatalf("uniform out of domain: %d", v)
		}
		if d := tb.Data[4][r] - tb.Data[3][r]; d < -5 || d > 5 {
			// Clamping at domain edges can exceed the band only toward 0/99.
			if tb.Data[4][r] != 0 && tb.Data[4][r] != 99 {
				t.Fatalf("correlated column outside noise band: base=%d corr=%d", tb.Data[3][r], tb.Data[4][r])
			}
		}
	}
}

func TestGenTableCorrelationIsStrong(t *testing.T) {
	rng := mlmath.NewRNG(2)
	tb, err := GenTable(rng, "t", 5000, []ColSpec{
		{Name: "a", Kind: Normal, Domain: 1000},
		{Name: "b", Kind: Correlated, Domain: 1000, BaseCol: 0, Noise: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pearson correlation should be near 1.
	xs := make([]float64, 5000)
	ys := make([]float64, 5000)
	for i := 0; i < 5000; i++ {
		xs[i] = float64(tb.Data[0][i])
		ys[i] = float64(tb.Data[1][i])
	}
	mx, my := mlmath.Mean(xs), mlmath.Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		sxy += (xs[i] - mx) * (ys[i] - my)
		sxx += (xs[i] - mx) * (xs[i] - mx)
		syy += (ys[i] - my) * (ys[i] - my)
	}
	r := sxy / (mlmath.Clamp(sxx, 1e-9, 1e18) * mlmath.Clamp(syy, 1e-9, 1e18))
	r = sxy * sxy / (sxx * syy)
	if r < 0.9 {
		t.Errorf("correlation r² = %.3f, want > 0.9", r)
	}
}

func TestGenTableErrors(t *testing.T) {
	rng := mlmath.NewRNG(3)
	if _, err := GenTable(rng, "t", 10, []ColSpec{{Name: "x", Kind: Uniform, Domain: 0}}); err == nil {
		t.Error("expected error for zero domain")
	}
	if _, err := GenTable(rng, "t", 10, []ColSpec{{Name: "x", Kind: DistKind(99), Domain: 5}}); err == nil {
		t.Error("expected error for unknown distribution")
	}
}

func TestStarSchemaIntegrity(t *testing.T) {
	rng := mlmath.NewRNG(4)
	s, err := NewStarSchema(rng, 2000, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.DimIDs) != 3 || len(s.FKCol) != 3 {
		t.Fatalf("schema shape: %+v", s)
	}
	fact := s.Cat.Table(s.FactID)
	if fact.NumRows() != 2000 {
		t.Errorf("fact rows = %d", fact.NumRows())
	}
	// FK integrity: every fk value must exist in the dimension.
	for d := 0; d < 3; d++ {
		dim := s.Cat.Table(s.DimIDs[d])
		for r := 0; r < fact.NumRows(); r++ {
			fk := fact.Data[s.FKCol[d]][r]
			if fk < 0 || fk >= int64(dim.NumRows()) {
				t.Fatalf("fk%d value %d out of dim range", d, fk)
			}
		}
	}
	// Stats must be analyzed.
	if fact.Columns[0].Stats == nil {
		t.Error("fact table not analyzed")
	}
}

func TestChainSchemaIntegrity(t *testing.T) {
	rng := mlmath.NewRNG(5)
	s, err := NewChainSchema(rng, []int{100, 50, 25})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < 3; i++ {
		t0 := s.Cat.Table(s.TableIDs[i])
		next := s.Cat.Table(s.TableIDs[i+1])
		for r := 0; r < t0.NumRows(); r++ {
			v := t0.Data[1][r]
			if v < 0 || v >= int64(next.NumRows()) {
				t.Fatalf("t%d.next = %d out of t%d range", i, v, i+1)
			}
		}
	}
}

func TestGenerationDeterminism(t *testing.T) {
	a, err := GenTable(mlmath.NewRNG(42), "t", 100, []ColSpec{{Name: "u", Kind: Uniform, Domain: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenTable(mlmath.NewRNG(42), "t", 100, []ColSpec{{Name: "u", Kind: Uniform, Domain: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 100; r++ {
		if a.Data[0][r] != b.Data[0][r] {
			t.Fatal("generation not deterministic")
		}
	}
}
