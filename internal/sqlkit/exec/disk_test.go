package exec

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/storage"
)

// diskFixture builds twin catalogs — one in-memory, one spilled to disk
// through pool — holding the same two tables.
func diskFixture(t *testing.T, pool *storage.Pool, nrows int) (mem, disk *catalog.Catalog) {
	t.Helper()
	dir := t.TempDir()
	mem, disk = catalog.NewCatalog(), catalog.NewCatalog()
	for _, spec := range []struct {
		name string
		cols []string
	}{
		{"orders", []string{"id", "cust", "amount"}},
		{"customers", []string{"id", "region"}},
	} {
		mt := catalog.NewTable(spec.name, spec.cols...)
		dt := catalog.NewTable(spec.name, spec.cols...)
		n := nrows
		if spec.name == "customers" {
			n = nrows / 4
		}
		for r := 0; r < n; r++ {
			row := make([]int64, len(spec.cols))
			for c := range row {
				row[c] = int64((r*31 + c*17) % 97)
			}
			row[0] = int64(r % (n/4 + 1))
			if err := mt.AppendRow(row); err != nil {
				t.Fatal(err)
			}
			if err := dt.AppendRow(row); err != nil {
				t.Fatal(err)
			}
		}
		catalog.AnalyzeTable(mt, 16, 64)
		catalog.AnalyzeTable(dt, 16, 64)
		if err := dt.SpillToDisk(filepath.Join(dir, spec.name+".tbl"), pool); err != nil {
			t.Fatal(err)
		}
		mem.MustAdd(mt)
		disk.MustAdd(dt)
	}
	return mem, disk
}

func scanNode(tid int, filters ...expr.Pred) *plan.Node {
	return plan.NewScan(0, tid, filters)
}

func TestDiskSeqScanMatchesInMemory(t *testing.T) {
	pool := storage.NewPool(storage.PoolOptions{Capacity: 2})
	mem, disk := diskFixture(t, pool, 400)
	filters := []expr.Pred{{Col: 2, Op: expr.GE, Lo: 10}}

	rm, err := New(mem).Execute(scanNode(0, filters...), Options{})
	if err != nil {
		t.Fatal(err)
	}
	nd := scanNode(0, filters...)
	rd, err := New(disk).Execute(nd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rm.Rows, rd.Rows) {
		t.Fatalf("disk scan rows diverge: %d vs %d rows", len(rd.Rows), len(rm.Rows))
	}
	if rd.Counters.ScanTuples != rm.Counters.ScanTuples {
		t.Fatalf("scan tuples: disk %d vs mem %d", rd.Counters.ScanTuples, rm.Counters.ScanTuples)
	}
	// The disk scan read pages through a 2-frame pool over a larger table:
	// it must have charged misses and annotated the node.
	if rd.Counters.PageMiss == 0 || nd.ActualPageMisses != float64(rd.Counters.PageMiss) {
		t.Fatalf("PageMiss=%d ActualPageMisses=%v", rd.Counters.PageMiss, nd.ActualPageMisses)
	}
	if rm.Counters.PageMiss != 0 {
		t.Fatalf("in-memory scan charged %d page misses", rm.Counters.PageMiss)
	}
	if n := pool.PinnedCount(); n != 0 {
		t.Fatalf("scan left %d pinned pages", n)
	}
}

func TestDiskIndexScanMatchesInMemory(t *testing.T) {
	pool := storage.NewPool(storage.PoolOptions{Capacity: 2})
	mem, disk := diskFixture(t, pool, 400)
	for _, cat := range []*catalog.Catalog{mem, disk} {
		ix, err := catalog.BuildSecondaryIndexIO(cat.Table(0), 2)
		if err != nil {
			t.Fatal(err)
		}
		cat.Table(0).AddIndex(ix)
	}
	node := func(c *catalog.Catalog) *plan.Node {
		n := plan.NewIndexScan(0, 0, 2, []expr.Pred{{Col: 2, Op: expr.BETWEEN, Lo: 20, Hi: 60}})
		_ = c
		return n
	}

	rm, err := New(mem).Execute(node(mem), Options{})
	if err != nil {
		t.Fatal(err)
	}
	nd := node(disk)
	rd, err := New(disk).Execute(nd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rm.Rows) == 0 || !reflect.DeepEqual(sortedRows(rm.Rows), sortedRows(rd.Rows)) {
		t.Fatalf("disk index scan diverges: %d vs %d rows", len(rd.Rows), len(rm.Rows))
	}
	if rd.Counters.IndexFetch != rm.Counters.IndexFetch {
		t.Fatalf("index fetches: disk %d vs mem %d", rd.Counters.IndexFetch, rm.Counters.IndexFetch)
	}
	if rd.Counters.PageMiss == 0 || nd.ActualPageMisses != float64(rd.Counters.PageMiss) {
		t.Fatalf("PageMiss=%d ActualPageMisses=%v", rd.Counters.PageMiss, nd.ActualPageMisses)
	}
	if n := pool.PinnedCount(); n != 0 {
		t.Fatalf("index scan left %d pinned pages", n)
	}
}

func TestDiskJoinMatchesInMemory(t *testing.T) {
	pool := storage.NewPool(storage.PoolOptions{Capacity: 3})
	mem, disk := diskFixture(t, pool, 200)
	join := func() *plan.Node {
		l := plan.NewScan(0, 0, nil)
		r := plan.NewScan(1, 1, nil)
		return plan.NewJoin(plan.OpHashJoin, l, r, 1, 0)
	}
	rm, err := New(mem).Execute(join(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := New(disk).Execute(join(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rm.Rows) == 0 || !reflect.DeepEqual(rm.Rows, rd.Rows) {
		t.Fatalf("disk join diverges: %d vs %d rows", len(rd.Rows), len(rm.Rows))
	}
}

func TestDiskScanBudgetAbortLeavesNoPins(t *testing.T) {
	pool := storage.NewPool(storage.PoolOptions{Capacity: 2})
	_, disk := diskFixture(t, pool, 400)
	n := scanNode(0)
	_, err := New(disk).Execute(n, Options{Budget: &Budget{MaxWork: 50}})
	if !errors.Is(err, ErrWorkBudgetExceeded) {
		t.Fatalf("got %v, want budget abort", err)
	}
	if got := pool.PinnedCount(); got != 0 {
		t.Fatalf("budget-aborted scan left %d pinned pages", got)
	}
	// Row budgets abort through the same path.
	_, err = New(disk).Execute(scanNode(0), Options{Budget: &Budget{MaxRows: 10}})
	if !errors.Is(err, ErrWorkBudgetExceeded) {
		t.Fatalf("got %v, want row-budget abort", err)
	}
	if got := pool.PinnedCount(); got != 0 {
		t.Fatalf("row-budget abort left %d pinned pages", got)
	}
}

func sortedRows(rows [][]int64) [][]int64 {
	out := make([][]int64, len(rows))
	copy(out, rows)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && lessRow(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func lessRow(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
