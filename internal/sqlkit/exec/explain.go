package exec

import (
	"fmt"
	"strings"
	"time"

	"ml4db/internal/sqlkit/plan"
)

// OpStats are the per-operator measurements behind EXPLAIN ANALYZE. The
// Subtree* fields are inclusive (the operator and everything below it); the
// exclusive fields attribute each unit to exactly one operator, so summing
// an exclusive field over all operators reproduces the query total —
// exclusive Work sums to Counters.Total(), and the exclusive Counters sum
// category-by-category to the executor's Counters. That identity is what
// keeps the model-feature vector (Counters.Vec) and the EXPLAIN ANALYZE
// readout from ever disagreeing.
type OpStats struct {
	// Rows is the number of tuples the operator produced; Loops counts how
	// many times it ran (1 per execution in this engine).
	Rows  int64
	Loops int64

	// Work and Counters are exclusive: charged to this operator alone.
	Work     int64
	Counters Counters
	// Dur is the exclusive wall time, read through the executor's Clock.
	Dur time.Duration

	// SubtreeWork, SubtreeCounters, and SubtreeDur are inclusive.
	SubtreeWork     int64
	SubtreeCounters Counters
	SubtreeDur      time.Duration
}

// Explain is the EXPLAIN ANALYZE view of one execution: per-operator stats
// addressable by plan node, renderable as an indented text tree.
type Explain struct {
	Root  *plan.Node
	stats map[*plan.Node]*OpStats
}

// Stats returns the recorded stats for a plan node (nil if the node never
// ran, e.g. after a work-budget abort).
func (x *Explain) Stats(n *plan.Node) *OpStats {
	if x == nil {
		return nil
	}
	return x.stats[n]
}

// TotalWork sums the exclusive per-operator work — by construction equal to
// the execution's Counters.Total().
func (x *Explain) TotalWork() int64 {
	var total int64
	for _, st := range x.stats {
		total += st.Work
	}
	return total
}

// stat returns (creating on first use) the stats slot for a node.
func (x *Explain) stat(n *plan.Node) *OpStats {
	st, ok := x.stats[n]
	if !ok {
		st = &OpStats{}
		x.stats[n] = st
	}
	return st
}

// finish derives the exclusive fields: each operator's subtree totals minus
// the subtree totals of its children. The exclusive values telescope, so
// their sum over the tree equals the root's subtree total exactly.
//
// A child node referenced more than once by the same parent (a rescanned
// subtree, e.g. a self-join reusing one scan on both sides) holds ONE stats
// entry that already accumulates every loop, so its subtree totals are
// subtracted once per distinct child — subtracting per reference would
// double-count the rescans and break the telescoping identity against
// Counters.Total().
func (x *Explain) finish() {
	x.Root.Walk(func(n *plan.Node) {
		st, ok := x.stats[n]
		if !ok {
			return
		}
		st.Work = st.SubtreeWork
		st.Counters = st.SubtreeCounters
		st.Dur = st.SubtreeDur
		for i, c := range n.Children {
			shared := false
			for _, prev := range n.Children[:i] {
				if prev == c {
					shared = true
					break
				}
			}
			if shared {
				continue
			}
			if cst, ok := x.stats[c]; ok {
				st.Work -= cst.SubtreeWork
				st.Counters = subCounters(st.Counters, cst.SubtreeCounters)
				st.Dur -= cst.SubtreeDur
			}
		}
	})
}

// String renders the EXPLAIN ANALYZE tree: one line per operator with
// estimated vs actual rows, loops, exclusive work units and their category
// breakdown, and exclusive operator time. Under a ManualClock the rendering
// is fully deterministic (golden-tested).
func (x *Explain) String() string {
	var b strings.Builder
	x.render(&b, x.Root, 0)
	return b.String()
}

func (x *Explain) render(b *strings.Builder, n *plan.Node, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(opDesc(n))
	if st, ok := x.stats[n]; ok {
		fmt.Fprintf(b, " est_rows=%.0f rows=%d loops=%d work=%d time=%dµs%s",
			n.EstRows, st.Rows, st.Loops, st.Work, st.Dur.Microseconds(), counterBreakdown(st.Counters))
	} else {
		fmt.Fprintf(b, " est_rows=%.0f (never executed)", n.EstRows)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		x.render(b, c, depth+1)
	}
}

// opDesc renders the operator head: operator name plus scan target and
// filters, or the join condition.
func opDesc(n *plan.Node) string {
	var b strings.Builder
	if n.IsLeaf() {
		fmt.Fprintf(&b, "%s(t%d#%d", n.Op, n.TablePos, n.TableID)
		if n.Op == plan.OpIndexScan {
			fmt.Fprintf(&b, " ix=c%d", n.IndexCol)
		}
		for _, f := range n.Filters {
			fmt.Fprintf(&b, " %s", f)
		}
		b.WriteString(")")
	} else if n.Op == plan.OpHashAgg {
		fmt.Fprintf(&b, "%s(g=c%d", n.Op, n.GroupCol)
		for _, c := range n.SumCols {
			fmt.Fprintf(&b, " sum=c%d", c)
		}
		b.WriteString(")")
	} else {
		fmt.Fprintf(&b, "%s(l.c%d = r.c%d)", n.Op, n.LeftCol, n.RightCol)
	}
	if n.Partitions > 1 {
		fmt.Fprintf(&b, " par=%d", n.Partitions)
	}
	return b.String()
}

// counterBreakdown lists the nonzero work categories in Counters.Vec order.
func counterBreakdown(c Counters) string {
	parts := make([]string, 0, 10)
	add := func(name string, v int64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("scan", c.ScanTuples)
	add("build", c.HashBuild)
	add("probe", c.HashProbe)
	add("nl", c.NLPairs)
	add("msort", c.MergeSort)
	add("mscan", c.MergeScan)
	add("out", c.OutputTuple)
	add("iprobe", c.IndexProbe)
	add("ifetch", c.IndexFetch)
	add("pmiss", c.PageMiss)
	add("agg", c.AggInput)
	if len(parts) == 0 {
		return ""
	}
	return " [" + strings.Join(parts, " ") + "]"
}

// addCounters returns a + b category-wise.
func addCounters(a, b Counters) Counters {
	return Counters{
		ScanTuples:  a.ScanTuples + b.ScanTuples,
		HashBuild:   a.HashBuild + b.HashBuild,
		HashProbe:   a.HashProbe + b.HashProbe,
		NLPairs:     a.NLPairs + b.NLPairs,
		MergeSort:   a.MergeSort + b.MergeSort,
		MergeScan:   a.MergeScan + b.MergeScan,
		OutputTuple: a.OutputTuple + b.OutputTuple,
		IndexProbe:  a.IndexProbe + b.IndexProbe,
		IndexFetch:  a.IndexFetch + b.IndexFetch,
		PageMiss:    a.PageMiss + b.PageMiss,
		AggInput:    a.AggInput + b.AggInput,
	}
}

// subCounters returns a − b category-wise.
func subCounters(a, b Counters) Counters {
	return Counters{
		ScanTuples:  a.ScanTuples - b.ScanTuples,
		HashBuild:   a.HashBuild - b.HashBuild,
		HashProbe:   a.HashProbe - b.HashProbe,
		NLPairs:     a.NLPairs - b.NLPairs,
		MergeSort:   a.MergeSort - b.MergeSort,
		MergeScan:   a.MergeScan - b.MergeScan,
		OutputTuple: a.OutputTuple - b.OutputTuple,
		IndexProbe:  a.IndexProbe - b.IndexProbe,
		IndexFetch:  a.IndexFetch - b.IndexFetch,
		PageMiss:    a.PageMiss - b.PageMiss,
		AggInput:    a.AggInput - b.AggInput,
	}
}

// opSpanName maps an operator to its constant span name, avoiding string
// concatenation on the tracing path.
func opSpanName(op plan.OpType) string {
	switch op {
	case plan.OpSeqScan:
		return "exec.SeqScan"
	case plan.OpIndexScan:
		return "exec.IndexScan"
	case plan.OpHashJoin:
		return "exec.HashJoin"
	case plan.OpNLJoin:
		return "exec.NLJoin"
	case plan.OpMergeJoin:
		return "exec.MergeJoin"
	case plan.OpHashAgg:
		return "exec.HashAgg"
	default:
		return "exec.Op"
	}
}
