package exec

import (
	"errors"
	"fmt"
	"sort"

	"ml4db/internal/mlmath"
	"ml4db/internal/obs"
	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
)

// ErrWorkBudgetExceeded is the budget-abort sentinel. Execution aborts
// return a *BudgetExceededError carrying which limit tripped and how far;
// errors.Is(err, ErrWorkBudgetExceeded) matches any budget abort, so legacy
// callers keep working.
var ErrWorkBudgetExceeded = errors.New("exec: work budget exceeded")

// Budget is a deterministic per-query resource limit, checked in the
// executor's operator loops. Budgets are counted in work units and
// materialized tuples — never wall-clock time — so an aborted execution
// aborts at exactly the same point on every replay (the property that keeps
// engine-level cancellation byte-identical under mlmath.ManualClock).
type Budget struct {
	// MaxWork aborts execution once this many work units are consumed.
	// Zero means unlimited.
	MaxWork int64
	// MaxRows aborts execution once the operators have materialized this
	// many output tuples in total (scan outputs and join outputs alike).
	// Zero means unlimited.
	MaxRows int64
}

// BudgetExceededError reports a deterministic budget abort: which limit
// tripped, the configured limit, and the counter value at the abort point.
// It matches ErrWorkBudgetExceeded under errors.Is.
type BudgetExceededError struct {
	// Kind is "work" or "rows".
	Kind        string
	Limit, Used int64
}

// Error implements error.
func (e *BudgetExceededError) Error() string {
	return fmt.Sprintf("exec: %s budget exceeded (limit %d, used %d)", e.Kind, e.Limit, e.Used)
}

// Is reports budget aborts as ErrWorkBudgetExceeded so existing sentinel
// comparisons via errors.Is keep matching.
func (e *BudgetExceededError) Is(target error) bool { return target == ErrWorkBudgetExceeded }

// Options configures execution.
type Options struct {
	// MaxWork aborts execution once this many work units are consumed.
	// Zero means unlimited. Deprecated in favor of Budget; when both are
	// set the stricter work limit wins.
	MaxWork int64
	// Budget, when non-nil, bounds the execution's work units and
	// materialized rows (see Budget). Aborts surface as
	// *BudgetExceededError.
	Budget *Budget
	// Analyze collects per-operator EXPLAIN ANALYZE stats into
	// Result.Explain.
	Analyze bool
	// Span, when the executor has a Tracer, becomes the parent of the
	// execution's spans — letting callers nest execute under a query span.
	Span *obs.Span
	// Pool runs partitioned operators' shards in parallel. A nil pool (or a
	// one-worker pool) runs every shard inline on the calling goroutine.
	// The results are bit-identical for any pool: partitioning is a pure
	// function of the plan's Partitions knob, and shard outputs and charge
	// logs are merged in fixed shard order (see exchange.go).
	Pool *mlmath.Pool
}

// effectiveBudget folds the legacy MaxWork field and the Budget struct into
// one (maxWork, maxRows) pair, taking the stricter work limit.
func (o Options) effectiveBudget() (maxWork, maxRows int64) {
	maxWork = o.MaxWork
	if o.Budget != nil {
		if o.Budget.MaxWork > 0 && (maxWork == 0 || o.Budget.MaxWork < maxWork) {
			maxWork = o.Budget.MaxWork
		}
		maxRows = o.Budget.MaxRows
	}
	return maxWork, maxRows
}

// workBuckets are the histogram bounds for the exec.work metric, shared so
// the per-query hot path never rebuilds them.
var workBuckets = obs.ExpBuckets(16, 4, 12)

// Counters break total work down by operation category — the quantities a
// formula cost model weights with its parameters. ParamTree (§3.2) fits
// those parameters from observed (Counters, latency) pairs.
type Counters struct {
	ScanTuples  int64 // tuples read by SeqScan
	HashBuild   int64 // build-side tuples of HashJoin
	HashProbe   int64 // probe-side tuples of HashJoin
	NLPairs     int64 // (outer, inner) pairs of NLJoin
	MergeSort   int64 // tuple·log(tuple) units of MergeJoin sorting
	MergeScan   int64 // merge-phase steps of MergeJoin
	OutputTuple int64 // join output tuples (hash and merge), and HashAgg groups emitted
	IndexProbe  int64 // binary-search steps of IndexScan probes
	IndexFetch  int64 // rows fetched through a secondary index
	PageMiss    int64 // buffer-pool misses charged to disk-table scans
	AggInput    int64 // input tuples accumulated by HashAgg
}

// Total sums all categories (each weighted 1): the executor's work units.
func (c Counters) Total() int64 {
	return c.ScanTuples + c.HashBuild + c.HashProbe + c.NLPairs +
		c.MergeSort + c.MergeScan + c.OutputTuple + c.IndexProbe + c.IndexFetch +
		c.PageMiss + c.AggInput
}

// Vec returns the counters in optimizer.CostParams.Vec order.
func (c Counters) Vec() []float64 {
	return []float64{
		float64(c.ScanTuples), float64(c.HashBuild), float64(c.HashProbe),
		float64(c.NLPairs), float64(c.MergeSort), float64(c.MergeScan),
		float64(c.OutputTuple), float64(c.IndexProbe), float64(c.IndexFetch),
		float64(c.PageMiss), float64(c.AggInput),
	}
}

// Result is the outcome of executing a plan.
type Result struct {
	// Rows holds the materialized output tuples.
	Rows [][]int64
	// Work is the total deterministic work units consumed.
	Work int64
	// Counters break Work down by operation category.
	Counters Counters
	// Explain holds per-operator stats when Options.Analyze was set.
	Explain *Explain
}

// Executor runs plans against a catalog. The observability fields are all
// optional: with Trace, Metrics, and Clock left nil the executor behaves
// exactly as before and the instrumentation costs one branch per operator.
type Executor struct {
	Cat *catalog.Catalog
	// Trace records spans around Execute and each operator.
	Trace *obs.Tracer
	// Metrics receives exec.queries and the exec.work histogram.
	Metrics *obs.Registry
	// Clock times operators for EXPLAIN ANALYZE; nil means the system
	// clock. Inject a ManualClock (shared with the Tracer) for
	// deterministic timings.
	Clock mlmath.Clock
}

// New returns an executor over the catalog.
func New(cat *catalog.Catalog) *Executor { return &Executor{Cat: cat} }

// Execute runs the plan and returns the result. Node.ActualRows annotations
// are filled in along the way.
func (e *Executor) Execute(root *plan.Node, opts Options) (*Result, error) {
	maxWork, maxRows := opts.effectiveBudget()
	st := &execState{cat: e.Cat, maxWork: maxWork, maxRows: maxRows, pool: opts.Pool}
	observed := opts.Analyze || e.Trace != nil
	if observed {
		st.tr = e.Trace
		st.clock = mlmath.ClockOrSystem(e.Clock)
		if opts.Analyze {
			st.ex = &Explain{Root: root, stats: make(map[*plan.Node]*OpStats)}
		}
		st.cur = st.tr.StartSpan("exec.execute", opts.Span)
	}
	rows, err := st.run(root)
	if st.ex != nil {
		st.ex.finish()
	}
	if observed {
		st.cur.SetInt("work", st.work).SetInt("rows", int64(len(rows))).End()
	}
	if e.Metrics != nil {
		e.Metrics.Counter("exec.queries").Inc()
		e.Metrics.Histogram("exec.work", workBuckets).Observe(float64(st.work))
	}
	if err != nil {
		return &Result{Work: st.work, Counters: st.ctr, Explain: st.ex}, err
	}
	return &Result{Rows: rows, Work: st.work, Counters: st.ctr, Explain: st.ex}, nil
}

// ExecuteCount is Execute but discards rows, returning only cardinality and
// work — the common case for training-signal collection.
func (e *Executor) ExecuteCount(root *plan.Node, opts Options) (card int, work int64, err error) {
	res, err := e.Execute(root, opts)
	if err != nil {
		return 0, res.Work, err
	}
	return len(res.Rows), res.Work, nil
}

type execState struct {
	cat     *catalog.Catalog
	work    int64
	maxWork int64
	rows    int64 // tuples materialized by all operators
	maxRows int64
	ctr     Counters
	// pool runs partitioned operators' shards; nil means inline. Shards
	// never touch this struct — they log into private shardLogs the
	// coordinator replays in shard order (see exchange.go).
	pool *mlmath.Pool

	// Observability state, all nil/unused on the fast path.
	ex    *Explain
	tr    *obs.Tracer
	cur   *obs.Span // innermost open span: parent for the next operator
	clock mlmath.Clock
}

// charge adds units to the given category counter and the total, enforcing
// the work budget.
func (s *execState) charge(counter *int64, units int64) error {
	*counter += units
	s.work += units
	if s.maxWork > 0 && s.work > s.maxWork {
		return &BudgetExceededError{Kind: "work", Limit: s.maxWork, Used: s.work}
	}
	return nil
}

// chargeRows counts tuples materialized by an operator, enforcing the row
// budget.
func (s *execState) chargeRows(n int64) error {
	s.rows += n
	if s.maxRows > 0 && s.rows > s.maxRows {
		return &BudgetExceededError{Kind: "rows", Limit: s.maxRows, Used: s.rows}
	}
	return nil
}

// run evaluates one plan node. The fast path — no EXPLAIN ANALYZE, no
// tracer — dispatches directly so uninstrumented execution pays a single
// branch per operator.
func (s *execState) run(n *plan.Node) ([][]int64, error) {
	if s.ex == nil && s.tr == nil {
		return s.dispatch(n)
	}
	return s.runObserved(n)
}

// runObserved wraps dispatch with a per-operator span and accumulates the
// node's subtree totals (work, counters, clock time) for EXPLAIN ANALYZE.
func (s *execState) runObserved(n *plan.Node) ([][]int64, error) {
	prev := s.cur
	sp := s.tr.StartSpan(opSpanName(n.Op), prev)
	s.cur = sp
	workBefore, ctrBefore := s.work, s.ctr
	start := s.clock.Now()
	rows, err := s.dispatch(n)
	dur := s.clock.Now().Sub(start)
	if s.ex != nil {
		st := s.ex.stat(n)
		st.Loops++
		st.Rows += int64(len(rows))
		st.SubtreeWork += s.work - workBefore
		st.SubtreeCounters = addCounters(st.SubtreeCounters, subCounters(s.ctr, ctrBefore))
		st.SubtreeDur += dur
	}
	sp.SetInt("rows", int64(len(rows))).SetInt("work", s.work-workBefore)
	sp.End()
	s.cur = prev
	return rows, err
}

func (s *execState) dispatch(n *plan.Node) ([][]int64, error) {
	switch n.Op {
	case plan.OpSeqScan:
		return s.seqScan(n)
	case plan.OpIndexScan:
		return s.indexScan(n)
	case plan.OpHashJoin:
		return s.hashJoin(n)
	case plan.OpNLJoin:
		return s.nlJoin(n)
	case plan.OpMergeJoin:
		return s.mergeJoin(n)
	case plan.OpHashAgg:
		return s.hashAgg(n)
	default:
		return nil, fmt.Errorf("exec: unknown operator %v", n.Op)
	}
}

func (s *execState) seqScan(n *plan.Node) ([][]int64, error) {
	t := s.cat.Table(n.TableID)
	if t.Virtual != nil {
		return s.seqScanVirtual(n, t) // virtual sources materialize as a unit; Partitions is ignored
	}
	if t.Disk != nil {
		if n.Partitions > 1 {
			return s.seqScanDiskPartitioned(n, t)
		}
		return s.seqScanDisk(n, t)
	}
	if n.Partitions > 1 {
		return s.seqScanPartitioned(n, t)
	}
	nRows := t.NumRows()
	nCols := t.NumCols()
	var out [][]int64
	for r := 0; r < nRows; r++ {
		if err := s.charge(&s.ctr.ScanTuples, 1); err != nil {
			return nil, err
		}
		ok := true
		for _, f := range n.Filters {
			if !f.Eval(t.Data[f.Col][r]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if err := s.chargeRows(1); err != nil {
			return nil, err
		}
		row := make([]int64, nCols)
		for c := 0; c < nCols; c++ {
			row[c] = t.Data[c][r]
		}
		out = append(out, row)
	}
	n.ActualRows = float64(len(out))
	return out, nil
}

// indexScan reads the rows matching the node's interval predicate on
// IndexCol through the secondary index, then applies the remaining filters.
func (s *execState) indexScan(n *plan.Node) ([][]int64, error) {
	t := s.cat.Table(n.TableID)
	ix := t.Index(n.IndexCol)
	if ix == nil {
		return nil, fmt.Errorf("exec: no index on column %d of %s", n.IndexCol, t.Name)
	}
	if ix.Hypothetical {
		return nil, fmt.Errorf("exec: index on column %d of %s is hypothetical (what-if only)", n.IndexCol, t.Name)
	}
	lo, hi, residual, ok := indexInterval(t, n)
	if !ok {
		return nil, fmt.Errorf("exec: IndexScan on %s has no interval predicate on c%d", t.Name, n.IndexCol)
	}
	// One probe costs a binary search over the index.
	if err := s.charge(&s.ctr.IndexProbe, log2int(ix.Len())); err != nil {
		return nil, err
	}
	if t.Disk != nil {
		return s.indexScanDisk(n, t, ix, lo, hi, residual)
	}
	nCols := t.NumCols()
	var out [][]int64
	fetched := 0
	for _, r := range ix.RangeRows(lo, hi) {
		if err := s.charge(&s.ctr.IndexFetch, 1); err != nil {
			return nil, err
		}
		fetched++
		okRow := true
		for _, f := range residual {
			if !f.Eval(t.Data[f.Col][r]) {
				okRow = false
				break
			}
		}
		if !okRow {
			continue
		}
		if err := s.chargeRows(1); err != nil {
			return nil, err
		}
		row := make([]int64, nCols)
		for c := 0; c < nCols; c++ {
			row[c] = t.Data[c][int(r)]
		}
		out = append(out, row)
	}
	n.ActualRows = float64(len(out))
	n.ActualFetched = float64(fetched)
	return out, nil
}

// indexInterval extracts the interval on n.IndexCol from the node's filters
// (intersecting multiple interval predicates on that column) and returns the
// remaining predicates.
func indexInterval(t *catalog.Table, n *plan.Node) (lo, hi int64, residual []expr.Pred, ok bool) {
	domLo, domHi := int64(-1<<62), int64(1<<62)
	if st := t.Columns[n.IndexCol].Stats; st != nil && st.Count > 0 {
		domLo, domHi = st.Min, st.Max
	}
	lo, hi = domLo, domHi
	found := false
	for _, f := range n.Filters {
		if f.Col == n.IndexCol {
			if l, h, isInterval := f.Range(domLo, domHi); isInterval {
				if l > lo {
					lo = l
				}
				if h < hi {
					hi = h
				}
				found = true
				continue
			}
		}
		residual = append(residual, f)
	}
	return lo, hi, residual, found
}

// log2int returns floor(log2(n))+1 — the number of probes a binary search
// makes over n items — as a work charge, minimum 1 (n <= 1). The optimizer's
// IndexScanCost mirrors this exactly (optimizer.probeSteps), keeping the
// "true cost params reproduce actual work" identity free of off-by-ones.
func log2int(n int) int64 {
	c := int64(1)
	for v := n; v > 1; v >>= 1 {
		c++
	}
	return c
}

func (s *execState) children(n *plan.Node) (left, right [][]int64, err error) {
	left, err = s.run(n.Children[0])
	if err != nil {
		return nil, nil, err
	}
	right, err = s.run(n.Children[1])
	if err != nil {
		return nil, nil, err
	}
	return left, right, nil
}

func joinRows(l, r []int64) []int64 {
	out := make([]int64, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

func (s *execState) hashJoin(n *plan.Node) ([][]int64, error) {
	left, right, err := s.children(n)
	if err != nil {
		return nil, err
	}
	// Build on the left child, probe with the right.
	ht := make(map[int64][]int, len(left))
	for i, row := range left {
		if err := s.charge(&s.ctr.HashBuild, 1); err != nil {
			return nil, err
		}
		k := row[n.LeftCol]
		ht[k] = append(ht[k], i)
	}
	if n.Partitions > 1 {
		return s.hashProbePartitioned(n, ht, left, right)
	}
	var out [][]int64
	for _, rrow := range right {
		if err := s.charge(&s.ctr.HashProbe, 1); err != nil {
			return nil, err
		}
		for _, li := range ht[rrow[n.RightCol]] {
			if err := s.charge(&s.ctr.OutputTuple, 1); err != nil {
				return nil, err
			}
			if err := s.chargeRows(1); err != nil {
				return nil, err
			}
			out = append(out, joinRows(left[li], rrow))
		}
	}
	n.ActualRows = float64(len(out))
	return out, nil
}

func (s *execState) nlJoin(n *plan.Node) ([][]int64, error) {
	left, right, err := s.children(n)
	if err != nil {
		return nil, err
	}
	if n.Partitions > 1 {
		return s.nlJoinPartitioned(n, left, right)
	}
	var out [][]int64
	for _, lrow := range left {
		lk := lrow[n.LeftCol]
		for _, rrow := range right {
			if err := s.charge(&s.ctr.NLPairs, 1); err != nil {
				return nil, err
			}
			if lk == rrow[n.RightCol] {
				if err := s.chargeRows(1); err != nil {
					return nil, err
				}
				out = append(out, joinRows(lrow, rrow))
			}
		}
	}
	n.ActualRows = float64(len(out))
	return out, nil
}

// mergeJoin is always serial: a partitioned merge provably diverges from the
// serial MergeScan counter (e.g. left={1,5}, right={3,5}: the serial merge
// charges 3 scan steps, any 2-way partition of it charges 2), so Partitions
// is ignored here to preserve serial≡parallel counter identity.
func (s *execState) mergeJoin(n *plan.Node) ([][]int64, error) {
	left, right, err := s.children(n)
	if err != nil {
		return nil, err
	}
	// Charge an n·log n sort cost approximation plus the merge.
	sortCost := func(m int) int64 {
		if m <= 1 {
			return int64(m)
		}
		logM := 0
		for v := m; v > 1; v >>= 1 {
			logM++
		}
		return int64(m * logM)
	}
	if err := s.charge(&s.ctr.MergeSort, sortCost(len(left))+sortCost(len(right))); err != nil {
		return nil, err
	}
	lc, rc := n.LeftCol, n.RightCol
	sort.Slice(left, func(i, j int) bool { return left[i][lc] < left[j][lc] })
	sort.Slice(right, func(i, j int) bool { return right[i][rc] < right[j][rc] })
	var out [][]int64
	i, j := 0, 0
	for i < len(left) && j < len(right) {
		if err := s.charge(&s.ctr.MergeScan, 1); err != nil {
			return nil, err
		}
		lv, rv := left[i][lc], right[j][rc]
		switch {
		case lv < rv:
			i++
		case lv > rv:
			j++
		default:
			// Emit the cross product of the equal runs.
			jEnd := j
			for jEnd < len(right) && right[jEnd][rc] == rv {
				jEnd++
			}
			for ; i < len(left) && left[i][lc] == lv; i++ {
				for jj := j; jj < jEnd; jj++ {
					if err := s.charge(&s.ctr.OutputTuple, 1); err != nil {
						return nil, err
					}
					if err := s.chargeRows(1); err != nil {
						return nil, err
					}
					out = append(out, joinRows(left[i], right[jj]))
				}
			}
			j = jEnd
		}
	}
	n.ActualRows = float64(len(out))
	return out, nil
}
