package exec

import (
	"ml4db/internal/mlmath"
	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/plan"
)

// This file implements exchange-style partitioned parallelism. The design
// goal is exact serial equivalence: for any plan, any pool, and any worker
// count, a partitioned execution must produce bit-identical rows, Counters,
// budget-abort points, and EXPLAIN ANALYZE trees to the serial execution of
// the same plan. Three mechanisms deliver that:
//
//   - Range partitioning. Every parallel operator splits its input into
//     Partitions contiguous shards via mlmath.ShardRange (scan row or page
//     ranges, hash-probe ranges, nested-loop outer ranges, aggregation input
//     ranges), so concatenating shard outputs in shard order reproduces the
//     serial row order exactly. Hash partitioning of rows would reorder
//     output; contiguous ranges never do.
//
//   - Charge-log replay. Shards never touch the coordinator's budget or
//     counters. Each shard appends compact charge events — runs of "n
//     charges of (counter, unit), each optionally followed by one
//     materialized row" — to a private log, in the exact order the serial
//     code would issue them. After the pool joins, the coordinator replays
//     the logs in shard order through the real charge/chargeRows
//     accounting, using closed-form arithmetic to land a budget abort on
//     exactly the charge the serial execution would have aborted on.
//
//   - Worker-count independence. The pool distributes whole shards
//     (ForEachShard over the partition count, each worker looping its
//     contiguous shard sub-range), so which worker ran a shard — and how
//     many workers exist — affects only timing, never content.
//
// Shards may stop early once their private work or row total alone
// guarantees a global abort (the replay trips at or before the truncation
// point, because earlier shards only add to the totals), so a tight budget
// does not force a full parallel scan.

// counterKind names a Counters field a shard can charge. Only categories
// reachable from partitioned operator shards appear here; build phases,
// sorts, and index probes stay on the coordinator.
type counterKind uint8

const (
	kScanTuples counterKind = iota
	kHashProbe
	kNLPairs
	kOutputTuple
	kAggInput
	kPageMiss
)

// counterFor maps a kind to the live counter it charges.
func (s *execState) counterFor(k counterKind) *int64 {
	switch k {
	case kScanTuples:
		return &s.ctr.ScanTuples
	case kHashProbe:
		return &s.ctr.HashProbe
	case kNLPairs:
		return &s.ctr.NLPairs
	case kOutputTuple:
		return &s.ctr.OutputTuple
	case kAggInput:
		return &s.ctr.AggInput
	default:
		return &s.ctr.PageMiss
	}
}

// chargeEvent is one run of a shard's charge log: n consecutive charges of
// unit work units against kind. With rowEvery set, each of the n charges is
// followed by one chargeRows(1) — the charge pattern of a tuple that passed
// its filters and was materialized.
type chargeEvent struct {
	kind     counterKind
	unit     int64
	n        int64
	rowEvery bool
}

// shardLog is one shard's private execution record: the charge log, the
// materialized rows (in charge order: the i-th row belongs to the i-th
// rowEvery charge), and a non-budget error if the shard hit one (e.g. a disk
// read failure). Shards mirror the budget locally only to stop early; the
// authoritative budget decision happens at replay.
type shardLog struct {
	events []chargeEvent
	rows   [][]int64
	err    error

	localWork, localRows int64
	maxWork, maxRows     int64
	stopped              bool
}

// add appends a charge run, coalescing into the previous event when the
// shape matches (the common case: long runs of identical per-tuple charges).
func (l *shardLog) add(k counterKind, unit int64, rowEvery bool) {
	if m := len(l.events); m > 0 {
		ev := &l.events[m-1]
		if ev.kind == k && ev.unit == unit && ev.rowEvery == rowEvery {
			ev.n++
			return
		}
	}
	l.events = append(l.events, chargeEvent{kind: k, unit: unit, n: 1, rowEvery: rowEvery})
}

// charge logs one work charge. It returns false once the shard's private
// totals alone guarantee a global budget abort — the shard should stop; the
// replay will abort at or before this event no matter what other shards did.
func (l *shardLog) charge(k counterKind, unit int64) bool {
	l.add(k, unit, false)
	l.localWork += unit
	if l.maxWork > 0 && l.localWork > l.maxWork {
		l.stopped = true
	}
	return !l.stopped
}

// emit logs one work charge followed by one materialized row (the row is
// buffered at the position its rowEvery charge holds in the log). Like
// charge, it returns false when the shard should stop.
func (l *shardLog) emit(k counterKind, unit int64, row []int64) bool {
	l.add(k, unit, true)
	l.rows = append(l.rows, row)
	l.localWork += unit
	l.localRows++
	if (l.maxWork > 0 && l.localWork > l.maxWork) || (l.maxRows > 0 && l.localRows > l.maxRows) {
		l.stopped = true
	}
	return !l.stopped
}

// replayEvents replays one shard's charge log through the coordinator's
// budget accounting, in log order, and returns how many rowEvery charges
// were admitted before any abort. The arithmetic reproduces charge/
// chargeRows exactly: a work charge adds its unit then trips on
// work > maxWork, a row charge adds one then trips on rows > maxRows — so
// the abort lands on the same charge, with the same Used value, as the
// serial execution.
func (s *execState) replayEvents(events []chargeEvent) (admitted int64, err error) {
	for _, ev := range events {
		ctr := s.counterFor(ev.kind)
		// Charges (1-indexed) until each limit trips within this event;
		// values beyond ev.n mean "no trip here".
		iW := ev.n + 1
		if s.maxWork > 0 && ev.unit > 0 {
			if i := (s.maxWork-s.work)/ev.unit + 1; i <= ev.n {
				iW = i
			}
		}
		if !ev.rowEvery {
			if iW <= ev.n {
				*ctr += iW * ev.unit
				s.work += iW * ev.unit
				return admitted, &BudgetExceededError{Kind: "work", Limit: s.maxWork, Used: s.work}
			}
			*ctr += ev.n * ev.unit
			s.work += ev.n * ev.unit
			continue
		}
		iR := ev.n + 1
		if s.maxRows > 0 {
			if i := s.maxRows - s.rows + 1; i <= ev.n {
				iR = i
			}
		}
		if iW <= ev.n && iW <= iR {
			// The iW-th work charge trips before its row charge; the iW-1
			// earlier iterations completed their row charges.
			*ctr += iW * ev.unit
			s.work += iW * ev.unit
			s.rows += iW - 1
			admitted += iW - 1
			return admitted, &BudgetExceededError{Kind: "work", Limit: s.maxWork, Used: s.work}
		}
		if iR <= ev.n {
			// The iR-th row charge trips; its work charge already landed,
			// and the row itself is not materialized.
			*ctr += iR * ev.unit
			s.work += iR * ev.unit
			s.rows += iR
			admitted += iR - 1
			return admitted, &BudgetExceededError{Kind: "rows", Limit: s.maxRows, Used: s.rows}
		}
		*ctr += ev.n * ev.unit
		s.work += ev.n * ev.unit
		s.rows += ev.n
		admitted += ev.n
	}
	return admitted, nil
}

// runPartitioned executes parts shards through the pool and merges them in
// shard order: runShard(k, lg) fills shard k's log, the coordinator then
// replays every log (emitting one deterministic exec.exchange.shard span per
// shard) and concatenates the admitted rows. A nil pool, a one-worker pool,
// and an N-worker pool all produce identical results; only the wall clock
// differs.
func (s *execState) runPartitioned(parts int, runShard func(shard int, lg *shardLog)) ([][]int64, error) {
	logs := make([]shardLog, parts)
	for k := range logs {
		logs[k].maxWork, logs[k].maxRows = s.maxWork, s.maxRows
	}
	s.pool.ForEachShard(parts, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			runShard(k, &logs[k])
		}
	})
	var out [][]int64
	for k := range logs {
		lg := &logs[k]
		workBefore := s.work
		sp := s.tr.StartSpan("exec.exchange.shard", s.cur)
		admitted, err := s.replayEvents(lg.events)
		sp.SetInt("shard", int64(k)).SetInt("work", s.work-workBefore).SetInt("rows", admitted)
		sp.End()
		if err == nil && lg.err != nil {
			// The shard stopped on a non-budget error after these charges;
			// surface it exactly where the serial execution would have.
			err = lg.err
		}
		if err != nil {
			return nil, err
		}
		out = append(out, lg.rows[:admitted]...)
	}
	return out, nil
}

// seqScanPartitioned is the exchange-parallel in-memory table scan: shard k
// scans the contiguous row range ShardRange(nRows, parts, k), so the merged
// output is the serial scan's row order exactly.
func (s *execState) seqScanPartitioned(n *plan.Node, t *catalog.Table) ([][]int64, error) {
	nRows, nCols, parts := t.NumRows(), t.NumCols(), n.Partitions
	out, err := s.runPartitioned(parts, func(k int, lg *shardLog) {
		lo, hi := mlmath.ShardRange(nRows, parts, k)
		for r := lo; r < hi; r++ {
			ok := true
			for _, f := range n.Filters {
				if !f.Eval(t.Data[f.Col][r]) {
					ok = false
					break
				}
			}
			if !ok {
				if !lg.charge(kScanTuples, 1) {
					return
				}
				continue
			}
			row := make([]int64, nCols)
			for c := 0; c < nCols; c++ {
				row[c] = t.Data[c][r]
			}
			if !lg.emit(kScanTuples, 1, row) {
				return
			}
		}
	})
	if err != nil {
		return nil, err
	}
	n.ActualRows = float64(len(out))
	return out, nil
}

// hashProbePartitioned runs the probe phase of a hash join over contiguous
// probe-side shards. The hash table was built serially by the coordinator
// and is only read here — concurrent map reads are safe — and shard k
// probing right[lo:hi] in order reproduces the serial probe/output charge
// sequence under concatenation.
func (s *execState) hashProbePartitioned(n *plan.Node, ht map[int64][]int, left, right [][]int64) ([][]int64, error) {
	parts := n.Partitions
	out, err := s.runPartitioned(parts, func(k int, lg *shardLog) {
		lo, hi := mlmath.ShardRange(len(right), parts, k)
		for _, rrow := range right[lo:hi] {
			if !lg.charge(kHashProbe, 1) {
				return
			}
			for _, li := range ht[rrow[n.RightCol]] {
				if !lg.emit(kOutputTuple, 1, joinRows(left[li], rrow)) {
					return
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	n.ActualRows = float64(len(out))
	return out, nil
}

// nlJoinPartitioned shards the nested-loop join by contiguous outer (left)
// ranges; each shard scans the full inner side, preserving the serial
// left-major pair order within and across shards.
func (s *execState) nlJoinPartitioned(n *plan.Node, left, right [][]int64) ([][]int64, error) {
	parts := n.Partitions
	out, err := s.runPartitioned(parts, func(k int, lg *shardLog) {
		lo, hi := mlmath.ShardRange(len(left), parts, k)
		for _, lrow := range left[lo:hi] {
			lk := lrow[n.LeftCol]
			for _, rrow := range right {
				if lk == rrow[n.RightCol] {
					if !lg.emit(kNLPairs, 1, joinRows(lrow, rrow)) {
						return
					}
				} else if !lg.charge(kNLPairs, 1) {
					return
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	n.ActualRows = float64(len(out))
	return out, nil
}
