package exec

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ml4db/internal/mlmath"
	"ml4db/internal/obs"
	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/workload"
)

// TestExplainWorkSumsToCounters is the Counters-unification property: over
// random star queries and every hint set, the exclusive per-operator work and
// per-category counters of EXPLAIN ANALYZE sum exactly — not approximately —
// to the execution's Counters totals.
func TestExplainWorkSumsToCounters(t *testing.T) {
	rng := mlmath.NewRNG(41)
	sch, err := datagen.NewStarSchema(rng, 400, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	fact := sch.Cat.Table(sch.FactID)
	fact.AddIndex(catalog.BuildSecondaryIndex(fact, sch.AttrCols[0]))
	fact.AddIndex(catalog.BuildSecondaryIndex(fact, sch.AttrCols[2]))
	gen := workload.NewStarGen(sch, rng)
	opt := optimizer.New(sch.Cat)
	opt.Cost = optimizer.TrueCostParams()
	ex := New(sch.Cat)

	for i := 0; i < 20; i++ {
		q := gen.Query()
		for _, h := range optimizer.StandardHintSets() {
			p, err := opt.Plan(q, h)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ex.Execute(p, Options{Analyze: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Explain == nil {
				t.Fatal("Analyze did not produce an Explain")
			}
			if got := res.Explain.TotalWork(); got != res.Work {
				t.Fatalf("hint %s query %d: per-operator work sums to %d, Counters.Total()=%d\n%s",
					h.Name, i, got, res.Work, res.Explain)
			}
			var sum Counters
			p.Walk(func(n *plan.Node) {
				if st := res.Explain.Stats(n); st != nil {
					sum = addCounters(sum, st.Counters)
					if st.Work != st.Counters.Total() {
						t.Fatalf("node %s: exclusive Work=%d but exclusive Counters.Total()=%d",
							n.Op, st.Work, st.Counters.Total())
					}
				}
			})
			if sum != res.Counters {
				t.Fatalf("hint %s query %d: per-operator counters sum to %+v, executor counted %+v",
					h.Name, i, sum, res.Counters)
			}
		}
	}
}

// TestExplainRowsMatchActualRows ties the EXPLAIN ANALYZE readout back to the
// executor's per-node annotations.
func TestExplainRowsMatchActualRows(t *testing.T) {
	cat, q := threeTableJoin(t)
	opt := optimizer.New(cat)
	p, err := opt.Plan(q, optimizer.HintSet{Name: "all"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(cat).Execute(p, Options{Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	p.Walk(func(n *plan.Node) {
		st := res.Explain.Stats(n)
		if st == nil {
			t.Fatalf("node %s has no stats", n.Op)
		}
		if st.Loops != 1 {
			t.Fatalf("node %s loops=%d, want 1", n.Op, st.Loops)
		}
		if float64(st.Rows) != n.ActualRows {
			t.Fatalf("node %s: Explain rows=%d, ActualRows=%g", n.Op, st.Rows, n.ActualRows)
		}
	})
}

// TestExplainGoldenThreeTableJoin pins the rendered EXPLAIN ANALYZE of a
// three-table join under a ManualClock against a golden file: layout, stats,
// and timings must all stay byte-stable.
func TestExplainGoldenThreeTableJoin(t *testing.T) {
	cat, q := threeTableJoin(t)
	opt := optimizer.New(cat)
	p, err := opt.Plan(q, optimizer.HintSet{Name: "all"})
	if err != nil {
		t.Fatal(err)
	}
	clock := &mlmath.TickClock{T: time.Unix(0, 0), Step: 100 * time.Microsecond}
	ex := New(cat)
	ex.Clock = clock
	res, err := ex.Execute(p, Options{Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	got := []byte(res.Explain.String())

	golden := filepath.Join("testdata", "explain_three_table.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("EXPLAIN ANALYZE drifted from golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExecuteSpansCoverOperators checks the trace shape: an exec.execute root
// with one child span per plan operator, nested by plan structure.
func TestExecuteSpansCoverOperators(t *testing.T) {
	cat, q := threeTableJoin(t)
	opt := optimizer.New(cat)
	p, err := opt.Plan(q, optimizer.HintSet{Name: "all"})
	if err != nil {
		t.Fatal(err)
	}
	clock := &mlmath.ManualClock{T: time.Unix(1, 0)}
	ex := New(cat)
	ex.Trace = obs.NewTracer(clock)
	ex.Clock = clock
	if _, err := ex.Execute(p, Options{}); err != nil {
		t.Fatal(err)
	}
	spans := ex.Trace.Spans()
	if len(spans) != 1+p.NumNodes() {
		t.Fatalf("got %d spans, want 1 root + %d operators", len(spans), p.NumNodes())
	}
	if spans[0].Name != "exec.execute" || spans[0].Parent != 0 {
		t.Fatalf("root span wrong: %+v", spans[0])
	}
	for _, sp := range spans[1:] {
		if sp.Parent == 0 {
			t.Fatalf("operator span %q has no parent", sp.Name)
		}
	}
	var buf bytes.Buffer
	if err := ex.Trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if n, err := obs.ValidateTraceJSONL(&buf); err != nil || n != len(spans) {
		t.Fatalf("trace validation: %d, %v", n, err)
	}
}

// threeTableJoin builds a small deterministic catalog and a 3-table chain
// query used by the golden and span tests.
func threeTableJoin(t *testing.T) (*catalog.Catalog, *plan.Query) {
	t.Helper()
	rng := mlmath.NewRNG(7)
	sch, err := datagen.NewStarSchema(rng, 200, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewStarGen(sch, mlmath.NewRNG(3))
	opt := optimizer.New(sch.Cat)
	for i := 0; i < 200; i++ {
		q := gen.Query()
		if q.NumTables() != 3 {
			continue
		}
		// Prefer a query that actually produces rows, so the golden
		// EXPLAIN ANALYZE shows nonzero per-operator output.
		p, err := opt.Plan(q, optimizer.NoHint())
		if err != nil {
			continue
		}
		if res, err := New(sch.Cat).Execute(p, Options{}); err == nil && len(res.Rows) > 0 {
			return sch.Cat, q
		}
	}
	t.Fatal("no producing 3-table query generated")
	return nil, nil
}
