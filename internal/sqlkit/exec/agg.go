package exec

import (
	"sort"

	"ml4db/internal/mlmath"
	"ml4db/internal/sqlkit/plan"
)

// aggCell accumulates one group: COUNT(*) plus one running sum per SumCol.
type aggCell struct {
	count int64
	sums  []int64
}

// hashAgg groups the single child's rows by GroupCol and emits one row per
// group — [group, COUNT(*), SUM(col)...] — in ascending group order. Each
// input row charges AggInput; each emitted group charges OutputTuple and one
// materialized row. With Partitions > 1 the accumulation phase runs over
// contiguous input shards whose partial maps merge order-insensitively
// (counts and sums are commutative), so the sorted emission is bit-identical
// to the serial run.
func (s *execState) hashAgg(n *plan.Node) ([][]int64, error) {
	in, err := s.run(n.Children[0])
	if err != nil {
		return nil, err
	}
	groups := make(map[int64]*aggCell)
	accumulate := func(cells map[int64]*aggCell, row []int64) {
		cell := cells[row[n.GroupCol]]
		if cell == nil {
			cell = &aggCell{sums: make([]int64, len(n.SumCols))}
			cells[row[n.GroupCol]] = cell
		}
		cell.count++
		for i, c := range n.SumCols {
			cell.sums[i] += row[c]
		}
	}
	if n.Partitions > 1 {
		// Shards accumulate private partial maps and log their AggInput
		// charges; the coordinator replays the logs in shard order (so a
		// budget abort lands exactly where the serial input loop would have
		// aborted) and merges the partials.
		parts := n.Partitions
		partials := make([]map[int64]*aggCell, parts)
		if _, err := s.runPartitioned(parts, func(k int, lg *shardLog) {
			lo, hi := mlmath.ShardRange(len(in), parts, k)
			partials[k] = make(map[int64]*aggCell)
			for _, row := range in[lo:hi] {
				if !lg.charge(kAggInput, 1) {
					return
				}
				accumulate(partials[k], row)
			}
		}); err != nil {
			return nil, err
		}
		for _, part := range partials {
			for k, cell := range part {
				dst := groups[k]
				if dst == nil {
					groups[k] = cell
					continue
				}
				dst.count += cell.count
				for i, v := range cell.sums {
					dst.sums[i] += v
				}
			}
		}
	} else {
		for _, row := range in {
			if err := s.charge(&s.ctr.AggInput, 1); err != nil {
				return nil, err
			}
			accumulate(groups, row)
		}
	}
	keys := make([]int64, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([][]int64, 0, len(keys))
	for _, k := range keys {
		if err := s.charge(&s.ctr.OutputTuple, 1); err != nil {
			return nil, err
		}
		if err := s.chargeRows(1); err != nil {
			return nil, err
		}
		cell := groups[k]
		row := make([]int64, 0, 2+len(cell.sums))
		row = append(row, k, cell.count)
		row = append(row, cell.sums...)
		out = append(out, row)
	}
	n.ActualRows = float64(len(out))
	return out, nil
}
