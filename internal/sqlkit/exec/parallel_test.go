package exec

import (
	"errors"
	"reflect"
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/storage"
)

// The exchange determinism contract (see exchange.go): for any plan, any
// worker count, and any budget, a partitioned execution is bit-identical to
// the serial execution — same rows in the same order, same Counters, same
// Work, same budget-abort error at the same Used value. These tests pin it.

// stripPartitions returns a clone of p with every Partitions knob cleared —
// the genuinely serial plan the parallel runs are compared against.
func stripPartitions(p *plan.Node) *plan.Node {
	out := p.Clone()
	out.Walk(func(n *plan.Node) { n.Partitions = 0 })
	return out
}

// forcePartitions returns a clone with every node's knob set to parts
// (operators that never partition — merge joins, index scans, virtual scans —
// ignore it by construction).
func forcePartitions(p *plan.Node, parts int) *plan.Node {
	out := p.Clone()
	out.Walk(func(n *plan.Node) { n.Partitions = parts })
	return out
}

// runOnce executes a fresh clone of p and returns the full result and error.
func runOnce(t *testing.T, e *Executor, p *plan.Node, pool *mlmath.Pool, budget *Budget) (*Result, error) {
	t.Helper()
	return e.Execute(p.Clone(), Options{Pool: pool, Budget: budget, Analyze: true})
}

// assertIdentical fails unless got matches want bit-for-bit: rows, order,
// work, counters, and the error (kind, limit, used for budget aborts).
func assertIdentical(t *testing.T, label string, want *Result, wantErr error, got *Result, gotErr error) {
	t.Helper()
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: error mismatch: serial %v vs parallel %v", label, wantErr, gotErr)
	}
	if wantErr != nil {
		var wb, gb *BudgetExceededError
		if errors.As(wantErr, &wb) && errors.As(gotErr, &gb) {
			if *wb != *gb {
				t.Fatalf("%s: abort mismatch: serial %+v vs parallel %+v", label, *wb, *gb)
			}
		} else if wantErr.Error() != gotErr.Error() {
			t.Fatalf("%s: error mismatch: %v vs %v", label, wantErr, gotErr)
		}
	}
	if want.Work != got.Work {
		t.Fatalf("%s: work %d vs %d", label, want.Work, got.Work)
	}
	if want.Counters != got.Counters {
		t.Fatalf("%s: counters\nserial   %+v\nparallel %+v", label, want.Counters, got.Counters)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatalf("%s: rows differ (serial %d, parallel %d)", label, len(want.Rows), len(got.Rows))
	}
	if got.Explain != nil && got.Explain.TotalWork() != got.Counters.Total() {
		t.Fatalf("%s: explain TotalWork %d != Counters.Total %d", label, got.Explain.TotalWork(), got.Counters.Total())
	}
}

// starQuery builds a 3-join star query with a moderately selective fact
// filter, so every join operator has real work on both sides.
func starQuery(sch *datagen.StarSchema) *plan.Query {
	q := plan.NewQuery(append([]int{sch.FactID}, sch.DimIDs...)...)
	q.AddFilter(0, expr.Pred{Col: sch.AttrCols[0], Op: expr.LE, Lo: 600})
	for d, dim := range sch.DimIDs {
		_ = dim
		q.AddJoin(expr.JoinCond{LeftTable: 0, LeftCol: sch.FKCol[d], RightTable: d + 1, RightCol: 0})
	}
	return q
}

// TestParallelMatchesSerialAcrossHints is the satellite property: for every
// standard hint set and every worker count 1..8, executing the optimizer's
// partitioned plan equals executing the stripped serial plan — full runs and
// budget-aborted runs alike (work aborts at ~30% and ~60% of full work, and
// a row abort).
func TestParallelMatchesSerialAcrossHints(t *testing.T) {
	rng := mlmath.NewRNG(7)
	sch, err := datagen.NewStarSchema(rng, 500, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(sch.Cat)
	opt.Parallelism = 8
	e := New(sch.Cat)
	q := starQuery(sch)

	for _, h := range optimizer.StandardHintSets() {
		p, err := opt.Plan(q, h)
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		serial := stripPartitions(p)
		ref, refErr := runOnce(t, e, serial, nil, nil)
		if refErr != nil {
			t.Fatalf("%s: serial run failed: %v", h.Name, refErr)
		}
		budgets := []*Budget{
			nil,
			{MaxWork: ref.Work * 3 / 10},
			{MaxWork: ref.Work * 6 / 10},
			{MaxRows: int64(len(ref.Rows))/2 + 1},
		}
		for _, b := range budgets {
			want, wantErr := runOnce(t, e, serial, nil, b)
			for workers := 1; workers <= 8; workers++ {
				pool := mlmath.NewPool(workers)
				got, gotErr := runOnce(t, e, p, pool, b)
				pool.Close()
				label := h.Name
				if b != nil {
					label += "/budgeted"
				}
				assertIdentical(t, label, want, wantErr, got, gotErr)
			}
		}
	}
}

// TestForcedPartitionsMatchSerial sweeps explicit partition counts (including
// counts far above the worker count and above the row count) over each join
// operator and the aggregation.
func TestForcedPartitionsMatchSerial(t *testing.T) {
	rng := mlmath.NewRNG(11)
	sch, err := datagen.NewStarSchema(rng, 300, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := New(sch.Cat)
	opt := optimizer.New(sch.Cat)

	aggQ := starQuery(sch)
	aggQ.SetAgg(1, 1, plan.AggCol{Table: 0, Col: sch.AttrCols[1]})
	plainQ := starQuery(sch)

	for _, tc := range []struct {
		name string
		q    *plan.Query
		hint optimizer.HintSet
	}{
		{"hash", plainQ, optimizer.StandardHintSets()[1]},
		{"agg", aggQ, optimizer.NoHint()},
	} {
		p, err := opt.Plan(tc.q, tc.hint)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		serial := stripPartitions(p)
		want, wantErr := runOnce(t, e, serial, nil, nil)
		if wantErr != nil {
			t.Fatalf("%s: %v", tc.name, wantErr)
		}
		pool := mlmath.NewPool(4)
		defer pool.Close()
		for _, parts := range []int{2, 3, 5, 8, 1000} {
			forced := forcePartitions(p, parts)
			got, gotErr := runOnce(t, e, forced, pool, nil)
			assertIdentical(t, tc.name, want, wantErr, got, gotErr)
		}
	}
}

// TestAggParallelBudgetAbort pins the aggregation's abort identity: the
// AggInput replay must abort at the same input tuple as the serial
// accumulation loop.
func TestAggParallelBudgetAbort(t *testing.T) {
	rng := mlmath.NewRNG(13)
	sch, err := datagen.NewStarSchema(rng, 400, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := New(sch.Cat)
	opt := optimizer.New(sch.Cat)
	opt.Parallelism = 6
	q := starQuery(sch)
	q.SetAgg(0, sch.AttrCols[2], plan.AggCol{Table: 0, Col: sch.AttrCols[0]})
	p, err := opt.Plan(q, optimizer.NoHint())
	if err != nil {
		t.Fatal(err)
	}
	serial := stripPartitions(p)
	full, err := runOnce(t, e, serial, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Aim the work limit inside the aggregation's input phase: everything
	// below the agg plus a fraction of the AggInput charges.
	limit := full.Work - full.Counters.AggInput - full.Counters.OutputTuple + full.Counters.AggInput/3
	b := &Budget{MaxWork: limit}
	want, wantErr := runOnce(t, e, serial, nil, b)
	if wantErr == nil {
		t.Fatal("expected a budget abort")
	}
	pool := mlmath.NewPool(3)
	defer pool.Close()
	got, gotErr := runOnce(t, e, p, pool, b)
	assertIdentical(t, "agg-abort", want, wantErr, got, gotErr)
}

// TestParallelDiskScanMatchesSerial runs the partitioned disk scan against
// the serial one from identical cold pool states (fresh fixture per run, so
// the serial run's pool insertions cannot leak into the next run's miss
// counts) and checks bit-identity including PageMiss, plus zero leaked pins
// after both clean completion and a mid-shard abort.
func TestParallelDiskScanMatchesSerial(t *testing.T) {
	run := func(parts, workers int, budget *Budget) (*Result, error, *storage.Pool) {
		sp := storage.NewPool(storage.PoolOptions{Capacity: 8})
		_, disk := diskFixture(t, sp, 512)
		e := New(disk)
		scan := plan.NewScan(0, 0, []expr.Pred{{Col: 2, Op: expr.LE, Lo: 80}})
		scan.Partitions = parts
		var pool *mlmath.Pool
		if workers > 1 {
			pool = mlmath.NewPool(workers)
			defer pool.Close()
		}
		res, err := e.Execute(scan, Options{Pool: pool, Budget: budget, Analyze: true})
		return res, err, sp
	}

	want, wantErr, _ := run(0, 1, nil)
	if wantErr != nil {
		t.Fatal(wantErr)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got, gotErr, sp := run(4, workers, nil)
		assertIdentical(t, "disk-full", want, wantErr, got, gotErr)
		if n := sp.PinnedCount(); n != 0 {
			t.Fatalf("workers=%d: %d pages still pinned after scan", workers, n)
		}
	}

	// Mid-scan abort: identical abort point, and no leaked pins.
	b := &Budget{MaxWork: want.Work / 2}
	wantAbort, wantAbortErr, _ := run(0, 1, b)
	if wantAbortErr == nil {
		t.Fatal("expected a budget abort")
	}
	for _, workers := range []int{2, 8} {
		got, gotErr, sp := run(4, workers, b)
		assertIdentical(t, "disk-abort", wantAbort, wantAbortErr, got, gotErr)
		if n := sp.PinnedCount(); n != 0 {
			t.Fatalf("workers=%d: %d pages still pinned after aborted scan", workers, n)
		}
	}
}

// TestExplainIdenticalAcrossWorkerCounts pins the EXPLAIN ANALYZE rendering:
// the same partitioned plan explains identically under every worker count
// (durations are read through a never-advancing manual clock).
func TestExplainIdenticalAcrossWorkerCounts(t *testing.T) {
	rng := mlmath.NewRNG(17)
	sch, err := datagen.NewStarSchema(rng, 300, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(sch.Cat)
	opt.Parallelism = 4
	q := starQuery(sch)
	p, err := opt.Plan(q, optimizer.NoHint())
	if err != nil {
		t.Fatal(err)
	}
	var renderings []string
	for _, workers := range []int{1, 2, 4, 8} {
		e := New(sch.Cat)
		e.Clock = &mlmath.ManualClock{}
		pool := mlmath.NewPool(workers)
		res, err := e.Execute(p.Clone(), Options{Pool: pool, Analyze: true})
		pool.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		renderings = append(renderings, res.Explain.String())
	}
	for i := 1; i < len(renderings); i++ {
		if renderings[i] != renderings[0] {
			t.Fatalf("explain differs between worker counts:\n%s\nvs\n%s", renderings[0], renderings[i])
		}
	}
}

// TestLog2IntSmallN pins the binary-search probe count for small inputs —
// floor(log2 n) + 1, minimum 1 — which optimizer.probeSteps mirrors.
func TestLog2IntSmallN(t *testing.T) {
	cases := map[int]int64{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 1023: 10, 1024: 11}
	for n, want := range cases {
		if got := log2int(n); got != want {
			t.Errorf("log2int(%d) = %d, want %d", n, got, want)
		}
	}
}
