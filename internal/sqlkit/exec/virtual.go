package exec

import (
	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/plan"
)

// seqScanVirtual scans a virtual (system) table: the provider materializes a
// snapshot of its current rows, and the scan filters them exactly like an
// in-memory SeqScan, charging one ScanTuples unit per provider row. The
// provider returns fresh slices, so matching rows are emitted without
// copying.
func (s *execState) seqScanVirtual(n *plan.Node, t *catalog.Table) ([][]int64, error) {
	rows := t.Virtual.VirtualRows()
	var out [][]int64
	for _, row := range rows {
		if err := s.charge(&s.ctr.ScanTuples, 1); err != nil {
			return nil, err
		}
		ok := true
		for _, f := range n.Filters {
			if !f.Eval(row[f.Col]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if err := s.chargeRows(1); err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	n.ActualRows = float64(len(out))
	return out, nil
}
