package exec

import (
	"errors"
	"sort"
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
)

// tinyCatalog builds two small tables with a known join result.
func tinyCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.NewCatalog()
	a := catalog.NewTable("a", "id", "v")
	for _, r := range [][]int64{{1, 10}, {2, 20}, {3, 30}, {3, 31}} {
		if err := a.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	b := catalog.NewTable("b", "ref", "w")
	for _, r := range [][]int64{{2, 200}, {3, 300}, {3, 301}, {4, 400}} {
		if err := b.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	cat.MustAdd(a)
	cat.MustAdd(b)
	return cat
}

func TestSeqScanWithFilters(t *testing.T) {
	cat := tinyCatalog(t)
	e := New(cat)
	scan := plan.NewScan(0, 0, []expr.Pred{{Col: 0, Op: expr.GE, Lo: 2}})
	res, err := e.Execute(scan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("filtered scan rows = %d, want 3", len(res.Rows))
	}
	if res.Work != 4 {
		t.Errorf("scan work = %d, want 4 (one per input row)", res.Work)
	}
	if scan.ActualRows != 3 {
		t.Errorf("ActualRows = %v, want 3", scan.ActualRows)
	}
}

// expectedJoinRows is a⋈b on a.id=b.ref: id 2 matches 1 row, id 3 (x2 in a)
// matches 2 rows in b → 1 + 4 = 5 output rows.
const expectedJoinRows = 5

func joinPlanOver(op plan.OpType) *plan.Node {
	l := plan.NewScan(0, 0, nil)
	r := plan.NewScan(1, 1, nil)
	return plan.NewJoin(op, l, r, 0, 0) // a.id (offset 0 in left) = b.ref (offset 0 in right)
}

func TestAllJoinOperatorsAgree(t *testing.T) {
	cat := tinyCatalog(t)
	e := New(cat)
	var results [][][]int64
	for _, op := range plan.AllJoinOps {
		res, err := e.Execute(joinPlanOver(op), Options{})
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if len(res.Rows) != expectedJoinRows {
			t.Errorf("%v produced %d rows, want %d", op, len(res.Rows), expectedJoinRows)
		}
		results = append(results, canonical(res.Rows))
	}
	for i := 1; i < len(results); i++ {
		if !sameRows(results[0], results[i]) {
			t.Errorf("join op %v disagrees with %v", plan.AllJoinOps[i], plan.AllJoinOps[0])
		}
	}
}

func canonical(rows [][]int64) [][]int64 {
	out := make([][]int64, len(rows))
	copy(out, rows)
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

func sameRows(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return false
			}
		}
	}
	return true
}

func TestJoinOutputSchemaIsLeftThenRight(t *testing.T) {
	cat := tinyCatalog(t)
	e := New(cat)
	res, err := e.Execute(joinPlanOver(plan.OpHashJoin), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if len(row) != 4 {
			t.Fatalf("join row width = %d, want 4", len(row))
		}
		if row[0] != row[2] {
			t.Errorf("join key mismatch in output row %v", row)
		}
	}
}

func TestWorkBudgetAborts(t *testing.T) {
	cat := tinyCatalog(t)
	e := New(cat)
	_, err := e.Execute(joinPlanOver(plan.OpNLJoin), Options{MaxWork: 3})
	if !errors.Is(err, ErrWorkBudgetExceeded) {
		t.Errorf("err = %v, want ErrWorkBudgetExceeded", err)
	}
}

func TestNLJoinCostsMoreThanHashJoin(t *testing.T) {
	rng := mlmath.NewRNG(1)
	sch, err := datagen.NewChainSchema(rng, []int{2000, 2000})
	if err != nil {
		t.Fatal(err)
	}
	e := New(sch.Cat)
	mk := func(op plan.OpType) *plan.Node {
		l := plan.NewScan(0, sch.TableIDs[0], nil)
		r := plan.NewScan(1, sch.TableIDs[1], nil)
		return plan.NewJoin(op, l, r, 1, 0) // t0.next = t1.id
	}
	hres, err := e.Execute(mk(plan.OpHashJoin), Options{})
	if err != nil {
		t.Fatal(err)
	}
	nres, err := e.Execute(mk(plan.OpNLJoin), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hres.Rows) != len(nres.Rows) {
		t.Fatalf("row count mismatch: hash %d vs nl %d", len(hres.Rows), len(nres.Rows))
	}
	if nres.Work < 100*hres.Work {
		t.Errorf("NL work %d should dwarf hash work %d on 2k x 2k", nres.Work, hres.Work)
	}
}

func TestThreeWayJoinMatchesBruteForce(t *testing.T) {
	rng := mlmath.NewRNG(2)
	sch, err := datagen.NewChainSchema(rng, []int{60, 40, 30})
	if err != nil {
		t.Fatal(err)
	}
	e := New(sch.Cat)
	s0 := plan.NewScan(0, sch.TableIDs[0], nil)
	s1 := plan.NewScan(1, sch.TableIDs[1], nil)
	s2 := plan.NewScan(2, sch.TableIDs[2], nil)
	// ((t0 ⋈ t1) ⋈ t2): t0.next=t1.id, then t1.next (offset 3+1=4) = t2.id.
	j1 := plan.NewJoin(plan.OpHashJoin, s0, s1, 1, 0)
	root := plan.NewJoin(plan.OpMergeJoin, j1, s2, 4, 0)
	res, err := e.Execute(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force.
	t0, t1, t2 := sch.Cat.Table(sch.TableIDs[0]), sch.Cat.Table(sch.TableIDs[1]), sch.Cat.Table(sch.TableIDs[2])
	count := 0
	for r0 := 0; r0 < t0.NumRows(); r0++ {
		for r1 := 0; r1 < t1.NumRows(); r1++ {
			if t0.Data[1][r0] != t1.Data[0][r1] {
				continue
			}
			for r2 := 0; r2 < t2.NumRows(); r2++ {
				if t1.Data[1][r1] == t2.Data[0][r2] {
					count++
				}
			}
		}
	}
	if len(res.Rows) != count {
		t.Errorf("3-way join rows = %d, brute force = %d", len(res.Rows), count)
	}
}

func TestExecuteCount(t *testing.T) {
	cat := tinyCatalog(t)
	e := New(cat)
	card, work, err := e.ExecuteCount(joinPlanOver(plan.OpHashJoin), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if card != expectedJoinRows || work <= 0 {
		t.Errorf("ExecuteCount = (%d, %d)", card, work)
	}
}

func TestDeterministicWork(t *testing.T) {
	cat := tinyCatalog(t)
	e := New(cat)
	w1, w2 := int64(0), int64(0)
	for i, w := range []*int64{&w1, &w2} {
		res, err := e.Execute(joinPlanOver(plan.OpMergeJoin), Options{})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		*w = res.Work
	}
	if w1 != w2 {
		t.Errorf("work not deterministic: %d vs %d", w1, w2)
	}
}

func TestUnknownOperator(t *testing.T) {
	cat := tinyCatalog(t)
	e := New(cat)
	bad := &plan.Node{Op: plan.OpType(99), Children: []*plan.Node{plan.NewScan(0, 0, nil), plan.NewScan(1, 1, nil)}}
	if _, err := e.Execute(bad, Options{}); err == nil {
		t.Error("expected error for unknown operator")
	}
}
