package exec

import (
	"ml4db/internal/mlmath"
	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/storage"
)

// This file holds the disk-table scan paths: the same operators as exec.go,
// but iterating heap pages through the table's buffer pool. Pool misses are
// charged as PageMiss work units — the executor-side ground truth for the
// optimizer's PageRead cost term — and every pinned page is released on
// every path, including budget aborts, by scoping each page's work in a
// function with a deferred Unpin.

// seqScanDisk scans a disk-backed table page by page through its pool.
func (s *execState) seqScanDisk(n *plan.Node, t *catalog.Table) ([][]int64, error) {
	tf := t.Disk
	row := make([]int64, t.NumCols())
	var out [][]int64
	var misses int64
	for pageNo := 0; pageNo < tf.NumPages(); pageNo++ {
		if err := s.scanDiskPage(n, tf, pageNo, row, &out, &misses); err != nil {
			n.ActualPageMisses = float64(misses)
			return nil, err
		}
	}
	n.ActualRows = float64(len(out))
	n.ActualPageMisses = float64(misses)
	return out, nil
}

// scanDiskPage pins one page, emits its matching rows, and unpins on every
// path — including budget aborts — via defer (the pin discipline the
// spanend analyzer enforces).
func (s *execState) scanDiskPage(n *plan.Node, tf *storage.TableFile, pageNo int, row []int64, out *[][]int64, misses *int64) error {
	h, err := tf.FetchPage(pageNo)
	if err != nil {
		return err
	}
	defer h.Unpin()
	if h.Missed() {
		*misses++
		if err := s.charge(&s.ctr.PageMiss, 1); err != nil {
			return err
		}
	}
	p := h.Page()
	for slot := 0; slot < p.NumSlots(); slot++ {
		if !p.ReadTuple(slot, row) {
			continue
		}
		if err := s.charge(&s.ctr.ScanTuples, 1); err != nil {
			return err
		}
		ok := true
		for _, f := range n.Filters {
			if !f.Eval(row[f.Col]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if err := s.chargeRows(1); err != nil {
			return err
		}
		cp := make([]int64, len(row))
		copy(cp, row)
		*out = append(*out, cp)
	}
	return nil
}

// seqScanDiskPartitioned scans contiguous page ranges in parallel. Shards
// fetch pages through storage.Pool.FetchScan — the bypass path that pins
// resident pages without mutating replacement state and reads non-resident
// pages privately without inserting them — so the pool's contents, tick, and
// eviction decisions are independent of shard interleaving and the scan stays
// replay-deterministic. Miss charges equal the serial scan's whenever the
// pool's resident set at scan start matches (always true for a cold table;
// see docs/EXECUTOR.md for the warm-pool caveat).
func (s *execState) seqScanDiskPartitioned(n *plan.Node, t *catalog.Table) ([][]int64, error) {
	tf := t.Disk
	numPages, parts := tf.NumPages(), n.Partitions
	missBefore := s.ctr.PageMiss
	out, err := s.runPartitioned(parts, func(k int, lg *shardLog) {
		row := make([]int64, t.NumCols())
		lo, hi := mlmath.ShardRange(numPages, parts, k)
		for pageNo := lo; pageNo < hi; pageNo++ {
			ok, err := s.scanDiskPageShard(n, tf, pageNo, row, lg)
			if err != nil {
				lg.err = err
				return
			}
			if !ok {
				return
			}
		}
	})
	n.ActualPageMisses = float64(s.ctr.PageMiss - missBefore)
	if err != nil {
		return nil, err
	}
	n.ActualRows = float64(len(out))
	return out, nil
}

// scanDiskPageShard is scanDiskPage for a shard: identical charge order
// (PageMiss, then per live tuple ScanTuples and the materialized row), logged
// instead of applied, with the same deferred-Unpin pin discipline. ok is
// false when the shard should stop early (budget early-stop).
func (s *execState) scanDiskPageShard(n *plan.Node, tf *storage.TableFile, pageNo int, row []int64, lg *shardLog) (ok bool, err error) {
	h, err := tf.FetchPageForScan(pageNo)
	if err != nil {
		return false, err
	}
	defer h.Unpin()
	if h.Missed() {
		if !lg.charge(kPageMiss, 1) {
			return false, nil
		}
	}
	p := h.Page()
	for slot := 0; slot < p.NumSlots(); slot++ {
		if !p.ReadTuple(slot, row) {
			continue
		}
		live := true
		for _, f := range n.Filters {
			if !f.Eval(row[f.Col]) {
				live = false
				break
			}
		}
		if !live {
			if !lg.charge(kScanTuples, 1) {
				return false, nil
			}
			continue
		}
		cp := make([]int64, len(row))
		copy(cp, row)
		if !lg.emit(kScanTuples, 1, cp) {
			return false, nil
		}
	}
	return true, nil
}

// indexScanDisk fetches the index's matching heap rows through the pool —
// random page access, the classic reason index scans on disk pay more per
// row than sequential ones.
func (s *execState) indexScanDisk(n *plan.Node, t *catalog.Table, ix *catalog.SecondaryIndex, lo, hi int64, residual []expr.Pred) ([][]int64, error) {
	var out [][]int64
	fetched := 0
	var misses int64
	for _, r := range ix.RangeRows(lo, hi) {
		if err := s.charge(&s.ctr.IndexFetch, 1); err != nil {
			n.ActualPageMisses = float64(misses)
			return nil, err
		}
		fetched++
		row, ok, missed, err := t.Disk.ReadRow(int64(r))
		if err != nil {
			n.ActualPageMisses = float64(misses)
			return nil, err
		}
		if missed {
			misses++
			if err := s.charge(&s.ctr.PageMiss, 1); err != nil {
				n.ActualPageMisses = float64(misses)
				return nil, err
			}
		}
		if !ok {
			continue // the slot was deleted after the index was built
		}
		okRow := true
		for _, f := range residual {
			if !f.Eval(row[f.Col]) {
				okRow = false
				break
			}
		}
		if !okRow {
			continue
		}
		if err := s.chargeRows(1); err != nil {
			n.ActualPageMisses = float64(misses)
			return nil, err
		}
		out = append(out, row)
	}
	n.ActualRows = float64(len(out))
	n.ActualFetched = float64(fetched)
	n.ActualPageMisses = float64(misses)
	return out, nil
}
