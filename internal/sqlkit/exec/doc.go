// Package exec executes physical plans against the in-memory catalog.
//
// Besides producing result rows, the executor counts deterministic work
// units (tuples scanned, hash probes, comparisons). That counter is the
// latency signal the learned optimizers train on: it is perfectly
// reproducible across runs, unlike wall-clock time, while preserving the
// ordering of plan quality. A work budget implements the execution timeouts
// that Balsa (§3.3) relies on to avoid unpredictable stalls.
package exec
