// Package exec executes physical plans against the in-memory catalog.
//
// Besides producing result rows, the executor counts deterministic work
// units (tuples scanned, hash probes, comparisons). That counter is the
// latency signal the learned optimizers train on: it is perfectly
// reproducible across runs, unlike wall-clock time, while preserving the
// ordering of plan quality. A work budget implements the execution timeouts
// that Balsa (§3.3) relies on to avoid unpredictable stalls.
//
// Operators whose plan node carries a Partitions annotation run as
// exchange operators: the input splits into contiguous ranges
// (mlmath.ShardRange), shards run on the mlmath.Pool passed in
// Options.Pool, and the coordinator merges shard outputs in shard order.
// Shards log counter charges privately instead of applying them; the
// coordinator replays the logs with the serial budget arithmetic, so
// parallel execution is bit-identical to serial — same rows, same
// counters, same typed budget aborts, same explain trees — regardless of
// worker count. See docs/EXECUTOR.md for the full contract and the
// determinism argument.
package exec
