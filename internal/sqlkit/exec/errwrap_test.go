package exec

import (
	"errors"
	"fmt"
	"testing"
)

// The budget-abort contract: *BudgetExceededError matches the
// ErrWorkBudgetExceeded sentinel through errors.Is — including through
// fmt.Errorf("%w") wrapping — and errors.As recovers which limit tripped.
func TestBudgetErrorWrapping(t *testing.T) {
	base := &BudgetExceededError{Kind: "rows", Limit: 100, Used: 101}
	if !errors.Is(base, ErrWorkBudgetExceeded) {
		t.Fatal("bare *BudgetExceededError does not match ErrWorkBudgetExceeded")
	}

	wrapped := fmt.Errorf("query q7: %w", fmt.Errorf("operator join: %w", base))
	if !errors.Is(wrapped, ErrWorkBudgetExceeded) {
		t.Error("double-wrapped *BudgetExceededError does not match the sentinel")
	}
	var be *BudgetExceededError
	if !errors.As(wrapped, &be) {
		t.Fatal("errors.As failed to recover *BudgetExceededError through wrapping")
	}
	if be.Kind != "rows" || be.Limit != 100 || be.Used != 101 {
		t.Errorf("recovered %+v, want Kind=rows Limit=100 Used=101", be)
	}

	if errors.Is(errors.New("exec: work budget exceeded"), ErrWorkBudgetExceeded) {
		t.Error("an unrelated error with the same text must not match the sentinel")
	}
}
