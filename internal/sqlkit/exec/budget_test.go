package exec

import (
	"errors"
	"testing"

	"ml4db/internal/sqlkit/plan"
)

func TestBudgetRowLimitAborts(t *testing.T) {
	cat := tinyCatalog(t)
	e := New(cat)
	// The join materializes 4+4 scan rows plus 5 join rows; a row budget of 6
	// must trip partway through.
	_, err := e.Execute(joinPlanOver(plan.OpHashJoin), Options{Budget: &Budget{MaxRows: 6}})
	var be *BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetExceededError", err)
	}
	if be.Kind != "rows" {
		t.Errorf("Kind = %q, want \"rows\"", be.Kind)
	}
	if be.Limit != 6 || be.Used != 7 {
		t.Errorf("Limit/Used = %d/%d, want 6/7", be.Limit, be.Used)
	}
	// The typed error still matches the legacy sentinel.
	if !errors.Is(err, ErrWorkBudgetExceeded) {
		t.Errorf("errors.Is(err, ErrWorkBudgetExceeded) = false, want true")
	}
}

func TestBudgetWorkLimitCarriesDetail(t *testing.T) {
	cat := tinyCatalog(t)
	e := New(cat)
	_, err := e.Execute(joinPlanOver(plan.OpNLJoin), Options{Budget: &Budget{MaxWork: 3}})
	var be *BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetExceededError", err)
	}
	if be.Kind != "work" {
		t.Errorf("Kind = %q, want \"work\"", be.Kind)
	}
	if be.Limit != 3 || be.Used != 4 {
		t.Errorf("Limit/Used = %d/%d, want 3/4 (abort on the first unit past the limit)", be.Limit, be.Used)
	}
}

func TestBudgetStricterWorkLimitWins(t *testing.T) {
	cat := tinyCatalog(t)
	e := New(cat)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"budget stricter", Options{MaxWork: 1000, Budget: &Budget{MaxWork: 3}}},
		{"legacy stricter", Options{MaxWork: 3, Budget: &Budget{MaxWork: 1000}}},
	} {
		_, err := e.Execute(joinPlanOver(plan.OpNLJoin), tc.opts)
		var be *BudgetExceededError
		if !errors.As(err, &be) {
			t.Fatalf("%s: err = %v, want *BudgetExceededError", tc.name, err)
		}
		if be.Limit != 3 {
			t.Errorf("%s: Limit = %d, want 3 (the stricter of the two)", tc.name, be.Limit)
		}
	}
}

func TestBudgetAbortIsDeterministic(t *testing.T) {
	cat := tinyCatalog(t)
	e := New(cat)
	// A budget abort must consume exactly the same work on every replay —
	// budgets count work units and rows, never wall time.
	var works []int64
	for i := 0; i < 3; i++ {
		res, err := e.Execute(joinPlanOver(plan.OpNLJoin), Options{Budget: &Budget{MaxWork: 11}})
		if !errors.Is(err, ErrWorkBudgetExceeded) {
			t.Fatalf("run %d: err = %v, want budget abort", i, err)
		}
		works = append(works, res.Work)
	}
	if works[0] != works[1] || works[1] != works[2] {
		t.Errorf("abort points differ across replays: %v", works)
	}
}

func TestBudgetZeroMeansUnlimited(t *testing.T) {
	cat := tinyCatalog(t)
	e := New(cat)
	res, err := e.Execute(joinPlanOver(plan.OpHashJoin), Options{Budget: &Budget{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != expectedJoinRows {
		t.Errorf("rows = %d, want %d", len(res.Rows), expectedJoinRows)
	}
}
