package exec

import (
	"testing"

	"ml4db/internal/sqlkit/plan"
)

// TestExplainRescanTelescoping pins the EXPLAIN ANALYZE accounting identity
// for plans that execute the same subtree more than once: a self-join whose
// two children are the SAME *plan.Node. The shared scan accumulates one
// OpStats entry across both executions (Loops=2), and the parent must
// subtract that entry's subtree totals once — not once per child reference —
// for the exclusive values to telescope back to the executor's counters.
func TestExplainRescanTelescoping(t *testing.T) {
	cat := tinyCatalog(t)
	e := New(cat)
	scan := plan.NewScan(0, 0, nil)
	// a ⋈ a on id: ids 1 and 2 match themselves, id 3 appears twice → 4
	// pairs; 6 output rows total.
	root := plan.NewJoin(plan.OpNLJoin, scan, scan, 0, 0)

	res, err := e.Execute(root, Options{Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("self-join rows = %d, want 6", len(res.Rows))
	}

	st := res.Explain.Stats(scan)
	if st == nil {
		t.Fatal("no stats recorded for the shared scan")
	}
	if st.Loops != 2 {
		t.Errorf("shared scan Loops = %d, want 2", st.Loops)
	}
	if st.Rows != 8 {
		t.Errorf("shared scan Rows = %d, want 8 (4 per loop)", st.Rows)
	}
	if st.SubtreeWork != 8 {
		t.Errorf("shared scan SubtreeWork = %d, want 8 (both executions)", st.SubtreeWork)
	}
	// Exclusive scan work equals its inclusive work (it has no children).
	if st.Work != 8 {
		t.Errorf("shared scan exclusive Work = %d, want 8", st.Work)
	}

	rootSt := res.Explain.Stats(root)
	if rootSt == nil {
		t.Fatal("no stats recorded for the join")
	}
	// 4×4 NL pairs; the scan's 8 units must be subtracted exactly once even
	// though the scan appears as both children.
	if rootSt.Work != 16 {
		t.Errorf("join exclusive Work = %d, want 16 (16 NL pairs)", rootSt.Work)
	}
	if rootSt.Counters.NLPairs != 16 {
		t.Errorf("join exclusive NLPairs = %d, want 16", rootSt.Counters.NLPairs)
	}
	if rootSt.Counters.ScanTuples != 0 {
		t.Errorf("join exclusive ScanTuples = %d, want 0 (all attributed to the scan)", rootSt.Counters.ScanTuples)
	}

	// The telescoping identity: exclusive per-operator work sums to the
	// executor's total, which equals the counter total.
	if got, want := res.Explain.TotalWork(), res.Work; got != want {
		t.Errorf("TotalWork() = %d, want %d (= Result.Work)", got, want)
	}
	if got, want := res.Work, res.Counters.Total(); got != want {
		t.Errorf("Result.Work = %d, want %d (= Counters.Total())", got, want)
	}
}

// TestExplainRescanDeepTree checks the identity on a deeper plan where the
// shared subtree is itself a join, so the double-subtraction bug (if
// reintroduced) would corrupt interior operators, not just leaves.
func TestExplainRescanDeepTree(t *testing.T) {
	cat := tinyCatalog(t)
	e := New(cat)
	sa := plan.NewScan(0, 0, nil)
	sb := plan.NewScan(1, 1, nil)
	inner := plan.NewJoin(plan.OpHashJoin, sa, sb, 0, 0)
	root := plan.NewJoin(plan.OpNLJoin, inner, inner, 0, 0)

	res, err := e.Execute(root, Options{Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	if st := res.Explain.Stats(inner); st == nil || st.Loops != 2 {
		t.Fatalf("inner join stats = %+v, want Loops=2", st)
	}
	if got, want := res.Explain.TotalWork(), res.Counters.Total(); got != want {
		t.Errorf("TotalWork() = %d, want %d (= Counters.Total())", got, want)
	}
	// Category-wise: summing exclusive counters over all operators must
	// reproduce the executor's counters exactly.
	var sum Counters
	for _, n := range []*plan.Node{sa, sb, inner, root} {
		if st := res.Explain.Stats(n); st != nil {
			sum = addCounters(sum, st.Counters)
		}
	}
	if sum != res.Counters {
		t.Errorf("exclusive counters sum %+v != executor counters %+v", sum, res.Counters)
	}
}
