package exec

import (
	"testing"
	"testing/quick"

	"ml4db/internal/mlmath"
	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/optimizer"
	"ml4db/internal/sqlkit/plan"
	"ml4db/internal/workload"
)

// bruteForceCard evaluates a query by nested loops over the base tables,
// independent of the plan/executor machinery — the reference semantics.
func bruteForceCard(cat *catalog.Catalog, q *plan.Query) int {
	n := q.NumTables()
	tables := make([]*catalog.Table, n)
	for i, tid := range q.Tables {
		tables[i] = cat.Table(tid)
	}
	count := 0
	rows := make([]int, n)
	var walk func(pos int)
	walk = func(pos int) {
		if pos == n {
			count++
			return
		}
		t := tables[pos]
	next:
		for r := 0; r < t.NumRows(); r++ {
			for _, f := range q.Filters[pos] {
				if !f.Eval(t.Data[f.Col][r]) {
					continue next
				}
			}
			rows[pos] = r
			// Check join conditions whose both sides are bound.
			for _, j := range q.Joins {
				if j.LeftTable <= pos && j.RightTable <= pos {
					lv := tables[j.LeftTable].Data[j.LeftCol][rows[j.LeftTable]]
					rv := tables[j.RightTable].Data[j.RightCol][rows[j.RightTable]]
					if lv != rv {
						continue next
					}
				}
			}
			walk(pos + 1)
		}
	}
	walk(0)
	return count
}

// TestOptimizedPlansMatchReferenceSemantics is the end-to-end property: for
// random star queries, every hint set's optimized plan — including plans
// using secondary indexes — returns exactly the reference cardinality.
func TestOptimizedPlansMatchReferenceSemantics(t *testing.T) {
	rng := mlmath.NewRNG(99)
	sch, err := datagen.NewStarSchema(rng, 400, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Index two fact attributes so index-scan paths participate.
	fact := sch.Cat.Table(sch.FactID)
	fact.AddIndex(catalog.BuildSecondaryIndex(fact, sch.AttrCols[0]))
	fact.AddIndex(catalog.BuildSecondaryIndex(fact, sch.AttrCols[2]))
	gen := workload.NewStarGen(sch, rng)
	opt := optimizer.New(sch.Cat)
	opt.Cost = optimizer.TrueCostParams()
	ex := New(sch.Cat)

	f := func(seed uint64) bool {
		q := gen.Query()
		_ = seed // query stream already deterministic; seed keeps quick happy
		want := bruteForceCard(sch.Cat, q)
		for _, h := range optimizer.StandardHintSets() {
			p, err := opt.Plan(q, h)
			if err != nil {
				t.Logf("plan error: %v", err)
				return false
			}
			res, err := ex.Execute(p, Options{})
			if err != nil {
				t.Logf("exec error: %v", err)
				return false
			}
			if len(res.Rows) != want {
				t.Logf("hint %s: got %d rows, reference %d\nquery %s\nplan:\n%s",
					h.Name, len(res.Rows), want, q.Signature(), p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
