package exec

import (
	"testing"

	"ml4db/internal/mlmath"
	"ml4db/internal/sqlkit/catalog"
	"ml4db/internal/sqlkit/datagen"
	"ml4db/internal/sqlkit/expr"
	"ml4db/internal/sqlkit/plan"
)

func indexedSchema(t *testing.T) (*datagen.StarSchema, int) {
	t.Helper()
	rng := mlmath.NewRNG(1)
	sch, err := datagen.NewStarSchema(rng, 5000, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	fact := sch.Cat.Table(sch.FactID)
	col := sch.AttrCols[0]
	fact.AddIndex(catalog.BuildSecondaryIndex(fact, col))
	return sch, col
}

func TestIndexScanMatchesSeqScan(t *testing.T) {
	sch, col := indexedSchema(t)
	e := New(sch.Cat)
	filters := []expr.Pred{
		{Col: col, Op: expr.BETWEEN, Lo: 400, Hi: 500},
		{Col: sch.AttrCols[2], Op: expr.LE, Lo: 300},
	}
	seq := plan.NewScan(0, sch.FactID, filters)
	idx := plan.NewIndexScan(0, sch.FactID, col, filters)
	rs, err := e.Execute(seq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ri, err := e.Execute(idx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != len(ri.Rows) {
		t.Fatalf("index scan %d rows, seq scan %d", len(ri.Rows), len(rs.Rows))
	}
	if ri.Work >= rs.Work {
		t.Errorf("index scan work %d not below seq scan %d on selective predicate", ri.Work, rs.Work)
	}
	if ri.Counters.IndexFetch == 0 || ri.Counters.IndexProbe == 0 {
		t.Errorf("index counters not charged: %+v", ri.Counters)
	}
	if idx.ActualFetched < idx.ActualRows {
		t.Errorf("fetched %v < output %v", idx.ActualFetched, idx.ActualRows)
	}
}

func TestIndexScanRequiresIndexAndInterval(t *testing.T) {
	sch, col := indexedSchema(t)
	e := New(sch.Cat)
	// Missing index.
	bad := plan.NewIndexScan(0, sch.FactID, sch.AttrCols[1], []expr.Pred{{Col: sch.AttrCols[1], Op: expr.LE, Lo: 10}})
	if _, err := e.Execute(bad, Options{}); err == nil {
		t.Error("expected error for missing index")
	}
	// No interval predicate on the indexed column.
	noPred := plan.NewIndexScan(0, sch.FactID, col, []expr.Pred{{Col: sch.AttrCols[2], Op: expr.LE, Lo: 10}})
	if _, err := e.Execute(noPred, Options{}); err == nil {
		t.Error("expected error for missing interval predicate")
	}
}

func TestIndexScanIntersectsMultiplePredicates(t *testing.T) {
	sch, col := indexedSchema(t)
	e := New(sch.Cat)
	filters := []expr.Pred{
		{Col: col, Op: expr.GE, Lo: 400},
		{Col: col, Op: expr.LE, Lo: 500},
	}
	seq := plan.NewScan(0, sch.FactID, filters)
	idx := plan.NewIndexScan(0, sch.FactID, col, filters)
	rs, err := e.Execute(seq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ri, err := e.Execute(idx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != len(ri.Rows) {
		t.Fatalf("row mismatch: %d vs %d", len(ri.Rows), len(rs.Rows))
	}
}

func TestCountersVecLength(t *testing.T) {
	var c Counters
	if len(c.Vec()) != 11 {
		t.Errorf("counters vec length %d, want 11", len(c.Vec()))
	}
	c.IndexProbe, c.IndexFetch = 3, 4
	if c.Total() != 7 {
		t.Errorf("Total = %d, want 7", c.Total())
	}
}
