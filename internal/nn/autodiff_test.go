package nn

import (
	"math"
	"testing"

	"ml4db/internal/mlmath"
)

// gradCheck compares the analytic gradient of sum(root) with respect to each
// parameter against central finite differences of rebuild().
func gradCheck(t *testing.T, name string, params []*Param, rebuild func() float64, analytic func() map[*Param][]float64) {
	t.Helper()
	grads := analytic()
	const eps = 1e-6
	for pi, p := range params {
		ag := grads[p]
		for i := range p.Val {
			orig := p.Val[i]
			p.Val[i] = orig + eps
			lp := rebuild()
			p.Val[i] = orig - eps
			lm := rebuild()
			p.Val[i] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-ag[i]) > 1e-4*math.Max(1, math.Abs(numeric)) {
				t.Errorf("%s: param %d[%d]: analytic %v vs numeric %v", name, pi, i, ag[i], numeric)
			}
		}
	}
}

func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func snapshotGrads(params []*Param) map[*Param][]float64 {
	out := make(map[*Param][]float64, len(params))
	for _, p := range params {
		out[p] = mlmath.Clone(p.Grad)
		p.ZeroGrad()
	}
	return out
}

func TestAutodiffAffineChain(t *testing.T) {
	rng := mlmath.NewRNG(1)
	w1, b1 := NewParam(6*3), NewParam(6)
	w2, b2 := NewParam(2*6), NewParam(2)
	w1.InitUniform(rng, 0.5)
	b1.InitUniform(rng, 0.5)
	w2.InitUniform(rng, 0.5)
	b2.InitUniform(rng, 0.5)
	x := []float64{0.3, -0.2, 0.9}
	params := []*Param{w1, b1, w2, b2}

	run := func() (*Graph, *VNode) {
		g := NewGraph()
		h := g.TanhV(g.Affine(w1, b1, 6, 3, g.Input(x)))
		out := g.Affine(w2, b2, 2, 6, h)
		return g, out
	}
	rebuild := func() float64 {
		_, out := run()
		return sum(out.Val)
	}
	analytic := func() map[*Param][]float64 {
		g, out := run()
		g.Backward(out, ones(2))
		return snapshotGrads(params)
	}
	gradCheck(t, "affine-chain", params, rebuild, analytic)
}

func TestAutodiffGates(t *testing.T) {
	rng := mlmath.NewRNG(2)
	w := NewParam(4 * 4)
	w.InitUniform(rng, 0.5)
	x := []float64{0.5, -0.5, 0.2, 0.8}
	y := []float64{-0.1, 0.7, 0.3, -0.9}
	params := []*Param{w}
	run := func() (*Graph, *VNode) {
		g := NewGraph()
		a := g.SigmoidV(g.Affine(w, nil, 4, 4, g.Input(x)))
		b := g.Input(y)
		gated := g.Mul(a, b)
		return g, g.Add(gated, a)
	}
	rebuild := func() float64 { _, o := run(); return sum(o.Val) }
	analytic := func() map[*Param][]float64 {
		g, o := run()
		g.Backward(o, ones(4))
		return snapshotGrads(params)
	}
	gradCheck(t, "gates", params, rebuild, analytic)
}

func TestAutodiffConcatReLUMaxPool(t *testing.T) {
	rng := mlmath.NewRNG(3)
	w := NewParam(3 * 6)
	w.InitUniform(rng, 0.7)
	x1 := []float64{0.4, -0.6, 0.1}
	x2 := []float64{-0.3, 0.9, 0.5}
	params := []*Param{w}
	run := func() (*Graph, *VNode) {
		g := NewGraph()
		c := g.Concat(g.Input(x1), g.Input(x2))
		h1 := g.ReLUV(g.Affine(w, nil, 3, 6, c))
		c2 := g.Concat(g.Input(x2), g.Input(x1))
		h2 := g.ReLUV(g.Affine(w, nil, 3, 6, c2))
		return g, g.MaxPool(h1, h2)
	}
	rebuild := func() float64 { _, o := run(); return sum(o.Val) }
	analytic := func() map[*Param][]float64 {
		g, o := run()
		g.Backward(o, ones(3))
		return snapshotGrads(params)
	}
	gradCheck(t, "concat-relu-maxpool", params, rebuild, analytic)
}

func TestAutodiffMeanPool(t *testing.T) {
	g := NewGraph()
	a := g.Input([]float64{2, 4})
	b := g.Input([]float64{6, 8})
	m := g.MeanPool(a, b)
	if m.Val[0] != 4 || m.Val[1] != 6 {
		t.Fatalf("MeanPool = %v", m.Val)
	}
	g.Backward(m, []float64{1, 1})
	if a.Grad[0] != 0.5 || b.Grad[1] != 0.5 {
		t.Errorf("MeanPool grads: a=%v b=%v", a.Grad, b.Grad)
	}
}

func TestAutodiffAttention(t *testing.T) {
	rng := mlmath.NewRNG(4)
	wq := NewParam(3 * 3)
	wk := NewParam(3 * 3)
	wv := NewParam(3 * 3)
	for _, p := range []*Param{wq, wk, wv} {
		p.InitUniform(rng, 0.6)
	}
	feats := [][]float64{{0.2, -0.5, 0.7}, {0.9, 0.1, -0.3}, {-0.6, 0.4, 0.5}}
	bias := [][]float64{{0, -0.5, -1}, {-0.5, 0, -0.5}, {-1, -0.5, 0}}
	params := []*Param{wq, wk, wv}
	run := func() (*Graph, *VNode) {
		g := NewGraph()
		var qs, ks, vs []*VNode
		for _, f := range feats {
			in := g.Input(f)
			qs = append(qs, g.Affine(wq, nil, 3, 3, in))
			ks = append(ks, g.Affine(wk, nil, 3, 3, in))
			vs = append(vs, g.Affine(wv, nil, 3, 3, in))
		}
		outs := g.Attention(qs, ks, vs, bias)
		return g, g.MeanPool(outs...)
	}
	rebuild := func() float64 { _, o := run(); return sum(o.Val) }
	analytic := func() map[*Param][]float64 {
		g, o := run()
		g.Backward(o, ones(3))
		return snapshotGrads(params)
	}
	gradCheck(t, "attention", params, rebuild, analytic)
}

func TestAttentionRowsSumToOneImplicitly(t *testing.T) {
	// With identical values the attention output must equal that value
	// regardless of scores (weights sum to 1).
	g := NewGraph()
	v := []float64{3, -2}
	var qs, ks, vs []*VNode
	for i := 0; i < 4; i++ {
		qs = append(qs, g.Input([]float64{float64(i), 1}))
		ks = append(ks, g.Input([]float64{1, float64(i)}))
		vs = append(vs, g.Input(v))
	}
	outs := g.Attention(qs, ks, vs, nil)
	for _, o := range outs {
		if math.Abs(o.Val[0]-3) > 1e-9 || math.Abs(o.Val[1]+2) > 1e-9 {
			t.Errorf("attention output %v, want [3 -2]", o.Val)
		}
	}
}

func TestGraphBackwardAccumulatesOnSharedInput(t *testing.T) {
	g := NewGraph()
	x := g.Input([]float64{2})
	y := g.Add(x, x) // y = 2x → dy/dx = 2
	g.Backward(y, []float64{1})
	if x.Grad[0] != 2 {
		t.Errorf("shared-input grad = %v, want 2", x.Grad[0])
	}
}
